// Cross-module integration tests asserting the paper's headline shapes:
// who wins, in which direction, and where the mechanisms bite. These are
// the same comparisons the bench harness prints, at reduced scale.
#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/reunion_system.hpp"
#include "core/unsync_system.hpp"
#include "isa/assembler.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace unsync::core {
namespace {

constexpr std::uint64_t kInsts = 30000;

SystemConfig cfg1() {
  SystemConfig cfg;
  cfg.num_threads = 1;
  return cfg;
}

double baseline_ipc(const workload::InstStream& s) {
  BaselineSystem sys(cfg1(), s);
  return sys.run().thread_ipc();
}

double unsync_ipc(const workload::InstStream& s, std::size_t cb = 256) {
  UnSyncParams p;
  p.cb_entries = cb;
  UnSyncSystem sys(cfg1(), p, s);
  return sys.run().thread_ipc();
}

double reunion_ipc(const workload::InstStream& s, unsigned fi = 10,
                   Cycle lat = 10) {
  ReunionParams p;
  p.fingerprint_interval = fi;
  p.compare_latency = lat;
  ReunionSystem sys(cfg1(), p, s);
  return sys.run().thread_ipc();
}

// Figure 4 shape: on serializing-heavy benchmarks Reunion loses clearly
// more than UnSync does, relative to the baseline.
class Fig4Shape : public ::testing::TestWithParam<const char*> {};

TEST_P(Fig4Shape, UnsyncOverheadBelowReunion) {
  workload::SyntheticStream s(workload::profile(GetParam()), 101, kInsts);
  const double base = baseline_ipc(s);
  const double unsync_loss = (base - unsync_ipc(s)) / base;
  const double reunion_loss = (base - reunion_ipc(s)) / base;
  EXPECT_LT(unsync_loss, reunion_loss) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SerializingBenchmarks, Fig4Shape,
                         ::testing::Values("bzip2", "ammp", "galgel"));

TEST(Fig4, UnsyncOverheadStaysSmall) {
  // "UnSync demonstrates a consistently negligible variation (around 2%)".
  for (const char* bench : {"bzip2", "ammp", "galgel", "gzip"}) {
    workload::SyntheticStream s(workload::profile(bench), 102, kInsts);
    const double base = baseline_ipc(s);
    const double loss = (base - unsync_ipc(s)) / base;
    EXPECT_LT(loss, 0.08) << bench;
  }
}

TEST(Fig5, ReunionDegradesWithFiAndLatencyUnsyncDoesNot) {
  workload::SyntheticStream s(workload::profile("galgel"), 103, kInsts);
  const double r_small = reunion_ipc(s, 1, 10);
  const double r_big = reunion_ipc(s, 30, 40);
  EXPECT_LT(r_big, r_small * 0.95);  // clear degradation

  // UnSync has no FI knob at all; its IPC is one number. It must beat
  // Reunion's degraded configuration comfortably.
  EXPECT_GT(unsync_ipc(s), r_big);
}

TEST(Fig6, CbSizeSweepRecoversBaseline) {
  workload::SyntheticStream s(workload::profile("susan"), 104, kInsts);
  const double base = baseline_ipc(s);
  const double small_cb = unsync_ipc(s, UnSyncParams::entries_for_bytes(128));
  const double large_cb = unsync_ipc(s, UnSyncParams::entries_for_bytes(4096));
  EXPECT_LT(small_cb, large_cb);
  EXPECT_GT(large_cb, base * 0.92);  // "almost identical with baseline"
}

TEST(SerSweep, IpcFlatAcrossRealisticRates) {
  // §VI-C: from 1e-7 to 1e-17 per instruction the IPC does not move.
  workload::SyntheticStream s(workload::profile("gzip"), 105, kInsts);
  UnSyncParams p;
  p.cb_entries = 256;
  SystemConfig low = cfg1();
  low.ser_per_inst = 1e-17;
  SystemConfig high = cfg1();
  high.ser_per_inst = 1e-7;
  UnSyncSystem a(low, p, s);
  UnSyncSystem b(high, p, s);
  const double ipc_low = a.run().thread_ipc();
  const double ipc_high = b.run().thread_ipc();
  EXPECT_NEAR(ipc_low, ipc_high, ipc_low * 0.01);
}

TEST(SerSweep, ExtremeRatesDoSlowUnsync) {
  // Near the break-even region (1e-3/inst) recovery costs finally bite.
  workload::SyntheticStream s(workload::profile("gzip"), 106, kInsts);
  UnSyncParams p;
  p.cb_entries = 256;
  SystemConfig hot = cfg1();
  hot.ser_per_inst = 1e-3;
  UnSyncSystem a(cfg1(), p, s);
  UnSyncSystem b(hot, p, s);
  EXPECT_GT(b.run().cycles, a.run().cycles);
}

TEST(TraceDriven, RealProgramRunsOnAllThreeSystems) {
  // Execution-driven path: a real URISC kernel recorded from the golden
  // model, replayed through all three architectures.
  const auto prog = isa::Assembler::assemble(R"(
    addi r10, r0, 400
    la   r20, 0x200000
  loop:
    ld   r1, 0(r20)
    add  r1, r1, r10
    st   r1, 0(r20)
    addi r20, r20, 8
    addi r10, r10, -1
    bne  r10, r0, loop
    membar
    halt
  )");
  workload::TraceStream trace(workload::record_trace(prog, 100000));
  ASSERT_GT(trace.length(), 2000u);

  BaselineSystem base(cfg1(), trace);
  const RunResult rb = base.run();
  EXPECT_EQ(rb.core_stats[0].committed, trace.length());

  UnSyncParams up;
  up.cb_entries = 256;
  UnSyncSystem us(cfg1(), up, trace);
  const RunResult ru = us.run();
  EXPECT_EQ(ru.core_stats[0].committed, trace.length());

  ReunionSystem re(cfg1(), ReunionParams{}, trace);
  const RunResult rr = re.run();
  EXPECT_EQ(rr.core_stats[0].committed, trace.length());

  // Shape: baseline >= unsync > reunion is the expected order here (the
  // trace ends in a membar, and stores dominate).
  EXPECT_GE(rb.thread_ipc() * 1.02, ru.thread_ipc());
  EXPECT_GT(ru.thread_ipc(), rr.thread_ipc() * 0.99);
}

TEST(Headline, UnsyncBeatsReunionAcrossTheBoard) {
  // The paper's summary claim: up to 20% better performance at the same
  // reliability. Check every profile at the default configurations.
  double worst_gain = 1e9;
  for (const auto& prof : workload::all_profiles()) {
    workload::SyntheticStream s(prof, 107, 20000);
    const double u = unsync_ipc(s);
    const double r = reunion_ipc(s);
    EXPECT_GT(u, r * 0.98) << prof.name;  // never meaningfully worse
    worst_gain = std::min(worst_gain, u / r);
  }
  EXPECT_GT(worst_gain, 0.95);
}

}  // namespace
}  // namespace unsync::core
