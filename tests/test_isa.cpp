#include "isa/isa.hpp"

#include <gtest/gtest.h>

namespace unsync::isa {
namespace {

TEST(Isa, EncodeDecodeRoundTripRType) {
  Inst in{.op = Opcode::kAdd, .rd = 3, .rs1 = 7, .rs2 = 31, .imm = 0};
  EXPECT_EQ(decode(encode(in)), in);
}

TEST(Isa, EncodeDecodeRoundTripIType) {
  for (std::int32_t imm : {0, 1, -1, 100, -100, kImm14Max, kImm14Min}) {
    Inst in{.op = Opcode::kAddi, .rd = 1, .rs1 = 2, .rs2 = 0, .imm = imm};
    EXPECT_EQ(decode(encode(in)), in) << "imm=" << imm;
  }
}

TEST(Isa, EncodeDecodeRoundTripBType) {
  Inst in{.op = Opcode::kBne, .rd = 0, .rs1 = 4, .rs2 = 5, .imm = -12};
  EXPECT_EQ(decode(encode(in)), in);
}

TEST(Isa, EncodeDecodeRoundTripJType) {
  for (std::int32_t imm : {0, 1000, -1000, kImm19Max, kImm19Min}) {
    Inst in{.op = Opcode::kJal, .rd = 31, .rs1 = 0, .rs2 = 0, .imm = imm};
    EXPECT_EQ(decode(encode(in)), in) << "imm=" << imm;
  }
}

// Property sweep: every opcode round-trips through encode/decode with its
// format-relevant fields preserved.
class OpcodeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(OpcodeRoundTrip, PreservesFields) {
  const auto op = static_cast<Opcode>(GetParam());
  Inst in{.op = op, .rd = 5, .rs1 = 9, .rs2 = 13, .imm = 33};
  // Fields not carried by the format are zeroed on decode; normalise the
  // input the same way encode does.
  const Inst out = decode(encode(in));
  EXPECT_EQ(out.op, op);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeRoundTrip,
    ::testing::Range(0, static_cast<int>(Opcode::kCount)));

TEST(Isa, ImmediateOutOfRangeThrows) {
  Inst in{.op = Opcode::kAddi, .rd = 1, .rs1 = 2, .rs2 = 0,
          .imm = kImm14Max + 1};
  EXPECT_THROW(encode(in), std::out_of_range);
  in.imm = kImm14Min - 1;
  EXPECT_THROW(encode(in), std::out_of_range);
}

TEST(Isa, UnknownOpcodeDecodesAsHalt) {
  const Inst inst = decode(0xFFu << 24);
  EXPECT_EQ(inst.op, Opcode::kHalt);
}

TEST(Isa, ClassOfCoversAllGroups) {
  EXPECT_EQ(class_of(Opcode::kAdd), InstClass::kIntAlu);
  EXPECT_EQ(class_of(Opcode::kMul), InstClass::kIntMul);
  EXPECT_EQ(class_of(Opcode::kDiv), InstClass::kIntDiv);
  EXPECT_EQ(class_of(Opcode::kFadd), InstClass::kFpAlu);
  EXPECT_EQ(class_of(Opcode::kFmul), InstClass::kFpMul);
  EXPECT_EQ(class_of(Opcode::kFdiv), InstClass::kFpDiv);
  EXPECT_EQ(class_of(Opcode::kLd), InstClass::kLoad);
  EXPECT_EQ(class_of(Opcode::kSt), InstClass::kStore);
  EXPECT_EQ(class_of(Opcode::kBeq), InstClass::kBranch);
  EXPECT_EQ(class_of(Opcode::kSyscall), InstClass::kSerializing);
  EXPECT_EQ(class_of(Opcode::kMembar), InstClass::kSerializing);
  EXPECT_EQ(class_of(Opcode::kHalt), InstClass::kHalt);
}

TEST(Isa, OpcodeFromNameRoundTrip) {
  for (int i = 0; i < static_cast<int>(Opcode::kCount); ++i) {
    const auto op = static_cast<Opcode>(i);
    const auto back = opcode_from_name(name_of(op));
    ASSERT_TRUE(back.has_value()) << name_of(op);
    EXPECT_EQ(*back, op);
  }
}

TEST(Isa, OpcodeFromNameUnknown) {
  EXPECT_FALSE(opcode_from_name("bogus").has_value());
  EXPECT_FALSE(opcode_from_name("ADD").has_value());  // case sensitive
}

TEST(Isa, WritesRegClassification) {
  EXPECT_TRUE(Inst{.op = Opcode::kAdd}.writes_reg());
  EXPECT_TRUE(Inst{.op = Opcode::kLd}.writes_reg());
  EXPECT_TRUE(Inst{.op = Opcode::kJal}.writes_reg());
  EXPECT_TRUE(Inst{.op = Opcode::kJalr}.writes_reg());
  EXPECT_TRUE(Inst{.op = Opcode::kFcmplt}.writes_reg());
  EXPECT_FALSE(Inst{.op = Opcode::kSt}.writes_reg());
  EXPECT_FALSE(Inst{.op = Opcode::kBeq}.writes_reg());
  EXPECT_FALSE(Inst{.op = Opcode::kSyscall}.writes_reg());
  EXPECT_FALSE(Inst{.op = Opcode::kHalt}.writes_reg());
}

TEST(Isa, NumSrcsClassification) {
  EXPECT_EQ(Inst{.op = Opcode::kAdd}.num_srcs(), 2);
  EXPECT_EQ(Inst{.op = Opcode::kAddi}.num_srcs(), 1);
  EXPECT_EQ(Inst{.op = Opcode::kLd}.num_srcs(), 1);
  EXPECT_EQ(Inst{.op = Opcode::kSt}.num_srcs(), 2);  // base + data
  EXPECT_EQ(Inst{.op = Opcode::kBeq}.num_srcs(), 2);
  EXPECT_EQ(Inst{.op = Opcode::kJal}.num_srcs(), 0);
  EXPECT_EQ(Inst{.op = Opcode::kSyscall}.num_srcs(), 0);
}

TEST(Isa, ToStringContainsMnemonicAndOperands) {
  const Inst add{.op = Opcode::kAdd, .rd = 1, .rs1 = 2, .rs2 = 3};
  EXPECT_EQ(add.to_string(), "add r1, r2, r3");
  const Inst ld{.op = Opcode::kLd, .rd = 4, .rs1 = 5, .rs2 = 0, .imm = 16};
  EXPECT_EQ(ld.to_string(), "ld r4, 16(r5)");
  const Inst halt{.op = Opcode::kHalt};
  EXPECT_EQ(halt.to_string(), "halt");
}

TEST(Isa, SerializingPredicate) {
  EXPECT_TRUE(Inst{.op = Opcode::kSyscall}.is_serializing());
  EXPECT_TRUE(Inst{.op = Opcode::kMembar}.is_serializing());
  EXPECT_FALSE(Inst{.op = Opcode::kAdd}.is_serializing());
}

}  // namespace
}  // namespace unsync::isa
