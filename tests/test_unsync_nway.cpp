// Tests for configurable redundancy degree (UnSync groups of N cores).
#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/unsync_system.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace unsync::core {
namespace {

SystemConfig cfg1(double ser = 0.0) {
  SystemConfig cfg;
  cfg.num_threads = 1;
  cfg.ser_per_inst = ser;
  return cfg;
}

UnSyncParams params_n(unsigned n, std::size_t cb = 256) {
  UnSyncParams p;
  p.group_size = n;
  p.cb_entries = cb;
  return p;
}

TEST(UnSyncNWay, TripleGroupCompletesOnAllCores) {
  workload::SyntheticStream s(workload::profile("gzip"), 1, 15000);
  UnSyncSystem sys(cfg1(), params_n(3), s);
  const RunResult r = sys.run();
  ASSERT_EQ(r.core_stats.size(), 3u);
  for (const auto& cs : r.core_stats) EXPECT_EQ(cs.committed, 15000u);
}

TEST(UnSyncNWay, TripleDrainsOneCopyOfStores) {
  workload::SyntheticStream s(workload::profile("susan"), 2, 15000);
  UnSyncSystem sys(cfg1(), params_n(3), s);
  const RunResult r = sys.run();
  // All three cores committed the same store count.
  EXPECT_EQ(r.core_stats[0].stores, r.core_stats[1].stores);
  EXPECT_EQ(r.core_stats[1].stores, r.core_stats[2].stores);
}

TEST(UnSyncNWay, MoreCoresCostPerformanceNotCorrectness) {
  // A third core adds L2/bus pressure: never faster, and within a modest
  // factor of the pair configuration.
  workload::SyntheticStream s(workload::profile("mcf"), 3, 15000);
  UnSyncSystem pair(cfg1(), params_n(2), s);
  UnSyncSystem triple(cfg1(), params_n(3), s);
  const Cycle two = pair.run().cycles;
  const Cycle three = triple.run().cycles;
  EXPECT_GE(three + three / 50, two);
  EXPECT_LT(three, two * 2);
}

TEST(UnSyncNWay, TripleGroupRecoversFromErrors) {
  workload::SyntheticStream s(workload::profile("gzip"), 4, 20000);
  UnSyncSystem sys(cfg1(1e-4), params_n(3), s);
  const RunResult r = sys.run();
  EXPECT_GT(r.errors_injected, 0u);
  EXPECT_EQ(r.recoveries, r.errors_injected);
  for (const auto& cs : r.core_stats) EXPECT_EQ(cs.committed, 20000u);
}

TEST(UnSyncNWay, QuadGroupWorks) {
  workload::SyntheticStream s(workload::profile("gzip"), 5, 8000);
  UnSyncSystem sys(cfg1(1e-4), params_n(4), s);
  const RunResult r = sys.run();
  ASSERT_EQ(r.core_stats.size(), 4u);
  for (const auto& cs : r.core_stats) EXPECT_EQ(cs.committed, 8000u);
}

TEST(UnSyncNWay, GroupSizeAccessor) {
  workload::SyntheticStream s(workload::profile("gzip"), 6, 100);
  UnSyncSystem sys(cfg1(), params_n(3), s);
  EXPECT_EQ(sys.group_size(), 3u);
}

TEST(UnSyncNWay, DeterministicWithErrors) {
  workload::SyntheticStream s(workload::profile("bzip2"), 7, 12000);
  UnSyncSystem a(cfg1(1e-4), params_n(3), s);
  UnSyncSystem b(cfg1(1e-4), params_n(3), s);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.recoveries, rb.recoveries);
}

// Property sweep: every group size completes the stream exactly.
class GroupSize : public ::testing::TestWithParam<unsigned> {};

TEST_P(GroupSize, StreamCompletesExactly) {
  workload::SyntheticStream s(workload::profile("qsort"), 8, 10000);
  UnSyncSystem sys(cfg1(5e-5), params_n(GetParam()), s);
  const RunResult r = sys.run();
  ASSERT_EQ(r.core_stats.size(), GetParam());
  for (const auto& cs : r.core_stats) EXPECT_EQ(cs.committed, 10000u);
}

INSTANTIATE_TEST_SUITE_P(Degrees, GroupSize, ::testing::Values(2u, 3u, 4u));

}  // namespace
}  // namespace unsync::core
