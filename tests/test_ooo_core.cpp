#include "cpu/ooo_core.hpp"

#include <gtest/gtest.h>

#include "workload/trace.hpp"

namespace unsync::cpu {
namespace {

using workload::DynOp;
using workload::TraceStream;

DynOp alu_op(SeqNum seq, SeqNum src0 = kNoSeq, SeqNum src1 = kNoSeq) {
  DynOp op;
  op.seq = seq;
  op.cls = isa::InstClass::kIntAlu;
  op.pc = 0x1000 + seq * 4;
  op.src[0] = src0;
  op.src[1] = src1;
  op.writes_reg = true;
  return op;
}

DynOp load_op(SeqNum seq, Addr addr, SeqNum src0 = kNoSeq) {
  DynOp op = alu_op(seq, src0);
  op.cls = isa::InstClass::kLoad;
  op.mem_addr = addr;
  return op;
}

DynOp store_op(SeqNum seq, Addr addr, SeqNum data_src = kNoSeq) {
  DynOp op = alu_op(seq, data_src);
  op.cls = isa::InstClass::kStore;
  op.mem_addr = addr;
  op.writes_reg = false;
  return op;
}

DynOp branch_op(SeqNum seq, bool mispredict) {
  DynOp op = alu_op(seq);
  op.cls = isa::InstClass::kBranch;
  op.writes_reg = false;
  op.taken = true;
  op.has_mispredict_hint = true;
  op.mispredict_hint = mispredict;
  return op;
}

DynOp serial_op(SeqNum seq) {
  DynOp op = alu_op(seq);
  op.cls = isa::InstClass::kSerializing;
  op.writes_reg = false;
  op.src[0] = op.src[1] = kNoSeq;
  return op;
}

struct Rig {
  /// Back-end focused rig: the front end (I-cache / I-TLB) is disabled so
  /// each test isolates the mechanism it targets; dedicated front-end tests
  /// re-enable it explicitly.
  explicit Rig(std::vector<DynOp> ops, CoreConfig cfg = no_frontend(),
               CommitEnv* env = nullptr)
      : memory(mem::MemConfig{}, 1),
        core(0, cfg, &memory,
             std::make_unique<TraceStream>(std::move(ops)), env) {}

  static CoreConfig no_frontend() {
    CoreConfig cfg;
    cfg.model_frontend = false;
    return cfg;
  }

  Cycle run(Cycle limit = 1000000) {
    Cycle now = 0;
    while (!core.done() && now < limit) {
      core.tick(now);
      ++now;
    }
    return now;
  }

  mem::MemoryHierarchy memory;
  OooCore core;
};

std::vector<DynOp> independent_alus(std::uint64_t n) {
  std::vector<DynOp> ops;
  for (SeqNum i = 0; i < n; ++i) ops.push_back(alu_op(i));
  return ops;
}

TEST(OooCore, RunsToCompletion) {
  Rig rig(independent_alus(100));
  rig.run();
  EXPECT_TRUE(rig.core.done());
  EXPECT_EQ(rig.core.retired(), 100u);
}

TEST(OooCore, IndependentAlusApproachIssueWidth) {
  Rig rig(independent_alus(4000));
  const Cycle cycles = rig.run();
  const double ipc = 4000.0 / static_cast<double>(cycles);
  // 4-wide core, no stalls: should sustain close to 4 IPC.
  EXPECT_GT(ipc, 3.0);
}

TEST(OooCore, SerialChainLimitsToOneIpc) {
  std::vector<DynOp> ops;
  for (SeqNum i = 0; i < 2000; ++i) {
    ops.push_back(alu_op(i, i == 0 ? kNoSeq : i - 1));
  }
  Rig rig(std::move(ops));
  const Cycle cycles = rig.run();
  const double ipc = 2000.0 / static_cast<double>(cycles);
  EXPECT_LT(ipc, 1.1);
  EXPECT_GT(ipc, 0.8);
}

TEST(OooCore, MispredictsAddFetchBubbles) {
  std::vector<DynOp> clean, dirty;
  for (SeqNum i = 0; i < 2000; ++i) {
    if (i % 10 == 9) {
      clean.push_back(branch_op(i, false));
      dirty.push_back(branch_op(i, true));
    } else {
      clean.push_back(alu_op(i));
      dirty.push_back(alu_op(i));
    }
  }
  Rig a(std::move(clean)), b(std::move(dirty));
  const Cycle fast = a.run();
  const Cycle slow = b.run();
  EXPECT_GT(slow, fast + 1000);  // ~200 mispredicts x ~8-cycle penalty
  EXPECT_EQ(b.core.stats().mispredicts, 200u);
}

TEST(OooCore, CacheMissesThrottleLoads) {
  std::vector<DynOp> hits, misses;
  for (SeqNum i = 0; i < 1000; ++i) {
    hits.push_back(load_op(i, 0x1000));  // same line: always warm
    misses.push_back(load_op(i, 0x100000 + i * 4096));  // new line each time
  }
  Rig a(std::move(hits)), b(std::move(misses));
  EXPECT_LT(a.run(), b.run());
  EXPECT_GT(b.memory.l1(0).misses(), 900u);
}

TEST(OooCore, StoreToLoadForwardingBeatsCacheMissWait) {
  // The store's data comes from a 20-cycle divide, so the store is still
  // in flight when the load becomes issueable: the load must forward from
  // the store queue instead of fetching the (cold, ~400-cycle) line.
  std::vector<DynOp> ops;
  DynOp producer = alu_op(0);
  producer.cls = isa::InstClass::kIntDiv;
  ops.push_back(producer);
  ops.push_back(store_op(1, 0x200000, 0));
  ops.push_back(load_op(2, 0x200000));
  Rig rig(std::move(ops));
  rig.run();
  EXPECT_TRUE(rig.core.done());
  EXPECT_GE(rig.core.stats().cycles, 20u);   // waited for the divide
  EXPECT_LE(rig.core.stats().cycles, 60u);   // but never went to DRAM
}

TEST(OooCore, LoadWaitsForOlderStoreSameWord) {
  // The load cannot issue before the store's address+data execute.
  std::vector<DynOp> ops;
  DynOp st = store_op(1, 0x300000, 0);  // depends on slow producer
  DynOp producer = alu_op(0);
  producer.cls = isa::InstClass::kIntDiv;  // 20-cycle latency
  ops.push_back(producer);
  ops.push_back(st);
  ops.push_back(load_op(2, 0x300000));
  Rig rig(std::move(ops));
  rig.run();
  EXPECT_GE(rig.core.stats().cycles, 20u);
}

TEST(OooCore, SerializingIssuesOnlyAtHead) {
  std::vector<DynOp> ops;
  for (SeqNum i = 0; i < 200; ++i) {
    ops.push_back(i % 20 == 10 ? serial_op(i) : alu_op(i));
  }
  Rig rig(std::move(ops));
  rig.run();
  EXPECT_TRUE(rig.core.done());
  EXPECT_EQ(rig.core.stats().serializing, 10u);
  // Each serializing inst drains the front end.
  EXPECT_GT(rig.core.stats().fetch_blocked_serialize, 0u);
}

TEST(OooCore, SerializingSlowsThroughput) {
  std::vector<DynOp> with, without;
  for (SeqNum i = 0; i < 4000; ++i) {
    with.push_back(i % 50 == 25 ? serial_op(i) : alu_op(i));
    without.push_back(alu_op(i));
  }
  Rig a(std::move(without)), b(std::move(with));
  EXPECT_LT(a.run(), b.run());
}

TEST(OooCore, RobCapacityBoundsInFlight) {
  // Independent long-latency loads need a big window for MLP; a tiny ROB
  // serialises the misses and must be clearly slower.
  auto make_loads = [] {
    std::vector<DynOp> ops;
    for (SeqNum i = 0; i < 400; ++i) {
      ops.push_back(load_op(i, 0x1000000 + i * 4096));
    }
    return ops;
  };
  CoreConfig tiny = Rig::no_frontend();
  tiny.rob_entries = 8;
  tiny.iq_entries = 8;
  Rig small(make_loads(), tiny);
  Rig big(make_loads());
  const Cycle s = small.run();
  const Cycle b = big.run();
  EXPECT_TRUE(small.core.done());
  EXPECT_GT(s, b);
  EXPECT_GT(small.core.stats().dispatch_stall_rob +
                small.core.stats().dispatch_stall_iq,
            0u);
}

// CommitEnv gating: holds every commit for the first 500 cycles.
class GateEnv : public CommitEnv {
 public:
  bool can_commit(CoreId, const workload::DynOp&, Cycle now) override {
    return now >= 500;
  }
};

TEST(OooCore, CommitGateStallsRetirement) {
  GateEnv env;
  Rig rig(independent_alus(100), Rig::no_frontend(), &env);
  const Cycle cycles = rig.run();
  EXPECT_GE(cycles, 500u);
  EXPECT_GT(rig.core.stats().commit_stall_gate, 0u);
}

// CommitEnv store rejection: rejects every store before cycle 300.
class RejectStoresEnv : public CommitEnv {
 public:
  bool on_store_commit(CoreId, const workload::DynOp&, Cycle now) override {
    return now >= 300;
  }
};

TEST(OooCore, StoreRejectionBackpressuresCommit) {
  RejectStoresEnv env;
  std::vector<DynOp> ops;
  ops.push_back(store_op(0, 0x1000));
  for (SeqNum i = 1; i < 50; ++i) ops.push_back(alu_op(i));
  Rig rig(std::move(ops), Rig::no_frontend(), &env);
  const Cycle cycles = rig.run();
  EXPECT_GE(cycles, 300u);
  EXPECT_GT(rig.core.stats().commit_stall_store, 0u);
  EXPECT_EQ(rig.core.stats().stores, 1u);
}

// Reserved ROB slots shrink the window exactly like Reunion's CHECK stage.
class ReserveEnv : public CommitEnv {
 public:
  explicit ReserveEnv(std::uint32_t n) : n_(n) {}
  std::uint32_t reserved_rob_slots(CoreId, Cycle) override { return n_; }

 private:
  std::uint32_t n_;
};

TEST(OooCore, ReservedRobSlotsReduceThroughputUnderMlp) {
  // Long-latency independent loads need a big window to overlap misses.
  auto make_loads = [] {
    std::vector<DynOp> ops;
    for (SeqNum i = 0; i < 600; ++i) {
      ops.push_back(load_op(i, 0x1000000 + i * 64));
    }
    return ops;
  };
  ReserveEnv reserve(100);  // eat 100 of 128 ROB entries
  Rig free_rig(make_loads());
  Rig held_rig(make_loads(), Rig::no_frontend(), &reserve);
  const Cycle fast = free_rig.run();
  const Cycle slow = held_rig.run();
  EXPECT_GT(slow, fast);
}

TEST(OooCore, StallUntilFreezesProgress) {
  Rig rig(independent_alus(100));
  rig.core.stall_until(200);
  const Cycle cycles = rig.run();
  EXPECT_GE(cycles, 200u);
  EXPECT_GT(rig.core.stats().recovery_stall_cycles, 0u);
}

TEST(OooCore, FlushRepositionsToOldestUncommitted) {
  Rig rig(independent_alus(1000));
  // Run a little, flush mid-flight, then finish: total retired must still
  // be exactly 1000 (no loss, no duplication).
  Cycle now = 0;
  for (; now < 20; ++now) rig.core.tick(now);
  const SeqNum committed = rig.core.retired();
  rig.core.flush_pipeline();
  EXPECT_EQ(rig.core.retired(), committed);
  while (!rig.core.done()) rig.core.tick(now++);
  EXPECT_EQ(rig.core.retired(), 1000u);
}

TEST(OooCore, SetPositionForwardSkips) {
  Rig rig(independent_alus(1000));
  rig.core.set_position(900);
  rig.run();
  EXPECT_EQ(rig.core.retired(), 1000u);
  EXPECT_LT(rig.core.stats().cycles, 200u);  // only 100 insts executed
}

TEST(OooCore, SetPositionBackwardRetraces) {
  Rig rig(independent_alus(500));
  Cycle now = 0;
  while (rig.core.retired() < 400) rig.core.tick(now++);
  rig.core.set_position(100);  // rollback
  EXPECT_EQ(rig.core.retired(), 100u);
  while (!rig.core.done()) rig.core.tick(now++);
  EXPECT_EQ(rig.core.retired(), 500u);
}

TEST(OooCore, DoneOnlyAfterPipelineDrains) {
  Rig rig(independent_alus(10));
  EXPECT_FALSE(rig.core.done());
  rig.run();
  EXPECT_TRUE(rig.core.done());
}

TEST(OooCore, RobOccupancyStatTracked) {
  Rig rig(independent_alus(2000));
  rig.run();
  EXPECT_GT(rig.core.stats().avg_rob_occupancy(), 0.0);
  EXPECT_LE(rig.core.stats().avg_rob_occupancy(),
            static_cast<double>(CoreConfig{}.rob_entries));
}

TEST(OooCore, TraceModeUsesInternalPredictor) {
  // Branches without hints: always-taken loop branch becomes predictable.
  std::vector<DynOp> ops;
  for (SeqNum i = 0; i < 2000; ++i) {
    if (i % 5 == 4) {
      DynOp b = branch_op(i, false);
      b.has_mispredict_hint = false;
      b.pc = 0x1000;  // same branch every time
      b.taken = true;
      ops.push_back(b);
    } else {
      ops.push_back(alu_op(i));
    }
  }
  Rig rig(std::move(ops));
  rig.run();
  // After warmup the predictor should be nearly perfect.
  EXPECT_LT(rig.core.stats().mispredicts, 20u);
  EXPECT_EQ(rig.core.stats().branches, 400u);
}


TEST(OooCoreFrontend, IcacheResidentLoopRunsFast) {
  // Code that fits the I-cache: after the cold pass the front end streams.
  CoreConfig cfg;  // frontend ON
  std::vector<DynOp> ops;
  constexpr SeqNum kInsts = 40000;  // long enough to amortise the cold pass
  for (SeqNum i = 0; i < kInsts; ++i) {
    DynOp op = alu_op(i);
    op.pc = 0x1000 + (i % 512) * 4;  // 2 KiB loop body
    ops.push_back(op);
  }
  Rig rig(std::move(ops), cfg);
  const Cycle cycles = rig.run();
  EXPECT_GT(static_cast<double>(kInsts) / static_cast<double>(cycles), 2.0);
}

TEST(OooCoreFrontend, NextLinePrefetchHelpsSequentialCode) {
  // Long straight-line cold code is DRAM-bound either way, but next-line
  // prefetch overlaps every other line fetch, so sequential code runs
  // clearly faster per instruction than page-scattered code (which gets no
  // prefetch benefit and adds I-TLB walks).
  CoreConfig cfg;
  auto make = [](Addr stride) {
    std::vector<DynOp> ops;
    for (SeqNum i = 0; i < 2000; ++i) {
      DynOp op = alu_op(i);
      op.pc = 0x100000 + i * stride;
      ops.push_back(op);
    }
    return ops;
  };
  Rig sequential(make(4), cfg);
  Rig scattered(make(4096), cfg);
  const Cycle seq = sequential.run();
  const Cycle scat = scattered.run();
  EXPECT_LT(seq, scat / 4);  // 16 insts/line + 2x prefetch overlap >> 1 inst/page
  EXPECT_GT(sequential.memory.icache(0).misses(), 60u);  // really did miss
}

TEST(OooCoreFrontend, ScatteredCodeThrashesIcache) {
  // Jumping through a region far larger than the I-cache defeats both the
  // cache and the prefetcher: clearly slower than the resident loop.
  CoreConfig cfg;
  auto make = [](Addr stride) {
    std::vector<DynOp> ops;
    for (SeqNum i = 0; i < 2000; ++i) {
      DynOp op = alu_op(i);
      op.pc = 0x100000 + (i * stride) % (8u << 20);
      ops.push_back(op);
    }
    return ops;
  };
  Rig resident(make(0), cfg);          // all ops at one pc
  Rig scattered(make(4096), cfg);      // new page + line every op
  const Cycle fast = resident.run();
  const Cycle slow = scattered.run();
  EXPECT_GT(slow, fast * 3);
  EXPECT_GT(scattered.core.stats().fetch_blocked_icache, 100u);
  EXPECT_GT(scattered.core.stats().itlb_misses, 100u);
}

TEST(OooCoreFrontend, DtlbMissesChargedOnDataAccesses) {
  CoreConfig cfg = Rig::no_frontend();  // isolate the D-TLB
  std::vector<DynOp> ops;
  for (SeqNum i = 0; i < 500; ++i) {
    // One load per page over far more pages than the D-TLB holds.
    ops.push_back(load_op(i, 0x2000000 + i * 4096));
  }
  Rig rig(std::move(ops), cfg);
  rig.run();
  EXPECT_GT(rig.core.stats().dtlb_misses, 400u);
}

TEST(OooCoreFrontend, DtlbFriendlyAccessesMissRarely) {
  CoreConfig cfg = Rig::no_frontend();
  std::vector<DynOp> ops;
  for (SeqNum i = 0; i < 500; ++i) {
    ops.push_back(load_op(i, 0x2000000 + (i % 512) * 8));  // one page
  }
  Rig rig(std::move(ops), cfg);
  rig.run();
  EXPECT_LE(rig.core.stats().dtlb_misses, 1u);
}

}  // namespace
}  // namespace unsync::cpu
