#include "common/table.hpp"

#include <gtest/gtest.h>

namespace unsync {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t("Demo");
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer_name", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("longer_name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.0, 0), "3");
  EXPECT_EQ(TextTable::num(-1.005, 1), "-1.0");
}

TEST(TextTable, PctFormatsFraction) {
  EXPECT_EQ(TextTable::pct(0.2077), "20.77%");
  EXPECT_EQ(TextTable::pct(0.0745), "7.45%");
  EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(TextTable, CsvEscapesSeparators) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"x,y", "plain"});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("plain"), std::string::npos);
}

TEST(TextTable, CsvHeaderFirst) {
  TextTable t;
  t.set_header({"h1", "h2"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv().substr(0, 5), "h1,h2");
}

TEST(TextTable, RowsCount) {
  TextTable t;
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"a"});
  t.add_row({"b"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RaggedRowsTolerated) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NE(t.str().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace unsync
