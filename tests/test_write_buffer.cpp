#include "mem/write_buffer.hpp"

#include <gtest/gtest.h>

namespace unsync::mem {
namespace {

TEST(WriteBuffer, FifoOrder) {
  WriteBuffer wb(4);
  EXPECT_TRUE(wb.push(0x10, 1, 100));
  EXPECT_TRUE(wb.push(0x20, 2, 101));
  EXPECT_EQ(wb.front().addr, 0x10u);
  wb.pop();
  EXPECT_EQ(wb.front().addr, 0x20u);
  EXPECT_EQ(wb.front().seq, 2u);
}

TEST(WriteBuffer, RejectsWhenFull) {
  WriteBuffer wb(2);
  EXPECT_TRUE(wb.push(1, 1, 0));
  EXPECT_TRUE(wb.push(2, 2, 0));
  EXPECT_TRUE(wb.full());
  EXPECT_FALSE(wb.push(3, 3, 0));
  EXPECT_EQ(wb.size(), 2u);
  wb.pop();
  EXPECT_TRUE(wb.push(3, 3, 0));
}

TEST(WriteBuffer, NonCoalescing) {
  WriteBuffer wb(4);
  // Same address twice -> two entries (the CB must keep store identity).
  wb.push(0x40, 1, 0);
  wb.push(0x40, 2, 0);
  EXPECT_EQ(wb.size(), 2u);
}

TEST(WriteBuffer, PeakOccupancyTracked) {
  WriteBuffer wb(8);
  wb.push(1, 1, 0);
  wb.push(2, 2, 0);
  wb.push(3, 3, 0);
  wb.pop();
  wb.pop();
  EXPECT_EQ(wb.peak_occupancy(), 3u);
  EXPECT_EQ(wb.total_pushed(), 3u);
}

TEST(WriteBuffer, CopyFromOverwrites) {
  WriteBuffer a(4), b(4);
  a.push(1, 1, 0);
  b.push(9, 9, 0);
  b.push(8, 8, 0);
  a.copy_from(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.front().addr, 9u);
  EXPECT_EQ(a.at(1).addr, 8u);
}

TEST(WriteBuffer, ClearEmpties) {
  WriteBuffer wb(4);
  wb.push(1, 1, 0);
  wb.clear();
  EXPECT_TRUE(wb.empty());
  EXPECT_EQ(wb.size(), 0u);
}

TEST(WriteBuffer, IndexedAccess) {
  WriteBuffer wb(4);
  wb.push(10, 100, 5);
  wb.push(20, 200, 6);
  EXPECT_EQ(wb.at(0).seq, 100u);
  EXPECT_EQ(wb.at(1).ready, 6u);
  EXPECT_THROW(wb.at(2), std::out_of_range);
}

}  // namespace
}  // namespace unsync::mem
