#include "mem/hierarchy.hpp"

#include <gtest/gtest.h>

namespace unsync::mem {
namespace {

MemConfig fast_config() {
  MemConfig m;
  m.l1d = {.size_bytes = 1024, .line_bytes = 64, .assoc = 2, .hit_latency = 2,
           .mshrs = 4, .write_policy = WritePolicy::kWriteBack};
  m.l2 = {.size_bytes = 64 * 1024, .line_bytes = 64, .assoc = 8,
          .hit_latency = 20, .mshrs = 8,
          .write_policy = WritePolicy::kWriteBack};
  return m;
}

TEST(Hierarchy, L1HitLatency) {
  MemoryHierarchy mh(fast_config(), 1);
  mh.load(0, 0x1000, 0);  // warm the line (fill takes ~DRAM latency)
  const auto r = mh.load(0, 0x1000, 1000);
  EXPECT_TRUE(r.l1_hit);
  EXPECT_EQ(r.done, 1002u);
}

TEST(Hierarchy, HitUnderFillWaitsForData) {
  MemoryHierarchy mh(fast_config(), 1);
  const auto miss = mh.load(0, 0x1000, 0);
  // Re-access while the fill is still in flight: the tag matches but data
  // has not arrived, so the access completes with the fill.
  const auto under_fill = mh.load(0, 0x1000, 10);
  EXPECT_FALSE(under_fill.l1_hit);
  EXPECT_EQ(under_fill.done, miss.done);
}

TEST(Hierarchy, L1MissL2HitPath) {
  MemoryHierarchy mh(fast_config(), 1);
  // Warm L2 but not this core's... single core: first access warms both.
  const auto cold = mh.load(0, 0x2000, 0);
  EXPECT_FALSE(cold.l1_hit);
  EXPECT_FALSE(cold.l2_hit);
  // Cold miss latency includes tag check, bus, L2 miss, DRAM.
  EXPECT_GE(cold.done, mh.config().dram_latency);
}

TEST(Hierarchy, SecondCoreHitsSharedL2) {
  MemoryHierarchy mh(fast_config(), 2);
  mh.load(0, 0x3000, 0);  // core 0 brings the line into L2
  const auto r = mh.load(1, 0x3000, 1000);
  EXPECT_FALSE(r.l1_hit);
  EXPECT_TRUE(r.l2_hit);
  EXPECT_LT(r.done - 1000, mh.config().dram_latency);
}

TEST(Hierarchy, SecondaryMissMergesInMshr) {
  MemoryHierarchy mh(fast_config(), 1);
  const auto first = mh.load(0, 0x4000, 0);
  const auto second = mh.load(0, 0x4010, 1);  // same line, still in flight
  EXPECT_EQ(second.done, first.done);
}

TEST(Hierarchy, IndependentMissesContendOnBus) {
  MemoryHierarchy mh(fast_config(), 1);
  const auto a = mh.load(0, 0x10000, 0);
  const auto b = mh.load(0, 0x20000, 0);
  EXPECT_GT(b.done, a.done);  // serialized behind a on bus/DRAM channel
}

TEST(Hierarchy, WritebackStoreHit) {
  MemoryHierarchy mh(fast_config(), 1);
  mh.load(0, 0x5000, 0);
  const auto r = mh.store_writeback(0, 0x5000, 1000);  // after the fill
  EXPECT_TRUE(r.l1_hit);
  EXPECT_TRUE(mh.l1(0).line_dirty(0x5000));
}

TEST(Hierarchy, WritebackStoreMissAllocates) {
  MemoryHierarchy mh(fast_config(), 1);
  const auto r = mh.store_writeback(0, 0x6000, 0);
  EXPECT_FALSE(r.l1_hit);
  EXPECT_TRUE(mh.l1(0).contains(0x6000));
  EXPECT_TRUE(mh.l1(0).line_dirty(0x6000));
}

TEST(Hierarchy, WritethroughStoreNeverDirties) {
  MemConfig cfg = fast_config();
  cfg.l1d.write_policy = WritePolicy::kWriteThrough;
  MemoryHierarchy mh(cfg, 1);
  mh.load(0, 0x7000, 0);
  mh.store_writethrough_local(0, 0x7000, 10);
  EXPECT_FALSE(mh.l1(0).line_dirty(0x7000));
  EXPECT_EQ(mh.l1(0).lines_dirty(), 0u);
}

TEST(Hierarchy, PushWordToL2ConsumesBus) {
  MemoryHierarchy mh(fast_config(), 1);
  const auto before = mh.bus().transactions();
  const Cycle done = mh.push_word_to_l2(0x8000, 0);
  EXPECT_EQ(mh.bus().transactions(), before + 1);
  EXPECT_GE(done, mh.config().bus_word_cycles + mh.config().l2.hit_latency);
}

TEST(Hierarchy, PushWordsSerialiseOnBus) {
  MemoryHierarchy mh(fast_config(), 1);
  const Cycle a = mh.push_word_to_l2(0x8000, 0);
  const Cycle b = mh.push_word_to_l2(0x8008, 0);
  EXPECT_GT(b, a);
}

TEST(Hierarchy, DirtyL1VictimGeneratesBusTraffic) {
  MemConfig cfg = fast_config();
  cfg.l1d.assoc = 1;
  cfg.l1d.size_bytes = 128;  // 2 sets, direct mapped: easy conflicts
  MemoryHierarchy mh(cfg, 1);
  mh.store_writeback(0, 0x0000, 0);  // dirty line in set 0
  const auto before = mh.bus().transactions();
  mh.load(0, 0x1000, 500);  // conflicting line evicts dirty victim
  // At least two transactions: writeback + fill.
  EXPECT_GE(mh.bus().transactions(), before + 2);
}

TEST(Hierarchy, MshrLimitDelaysBursts) {
  MemConfig cfg = fast_config();
  cfg.l1d.mshrs = 1;
  MemoryHierarchy mh(cfg, 1);
  mh.load(0, 0x10000, 0);
  mh.load(0, 0x20000, 0);  // needs the single MSHR -> waits
  EXPECT_GT(mh.l1(0).mshrs().stall_cycles(), 0u);
}

TEST(Hierarchy, PerCoreL1Isolation) {
  MemoryHierarchy mh(fast_config(), 2);
  mh.load(0, 0x9000, 0);
  EXPECT_TRUE(mh.l1(0).contains(0x9000));
  EXPECT_FALSE(mh.l1(1).contains(0x9000));
}

}  // namespace
}  // namespace unsync::mem
