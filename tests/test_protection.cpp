#include "fault/protection.hpp"

#include <gtest/gtest.h>

namespace unsync::fault {
namespace {

TEST(Inventory, CoversAllStructures) {
  const auto& inv = structure_inventory();
  EXPECT_EQ(inv.size(), static_cast<std::size_t>(Structure::kCount));
  for (const auto& s : inv) EXPECT_GT(s.bits, 0u);
}

TEST(Inventory, ResidencyRule) {
  // PC and pipeline registers are the every-cycle elements (§III-B.1).
  for (const auto& s : structure_inventory()) {
    const bool every_cycle = s.id == Structure::kProgramCounter ||
                             s.id == Structure::kPipelineRegisters;
    EXPECT_EQ(s.residency == Residency::kEveryCycle, every_cycle)
        << name_of(s.id);
  }
}

TEST(Plans, UnsyncMechanismChoice) {
  const auto plan = unsync_plan();
  EXPECT_EQ(plan.of(Structure::kProgramCounter), Mechanism::kDmr);
  EXPECT_EQ(plan.of(Structure::kPipelineRegisters), Mechanism::kDmr);
  EXPECT_EQ(plan.of(Structure::kRegisterFile), Mechanism::kParity1);
  EXPECT_EQ(plan.of(Structure::kLoadStoreQueue), Mechanism::kParity1);
  EXPECT_EQ(plan.of(Structure::kTlb), Mechanism::kParity1);
  EXPECT_EQ(plan.of(Structure::kL1Data), Mechanism::kParity1);
}

TEST(Plans, UnsyncFullCoverage) {
  const auto plan = unsync_plan();
  EXPECT_DOUBLE_EQ(plan.roec(), 1.0);
  EXPECT_EQ(plan.covered_bits(), plan.total_bits());
}

TEST(Plans, ReunionLeavesArchStateUncovered) {
  const auto plan = reunion_plan();
  EXPECT_EQ(plan.of(Structure::kRegisterFile), Mechanism::kNone);
  EXPECT_EQ(plan.of(Structure::kTlb), Mechanism::kNone);
  EXPECT_EQ(plan.of(Structure::kL1Data), Mechanism::kSecded);
}

TEST(Plans, UnsyncRoecExceedsReunion) {
  // §VI-D: UnSync has the larger region of error coverage.
  EXPECT_GT(unsync_plan().roec(), reunion_plan().roec());
}

TEST(Plans, BaselineHasNoCoverage) {
  const auto plan = baseline_plan();
  EXPECT_DOUBLE_EQ(plan.roec(), 0.0);
  EXPECT_EQ(plan.covered_bits(), 0u);
}

TEST(Plans, DetectionCoverageValues) {
  const auto plan = unsync_plan();
  EXPECT_DOUBLE_EQ(plan.detection_coverage(Structure::kRegisterFile), 1.0);
  const auto r = reunion_plan();
  // Fingerprint coverage includes the CRC-16 aliasing escape.
  EXPECT_NEAR(r.detection_coverage(Structure::kPipelineRegisters),
              1.0 - 1.0 / 65536.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.detection_coverage(Structure::kRegisterFile), 0.0);
}

TEST(Plans, NamesArePresent) {
  EXPECT_EQ(unsync_plan().name, "unsync");
  EXPECT_EQ(reunion_plan().name, "reunion");
  EXPECT_EQ(baseline_plan().name, "baseline");
}

TEST(Plans, NameOfHelpers) {
  EXPECT_STREQ(name_of(Structure::kL1Data), "l1_data");
  EXPECT_STREQ(name_of(Mechanism::kParity1), "parity-1");
  EXPECT_STREQ(name_of(Mechanism::kSecded), "SECDED");
  EXPECT_STREQ(name_of(Mechanism::kFingerprint), "fingerprint");
}

TEST(Plans, L1DominatesBitBudget) {
  // Sanity: the L1 is by far the biggest sequential structure, which is why
  // including it in the ROEC (UnSync) matters so much.
  std::uint64_t l1 = 0, rest = 0;
  for (const auto& s : structure_inventory()) {
    (s.id == Structure::kL1Data ? l1 : rest) += s.bits;
  }
  EXPECT_GT(l1, rest);
}

}  // namespace
}  // namespace unsync::fault
