// Boundary conditions and failure-injection edge cases across the systems:
// empty/tiny streams, extreme parameters, errors at the very first and
// last instruction, serializing instructions at stream boundaries, and
// store-only / load-only workloads.
#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/reunion_system.hpp"
#include "core/unsync_system.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace unsync::core {
namespace {

using workload::DynOp;
using workload::TraceStream;

SystemConfig cfg1(double ser = 0.0) {
  SystemConfig cfg;
  cfg.num_threads = 1;
  cfg.ser_per_inst = ser;
  return cfg;
}

DynOp make_op(SeqNum seq, isa::InstClass cls, Addr addr = kNoAddr) {
  DynOp op;
  op.seq = seq;
  op.cls = cls;
  op.pc = 0x1000 + seq * 4;
  op.mem_addr = addr;
  op.writes_reg = cls == isa::InstClass::kIntAlu || cls == isa::InstClass::kLoad;
  return op;
}

std::vector<DynOp> ops_of(std::initializer_list<isa::InstClass> classes) {
  std::vector<DynOp> ops;
  SeqNum seq = 0;
  for (const auto cls : classes) {
    const Addr addr = (cls == isa::InstClass::kLoad ||
                       cls == isa::InstClass::kStore)
                          ? 0x100000 + seq * 8
                          : kNoAddr;
    ops.push_back(make_op(seq++, cls, addr));
  }
  return ops;
}

TEST(EdgeCases, EmptyStreamFinishesImmediately) {
  TraceStream empty{std::vector<DynOp>{}};
  BaselineSystem base(cfg1(), empty);
  const RunResult r = base.run(1000);
  EXPECT_EQ(r.core_stats[0].committed, 0u);
  EXPECT_LT(r.cycles, 10u);
}

TEST(EdgeCases, EmptyStreamOnRedundantSystems) {
  TraceStream empty{std::vector<DynOp>{}};
  UnSyncParams up;
  up.cb_entries = 4;
  UnSyncSystem us(cfg1(), up, empty);
  EXPECT_EQ(us.run(1000).core_stats[0].committed, 0u);
  ReunionSystem re(cfg1(), ReunionParams{}, empty);
  EXPECT_EQ(re.run(1000).core_stats[0].committed, 0u);
}

TEST(EdgeCases, SingleInstructionStream) {
  TraceStream one(ops_of({isa::InstClass::kIntAlu}));
  UnSyncParams up;
  up.cb_entries = 4;
  UnSyncSystem sys(cfg1(), up, one);
  const RunResult r = sys.run(10000);
  EXPECT_EQ(r.core_stats[0].committed, 1u);
  EXPECT_EQ(r.core_stats[1].committed, 1u);
}

TEST(EdgeCases, SingleSerializingInstruction) {
  TraceStream one(ops_of({isa::InstClass::kSerializing}));
  ReunionSystem sys(cfg1(), ReunionParams{}, one);
  const RunResult r = sys.run(10000);
  EXPECT_EQ(r.core_stats[0].committed, 1u);
  EXPECT_EQ(r.fingerprint_syncs, 1u);
}

TEST(EdgeCases, SerializingAtStreamEnd) {
  TraceStream t(ops_of({isa::InstClass::kIntAlu, isa::InstClass::kIntAlu,
                        isa::InstClass::kSerializing}));
  ReunionSystem sys(cfg1(), ReunionParams{}, t);
  const RunResult r = sys.run(10000);
  EXPECT_EQ(r.core_stats[0].committed, 3u);
}

TEST(EdgeCases, BackToBackSerializing) {
  TraceStream t(ops_of({isa::InstClass::kSerializing,
                        isa::InstClass::kSerializing,
                        isa::InstClass::kSerializing}));
  ReunionSystem sys(cfg1(), ReunionParams{}, t);
  const RunResult r = sys.run(100000);
  EXPECT_EQ(r.core_stats[0].committed, 3u);
  EXPECT_EQ(r.fingerprint_syncs, 3u);
}

TEST(EdgeCases, StoreOnlyStreamDrainsCompletely) {
  std::vector<DynOp> ops;
  for (SeqNum i = 0; i < 200; ++i) {
    ops.push_back(make_op(i, isa::InstClass::kStore, 0x100000 + i * 8));
  }
  TraceStream t(std::move(ops));
  UnSyncParams up;
  up.cb_entries = 2;  // minimal CB: maximal backpressure
  UnSyncSystem sys(cfg1(), up, t);
  const RunResult r = sys.run(1000000);
  EXPECT_EQ(r.core_stats[0].committed, 200u);
  EXPECT_EQ(r.core_stats[1].committed, 200u);
}

TEST(EdgeCases, CbOfOneEntryStillCorrect) {
  workload::SyntheticStream s(workload::profile("susan"), 1, 5000);
  UnSyncParams up;
  up.cb_entries = 1;
  UnSyncSystem sys(cfg1(), up, s);
  const RunResult r = sys.run();
  EXPECT_EQ(r.core_stats[0].committed, 5000u);
  EXPECT_GT(r.cb_full_stalls, 0u);
}

TEST(EdgeCases, FiLargerThanStream) {
  workload::SyntheticStream s(workload::profile("gzip"), 2, 500);
  ReunionParams rp;
  rp.fingerprint_interval = 10000;  // never closes naturally
  ReunionSystem sys(cfg1(), rp, s);
  const RunResult r = sys.run(1000000);
  EXPECT_EQ(r.core_stats[0].committed, 500u);
}

TEST(EdgeCases, FiOfOne) {
  workload::SyntheticStream s(workload::profile("gzip"), 3, 2000);
  ReunionParams rp;
  rp.fingerprint_interval = 1;
  rp.compare_latency = 10;
  ReunionSystem sys(cfg1(), rp, s);
  const RunResult r = sys.run();
  EXPECT_EQ(r.core_stats[0].committed, 2000u);
}

TEST(EdgeCases, ErrorAtVeryFirstInstruction) {
  workload::SyntheticStream s(workload::profile("gzip"), 4, 5000);
  SystemConfig cfg = cfg1();
  cfg.ser_per_inst = 0.999;  // errors effectively every instruction position
  UnSyncParams up;
  up.cb_entries = 64;
  UnSyncSystem sys(cfg, up, s);
  // Bound the run: with per-instruction errors this is recovery-dominated,
  // but it must still make forward progress (always-forward execution).
  const RunResult r = sys.run(3000000);
  EXPECT_GT(r.recoveries, 100u);
  EXPECT_GT(r.core_stats[0].committed, 0u);
}

TEST(EdgeCases, ZeroSerNeverInjects) {
  workload::SyntheticStream s(workload::profile("gzip"), 5, 5000);
  UnSyncParams up;
  up.cb_entries = 64;
  UnSyncSystem sys(cfg1(0.0), up, s);
  EXPECT_EQ(sys.run().errors_injected, 0u);
}

TEST(EdgeCases, MaxCyclesZeroReturnsImmediately) {
  workload::SyntheticStream s(workload::profile("gzip"), 6, 5000);
  BaselineSystem base(cfg1(), s);
  const RunResult r = base.run(0);
  EXPECT_EQ(r.cycles, 0u);
}

TEST(EdgeCases, TinyRobAndIqStillComplete) {
  workload::SyntheticStream s(workload::profile("mcf"), 7, 3000);
  SystemConfig cfg = cfg1();
  cfg.core.rob_entries = 4;
  cfg.core.iq_entries = 4;
  cfg.core.lq_entries = 2;
  cfg.core.sq_entries = 2;
  BaselineSystem base(cfg, s);
  const RunResult r = base.run();
  EXPECT_EQ(r.core_stats[0].committed, 3000u);
}

TEST(EdgeCases, SingleWideCore) {
  workload::SyntheticStream s(workload::profile("gzip"), 8, 3000);
  SystemConfig cfg = cfg1();
  cfg.core.fetch_width = 1;
  cfg.core.issue_width = 1;
  cfg.core.commit_width = 1;
  BaselineSystem narrow(cfg, s);
  BaselineSystem wide(cfg1(), s);
  const RunResult rn = narrow.run();
  const RunResult rw = wide.run();
  EXPECT_EQ(rn.core_stats[0].committed, 3000u);
  EXPECT_GT(rn.cycles, rw.cycles);
  EXPECT_LE(rn.thread_ipc(), 1.0 + 1e-9);
}

TEST(EdgeCases, ReunionZeroCompareLatency) {
  workload::SyntheticStream s(workload::profile("gzip"), 9, 3000);
  ReunionParams rp;
  rp.compare_latency = 0;
  ReunionSystem sys(cfg1(), rp, s);
  EXPECT_EQ(sys.run().core_stats[0].committed, 3000u);
}

TEST(EdgeCases, HugeCbNeverStalls) {
  workload::SyntheticStream s(workload::profile("susan"), 10, 10000);
  UnSyncParams up;
  up.cb_entries = 1u << 20;
  UnSyncSystem sys(cfg1(), up, s);
  const RunResult r = sys.run();
  EXPECT_EQ(r.cb_full_stalls, 0u);
}

TEST(EdgeCases, RepeatedRunsOnFreshSystemsAgree) {
  // Constructing two identical systems over the same stream must give the
  // same cycle count (no hidden global state).
  workload::SyntheticStream s(workload::profile("twolf"), 11, 8000);
  const Cycle a = BaselineSystem(cfg1(), s).run().cycles;
  const Cycle b = BaselineSystem(cfg1(), s).run().cycles;
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace unsync::core
