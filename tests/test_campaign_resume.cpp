// Crash-safe resumable campaigns (CampaignRunner::Options journal /
// checkpoint_every / resume): the journal survives truncation at any line
// boundary, tolerates corrupt entries by re-running those jobs, hard-fails
// on a journal that belongs to a different campaign, and — the acceptance
// gate — produces byte-identical CampaignOutput::to_json() across any
// kill/resume split and any worker count.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/serializer.hpp"
#include "runtime/campaign.hpp"

namespace {

using namespace unsync;
using runtime::CampaignRunner;
using runtime::SimJob;

std::vector<SimJob> small_grid() {
  std::vector<SimJob> jobs;
  for (const char* bench : {"gzip", "mcf", "susan"}) {
    for (const auto kind :
         {runtime::SystemKind::kBaseline, runtime::SystemKind::kUnSync}) {
      SimJob job;
      job.label = bench;
      job.profile = bench;
      job.system = kind;
      job.insts = 3000;
      job.ser_per_inst = 2e-5;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

std::string journal_path(const char* name) {
  return ::testing::TempDir() + "campaign_" + name + ".jsonl";
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_all(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

std::string reference_json(bool collect_metrics = false) {
  CampaignRunner::Options opts;
  opts.threads = 1;
  opts.collect_metrics = collect_metrics;
  return CampaignRunner(opts).run(small_grid()).to_json();
}

TEST(CampaignJournal, JournalingItselfDoesNotChangeTheOutput) {
  const std::string path = journal_path("noop");
  CampaignRunner::Options opts;
  opts.threads = 1;
  opts.journal = path;
  EXPECT_EQ(CampaignRunner(opts).run(small_grid()).to_json(),
            reference_json());
  // One header plus one line per job.
  std::istringstream lines(read_all(path));
  std::size_t count = 0;
  for (std::string line; std::getline(lines, line);) ++count;
  EXPECT_EQ(count, small_grid().size() + 1);
  std::remove(path.c_str());
}

TEST(CampaignJournal, ResumeFromTruncationIsByteIdentical) {
  const std::string path = journal_path("truncate");
  CampaignRunner::Options opts;
  opts.threads = 1;
  opts.journal = path;
  (void)CampaignRunner(opts).run(small_grid());
  const std::string full_journal = read_all(path);

  // Simulate a kill after every prefix of the journal — including cutting
  // MID-LINE (a torn write): resume must always reconverge to the same
  // bytes. Different worker counts on the resume leg too.
  const std::string want = reference_json();
  for (const std::size_t keep :
       {std::size_t{0}, full_journal.size() / 4, full_journal.size() / 2,
        full_journal.size() - 7, full_journal.size()}) {
    write_all(path, full_journal.substr(0, keep));
    CampaignRunner::Options ropts;
    ropts.threads = keep % 2 == 0 ? 1 : 4;
    ropts.journal = path;
    ropts.resume = true;
    EXPECT_EQ(CampaignRunner(ropts).run(small_grid()).to_json(), want)
        << "resume after keeping " << keep << " journal bytes";
  }
  std::remove(path.c_str());
}

TEST(CampaignJournal, ResumeSkipsRestoredJobs) {
  const std::string path = journal_path("skip");
  CampaignRunner::Options opts;
  opts.threads = 2;
  opts.journal = path;
  (void)CampaignRunner(opts).run(small_grid());

  // A complete journal means the resume leg re-runs nothing; job wall
  // times of restored jobs stay zero (results come from the journal).
  CampaignRunner::Options ropts;
  ropts.threads = 2;
  ropts.journal = path;
  ropts.resume = true;
  const auto out = CampaignRunner(ropts).run(small_grid());
  for (const double t : out.job_wall_seconds) EXPECT_EQ(t, 0.0);
  EXPECT_EQ(out.to_json(), reference_json());
  std::remove(path.c_str());
}

TEST(CampaignJournal, CorruptEntryLineIsReRunNotFatal) {
  const std::string path = journal_path("corrupt");
  CampaignRunner::Options opts;
  opts.threads = 1;
  opts.journal = path;
  (void)CampaignRunner(opts).run(small_grid());

  // Flip a hex digit inside the second entry's blob: its CRC no longer
  // matches, so that one job re-runs while the rest restore.
  std::string journal = read_all(path);
  const auto blob_at = journal.find("\"blob\":\"", journal.find('\n') + 1);
  ASSERT_NE(blob_at, std::string::npos);
  const std::size_t digit = blob_at + 20;
  journal[digit] = journal[digit] == '0' ? '1' : '0';
  write_all(path, journal);

  CampaignRunner::Options ropts;
  ropts.threads = 1;
  ropts.journal = path;
  ropts.resume = true;
  EXPECT_EQ(CampaignRunner(ropts).run(small_grid()).to_json(),
            reference_json());
  std::remove(path.c_str());
}

TEST(CampaignJournal, MismatchedJournalIsRejected) {
  const std::string path = journal_path("mismatch");
  CampaignRunner::Options opts;
  opts.threads = 1;
  opts.journal = path;
  (void)CampaignRunner(opts).run(small_grid());

  // Different grid (one job dropped) -> grid fingerprint mismatch.
  auto fewer = small_grid();
  fewer.pop_back();
  CampaignRunner::Options ropts = opts;
  ropts.resume = true;
  EXPECT_THROW((void)CampaignRunner(ropts).run(fewer), ckpt::CkptError);

  // Different campaign seed -> header mismatch.
  (void)CampaignRunner(opts).run(small_grid());
  ropts.campaign_seed = opts.campaign_seed + 1;
  EXPECT_THROW((void)CampaignRunner(ropts).run(small_grid()),
               ckpt::CkptError);

  // Same grid but metrics collection toggled -> header mismatch (the
  // journaled blobs would be missing the metric snapshots).
  (void)CampaignRunner(opts).run(small_grid());
  CampaignRunner::Options mopts = opts;
  mopts.resume = true;
  mopts.collect_metrics = true;
  EXPECT_THROW((void)CampaignRunner(mopts).run(small_grid()),
               ckpt::CkptError);

  // Unrelated file content -> schema rejection.
  write_all(path, "this is not a campaign journal\n");
  CampaignRunner::Options bopts = opts;
  bopts.resume = true;
  EXPECT_THROW((void)CampaignRunner(bopts).run(small_grid()),
               ckpt::CkptError);
  std::remove(path.c_str());
}

TEST(CampaignJournal, MetricsSurviveTheJournalRoundTrip) {
  const std::string path = journal_path("metrics");
  const std::string want = reference_json(/*collect_metrics=*/true);

  CampaignRunner::Options opts;
  opts.threads = 1;
  opts.collect_metrics = true;
  opts.journal = path;
  (void)CampaignRunner(opts).run(small_grid());

  // Truncate to roughly half the entries, then resume with metrics on:
  // restored metric snapshots must merge exactly like freshly-run ones.
  const std::string journal = read_all(path);
  std::size_t cut = 0;
  for (std::size_t i = 0, newlines = 0; i < journal.size(); ++i) {
    if (journal[i] == '\n' && ++newlines == 4) {
      cut = i + 1;
      break;
    }
  }
  ASSERT_GT(cut, 0u);
  write_all(path, journal.substr(0, cut));

  CampaignRunner::Options ropts = opts;
  ropts.threads = 3;
  ropts.resume = true;
  EXPECT_EQ(CampaignRunner(ropts).run(small_grid()).to_json(), want);
  std::remove(path.c_str());
}

TEST(CampaignJournal, MissingJournalFileStartsFresh) {
  const std::string path = journal_path("fresh");
  std::remove(path.c_str());
  CampaignRunner::Options opts;
  opts.threads = 1;
  opts.journal = path;
  opts.resume = true;  // resume against a journal that does not exist yet
  EXPECT_EQ(CampaignRunner(opts).run(small_grid()).to_json(),
            reference_json());
  std::remove(path.c_str());
}

TEST(CampaignJournal, CheckpointEveryOnlyAffectsFlushCadence) {
  const std::string path = journal_path("every");
  CampaignRunner::Options opts;
  opts.threads = 2;
  opts.journal = path;
  opts.checkpoint_every = 3;
  EXPECT_EQ(CampaignRunner(opts).run(small_grid()).to_json(),
            reference_json());
  // After a clean finish the journal is complete regardless of cadence.
  std::istringstream lines(read_all(path));
  std::size_t count = 0;
  for (std::string line; std::getline(lines, line);) ++count;
  EXPECT_EQ(count, small_grid().size() + 1);
  std::remove(path.c_str());
}

}  // namespace
