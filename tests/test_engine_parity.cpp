// Bit-exactness contract for the shared cycle engine (src/engine/).
//
// The goldens under tests/golden/engine/ were captured BEFORE the SimKernel
// refactor, from the five original systems' bespoke run() loops (the hetero
// goldens were captured when that system was introduced, already on the
// member-hook kernel, and pin it the same three ways). These tests prove the
// kernel reproduces those loops bit for bit — counters, error log, per-core
// stats, everything RunResult::to_json serialises — in three modes:
//
//   1. naive: the cycle-by-cycle loop (fast_forward off, the default);
//   2. fast-forward: quiescence skipping on (engine.fast_forward=1), which
//      must be an *observably invisible* optimisation (docs/ENGINE.md);
//   3. resumable fast-forward: run(n) + run() must equal one run() — the
//      kernel's resumable-run contract survives mid-skip interruption.
//
// If a test here fails after an intentional behaviour change, regenerate the
// goldens with tools/gen_engine_goldens and document why in docs/ENGINE.md.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

#ifndef UNSYNC_TEST_DATA_DIR
#error "UNSYNC_TEST_DATA_DIR must point at tests/ (set by tests/CMakeLists.txt)"
#endif

namespace unsync {
namespace {

constexpr core::SystemKind kKinds[] = {
    core::SystemKind::kBaseline,   core::SystemKind::kUnSync,
    core::SystemKind::kReunion,    core::SystemKind::kLockstep,
    core::SystemKind::kCheckpoint, core::SystemKind::kHetero};
constexpr const char* kProfiles[] = {"galgel", "gzip"};
constexpr std::uint64_t kSeeds[] = {7, 21, 1234};

std::string read_golden(const std::string& name) {
  const std::string path =
      std::string(UNSYNC_TEST_DATA_DIR) + "/golden/engine/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string golden_name(core::SystemKind kind, const char* prof,
                        std::uint64_t seed) {
  return std::string(core::name_of(kind)) + "_" + prof + "_s" +
         std::to_string(seed) + ".json";
}

/// Same recipe as tools/gen_engine_goldens.cpp — the goldens are only valid
/// against this exact construction.
std::unique_ptr<core::System> make_grid_system(core::SystemKind kind,
                                               const char* prof,
                                               std::uint64_t seed,
                                               bool fast_forward) {
  workload::SyntheticStream stream(workload::profile(prof), seed, 6000);
  core::SystemConfig cfg;
  cfg.num_threads = 2;
  cfg.ser_per_inst = 5e-4;
  cfg.seed = seed;
  cfg.fast_forward = fast_forward;
  return core::make_system(kind, cfg, stream);
}

void expect_grid_matches_goldens(bool fast_forward) {
  for (const auto kind : kKinds) {
    for (const char* prof : kProfiles) {
      for (const auto seed : kSeeds) {
        const auto sys = make_grid_system(kind, prof, seed, fast_forward);
        const core::RunResult r = sys->run();
        // gen_engine_goldens writes to_json() plus a trailing newline.
        EXPECT_EQ(r.to_json() + "\n",
                  read_golden(golden_name(kind, prof, seed)))
            << core::name_of(kind) << "/" << prof << "/s" << seed
            << " diverged from pre-refactor golden (fast_forward="
            << fast_forward << ")";
      }
    }
  }
}

// Mode 1: the naive loop must reproduce the original bespoke loops exactly.
TEST(EngineParity, NaiveMatchesPreRefactorGoldens) {
  expect_grid_matches_goldens(/*fast_forward=*/false);
}

// Mode 2: quiescence fast-forwarding must be bit-invisible. Any divergence
// here means OooCore::next_event claimed a window was static when it was not
// (or skip_cycles' closed-form replay missed a counter).
TEST(EngineParity, FastForwardMatchesPreRefactorGoldens) {
  expect_grid_matches_goldens(/*fast_forward=*/true);
}

// Mode 3: run(n) + run() == run(), with fast-forwarding on. The interim
// max_cycles bound lands inside skip windows, so this exercises the kernel's
// clamp-to-max_cycles path and proves a checkpointed/resumed campaign cannot
// observe the optimisation either.
TEST(EngineParity, ResumableRunUnderFastForward) {
  const std::uint64_t kCuts[] = {1, 1000, 4567};
  for (const auto kind : kKinds) {
    for (const auto cut : kCuts) {
      const auto whole = make_grid_system(kind, "galgel", 21, true);
      const core::RunResult full = whole->run();

      const auto split = make_grid_system(kind, "galgel", 21, true);
      const core::RunResult partial = split->run(cut);
      EXPECT_LE(partial.cycles, cut)
          << core::name_of(kind) << ": run(" << cut
          << ") overshot the absolute max_cycles bound";
      const core::RunResult resumed = split->run();
      EXPECT_EQ(resumed.to_json(), full.to_json())
          << core::name_of(kind) << ": run(" << cut
          << ") + run() != run() under fast-forward";
    }
  }
}

// A system that already finished must return the same result again without
// advancing (the kernel's run() is idempotent once every group is done).
TEST(EngineParity, RunAfterCompletionIsIdempotent) {
  const auto sys = make_grid_system(core::SystemKind::kUnSync, "gzip", 7, true);
  const core::RunResult first = sys->run();
  const core::RunResult again = sys->run();
  EXPECT_EQ(first.to_json(), again.to_json());
}

}  // namespace
}  // namespace unsync
