// Edge-case semantics of the functional model: shift amounts, signed
// division corner cases, page-straddling accesses, and golden-model
// determinism — the properties fault injection's undo/redo logic leans on.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/functional_sim.hpp"

namespace unsync::isa {
namespace {

FunctionalSim run(const std::string& src, std::uint64_t steps = 10000) {
  FunctionalSim sim(Assembler::assemble(src));
  sim.run(steps);
  return sim;
}

TEST(IsaSemantics, ShiftAmountsMaskTo6Bits) {
  auto sim = run(R"(
    li  r1, 1
    li  r2, 64        # masked to 0
    sll r3, r1, r2    # 1 << 0 = 1
    li  r2, 65        # masked to 1
    sll r4, r1, r2    # 1 << 1 = 2
    halt
  )");
  EXPECT_EQ(sim.state().regs[3], 1u);
  EXPECT_EQ(sim.state().regs[4], 2u);
}

TEST(IsaSemantics, SignedDivisionTruncatesTowardZero) {
  auto sim = run(R"(
    li  r1, -7
    li  r2, 2
    div r3, r1, r2    # -3 (toward zero)
    rem r4, r1, r2    # -1
    li  r1, 7
    li  r2, -2
    div r5, r1, r2    # -3
    rem r6, r1, r2    # 1
    halt
  )");
  EXPECT_EQ(static_cast<std::int64_t>(sim.state().regs[3]), -3);
  EXPECT_EQ(static_cast<std::int64_t>(sim.state().regs[4]), -1);
  EXPECT_EQ(static_cast<std::int64_t>(sim.state().regs[5]), -3);
  EXPECT_EQ(static_cast<std::int64_t>(sim.state().regs[6]), 1);
}

TEST(IsaSemantics, LuiOriComposeFullConstants) {
  auto sim = run(R"(
    la r1, 0x3FFC123   # near the top of la's 27-bit reach
    halt
  )");
  EXPECT_EQ(sim.state().regs[1], 0x3FFC123u);
}

TEST(IsaSemantics, PageStraddlingWordAccess) {
  // A store/load pair crossing the 4 KiB sparse-page boundary.
  auto sim = run(R"(
    la  r1, 0x200FFC    # 4 bytes below a page edge
    la  r2, 0x123456
    st  r2, 0(r1)
    ld  r3, 0(r1)
    halt
  )");
  EXPECT_EQ(sim.state().regs[3], 0x123456u);
}

TEST(IsaSemantics, ByteOpsOnlyTouchOneByte) {
  auto sim = run(R"(
    la  r1, 0x200000
    la  r2, 0x1FFF      # 14-bit value: 0x1FFF
    st  r2, 0(r1)
    li  r3, 0xAB
    sb  r3, 0(r1)       # clobber only the low byte
    ld  r4, 0(r1)
    lb  r5, 1(r1)
    halt
  )");
  EXPECT_EQ(sim.state().regs[4], 0x1FABu);
  EXPECT_EQ(sim.state().regs[5], 0x1Fu);
}

TEST(IsaSemantics, FcmpltOnEqualValuesIsFalse) {
  auto sim = run(R"(
    li    r1, 5
    fmovi f1, r1
    fmovi f2, r1
    fcmplt r3, f1, f2
    halt
  )");
  EXPECT_EQ(sim.state().regs[3], 0u);
}

TEST(IsaSemantics, NegativeIntToFpConversion) {
  auto sim = run(R"(
    li    r1, -3
    fmovi f1, r1
    li    r2, 0
    fmovi f2, r2
    fcmplt r3, f1, f2   # -3.0 < 0.0 -> 1
    halt
  )");
  EXPECT_EQ(sim.state().regs[3], 1u);
}

TEST(IsaSemantics, DeterministicReplayFromScratch) {
  // The injector's recovery model re-runs from instruction 0 and expects
  // bit-identical state at any cut point.
  const char* src = R"(
    li  r10, 500
    li  r4, 1
  loop:
    mul r4, r4, r10
    xor r4, r4, r10
    addi r10, r10, -1
    bne r10, r0, loop
    halt
  )";
  FunctionalSim a(Assembler::assemble(src));
  FunctionalSim b(Assembler::assemble(src));
  a.run(700);
  b.run(700);
  EXPECT_EQ(a.state(), b.state());
  EXPECT_TRUE(a.memory() == b.memory());
}

TEST(IsaSemantics, JalrRoundTripThroughFunctionTable) {
  auto sim = run(R"(
    la   r20, 0x200000
    # callee is the 10th instruction slot: 0x1000 + 9*4 (each la is 2)
    la   r21, 0x1024
    st   r21, 0(r20)
    ld   r22, 0(r20)
    jalr r31, r22       # indirect call
    li   r5, 99         # executed after return
    halt
  callee:
    li   r4, 7
    jalr r0, r31        # return
  )");
  EXPECT_EQ(sim.state().regs[4], 7u);
  EXPECT_EQ(sim.state().regs[5], 99u);
}

}  // namespace
}  // namespace unsync::isa
