#include <gtest/gtest.h>

#include "hwmodel/cache_model.hpp"
#include "hwmodel/cell_library.hpp"
#include "hwmodel/components.hpp"
#include "hwmodel/core_model.hpp"
#include "hwmodel/die_projection.hpp"
#include "hwmodel/energy.hpp"

namespace unsync::hwmodel {
namespace {

// ---- Table II: per-core hardware overheads ---------------------------------

TEST(Table2, BaselineMipsAnchors) {
  const CoreHw m = mips_baseline();
  EXPECT_NEAR(m.core_area_um2, 98558.0, 1.0);
  EXPECT_NEAR(m.l1_area_um2, 193400.0, 50.0);
  EXPECT_NEAR(m.total_area_um2(), 291958.0, 50.0);
  EXPECT_NEAR(m.core_power_w, 1.153, 1e-6);
  EXPECT_NEAR(m.l1_power_w, 0.03835, 1e-4);
  EXPECT_NEAR(m.total_power_w(), 1.19, 0.01);
}

TEST(Table2, ReunionAreaOverheads) {
  const CoreHw r = reunion_core(10);
  EXPECT_NEAR(r.core_area_um2, 144005.0, 150.0);
  EXPECT_NEAR(r.l1_area_um2, 208600.0, 100.0);
  EXPECT_NEAR(r.total_area_um2(), 352605.0, 250.0);
  EXPECT_NEAR(r.area_overhead_vs(mips_baseline()), 0.2077, 0.002);
}

TEST(Table2, ReunionPowerOverheads) {
  const CoreHw r = reunion_core(10);
  EXPECT_NEAR(r.core_power_w, 2.038, 0.005);
  EXPECT_NEAR(r.l1_power_w, 0.04215, 2e-4);
  EXPECT_NEAR(r.total_power_w(), 2.08, 0.01);
  EXPECT_NEAR(r.power_overhead_vs(mips_baseline()), 0.7479, 0.01);
}

TEST(Table2, UnsyncAreaOverheads) {
  const CoreHw u = unsync_core(10);
  EXPECT_NEAR(u.core_area_um2, 115945.0, 100.0);
  EXPECT_NEAR(u.l1_area_um2, 193900.0, 50.0);
  EXPECT_NEAR(u.cb_area_um2, 3870.0, 1.0);
  EXPECT_NEAR(u.total_area_um2(), 313715.0, 200.0);
  EXPECT_NEAR(u.area_overhead_vs(mips_baseline()), 0.0745, 0.001);
}

TEST(Table2, UnsyncPowerOverheads) {
  const CoreHw u = unsync_core(10);
  EXPECT_NEAR(u.core_power_w, 1.635, 0.005);
  EXPECT_NEAR(u.l1_power_w, 0.03845, 1e-4);
  EXPECT_NEAR(u.cb_power_w, 0.00077258, 1e-7);
  EXPECT_NEAR(u.total_power_w(), 1.67, 0.01);
  EXPECT_NEAR(u.power_overhead_vs(mips_baseline()), 0.4034, 0.005);
}

TEST(Table2, HeadlineClaims) {
  // "13.32% reduced area and 34.5% less power compared to Reunion."
  const CoreHw r = reunion_core(10);
  const CoreHw u = unsync_core(10);
  EXPECT_NEAR(1.0 - u.total_area_um2() / r.total_area_um2(), 0.1103, 0.002);
  // The paper's 13.32% figure is the overhead-percentage difference
  // (20.77% - 7.45%):
  const CoreHw base = mips_baseline();
  EXPECT_NEAR(r.area_overhead_vs(base) - u.area_overhead_vs(base), 0.1332,
              0.002);
  // 34.5% power: overhead-percentage difference 74.79% - 40.34%.
  EXPECT_NEAR(r.power_overhead_vs(base) - u.power_overhead_vs(base), 0.345,
              0.01);
}

// ---- §IV component analysis --------------------------------------------------

TEST(Components, CsbEntriesMatchPaper) {
  EXPECT_EQ(csb_entries_for_fi(10), 17);  // "a total of 17 buffer entries"
  EXPECT_EQ(csb_bits_for_fi(10), 1122u);  // "17 x 66 = 1122 bits"
}

TEST(Components, CsbAreaAtFi50MatchesPaper) {
  // "for a FI of 50, the CSB alone occupies 39125 um^2" -> 91% of the
  // 42818 um^2 MIPS core-sans-cache.
  const BlockHw csb = check_stage_buffer(50);
  EXPECT_NEAR(csb.area_um2, 39125.0, 150.0);
  EXPECT_NEAR(csb.area_um2 / kPaperMipsCellAreaNoCache, 0.91, 0.01);
}

TEST(Components, CsbCellLargerThanRfCell) {
  // 10.40 vs 7.80 um^2: the CSB bit cell is 1.33x an RF cell, and the
  // 17x66-bit CSB is ~1.46x a 32x32 register file.
  EXPECT_NEAR(kPaperCsbCellArea / kPaperRfCellArea, 1.333, 0.01);
  const double csb_area = check_stage_buffer(10).area_um2;
  EXPECT_NEAR(csb_area / register_file_area_32x32(), 1.46, 0.01);
}

TEST(Components, FingerprintGeneratorGateBudget) {
  const BlockHw fp = fingerprint_generator();
  EXPECT_NEAR(fp.area_um2, 238 * kGateArea, 1.0);
}

TEST(Components, CheckStageGrowsWithFi) {
  const double a10 = check_stage(10).area_um2;
  const double a30 = check_stage(30).area_um2;
  const double a50 = check_stage(50).area_um2;
  EXPECT_LT(a10, a30);
  EXPECT_LT(a30, a50);
}

TEST(Components, CheckStagePowerDominatedByBufferAndDatapath) {
  const BlockHw check = check_stage(10);
  const BlockHw crc = fingerprint_generator();
  EXPECT_GT(check.power_w - crc.power_w, crc.power_w);
}

TEST(Components, UnsyncDetectionSplitsDmrAndParity) {
  const BlockHw total = unsync_detection();
  const BlockHw dmr = dmr_detection();
  const BlockHw parity = parity_detection();
  EXPECT_NEAR(total.area_um2, dmr.area_um2 + parity.area_um2, 1e-9);
  // DMR (every-cycle elements) dominates; parity is the cheap part.
  EXPECT_GT(dmr.area_um2, parity.area_um2);
  EXPECT_GT(dmr.power_w, parity.power_w);
}

TEST(Components, CommunicationBufferScalesLinearly) {
  EXPECT_NEAR(communication_buffer(20).area_um2,
              2 * communication_buffer(10).area_um2, 1e-9);
}

TEST(Components, EihIsTiny) {
  const BlockHw eih = error_interrupt_handler();
  EXPECT_LT(eih.area_um2, 1000.0);
  EXPECT_LT(eih.power_w, 1e-3);
}

// ---- Cache model --------------------------------------------------------------

TEST(CacheModel, ParityCheckBitsPerLine) {
  EXPECT_EQ(protection_check_bits(CacheGeometry{},
                                  CacheProtection::kParityPerLine),
            512u);  // one per 64 B line of a 32 KiB cache
}

TEST(CacheModel, SecdedCheckBits) {
  EXPECT_EQ(protection_check_bits(CacheGeometry{}, CacheProtection::kSecded),
            32768u);  // 8 per 64 data bits
}

TEST(CacheModel, ProtectionOrdering) {
  const auto none = cache_hw(CacheGeometry{}, CacheProtection::kNone);
  const auto parity =
      cache_hw(CacheGeometry{}, CacheProtection::kParityPerLine);
  const auto secded = cache_hw(CacheGeometry{}, CacheProtection::kSecded);
  EXPECT_LT(none.area_um2, parity.area_um2);
  EXPECT_LT(parity.area_um2, secded.area_um2);
  EXPECT_LT(none.power_w, parity.power_w);
  EXPECT_LT(parity.power_w, secded.power_w);
}

TEST(CacheModel, ParityOverheadIsNegligible) {
  const auto none = cache_hw(CacheGeometry{}, CacheProtection::kNone);
  const auto parity =
      cache_hw(CacheGeometry{}, CacheProtection::kParityPerLine);
  EXPECT_LT(parity.area_um2 / none.area_um2 - 1.0, 0.01);  // < 1% (§III-B.1)
}

TEST(CacheModel, SecdedOverheadNearPaper) {
  const auto none = cache_hw(CacheGeometry{}, CacheProtection::kNone);
  const auto secded = cache_hw(CacheGeometry{}, CacheProtection::kSecded);
  EXPECT_NEAR(secded.area_um2 / none.area_um2 - 1.0, 0.0786, 0.005);
  EXPECT_NEAR(secded.power_w / none.power_w - 1.0, 0.099, 0.01);
}

TEST(CacheModel, AreaGrowsWithSize) {
  CacheGeometry small{.size_bytes = 16 * 1024};
  CacheGeometry big{.size_bytes = 64 * 1024};
  EXPECT_LT(cache_hw(small, CacheProtection::kNone).area_um2,
            cache_hw(big, CacheProtection::kNone).area_um2);
}

// ---- Table III: die-size projections ----------------------------------------

TEST(Table3, ChipsCatalogue) {
  const auto& chips = table3_chips();
  ASSERT_EQ(chips.size(), 3u);
  EXPECT_EQ(chips[0].cores, 80);
  EXPECT_EQ(chips[1].cores, 64);
  EXPECT_EQ(chips[2].cores, 128);
}

TEST(Table3, PolarisProjection) {
  const auto rows = project_table3();
  const auto& polaris = rows[0];
  EXPECT_NEAR(polaris.reunion_die_mm2, 316.54, 0.5);
  EXPECT_NEAR(polaris.unsync_die_mm2, 289.9, 0.5);
  EXPECT_NEAR(polaris.difference_mm2, 26.64, 0.5);
}

TEST(Table3, TileraProjection) {
  const auto rows = project_table3();
  EXPECT_NEAR(rows[1].reunion_die_mm2, 377.85, 0.6);
  EXPECT_NEAR(rows[1].unsync_die_mm2, 347.16, 0.6);
  EXPECT_NEAR(rows[1].difference_mm2, 30.69, 0.5);
}

TEST(Table3, GeForceProjection) {
  const auto rows = project_table3();
  EXPECT_NEAR(rows[2].reunion_die_mm2, 549.76, 1.0);
  EXPECT_NEAR(rows[2].unsync_die_mm2, 498.61, 1.0);
  EXPECT_NEAR(rows[2].difference_mm2, 51.15, 0.8);
}

TEST(Table3, DifferenceGrowsWithCoreCount) {
  // Paper observation 1: more cores -> the UnSync advantage grows
  // super-linearly in absolute die area.
  const auto rows = project_table3();
  EXPECT_GT(rows[2].difference_mm2, rows[0].difference_mm2 * 1.8);
}

TEST(Table3, ProjectionIsLinearInCao) {
  const ManyCoreChip chip{"X", 65, 100, 2.0, 300.0};
  const auto p = project(chip, 0.20, 0.10);
  EXPECT_NEAR(p.reunion_die_mm2, 300.0 + 200.0 * 0.20, 1e-9);
  EXPECT_NEAR(p.unsync_die_mm2, 300.0 + 200.0 * 0.10, 1e-9);
  EXPECT_NEAR(p.difference_mm2, 20.0, 1e-9);
}


// ---- Energy metrics -----------------------------------------------------------

TEST(Energy, DimensionsAndScaling) {
  const auto hw = unsync_core(10);
  const auto e = energy_for_run(hw, 2, 300'000'000, 100'000'000, 300e6);
  EXPECT_NEAR(e.runtime_s, 1.0, 1e-12);  // 300M cycles at 300MHz
  EXPECT_NEAR(e.energy_j, 2 * hw.total_power_w(), 1e-9);
  EXPECT_NEAR(e.edp, e.energy_j * e.runtime_s, 1e-12);
  // Twice the cycles -> twice the energy, 4x the EDP.
  const auto e2 = energy_for_run(hw, 2, 600'000'000, 100'000'000, 300e6);
  EXPECT_NEAR(e2.energy_j, 2 * e.energy_j, 1e-9);
  EXPECT_NEAR(e2.edp, 4 * e.edp, 1e-9);
}

TEST(Energy, PerInstructionMetric) {
  const auto hw = mips_baseline();
  const auto e = energy_for_run(hw, 1, 3'000'000, 1'000'000, 300e6);
  // 10ms at ~1.19W = ~11.9mJ over 1M insts = ~11.9 nJ/inst.
  EXPECT_NEAR(e.energy_per_inst_nj, hw.total_power_w() * 0.01 * 1e9 / 1e6,
              0.01);
}

TEST(Energy, ZeroInstructionsSafe) {
  const auto e = energy_for_run(mips_baseline(), 1, 1000, 0);
  EXPECT_DOUBLE_EQ(e.energy_per_inst_nj, 0.0);
}

}  // namespace
}  // namespace unsync::hwmodel
