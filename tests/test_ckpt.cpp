// Checkpoint/restore subsystem tests (src/ckpt + the save_state/load_state
// hooks): wire-format primitives, the "unsync.ckpt.v1" container (golden-
// pinned bytes), corruption rejection, component round-trips, and the
// headline guarantee — a system snapshotted mid-run and restored into a
// fresh process-equivalent instance finishes with a bit-identical RunResult
// for every architecture.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/serializer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/factory.hpp"
#include "core/system.hpp"
#include "mem/write_buffer.hpp"
#include "obs/metrics.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace unsync;

std::string hex(std::string_view bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (const unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xF]);
  }
  return out;
}

// ---- CRC and scalar wire format ---------------------------------------------

TEST(Crc32, MatchesTheStandardCheckValue) {
  // The universal CRC-32 check vector: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(ckpt::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(ckpt::crc32(""), 0u);
  EXPECT_NE(ckpt::crc32("123456789"), ckpt::crc32("123456788"));
}

TEST(Crc32, SeedChainsIncrementally) {
  // Note the explicit string_views: with a raw char* the seed would bind to
  // the (const void*, len) overload's length parameter.
  const std::uint32_t whole = ckpt::crc32(std::string_view("123456789"));
  const std::uint32_t part = ckpt::crc32(
      std::string_view("6789"), ckpt::crc32(std::string_view("12345")));
  EXPECT_EQ(whole, part);
}

TEST(Serializer, ScalarsRoundTrip) {
  ckpt::Serializer s;
  s.u8(0xAB);
  s.u32(0xDEADBEEF);
  s.u64(~std::uint64_t{0});
  s.i64(-123456789);
  s.b(true);
  s.b(false);
  s.f64(0.1);
  s.f64(-0.0);
  s.str("hello\0world");  // embedded NUL truncated by string_view ctor rules
  s.str("");

  ckpt::Deserializer d(s.take());
  EXPECT_EQ(d.u8(), 0xAB);
  EXPECT_EQ(d.u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.u64(), ~std::uint64_t{0});
  EXPECT_EQ(d.i64(), -123456789);
  EXPECT_TRUE(d.b());
  EXPECT_FALSE(d.b());
  EXPECT_EQ(d.f64(), 0.1);
  const double neg_zero = d.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // f64 is bit-exact, not value-equal
  EXPECT_EQ(d.str(), "hello");
  EXPECT_EQ(d.str(), "");
  EXPECT_TRUE(d.at_end());
}

TEST(Serializer, ScalarsAreLittleEndian) {
  ckpt::Serializer s;
  s.u32(0x01020304);
  EXPECT_EQ(hex(s.data()), "04030201");
}

TEST(Deserializer, ReadingPastTheEndThrows) {
  ckpt::Deserializer d(std::string("\x01", 1));
  EXPECT_EQ(d.u8(), 1);
  EXPECT_THROW(d.u8(), ckpt::CkptError);
  ckpt::Deserializer d2(std::string("abc"));
  EXPECT_THROW(d2.u64(), ckpt::CkptError);
}

// ---- Tagged chunks ----------------------------------------------------------

TEST(Chunks, NestAndVerifyExactConsumption) {
  ckpt::Serializer s;
  s.begin_chunk("OUTR");
  s.u64(7);
  s.begin_chunk("INNR");
  s.str("payload");
  s.end_chunk();
  s.u32(9);
  s.end_chunk();

  ckpt::Deserializer d(s.take());
  d.begin_chunk("OUTR");
  EXPECT_EQ(d.u64(), 7u);
  d.begin_chunk("INNR");
  EXPECT_EQ(d.str(), "payload");
  d.end_chunk();
  EXPECT_EQ(d.u32(), 9u);
  d.end_chunk();
  EXPECT_TRUE(d.at_end());
}

TEST(Chunks, TagMismatchThrows) {
  ckpt::Serializer s;
  s.begin_chunk("AAAA");
  s.u64(1);
  s.end_chunk();
  ckpt::Deserializer d(s.take());
  EXPECT_THROW(d.begin_chunk("BBBB"), ckpt::CkptError);
}

TEST(Chunks, UnderConsumptionThrows) {
  ckpt::Serializer s;
  s.begin_chunk("DATA");
  s.u64(1);
  s.u64(2);
  s.end_chunk();
  ckpt::Deserializer d(s.take());
  d.begin_chunk("DATA");
  (void)d.u64();  // reader that forgets the second field must fail loudly
  EXPECT_THROW(d.end_chunk(), ckpt::CkptError);
}

TEST(Chunks, OverConsumptionThrows) {
  ckpt::Serializer s;
  s.begin_chunk("DATA");
  s.u32(1);
  s.end_chunk();
  s.u64(42);  // the next section, not part of the chunk
  ckpt::Deserializer d(s.take());
  d.begin_chunk("DATA");
  (void)d.u32();
  EXPECT_THROW(d.u32(), ckpt::CkptError);  // would cross the chunk boundary
}

// ---- Container format (golden-pinned) ---------------------------------------

TEST(Container, GoldenBytes) {
  // Pins the "unsync.ckpt.v1" file layout byte-for-byte: magic, schema
  // string, payload length, CRC-32, payload. Any change to this golden is a
  // schema break and needs a version bump, not a golden update.
  EXPECT_EQ(hex(ckpt::wrap_container("ab")),
            "554e5359434b50540e00000000000000"  // "UNSYCKPT", len("unsync...")
            "756e73796e632e636b70742e7631"      // "unsync.ckpt.v1"
            "0200000000000000"                  // payload length = 2
            "6d48839e"                          // crc32("ab")
            "6162");                            // payload "ab"
}

TEST(Container, RoundTrips) {
  const std::string payload = "arbitrary \x00 binary \xff bytes";
  EXPECT_EQ(ckpt::unwrap_container(ckpt::wrap_container(payload)), payload);
}

TEST(Container, RejectsCorruption) {
  std::string file = ckpt::wrap_container("some checkpoint payload");
  // Flip one payload bit -> CRC mismatch.
  std::string corrupt = file;
  corrupt.back() = static_cast<char>(corrupt.back() ^ 0x01);
  EXPECT_THROW(ckpt::unwrap_container(corrupt), ckpt::CkptError);
  // Truncate -> advertised length vs. bytes-present mismatch.
  EXPECT_THROW(ckpt::unwrap_container(
                   std::string_view(file).substr(0, file.size() - 3)),
               ckpt::CkptError);
  // Bad magic.
  std::string bad_magic = file;
  bad_magic[0] = 'X';
  EXPECT_THROW(ckpt::unwrap_container(bad_magic), ckpt::CkptError);
  // Unknown schema string.
  std::string bad_schema = file;
  bad_schema[16] = 'X';  // first byte of "unsync.ckpt.v1"
  EXPECT_THROW(ckpt::unwrap_container(bad_schema), ckpt::CkptError);
}

TEST(Container, FileRoundTripAndCorruptFileRejection) {
  const std::string path = ::testing::TempDir() + "ckpt_file_test.ckpt";
  ckpt::write_file(path, "file payload");
  EXPECT_EQ(ckpt::read_file(path), "file payload");

  // Corrupt the file on disk; read_file must throw CkptError.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() - 2] = static_cast<char>(bytes[bytes.size() - 2] ^ 0x10);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(ckpt::read_file(path), ckpt::CkptError);
  std::remove(path.c_str());
}

// ---- Component round-trips --------------------------------------------------

TEST(ComponentCkpt, RngStateRoundTrips) {
  Rng a(12345);
  for (int i = 0; i < 100; ++i) (void)a.next();
  Rng b(999);  // different seed, then overwritten
  b.set_state(a.state());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(ComponentCkpt, WriteBufferRoundTrips) {
  mem::WriteBuffer wb(8);
  wb.push(0x1000, 1, 10);
  wb.push(0x2000, 2, 11);
  wb.push(0x3000, 3, 12);
  wb.pop();

  ckpt::Serializer s;
  wb.save_state(s);
  const std::string bytes = s.take();

  mem::WriteBuffer restored(8);
  ckpt::Deserializer d(bytes);
  restored.load_state(d);
  EXPECT_EQ(restored.size(), wb.size());
  EXPECT_EQ(restored.front().addr, wb.front().addr);
  EXPECT_EQ(restored.front().seq, wb.front().seq);
  EXPECT_EQ(restored.peak_occupancy(), wb.peak_occupancy());
  EXPECT_EQ(restored.total_pushed(), wb.total_pushed());

  // save -> load -> save is byte-identical.
  ckpt::Serializer s2;
  restored.save_state(s2);
  EXPECT_EQ(s2.data(), bytes);

  // Capacity is configuration, not state: restoring into a differently
  // sized buffer is rejected.
  mem::WriteBuffer wrong(16);
  ckpt::Deserializer d2(bytes);
  EXPECT_THROW(wrong.load_state(d2), ckpt::CkptError);
}

TEST(ComponentCkpt, SyntheticStreamRoundTrips) {
  workload::SyntheticStream a(workload::profile("gzip"), 7, 10000);
  workload::DynOp op;
  for (int i = 0; i < 1234; ++i) ASSERT_TRUE(a.next(&op));

  ckpt::Serializer s;
  a.save_state(s);
  workload::SyntheticStream b(workload::profile("gzip"), 7, 10000);
  ckpt::Deserializer d(s.take());
  b.load_state(d);

  workload::DynOp oa, ob;
  while (true) {
    const bool ha = a.next(&oa), hb = b.next(&ob);
    ASSERT_EQ(ha, hb);
    if (!ha) break;
    ASSERT_EQ(oa.seq, ob.seq);
    ASSERT_EQ(oa.pc, ob.pc);
    ASSERT_EQ(oa.mem_addr, ob.mem_addr);
    ASSERT_EQ(oa.taken, ob.taken);
  }
}

TEST(ComponentCkpt, SyntheticStreamRejectsIdentityMismatch) {
  workload::SyntheticStream a(workload::profile("gzip"), 7, 10000);
  ckpt::Serializer s;
  a.save_state(s);
  const std::string bytes = s.take();

  workload::SyntheticStream wrong_seed(workload::profile("gzip"), 8, 10000);
  ckpt::Deserializer d1(bytes);
  EXPECT_THROW(wrong_seed.load_state(d1), ckpt::CkptError);

  workload::SyntheticStream wrong_prof(workload::profile("mcf"), 7, 10000);
  ckpt::Deserializer d2(bytes);
  EXPECT_THROW(wrong_prof.load_state(d2), ckpt::CkptError);
}

TEST(ComponentCkpt, RunningStatRestoreIsExact) {
  RunningStat a;
  for (const double v : {1.5, -2.25, 7.75, 0.125, 3.5}) a.add(v);
  RunningStat b;
  b.restore(a.count(), a.mean(), a.m2(), a.min(), a.max(), a.sum());
  // Bit-equality, not tolerance: restore() reinstates the raw accumulators.
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.stddev(), b.stddev());
  EXPECT_EQ(a.sum(), b.sum());
  a.add(42.0);
  b.add(42.0);
  EXPECT_EQ(a.stddev(), b.stddev());  // and further accumulation agrees
}

TEST(ComponentCkpt, MetricsSnapshotRoundTripsByteIdentically) {
  obs::MetricsRegistry reg;
  reg.counter("sys.core0.commits").inc(123);
  reg.gauge("sys.ipc").add(0.75);
  reg.gauge("sys.ipc").add(1.25);
  reg.histogram("sys.rob", 0, 128, 8).add(17);
  obs::MetricsSnapshot snap = reg.snapshot();

  ckpt::Serializer s;
  snap.save(s);
  const std::string bytes = s.take();

  obs::MetricsSnapshot restored;
  ckpt::Deserializer d(bytes);
  restored.load(d);
  EXPECT_EQ(restored.to_json(), snap.to_json());

  ckpt::Serializer s2;
  restored.save(s2);
  EXPECT_EQ(s2.data(), bytes);
}

// ---- Whole-system snapshot / resume -----------------------------------------

class SystemCkpt : public ::testing::TestWithParam<core::SystemKind> {
 protected:
  std::unique_ptr<core::System> make() const {
    core::SystemConfig cfg;
    cfg.num_threads = 2;
    cfg.ser_per_inst = 2e-5;  // exercise error injection + recovery state
    cfg.seed = 1234;
    workload::SyntheticStream stream(workload::profile("gzip"), cfg.seed,
                                     6000);
    return core::make_system(GetParam(), cfg, stream);
  }
};

TEST_P(SystemCkpt, MidRunSnapshotResumesBitExactly) {
  // Ground truth: one uninterrupted run.
  const core::RunResult full = make()->run();
  ASSERT_GT(full.cycles, 100u);

  // Interrupted twin: run to ~40%, snapshot, discard the instance.
  const Cycle cut = full.cycles * 2 / 5;
  std::string snapshot;
  {
    auto sys = make();
    sys->run(cut);
    ckpt::Serializer s;
    sys->save_checkpoint(s);
    snapshot = s.take();
  }

  // Fresh instance (a new process in miniature): restore, then finish.
  auto resumed = make();
  {
    ckpt::Deserializer d(snapshot);
    resumed->load_checkpoint(d);
    EXPECT_TRUE(d.at_end());
  }
  // save -> load -> save byte-identity before resuming.
  {
    ckpt::Serializer s;
    resumed->save_checkpoint(s);
    EXPECT_EQ(s.data(), snapshot);
  }
  const core::RunResult after = resumed->run();
  EXPECT_EQ(after.to_json(), full.to_json());
}

TEST_P(SystemCkpt, SegmentedRunMatchesUninterrupted) {
  // The resumable-run contract alone (no serialization): run(N) then run()
  // is the same as one run().
  const core::RunResult full = make()->run();
  auto sys = make();
  sys->run(full.cycles / 3);
  sys->run(full.cycles * 2 / 3);
  EXPECT_EQ(sys->run().to_json(), full.to_json());
}

TEST_P(SystemCkpt, FileRoundTripResumesBitExactly) {
  const core::RunResult full = make()->run();
  const std::string path = ::testing::TempDir() + "sys_" +
                           std::string(core::name_of(GetParam())) + ".ckpt";
  {
    auto sys = make();
    sys->run(full.cycles / 2);
    sys->save_checkpoint_file(path);
  }
  auto resumed = make();
  resumed->load_checkpoint_file(path);
  EXPECT_EQ(resumed->run().to_json(), full.to_json());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, SystemCkpt,
    ::testing::Values(core::SystemKind::kBaseline, core::SystemKind::kUnSync,
                      core::SystemKind::kReunion, core::SystemKind::kLockstep,
                      core::SystemKind::kCheckpoint, core::SystemKind::kHetero),
    [](const auto& info) { return std::string(core::name_of(info.param)); });

TEST(SystemCkptMismatch, RejectsCheckpointFromAnotherSystemKind) {
  core::SystemConfig cfg;
  cfg.num_threads = 1;
  workload::SyntheticStream stream(workload::profile("gzip"), 42, 2000);

  auto baseline = core::make_system(core::SystemKind::kBaseline, cfg, stream);
  baseline->run(500);
  ckpt::Serializer s;
  baseline->save_checkpoint(s);

  auto unsync_sys = core::make_system(core::SystemKind::kUnSync, cfg, stream);
  ckpt::Deserializer d(s.take());
  EXPECT_THROW(unsync_sys->load_checkpoint(d), ckpt::CkptError);
}

TEST(SystemCkptMismatch, HeteroTagRejectsForeignCheckpoints) {
  // HTRO is its own wire tag: a hetero system refuses an UnSync snapshot and
  // vice versa, even though both serialise a two-member group per thread.
  core::SystemConfig cfg;
  cfg.num_threads = 1;
  workload::SyntheticStream stream(workload::profile("gzip"), 42, 2000);

  auto hetero = core::make_system(core::SystemKind::kHetero, cfg, stream);
  hetero->run(500);
  ckpt::Serializer s;
  hetero->save_checkpoint(s);
  const std::string hetero_bytes = s.take();

  auto unsync_sys = core::make_system(core::SystemKind::kUnSync, cfg, stream);
  {
    ckpt::Deserializer d(hetero_bytes);
    EXPECT_THROW(unsync_sys->load_checkpoint(d), ckpt::CkptError);
  }

  ckpt::Serializer s2;
  unsync_sys->save_checkpoint(s2);
  auto hetero2 = core::make_system(core::SystemKind::kHetero, cfg, stream);
  ckpt::Deserializer d2(s2.take());
  EXPECT_THROW(hetero2->load_checkpoint(d2), ckpt::CkptError);
}

TEST(SystemCkptMismatch, RejectsConfigurationMismatch) {
  workload::SyntheticStream stream(workload::profile("gzip"), 42, 2000);
  core::SystemConfig two;
  two.num_threads = 2;
  auto sys2 = core::make_system(core::SystemKind::kUnSync, two, stream);
  sys2->run(400);
  ckpt::Serializer s;
  sys2->save_checkpoint(s);

  core::SystemConfig one;
  one.num_threads = 1;
  auto sys1 = core::make_system(core::SystemKind::kUnSync, one, stream);
  ckpt::Deserializer d(s.take());
  EXPECT_THROW(sys1->load_checkpoint(d), ckpt::CkptError);
}

TEST(SystemCkptMismatch, RejectsTrailingGarbageInFile) {
  core::SystemConfig cfg;
  cfg.num_threads = 1;
  workload::SyntheticStream stream(workload::profile("gzip"), 42, 2000);
  auto sys = core::make_system(core::SystemKind::kBaseline, cfg, stream);
  sys->run(300);

  ckpt::Serializer s;
  sys->save_checkpoint(s);
  std::string payload = s.take();
  payload += "trailing";
  const std::string path = ::testing::TempDir() + "trailing.ckpt";
  ckpt::write_file(path, payload);

  auto fresh = core::make_system(core::SystemKind::kBaseline, cfg, stream);
  EXPECT_THROW(fresh->load_checkpoint_file(path), ckpt::CkptError);
  std::remove(path.c_str());
}

// ---- Container fuzzing ------------------------------------------------------
//
// The robustness contract of every "unsync.ckpt.v1" consumer (file AND
// in-memory blob): arbitrary truncation or bit corruption throws CkptError —
// never a crash, never a silently-wrong restore. The container CRC makes
// this provable for single-bit flips; truncation trips the magic / length /
// CRC checks depending on where the cut lands.

class CkptFuzz : public ::testing::TestWithParam<core::SystemKind> {
 protected:
  std::unique_ptr<core::System> make() const {
    core::SystemConfig cfg;
    cfg.num_threads = 1;
    cfg.ser_per_inst = 5e-5;
    cfg.seed = 99;
    workload::SyntheticStream stream(workload::profile("gzip"), cfg.seed,
                                     1500);
    return core::make_system(GetParam(), cfg, stream);
  }

  std::string snapshot() const {
    auto sys = make();
    sys->run(400);
    return sys->save_checkpoint_bytes();
  }

  /// Offsets spread over the whole blob, dense in the container header.
  static std::vector<std::size_t> sample_offsets(std::size_t size) {
    std::vector<std::size_t> at;
    for (std::size_t i = 0; i < size && i < 40; ++i) at.push_back(i);
    for (std::size_t i = 40; i < size; i += size / 64 + 1) at.push_back(i);
    if (size > 0) at.push_back(size - 1);
    return at;
  }
};

TEST_P(CkptFuzz, TruncatedCheckpointBytesAlwaysThrow) {
  const std::string blob = snapshot();
  ASSERT_GT(blob.size(), 100u);
  auto sys = make();  // unwrap_container throws before any state is touched
  for (const std::size_t keep : sample_offsets(blob.size())) {
    EXPECT_THROW(sys->load_checkpoint_bytes(blob.substr(0, keep)),
                 ckpt::CkptError)
        << "truncated to " << keep << " of " << blob.size() << " bytes";
  }
}

TEST_P(CkptFuzz, BitFlippedCheckpointBytesAlwaysThrow) {
  const std::string blob = snapshot();
  auto sys = make();
  for (const std::size_t at : sample_offsets(blob.size())) {
    for (const unsigned bit : {0u, 3u, 7u}) {
      std::string corrupt = blob;
      corrupt[at] = static_cast<char>(corrupt[at] ^ (1u << bit));
      EXPECT_THROW(sys->load_checkpoint_bytes(corrupt), ckpt::CkptError)
          << "bit " << bit << " of byte " << at;
    }
  }
}

TEST_P(CkptFuzz, CorruptCheckpointFilesAlwaysThrow) {
  const std::string path = ::testing::TempDir() + "fuzz.ckpt";
  {
    auto sys = make();
    sys->run(400);
    sys->save_checkpoint_file(path);
  }
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  const auto rewrite = [&](const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
  };
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{17}, bytes.size() / 2,
        bytes.size() - 1}) {
    rewrite(bytes.substr(0, keep));
    auto sys = make();
    EXPECT_THROW(sys->load_checkpoint_file(path), ckpt::CkptError)
        << "file truncated to " << keep;
  }
  std::string flipped = bytes;
  flipped[bytes.size() / 3] = static_cast<char>(flipped[bytes.size() / 3] ^ 0x40);
  rewrite(flipped);
  auto sys = make();
  EXPECT_THROW(sys->load_checkpoint_file(path), ckpt::CkptError);
  std::remove(path.c_str());
}

TEST_P(CkptFuzz, SaveLoadBytesRoundTripsBitExactly) {
  // The in-memory path mirrors the file path: save_checkpoint_bytes ->
  // load_checkpoint_bytes resumes to a bit-identical final result.
  const core::RunResult full = make()->run();
  const std::string blob = snapshot();
  auto resumed = make();
  resumed->load_checkpoint_bytes(blob);
  EXPECT_EQ(resumed->save_checkpoint_bytes(), blob);
  EXPECT_EQ(resumed->run().to_json(), full.to_json());
}

INSTANTIATE_TEST_SUITE_P(
    WireFormats, CkptFuzz,
    ::testing::Values(core::SystemKind::kUnSync, core::SystemKind::kHetero),
    [](const auto& info) { return std::string(core::name_of(info.param)); });

}  // namespace
