// Property sweeps over the whole benchmark catalogue: every profile must
// drive every system to completion with deterministic, plausible behaviour.
// These are the "no benchmark left behind" guards for the bench harness.
#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/reunion_system.hpp"
#include "core/unsync_system.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace unsync::core {
namespace {

constexpr std::uint64_t kInsts = 8000;

SystemConfig cfg1() {
  SystemConfig cfg;
  cfg.num_threads = 1;
  return cfg;
}

class EveryProfile : public ::testing::TestWithParam<int> {
 protected:
  const workload::BenchmarkProfile& prof() const {
    return workload::all_profiles().at(static_cast<std::size_t>(GetParam()));
  }
};

TEST_P(EveryProfile, BaselineIpcPlausible) {
  workload::SyntheticStream s(prof(), 21, kInsts);
  BaselineSystem sys(cfg1(), s);
  const RunResult r = sys.run();
  EXPECT_EQ(r.core_stats[0].committed, kInsts);
  // A 4-wide core on any realistic mix lands well inside (0.05, 4.0).
  EXPECT_GT(r.thread_ipc(), 0.05) << prof().name;
  EXPECT_LT(r.thread_ipc(), 4.0) << prof().name;
}

TEST_P(EveryProfile, UnsyncCompletesBothCores) {
  workload::SyntheticStream s(prof(), 22, kInsts);
  UnSyncParams p;
  p.cb_entries = 128;
  UnSyncSystem sys(cfg1(), p, s);
  const RunResult r = sys.run();
  EXPECT_EQ(r.core_stats[0].committed, kInsts) << prof().name;
  EXPECT_EQ(r.core_stats[1].committed, kInsts) << prof().name;
}

TEST_P(EveryProfile, ReunionCompletesBothCores) {
  workload::SyntheticStream s(prof(), 23, kInsts);
  ReunionSystem sys(cfg1(), ReunionParams{}, s);
  const RunResult r = sys.run();
  EXPECT_EQ(r.core_stats[0].committed, kInsts) << prof().name;
  EXPECT_EQ(r.core_stats[1].committed, kInsts) << prof().name;
}

TEST_P(EveryProfile, MixStatisticsWithinTolerance) {
  workload::SyntheticStream s(prof(), 24, 50000);
  workload::DynOp op;
  std::uint64_t loads = 0, stores = 0, branches = 0;
  while (s.next(&op)) {
    loads += op.is_load();
    stores += op.is_store();
    branches += op.is_branch();
  }
  const double n = 50000;
  EXPECT_NEAR(loads / n, prof().mix.load, 0.015) << prof().name;
  EXPECT_NEAR(stores / n, prof().mix.store, 0.015) << prof().name;
  EXPECT_NEAR(branches / n, prof().mix.branch, 0.015) << prof().name;
}

TEST_P(EveryProfile, CloneDeterminismUnderSystems) {
  // Two fresh systems over the same stream: identical cycle counts.
  workload::SyntheticStream s(prof(), 25, kInsts);
  const Cycle a = BaselineSystem(cfg1(), s).run().cycles;
  const Cycle b = BaselineSystem(cfg1(), s).run().cycles;
  EXPECT_EQ(a, b) << prof().name;
}

INSTANTIATE_TEST_SUITE_P(
    Catalogue, EveryProfile, ::testing::Range(0, 14),
    [](const ::testing::TestParamInfo<int>& info) {
      return unsync::workload::all_profiles()
          .at(static_cast<std::size_t>(info.param))
          .name;
    });

}  // namespace
}  // namespace unsync::core
