#include "core/related_work.hpp"

#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/unsync_system.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace unsync::core {
namespace {

SystemConfig cfg1(double ser = 0.0) {
  SystemConfig cfg;
  cfg.num_threads = 1;
  cfg.ser_per_inst = ser;
  return cfg;
}

TEST(Lockstep, CompletesAndStaysCoupled) {
  workload::SyntheticStream s(workload::profile("gzip"), 1, 15000);
  LockstepSystem sys(cfg1(), LockstepParams{}, s);
  const RunResult r = sys.run();
  ASSERT_EQ(r.core_stats.size(), 2u);
  EXPECT_EQ(r.core_stats[0].committed, 15000u);
  EXPECT_EQ(r.core_stats[1].committed, 15000u);
}

TEST(Lockstep, SlowerThanBaseline) {
  // The coupling + load-checker tax must cost against the uncoupled CMP.
  workload::SyntheticStream s(workload::profile("gzip"), 2, 20000);
  BaselineSystem base(cfg1(), s);
  LockstepSystem lock(cfg1(), LockstepParams{}, s);
  EXPECT_LT(lock.run().thread_ipc(), base.run().thread_ipc());
}

TEST(Lockstep, SlowerThanUnsync) {
  // The paper's premise: decoupling (UnSync) beats coupling (lock-step) in
  // error-free execution.
  workload::SyntheticStream s(workload::profile("mcf"), 3, 20000);
  UnSyncParams up;
  up.cb_entries = 256;
  UnSyncSystem us(cfg1(), up, s);
  LockstepSystem lock(cfg1(), LockstepParams{}, s);
  EXPECT_GT(us.run().thread_ipc(), lock.run().thread_ipc());
}

TEST(Lockstep, LoadHeavyWorkloadsPayTheCheckerTax) {
  auto overhead = [](const char* bench) {
    workload::SyntheticStream s(workload::profile(bench), 4, 20000);
    BaselineSystem base(cfg1(), s);
    LockstepSystem lock(cfg1(), LockstepParams{}, s);
    const double b = base.run().thread_ipc();
    return (b - lock.run().thread_ipc()) / b;
  };
  EXPECT_GT(overhead("mcf"), 0.0);  // 33% loads
}

TEST(Lockstep, ErrorsAreCheapToRecover) {
  workload::SyntheticStream s(workload::profile("gzip"), 5, 20000);
  LockstepSystem clean(cfg1(), LockstepParams{}, s);
  LockstepSystem dirty(cfg1(1e-4), LockstepParams{}, s);
  const auto rc = clean.run();
  const auto rd = dirty.run();
  EXPECT_GT(rd.errors_injected, 0u);
  EXPECT_EQ(rd.recoveries, rd.errors_injected);
  // Per-error cost is a small flush: total slowdown stays tiny.
  EXPECT_LT(rd.cycles, rc.cycles + rd.errors_injected * 100);
  EXPECT_EQ(rd.core_stats[0].committed, 20000u);
}

TEST(Checkpoint, CompletesWithPeriodicCaptures) {
  workload::SyntheticStream s(workload::profile("gzip"), 6, 20000);
  CheckpointParams p;
  p.checkpoint_interval = 1000;
  DmrCheckpointSystem sys(cfg1(), p, s);
  const RunResult r = sys.run();
  EXPECT_EQ(r.core_stats[0].committed, 20000u);
  EXPECT_EQ(r.core_stats[1].committed, 20000u);
  // 20000 insts / 1000 = 20 boundaries (the final one falls exactly at the
  // stream end and may not be crossed).
  EXPECT_GE(sys.checkpoints_taken(), 19u);
  EXPECT_LE(sys.checkpoints_taken(), 20u);
}

TEST(Checkpoint, CaptureCostScalesInverselyWithInterval) {
  workload::SyntheticStream s(workload::profile("gzip"), 7, 30000);
  CheckpointParams frequent;
  frequent.checkpoint_interval = 250;
  CheckpointParams rare;
  rare.checkpoint_interval = 5000;
  DmrCheckpointSystem a(cfg1(), frequent, s);
  DmrCheckpointSystem b(cfg1(), rare, s);
  EXPECT_GT(a.run().cycles, b.run().cycles);
}

TEST(Checkpoint, SlowerThanUnsyncErrorFree) {
  workload::SyntheticStream s(workload::profile("bzip2"), 8, 20000);
  UnSyncParams up;
  up.cb_entries = 256;
  UnSyncSystem us(cfg1(), up, s);
  DmrCheckpointSystem cp(cfg1(), CheckpointParams{}, s);
  EXPECT_GT(us.run().thread_ipc(), cp.run().thread_ipc());
}

TEST(Checkpoint, RollbackReexecutesEpoch) {
  workload::SyntheticStream s(workload::profile("gzip"), 9, 30000);
  DmrCheckpointSystem clean(cfg1(), CheckpointParams{}, s);
  DmrCheckpointSystem dirty(cfg1(5e-4), CheckpointParams{}, s);
  const auto rc = clean.run();
  const auto rd = dirty.run();
  EXPECT_GT(rd.rollbacks, 0u);
  EXPECT_GT(rd.cycles, rc.cycles);  // epochs re-executed
  EXPECT_EQ(rd.core_stats[0].committed, 30000u);
}

TEST(Checkpoint, DeterministicAcrossRuns) {
  workload::SyntheticStream s(workload::profile("ammp"), 10, 15000);
  DmrCheckpointSystem a(cfg1(1e-4), CheckpointParams{}, s);
  DmrCheckpointSystem b(cfg1(1e-4), CheckpointParams{}, s);
  EXPECT_EQ(a.run().cycles, b.run().cycles);
}

// Landscape property: error-free ordering of the redundancy schemes on a
// representative benchmark — baseline >= unsync > {checkpoint, lockstep}.
TEST(RelatedWork, ErrorFreeOrdering) {
  workload::SyntheticStream s(workload::profile("gzip"), 11, 30000);
  BaselineSystem base(cfg1(), s);
  UnSyncParams up;
  up.cb_entries = 256;
  UnSyncSystem us(cfg1(), up, s);
  LockstepSystem lock(cfg1(), LockstepParams{}, s);
  DmrCheckpointSystem cp(cfg1(), CheckpointParams{}, s);

  const double b = base.run().thread_ipc();
  const double u = us.run().thread_ipc();
  const double l = lock.run().thread_ipc();
  const double c = cp.run().thread_ipc();
  EXPECT_GE(b * 1.02, u);
  EXPECT_GT(u, l);
  EXPECT_GT(u, c);
}

}  // namespace
}  // namespace unsync::core
