#include "core/fingerprint.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace unsync::core {
namespace {

TEST(Crc16, KnownVector) {
  // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
  Crc16 crc;
  for (char c : std::string("123456789")) {
    crc.add_byte(static_cast<std::uint8_t>(c));
  }
  EXPECT_EQ(crc.value(), 0x29B1);
}

TEST(Crc16, ResetRestoresInit) {
  Crc16 crc;
  crc.add_byte(0xAB);
  crc.reset();
  EXPECT_EQ(crc.value(), 0xFFFF);
}

TEST(Crc16, WordOrderMatters) {
  Crc16 a, b;
  a.add_word(1);
  a.add_word(2);
  b.add_word(2);
  b.add_word(1);
  EXPECT_NE(a.value(), b.value());
}

TEST(Fingerprint, IdenticalStreamsMatch) {
  using workload::SyntheticStream;
  SyntheticStream s1(workload::profile("gzip"), 5, 500);
  auto s2 = s1.clone();
  std::vector<workload::DynOp> a, b;
  workload::DynOp op;
  while (s1.next(&op)) a.push_back(op);
  while (s2->next(&op)) b.push_back(op);
  EXPECT_EQ(fingerprint_of(a.data(), a.size()),
            fingerprint_of(b.data(), b.size()));
}

TEST(Fingerprint, SingleBitDivergenceDetected) {
  using workload::SyntheticStream;
  SyntheticStream s(workload::profile("gzip"), 6, 100);
  std::vector<workload::DynOp> a;
  workload::DynOp op;
  while (s.next(&op)) a.push_back(op);
  auto b = a;
  b[50].pc ^= 1;  // a corrupted PC on one core
  EXPECT_NE(fingerprint_of(a.data(), a.size()),
            fingerprint_of(b.data(), b.size()));
}

TEST(Fingerprint, AddressCorruptionDetected) {
  workload::DynOp op;
  op.seq = 1;
  op.pc = 0x1000;
  op.cls = isa::InstClass::kStore;
  op.mem_addr = 0x4000;
  workload::DynOp bad = op;
  bad.mem_addr = 0x4008;
  EXPECT_NE(fingerprint_of(&op, 1), fingerprint_of(&bad, 1));
}

TEST(Fingerprint, AliasingIsRare) {
  // Random single-word perturbations should alias at ~2^-16; with 2000
  // trials, expect at most a couple of collisions.
  Rng rng(7);
  workload::DynOp base;
  base.seq = 9;
  base.pc = 0x1000;
  int collisions = 0;
  const auto ref = fingerprint_of(&base, 1);
  for (int i = 0; i < 2000; ++i) {
    workload::DynOp mut = base;
    mut.pc ^= rng.next() | 1;  // ensure at least one bit differs
    collisions += fingerprint_of(&mut, 1) == ref;
  }
  EXPECT_LE(collisions, 3);
}

TEST(Fingerprint, EmptySequence) {
  EXPECT_EQ(fingerprint_of(nullptr, 0), 0xFFFF);
}


TEST(ParallelCrc16, MatchesSerialOnKnownVector) {
  // "123456789" = halfwords 0x3132 0x3334 0x3536 0x3738 + trailing byte.
  ParallelCrc16 par;
  par.add_halfword(0x3132);
  par.add_halfword(0x3334);
  par.add_halfword(0x3536);
  par.add_halfword(0x3738);
  // Odd trailing byte '9': fold via the serial reference to finish.
  Crc16 ref;
  for (char c : std::string("123456789")) {
    ref.add_byte(static_cast<std::uint8_t>(c));
  }
  // The parallel value after 8 bytes must equal the serial value after the
  // same 8 bytes.
  Crc16 ref8;
  for (char c : std::string("12345678")) {
    ref8.add_byte(static_cast<std::uint8_t>(c));
  }
  EXPECT_EQ(par.value(), ref8.value());
  EXPECT_EQ(ref.value(), 0x29B1);
}

TEST(ParallelCrc16, WordEquivalenceWithSerial) {
  Rng rng(42);
  for (int trial = 0; trial < 500; ++trial) {
    Crc16 serial;
    ParallelCrc16 parallel;
    const int words = 1 + static_cast<int>(rng.below(8));
    for (int w = 0; w < words; ++w) {
      const std::uint64_t v = rng.next();
      serial.add_word(v);
      parallel.add_word(v);
    }
    ASSERT_EQ(parallel.value(), serial.value()) << "trial " << trial;
  }
}

TEST(ParallelCrc16, ResetRestoresInit) {
  ParallelCrc16 p;
  p.add_halfword(0xBEEF);
  p.reset();
  EXPECT_EQ(p.value(), 0xFFFF);
}

}  // namespace
}  // namespace unsync::core
