#include "isa/assembler.hpp"

#include <gtest/gtest.h>

namespace unsync::isa {
namespace {

TEST(Assembler, SimpleProgram) {
  const auto prog = Assembler::assemble(R"(
    addi r1, r0, 5
    addi r2, r0, 7
    add  r3, r1, r2
    halt
  )");
  ASSERT_EQ(prog.code.size(), 4u);
  EXPECT_EQ(prog.code[0].op, Opcode::kAddi);
  EXPECT_EQ(prog.code[2].op, Opcode::kAdd);
  EXPECT_EQ(prog.code[3].op, Opcode::kHalt);
}

TEST(Assembler, CommentsAndBlankLinesIgnored) {
  const auto prog = Assembler::assemble(R"(
    # a comment
    addi r1, r0, 1   # trailing comment

    halt
  )");
  EXPECT_EQ(prog.code.size(), 2u);
}

TEST(Assembler, BackwardBranchToLabel) {
  const auto prog = Assembler::assemble(R"(
    addi r1, r0, 10
  loop:
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
  )");
  ASSERT_EQ(prog.code.size(), 4u);
  // bne at index 2 branches to index 1 -> offset -1.
  EXPECT_EQ(prog.code[2].imm, -1);
}

TEST(Assembler, ForwardBranchToLabel) {
  const auto prog = Assembler::assemble(R"(
    beq r0, r0, end
    addi r1, r0, 1
  end:
    halt
  )");
  EXPECT_EQ(prog.code[0].imm, 2);
}

TEST(Assembler, JalToLabel) {
  const auto prog = Assembler::assemble(R"(
    jal r31, func
    halt
  func:
    halt
  )");
  EXPECT_EQ(prog.code[0].op, Opcode::kJal);
  EXPECT_EQ(prog.code[0].imm, 2);
  EXPECT_EQ(prog.code[0].rd, 31);
}

TEST(Assembler, MemoryOperandForms) {
  const auto prog = Assembler::assemble(R"(
    ld r1, 8(r2)
    ld r3, (r4)
    st r5, -16(r6)
    halt
  )");
  EXPECT_EQ(prog.code[0].imm, 8);
  EXPECT_EQ(prog.code[0].rs1, 2);
  EXPECT_EQ(prog.code[1].imm, 0);
  EXPECT_EQ(prog.code[2].imm, -16);
  EXPECT_EQ(prog.code[2].rd, 5);   // store data register
  EXPECT_EQ(prog.code[2].rs1, 6);  // base register
}

TEST(Assembler, DataWordDirective) {
  const auto prog = Assembler::assemble(R"(
    halt
    .word 1, 2, 0x10
  )");
  ASSERT_EQ(prog.data.size(), 24u);
  EXPECT_EQ(prog.data[0], 1);
  EXPECT_EQ(prog.data[8], 2);
  EXPECT_EQ(prog.data[16], 0x10);
}

TEST(Assembler, SpaceAndAlignDirectives) {
  const auto prog = Assembler::assemble(R"(
    halt
    .word 1
    .space 3
    .align 8
    .word 2
  )");
  // 8 + 3 = 11, aligned to 16, + 8 = 24.
  EXPECT_EQ(prog.data.size(), 24u);
  EXPECT_EQ(prog.data[16], 2);
}

TEST(Assembler, UndefinedDataLabelInLaThrows) {
  EXPECT_THROW(Assembler::assemble(R"(
    la r1, nosuchbuf
    halt
  )"), AsmError);
}

TEST(Assembler, LaExpandsToLuiOri) {
  // Data labels must be defined before use (single forward pass over data).
  const auto prog = Assembler::assemble(R"(
    .word 1
  buf:
    .word 2
    la r1, buf
    halt
  )");
  ASSERT_EQ(prog.code.size(), 3u);
  EXPECT_EQ(prog.code[0].op, Opcode::kLui);
  EXPECT_EQ(prog.code[1].op, Opcode::kOri);
  const Addr addr = prog.data_base + 8;
  EXPECT_EQ(prog.code[0].imm, static_cast<std::int32_t>(addr >> 14));
}

TEST(Assembler, LaWithIntegerAddress) {
  const auto prog = Assembler::assemble("la r2, 0x123456\nhalt");
  ASSERT_EQ(prog.code.size(), 3u);
  EXPECT_EQ(prog.code[0].rd, 2);
  EXPECT_EQ(prog.code[1].rd, 2);
  EXPECT_EQ(prog.code[1].rs1, 2);
}

TEST(Assembler, UnknownMnemonicThrows) {
  EXPECT_THROW(Assembler::assemble("frobnicate r1, r2, r3"), AsmError);
}

TEST(Assembler, UndefinedLabelThrows) {
  EXPECT_THROW(Assembler::assemble("beq r0, r0, nowhere\nhalt"), AsmError);
}

TEST(Assembler, WrongOperandCountThrows) {
  EXPECT_THROW(Assembler::assemble("add r1, r2"), AsmError);
  EXPECT_THROW(Assembler::assemble("halt r1"), AsmError);
}

TEST(Assembler, BadRegisterThrows) {
  EXPECT_THROW(Assembler::assemble("add r1, r2, r32"), AsmError);
  EXPECT_THROW(Assembler::assemble("add r1, r2, x3"), AsmError);
}

TEST(Assembler, BadImmediateThrows) {
  EXPECT_THROW(Assembler::assemble("addi r1, r0, notanumber"), AsmError);
}

TEST(Assembler, ImmediateRangeCheckedAtAssembly) {
  EXPECT_THROW(Assembler::assemble("addi r1, r0, 99999"), AsmError);
}

TEST(Assembler, ErrorCarriesLineNumber) {
  try {
    Assembler::assemble("addi r1, r0, 1\nbogus\nhalt");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line, 2);
    EXPECT_NE(e.what().find("bogus"), std::string::npos);
  }
}

TEST(Assembler, LabelOnSameLineAsInstruction) {
  const auto prog = Assembler::assemble(R"(
  start: addi r1, r0, 1
    beq r0, r0, start
    halt
  )");
  EXPECT_EQ(prog.code.size(), 3u);
  EXPECT_EQ(prog.code[1].imm, -1);
}

TEST(Assembler, FpInstructionsParse) {
  const auto prog = Assembler::assemble(R"(
    fmovi f1, r2
    fadd f3, f1, f1
    fld f4, 0(r5)
    fst f4, 8(r5)
    fcmplt r6, f3, f4
    halt
  )");
  EXPECT_EQ(prog.code[0].op, Opcode::kFmovi);
  EXPECT_EQ(prog.code[4].op, Opcode::kFcmplt);
}

TEST(Assembler, SerializingInstructionsParse) {
  const auto prog = Assembler::assemble("syscall\nmembar\nhalt");
  EXPECT_TRUE(prog.code[0].is_serializing());
  EXPECT_TRUE(prog.code[1].is_serializing());
}


TEST(Assembler, PseudoNopMvLiJRet) {
  const auto prog = Assembler::assemble(R"(
    nop
    li  r1, 42
    mv  r2, r1
    j   end
    nop
  end:
    ret
  )");
  ASSERT_EQ(prog.code.size(), 6u);
  EXPECT_EQ(prog.code[0].op, Opcode::kAdd);   // nop
  EXPECT_EQ(prog.code[0].rd, 0);
  EXPECT_EQ(prog.code[1].op, Opcode::kAddi);  // li
  EXPECT_EQ(prog.code[1].imm, 42);
  EXPECT_EQ(prog.code[2].op, Opcode::kAdd);   // mv
  EXPECT_EQ(prog.code[2].rs1, 1);
  EXPECT_EQ(prog.code[3].op, Opcode::kJal);   // j
  EXPECT_EQ(prog.code[3].rd, 0);
  EXPECT_EQ(prog.code[3].imm, 2);
  EXPECT_EQ(prog.code[5].op, Opcode::kJalr);  // ret
  EXPECT_EQ(prog.code[5].rs1, 31);
}

TEST(Assembler, PseudoOperandErrors) {
  EXPECT_THROW(Assembler::assemble("nop r1"), AsmError);
  EXPECT_THROW(Assembler::assemble("mv r1"), AsmError);
  EXPECT_THROW(Assembler::assemble("li r1, bogus"), AsmError);
  EXPECT_THROW(Assembler::assemble("j"), AsmError);
  EXPECT_THROW(Assembler::assemble("ret r31"), AsmError);
}

TEST(Assembler, ByteDirective) {
  const auto prog = Assembler::assemble(R"(
    halt
    .byte 1, 2, 255, -1
  )");
  ASSERT_EQ(prog.data.size(), 4u);
  EXPECT_EQ(prog.data[2], 255);
  EXPECT_EQ(prog.data[3], 255);  // -1 wraps
}

TEST(Assembler, ByteRangeChecked) {
  EXPECT_THROW(Assembler::assemble(".byte 256"), AsmError);
  EXPECT_THROW(Assembler::assemble(".byte -129"), AsmError);
}

TEST(Assembler, AsciiDirective) {
  const auto prog = Assembler::assemble(R"(
    halt
  msg:
    .ascii "hi\n\0"
  )");
  ASSERT_EQ(prog.data.size(), 4u);
  EXPECT_EQ(prog.data[0], 'h');
  EXPECT_EQ(prog.data[1], 'i');
  EXPECT_EQ(prog.data[2], '\n');
  EXPECT_EQ(prog.data[3], 0);
}

TEST(Assembler, AsciiRequiresQuotes) {
  EXPECT_THROW(Assembler::assemble(".ascii unquoted"), AsmError);
}

}  // namespace
}  // namespace unsync::isa
