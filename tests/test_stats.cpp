#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace unsync {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStat, KnownMeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squared devs = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, CountsAndTotal) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bucket(i), 1u);
}

TEST(Histogram, OutOfRangeClamped) {
  Histogram h(0.0, 10.0, 10);
  h.add(-100.0);
  h.add(1e9);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5, 7);
  EXPECT_EQ(h.bucket(1), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, QuantileMedian) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1.0);
}

TEST(Histogram, QuantileEmpty) {
  Histogram h(5.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(Histogram, AsciiRendersAllBuckets) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  // One line per bucket.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
}

TEST(CounterSet, IncrementAndGet) {
  CounterSet c;
  c.inc("loads");
  c.inc("loads", 4);
  c.inc("stores");
  EXPECT_EQ(c.get("loads"), 5u);
  EXPECT_EQ(c.get("stores"), 1u);
  EXPECT_EQ(c.get("missing"), 0u);
}

TEST(CounterSet, SortedOutput) {
  CounterSet c;
  c.inc("z");
  c.inc("a");
  const auto v = c.sorted();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].first, "a");
  EXPECT_EQ(v[1].first, "z");
}

}  // namespace
}  // namespace unsync
