// The work-stealing scheduler's contract: every index exactly once under
// any mode / chunk / thread count, steals actually happen under skew,
// stats account for all work, and — the headline — campaign output stays
// byte-identical however the grid was scheduled.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/campaign.hpp"
#include "runtime/thread_pool.hpp"

namespace unsync {
namespace {

using runtime::CampaignRunner;
using runtime::ScheduleMode;
using runtime::ScheduleOptions;
using runtime::SchedulerStats;
using runtime::SimJob;
using runtime::SystemKind;
using runtime::ThreadPool;

ScheduleOptions stealing(std::size_t chunk = 0) {
  ScheduleOptions s;
  s.mode = ScheduleMode::kWorkStealing;
  s.chunk = chunk;
  return s;
}

ScheduleOptions shared_queue(std::size_t chunk = 0) {
  ScheduleOptions s;
  s.mode = ScheduleMode::kSharedQueue;
  s.chunk = chunk;
  return s;
}

void expect_each_index_once(ThreadPool& pool, std::size_t n,
                            const ScheduleOptions& opts,
                            SchedulerStats* stats = nullptr) {
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(
      n, [&](std::size_t i) { hits[i].fetch_add(1); }, opts, stats);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Scheduler, EveryIndexOnceAcrossModesChunksAndWidths) {
  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    for (const std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
      for (const std::size_t chunk : {0u, 1u, 3u, 1024u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " n=" + std::to_string(n) +
                     " chunk=" + std::to_string(chunk));
        expect_each_index_once(pool, n, stealing(chunk));
        expect_each_index_once(pool, n, shared_queue(chunk));
      }
    }
  }
}

TEST(Scheduler, StatsAccountForEveryIndex) {
  ThreadPool pool(4);
  for (const auto& opts : {stealing(1), stealing(8), shared_queue(1)}) {
    SchedulerStats stats;
    expect_each_index_once(pool, 500, opts, &stats);
    ASSERT_EQ(stats.workers.size(), pool.size());
    EXPECT_EQ(stats.total().indices, 500u);
    EXPECT_GT(stats.total().local_claims + stats.total().steals, 0u);
  }
}

TEST(Scheduler, SerialFallbackFillsStats) {
  ThreadPool pool(1);
  SchedulerStats stats;
  expect_each_index_once(pool, 32, stealing(), &stats);
  ASSERT_EQ(stats.workers.size(), 1u);
  EXPECT_EQ(stats.workers[0].indices, 32u);
  EXPECT_EQ(stats.workers[0].steals, 0u);
}

TEST(Scheduler, SharedQueueReportsOnlyLocalClaims) {
  ThreadPool pool(4);
  SchedulerStats stats;
  expect_each_index_once(pool, 256, shared_queue(1), &stats);
  EXPECT_EQ(stats.total().steals, 0u);
  EXPECT_EQ(stats.total().indices, 256u);
}

TEST(Scheduler, SkewForcesSteals) {
  // All the real work sits in worker 0's shard: indices [0, n/width) are
  // slow, everything else is instant. The other workers drain their shards
  // immediately and must steal from shard 0 to finish the batch. chunk=1
  // keeps single indices stealable.
  ThreadPool pool(4);
  const std::size_t n = 64;
  const std::size_t slow_end = n / pool.size();
  std::vector<std::atomic<int>> hits(n);
  SchedulerStats stats;
  pool.parallel_for(
      n,
      [&](std::size_t i) {
        hits[i].fetch_add(1);
        if (i < slow_end) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      },
      stealing(1), &stats);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_EQ(stats.total().indices, n);
  EXPECT_GT(stats.total().steals, 0u) << "skewed batch finished with no steal";
  // A worker that steals first had to notice its own shard was dry; the
  // sweep over drained victims also records failures.
  EXPECT_GT(stats.total().steal_failures, 0u);
}

TEST(Scheduler, ExceptionReportingIsScheduleIndependent) {
  // The lowest failing index wins under every mode and chunk shape.
  for (const auto& opts :
       {stealing(0), stealing(1), shared_queue(0), shared_queue(1)}) {
    ThreadPool pool(4);
    try {
      pool.parallel_for(
          48,
          [&](std::size_t i) {
            if (i == 41 || i == 11) {
              throw std::runtime_error("job " + std::to_string(i));
            }
          },
          opts, nullptr);
      FAIL() << "expected parallel_for to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "job 11");
    }
  }
}

// ---------------------------------------------------------------------------
// CampaignRunner x scheduler: the determinism contract
// ---------------------------------------------------------------------------

std::vector<SimJob> small_grid() {
  std::vector<SimJob> jobs;
  const char* profiles[] = {"gzip", "susan", "mcf"};
  for (const auto* p : profiles) {
    for (const auto s : {SystemKind::kBaseline, SystemKind::kUnSync}) {
      SimJob j;
      j.label = p;
      j.profile = p;
      j.system = s;
      j.insts = 2000;
      j.ser_per_inst = 1e-3;
      jobs.push_back(j);
    }
  }
  return jobs;
}

TEST(SchedulerDeterminism, JsonByteIdenticalAcrossThreadsAndSchedules) {
  const auto jobs = small_grid();
  CampaignRunner::Options base;
  base.campaign_seed = 23;
  base.collect_metrics = true;
  base.threads = 1;
  const std::string reference = CampaignRunner(base).run(jobs).to_json();

  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const auto& sched :
         {stealing(0), stealing(1), shared_queue(0), shared_queue(1)}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " mode=" +
                   (sched.mode == ScheduleMode::kWorkStealing ? "stealing"
                                                              : "shared") +
                   " chunk=" + std::to_string(sched.chunk));
      CampaignRunner::Options opts = base;
      opts.threads = threads;
      opts.schedule = sched;
      EXPECT_EQ(CampaignRunner(opts).run(jobs).to_json(), reference);
    }
  }
}

TEST(SchedulerDeterminism, ForcedStealScheduleDoesNotChangeOutput) {
  // chunk=1 on a grid whose first jobs are the heaviest maximises steal
  // traffic; the output must not care.
  auto jobs = small_grid();
  jobs[0].insts = 20000;  // a straggler in worker 0's shard
  CampaignRunner::Options serial;
  serial.campaign_seed = 9;
  serial.collect_metrics = true;
  serial.threads = 1;
  CampaignRunner::Options steal_heavy = serial;
  steal_heavy.threads = 8;
  steal_heavy.schedule = stealing(1);
  const auto a = CampaignRunner(serial).run(jobs);
  const auto b = CampaignRunner(steal_heavy).run(jobs);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.metrics.to_csv(), b.metrics.to_csv());
}

TEST(SchedulerMetrics, OnlyInTimingJson) {
  const auto jobs = small_grid();
  CampaignRunner::Options opts;
  opts.threads = 2;
  const auto out = CampaignRunner(opts).run(jobs);
  EXPECT_FALSE(out.scheduler_metrics.empty());
  EXPECT_EQ(out.to_json().find("scheduler"), std::string::npos)
      << "scheduler counters leaked into the deterministic surface";
  EXPECT_NE(out.to_json(0, true).find("campaign.scheduler.workers"),
            std::string::npos);
  EXPECT_NE(out.to_json(0, true).find("campaign.scheduler.job_wall_seconds"),
            std::string::npos);
}

TEST(SchedulerMetrics, CountersCoverTheGrid) {
  const auto jobs = small_grid();
  CampaignRunner::Options opts;
  opts.threads = 4;
  const auto out = CampaignRunner(opts).run(jobs);
  const auto it = out.scheduler_metrics.counters.find(
      "campaign.scheduler.local_claims");
  ASSERT_NE(it, out.scheduler_metrics.counters.end());
  const auto workers =
      out.scheduler_metrics.counters.find("campaign.scheduler.workers");
  ASSERT_NE(workers, out.scheduler_metrics.counters.end());
  EXPECT_EQ(workers->second, 4u);
}

}  // namespace
}  // namespace unsync
