#include "workload/stream_stats.hpp"

#include <gtest/gtest.h>

#include "workload/kernels.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace unsync::workload {
namespace {

TEST(StreamStats, MatchesSyntheticProfile) {
  const auto& prof = profile("bzip2");
  SyntheticStream s(prof, 31, 100000);
  const StreamStats stats = characterize(s);
  EXPECT_EQ(stats.total, 100000u);
  EXPECT_NEAR(stats.load_fraction(), prof.mix.load, 0.01);
  EXPECT_NEAR(stats.store_fraction(), prof.mix.store, 0.01);
  EXPECT_NEAR(stats.branch_fraction(), prof.mix.branch, 0.01);
  EXPECT_NEAR(stats.serializing_fraction(), prof.mix.serializing, 0.003);
  EXPECT_NEAR(stats.hinted_mispredict_rate(), prof.branch_mispredict_rate,
              0.015);
  EXPECT_NEAR(stats.dep_distance.mean(), prof.mean_dep_distance,
              prof.mean_dep_distance * 0.12);
}

TEST(StreamStats, BurstLengthReflectsBurstiness) {
  // susan (q = 0.8) must show much longer store runs than mcf (default 0.4).
  SyntheticStream bursty(profile("susan"), 32, 100000);
  SyntheticStream smooth(profile("mcf"), 32, 100000);
  const auto b = characterize(bursty);
  const auto m = characterize(smooth);
  EXPECT_GT(b.store_run_length.mean(), m.store_run_length.mean() * 1.5);
  // Mean run length of a Markov chain = 1/(1-q): susan ~5, mcf ~1.7.
  EXPECT_NEAR(b.store_run_length.mean(), 5.0, 1.0);
}

TEST(StreamStats, MaxOpsBoundsConsumption) {
  SyntheticStream s(profile("gzip"), 33, 100000);
  const auto stats = characterize(s, 500);
  EXPECT_EQ(stats.total, 500u);
}

TEST(StreamStats, FootprintCounters) {
  SyntheticStream s(profile("gzip"), 34, 50000);
  const auto stats = characterize(s);
  EXPECT_GT(stats.distinct_lines_touched, 100u);
  EXPECT_GE(stats.distinct_lines_touched, stats.distinct_pages_touched);
}

TEST(StreamStats, CharacterizesRecordedKernel) {
  const auto k = make_membar_ping(100);
  TraceStream t(record_trace(assemble(k), 100000));
  const auto stats = characterize(t);
  EXPECT_EQ(stats.total, t.length());
  // Loop body: st + membar + ld + 3 alu + branch per iteration.
  EXPECT_NEAR(stats.serializing_fraction(), 1.0 / 7.0, 0.03);
  EXPECT_GT(stats.store_fraction(), 0.1);
}

TEST(StreamStats, SummaryRendersAllMetrics) {
  SyntheticStream s(profile("ammp"), 35, 5000);
  const auto stats = characterize(s);
  const std::string text = stats.summary("ammp");
  EXPECT_NE(text.find("ammp"), std::string::npos);
  EXPECT_NE(text.find("mean dep distance"), std::string::npos);
  EXPECT_NE(text.find("serializing"), std::string::npos);
}

TEST(StreamStats, EmptyStreamSafe) {
  TraceStream empty{std::vector<DynOp>{}};
  const auto stats = characterize(empty);
  EXPECT_EQ(stats.total, 0u);
  EXPECT_DOUBLE_EQ(stats.load_fraction(), 0.0);
  EXPECT_NO_THROW(stats.summary("empty"));
}

}  // namespace
}  // namespace unsync::workload
