// The ACE/AVF subsystem's contracts: exact integer residency accounting,
// associative (worker-count-independent) publication, the protection-plan
// vocabulary, and the observation-only guarantee — avf=1 never changes a
// simulated bit. The report JSON is golden-pinned: it is a contract with
// external consumers (plot scripts, the CI frontier gate); see
// docs/FAULTS.md before regenerating.
#include "fault/avf.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/campaign.hpp"

#ifndef UNSYNC_TEST_DATA_DIR
#error "UNSYNC_TEST_DATA_DIR must point at tests/ (set by tests/CMakeLists.txt)"
#endif

namespace unsync::fault {
namespace {

std::string read_golden(const std::string& name) {
  const std::string path =
      std::string(UNSYNC_TEST_DATA_DIR) + "/golden/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// ResidencyTracker
// ---------------------------------------------------------------------------

TEST(ResidencyTracker, EventDurationAccumulates) {
  ResidencyTracker t;
  t.add(10);
  t.add(25);
  t.add(0);
  EXPECT_EQ(t.entry_cycles(), 35u);
  EXPECT_EQ(t.events(), 3u);
}

TEST(ResidencyTracker, LiveOccupancyIntegratesPiecewise) {
  ResidencyTracker t;
  t.set_live(10, 2);   // [0,10): 0 live
  t.set_live(30, 5);   // [10,30): 2 live -> 40
  t.set_live(50, 0);   // [30,50): 5 live -> 100
  t.finish(80);        // [50,80): 0 live -> 0
  EXPECT_EQ(t.entry_cycles(), 140u);
  EXPECT_EQ(t.live(), 0u);
}

TEST(ResidencyTracker, FinishClosesOpenWindow) {
  ResidencyTracker t;
  t.set_live(0, 3);
  t.finish(100);
  EXPECT_EQ(t.entry_cycles(), 300u);
  // finish() is idempotent at the same end cycle.
  t.finish(100);
  EXPECT_EQ(t.entry_cycles(), 300u);
}

TEST(ResidencyTracker, NonMonotonicTimeIsClamped) {
  ResidencyTracker t;
  t.set_live(20, 4);
  t.set_live(10, 7);  // time went backwards: integrate nothing
  EXPECT_EQ(t.entry_cycles(), 0u);
  t.finish(30);  // [20,30) at the updated occupancy of 7
  EXPECT_EQ(t.entry_cycles(), 70u);
}

TEST(ResidencyTracker, RedundantSetLiveIsNotAnEvent) {
  ResidencyTracker t;
  t.set_live(5, 2);
  t.set_live(9, 2);  // occupancy unchanged: no event recorded
  t.set_live(12, 3);
  EXPECT_EQ(t.events(), 2u);
}

// ---------------------------------------------------------------------------
// UncorePlan + parsing
// ---------------------------------------------------------------------------

TEST(UncorePlan, UniformPresetsNameThemselves) {
  EXPECT_EQ(uniform_uncore_plan(Mechanism::kNone).name, "none");
  EXPECT_EQ(uniform_uncore_plan(Mechanism::kParity1).name, "parity");
  EXPECT_EQ(uniform_uncore_plan(Mechanism::kSecded).name, "secded");
}

TEST(UncorePlan, IdListsEveryStructureInEnumOrder) {
  auto plan = uniform_uncore_plan(Mechanism::kParity1);
  plan.set(UncoreStructure::kTlb, Mechanism::kSecded);
  const std::string id = plan.id();
  // One key per structure, enum order, canonical mechanism names.
  EXPECT_EQ(id,
            "bus_queue=parity-1,mshr=parity-1,write_buffer=parity-1,"
            "cache_tag=parity-1,tlb=SECDED,dram_queue=parity-1,"
            "cache_data=parity-1,check_log=parity-1");
}

TEST(UncorePlan, CoverageAndCorrectionFollowMechanism) {
  const auto parity = uniform_uncore_plan(Mechanism::kParity1);
  const auto secded = uniform_uncore_plan(Mechanism::kSecded);
  const auto none = uniform_uncore_plan(Mechanism::kNone);
  EXPECT_EQ(parity.detection_coverage(UncoreStructure::kMshr, 1), 1.0);
  EXPECT_EQ(parity.detection_coverage(UncoreStructure::kMshr, 2), 0.0);
  EXPECT_FALSE(parity.corrects_in_place(UncoreStructure::kMshr, 1));
  EXPECT_EQ(secded.detection_coverage(UncoreStructure::kTlb, 2), 1.0);
  EXPECT_TRUE(secded.corrects_in_place(UncoreStructure::kTlb, 1));
  EXPECT_FALSE(secded.corrects_in_place(UncoreStructure::kTlb, 2));
  EXPECT_EQ(none.detection_coverage(UncoreStructure::kCacheTag, 1), 0.0);
}

TEST(ParseProtect, AcceptsKnobSpellings) {
  Mechanism m;
  EXPECT_TRUE(parse_protect_mechanism("none", &m));
  EXPECT_EQ(m, Mechanism::kNone);
  EXPECT_TRUE(parse_protect_mechanism("parity", &m));
  EXPECT_EQ(m, Mechanism::kParity1);
  EXPECT_TRUE(parse_protect_mechanism("secded", &m));
  EXPECT_EQ(m, Mechanism::kSecded);
  EXPECT_TRUE(parse_protect_mechanism("ecc", &m));
  EXPECT_EQ(m, Mechanism::kSecded);
  EXPECT_FALSE(parse_protect_mechanism("hamming", &m));
  EXPECT_FALSE(parse_protect_mechanism("", &m));
}

TEST(ParseProtect, StructureNamesRoundTrip) {
  for (std::size_t i = 0; i < kUncoreStructureCount; ++i) {
    const auto s = static_cast<UncoreStructure>(i);
    UncoreStructure parsed;
    ASSERT_TRUE(parse_uncore_structure(name_of(s), &parsed)) << name_of(s);
    EXPECT_EQ(parsed, s);
  }
  UncoreStructure s;
  EXPECT_FALSE(parse_uncore_structure("rob", &s));
}

// ---------------------------------------------------------------------------
// AvfCollector publication
// ---------------------------------------------------------------------------

/// Registers one deterministic instance per structure and drives fixed
/// residency through it — the publication fixture for the golden tests.
void drive_collector(AvfCollector& c) {
  c.make_tracker(UncoreStructure::kBusQueue, 16, 72)->add(400);
  c.make_tracker(UncoreStructure::kMshr, 8, 64)->add(1200);
  auto* wb = c.make_tracker(UncoreStructure::kWriteBuffer, 64, 128);
  wb->set_live(100, 4);
  wb->set_live(600, 1);
  auto* tags = c.make_tracker(UncoreStructure::kCacheTag, 512, 21);
  tags->set_live(0, 256);
  c.make_tracker(UncoreStructure::kTlb, 64, 106)->set_live(50, 48);
  c.make_tracker(UncoreStructure::kDramQueue, 32, 128)->add(900);
  auto* data = c.make_tracker(UncoreStructure::kCacheData, 512, 512);
  data->set_live(0, 256);
  c.make_tracker(UncoreStructure::kCheckLog, 64, 160)->set_live(200, 32);
  c.finish(1000);
}

TEST(AvfCollector, PublishesIntegerCountersPerStructure) {
  AvfCollector c;
  drive_collector(c);
  obs::MetricsRegistry reg;
  c.publish(reg, 1000);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("fault.avf.cycles"), 1000u);
  // write_buffer: 4*(600-100) + 1*(1000-600) = 2400 entry-cycles.
  EXPECT_EQ(snap.counters.at("fault.avf.write_buffer.entry_cycles"), 2400u);
  EXPECT_EQ(snap.counters.at("fault.avf.write_buffer.bit_cycles"),
            2400u * 128u);
  EXPECT_EQ(snap.counters.at("fault.avf.write_buffer.capacity_bits"),
            64u * 128u);
  EXPECT_EQ(snap.counters.at("fault.avf.cache_tag.bit_cycles"),
            256u * 1000u * 21u);
  EXPECT_EQ(snap.counters.at("fault.avf.tlb.entry_cycles"), 48u * 950u);
  EXPECT_EQ(snap.counters.at("fault.avf.dram_queue.capacity_bit_cycles"),
            32u * 128u * 1000u);
}

TEST(AvfCollector, MultipleInstancesOfOneStructureSum) {
  AvfCollector c;
  c.make_tracker(UncoreStructure::kMshr, 8, 64)->add(100);
  c.make_tracker(UncoreStructure::kMshr, 4, 64)->add(50);
  obs::MetricsRegistry reg;
  c.publish(reg, 500);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("fault.avf.mshr.entry_cycles"), 150u);
  EXPECT_EQ(snap.counters.at("fault.avf.mshr.capacity_bits"), 12u * 64u);
}

TEST(AvfCollector, UninstrumentedStructuresPublishNothing) {
  AvfCollector c;
  c.make_tracker(UncoreStructure::kTlb, 64, 106)->add(10);
  obs::MetricsRegistry reg;
  c.publish(reg, 100);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.count("fault.avf.bus_queue.capacity_bits"), 0u);
  EXPECT_EQ(snap.counters.count("fault.avf.tlb.capacity_bits"), 1u);
}

TEST(AvfCollector, PublicationMergesAssociatively) {
  // Two "jobs" merged in either order produce the same snapshot — the
  // property that makes campaign AVF counters worker-count independent.
  const auto publish_one = [](std::uint64_t scale) {
    AvfCollector c;
    c.make_tracker(UncoreStructure::kBusQueue, 16, 72)->add(100 * scale);
    obs::MetricsRegistry reg;
    c.publish(reg, 1000 * scale);
    return reg.snapshot();
  };
  const auto a = publish_one(1);
  const auto b = publish_one(3);
  obs::MetricsSnapshot ab = a;
  ab.merge(b);
  obs::MetricsSnapshot ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.to_json(), ba.to_json());
  EXPECT_EQ(ab.counters.at("fault.avf.bus_queue.entry_cycles"), 400u);
}

// ---------------------------------------------------------------------------
// AvfReport / build_avf_report
// ---------------------------------------------------------------------------

obs::MetricsSnapshot sample_snapshot() {
  AvfCollector c;
  drive_collector(c);
  obs::MetricsRegistry reg;
  c.publish(reg, 1000);
  return reg.snapshot();
}

TEST(AvfReport, RatiosFollowPublishedIntegers) {
  const auto report =
      build_avf_report(sample_snapshot(), uniform_uncore_plan(Mechanism::kNone));
  ASSERT_EQ(report.structures.size(), kUncoreStructureCount);
  for (const auto& s : report.structures) {
    EXPECT_DOUBLE_EQ(s.avf, static_cast<double>(s.bit_cycles) /
                                static_cast<double>(s.capacity_bit_cycles))
        << name_of(s.structure);
    // No coverage: the residual is the whole exposure.
    EXPECT_DOUBLE_EQ(s.residual_avf, s.avf) << name_of(s.structure);
  }
}

TEST(AvfReport, ParityZeroesTheSingleBitResidual) {
  const auto report = build_avf_report(sample_snapshot(),
                                       uniform_uncore_plan(Mechanism::kParity1));
  EXPECT_GT(report.total_avf(), 0.0);
  EXPECT_DOUBLE_EQ(report.total_residual_avf(), 0.0);
}

TEST(AvfReport, MissingStructuresAreOmitted) {
  obs::MetricsSnapshot snap;
  snap.counters["fault.avf.cycles"] = 100;
  snap.counters["fault.avf.tlb.entry_cycles"] = 50;
  snap.counters["fault.avf.tlb.bit_cycles"] = 50 * 106;
  snap.counters["fault.avf.tlb.events"] = 1;
  snap.counters["fault.avf.tlb.capacity_bits"] = 64 * 106;
  snap.counters["fault.avf.tlb.capacity_bit_cycles"] = 64 * 106 * 100;
  const auto report =
      build_avf_report(snap, uniform_uncore_plan(Mechanism::kNone));
  ASSERT_EQ(report.structures.size(), 1u);
  EXPECT_EQ(report.structures[0].structure, UncoreStructure::kTlb);
}

TEST(AvfReport, GoldenJson) {
  // Byte-pinned unsync.avf_report.v1 covering all eight uncore structures —
  // the contract consumed by `unsync_sim avf-report` users and the CI
  // frontier gate. Regenerate deliberately, never casually (docs/FAULTS.md).
  auto report = build_avf_report(sample_snapshot(),
                                 uniform_uncore_plan(Mechanism::kParity1));
  EXPECT_EQ(report.to_json(2) + "\n", read_golden("avf_report.json"));
}

TEST(AvfReport, JsonIsAPureFunctionOfTheCounters) {
  const auto plan = uniform_uncore_plan(Mechanism::kSecded);
  const auto a = build_avf_report(sample_snapshot(), plan).to_json();
  const auto b = build_avf_report(sample_snapshot(), plan).to_json();
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// End-to-end: observation-only + worker-count identity
// ---------------------------------------------------------------------------

runtime::SimJob avf_job(const char* bench, bool avf) {
  runtime::SimJob j;
  j.label = bench;
  j.profile = bench;
  j.system = runtime::SystemKind::kUnSync;
  j.insts = 3000;
  j.ser_per_inst = 1e-4;  // exercise recovery alongside the hooks
  j.avf = avf;
  if (avf) j.protect = uniform_uncore_plan(Mechanism::kParity1);
  return j;
}

TEST(AvfEndToEnd, TrackingIsBitInvisible) {
  // avf=1 must not move a single architectural or timing bit: the full
  // result rows match the avf=0 run field by field.
  std::vector<runtime::SimJob> off = {avf_job("gzip", false),
                                      avf_job("susan", false)};
  std::vector<runtime::SimJob> on = {avf_job("gzip", true),
                                     avf_job("susan", true)};
  runtime::CampaignRunner::Options opts;
  opts.threads = 1;
  opts.collect_metrics = true;
  const auto a = runtime::CampaignRunner(opts).run(off);
  const auto b = runtime::CampaignRunner(opts).run(on);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].cycles, b.results[i].cycles);
    EXPECT_EQ(a.results[i].instructions, b.results[i].instructions);
    EXPECT_EQ(a.results[i].errors_injected, b.results[i].errors_injected);
    EXPECT_EQ(a.results[i].recoveries, b.results[i].recoveries);
    EXPECT_EQ(a.results[i].rollbacks, b.results[i].rollbacks);
  }
  // ... while the avf=1 run carries the residency counters.
  EXPECT_EQ(a.metrics.counters.count("fault.avf.cycles"), 0u);
  EXPECT_GT(b.metrics.counters.at("fault.avf.cycles"), 0u);
}

TEST(AvfEndToEnd, MergedCountersAreWorkerCountIndependent) {
  std::vector<runtime::SimJob> jobs = {avf_job("gzip", true),
                                       avf_job("susan", true),
                                       avf_job("mcf", true)};
  // UnSync covers the write buffers (its CBs); the hetero checker is the
  // only system with a check log. Together the grid lights every structure.
  jobs.push_back(avf_job("mcf", true));
  jobs.back().system = runtime::SystemKind::kHetero;
  runtime::CampaignRunner::Options serial;
  serial.threads = 1;
  serial.collect_metrics = true;
  runtime::CampaignRunner::Options parallel = serial;
  parallel.threads = 4;
  const auto a = runtime::CampaignRunner(serial).run(jobs);
  const auto b = runtime::CampaignRunner(parallel).run(jobs);
  EXPECT_EQ(a.metrics.to_json(), b.metrics.to_json());
  // Every structure is live somewhere in the merged grid.
  for (std::size_t i = 0; i < kUncoreStructureCount; ++i) {
    const std::string key = std::string("fault.avf.") +
                            name_of(static_cast<UncoreStructure>(i)) +
                            ".bit_cycles";
    EXPECT_EQ(a.metrics.counters.count(key), 1u) << key;
  }
}

}  // namespace
}  // namespace unsync::fault
