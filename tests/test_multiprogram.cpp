// Heterogeneous multiprogramming: different workloads on different threads
// of the same CMP, sharing the L2 and bus.
#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/related_work.hpp"
#include "core/reunion_system.hpp"
#include "core/unsync_system.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace unsync::core {
namespace {

SystemConfig cfg(unsigned threads) {
  SystemConfig c;
  c.num_threads = threads;
  return c;
}

TEST(Multiprogram, BaselineRunsDifferentBenchmarksPerThread) {
  workload::SyntheticStream a(workload::profile("gzip"), 1, 12000);
  workload::SyntheticStream b(workload::profile("mcf"), 1, 8000);
  BaselineSystem sys(cfg(2), {&a, &b});
  const RunResult r = sys.run();
  ASSERT_EQ(r.core_stats.size(), 2u);
  EXPECT_EQ(r.core_stats[0].committed, 12000u);
  EXPECT_EQ(r.core_stats[1].committed, 8000u);
  ASSERT_EQ(r.thread_instructions.size(), 2u);
  EXPECT_EQ(r.thread_instructions[0], 12000u);
  EXPECT_EQ(r.thread_instructions[1], 8000u);
  EXPECT_EQ(r.instructions, 12000u);  // longest thread
}

TEST(Multiprogram, StreamCountMustMatchThreads) {
  workload::SyntheticStream a(workload::profile("gzip"), 1, 1000);
  EXPECT_THROW(BaselineSystem(cfg(2), {&a}), std::invalid_argument);
  EXPECT_THROW(BaselineSystem(cfg(1), {&a, &a}), std::invalid_argument);
}

TEST(Multiprogram, NoisyNeighbourSlowsVictim) {
  // gzip alone vs gzip sharing the L2/bus with the miss-storm mcf: the
  // victim's per-core IPC must drop.
  workload::SyntheticStream gzip_s(workload::profile("gzip"), 2, 12000);
  workload::SyntheticStream mcf_s(workload::profile("mcf"), 2, 12000);

  BaselineSystem alone(cfg(1), {&gzip_s});
  const double ipc_alone = alone.run().core_stats[0].ipc();

  BaselineSystem shared(cfg(2), {&gzip_s, &mcf_s});
  const auto r = shared.run();
  const double ipc_shared = r.core_stats[0].ipc();
  EXPECT_LT(ipc_shared, ipc_alone * 1.01);
  EXPECT_EQ(r.core_stats[0].committed, 12000u);
}

TEST(Multiprogram, UnsyncHeterogeneousGroups) {
  workload::SyntheticStream a(workload::profile("susan"), 3, 8000);
  workload::SyntheticStream b(workload::profile("galgel"), 3, 6000);
  UnSyncParams p;
  p.cb_entries = 128;
  UnSyncSystem sys(cfg(2), p, {&a, &b});
  const RunResult r = sys.run();
  ASSERT_EQ(r.core_stats.size(), 4u);  // two pairs
  EXPECT_EQ(r.core_stats[0].committed, 8000u);
  EXPECT_EQ(r.core_stats[1].committed, 8000u);
  EXPECT_EQ(r.core_stats[2].committed, 6000u);
  EXPECT_EQ(r.core_stats[3].committed, 6000u);
}

TEST(Multiprogram, ReunionHeterogeneousPairs) {
  workload::SyntheticStream a(workload::profile("bzip2"), 4, 6000);
  workload::SyntheticStream b(workload::profile("equake"), 4, 6000);
  ReunionSystem sys(cfg(2), ReunionParams{}, {&a, &b});
  const RunResult r = sys.run();
  ASSERT_EQ(r.core_stats.size(), 4u);
  for (const auto& cs : r.core_stats) EXPECT_EQ(cs.committed, 6000u);
}

TEST(Multiprogram, RelatedWorkHeterogeneous) {
  workload::SyntheticStream a(workload::profile("gzip"), 5, 5000);
  workload::SyntheticStream b(workload::profile("qsort"), 5, 5000);
  LockstepSystem lock(cfg(2), LockstepParams{}, {&a, &b});
  EXPECT_EQ(lock.run().core_stats[2].committed, 5000u);
  DmrCheckpointSystem check(cfg(2), CheckpointParams{}, {&a, &b});
  EXPECT_EQ(check.run().core_stats[0].committed, 5000u);
}

TEST(Multiprogram, ErrorsScaledPerThreadLength) {
  // Thread 0 runs 10x the instructions of thread 1 at the same SER: it
  // should absorb roughly 10x the errors.
  workload::SyntheticStream a(workload::profile("gzip"), 6, 40000);
  workload::SyntheticStream b(workload::profile("gzip"), 7, 4000);
  SystemConfig c = cfg(2);
  c.ser_per_inst = 2e-4;
  UnSyncParams p;
  p.cb_entries = 128;
  UnSyncSystem sys(c, p, {&a, &b});
  const RunResult r = sys.run();
  EXPECT_GT(r.errors_injected, 3u);
  EXPECT_EQ(r.recoveries, r.errors_injected);
}

TEST(Multiprogram, HomogeneousConvenienceEqualsExplicit) {
  workload::SyntheticStream s(workload::profile("twolf"), 8, 6000);
  BaselineSystem convenience(cfg(2), s);
  BaselineSystem explicit_set(cfg(2), {&s, &s});
  EXPECT_EQ(convenience.run().cycles, explicit_set.run().cycles);
}

}  // namespace
}  // namespace unsync::core
