#include "common/config.hpp"

#include <gtest/gtest.h>

namespace unsync {
namespace {

TEST(Config, ParsesKeyValueArgs) {
  const char* argv[] = {"prog", "fi=30", "latency=40", "bench=galgel"};
  const Config cfg = Config::from_args(4, argv);
  EXPECT_EQ(cfg.get_int("fi", 0), 30);
  EXPECT_EQ(cfg.get_int("latency", 0), 40);
  EXPECT_EQ(cfg.get_string("bench", ""), "galgel");
}

TEST(Config, PositionalArgsCollected) {
  const char* argv[] = {"prog", "run", "x=1", "fast"};
  std::vector<std::string> pos;
  const Config cfg = Config::from_args(4, argv, &pos);
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[0], "run");
  EXPECT_EQ(pos[1], "fast");
  EXPECT_TRUE(cfg.has("x"));
}

TEST(Config, FallbacksWhenMissing) {
  const Config cfg;
  EXPECT_EQ(cfg.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.get_double("d", 2.5), 2.5);
  EXPECT_TRUE(cfg.get_bool("b", true));
  EXPECT_EQ(cfg.get_string("s", "dflt"), "dflt");
}

TEST(Config, BoolSpellings) {
  Config cfg;
  cfg.set("a", "true");
  cfg.set("b", "0");
  cfg.set("c", "YES");
  cfg.set("d", "off");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_FALSE(cfg.get_bool("d", true));
}

TEST(Config, BadIntThrows) {
  Config cfg;
  cfg.set("n", "abc");
  EXPECT_THROW(cfg.get_int("n", 0), std::invalid_argument);
}

TEST(Config, BadBoolThrows) {
  Config cfg;
  cfg.set("b", "maybe");
  EXPECT_THROW(cfg.get_bool("b", false), std::invalid_argument);
}

TEST(Config, SetOverwrites) {
  Config cfg;
  cfg.set("k", "1");
  cfg.set("k", "2");
  EXPECT_EQ(cfg.get_int("k", 0), 2);
  EXPECT_EQ(cfg.keys().size(), 1u);
}

TEST(Config, DoubleParsing) {
  Config cfg;
  cfg.set("ser", "2.89e-17");
  EXPECT_DOUBLE_EQ(cfg.get_double("ser", 0.0), 2.89e-17);
}

}  // namespace
}  // namespace unsync
