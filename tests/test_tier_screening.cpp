// The two-tier screening contract (docs/TIERS.md):
//   threshold 0   -> every cell re-runs on the detailed tier, so a screened
//                    campaign is byte-identical to a pure detailed one at
//                    any worker count;
//   threshold inf -> no cell re-runs: the output is pure fast tier, every
//                    result tagged approximate;
//   any threshold -> the fast tier consumes the identical fault-arrival
//                    schedule, so errors_injected matches detailed exactly.
#include <gtest/gtest.h>

#include <limits>

#include "core/factory.hpp"
#include "obs/metrics.hpp"
#include "runtime/campaign.hpp"
#include "runtime/campaign_journal.hpp"

namespace unsync {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A small mixed grid with enough SER that several cells see errors.
std::vector<runtime::SimJob> small_grid() {
  std::vector<runtime::SimJob> jobs;
  for (const char* bench : {"gzip", "galgel"}) {
    for (const auto kind :
         {runtime::SystemKind::kBaseline, runtime::SystemKind::kUnSync,
          runtime::SystemKind::kReunion}) {
      runtime::SimJob job;
      job.label = bench;
      job.profile = bench;
      job.system = kind;
      job.insts = 8000;
      job.ser_per_inst = 2e-4;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

TEST(TierScreening, ThresholdZeroMatchesPureDetailedAtAnyWorkerCount) {
  const auto jobs = small_grid();
  runtime::CampaignRunner::Options detailed;
  detailed.threads = 1;
  const std::string reference =
      runtime::CampaignRunner(detailed).run(jobs).to_json();

  for (const unsigned threads : {1u, 3u}) {
    runtime::CampaignRunner::Options screen;
    screen.threads = threads;
    screen.screen = true;
    screen.screen_threshold = 0.0;
    EXPECT_EQ(runtime::CampaignRunner(screen).run(jobs).to_json(), reference)
        << "threads=" << threads;
  }
}

TEST(TierScreening, ThresholdInfinityStaysPureFast) {
  const auto jobs = small_grid();
  runtime::CampaignRunner::Options screen;
  screen.threads = 2;
  screen.screen = true;
  screen.screen_threshold = kInf;
  const auto out = runtime::CampaignRunner(screen).run(jobs);

  bool any_interesting = false;
  for (const auto& r : out.results) {
    EXPECT_TRUE(r.approximate);
    if (runtime::screening_score(r) > 0) any_interesting = true;
  }
  // The grid must actually contain cells a finite threshold WOULD have
  // re-run, or this test proves nothing.
  EXPECT_TRUE(any_interesting);
}

TEST(TierScreening, FastTierReproducesTheArrivalSchedule) {
  runtime::SimJob job;
  job.label = "gzip";
  job.profile = "gzip";
  job.system = runtime::SystemKind::kUnSync;
  job.insts = 30000;
  job.ser_per_inst = 2e-4;

  const auto detailed = runtime::CampaignRunner::run_job(job, 7);
  job.params.tier = engine::Tier::kFast;
  const auto fast = runtime::CampaignRunner::run_job(job, 7);

  EXPECT_FALSE(detailed.approximate);
  EXPECT_TRUE(fast.approximate);
  EXPECT_GT(detailed.errors_injected, 0u);
  // Identical seed + stream => identical schedule_arrivals draws: the
  // approximate tier may mistime recoveries but never miscount strikes.
  EXPECT_EQ(fast.errors_injected, detailed.errors_injected);
  EXPECT_EQ(fast.instructions, detailed.instructions);
}

TEST(TierScreening, ScreenedCellMetricsComeFromTheProducingTierOnly) {
  // A promoted cell's metrics must be those of the detailed re-run alone —
  // not a fast+detailed merge, and not the stale fast-pass snapshot.
  runtime::SimJob job = small_grid()[1];  // unsync cell with error activity
  const std::uint64_t seed = 7;

  const auto pure_metrics = [&](engine::Tier tier) {
    runtime::SimJob j = job;
    j.params.tier = tier;
    obs::MetricsRegistry reg;
    runtime::CampaignRunner::run_job(j, seed, &reg);
    return reg.snapshot().to_json();
  };

  obs::MetricsSnapshot promoted;
  runtime::CampaignRunner::run_job_screened(job, seed, 0.0, &promoted);
  EXPECT_EQ(promoted.to_json(), pure_metrics(engine::Tier::kDetailed));

  obs::MetricsSnapshot fast_only;
  runtime::CampaignRunner::run_job_screened(job, seed, kInf, &fast_only);
  EXPECT_EQ(fast_only.to_json(), pure_metrics(engine::Tier::kFast));
  EXPECT_NE(promoted.to_json(), fast_only.to_json());
}

TEST(TierScreening, ScreeningScoreReflectsErrorActivity) {
  core::RunResult quiet;
  quiet.cycles = 1000;
  EXPECT_EQ(runtime::screening_score(quiet), 0.0);

  core::RunResult busy;
  busy.cycles = 1000;
  busy.errors_injected = 2;
  busy.recoveries = 1;
  busy.rollbacks = 1;
  busy.recovery_cycles_total = 500;
  EXPECT_DOUBLE_EQ(runtime::screening_score(busy), 4.5);
  EXPECT_LT(runtime::screening_score(busy), kInf);
}

TEST(TierScreening, JournalEntryAcceptancePinsTheTierPolicy) {
  runtime::SimJob detailed_job;
  runtime::SimJob fast_job;
  fast_job.params.tier = engine::Tier::kFast;

  core::RunResult exact;
  core::RunResult approx;
  approx.approximate = true;
  approx.errors_injected = 3;  // screening_score 3

  // Plain campaigns: the entry's tier must match the job's requested tier.
  EXPECT_TRUE(runtime::entry_acceptable(detailed_job, exact, false, 0));
  EXPECT_FALSE(runtime::entry_acceptable(detailed_job, approx, false, 0));
  EXPECT_TRUE(runtime::entry_acceptable(fast_job, approx, false, 0));
  EXPECT_FALSE(runtime::entry_acceptable(fast_job, exact, false, 0));

  // Screen campaigns: detailed entries are always final; approximate
  // entries are final only while their score stays under the threshold.
  EXPECT_TRUE(runtime::entry_acceptable(detailed_job, exact, true, 0));
  EXPECT_FALSE(runtime::entry_acceptable(detailed_job, approx, true, 3.0));
  EXPECT_TRUE(runtime::entry_acceptable(detailed_job, approx, true, kInf));
}

TEST(TierScreening, ScreenPolicyChangesTheJournalIdentity) {
  const auto jobs = small_grid();
  const auto plain = runtime::make_journal_header(jobs, 42, false);
  const auto screened = runtime::make_journal_header(jobs, 42, false, true, 1.0);
  const auto screened_other =
      runtime::make_journal_header(jobs, 42, false, true, 2.0);
  EXPECT_NE(plain.grid_crc, screened.grid_crc);
  EXPECT_NE(screened.grid_crc, screened_other.grid_crc);

  // The per-job tier is part of the grid fingerprint too: a fast-tier grid
  // can never be confused with a detailed-tier journal.
  auto fast_jobs = jobs;
  for (auto& j : fast_jobs) j.params.tier = engine::Tier::kFast;
  EXPECT_NE(runtime::make_journal_header(fast_jobs, 42, false).grid_crc,
            plain.grid_crc);
}

}  // namespace
}  // namespace unsync
