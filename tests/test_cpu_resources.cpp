// Functional-unit and structural-resource contention tests for the core
// timing model: the mechanisms Figure 5's ROB-pressure argument rests on.
#include <gtest/gtest.h>

#include "cpu/ooo_core.hpp"
#include "workload/trace.hpp"

namespace unsync::cpu {
namespace {

using workload::DynOp;
using workload::TraceStream;

DynOp op_of(SeqNum seq, isa::InstClass cls) {
  DynOp op;
  op.seq = seq;
  op.cls = cls;
  op.pc = 0x1000;
  op.writes_reg = cls != isa::InstClass::kStore &&
                  cls != isa::InstClass::kBranch &&
                  cls != isa::InstClass::kSerializing;
  if (cls == isa::InstClass::kLoad || cls == isa::InstClass::kStore) {
    op.mem_addr = 0x100000 + (seq % 64) * 8;
  }
  return op;
}

struct Rig {
  explicit Rig(std::vector<DynOp> ops, CoreConfig cfg = no_frontend())
      : memory(mem::MemConfig{}, 1),
        core(0, cfg, &memory, std::make_unique<TraceStream>(std::move(ops))) {
  }
  static CoreConfig no_frontend() {
    CoreConfig cfg;
    cfg.model_frontend = false;
    return cfg;
  }
  Cycle run() {
    Cycle now = 0;
    while (!core.done() && now < 1000000) core.tick(now), ++now;
    return now;
  }
  mem::MemoryHierarchy memory;
  OooCore core;
};

std::vector<DynOp> homogeneous(isa::InstClass cls, SeqNum n) {
  std::vector<DynOp> ops;
  for (SeqNum i = 0; i < n; ++i) ops.push_back(op_of(i, cls));
  return ops;
}

TEST(FuContention, SingleUnpipelinedDividerSerialises) {
  // 200 independent divides on 1 unpipelined 20-cycle divider: >= 20
  // cycles apiece.
  Rig rig(homogeneous(isa::InstClass::kIntDiv, 200));
  const Cycle cycles = rig.run();
  EXPECT_GE(cycles, 200u * 20u);
}

TEST(FuContention, PipelinedMultiplierSustainsOnePerCycle) {
  // 400 independent multiplies on 1 pipelined (latency 4) multiplier:
  // ~1/cycle steady state, far better than the divider.
  Rig rig(homogeneous(isa::InstClass::kIntMul, 400));
  const Cycle cycles = rig.run();
  EXPECT_LT(cycles, 600u);
  EXPECT_GT(cycles, 400u - 10);
}

TEST(FuContention, AluPoolAllowsFourPerCycle) {
  Rig rig(homogeneous(isa::InstClass::kIntAlu, 4000));
  const Cycle cycles = rig.run();
  EXPECT_LT(cycles, 4000 / 4 + 100);
}

TEST(FuContention, MemPortCountGatesLoadThroughput) {
  // Independent loads to one (eventually hot) line: after the cold fill,
  // throughput is ports/cycle — so halving the ports costs ~n/2 cycles.
  auto make = [] {
    std::vector<DynOp> ops;
    for (SeqNum i = 0; i < 1000; ++i) {
      DynOp op = op_of(i, isa::InstClass::kLoad);
      op.mem_addr = 0x100000;  // one line
      ops.push_back(op);
    }
    return ops;
  };
  CoreConfig one_port = Rig::no_frontend();
  one_port.mem_port.count = 1;
  Rig two(make());
  Rig one(make(), one_port);
  const Cycle t2 = two.run();
  const Cycle t1 = one.run();
  EXPECT_GE(t2, 500u);          // can never beat 2 loads/cycle
  EXPECT_GT(t1, t2 + 300);      // one port costs ~n/2 extra cycles
}

TEST(FuContention, FpDividerIsTheSlowestPath) {
  Rig fp_div(homogeneous(isa::InstClass::kFpDiv, 100));
  Rig fp_mul(homogeneous(isa::InstClass::kFpMul, 100));
  EXPECT_GT(fp_div.run(), fp_mul.run() * 3);
}

TEST(StructuralLimits, FetchQueueBoundsFrontEnd) {
  CoreConfig tiny = Rig::no_frontend();
  tiny.fetch_queue_entries = 2;
  Rig small(homogeneous(isa::InstClass::kIntAlu, 2000), tiny);
  Rig big(homogeneous(isa::InstClass::kIntAlu, 2000));
  EXPECT_GT(small.run(), big.run());
}

TEST(StructuralLimits, ExtraLoadLatencyCharged) {
  // The lockstep checker knob: +10 cycles per load on a serial chain of
  // dependent loads is directly visible.
  auto chain = [] {
    std::vector<DynOp> ops;
    for (SeqNum i = 0; i < 300; ++i) {
      DynOp op = op_of(i, isa::InstClass::kLoad);
      op.mem_addr = 0x100000;
      if (i > 0) op.src[0] = i - 1;
      ops.push_back(op);
    }
    return ops;
  };
  CoreConfig taxed = Rig::no_frontend();
  taxed.extra_load_latency = 10;
  Rig plain(chain());
  Rig slow(chain(), taxed);
  const Cycle a = plain.run();
  const Cycle b = slow.run();
  EXPECT_GT(b, a + 300 * 9);  // ~10 extra cycles per chained load
}

TEST(StructuralLimits, SmallStoreQueueThrottlesStoreBursts) {
  CoreConfig tiny = Rig::no_frontend();
  tiny.sq_entries = 1;
  Rig small(homogeneous(isa::InstClass::kStore, 600), tiny);
  Rig big(homogeneous(isa::InstClass::kStore, 600));
  EXPECT_GT(small.run(), big.run());
  EXPECT_GT(small.core.stats().dispatch_stall_lsq, 0u);
}

}  // namespace
}  // namespace unsync::cpu
