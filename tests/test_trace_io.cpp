#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "isa/assembler.hpp"
#include "workload/kernels.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace unsync::workload {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<DynOp> sample_ops() {
  SyntheticStream s(profile("bzip2"), 11, 3000);
  std::vector<DynOp> ops;
  DynOp op;
  while (s.next(&op)) ops.push_back(op);
  return ops;
}

void expect_equal(const std::vector<DynOp>& a, const std::vector<DynOp>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, b[i].seq) << i;
    EXPECT_EQ(a[i].cls, b[i].cls) << i;
    EXPECT_EQ(a[i].pc, b[i].pc) << i;
    EXPECT_EQ(a[i].mem_addr, b[i].mem_addr) << i;
    EXPECT_EQ(a[i].src[0], b[i].src[0]) << i;
    EXPECT_EQ(a[i].src[1], b[i].src[1]) << i;
    EXPECT_EQ(a[i].writes_reg, b[i].writes_reg) << i;
    EXPECT_EQ(a[i].taken, b[i].taken) << i;
    EXPECT_EQ(a[i].has_mispredict_hint, b[i].has_mispredict_hint) << i;
    EXPECT_EQ(a[i].mispredict_hint, b[i].mispredict_hint) << i;
  }
}

TEST(TraceIo, RoundTripSyntheticStream) {
  const auto ops = sample_ops();
  const std::string path = temp_path("unsync_trace_rt.utrc");
  save_trace(path, ops);
  const auto loaded = load_trace(path);
  expect_equal(ops, loaded);
  std::remove(path.c_str());
}

TEST(TraceIo, RoundTripRecordedKernel) {
  const auto k = make_bubble_sort(32, 4);
  const auto ops = record_trace(assemble(k), 1000000);
  const std::string path = temp_path("unsync_trace_kernel.utrc");
  save_trace(path, ops);
  expect_equal(ops, load_trace(path));
  std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  const std::string path = temp_path("unsync_trace_empty.utrc");
  save_trace(path, {});
  EXPECT_TRUE(load_trace(path).empty());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace(temp_path("does_not_exist.utrc")),
               std::runtime_error);
}

TEST(TraceIo, BadMagicThrows) {
  const std::string path = temp_path("unsync_trace_bad.utrc");
  std::ofstream(path) << "GARBAGE DATA LONG ENOUGH TO READ";
  EXPECT_THROW(load_trace(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, TruncatedFileThrows) {
  const auto ops = sample_ops();
  const std::string path = temp_path("unsync_trace_trunc.utrc");
  save_trace(path, ops);
  // Chop the file in half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(load_trace(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, LoadedTraceDrivesStream) {
  const auto ops = sample_ops();
  const std::string path = temp_path("unsync_trace_stream.utrc");
  save_trace(path, ops);
  TraceStream stream(load_trace(path));
  EXPECT_EQ(stream.length(), ops.size());
  DynOp op;
  std::uint64_t n = 0;
  while (stream.next(&op)) ++n;
  EXPECT_EQ(n, ops.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace unsync::workload
