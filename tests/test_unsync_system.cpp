#include "core/unsync_system.hpp"

#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace unsync::core {
namespace {

SystemConfig small_config(unsigned threads = 1) {
  SystemConfig cfg;
  cfg.num_threads = threads;
  return cfg;
}

UnSyncParams big_cb() {
  UnSyncParams p;
  p.cb_entries = 256;  // 4 KiB: Figure 6's "no bottleneck" point
  return p;
}

TEST(UnSyncSystem, CompletesAStreamOnBothCores) {
  workload::SyntheticStream stream(workload::profile("gzip"), 1, 20000);
  UnSyncSystem sys(small_config(), big_cb(), stream);
  const RunResult r = sys.run();
  EXPECT_EQ(r.system, "unsync");
  ASSERT_EQ(r.core_stats.size(), 2u);  // one pair
  EXPECT_EQ(r.core_stats[0].committed, 20000u);
  EXPECT_EQ(r.core_stats[1].committed, 20000u);
}

TEST(UnSyncSystem, UsesWriteThroughL1) {
  workload::SyntheticStream stream(workload::profile("gzip"), 2, 5000);
  UnSyncSystem sys(small_config(), big_cb(), stream);
  sys.run();
  EXPECT_EQ(sys.memory().config().l1d.write_policy,
            mem::WritePolicy::kWriteThrough);
  EXPECT_EQ(sys.memory().l1(0).lines_dirty(), 0u);
  EXPECT_EQ(sys.memory().l1(1).lines_dirty(), 0u);
}

TEST(UnSyncSystem, DrainsOneCopyOfEveryStore) {
  workload::SyntheticStream stream(workload::profile("susan"), 3, 20000);
  UnSyncSystem sys(small_config(), big_cb(), stream);
  const RunResult r = sys.run();
  // Both cores committed every store, but the L2 received one copy each:
  // bus word pushes == stores per thread (no coalescing).
  const std::uint64_t stores = r.core_stats[0].stores;
  EXPECT_GT(stores, 3000u);
  EXPECT_EQ(r.core_stats[1].stores, stores);
}

TEST(UnSyncSystem, NearBaselinePerformanceWithLargeCb) {
  // The paper's headline: error-free UnSync runs within a few percent of
  // the baseline CMP when the CB is large enough.
  workload::SyntheticStream stream(workload::profile("gzip"), 4, 40000);
  BaselineSystem base(small_config(), stream);
  UnSyncSystem sys(small_config(), big_cb(), stream);
  const double base_ipc = base.run().thread_ipc();
  const double unsync_ipc = sys.run().thread_ipc();
  EXPECT_GT(unsync_ipc, base_ipc * 0.90);
}

TEST(UnSyncSystem, TinyCbCausesStalls) {
  workload::SyntheticStream stream(workload::profile("susan"), 5, 30000);
  UnSyncParams tiny;
  tiny.cb_entries = 4;
  UnSyncSystem small(small_config(), tiny, stream);
  UnSyncSystem large(small_config(), big_cb(), stream);
  const RunResult rs = small.run();
  const RunResult rl = large.run();
  EXPECT_GT(rs.cb_full_stalls, rl.cb_full_stalls);
  EXPECT_GT(rs.cycles, rl.cycles);
}

TEST(UnSyncSystem, CbSizeMonotonicallyHelps) {
  workload::SyntheticStream stream(workload::profile("susan"), 6, 20000);
  Cycle prev = ~Cycle{0};
  for (std::size_t entries : {8u, 32u, 128u, 256u}) {
    UnSyncParams p;
    p.cb_entries = entries;
    UnSyncSystem sys(small_config(), p, stream);
    const Cycle c = sys.run().cycles;
    EXPECT_LE(c, prev + prev / 50) << entries;  // allow 2% noise
    prev = c;
  }
}

TEST(UnSyncSystem, ErrorFreeRunHasNoRecoveries) {
  workload::SyntheticStream stream(workload::profile("gzip"), 7, 10000);
  UnSyncSystem sys(small_config(), big_cb(), stream);
  const RunResult r = sys.run();
  EXPECT_EQ(r.errors_injected, 0u);
  EXPECT_EQ(r.recoveries, 0u);
  EXPECT_EQ(r.recovery_cycles_total, 0u);
}

TEST(UnSyncSystem, ErrorsTriggerForwardRecovery) {
  workload::SyntheticStream stream(workload::profile("gzip"), 8, 30000);
  SystemConfig cfg = small_config();
  cfg.ser_per_inst = 1e-4;  // ~3 errors over the run
  UnSyncSystem sys(cfg, big_cb(), stream);
  const RunResult r = sys.run();
  EXPECT_GT(r.errors_injected, 0u);
  EXPECT_EQ(r.recoveries, r.errors_injected);
  EXPECT_GT(r.recovery_cycles_total, 0u);
  // Recovery must not lose the program: both cores finished everything.
  EXPECT_EQ(r.core_stats[0].committed, 30000u);
  EXPECT_EQ(r.core_stats[1].committed, 30000u);
}

TEST(UnSyncSystem, RecoveryCostScalesWithErrors) {
  workload::SyntheticStream stream(workload::profile("gzip"), 9, 30000);
  SystemConfig low = small_config();
  low.ser_per_inst = 5e-5;
  SystemConfig high = small_config();
  high.ser_per_inst = 1e-3;
  UnSyncSystem a(low, big_cb(), stream);
  UnSyncSystem b(high, big_cb(), stream);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_GT(rb.errors_injected, ra.errors_injected);
  EXPECT_GT(rb.cycles, ra.cycles);
}

TEST(UnSyncSystem, SerializingInstructionsDoNotSynchronise) {
  // ammp has 1.7% serializing instructions; UnSync's overhead vs baseline
  // must stay small (Figure 4's right-hand bars, ~2%).
  workload::SyntheticStream stream(workload::profile("ammp"), 10, 30000);
  BaselineSystem base(small_config(), stream);
  UnSyncSystem sys(small_config(), big_cb(), stream);
  const double base_ipc = base.run().thread_ipc();
  const double unsync_ipc = sys.run().thread_ipc();
  EXPECT_GT(unsync_ipc, base_ipc * 0.90);
}

TEST(UnSyncSystem, TwoPairsRunConcurrently) {
  workload::SyntheticStream stream(workload::profile("gzip"), 11, 10000);
  UnSyncSystem sys(small_config(2), big_cb(), stream);
  const RunResult r = sys.run();
  ASSERT_EQ(r.core_stats.size(), 4u);
  for (const auto& cs : r.core_stats) EXPECT_EQ(cs.committed, 10000u);
}

TEST(UnSyncSystem, DeterministicAcrossRuns) {
  workload::SyntheticStream stream(workload::profile("bzip2"), 12, 15000);
  SystemConfig cfg = small_config();
  cfg.ser_per_inst = 1e-4;
  UnSyncSystem a(cfg, big_cb(), stream);
  UnSyncSystem b(cfg, big_cb(), stream);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.errors_injected, rb.errors_injected);
}

}  // namespace
}  // namespace unsync::core
