#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/unsync_system.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace unsync::core {
namespace {

RunResult sample_run(UnSyncSystem** out_sys = nullptr) {
  static workload::SyntheticStream stream(workload::profile("gzip"), 1, 8000);
  SystemConfig cfg;
  cfg.num_threads = 1;
  cfg.ser_per_inst = 1e-4;
  UnSyncParams p;
  p.cb_entries = 128;
  static UnSyncSystem sys(cfg, p, stream);
  if (out_sys) *out_sys = &sys;
  return sys.run();
}

TEST(RunReport, HeadlineFieldsPresent) {
  const RunResult r = sample_run();
  const std::string text = RunReport(r).str();
  EXPECT_NE(text.find("unsync"), std::string::npos);
  EXPECT_NE(text.find("thread IPC"), std::string::npos);
  EXPECT_NE(text.find("forward recoveries"), std::string::npos);
  EXPECT_NE(text.find("Per-core pipeline"), std::string::npos);
}

TEST(RunReport, MemorySectionWhenHierarchyGiven) {
  UnSyncSystem* sys = nullptr;
  const RunResult r = sample_run(&sys);
  ASSERT_NE(sys, nullptr);
  const std::string text = RunReport(r, &sys->memory()).str();
  EXPECT_NE(text.find("Memory system"), std::string::npos);
  EXPECT_NE(text.find("L2 shared"), std::string::npos);
  EXPECT_NE(text.find("L1D core 0"), std::string::npos);
  EXPECT_NE(text.find("L1I core 1"), std::string::npos);
}

TEST(RunReport, CsvRowsMatchCoreCount) {
  const RunResult r = sample_run();
  const std::string rows = RunReport(r).csv_rows();
  EXPECT_EQ(std::count(rows.begin(), rows.end(), '\n'),
            static_cast<std::ptrdiff_t>(r.core_stats.size()));
  // Column count consistency between header and rows.
  const std::string header = RunReport::csv_header();
  const auto cols = [](const std::string& line) {
    return std::count(line.begin(), line.end(), ',');
  };
  const std::string first_row = rows.substr(0, rows.find('\n'));
  EXPECT_EQ(cols(header.substr(0, header.size() - 1)), cols(first_row));
}

TEST(RunReport, CsvContainsSystemName) {
  const RunResult r = sample_run();
  EXPECT_EQ(RunReport(r).csv_rows().rfind("unsync,", 0), 0u);
}

}  // namespace
}  // namespace unsync::core
