#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace unsync::workload {
namespace {

TEST(Profiles, AllBuiltinsValidate) {
  for (const auto& p : all_profiles()) {
    EXPECT_FALSE(p.validate().has_value()) << p.name;
  }
}

TEST(Profiles, ExpectedCatalogue) {
  const auto names = profile_names();
  EXPECT_EQ(names.size(), 14u);
  EXPECT_NO_THROW(profile("bzip2"));
  EXPECT_NO_THROW(profile("galgel"));
  EXPECT_NO_THROW(profile("susan"));
  EXPECT_THROW(profile("doom"), std::out_of_range);
}

TEST(Profiles, PaperSerializingFractions) {
  // Figure 4 quotes these directly.
  EXPECT_DOUBLE_EQ(profile("bzip2").mix.serializing, 0.02);
  EXPECT_DOUBLE_EQ(profile("ammp").mix.serializing, 0.017);
  EXPECT_DOUBLE_EQ(profile("galgel").mix.serializing, 0.01);
}

TEST(Profiles, GalgelIsRobSaturating) {
  // galgel needs the largest instruction window of the catalogue.
  const auto& g = profile("galgel");
  for (const auto& p : all_profiles()) {
    EXPECT_LE(p.mean_dep_distance, g.mean_dep_distance) << p.name;
  }
}

TEST(Profiles, SusanIsMostStoreIntensive) {
  const auto& s = profile("susan");
  for (const auto& p : all_profiles()) {
    EXPECT_LE(p.mix.store, s.mix.store) << p.name;
  }
}

TEST(Profiles, ValidationCatchesBadMix) {
  BenchmarkProfile p = profile("gzip");
  p.mix.load += 0.5;
  EXPECT_TRUE(p.validate().has_value());
}

TEST(Profiles, ValidationCatchesBadRates) {
  BenchmarkProfile p = profile("gzip");
  p.l1_miss_rate = 1.5;
  EXPECT_TRUE(p.validate().has_value());
  p = profile("gzip");
  p.mean_dep_distance = 0.5;
  EXPECT_TRUE(p.validate().has_value());
}

TEST(Synthetic, YieldsExactlyLengthOps) {
  SyntheticStream s(profile("gzip"), 1, 1000);
  DynOp op;
  std::uint64_t n = 0;
  while (s.next(&op)) ++n;
  EXPECT_EQ(n, 1000u);
  EXPECT_FALSE(s.next(&op));
}

TEST(Synthetic, SequenceNumbersAreDense) {
  SyntheticStream s(profile("gzip"), 1, 100);
  DynOp op;
  for (SeqNum i = 0; i < 100; ++i) {
    ASSERT_TRUE(s.next(&op));
    EXPECT_EQ(op.seq, i);
  }
}

TEST(Synthetic, CloneYieldsIdenticalStream) {
  SyntheticStream s(profile("ammp"), 99, 5000);
  auto c = s.clone();
  DynOp a, b;
  while (true) {
    const bool ga = s.next(&a);
    const bool gb = c->next(&b);
    ASSERT_EQ(ga, gb);
    if (!ga) break;
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.cls, b.cls);
    EXPECT_EQ(a.mem_addr, b.mem_addr);
    EXPECT_EQ(a.src[0], b.src[0]);
    EXPECT_EQ(a.src[1], b.src[1]);
    EXPECT_EQ(a.mispredict_hint, b.mispredict_hint);
  }
}

TEST(Synthetic, ResetReplaysIdentically) {
  SyntheticStream s(profile("mcf"), 7, 200);
  std::vector<DynOp> first;
  DynOp op;
  while (s.next(&op)) first.push_back(op);
  s.reset();
  for (const auto& expect : first) {
    ASSERT_TRUE(s.next(&op));
    EXPECT_EQ(op.seq, expect.seq);
    EXPECT_EQ(op.cls, expect.cls);
    EXPECT_EQ(op.mem_addr, expect.mem_addr);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticStream a(profile("gcc"), 1, 500);
  SyntheticStream b(profile("gcc"), 2, 500);
  DynOp oa, ob;
  int same_cls = 0;
  for (int i = 0; i < 500; ++i) {
    a.next(&oa);
    b.next(&ob);
    same_cls += oa.cls == ob.cls;
  }
  EXPECT_LT(same_cls, 400);  // streams are not identical
}

TEST(Synthetic, MixMatchesProfileStatistically) {
  const auto& prof = profile("bzip2");
  SyntheticStream s(prof, 42, 200000);
  DynOp op;
  std::uint64_t loads = 0, stores = 0, branches = 0, serial = 0;
  while (s.next(&op)) {
    loads += op.is_load();
    stores += op.is_store();
    branches += op.is_branch();
    serial += op.is_serializing();
  }
  const double n = 200000;
  EXPECT_NEAR(loads / n, prof.mix.load, 0.01);
  EXPECT_NEAR(stores / n, prof.mix.store, 0.01);
  EXPECT_NEAR(branches / n, prof.mix.branch, 0.01);
  EXPECT_NEAR(serial / n, prof.mix.serializing, 0.003);
}

TEST(Synthetic, MispredictHintRateMatchesProfile) {
  const auto& prof = profile("qsort");  // 10% mispredict
  SyntheticStream s(prof, 17, 200000);
  DynOp op;
  std::uint64_t branches = 0, wrong = 0;
  while (s.next(&op)) {
    if (op.is_branch()) {
      EXPECT_TRUE(op.has_mispredict_hint);
      ++branches;
      wrong += op.mispredict_hint;
    }
  }
  ASSERT_GT(branches, 1000u);
  EXPECT_NEAR(static_cast<double>(wrong) / branches,
              prof.branch_mispredict_rate, 0.01);
}

TEST(Synthetic, DependencyDistancesHaveProfileMean) {
  const auto& prof = profile("galgel");  // mean 24
  SyntheticStream s(prof, 5, 100000);
  DynOp op;
  double sum = 0;
  std::uint64_t n = 0;
  while (s.next(&op)) {
    for (const SeqNum src : op.src) {
      if (src == kNoSeq) continue;
      sum += static_cast<double>(op.seq - src);
      ++n;
    }
  }
  ASSERT_GT(n, 1000u);
  EXPECT_NEAR(sum / static_cast<double>(n), prof.mean_dep_distance,
              prof.mean_dep_distance * 0.1);
}

TEST(Synthetic, ProducersAlwaysOlder) {
  SyntheticStream s(profile("equake"), 3, 20000);
  DynOp op;
  while (s.next(&op)) {
    for (const SeqNum src : op.src) {
      if (src != kNoSeq) {
        EXPECT_LT(src, op.seq);
      }
    }
  }
}

TEST(Synthetic, MemOpsCarryAlignedAddresses) {
  SyntheticStream s(profile("susan"), 4, 20000);
  DynOp op;
  while (s.next(&op)) {
    if (op.is_load() || op.is_store()) {
      ASSERT_NE(op.mem_addr, kNoAddr);
      EXPECT_EQ(op.mem_addr % 8, 0u);
    } else {
      EXPECT_EQ(op.mem_addr, kNoAddr);
    }
  }
}

TEST(Trace, RecordsRetiredInstructions) {
  const auto prog = isa::Assembler::assemble(R"(
    addi r1, r0, 3
    addi r2, r0, 4
    add  r3, r1, r2
    halt
  )");
  const auto trace = record_trace(prog, 100);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].cls, isa::InstClass::kIntAlu);
  EXPECT_TRUE(trace[0].writes_reg);
}

TEST(Trace, ProducerSeqsFollowRegisterDataflow) {
  const auto prog = isa::Assembler::assemble(R"(
    addi r1, r0, 3     # seq 0 writes r1
    addi r2, r0, 4     # seq 1 writes r2
    add  r3, r1, r2    # seq 2 reads r1(0), r2(1)
    add  r4, r3, r1    # seq 3 reads r3(2), r1(0)
    halt
  )");
  const auto trace = record_trace(prog, 100);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[2].src[0], 0u);
  EXPECT_EQ(trace[2].src[1], 1u);
  EXPECT_EQ(trace[3].src[0], 2u);
  EXPECT_EQ(trace[3].src[1], 0u);
}

TEST(Trace, R0NeverAProducer) {
  const auto prog = isa::Assembler::assemble(R"(
    addi r0, r0, 7     # writes nothing
    add  r1, r0, r0
    halt
  )");
  const auto trace = record_trace(prog, 100);
  EXPECT_EQ(trace[1].src[0], kNoSeq);
  EXPECT_EQ(trace[1].src[1], kNoSeq);
}

TEST(Trace, StoreSourcesAreDataAndBase) {
  const auto prog = isa::Assembler::assemble(R"(
    la   r1, 0x200000  # seqs 0,1 write r1
    addi r2, r0, 9     # seq 2 writes r2
    st   r2, 0(r1)     # seq 3 reads r2(data) and r1(base)
    halt
  )");
  const auto trace = record_trace(prog, 100);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[3].src[0], 2u);  // data register
  EXPECT_EQ(trace[3].src[1], 1u);  // base (ori of la)
  EXPECT_TRUE(trace[3].is_store());
  EXPECT_EQ(trace[3].mem_addr, 0x200000u);
}

TEST(Trace, FpDataflowTracked) {
  const auto prog = isa::Assembler::assemble(R"(
    addi r1, r0, 2     # seq 0
    fmovi f1, r1       # seq 1: fp producer
    fadd f2, f1, f1    # seq 2 reads f1(1)
    halt
  )");
  const auto trace = record_trace(prog, 100);
  EXPECT_EQ(trace[2].src[0], 1u);
  EXPECT_EQ(trace[2].src[1], 1u);
}

TEST(Trace, BranchOutcomeRecorded) {
  const auto prog = isa::Assembler::assemble(R"(
    addi r1, r0, 1
    bne  r1, r0, skip
    addi r9, r0, 1
  skip:
    halt
  )");
  const auto trace = record_trace(prog, 100);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_TRUE(trace[1].is_branch());
  EXPECT_TRUE(trace[1].taken);
  EXPECT_FALSE(trace[1].has_mispredict_hint);  // core predicts for traces
}

TEST(Trace, StreamReplayAndClone) {
  const auto prog = isa::Assembler::assemble(R"(
    addi r1, r0, 5
  loop:
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
  )");
  TraceStream s(record_trace(prog, 1000));
  EXPECT_EQ(s.length(), 11u);  // 1 + 5*2 iterations
  auto c = s.clone();
  DynOp a, b;
  std::uint64_t n = 0;
  while (s.next(&a)) {
    ASSERT_TRUE(c->next(&b));
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.pc, b.pc);
    ++n;
  }
  EXPECT_EQ(n, 11u);
  s.reset();
  ASSERT_TRUE(s.next(&a));
  EXPECT_EQ(a.seq, 0u);
}

TEST(Trace, MaxInstsTruncates) {
  const auto prog = isa::Assembler::assemble(R"(
  spin:
    beq r0, r0, spin
    halt
  )");
  const auto trace = record_trace(prog, 50);
  EXPECT_EQ(trace.size(), 50u);
}

}  // namespace
}  // namespace unsync::workload
