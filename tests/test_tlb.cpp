#include "mem/tlb.hpp"

#include <gtest/gtest.h>

namespace unsync::mem {
namespace {

TEST(Tlb, ColdMissThenHit) {
  Tlb tlb({.entries = 8, .assoc = 2, .page_bits = 12});
  EXPECT_FALSE(tlb.access(0x1000));
  EXPECT_TRUE(tlb.access(0x1000));
  EXPECT_TRUE(tlb.access(0x1FFF));   // same page
  EXPECT_FALSE(tlb.access(0x2000));  // next page
}

TEST(Tlb, NonPowerOfTwoSetCount) {
  // Table I's I-TLB: 48 entries, 2-way -> 24 sets.
  Tlb tlb({.entries = 48, .assoc = 2, .page_bits = 12});
  for (Addr p = 0; p < 48; ++p) tlb.access(p << 12);
  // All 48 pages map across 24 sets at 2 ways: all retained.
  for (Addr p = 0; p < 48; ++p) {
    EXPECT_TRUE(tlb.contains(p << 12)) << p;
  }
}

TEST(Tlb, LruEvictionWithinSet) {
  Tlb tlb({.entries = 4, .assoc = 2, .page_bits = 12});  // 2 sets
  // Pages 0, 2, 4 all map to set 0.
  tlb.access(Addr{0} << 12);
  tlb.access(Addr{2} << 12);
  tlb.access(Addr{0} << 12);  // touch: page 2 is LRU
  tlb.access(Addr{4} << 12);  // evicts page 2
  EXPECT_TRUE(tlb.contains(Addr{0} << 12));
  EXPECT_FALSE(tlb.contains(Addr{2} << 12));
  EXPECT_TRUE(tlb.contains(Addr{4} << 12));
}

TEST(Tlb, ContainsIsSideEffectFree) {
  Tlb tlb({.entries = 8, .assoc = 2, .page_bits = 12});
  EXPECT_FALSE(tlb.contains(0x5000));
  EXPECT_EQ(tlb.hits() + tlb.misses(), 0u);
}

TEST(Tlb, MissRateAccounting) {
  Tlb tlb({.entries = 8, .assoc = 2, .page_bits = 12});
  tlb.access(0x1000);  // miss
  tlb.access(0x1000);  // hit
  tlb.access(0x1008);  // hit (same page)
  tlb.access(0x9000);  // miss
  EXPECT_DOUBLE_EQ(tlb.miss_rate(), 0.5);
}

TEST(Tlb, FlushInvalidatesEverything) {
  Tlb tlb({.entries = 8, .assoc = 2, .page_bits = 12});
  tlb.access(0x1000);
  tlb.access(0x2000);
  tlb.flush();
  EXPECT_FALSE(tlb.contains(0x1000));
  EXPECT_FALSE(tlb.contains(0x2000));
}

// Property: a working set of exactly `entries` pages with uniform access
// never misses after the cold pass when pages spread evenly over sets.
class TlbWorkingSet : public ::testing::TestWithParam<int> {};

TEST_P(TlbWorkingSet, SequentialPagesFullyRetained) {
  const int entries = GetParam();
  Tlb tlb({.entries = static_cast<std::uint32_t>(entries), .assoc = 2,
           .page_bits = 12});
  for (int p = 0; p < entries; ++p) tlb.access(static_cast<Addr>(p) << 12);
  const auto misses = tlb.misses();
  for (int round = 0; round < 3; ++round) {
    for (int p = 0; p < entries; ++p) tlb.access(static_cast<Addr>(p) << 12);
  }
  EXPECT_EQ(tlb.misses(), misses);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TlbWorkingSet,
                         ::testing::Values(4, 16, 48, 64));

TEST(Tlb, PageBitsRespected) {
  Tlb big_pages({.entries = 4, .assoc = 2, .page_bits = 16});  // 64 KiB pages
  big_pages.access(0x0000);
  EXPECT_TRUE(big_pages.contains(0xFFFF));   // same 64 KiB page
  EXPECT_FALSE(big_pages.contains(0x10000));
}

}  // namespace
}  // namespace unsync::mem
