// The observability layer's contracts: registry registration semantics,
// snapshot/merge algebra (associativity — the property the parallel
// campaign reduction rests on), serialisation determinism, trace gating,
// and thread-safe concurrent registration (run under -DUNSYNC_TSAN=ON).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/system.hpp"
#include "core/unsync_system.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace unsync {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TraceKind;
using obs::TraceRecord;
using obs::Tracer;
using obs::VectorTraceSink;

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAndShared) {
  MetricsRegistry reg;
  obs::Counter& a = reg.counter("x.hits");
  obs::Counter& b = reg.counter("x.hits");
  EXPECT_EQ(&a, &b) << "same path must return the same instrument";
  a.inc();
  b.inc(2);
  EXPECT_EQ(reg.counter("x.hits").value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, ConvenienceSettersMatchHandles) {
  MetricsRegistry reg;
  reg.set_counter("c", 7);
  reg.observe("g", 1.5);
  reg.observe("g", 2.5);
  EXPECT_EQ(reg.counter("c").value(), 7u);
  EXPECT_EQ(reg.gauge("g").count(), 2u);
  EXPECT_DOUBLE_EQ(reg.gauge("g").mean(), 2.0);
}

TEST(MetricsRegistry, HistogramShapeFixedAtFirstUse) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("rob", 0.0, 8.0, 8);
  h.add(3.0);
  // Later shape arguments are ignored; it is the same instrument.
  Histogram& again = reg.histogram("rob", 0.0, 100.0, 2);
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.buckets(), 8u);
  EXPECT_EQ(again.total(), 1u);
}

TEST(MetricsRegistry, SnapshotIsADeepCopy) {
  MetricsRegistry reg;
  reg.counter("c").inc(5);
  reg.observe("g", 1.0);
  const MetricsSnapshot snap = reg.snapshot();
  reg.counter("c").inc(100);
  reg.observe("g", 99.0);
  EXPECT_EQ(snap.counters.at("c"), 5u);
  EXPECT_EQ(snap.gauges.at("g").count(), 1u);
}

// ---------------------------------------------------------------------------
// Snapshot merge algebra
// ---------------------------------------------------------------------------

MetricsSnapshot sample_snapshot(std::uint64_t salt) {
  MetricsRegistry reg;
  reg.counter("shared.count").inc(10 + salt);
  reg.counter("only." + std::to_string(salt)).inc(salt + 1);
  for (std::uint64_t i = 0; i <= salt; ++i) {
    reg.observe("shared.gauge", static_cast<double>(i * salt));
    reg.histogram("shared.hist", 0.0, 16.0, 8)
        .add(static_cast<double>((i * 3 + salt) % 16));
  }
  return reg.snapshot();
}

TEST(MetricsSnapshot, MergeAddsCountersAndBuckets) {
  MetricsSnapshot a = sample_snapshot(1);
  const MetricsSnapshot b = sample_snapshot(2);
  const auto a_count = a.counters.at("shared.count");
  const auto b_count = b.counters.at("shared.count");
  a.merge(b);
  EXPECT_EQ(a.counters.at("shared.count"), a_count + b_count);
  // Disjoint paths are unioned.
  EXPECT_TRUE(a.counters.count("only.1"));
  EXPECT_TRUE(a.counters.count("only.2"));
  EXPECT_EQ(a.histograms.at("shared.hist").total(), 2u + 3u);
  EXPECT_EQ(a.gauges.at("shared.gauge").count(), 2u + 3u);
}

TEST(MetricsSnapshot, MergeIsAssociative) {
  // (a + b) + c must equal a + (b + c) byte-for-byte — the guarantee that
  // lets CampaignRunner reduce per-job snapshots in submission order and
  // get a worker-count-independent aggregate.
  MetricsSnapshot left = sample_snapshot(1);
  {
    MetricsSnapshot bc = sample_snapshot(2);
    MetricsSnapshot ab = sample_snapshot(1);
    ab.merge(sample_snapshot(2));
    ab.merge(sample_snapshot(3));
    bc.merge(sample_snapshot(3));
    left.merge(bc);
    EXPECT_EQ(ab.to_json(), left.to_json());
    EXPECT_EQ(ab.to_csv(), left.to_csv());
  }
}

TEST(MetricsSnapshot, MergeWithEmptyIsIdentity) {
  MetricsSnapshot a = sample_snapshot(4);
  const std::string before = a.to_json();
  a.merge(MetricsSnapshot{});
  EXPECT_EQ(a.to_json(), before);
  MetricsSnapshot empty;
  empty.merge(a);
  EXPECT_EQ(empty.to_json(), before);
}

TEST(MetricsSnapshot, MismatchedHistogramShapesThrow) {
  MetricsRegistry a, b;
  a.histogram("h", 0.0, 10.0, 10).add(1);
  b.histogram("h", 0.0, 20.0, 10).add(1);
  MetricsSnapshot sa = a.snapshot();
  EXPECT_THROW(sa.merge(b.snapshot()), std::invalid_argument);
}

TEST(MetricsSnapshot, JsonAndCsvAreDeterministic) {
  const MetricsSnapshot a = sample_snapshot(3);
  const MetricsSnapshot b = sample_snapshot(3);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_json(2), b.to_json(2));
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_NE(a.to_json().find("\"schema\":\"unsync.metrics.v1\""),
            std::string::npos);
  EXPECT_EQ(a.to_csv().substr(0, 4), "kind");
}

// ---------------------------------------------------------------------------
// Concurrent registration (the TSAN target: campaign jobs may race to
// register instruments in a shared registry)
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, ConcurrentRegistrationIsSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPaths = 32;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      for (int p = 0; p < kPaths; ++p) {
        // Overlapping paths: every thread registers the same names, racing
        // on the map, then updates a thread-private counter.
        reg.counter("shared.path" + std::to_string(p));
        reg.gauge("shared.gauge" + std::to_string(p));
        reg.histogram("shared.hist" + std::to_string(p), 0.0, 8.0, 8);
        reg.counter("thread" + std::to_string(t) + ".work").inc();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.size(), 3u * kPaths + kThreads);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("thread" + std::to_string(t) + ".work").value(),
              static_cast<std::uint64_t>(kPaths));
  }
}

// ---------------------------------------------------------------------------
// Tracer gating and sinks
// ---------------------------------------------------------------------------

TEST(Tracer, DisabledGateDropsRecords) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.emit({.kind = TraceKind::kCommit});  // must be a safe no-op
  VectorTraceSink sink;
  tracer.set_sink(&sink);
  EXPECT_TRUE(tracer.enabled());
  tracer.emit({.kind = TraceKind::kCommit, .cycle = 9});
  tracer.set_sink(nullptr);
  EXPECT_FALSE(tracer.enabled());
  tracer.emit({.kind = TraceKind::kCommit, .cycle = 10});
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.records()[0].cycle, 9u);
}

TEST(Tracer, KindNamesAreStable) {
  EXPECT_STREQ(obs::name_of(TraceKind::kFetch), "fetch");
  EXPECT_STREQ(obs::name_of(TraceKind::kCommit), "commit");
  EXPECT_STREQ(obs::name_of(TraceKind::kErrorInjection), "error_injection");
  EXPECT_STREQ(obs::name_of(TraceKind::kBusTransaction), "bus");
  EXPECT_STREQ(obs::name_of(TraceKind::kCbDrain), "cb_drain");
}

TEST(Tracer, RecordJsonIsOneStableObject) {
  const TraceRecord r{.kind = TraceKind::kRecovery,
                      .cycle = 120,
                      .thread = 1,
                      .core = 3,
                      .seq = 42,
                      .addr = 0x1000,
                      .value = 64};
  EXPECT_EQ(obs::to_json(r),
            "{\"kind\":\"recovery\",\"cycle\":120,\"thread\":1,\"core\":3,"
            "\"seq\":42,\"addr\":4096,\"value\":64}");
}

TEST(JsonlTraceSink, WritesOneJsonObjectPerLine) {
  const std::string path = ::testing::TempDir() + "unsync_trace_test.jsonl";
  {
    obs::JsonlTraceSink sink(path);
    sink.record({.kind = TraceKind::kCommit, .cycle = 1});
    sink.record({.kind = TraceKind::kFetch, .cycle = 2});
    sink.flush();
    EXPECT_EQ(sink.records_written(), 2u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

TEST(JsonlTraceSink, UnwritablePathThrows) {
  EXPECT_THROW(obs::JsonlTraceSink("/nonexistent-dir/trace.jsonl"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// System integration: attaching observability must not perturb the run
// ---------------------------------------------------------------------------

core::RunResult run_unsync(obs::MetricsRegistry* metrics,
                           obs::TraceSink* trace) {
  workload::SyntheticStream stream(workload::profile("susan"), 7, 3000);
  core::SystemConfig cfg;
  cfg.num_threads = 1;
  cfg.ser_per_inst = 1e-4;
  cfg.seed = 7;
  core::UnSyncSystem sys(cfg, core::UnSyncParams{}, stream);
  if (metrics || trace) sys.set_observability(metrics, trace);
  return sys.run();
}

TEST(SystemObservability, AttachingSinksDoesNotChangeTheSimulation) {
  const auto plain = run_unsync(nullptr, nullptr);
  MetricsRegistry reg;
  VectorTraceSink sink;
  const auto observed = run_unsync(&reg, &sink);
  EXPECT_EQ(plain.cycles, observed.cycles);
  EXPECT_EQ(plain.instructions, observed.instructions);
  EXPECT_EQ(plain.errors_injected, observed.errors_injected);
  EXPECT_EQ(plain.recoveries, observed.recoveries);
  EXPECT_EQ(plain.to_json(), observed.to_json());
}

TEST(SystemObservability, PublishesTheStandardMetricTree) {
  MetricsRegistry reg;
  VectorTraceSink sink;
  const auto r = run_unsync(&reg, &sink);
  const MetricsSnapshot snap = reg.snapshot();

  EXPECT_EQ(snap.counters.at("unsync.cycles"), r.cycles);
  EXPECT_EQ(snap.counters.at("unsync.instructions"), r.instructions);
  EXPECT_EQ(snap.counters.at("unsync.errors.injected"), r.errors_injected);
  // One redundancy group of two cores, group-major naming.
  EXPECT_EQ(snap.counters.at("unsync.group0.core0.commit.committed"),
            r.core_stats[0].committed);
  EXPECT_EQ(snap.counters.at("unsync.group0.core1.commit.committed"),
            r.core_stats[1].committed);
  // Per-cycle ROB occupancy histograms were sampled for both cores.
  EXPECT_EQ(snap.histograms.at("unsync.group0.core0.rob.occupancy").total(),
            r.core_stats[0].cycles);
  // Memory tree present.
  EXPECT_TRUE(snap.counters.count("unsync.mem.l2.misses"));
  EXPECT_TRUE(snap.counters.count("unsync.mem.bus.transactions"));

  // The trace saw the run's structural events.
  std::size_t commits = 0, fetches = 0, injections = 0, drains = 0;
  for (const auto& rec : sink.records()) {
    commits += rec.kind == TraceKind::kCommit;
    fetches += rec.kind == TraceKind::kFetch;
    injections += rec.kind == TraceKind::kErrorInjection;
    drains += rec.kind == TraceKind::kCbDrain;
  }
  // Two redundant cores each commit the 3000-instruction program.
  EXPECT_EQ(commits, 2u * r.instructions);
  EXPECT_GE(fetches, commits);
  EXPECT_EQ(injections, r.errors_injected);
  EXPECT_GT(drains, 0u) << "UnSync must drain CB entries to L2";
}

}  // namespace
}  // namespace unsync
