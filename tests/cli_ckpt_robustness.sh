#!/usr/bin/env bash
# CLI robustness gate (ctest: cli_ckpt_robustness): corrupt "unsync.ckpt.v1"
# checkpoint containers and campaign journals must make unsync_sim exit 2
# (configuration error) — never crash and never succeed silently. Pairs with
# the in-process CkptFuzz suite in test_ckpt.cpp, which sweeps many more
# corruption points; this script pins the exit-code contract end to end.
set -u

SIM="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# Expect exit code $1 from the command in the remaining args.
expect_rc() {
  local want="$1"
  shift
  "$@" >/dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    fail "expected exit $want, got $got: $*"
  fi
}

RUN_ARGS=(run system=unsync bench=gzip insts=4000 ser=1e-5)

# A healthy save/resume cycle works.
expect_rc 0 "$SIM" "${RUN_ARGS[@]}" checkpoint="$DIR/snap.ckpt" \
  checkpoint_at=1000
expect_rc 0 "$SIM" "${RUN_ARGS[@]}" resume="$DIR/snap.ckpt"

SIZE=$(wc -c < "$DIR/snap.ckpt")

# Truncated container (mid-payload and mid-header) -> exit 2.
head -c $((SIZE / 2)) "$DIR/snap.ckpt" > "$DIR/trunc.ckpt"
expect_rc 2 "$SIM" "${RUN_ARGS[@]}" resume="$DIR/trunc.ckpt"
head -c 11 "$DIR/snap.ckpt" > "$DIR/header.ckpt"
expect_rc 2 "$SIM" "${RUN_ARGS[@]}" resume="$DIR/header.ckpt"

# Trailing garbage -> advertised-length mismatch -> exit 2.
cat "$DIR/snap.ckpt" > "$DIR/trail.ckpt"
printf 'junk' >> "$DIR/trail.ckpt"
expect_rc 2 "$SIM" "${RUN_ARGS[@]}" resume="$DIR/trail.ckpt"

# Not a checkpoint container at all -> bad magic -> exit 2.
echo "this is not a checkpoint" > "$DIR/bad.ckpt"
expect_rc 2 "$SIM" "${RUN_ARGS[@]}" resume="$DIR/bad.ckpt"

# Campaign journals: a complete journal is healthy (exit 0), a torn one
# reports corrupt lines with exit 2 — including under prefix-sharing, whose
# trailing stats line must parse cleanly too.
CAMPAIGN=(campaign systems=baseline,unsync benches=gzip insts=3000 ser=1e-5
  csv=1 prefix_share=1 prefix_interval=1500)
expect_rc 0 "$SIM" "${CAMPAIGN[@]}" checkpoint="$DIR/j.jsonl"
expect_rc 0 "$SIM" campaign status journal="$DIR/j.jsonl"

JSIZE=$(wc -c < "$DIR/j.jsonl")
head -c $((JSIZE - 5)) "$DIR/j.jsonl" > "$DIR/torn.jsonl"
expect_rc 2 "$SIM" campaign status journal="$DIR/torn.jsonl"

echo "cli_ckpt_robustness: OK"
