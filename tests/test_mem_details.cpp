// Memory-system detail tests: DRAM channel bandwidth, cache pre-warming,
// I-cache prefetch behaviour, and the write-through word path.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mem/hierarchy.hpp"

namespace unsync::mem {
namespace {

MemConfig small() {
  MemConfig m;
  m.l1d = {.size_bytes = 1024, .line_bytes = 64, .assoc = 2, .hit_latency = 2,
           .mshrs = 8, .write_policy = WritePolicy::kWriteBack};
  m.l1i = {.size_bytes = 1024, .line_bytes = 64, .assoc = 2, .hit_latency = 1,
           .mshrs = 4, .write_policy = WritePolicy::kWriteBack};
  m.l2 = {.size_bytes = 64 * 1024, .line_bytes = 64, .assoc = 8,
          .hit_latency = 20, .mshrs = 16,
          .write_policy = WritePolicy::kWriteBack};
  return m;
}

TEST(DramChannel, SerialisesLineFetches) {
  MemoryHierarchy mh(small(), 1);
  // Many parallel L2 misses: completions must spread out by at least the
  // channel's per-line occupancy (8 cycles).
  std::vector<Cycle> dones;
  for (int i = 0; i < 8; ++i) {
    dones.push_back(mh.load(0, 0x1000000 + i * 4096, 0).done);
  }
  std::sort(dones.begin(), dones.end());
  for (std::size_t i = 1; i < dones.size(); ++i) {
    EXPECT_GE(dones[i] - dones[i - 1], mh.config().dram_line_cycles);
  }
}

TEST(Prewarm, L2LinesInstalledWithoutTime) {
  MemoryHierarchy mh(small(), 1);
  mh.prewarm_l2(0x40000, 4096);
  // A fresh L1 miss to the warmed region hits the L2: far below DRAM time.
  const auto r = mh.load(0, 0x40100, 0);
  EXPECT_TRUE(r.l2_hit);
  EXPECT_LT(r.done, mh.config().dram_latency / 2);
}

TEST(Prewarm, IcachesWarmAllCores) {
  MemoryHierarchy mh(small(), 2);
  mh.prewarm_icaches(0x1000, 512);
  for (unsigned c = 0; c < 2; ++c) {
    const auto r = mh.ifetch(c, 0x1100, 0);
    EXPECT_TRUE(r.l1_hit) << "core " << c;
  }
}

TEST(IcachePrefetch, NextLineArrivesWithDemand) {
  MemoryHierarchy mh(small(), 1);
  const auto first = mh.ifetch(0, 0x200000, 0);
  EXPECT_FALSE(first.l1_hit);
  // The next line was prefetched alongside; fetching it after the fill
  // completes is a hit.
  const auto next = mh.ifetch(0, 0x200040, first.done + 16);
  EXPECT_TRUE(next.l1_hit);
}

TEST(IcachePrefetch, DoesNotRunAwayPastOneLine) {
  MemoryHierarchy mh(small(), 1);
  const auto first = mh.ifetch(0, 0x300000, 0);
  // Two lines ahead was NOT prefetched by the single demand access.
  EXPECT_FALSE(mh.icache(0).contains(0x300080));
  (void)first;
}

TEST(WriteThroughPath, WordPushesAllocateInL2) {
  MemConfig cfg = small();
  cfg.l1d.write_policy = WritePolicy::kWriteThrough;
  MemoryHierarchy mh(cfg, 1);
  mh.push_word_to_l2(0x500000, 0);
  EXPECT_TRUE(mh.l2().contains(0x500000));
  EXPECT_TRUE(mh.l2().line_dirty(0x500000));
}

TEST(WriteThroughPath, WordPushConsumesDramForAllocation) {
  MemConfig cfg = small();
  cfg.l1d.write_policy = WritePolicy::kWriteThrough;
  MemoryHierarchy mh(cfg, 1);
  const auto before = mh.dram_channel().busy_cycles();
  mh.push_word_to_l2(0x600000, 0);  // L2 write miss -> write-allocate fetch
  EXPECT_GT(mh.dram_channel().busy_cycles(), before);
}

TEST(WriteThroughPath, SecondPushToSameLineIsCheap) {
  MemConfig cfg = small();
  cfg.l1d.write_policy = WritePolicy::kWriteThrough;
  MemoryHierarchy mh(cfg, 1);
  mh.push_word_to_l2(0x700000, 0);
  const auto busy = mh.dram_channel().busy_cycles();
  mh.push_word_to_l2(0x700008, 100);  // same line: no second allocation
  EXPECT_EQ(mh.dram_channel().busy_cycles(), busy);
}

TEST(ReadAfterWriteThroughPush, WaitsForAllocationFill) {
  MemConfig cfg = small();
  cfg.l1d.write_policy = WritePolicy::kWriteThrough;
  MemoryHierarchy mh(cfg, 1);
  mh.push_word_to_l2(0x800000, 0);
  // A load shortly after must wait for the line's DRAM allocation, not
  // treat the tag-resident line as instantly ready.
  const auto r = mh.load(0, 0x800000, 5);
  EXPECT_GT(r.done, mh.config().l2.hit_latency + 10u);
}

}  // namespace
}  // namespace unsync::mem
