// End-to-end validation of the URISC kernel library: every kernel's output
// on the golden-model functional simulator must equal its C++ reference,
// and every kernel's recorded trace must run to completion on all three
// timing systems with consistent instruction counts.
#include "workload/kernels.hpp"

#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/reunion_system.hpp"
#include "core/unsync_system.hpp"
#include "isa/functional_sim.hpp"
#include "workload/trace.hpp"

namespace unsync::workload {
namespace {

constexpr std::uint64_t kMaxSteps = 3'000'000;

void expect_golden(const Kernel& k) {
  isa::FunctionalSim sim(assemble(k));
  sim.run(kMaxSteps);
  ASSERT_TRUE(sim.halted()) << k.name << " did not halt";
  EXPECT_EQ(sim.output(), k.expected) << k.name;
}

TEST(Kernels, VectorSum) {
  expect_golden(make_vector_sum(1));
  expect_golden(make_vector_sum(10));
  expect_golden(make_vector_sum(100));
}

TEST(Kernels, Fibonacci) {
  expect_golden(make_fibonacci(1));
  expect_golden(make_fibonacci(10));
  expect_golden(make_fibonacci(90));
}

TEST(Kernels, FibonacciKnownValue) {
  const Kernel k = make_fibonacci(10);
  EXPECT_EQ(k.expected[0], 55u);
}

TEST(Kernels, BubbleSort) {
  expect_golden(make_bubble_sort(2, 1));
  expect_golden(make_bubble_sort(16, 2));
  expect_golden(make_bubble_sort(64, 3));
}

TEST(Kernels, BubbleSortOutputIsSorted) {
  const Kernel k = make_bubble_sort(32, 9);
  EXPECT_TRUE(std::is_sorted(k.expected.begin(), k.expected.end()));
}

TEST(Kernels, Matmul) {
  expect_golden(make_matmul(2));
  expect_golden(make_matmul(4));
  expect_golden(make_matmul(8));
}

TEST(Kernels, Checksum) {
  expect_golden(make_checksum(8, 1));
  expect_golden(make_checksum(256, 2));
  expect_golden(make_checksum(1024, 3));
}

TEST(Kernels, ChecksumSensitiveToSeed) {
  EXPECT_NE(make_checksum(64, 1).expected[0],
            make_checksum(64, 2).expected[0]);
}

TEST(Kernels, Stencil) {
  expect_golden(make_stencil(8, 1));
  expect_golden(make_stencil(32, 3));
  expect_golden(make_stencil(64, 8));
}

TEST(Kernels, Sieve) {
  expect_golden(make_sieve(10));
  expect_golden(make_sieve(100));
  expect_golden(make_sieve(1000));
}

TEST(Kernels, SieveKnownCounts) {
  EXPECT_EQ(make_sieve(10).expected[0], 4u);    // 2 3 5 7
  EXPECT_EQ(make_sieve(100).expected[0], 25u);
  EXPECT_EQ(make_sieve(1000).expected[0], 168u);
}

TEST(Kernels, Dijkstra) {
  expect_golden(make_dijkstra(2));
  expect_golden(make_dijkstra(8));
  expect_golden(make_dijkstra(24));
}

TEST(Kernels, DijkstraDistanceIsReachable) {
  // Fully connected graph with weights in [1,19]: the distance to any node
  // is at most one direct edge.
  const Kernel k = make_dijkstra(16);
  EXPECT_GE(k.expected[0], 1u);
  EXPECT_LE(k.expected[0], 19u);
}

TEST(Kernels, MembarPing) {
  expect_golden(make_membar_ping(1));
  expect_golden(make_membar_ping(64));
  expect_golden(make_membar_ping(500));
}

TEST(Kernels, StandardSuiteAllGolden) {
  for (const auto& k : standard_kernel_suite()) {
    expect_golden(k);
  }
}

// Property sweep: every kernel of the standard suite replays through every
// timing system, committing exactly the recorded instruction count.
class KernelOnSystems : public ::testing::TestWithParam<int> {};

TEST_P(KernelOnSystems, TraceCompletesEverywhere) {
  const auto suite = standard_kernel_suite();
  const Kernel& k = suite.at(static_cast<std::size_t>(GetParam()));
  TraceStream trace(record_trace(assemble(k), kMaxSteps));
  ASSERT_GT(trace.length(), 0u) << k.name;

  core::SystemConfig cfg;
  cfg.num_threads = 1;

  core::BaselineSystem base(cfg, trace);
  EXPECT_EQ(base.run().core_stats[0].committed, trace.length()) << k.name;

  core::UnSyncParams up;
  up.cb_entries = 128;
  core::UnSyncSystem us(cfg, up, trace);
  const auto ru = us.run();
  EXPECT_EQ(ru.core_stats[0].committed, trace.length()) << k.name;
  EXPECT_EQ(ru.core_stats[1].committed, trace.length()) << k.name;

  core::ReunionSystem re(cfg, core::ReunionParams{}, trace);
  const auto rr = re.run();
  EXPECT_EQ(rr.core_stats[0].committed, trace.length()) << k.name;
}

INSTANTIATE_TEST_SUITE_P(StandardSuite, KernelOnSystems,
                         ::testing::Range(0, 9));

TEST(Kernels, MembarKernelStressesSerialization) {
  // The membar kernel must cost Reunion disproportionally: every barrier is
  // a cross-core fingerprint synchronisation.
  const Kernel k = make_membar_ping(400);
  TraceStream trace(record_trace(assemble(k), kMaxSteps));
  core::SystemConfig cfg;
  cfg.num_threads = 1;

  core::BaselineSystem base(cfg, trace);
  const double b = base.run().thread_ipc();
  core::ReunionSystem re(cfg, core::ReunionParams{}, trace);
  const auto rr = re.run();
  const double r = rr.thread_ipc();
  EXPECT_GT(rr.fingerprint_syncs, 390u);
  EXPECT_LT(r, b * 0.8);  // > 20% overhead on a barrier-bound loop

  core::UnSyncParams up;
  up.cb_entries = 128;
  core::UnSyncSystem us(cfg, up, trace);
  const double u = us.run().thread_ipc();
  EXPECT_GT(u, r);  // UnSync does not synchronise on barriers
}

}  // namespace
}  // namespace unsync::workload
