#include "workload/phased.hpp"

#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/unsync_system.hpp"
#include "workload/stream_stats.hpp"

namespace unsync::workload {
namespace {

std::vector<BenchmarkProfile> two_phases() {
  return {profile("susan"), profile("mcf")};  // store-heavy vs miss-heavy
}

TEST(PhasedStream, YieldsExactLengthWithDenseSeqs) {
  PhasedStream s(two_phases(), 1, 500, 4000);
  DynOp op;
  for (SeqNum i = 0; i < 4000; ++i) {
    ASSERT_TRUE(s.next(&op));
    EXPECT_EQ(op.seq, i);
    for (const SeqNum src : op.src) {
      if (src != kNoSeq) {
        EXPECT_LT(src, op.seq);
      }
    }
  }
  EXPECT_FALSE(s.next(&op));
}

TEST(PhasedStream, PhaseIndexCycles) {
  PhasedStream s(two_phases(), 2, 100, 1000);
  DynOp op;
  EXPECT_EQ(s.current_phase(), 0u);
  for (int i = 0; i < 100; ++i) s.next(&op);
  EXPECT_EQ(s.current_phase(), 1u);
  for (int i = 0; i < 100; ++i) s.next(&op);
  EXPECT_EQ(s.current_phase(), 0u);
}

TEST(PhasedStream, CloneAndResetDeterministic) {
  PhasedStream s(two_phases(), 3, 250, 3000);
  auto c = s.clone();
  DynOp a, b;
  while (s.next(&a)) {
    ASSERT_TRUE(c->next(&b));
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.cls, b.cls);
    EXPECT_EQ(a.mem_addr, b.mem_addr);
    EXPECT_EQ(a.src[0], b.src[0]);
  }
  s.reset();
  ASSERT_TRUE(s.next(&a));
  EXPECT_EQ(a.seq, 0u);
}

TEST(PhasedStream, BlendsTheMixes) {
  // Over many phase laps, the store fraction lands between the two
  // profiles' fractions (susan 19%, mcf 7%) near their average.
  PhasedStream s(two_phases(), 4, 500, 60000);
  const auto stats = characterize(s);
  EXPECT_GT(stats.store_fraction(), 0.09);
  EXPECT_LT(stats.store_fraction(), 0.17);
}

TEST(PhasedStream, RunsOnTimingSystems) {
  PhasedStream s(two_phases(), 5, 1000, 12000);
  core::SystemConfig cfg;
  cfg.num_threads = 1;
  core::BaselineSystem base(cfg, s);
  EXPECT_EQ(base.run().core_stats[0].committed, 12000u);
  core::UnSyncParams p;
  p.cb_entries = 128;
  core::UnSyncSystem us(cfg, p, s);
  const auto r = us.run();
  EXPECT_EQ(r.core_stats[0].committed, 12000u);
  EXPECT_EQ(r.core_stats[1].committed, 12000u);
}

TEST(PhasedStream, PhasesVisibleInIntervalSampling) {
  // Alternating a fast phase (gzip-like) with a DRAM-bound one (mcf) must
  // produce visibly different interval commit rates.
  std::vector<BenchmarkProfile> phases = {profile("gzip"), profile("mcf")};
  PhasedStream s(phases, 6, 4000, 32000);
  core::SystemConfig cfg;
  cfg.num_threads = 1;
  cfg.core.sample_interval = 2000;
  core::BaselineSystem base(cfg, s);
  const auto r = base.run();
  const auto& samples = r.core_stats[0].interval_committed;
  ASSERT_GT(samples.size(), 6u);
  std::uint64_t min_d = ~0ull, max_d = 0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const auto d = samples[i] - samples[i - 1];
    min_d = std::min(min_d, d);
    max_d = std::max(max_d, d);
  }
  EXPECT_GT(max_d, min_d * 2);
}

TEST(PhasedStream, SinglePhaseDegeneratesToSynthetic) {
  std::vector<BenchmarkProfile> one = {profile("gzip")};
  PhasedStream phased(one, 7, 100, 2000);
  SyntheticStream plain(profile("gzip"), 7, 2000);
  DynOp a, b;
  while (phased.next(&a)) {
    ASSERT_TRUE(plain.next(&b));
    EXPECT_EQ(a.cls, b.cls);
    EXPECT_EQ(a.mem_addr, b.mem_addr);
  }
}

}  // namespace
}  // namespace unsync::workload
