// Pins the machine-readable result schemas. The golden file
// (tests/golden/run_result_v2.json) is a contract with external consumers
// (plot scripts, CI dashboards): if this test fails, either fix the code
// or — for a deliberate schema change — bump the schema version, add a new
// golden, and document the change in docs/OBSERVABILITY.md. The retired
// run_result_v1.json golden stays checked in to prove v2 is a strict
// superset of v1 (v1 readers that ignore unknown keys keep working).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/system.hpp"
#include "runtime/campaign.hpp"

#ifndef UNSYNC_TEST_DATA_DIR
#error "UNSYNC_TEST_DATA_DIR must point at tests/ (set by tests/CMakeLists.txt)"
#endif

namespace unsync {
namespace {

std::string read_golden(const std::string& name) {
  const std::string path = std::string(UNSYNC_TEST_DATA_DIR) + "/golden/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// A fully populated result with every field nonzero — hand-built, so the
/// golden pins serialisation only, not simulator behaviour.
core::RunResult sample_result() {
  core::RunResult r;
  r.system = "unsync";
  r.cycles = 4321;
  r.instructions = 3000;
  r.thread_instructions = {3000, 2500};
  r.errors_injected = 2;
  r.recoveries = 1;
  r.rollbacks = 1;
  r.recovery_cycles_total = 96;
  r.cb_full_stalls = 17;
  r.fingerprint_syncs = 5;

  cpu::CoreStats c;
  c.cycles = 4300;
  c.committed = 3000;
  c.loads = 700;
  c.stores = 300;
  c.branches = 450;
  c.mispredicts = 31;
  c.serializing = 12;
  c.commit_stall_store = 40;
  c.commit_stall_gate = 25;
  c.dispatch_stall_rob = 60;
  c.dispatch_stall_iq = 15;
  c.dispatch_stall_lsq = 8;
  c.fetch_blocked_branch = 90;
  c.fetch_blocked_serialize = 33;
  c.fetch_blocked_icache = 21;
  c.itlb_misses = 4;
  c.dtlb_misses = 19;
  c.recovery_stall_cycles = 64;
  c.rob_occupancy_accum = 86000;
  r.core_stats.push_back(c);
  c.committed = 2500;  // second core differs so ordering bugs show up
  c.cycles = 4100;
  r.core_stats.push_back(c);

  r.error_log.push_back({.cycle = 1200,
                         .position = 800,
                         .thread = 0,
                         .struck_core = 1,
                         .cost = 64,
                         .rollback = false});
  r.error_log.push_back({.cycle = 3100,
                         .position = 2200,
                         .thread = 1,
                         .struck_core = 0,
                         .cost = 32,
                         .rollback = true});
  return r;
}

TEST(RunResultJson, MatchesGoldenSchema) {
  EXPECT_EQ(sample_result().to_json(2) + "\n",
            read_golden("run_result_v2.json"));
}

TEST(RunResultJson, FastTierResultsAreTagged) {
  core::RunResult r = sample_result();
  r.approximate = true;
  const std::string j = r.to_json();
  EXPECT_NE(j.find("\"tier\":\"fast\""), std::string::npos);
  EXPECT_NE(j.find("\"approximate\":true"), std::string::npos);
}

// v2 is v1 plus the "tier"/"approximate" pair inserted after "system": a
// v1 reader that ignores unknown keys parses a v2 document unchanged.
// Proven mechanically: deleting those two lines from the pretty v2 output
// (and reverting the schema tag) must reproduce the v1 golden byte for
// byte.
TEST(RunResultJson, V2IsAStrictSupersetOfV1) {
  std::istringstream v2(sample_result().to_json(2) + "\n");
  std::string line;
  std::string back_to_v1;
  while (std::getline(v2, line)) {
    if (line == "  \"tier\": \"detailed\"," ||
        line == "  \"approximate\": false,") {
      continue;
    }
    const std::string::size_type at = line.find("unsync.run_result.v2");
    if (at != std::string::npos) line.replace(at + 19, 1, "1");
    back_to_v1 += line;
    back_to_v1 += '\n';
  }
  EXPECT_EQ(back_to_v1, read_golden("run_result_v1.json"));
}

TEST(RunResultJson, CompactAndPrettyAgreeModuloWhitespace) {
  const auto r = sample_result();
  std::string compact = r.to_json();
  std::string pretty = r.to_json(2);
  // Stripping all whitespace outside strings (none of our keys/values
  // contain spaces) must make them equal.
  auto strip = [](std::string s) {
    std::string out;
    for (const char ch : s) {
      if (ch != ' ' && ch != '\n') out += ch;
    }
    return out;
  };
  EXPECT_EQ(strip(pretty), compact);
  EXPECT_EQ(compact.find('\n'), std::string::npos);
}

TEST(RunResultJson, SerialisationIsAPureFunction) {
  EXPECT_EQ(sample_result().to_json(), sample_result().to_json());
}

TEST(RunResultJson, EmptyResultStillCarriesTheSchema) {
  const core::RunResult r;
  const std::string j = r.to_json();
  EXPECT_NE(j.find("\"schema\":\"unsync.run_result.v2\""), std::string::npos);
  EXPECT_NE(j.find("\"cores\":[]"), std::string::npos);
  EXPECT_NE(j.find("\"error_log\":[]"), std::string::npos);
}

TEST(CampaignJson, CarriesTheCampaignSchemaAndEmbedsResults) {
  runtime::CampaignOutput out;
  out.campaign_seed = 99;
  out.results.push_back(sample_result());
  out.labels.push_back("susan");
  out.seeds.push_back(12345);
  out.job_wall_seconds.push_back(0.5);
  out.wall_seconds = 0.6;

  const std::string j = out.to_json();
  EXPECT_NE(j.find("\"schema\":\"unsync.campaign.v2\""), std::string::npos);
  EXPECT_NE(j.find("\"schema\":\"unsync.run_result.v2\""), std::string::npos);
  EXPECT_NE(j.find("\"label\":\"susan\""), std::string::npos);
  EXPECT_NE(j.find("\"metrics\":null"), std::string::npos);
  // The default output is the deterministic surface: no wall-clock fields.
  EXPECT_EQ(j.find("wall_seconds"), std::string::npos);
  // include_timing opts them in (for humans, never for diffing).
  const std::string timed = out.to_json(0, true);
  EXPECT_NE(timed.find("\"wall_seconds\""), std::string::npos);
}

}  // namespace
}  // namespace unsync
