#include "mem/bus.hpp"

#include <gtest/gtest.h>

namespace unsync::mem {
namespace {

TEST(Bus, ImmediateGrantWhenFree) {
  Bus b;
  EXPECT_TRUE(b.free_at(0));
  EXPECT_EQ(b.acquire(10, 4), 10u);
  EXPECT_EQ(b.next_free(), 14u);
}

TEST(Bus, SerialisesOverlappingRequests) {
  Bus b;
  EXPECT_EQ(b.acquire(0, 4), 0u);
  EXPECT_EQ(b.acquire(1, 4), 4u);  // queued behind the first
  EXPECT_EQ(b.acquire(2, 4), 8u);
  EXPECT_EQ(b.next_free(), 12u);
}

TEST(Bus, IdleGapNotCharged) {
  Bus b;
  b.acquire(0, 4);
  EXPECT_EQ(b.acquire(100, 4), 100u);  // bus idles between
  EXPECT_EQ(b.busy_cycles(), 8u);
}

TEST(Bus, FreeAtBoundaries) {
  Bus b;
  b.acquire(0, 4);
  EXPECT_FALSE(b.free_at(3));
  EXPECT_TRUE(b.free_at(4));
}

TEST(Bus, TransactionCounting) {
  Bus b;
  for (int i = 0; i < 5; ++i) b.acquire(0, 1);
  EXPECT_EQ(b.transactions(), 5u);
}

TEST(Bus, ResetClearsState) {
  Bus b;
  b.acquire(0, 100);
  b.reset();
  EXPECT_TRUE(b.free_at(0));
  EXPECT_EQ(b.busy_cycles(), 0u);
  EXPECT_EQ(b.transactions(), 0u);
}

TEST(Bus, ZeroHoldIsLegal) {
  Bus b;
  EXPECT_EQ(b.acquire(5, 0), 5u);
  EXPECT_TRUE(b.free_at(5));
}

}  // namespace
}  // namespace unsync::mem
