#include "fault/ser.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace unsync::fault {
namespace {

TEST(Ser, AnchorsReproduced) {
  EXPECT_NEAR(fit_for_node(180), 1000.0, 1.0);
  EXPECT_NEAR(fit_for_node(130), 100000.0, 100.0);
}

TEST(Ser, ExponentialGrowthBetweenAnchors) {
  // Halfway (155 nm) should be the geometric mean of the anchors.
  EXPECT_NEAR(fit_for_node(155), 10000.0, 50.0);
}

TEST(Ser, ExtrapolatesTo90nm) {
  // Two more 50/40nm steps of growth: strictly above the 130 nm rate.
  EXPECT_GT(fit_for_node(90), fit_for_node(130));
}

TEST(Ser, SaturatesBeyond65nm) {
  EXPECT_DOUBLE_EQ(fit_for_node(45), fit_for_node(65));
  EXPECT_DOUBLE_EQ(fit_for_node(22), fit_for_node(65));
}

TEST(Ser, FitConversionDimensions) {
  // 3600e9 FIT = 1 failure per second; at 1 Hz that is 1 per cycle.
  EXPECT_NEAR(fit_to_per_cycle(3600e9, 1.0), 1.0, 1e-9);
  // At 2 GHz each cycle is 2e9x shorter.
  EXPECT_NEAR(fit_to_per_cycle(3600e9, 2e9), 0.5e-9, 1e-15);
}

TEST(Ser, PerInstScalesWithIpc) {
  const double per_cycle = fit_to_per_cycle(1e6, 2e9);
  EXPECT_NEAR(fit_to_per_inst(1e6, 2e9, 2.0), per_cycle / 2.0, 1e-30);
  EXPECT_NEAR(fit_to_per_inst(1e6, 2e9, 0.5), per_cycle * 2.0, 1e-30);
}

TEST(Ser, PaperConstantsPresent) {
  EXPECT_DOUBLE_EQ(kPaperSerPerInst90nm, 2.89e-17);
  EXPECT_DOUBLE_EQ(kPaperBreakEvenSer, 1.29e-3);
}

TEST(Ser, NoArrivalsAtZeroRate) {
  Rng rng(1);
  EXPECT_TRUE(sample_error_arrivals(0.0, 1000000, rng).empty());
}

TEST(Ser, NoArrivalsInEmptyRun) {
  Rng rng(1);
  EXPECT_TRUE(sample_error_arrivals(0.5, 0, rng).empty());
}

TEST(Ser, ArrivalCountMatchesExpectation) {
  Rng rng(2);
  const double rate = 1e-3;
  const std::uint64_t n = 1000000;
  const auto arrivals = sample_error_arrivals(rate, n, rng);
  EXPECT_NEAR(static_cast<double>(arrivals.size()),
              expected_errors(rate, n),
              5 * std::sqrt(expected_errors(rate, n)));
}

TEST(Ser, ArrivalsAreOrderedAndInRange) {
  Rng rng(3);
  const auto arrivals = sample_error_arrivals(1e-2, 100000, rng);
  ASSERT_FALSE(arrivals.empty());
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_LE(arrivals[i - 1], arrivals[i]);
  }
  EXPECT_LT(arrivals.back(), 100000u);
}

TEST(Ser, TinyRateUsuallyNoArrivals) {
  Rng rng(4);
  // Paper's operating point: 2.89e-17/inst over 1e6 insts -> ~0 errors.
  const auto arrivals =
      sample_error_arrivals(kPaperSerPerInst90nm, 1000000, rng);
  EXPECT_TRUE(arrivals.empty());
}

TEST(ScheduleArrivals, MatchesSampleWhenActive) {
  // schedule_arrivals is the shared front door every system uses to build
  // its error-arrival schedule; it must be draw-for-draw identical to
  // sample_error_arrivals so pre-refactor results stay reproducible.
  Rng a(42);
  Rng b(42);
  const auto direct = sample_error_arrivals(5e-4, 50000, a);
  const auto scheduled = schedule_arrivals(5e-4, 50000, b);
  EXPECT_EQ(scheduled, direct);
  EXPECT_EQ(a.state(), b.state());
}

TEST(ScheduleArrivals, InactiveRateLeavesRngUntouched) {
  // A zero/negative rate must not consume any draws: systems share one RNG
  // between arrival sampling and recovery-cost draws, so a stray draw here
  // would shift every downstream result.
  Rng rng(7);
  const auto before = rng.state();
  EXPECT_TRUE(schedule_arrivals(0.0, 50000, rng).empty());
  EXPECT_TRUE(schedule_arrivals(-1.0, 50000, rng).empty());
  EXPECT_EQ(rng.state(), before);
}

TEST(ScheduleArrivals, EmptyStreamLeavesRngUntouched) {
  Rng rng(7);
  const auto before = rng.state();
  EXPECT_TRUE(schedule_arrivals(5e-4, 0, rng).empty());
  EXPECT_EQ(rng.state(), before);
}

class SerSweep : public ::testing::TestWithParam<double> {};

TEST_P(SerSweep, ArrivalProcessStatisticallySound) {
  Rng rng(99);
  const double rate = GetParam();
  const std::uint64_t n = 200000;
  double total = 0;
  for (int rep = 0; rep < 20; ++rep) {
    total += static_cast<double>(sample_error_arrivals(rate, n, rng).size());
  }
  const double mean = total / 20.0;
  const double expect = expected_errors(rate, n);
  EXPECT_NEAR(mean, expect, std::max(1.0, 4 * std::sqrt(expect / 20)));
}

INSTANTIATE_TEST_SUITE_P(Rates, SerSweep,
                         ::testing::Values(1e-2, 1e-3, 1e-4, 1e-5));

}  // namespace
}  // namespace unsync::fault
