#include "fault/ecc.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace unsync::fault {
namespace {

// ---- Parity -------------------------------------------------------------------

TEST(Parity, KnownValues) {
  EXPECT_FALSE(parity_bit(0));
  EXPECT_TRUE(parity_bit(1));
  EXPECT_FALSE(parity_bit(0b11));
  EXPECT_TRUE(parity_bit(0b111));
  EXPECT_FALSE(parity_bit(~std::uint64_t{0}));  // 64 ones: even
}

TEST(Parity, DetectsEveryOddFlip) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t word = rng.next();
    const bool p = parity_bit(word);
    const std::uint64_t flipped = word ^ (std::uint64_t{1} << rng.below(64));
    EXPECT_FALSE(parity_check(flipped, p));
  }
}

TEST(Parity, BlindToEveryDoubleFlip) {
  // The limitation the paper's future work targets: 1-bit parity cannot see
  // even-weight errors.
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t word = rng.next();
    const bool p = parity_bit(word);
    const auto b1 = rng.below(64);
    auto b2 = rng.below(64);
    while (b2 == b1) b2 = rng.below(64);
    const std::uint64_t flipped =
        word ^ (std::uint64_t{1} << b1) ^ (std::uint64_t{1} << b2);
    EXPECT_TRUE(parity_check(flipped, p));
  }
}

TEST(Parity, CleanWordPasses) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t word = rng.next();
    EXPECT_TRUE(parity_check(word, parity_bit(word)));
  }
}

// ---- DMR ----------------------------------------------------------------------

TEST(Dmr, DetectsAnyDivergence) {
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t word = rng.next();
    EXPECT_FALSE(dmr_mismatch(word, word));
    const std::uint64_t bad = word ^ (std::uint64_t{1} << rng.below(64));
    EXPECT_TRUE(dmr_mismatch(word, bad));
  }
}

// ---- TMR ----------------------------------------------------------------------

TEST(Tmr, CleanVote) {
  const auto r = tmr_vote(42, 42, 42);
  EXPECT_EQ(r.voted, 42u);
  EXPECT_FALSE(r.corrected);
  EXPECT_FALSE(r.uncorrectable);
}

TEST(Tmr, OutvotesSingleCorruptCopy) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t word = rng.next();
    const std::uint64_t bad = word ^ rng.next();  // arbitrarily corrupted
    for (int which = 0; which < 3; ++which) {
      const auto r = tmr_vote(which == 0 ? bad : word,
                              which == 1 ? bad : word,
                              which == 2 ? bad : word);
      EXPECT_EQ(r.voted, word);
      if (bad != word) {
        EXPECT_TRUE(r.corrected);
      }
    }
  }
}

TEST(Tmr, FlagsTripleDisagreement) {
  const auto r = tmr_vote(1, 2, 4);
  EXPECT_TRUE(r.uncorrectable);
}

TEST(Tmr, BitwiseMajorityOnDistinctCopies) {
  // 0b011, 0b101, 0b110 -> every bit has two votes set -> 0b111.
  const auto r = tmr_vote(0b011, 0b101, 0b110);
  EXPECT_EQ(r.voted, 0b111u);
}

// ---- SECDED -------------------------------------------------------------------

TEST(Secded, CleanRoundTrip) {
  Rng rng(6);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t data = rng.next();
    const auto dec = secded_decode(secded_encode(data));
    EXPECT_EQ(dec.status, SecdedStatus::kClean);
    EXPECT_EQ(dec.data, data);
  }
}

TEST(Secded, CleanEdgeWords) {
  for (const std::uint64_t data :
       {std::uint64_t{0}, ~std::uint64_t{0}, std::uint64_t{1},
        std::uint64_t{1} << 63, std::uint64_t{0xAAAA'AAAA'AAAA'AAAA}}) {
    const auto dec = secded_decode(secded_encode(data));
    EXPECT_EQ(dec.status, SecdedStatus::kClean);
    EXPECT_EQ(dec.data, data);
  }
}

// Exhaustive single-bit property: every one of the 72 codeword bits, when
// flipped, is corrected and the data restored.
class SecdedSingleBit : public ::testing::TestWithParam<unsigned> {};

TEST_P(SecdedSingleBit, CorrectsEveryPosition) {
  const unsigned bit = GetParam();
  Rng rng(100 + bit);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t data = rng.next();
    const SecdedWord flipped = secded_flip(secded_encode(data), bit);
    const auto dec = secded_decode(flipped);
    EXPECT_NE(dec.status, SecdedStatus::kClean);
    EXPECT_NE(dec.status, SecdedStatus::kDoubleError);
    EXPECT_EQ(dec.data, data) << "bit " << bit;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodewordBits, SecdedSingleBit,
                         ::testing::Range(0u, 72u));

TEST(Secded, DetectsAllDoubleFlipsSampled) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t data = rng.next();
    const unsigned b1 = static_cast<unsigned>(rng.below(72));
    unsigned b2 = static_cast<unsigned>(rng.below(72));
    while (b2 == b1) b2 = static_cast<unsigned>(rng.below(72));
    const SecdedWord w = secded_flip(secded_flip(secded_encode(data), b1), b2);
    const auto dec = secded_decode(w);
    EXPECT_EQ(dec.status, SecdedStatus::kDoubleError)
        << "bits " << b1 << "," << b2;
  }
}

TEST(Secded, ExhaustiveDoubleFlipsOnOneWord) {
  const std::uint64_t data = 0xDEAD'BEEF'CAFE'F00D;
  const SecdedWord enc = secded_encode(data);
  for (unsigned b1 = 0; b1 < 72; ++b1) {
    for (unsigned b2 = b1 + 1; b2 < 72; ++b2) {
      const auto dec = secded_decode(secded_flip(secded_flip(enc, b1), b2));
      ASSERT_EQ(dec.status, SecdedStatus::kDoubleError)
          << "bits " << b1 << "," << b2;
    }
  }
}

TEST(Secded, CheckBitErrorsClassified) {
  const std::uint64_t data = 0x0123'4567'89AB'CDEF;
  for (unsigned bit = 64; bit < 72; ++bit) {
    const auto dec = secded_decode(secded_flip(secded_encode(data), bit));
    EXPECT_EQ(dec.status, SecdedStatus::kCorrectedCheck) << "bit " << bit;
    EXPECT_EQ(dec.data, data);
  }
}

TEST(Secded, DataBitErrorsClassified) {
  const std::uint64_t data = 0x0123'4567'89AB'CDEF;
  for (unsigned bit = 0; bit < 64; ++bit) {
    const auto dec = secded_decode(secded_flip(secded_encode(data), bit));
    EXPECT_EQ(dec.status, SecdedStatus::kCorrectedData) << "bit " << bit;
    EXPECT_EQ(dec.data, data);
  }
}

TEST(Secded, CheckBitsDifferAcrossData) {
  // The code must actually depend on the data (not a constant).
  EXPECT_NE(secded_encode(0x1).check, secded_encode(0x2).check);
}

}  // namespace
}  // namespace unsync::fault
