#include "core/baseline.hpp"

#include <gtest/gtest.h>

#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace unsync::core {
namespace {

SystemConfig small_config(unsigned threads = 1) {
  SystemConfig cfg;
  cfg.num_threads = threads;
  return cfg;
}

TEST(BaselineSystem, CompletesAStream) {
  workload::SyntheticStream stream(workload::profile("gzip"), 1, 20000);
  BaselineSystem sys(small_config(), stream);
  const RunResult r = sys.run();
  EXPECT_EQ(r.system, "baseline");
  EXPECT_EQ(r.instructions, 20000u);
  EXPECT_GT(r.cycles, 0u);
  ASSERT_EQ(r.core_stats.size(), 1u);
  EXPECT_EQ(r.core_stats[0].committed, 20000u);
}

TEST(BaselineSystem, IpcInPlausibleRange) {
  workload::SyntheticStream stream(workload::profile("gzip"), 2, 50000);
  BaselineSystem sys(small_config(), stream);
  const RunResult r = sys.run();
  EXPECT_GT(r.thread_ipc(), 0.3);
  EXPECT_LT(r.thread_ipc(), 4.0);
}

TEST(BaselineSystem, TwoThreadsShareTheL2) {
  workload::SyntheticStream stream(workload::profile("mcf"), 3, 20000);
  BaselineSystem one(small_config(1), stream);
  BaselineSystem two(small_config(2), stream);
  const RunResult r1 = one.run();
  const RunResult r2 = two.run();
  // Contention can only slow a thread down.
  EXPECT_GE(r2.cycles, r1.cycles);
  ASSERT_EQ(r2.core_stats.size(), 2u);
  EXPECT_EQ(r2.core_stats[0].committed, 20000u);
  EXPECT_EQ(r2.core_stats[1].committed, 20000u);
}

TEST(BaselineSystem, DeterministicAcrossRuns) {
  workload::SyntheticStream stream(workload::profile("bzip2"), 4, 20000);
  BaselineSystem a(small_config(), stream);
  BaselineSystem b(small_config(), stream);
  EXPECT_EQ(a.run().cycles, b.run().cycles);
}

TEST(BaselineSystem, MaxCyclesBoundsRun) {
  workload::SyntheticStream stream(workload::profile("gzip"), 5, 1000000);
  BaselineSystem sys(small_config(), stream);
  const RunResult r = sys.run(1000);
  EXPECT_EQ(r.cycles, 1000u);
  EXPECT_LT(r.core_stats[0].committed, 1000000u);
}

TEST(BaselineSystem, MemorySystemExercised) {
  workload::SyntheticStream stream(workload::profile("mcf"), 6, 30000);
  BaselineSystem sys(small_config(), stream);
  sys.run();
  EXPECT_GT(sys.memory().l1(0).misses(), 0u);
  EXPECT_GT(sys.memory().l2().hits() + sys.memory().l2().misses(), 0u);
  EXPECT_GT(sys.memory().bus().transactions(), 0u);
}

TEST(BaselineSystem, CacheFriendlyFasterThanCacheHostile) {
  workload::SyntheticStream friendly(workload::profile("gzip"), 7, 30000);
  workload::SyntheticStream hostile(workload::profile("mcf"), 7, 30000);
  BaselineSystem a(small_config(), friendly);
  BaselineSystem b(small_config(), hostile);
  EXPECT_LT(a.run().cycles, b.run().cycles);
}

TEST(BaselineSystem, HighIlpBeatsLowIlp) {
  // galgel (dep distance 24) extracts more parallelism than mcf (3), even
  // though both are miss-heavy.
  workload::SyntheticStream wide(workload::profile("galgel"), 8, 30000);
  workload::SyntheticStream narrow(workload::profile("mcf"), 8, 30000);
  BaselineSystem a(small_config(), wide);
  BaselineSystem b(small_config(), narrow);
  EXPECT_GT(a.run().thread_ipc(), b.run().thread_ipc());
}

}  // namespace
}  // namespace unsync::core
