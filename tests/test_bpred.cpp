#include "cpu/bpred.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace unsync::cpu {
namespace {

TEST(Gshare, LearnsAlwaysTaken) {
  GsharePredictor p;
  for (int i = 0; i < 100; ++i) p.mispredicted(0x1000, true);
  // After warmup the always-taken branch predicts correctly.
  int wrong = 0;
  for (int i = 0; i < 100; ++i) wrong += p.mispredicted(0x1000, true);
  EXPECT_EQ(wrong, 0);
}

TEST(Gshare, LearnsAlwaysNotTaken) {
  GsharePredictor p;
  for (int i = 0; i < 100; ++i) p.mispredicted(0x2000, false);
  int wrong = 0;
  for (int i = 0; i < 100; ++i) wrong += p.mispredicted(0x2000, false);
  EXPECT_EQ(wrong, 0);
}

TEST(Gshare, LearnsAlternatingPatternViaHistory) {
  GsharePredictor p;
  // T,N,T,N... is perfectly predictable with global history.
  for (int i = 0; i < 400; ++i) p.mispredicted(0x3000, i % 2 == 0);
  int wrong = 0;
  for (int i = 0; i < 200; ++i) wrong += p.mispredicted(0x3000, i % 2 == 0);
  EXPECT_LT(wrong, 5);
}

TEST(Gshare, RandomBranchesNearHalfWrong) {
  GsharePredictor p;
  Rng rng(1);
  int wrong = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) wrong += p.mispredicted(0x4000, rng.chance(0.5));
  EXPECT_NEAR(wrong / static_cast<double>(n), 0.5, 0.05);
}

TEST(Gshare, StatsAccumulate) {
  GsharePredictor p;
  for (int i = 0; i < 10; ++i) p.mispredicted(0x5000, true);
  EXPECT_EQ(p.lookups(), 10u);
  EXPECT_LE(p.wrong(), 10u);
  EXPECT_GE(p.mispredict_rate(), 0.0);
  EXPECT_LE(p.mispredict_rate(), 1.0);
}

TEST(Gshare, DistinctPcsTrackedSeparately) {
  GsharePredictor p(12);
  for (int i = 0; i < 200; ++i) {
    p.mispredicted(0x1000, true);
    p.mispredicted(0x2004, false);
  }
  int wrong = 0;
  for (int i = 0; i < 100; ++i) {
    wrong += p.mispredicted(0x1000, true);
    wrong += p.mispredicted(0x2004, false);
  }
  EXPECT_LT(wrong, 10);
}

TEST(Gshare, PredictIsSideEffectFree) {
  GsharePredictor p;
  const bool before = p.predict(0x6000);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(p.predict(0x6000), before);
  EXPECT_EQ(p.lookups(), 0u);
}

}  // namespace
}  // namespace unsync::cpu
