#include "isa/functional_sim.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace unsync::isa {
namespace {

Program asm_of(const std::string& src) { return Assembler::assemble(src); }

TEST(SparseMemory, ZeroInitialised) {
  SparseMemory m;
  EXPECT_EQ(m.read8(0x1234), 0);
  EXPECT_EQ(m.read64(0xdeadbeef), 0u);
  EXPECT_EQ(m.pages_touched(), 0u);
}

TEST(SparseMemory, ByteRoundTrip) {
  SparseMemory m;
  m.write8(10, 0xab);
  EXPECT_EQ(m.read8(10), 0xab);
  EXPECT_EQ(m.read8(11), 0);
}

TEST(SparseMemory, Word64RoundTripLittleEndian) {
  SparseMemory m;
  m.write64(0x100, 0x1122334455667788ull);
  EXPECT_EQ(m.read64(0x100), 0x1122334455667788ull);
  EXPECT_EQ(m.read8(0x100), 0x88);  // little endian low byte first
  EXPECT_EQ(m.read8(0x107), 0x11);
}

TEST(SparseMemory, UnalignedAccess) {
  SparseMemory m;
  m.write64(0xfff, 0xcafebabe12345678ull);  // straddles a page boundary
  EXPECT_EQ(m.read64(0xfff), 0xcafebabe12345678ull);
}

TEST(SparseMemory, EqualityIgnoresUntouchedZeroPages) {
  SparseMemory a, b;
  a.write8(5, 0);  // touches a page with a zero write
  EXPECT_TRUE(a == b);
  a.write8(5, 1);
  EXPECT_FALSE(a == b);
  b.write8(5, 1);
  EXPECT_TRUE(a == b);
}

TEST(SparseMemory, DeepCopy) {
  SparseMemory a;
  a.write64(0x40, 77);
  SparseMemory b = a;
  b.write64(0x40, 88);
  EXPECT_EQ(a.read64(0x40), 77u);
  EXPECT_EQ(b.read64(0x40), 88u);
}

TEST(FunctionalSim, ArithmeticBasics) {
  FunctionalSim sim(asm_of(R"(
    addi r1, r0, 5
    addi r2, r0, 7
    add  r3, r1, r2
    sub  r4, r1, r2
    mul  r5, r1, r2
    halt
  )"));
  sim.run(100);
  EXPECT_TRUE(sim.halted());
  EXPECT_EQ(sim.state().regs[3], 12u);
  EXPECT_EQ(static_cast<std::int64_t>(sim.state().regs[4]), -2);
  EXPECT_EQ(sim.state().regs[5], 35u);
}

TEST(FunctionalSim, R0AlwaysZero) {
  FunctionalSim sim(asm_of("addi r0, r0, 99\nadd r1, r0, r0\nhalt"));
  sim.run(10);
  EXPECT_EQ(sim.state().regs[0], 0u);
  EXPECT_EQ(sim.state().regs[1], 0u);
}

TEST(FunctionalSim, DivisionSemantics) {
  FunctionalSim sim(asm_of(R"(
    addi r1, r0, -20
    addi r2, r0, 6
    div  r3, r1, r2
    rem  r4, r1, r2
    div  r5, r1, r0
    halt
  )"));
  sim.run(100);
  EXPECT_EQ(static_cast<std::int64_t>(sim.state().regs[3]), -3);
  EXPECT_EQ(static_cast<std::int64_t>(sim.state().regs[4]), -2);
  EXPECT_EQ(sim.state().regs[5], ~std::uint64_t{0});  // div-by-zero
}

TEST(FunctionalSim, ShiftOps) {
  FunctionalSim sim(asm_of(R"(
    addi r1, r0, -8
    slli r2, r1, 2
    srli r3, r1, 60
    addi r4, r0, 4
    sra  r5, r1, r4
    halt
  )"));
  sim.run(100);
  EXPECT_EQ(static_cast<std::int64_t>(sim.state().regs[2]), -32);
  EXPECT_EQ(sim.state().regs[3], 15u);  // logical shift of 0xFFF8...
  EXPECT_EQ(static_cast<std::int64_t>(sim.state().regs[5]), -1);
}

TEST(FunctionalSim, LoadStoreRoundTrip) {
  FunctionalSim sim(asm_of(R"(
    la   r1, 0x200000
    addi r2, r0, 1234
    st   r2, 8(r1)
    ld   r3, 8(r1)
    sb   r2, 100(r1)
    lb   r4, 100(r1)
    halt
  )"));
  sim.run(100);
  EXPECT_EQ(sim.state().regs[3], 1234u);
  EXPECT_EQ(sim.state().regs[4], 1234u & 0xff);
}

TEST(FunctionalSim, DataImageLoadedAndAddressable) {
  FunctionalSim sim(asm_of(R"(
  vals:
    .word 11, 22
    la r1, vals
    ld r2, 0(r1)
    ld r3, 8(r1)
    halt
  )"));
  sim.run(100);
  EXPECT_EQ(sim.state().regs[2], 11u);
  EXPECT_EQ(sim.state().regs[3], 22u);
}

TEST(FunctionalSim, LoopSumsFirstTenIntegers) {
  FunctionalSim sim(asm_of(R"(
    addi r1, r0, 10     # i = 10
    addi r2, r0, 0      # sum = 0
  loop:
    add  r2, r2, r1
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
  )"));
  sim.run(1000);
  EXPECT_TRUE(sim.halted());
  EXPECT_EQ(sim.state().regs[2], 55u);
}

TEST(FunctionalSim, BranchComparisons) {
  FunctionalSim sim(asm_of(R"(
    addi r1, r0, -1
    addi r2, r0, 1
    blt  r1, r2, a
    addi r10, r0, 99   # must be skipped
  a:
    bge  r2, r1, b
    addi r11, r0, 99   # must be skipped
  b:
    beq  r1, r1, c
    addi r12, r0, 99   # must be skipped
  c:
    halt
  )"));
  sim.run(100);
  EXPECT_EQ(sim.state().regs[10], 0u);
  EXPECT_EQ(sim.state().regs[11], 0u);
  EXPECT_EQ(sim.state().regs[12], 0u);
}

TEST(FunctionalSim, JalAndJalrCallReturn) {
  FunctionalSim sim(asm_of(R"(
    jal  r31, func
    addi r2, r0, 1     # executed after return
    halt
  func:
    addi r1, r0, 42
    jalr r30, r31      # return
  )"));
  sim.run(100);
  EXPECT_TRUE(sim.halted());
  EXPECT_EQ(sim.state().regs[1], 42u);
  EXPECT_EQ(sim.state().regs[2], 1u);
}

TEST(FunctionalSim, FloatingPoint) {
  FunctionalSim sim(asm_of(R"(
    addi r1, r0, 3
    addi r2, r0, 4
    fmovi f1, r1
    fmovi f2, r2
    fmul f3, f1, f2       # 12.0
    fadd f4, f3, f1       # 15.0
    fdiv f5, f4, f1       # 5.0
    fcmplt r3, f1, f2     # 3 < 4 -> 1
    fcmplt r4, f2, f1     # -> 0
    halt
  )"));
  sim.run(100);
  EXPECT_EQ(std::bit_cast<double>(sim.state().fregs[3]), 12.0);
  EXPECT_EQ(std::bit_cast<double>(sim.state().fregs[4]), 15.0);
  EXPECT_EQ(std::bit_cast<double>(sim.state().fregs[5]), 5.0);
  EXPECT_EQ(sim.state().regs[3], 1u);
  EXPECT_EQ(sim.state().regs[4], 0u);
}

TEST(FunctionalSim, FpLoadStore) {
  FunctionalSim sim(asm_of(R"(
    addi r1, r0, 9
    fmovi f1, r1
    la   r2, 0x300000
    fst  f1, 0(r2)
    fld  f2, 0(r2)
    fcmplt r3, f2, f1   # equal -> 0
    fcmplt r4, f1, f2   # equal -> 0
    halt
  )"));
  sim.run(100);
  EXPECT_EQ(sim.state().fregs[2], sim.state().fregs[1]);
  EXPECT_EQ(sim.state().regs[3], 0u);
}

TEST(FunctionalSim, SyscallOutputChannel) {
  FunctionalSim sim(asm_of(R"(
    addi r1, r0, 1      # service: emit
    addi r2, r0, 111
    syscall
    addi r2, r0, 222
    syscall
    halt
  )"));
  sim.run(100);
  ASSERT_EQ(sim.output().size(), 2u);
  EXPECT_EQ(sim.output()[0], 111u);
  EXPECT_EQ(sim.output()[1], 222u);
}

TEST(FunctionalSim, UnknownSyscallIsNoop) {
  FunctionalSim sim(asm_of(R"(
    addi r1, r0, 77
    syscall
    halt
  )"));
  sim.run(100);
  EXPECT_TRUE(sim.halted());
  EXPECT_TRUE(sim.output().empty());
}

TEST(FunctionalSim, MembarHasNoArchEffect) {
  FunctionalSim sim(asm_of("addi r1, r0, 1\nmembar\naddi r2, r0, 2\nhalt"));
  sim.run(100);
  EXPECT_EQ(sim.state().regs[1], 1u);
  EXPECT_EQ(sim.state().regs[2], 2u);
}

TEST(FunctionalSim, StepAfterHaltIsIdempotent) {
  FunctionalSim sim(asm_of("halt"));
  sim.run(10);
  const auto before = sim.state();
  const auto r = sim.step();
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(sim.state(), before);
  EXPECT_EQ(sim.retired(), 0u);
}

TEST(FunctionalSim, RetiredCountsExcludeHalt) {
  FunctionalSim sim(asm_of("addi r1, r0, 1\naddi r2, r0, 2\nhalt"));
  sim.run(100);
  EXPECT_EQ(sim.retired(), 2u);
}

TEST(FunctionalSim, RunStopsAtMaxSteps) {
  FunctionalSim sim(asm_of(R"(
  spin:
    beq r0, r0, spin
    halt
  )"));
  const auto n = sim.run(500);
  EXPECT_EQ(n, 500u);
  EXPECT_FALSE(sim.halted());
}

TEST(FunctionalSim, PcOutsideImageFailsSafe) {
  FunctionalSim sim(asm_of("halt"));
  sim.mutable_state().pc = 0xdead0000;
  const auto r = sim.step();
  EXPECT_EQ(r.inst.op, Opcode::kHalt);
  EXPECT_TRUE(sim.halted());
}

TEST(FunctionalSim, StepResultReportsBranchOutcome) {
  FunctionalSim sim(asm_of(R"(
    addi r1, r0, 1
    bne  r1, r0, target
    halt
  target:
    halt
  )"));
  sim.step();
  const auto r = sim.step();
  EXPECT_TRUE(r.taken);
  EXPECT_EQ(r.next_pc, r.pc + 8);
}

TEST(FunctionalSim, StepResultReportsEffectiveAddress) {
  FunctionalSim sim(asm_of(R"(
    la r1, 0x200000
    st r0, 24(r1)
    halt
  )"));
  sim.step();
  sim.step();
  const auto r = sim.step();
  EXPECT_EQ(r.mem_addr, 0x200000u + 24);
}

// A 16-element bubble sort, checked against the expected sorted output via
// the syscall channel — end-to-end golden-model validation.
TEST(FunctionalSim, BubbleSortProgram) {
  FunctionalSim sim(asm_of(R"(
  arr:
    .word 9, 3, 7, 1, 8, 2, 6, 5, 0, 4, 15, 11, 13, 10, 14, 12
    addi r10, r0, 16        # n
  outer:
    addi r11, r0, 0         # i = 0
    addi r12, r0, 0         # swapped = 0
  inner:
    addi r13, r10, -1
    bge  r11, r13, done_in  # i >= n-1
    la   r1, arr
    slli r2, r11, 3
    add  r1, r1, r2
    ld   r3, 0(r1)
    ld   r4, 8(r1)
    bge  r4, r3, noswap
    st   r4, 0(r1)
    st   r3, 8(r1)
    addi r12, r0, 1
  noswap:
    addi r11, r11, 1
    beq  r0, r0, inner
  done_in:
    bne  r12, r0, outer
    # emit sorted array
    addi r11, r0, 0
    addi r1, r0, 1          # syscall service: emit
  emit:
    bge  r11, r10, end
    la   r2, arr
    slli r3, r11, 3
    add  r2, r2, r3
    ld   r2, 0(r2)
    syscall
    addi r11, r11, 1
    beq  r0, r0, emit
  end:
    halt
  )"));
  sim.run(100000);
  ASSERT_TRUE(sim.halted());
  ASSERT_EQ(sim.output().size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(sim.output()[i], i) << "position " << i;
  }
}

}  // namespace
}  // namespace unsync::isa
