// The distributed campaign fabric (runtime/distributed.hpp): sharded
// journals merge into output byte-identical to a serial run for any worker
// split, the steal phase covers a worker that never runs, torn / duplicated
// / bit-flipped shard journal lines never corrupt a merge, and topology or
// campaign mismatches hard-fail instead of silently mixing grids.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/journal.hpp"
#include "ckpt/serializer.hpp"
#include "runtime/campaign.hpp"
#include "runtime/campaign_journal.hpp"
#include "runtime/distributed.hpp"

namespace {

using namespace unsync;
using runtime::CampaignRunner;
using runtime::DistributedOptions;
using runtime::SimJob;

std::vector<SimJob> small_grid() {
  std::vector<SimJob> jobs;
  for (const char* bench : {"gzip", "mcf", "susan"}) {
    for (const auto kind :
         {runtime::SystemKind::kBaseline, runtime::SystemKind::kUnSync}) {
      SimJob job;
      job.label = bench;
      job.profile = bench;
      job.system = kind;
      job.insts = 2500;
      job.ser_per_inst = 2e-5;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

/// Fresh campaign directory per test.
std::string campaign_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + "dist_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_all(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

std::string reference_json(bool collect_metrics) {
  CampaignRunner::Options opts;
  opts.threads = 1;
  opts.collect_metrics = collect_metrics;
  return CampaignRunner(opts).run(small_grid()).to_json();
}

DistributedOptions dist(const std::string& dir, unsigned workers,
                        bool collect_metrics = false) {
  DistributedOptions o;
  o.dir = dir;
  o.workers = workers;
  o.threads = 1;
  o.collect_metrics = collect_metrics;
  o.timeout_seconds = 30;
  o.poll_ms = 10;
  return o;
}

TEST(Distributed, WorkerSplitsMergeByteIdenticalToSerial) {
  const auto jobs = small_grid();
  for (const bool metrics : {false, true}) {
    const std::string want = reference_json(metrics);
    for (const unsigned workers : {1u, 2u, 3u}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " metrics=" + std::to_string(metrics));
      const std::string dir = campaign_dir("split");
      DistributedOptions opts = dist(dir, workers, metrics);
      std::size_t ran = 0;
      for (unsigned w = 0; w < workers; ++w) {
        opts.shard = w;
        opts.steal = false;  // strict sharding: each worker its own jobs
        ran += runtime::run_worker(jobs, opts);
      }
      EXPECT_EQ(ran, jobs.size());
      const auto merged = runtime::merge_shards(jobs, opts);
      EXPECT_EQ(merged.to_json(), want);
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(Distributed, StealPhaseCoversAWorkerThatNeverRan) {
  // Topology says 3 workers but shard 1 never starts; shard 0 and 2 (with
  // stealing on) must cover its jobs, and the merge must still be
  // byte-identical to serial.
  const auto jobs = small_grid();
  const std::string dir = campaign_dir("dead_worker");
  DistributedOptions opts = dist(dir, 3);
  opts.steal = true;
  opts.shard = 0;
  const std::size_t ran0 = runtime::run_worker(jobs, opts);
  opts.shard = 2;
  const std::size_t ran2 = runtime::run_worker(jobs, opts);
  // Worker 0 finished its shard and stole everything pending (including all
  // of shard 1 and shard 2); worker 2 then found nothing left to do beyond
  // what its journal needed.
  EXPECT_GE(ran0 + ran2, jobs.size());
  const auto merged = runtime::merge_shards(jobs, opts);
  EXPECT_EQ(merged.to_json(), reference_json(false));
  std::filesystem::remove_all(dir);
}

TEST(Distributed, DuplicatedWorkIsHarmless) {
  // Run every shard twice (simulating a stalled worker restarting after a
  // sibling already stole its jobs): journals carry duplicate indices, the
  // merge must not care.
  const auto jobs = small_grid();
  const std::string dir = campaign_dir("dup");
  DistributedOptions opts = dist(dir, 2);
  opts.steal = true;
  for (const unsigned shard : {0u, 1u, 0u, 1u}) {
    opts.shard = shard;
    runtime::run_worker(jobs, opts);
  }
  EXPECT_EQ(runtime::merge_shards(jobs, opts).to_json(),
            reference_json(false));
  std::filesystem::remove_all(dir);
}

TEST(Distributed, KilledWorkerResumesFromItsTornJournal) {
  // Simulate kill -9 by truncating shard 0's journal mid-line, then rerun
  // that worker: restored lines survive, the torn one re-runs, the merge is
  // exact.
  const auto jobs = small_grid();
  const std::string dir = campaign_dir("torn");
  DistributedOptions opts = dist(dir, 2);
  opts.steal = false;
  opts.shard = 0;
  runtime::run_worker(jobs, opts);
  const std::string path = runtime::shard_journal_path(dir, 0);
  const std::string full = read_all(path);
  for (const std::size_t keep :
       {full.size() / 3, full.size() / 2, full.size() - 5}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    write_all(path, full.substr(0, keep));
    opts.shard = 0;
    runtime::run_worker(jobs, opts);
    opts.shard = 1;
    runtime::run_worker(jobs, opts);
    EXPECT_EQ(runtime::merge_shards(jobs, opts).to_json(),
              reference_json(false));
  }
  std::filesystem::remove_all(dir);
}

TEST(Distributed, FuzzedShardLinesNeverCorruptTheMerge) {
  // Complete both shards, then hand-mangle shard 1: duplicate a line, tear
  // another, flip a hex digit in a third, append garbage. Every mangled
  // line must be dropped or deduped — shard 0 + a rerun of shard 1 still
  // merge to the exact serial bytes.
  const auto jobs = small_grid();
  const std::string dir = campaign_dir("fuzz");
  DistributedOptions opts = dist(dir, 2);
  opts.steal = false;
  for (const unsigned shard : {0u, 1u}) {
    opts.shard = shard;
    runtime::run_worker(jobs, opts);
  }
  const std::string path = runtime::shard_journal_path(dir, 1);
  std::vector<std::string> lines;
  {
    std::istringstream in(read_all(path));
    for (std::string line; std::getline(in, line);) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 3u);  // header + >= 2 entries

  std::string mangled = lines[0] + "\n";
  mangled += lines[1] + "\n";
  mangled += lines[1] + "\n";  // duplicate
  // Bit-flip inside the hex blob of the second entry.
  std::string flipped = lines[2];
  const auto pos = flipped.rfind("\"blob\":\"");
  ASSERT_NE(pos, std::string::npos);
  flipped[pos + 10] = flipped[pos + 10] == '0' ? '1' : '0';
  mangled += flipped + "\n";
  // Torn tail + trailing garbage.
  mangled += lines[2].substr(0, lines[2].size() / 2);
  mangled += "\nnot json at all\n";
  write_all(path, mangled);

  // The mangled journal is still a valid (partial) shard: rerunning worker
  // 1 restores the good lines and re-runs everything lost.
  opts.shard = 1;
  runtime::run_worker(jobs, opts);
  EXPECT_EQ(runtime::merge_shards(jobs, opts).to_json(),
            reference_json(false));
  std::filesystem::remove_all(dir);
}

TEST(Distributed, CoordinatorTimesOutOnAMissingShard) {
  const auto jobs = small_grid();
  const std::string dir = campaign_dir("timeout");
  DistributedOptions opts = dist(dir, 2);
  opts.steal = false;
  opts.shard = 0;
  runtime::run_worker(jobs, opts);  // shard 1 never runs
  opts.timeout_seconds = 0.2;
  EXPECT_THROW(runtime::merge_shards(jobs, opts), ckpt::CkptError);
  std::filesystem::remove_all(dir);
}

TEST(Distributed, ManifestPinsCampaignAndTopology) {
  const auto jobs = small_grid();
  const std::string dir = campaign_dir("manifest");
  DistributedOptions opts = dist(dir, 2);
  runtime::ensure_manifest(jobs, opts);

  // Different campaign seed: rejected.
  DistributedOptions other = opts;
  other.campaign_seed = 777;
  EXPECT_THROW(runtime::ensure_manifest(jobs, other), ckpt::CkptError);
  EXPECT_THROW(runtime::run_worker(jobs, other), ckpt::CkptError);

  // Different worker count: rejected (journals sharded for another
  // topology don't cover the same index sets).
  DistributedOptions wider = opts;
  wider.workers = 4;
  EXPECT_THROW(runtime::ensure_manifest(jobs, wider), ckpt::CkptError);

  // Different grid: rejected via the grid CRC.
  auto other_jobs = jobs;
  other_jobs[0].insts += 1;
  EXPECT_THROW(runtime::ensure_manifest(other_jobs, opts), ckpt::CkptError);

  // The matching topology still works after all those rejections.
  runtime::ensure_manifest(jobs, opts);
  std::filesystem::remove_all(dir);
}

TEST(Distributed, JournalStatusCountsShardEntries) {
  const auto jobs = small_grid();
  const std::string dir = campaign_dir("status");
  DistributedOptions opts = dist(dir, 2);
  opts.steal = false;
  opts.shard = 0;
  runtime::run_worker(jobs, opts);

  const std::string path = runtime::shard_journal_path(dir, 0);
  const auto status = runtime::journal_status(path);
  EXPECT_EQ(status.header.jobs, jobs.size());
  EXPECT_EQ(status.header.shard, std::uint64_t{0});
  EXPECT_EQ(status.header.workers, std::uint64_t{2});
  EXPECT_EQ(status.done, (jobs.size() + 1) / 2);  // shard 0 owns the evens
  EXPECT_EQ(status.pending(), jobs.size() - status.done);
  EXPECT_EQ(status.duplicates, 0u);
  EXPECT_EQ(status.corrupt, 0u);

  // Append a duplicate of the last entry and a torn line.
  std::string extra;
  {
    std::istringstream in(read_all(path));
    std::string line, last;
    while (std::getline(in, line)) {
      if (!line.empty()) last = line;
    }
    extra = last + "\n" + last.substr(0, last.size() / 2) + "\n";
  }
  std::ofstream(path, std::ios::binary | std::ios::app) << extra;
  const auto after = runtime::journal_status(path);
  EXPECT_EQ(after.done, status.done);
  EXPECT_EQ(after.duplicates, 1u);
  EXPECT_EQ(after.corrupt, 1u);
  std::filesystem::remove_all(dir);
}

TEST(Distributed, MergedMetricsMatchSerialMerge) {
  const auto jobs = small_grid();
  const std::string dir = campaign_dir("metrics");
  DistributedOptions opts = dist(dir, 3, /*collect_metrics=*/true);
  opts.steal = true;
  for (const unsigned shard : {2u, 0u, 1u}) {  // any start order
    opts.shard = shard;
    runtime::run_worker(jobs, opts);
  }
  const auto merged = runtime::merge_shards(jobs, opts);
  CampaignRunner::Options serial;
  serial.threads = 1;
  serial.collect_metrics = true;
  const auto want = CampaignRunner(serial).run(jobs);
  EXPECT_EQ(merged.metrics.to_json(), want.metrics.to_json());
  EXPECT_EQ(merged.metrics.to_csv(), want.metrics.to_csv());
  std::filesystem::remove_all(dir);
}

}  // namespace
