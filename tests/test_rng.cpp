#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace unsync {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng a(0);
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 64; ++i) vals.insert(a.next());
  EXPECT_GT(vals.size(), 60u);  // not stuck
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(4);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInBound) {
  Rng r(5);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng r(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(8);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.below(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng r(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(12);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ExponentialAlwaysNonNegative) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.exponential(3.0), 0.0);
}

TEST(Rng, GeometricMean) {
  Rng r(14);
  // Mean failures before success = (1-p)/p = 4 for p = 0.2.
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.geometric(0.2));
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, GeometricWithCertainSuccess) {
  Rng r(15);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(Rng, PickCumulativeRespectsWeights) {
  Rng r(16);
  const double cum[3] = {0.1, 0.2, 1.0};  // weights 0.1, 0.1, 0.8
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.pick_cumulative(cum, 3)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.8, 0.01);
}

TEST(Rng, PickCumulativeSingleBucket) {
  Rng r(17);
  const double cum[1] = {1.0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.pick_cumulative(cum, 1), 0u);
}

}  // namespace
}  // namespace unsync
