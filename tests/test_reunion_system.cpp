#include "core/reunion_system.hpp"

#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace unsync::core {
namespace {

SystemConfig small_config(unsigned threads = 1) {
  SystemConfig cfg;
  cfg.num_threads = threads;
  return cfg;
}

ReunionParams default_params() { return ReunionParams{}; }

TEST(ReunionSystem, CompletesAStreamOnBothCores) {
  workload::SyntheticStream stream(workload::profile("gzip"), 1, 20000);
  ReunionSystem sys(small_config(), default_params(), stream);
  const RunResult r = sys.run();
  EXPECT_EQ(r.system, "reunion");
  ASSERT_EQ(r.core_stats.size(), 2u);
  EXPECT_EQ(r.core_stats[0].committed, 20000u);
  EXPECT_EQ(r.core_stats[1].committed, 20000u);
}

TEST(ReunionSystem, SlowerThanBaseline) {
  workload::SyntheticStream stream(workload::profile("bzip2"), 2, 30000);
  BaselineSystem base(small_config(), stream);
  ReunionSystem sys(small_config(), default_params(), stream);
  EXPECT_LT(sys.run().thread_ipc(), base.run().thread_ipc());
}

TEST(ReunionSystem, SerializingInstructionsCostSynchronisations) {
  // bzip2 has 2% serializing instructions -> ~600 syncs over 30k insts.
  workload::SyntheticStream stream(workload::profile("bzip2"), 3, 30000);
  ReunionSystem sys(small_config(), default_params(), stream);
  const RunResult r = sys.run();
  EXPECT_GT(r.fingerprint_syncs, 400u);
}

TEST(ReunionSystem, SerializingHeavyWorkloadsHurtMore) {
  // Overhead vs baseline must be larger for bzip2 (2% serializing) than for
  // equake (0.1%) — the Figure 4 ordering.
  auto overhead = [](const std::string& bench) {
    workload::SyntheticStream stream(workload::profile(bench), 4, 30000);
    BaselineSystem base(small_config(), stream);
    ReunionSystem sys(small_config(), ReunionParams{}, stream);
    const double b = base.run().thread_ipc();
    const double r = sys.run().thread_ipc();
    return (b - r) / b;
  };
  EXPECT_GT(overhead("bzip2"), overhead("equake"));
}

TEST(ReunionSystem, LargerFiIncreasesRobPressure) {
  // Figure 5: larger fingerprint intervals + latency degrade performance,
  // most strongly for window-hungry workloads.
  workload::SyntheticStream stream(workload::profile("galgel"), 5, 30000);
  ReunionParams small_fi;
  small_fi.fingerprint_interval = 1;
  small_fi.compare_latency = 10;
  ReunionParams big_fi;
  big_fi.fingerprint_interval = 50;
  big_fi.compare_latency = 60;
  ReunionSystem a(small_config(), small_fi, stream);
  ReunionSystem b(small_config(), big_fi, stream);
  EXPECT_LT(a.run().cycles, b.run().cycles);
}

TEST(ReunionSystem, CompareLatencySweepMonotonic) {
  workload::SyntheticStream stream(workload::profile("ammp"), 6, 20000);
  Cycle prev = 0;
  for (Cycle lat : {10u, 30u, 60u}) {
    ReunionParams p;
    p.fingerprint_interval = 30;
    p.compare_latency = lat;
    ReunionSystem sys(small_config(), p, stream);
    const Cycle c = sys.run().cycles;
    EXPECT_GE(c + c / 50, prev) << lat;  // monotone within 2% noise
    prev = c;
  }
}

TEST(ReunionSystem, ErrorFreeRunHasNoRollbacks) {
  workload::SyntheticStream stream(workload::profile("gzip"), 7, 10000);
  ReunionSystem sys(small_config(), default_params(), stream);
  const RunResult r = sys.run();
  EXPECT_EQ(r.errors_injected, 0u);
  EXPECT_EQ(r.rollbacks, 0u);
}

TEST(ReunionSystem, ErrorsTriggerRollbacksAndStillComplete) {
  workload::SyntheticStream stream(workload::profile("gzip"), 8, 30000);
  SystemConfig cfg = small_config();
  cfg.ser_per_inst = 1e-4;
  ReunionSystem sys(cfg, default_params(), stream);
  const RunResult r = sys.run();
  EXPECT_GT(r.rollbacks, 0u);
  EXPECT_EQ(r.core_stats[0].committed, 30000u);
  EXPECT_EQ(r.core_stats[1].committed, 30000u);
}

TEST(ReunionSystem, RollbacksReexecuteWork) {
  // With rollbacks, a core executes more cycles than error-free.
  workload::SyntheticStream stream(workload::profile("gzip"), 9, 30000);
  SystemConfig cfg = small_config();
  cfg.ser_per_inst = 1e-3;
  ReunionSystem with_errors(cfg, default_params(), stream);
  ReunionSystem clean(small_config(), default_params(), stream);
  EXPECT_GT(with_errors.run().cycles, clean.run().cycles);
}

TEST(ReunionSystem, WriteBackL1Retained) {
  workload::SyntheticStream stream(workload::profile("gzip"), 10, 5000);
  ReunionSystem sys(small_config(), default_params(), stream);
  sys.run();
  EXPECT_EQ(sys.memory().config().l1d.write_policy,
            mem::WritePolicy::kWriteBack);
}

TEST(ReunionSystem, DeterministicAcrossRuns) {
  workload::SyntheticStream stream(workload::profile("ammp"), 11, 15000);
  ReunionSystem a(small_config(), default_params(), stream);
  ReunionSystem b(small_config(), default_params(), stream);
  EXPECT_EQ(a.run().cycles, b.run().cycles);
}

TEST(ReunionSystem, TwoPairsComplete) {
  workload::SyntheticStream stream(workload::profile("gzip"), 12, 10000);
  ReunionSystem sys(small_config(2), default_params(), stream);
  const RunResult r = sys.run();
  ASSERT_EQ(r.core_stats.size(), 4u);
  for (const auto& cs : r.core_stats) EXPECT_EQ(cs.committed, 10000u);
}

}  // namespace
}  // namespace unsync::core
