// The campaign engine's core guarantees: parallel == serial (bit-exact),
// deterministic re-runs, schedule-independent error reporting, and the
// threads=1 fallback matching a hand-rolled serial loop.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "core/baseline.hpp"
#include "core/reunion_system.hpp"
#include "core/unsync_system.hpp"
#include "runtime/campaign.hpp"
#include "runtime/thread_pool.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace unsync {
namespace {

using runtime::CampaignRunner;
using runtime::SimJob;
using runtime::SystemKind;
using runtime::ThreadPool;

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(16);
  pool.parallel_for(ids.size(), [&](std::size_t i) {
    ids[i] = std::this_thread::get_id();
  });
  for (const auto id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ZeroJobsIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, RethrowsLowestFailingIndex) {
  ThreadPool pool(4);
  // Indices 7 and 3 both throw; the pool must surface index 3's exception
  // regardless of which worker hit which index first.
  try {
    pool.parallel_for(16, [&](std::size_t i) {
      if (i == 7 || i == 3) {
        throw std::runtime_error("job " + std::to_string(i));
      }
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 3");
  }
}

TEST(ThreadPool, RemainingIndicesRunAfterAFailure) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(pool.parallel_for(hits.size(),
                                 [&](std::size_t i) {
                                   hits[i].fetch_add(1);
                                   if (i == 0) throw std::logic_error("boom");
                                 }),
               std::logic_error);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// ---------------------------------------------------------------------------
// Seed derivation
// ---------------------------------------------------------------------------

TEST(DeriveSeed, PureAndWellDistributed) {
  // Same inputs, same output.
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
  // Distinct (campaign, index) pairs should not collide in a small grid.
  std::set<std::uint64_t> seen;
  for (std::uint64_t c = 0; c < 8; ++c) {
    for (std::uint64_t i = 0; i < 256; ++i) {
      seen.insert(derive_seed(c, i));
    }
  }
  EXPECT_EQ(seen.size(), 8u * 256u);
}

// ---------------------------------------------------------------------------
// CampaignRunner
// ---------------------------------------------------------------------------

std::vector<SimJob> mixed_grid() {
  // Three architectures x a few benchmarks, small but exercising the error
  // injection/recovery paths (nonzero SER) so parallel-vs-serial compares
  // RNG-dependent state too.
  std::vector<SimJob> jobs;
  const char* profiles[] = {"gzip", "bzip2", "susan"};
  const SystemKind systems[] = {SystemKind::kBaseline, SystemKind::kUnSync,
                                SystemKind::kReunion};
  for (const auto* p : profiles) {
    for (const auto s : systems) {
      SimJob j;
      j.label = p;
      j.profile = p;
      j.system = s;
      j.insts = 3000;
      j.ser_per_inst = 1e-3;  // frequent enough to recover/rollback
      jobs.push_back(j);
    }
  }
  return jobs;
}

void expect_identical(const std::vector<core::RunResult>& a,
                      const std::vector<core::RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(a[i].cycles, b[i].cycles);
    EXPECT_EQ(a[i].instructions, b[i].instructions);
    EXPECT_EQ(a[i].thread_instructions, b[i].thread_instructions);
    EXPECT_EQ(a[i].errors_injected, b[i].errors_injected);
    EXPECT_EQ(a[i].recoveries, b[i].recoveries);
    EXPECT_EQ(a[i].rollbacks, b[i].rollbacks);
    EXPECT_EQ(a[i].cb_full_stalls, b[i].cb_full_stalls);
    EXPECT_EQ(a[i].fingerprint_syncs, b[i].fingerprint_syncs);
  }
}

TEST(CampaignRunner, ParallelMatchesSerialBitExact) {
  const auto jobs = mixed_grid();
  CampaignRunner::Options serial;
  serial.threads = 1;
  serial.campaign_seed = 99;
  CampaignRunner::Options parallel = serial;
  parallel.threads = 4;
  const auto a = CampaignRunner(serial).run(jobs);
  const auto b = CampaignRunner(parallel).run(jobs);
  expect_identical(a.results, b.results);
}

TEST(CampaignRunner, RerunWithSameCampaignSeedIsDeterministic) {
  const auto jobs = mixed_grid();
  CampaignRunner::Options opts;
  opts.threads = 4;
  opts.campaign_seed = 7;
  const auto a = CampaignRunner(opts).run(jobs);
  const auto b = CampaignRunner(opts).run(jobs);
  expect_identical(a.results, b.results);
}

TEST(CampaignRunner, CampaignSeedActuallyChangesUnseededJobs) {
  auto jobs = mixed_grid();
  CampaignRunner::Options a_opts;
  a_opts.threads = 2;
  a_opts.campaign_seed = 1;
  CampaignRunner::Options b_opts = a_opts;
  b_opts.campaign_seed = 2;
  const auto a = CampaignRunner(a_opts).run(jobs);
  const auto b = CampaignRunner(b_opts).run(jobs);
  ASSERT_EQ(a.results.size(), b.results.size());
  bool any_differ = false;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    any_differ = any_differ ||
                 a.results[i].cycles != b.results[i].cycles ||
                 a.results[i].instructions != b.results[i].instructions;
  }
  EXPECT_TRUE(any_differ) << "campaign_seed had no effect on any job";
}

TEST(CampaignRunner, ExplicitJobSeedOverridesDerivation) {
  SimJob j;
  j.profile = "gzip";
  j.system = SystemKind::kBaseline;
  j.insts = 2000;
  j.seed = 1234;
  CampaignRunner::Options a_opts;
  a_opts.threads = 1;
  a_opts.campaign_seed = 5;
  CampaignRunner::Options b_opts;
  b_opts.threads = 1;
  b_opts.campaign_seed = 6;  // different campaign seed, same pinned job seed
  const auto a = CampaignRunner(a_opts).run({j});
  const auto b = CampaignRunner(b_opts).run({j});
  expect_identical(a.results, b.results);
}

TEST(CampaignRunner, SingleThreadMatchesDirectSystemRun) {
  // threads=1 through the runner must equal building the system by hand
  // with the same derived seed.
  SimJob j;
  j.profile = "mcf";
  j.system = SystemKind::kUnSync;
  j.insts = 4000;
  j.ser_per_inst = 5e-4;
  CampaignRunner::Options opts;
  opts.threads = 1;
  opts.campaign_seed = 42;
  const auto out = CampaignRunner(opts).run({j});

  const std::uint64_t seed = derive_seed(42, 0);
  workload::SyntheticStream stream(workload::profile("mcf"), seed, 4000);
  core::SystemConfig cfg;
  cfg.num_threads = 1;
  cfg.ser_per_inst = 5e-4;
  cfg.seed = seed;
  core::UnSyncSystem sys(cfg, core::UnSyncParams{}, stream);
  const auto direct = sys.run();

  ASSERT_EQ(out.results.size(), 1u);
  EXPECT_EQ(out.results[0].cycles, direct.cycles);
  EXPECT_EQ(out.results[0].instructions, direct.instructions);
  EXPECT_EQ(out.results[0].errors_injected, direct.errors_injected);
  EXPECT_EQ(out.results[0].recoveries, direct.recoveries);
}

TEST(CampaignRunner, BadJobThrowsLowestIndexAcrossThreadCounts) {
  // Job 2 names a profile that doesn't exist (out_of_range from the
  // profile registry); job 5 has neither profile nor trace
  // (invalid_argument from the runner). Both serial and parallel runs
  // must surface job 2's error — the lowest failing index.
  auto jobs = mixed_grid();
  jobs[2].profile = "no-such-benchmark";
  jobs[5].profile.clear();
  jobs[5].trace.reset();
  for (const unsigned threads : {1u, 4u}) {
    CampaignRunner::Options opts;
    opts.threads = threads;
    bool threw = false;
    try {
      CampaignRunner(opts).run(jobs);
    } catch (const std::out_of_range& e) {
      threw = true;
      EXPECT_NE(std::string(e.what()).find("no-such-benchmark"),
                std::string::npos)
          << "threads=" << threads << " surfaced: " << e.what();
    }
    EXPECT_TRUE(threw) << "threads=" << threads;
  }
}

TEST(CampaignRunner, EmptyGrid) {
  CampaignRunner::Options opts;
  opts.threads = 4;
  const auto out = CampaignRunner(opts).run({});
  EXPECT_TRUE(out.results.empty());
  EXPECT_EQ(out.total_instructions(), 0u);
}

TEST(CampaignRunner, TotalInstructionsSumsTheGrid) {
  const auto jobs = mixed_grid();
  CampaignRunner::Options opts;
  opts.threads = 2;
  const auto out = CampaignRunner(opts).run(jobs);
  std::uint64_t sum = 0;
  for (const auto& r : out.results) sum += r.instructions;
  EXPECT_EQ(out.total_instructions(), sum);
  EXPECT_GT(sum, 0u);
}

TEST(CampaignRunner, SharedTraceJobsRunAllSystems) {
  // One recorded op vector shared (not copied) across jobs for every
  // architecture — the kernel_campaign shape.
  workload::SyntheticStream stream(workload::profile("qsort"), 11, 1500);
  auto ops = std::make_shared<std::vector<workload::DynOp>>();
  workload::DynOp op;
  while (stream.next(&op)) ops->push_back(op);
  const std::shared_ptr<const std::vector<workload::DynOp>> shared = ops;

  std::vector<SimJob> jobs;
  for (const auto s :
       {SystemKind::kBaseline, SystemKind::kUnSync, SystemKind::kReunion,
        SystemKind::kLockstep, SystemKind::kCheckpoint}) {
    SimJob j;
    j.label = "qsort-trace";
    j.trace = shared;
    j.system = s;
    jobs.push_back(j);
  }
  CampaignRunner::Options opts;
  opts.threads = 4;
  const auto par = CampaignRunner(opts).run(jobs);
  opts.threads = 1;
  const auto ser = CampaignRunner(opts).run(jobs);
  expect_identical(ser.results, par.results);
  for (const auto& r : ser.results) {
    EXPECT_EQ(r.instructions, shared->size());
  }
}

// ---------------------------------------------------------------------------
// Observability surface (progress callbacks, metric reduction, JSON)
// ---------------------------------------------------------------------------

TEST(CampaignRunner, ProgressReportsEveryJobExactlyOnce) {
  const auto jobs = mixed_grid();
  for (const unsigned threads : {1u, 4u}) {
    CampaignRunner::Options opts;
    opts.threads = threads;
    std::vector<std::size_t> seen;  // callback is serialised by the runner
    std::size_t reported_total = 0;
    opts.progress = [&](std::size_t completed, std::size_t total) {
      seen.push_back(completed);
      reported_total = total;
    };
    CampaignRunner(opts).run(jobs);
    ASSERT_EQ(seen.size(), jobs.size()) << "threads=" << threads;
    EXPECT_EQ(reported_total, jobs.size());
    // Completion counts are monotone 1..N regardless of finish order.
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i], i + 1) << "threads=" << threads;
    }
  }
}

TEST(CampaignRunner, MergedMetricsAreWorkerCountIndependent) {
  const auto jobs = mixed_grid();
  CampaignRunner::Options opts;
  opts.campaign_seed = 3;
  opts.collect_metrics = true;
  opts.threads = 1;
  const auto serial = CampaignRunner(opts).run(jobs);
  opts.threads = 4;
  const auto parallel = CampaignRunner(opts).run(jobs);
  ASSERT_FALSE(serial.metrics.empty());
  EXPECT_EQ(serial.metrics.to_json(), parallel.metrics.to_json());
  EXPECT_EQ(serial.metrics.to_csv(), parallel.metrics.to_csv());
}

TEST(CampaignRunner, MetricsOffByDefault) {
  CampaignRunner::Options opts;
  opts.threads = 1;
  const auto out = CampaignRunner(opts).run(mixed_grid());
  EXPECT_TRUE(out.metrics.empty());
}

TEST(CampaignRunner, JsonIsByteIdenticalAcrossThreadCounts) {
  // The headline determinism contract of the machine-readable surface:
  // identical bytes from `campaign ... format=json` however the host
  // parallelised the grid (wall-clock is excluded by default).
  const auto jobs = mixed_grid();
  CampaignRunner::Options opts;
  opts.campaign_seed = 17;
  opts.collect_metrics = true;
  opts.threads = 1;
  const auto serial = CampaignRunner(opts).run(jobs);
  opts.threads = 4;
  const auto parallel = CampaignRunner(opts).run(jobs);
  EXPECT_EQ(serial.to_json(), parallel.to_json());
  EXPECT_EQ(serial.to_json(2), parallel.to_json(2));
  // The timing variant is allowed to differ — but only in wall_seconds.
  EXPECT_NE(serial.to_json(0, true), serial.to_json(0, false));
}

TEST(CampaignRunner, OutputRecordsSeedsAndLabels) {
  const auto jobs = mixed_grid();
  CampaignRunner::Options opts;
  opts.threads = 2;
  opts.campaign_seed = 5;
  const auto out = CampaignRunner(opts).run(jobs);
  ASSERT_EQ(out.labels.size(), jobs.size());
  ASSERT_EQ(out.seeds.size(), jobs.size());
  ASSERT_EQ(out.job_wall_seconds.size(), jobs.size());
  EXPECT_EQ(out.campaign_seed, 5u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(out.labels[i], jobs[i].label);
    EXPECT_EQ(out.seeds[i], derive_seed(5, i));
  }
}

TEST(SystemKindNames, RoundTrip) {
  for (const auto s :
       {SystemKind::kBaseline, SystemKind::kUnSync, SystemKind::kReunion,
        SystemKind::kLockstep, SystemKind::kCheckpoint}) {
    const auto parsed = runtime::parse_system(runtime::name_of(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(runtime::parse_system("notasystem").has_value());
}

}  // namespace
}  // namespace unsync
