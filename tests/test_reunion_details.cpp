// Reunion mechanism detail tests: the CSB capacity override, the
// effective-FI window clamp, rollback interaction with serializing
// synchronisation, and watermark behaviour.
#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/reunion_system.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace unsync::core {
namespace {

using workload::DynOp;
using workload::TraceStream;

SystemConfig cfg1(double ser = 0.0) {
  SystemConfig cfg;
  cfg.num_threads = 1;
  cfg.ser_per_inst = ser;
  return cfg;
}

TEST(ReunionDetails, EffectiveCsbDefaultsToFiPlusLatencyPlusOne) {
  ReunionParams p;
  p.fingerprint_interval = 10;
  p.compare_latency = 6;
  EXPECT_EQ(p.effective_csb_entries(), 17u);  // the paper's 17 at FI=10/L=6
  p.compare_latency = 10;
  EXPECT_EQ(p.effective_csb_entries(), 21u);
  p.csb_entries = 40;  // explicit override wins
  EXPECT_EQ(p.effective_csb_entries(), 40u);
  // An override below one interval would deadlock the protocol; it is
  // clamped to FI + 1.
  p.csb_entries = 4;
  EXPECT_EQ(p.effective_csb_entries(), 11u);
}

TEST(ReunionDetails, UndersizedCsbStallsCommit) {
  // A CSB smaller than the verification window (but still >= one interval,
  // the deadlock-freedom clamp) throttles commit: the pipeline stops at
  // every interval boundary until the comparison returns.
  workload::SyntheticStream s(workload::profile("gzip"), 1, 15000);
  ReunionParams roomy;
  roomy.fingerprint_interval = 10;
  roomy.compare_latency = 30;  // provisioned CSB would be 41
  ReunionParams cramped = roomy;
  cramped.csb_entries = 11;  // one interval only
  ReunionSystem a(cfg1(), roomy, s);
  ReunionSystem b(cfg1(), cramped, s);
  const Cycle fast = a.run().cycles;
  const Cycle slow = b.run().cycles;
  EXPECT_GT(slow, fast + fast / 4);  // >= 25% slower
}

TEST(ReunionDetails, GiantFiClampedToWindow) {
  // FI far beyond the ROB must behave like the clamped interval, not wedge
  // (the clamp is rob_entries - commit_width).
  workload::SyntheticStream s(workload::profile("gzip"), 2, 10000);
  ReunionParams giant;
  giant.fingerprint_interval = 100000;
  ReunionParams clamped;
  clamped.fingerprint_interval = 76;  // 80 - 4 with Table I defaults
  ReunionSystem a(cfg1(), giant, s);
  ReunionSystem b(cfg1(), clamped, s);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.core_stats[0].committed, 10000u);
  EXPECT_EQ(ra.cycles, rb.cycles);  // identical effective configuration
}

TEST(ReunionDetails, RollbackDuringSerializingSyncIsClean) {
  // Error arrivals landing around serializing instructions: the serialize
  // queue and fingerprints are rebuilt after rollback; everything still
  // commits exactly once per core.
  workload::SyntheticStream s(workload::profile("bzip2"), 3, 20000);
  ReunionSystem sys(cfg1(5e-4), ReunionParams{}, s);
  const RunResult r = sys.run();
  EXPECT_GT(r.rollbacks, 3u);
  EXPECT_EQ(r.core_stats[0].committed, 20000u);
  EXPECT_EQ(r.core_stats[1].committed, 20000u);
}

TEST(ReunionDetails, RollbackCostGrowsWithFi) {
  // Larger FI -> verified watermark trails farther behind -> each rollback
  // re-executes more. Compare total cycles at the same error schedule.
  workload::SyntheticStream s(workload::profile("gzip"), 4, 30000);
  ReunionParams small_fi;
  small_fi.fingerprint_interval = 5;
  ReunionParams big_fi;
  big_fi.fingerprint_interval = 60;
  big_fi.compare_latency = 10;
  ReunionSystem a(cfg1(1e-3), small_fi, s);
  ReunionSystem b(cfg1(1e-3), big_fi, s);
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_GT(ra.rollbacks, 10u);
  // Same arrival schedule (same seed) -> same rollback count.
  EXPECT_EQ(ra.rollbacks, rb.rollbacks);
  EXPECT_GT(rb.cycles, ra.cycles);
}

TEST(ReunionDetails, SerializingOnlyStreamTerminates) {
  std::vector<DynOp> ops;
  for (SeqNum i = 0; i < 40; ++i) {
    DynOp op;
    op.seq = i;
    op.cls = isa::InstClass::kSerializing;
    op.pc = 0x1000 + i * 4;
    ops.push_back(op);
  }
  TraceStream t(std::move(ops));
  ReunionSystem sys(cfg1(), ReunionParams{}, t);
  const RunResult r = sys.run(1000000);
  EXPECT_EQ(r.core_stats[0].committed, 40u);
  EXPECT_EQ(r.fingerprint_syncs, 40u);
}

TEST(ReunionDetails, CompareLatencyZeroStillSynchronises) {
  workload::SyntheticStream s(workload::profile("bzip2"), 5, 10000);
  ReunionParams p;
  p.compare_latency = 0;
  ReunionSystem sys(cfg1(), p, s);
  const RunResult r = sys.run();
  EXPECT_EQ(r.core_stats[0].committed, 10000u);
  EXPECT_GT(r.fingerprint_syncs, 100u);  // bzip2: ~2% serializing
}

}  // namespace
}  // namespace unsync::core
