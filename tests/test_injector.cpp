#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace unsync::fault {
namespace {

// A program with enough register, fp and memory activity to give every
// fault site a target, and an architecturally visible result (output).
isa::Program workload_program() {
  return isa::Assembler::assemble(R"(
  buf:
    .space 256
    addi r10, r0, 30        # iterations
    addi r2, r0, 1
    la   r20, buf
  loop:
    add  r2, r2, r10        # running value
    mul  r3, r2, r2
    st   r3, 0(r20)
    ld   r4, 0(r20)
    fmovi f1, r4
    fadd f2, f2, f1
    fst  f2, 8(r20)
    addi r20, r20, 8
    addi r10, r10, -1
    bne  r10, r0, loop
    addi r1, r0, 1          # emit result
    syscall
    halt
  )");
}

TEST(Injector, GoldenRunHasNoSdcWithoutFaults) {
  InjectionConfig cfg;
  cfg.trials = 0;
  const auto result = run_campaign(workload_program(), unsync_plan(), cfg);
  EXPECT_EQ(result.total(), 0u);
}

TEST(Injector, UnsyncPlanAlwaysRecoversOrMasks) {
  InjectionConfig cfg;
  cfg.trials = 150;
  cfg.seed = 7;
  const auto result = run_campaign(workload_program(), unsync_plan(), cfg);
  EXPECT_EQ(result.total(), 150u);
  // Full coverage + write-through: no silent corruption, nothing
  // unrecoverable, and every attempted recovery restored golden state.
  EXPECT_EQ(result.sdc, 0u);
  EXPECT_EQ(result.unrecoverable, 0u);
  EXPECT_EQ(result.recovery_failures, 0u);
  EXPECT_GT(result.recovered, 0u);
}

TEST(Injector, BaselinePlanProducesSdc) {
  InjectionConfig cfg;
  cfg.trials = 200;
  cfg.seed = 11;
  const auto result = run_campaign(workload_program(), baseline_plan(), cfg);
  // Nothing is detected, so outcomes are only masked or SDC — and with
  // register-file strikes on live values, SDC must appear.
  EXPECT_EQ(result.recovered, 0u);
  EXPECT_EQ(result.unrecoverable, 0u);
  EXPECT_GT(result.sdc, 0u);
  EXPECT_GT(result.masked, 0u);
}

TEST(Injector, WritebackDirtyLinesAreUnrecoverable) {
  // The Figure-2 argument: same plan, same faults, but a write-back L1
  // turns detected memory-data faults into unrecoverable ones.
  InjectionConfig cfg;
  cfg.trials = 300;
  cfg.seed = 13;
  cfg.sites = {FaultSite::kMemoryData};
  cfg.l1_write_through = false;
  const auto wb = run_campaign(workload_program(), unsync_plan(), cfg);
  EXPECT_GT(wb.unrecoverable, 0u);
  EXPECT_EQ(wb.recovered, 0u);

  cfg.l1_write_through = true;
  const auto wt = run_campaign(workload_program(), unsync_plan(), cfg);
  EXPECT_EQ(wt.unrecoverable, 0u);
  EXPECT_GT(wt.recovered, 0u);
  EXPECT_EQ(wt.recovery_failures, 0u);
}

TEST(Injector, ReunionPlanMissesArchStateFaults) {
  // Register-file strikes are outside Reunion's ROEC: they are never
  // detected, so some become silent corruption.
  InjectionConfig cfg;
  cfg.trials = 200;
  cfg.seed = 17;
  cfg.sites = {FaultSite::kRegisterFile};
  const auto reunion = run_campaign(workload_program(), reunion_plan(), cfg);
  EXPECT_EQ(reunion.recovered, 0u);
  EXPECT_GT(reunion.sdc, 0u);

  const auto unsync = run_campaign(workload_program(), unsync_plan(), cfg);
  EXPECT_EQ(unsync.sdc, 0u);
}

TEST(Injector, PcFaultsCaughtByDmr) {
  InjectionConfig cfg;
  cfg.trials = 100;
  cfg.seed = 19;
  cfg.sites = {FaultSite::kProgramCounter};
  const auto result = run_campaign(workload_program(), unsync_plan(), cfg);
  EXPECT_EQ(result.sdc, 0u);
  EXPECT_EQ(result.recovery_failures, 0u);
  EXPECT_EQ(result.recovered, 100u);  // DMR coverage is 1.0
}

TEST(Injector, TrialRecordsComplete) {
  InjectionConfig cfg;
  cfg.trials = 50;
  cfg.seed = 23;
  const auto result = run_campaign(workload_program(), unsync_plan(), cfg);
  EXPECT_EQ(result.trials.size(), 50u);
  for (const auto& t : result.trials) {
    EXPECT_LT(t.injected_at, 1000u);  // within the (short) golden run
  }
}

TEST(Injector, DeterministicForSameSeed) {
  InjectionConfig cfg;
  cfg.trials = 60;
  cfg.seed = 29;
  const auto a = run_campaign(workload_program(), unsync_plan(), cfg);
  const auto b = run_campaign(workload_program(), unsync_plan(), cfg);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.sdc, b.sdc);
}

TEST(Injector, SdcRateHelper) {
  CampaignResult r;
  r.masked = 3;
  r.sdc = 1;
  EXPECT_DOUBLE_EQ(r.sdc_rate(), 0.25);
  EXPECT_DOUBLE_EQ(CampaignResult{}.sdc_rate(), 0.0);
}

TEST(Injector, OutcomeNames) {
  EXPECT_STREQ(name_of(Outcome::kMasked), "masked");
  EXPECT_STREQ(name_of(Outcome::kSilentCorruption), "silent_corruption");
  EXPECT_STREQ(name_of(FaultSite::kMemoryData), "memory_data");
}

}  // namespace
}  // namespace unsync::fault
