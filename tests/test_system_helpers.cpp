// Tests for the shared system plumbing in core/system.hpp: thread-stream
// replication, multi-stream pre-warming, and the RunResult helpers.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace unsync::core {
namespace {

TEST(SystemHelpers, ReplicateFansOutOnePointer) {
  workload::SyntheticStream s(workload::profile("gzip"), 1, 100);
  const auto v = detail::replicate(s, 3);
  ASSERT_EQ(v.size(), 3u);
  for (const auto* p : v) EXPECT_EQ(p, &s);
}

TEST(SystemHelpers, LengthsAndMax) {
  workload::SyntheticStream a(workload::profile("gzip"), 1, 100);
  workload::SyntheticStream b(workload::profile("mcf"), 1, 250);
  const auto lengths = detail::lengths_of({&a, &b});
  ASSERT_EQ(lengths.size(), 2u);
  EXPECT_EQ(lengths[0], 100u);
  EXPECT_EQ(lengths[1], 250u);
  EXPECT_EQ(detail::max_length(lengths), 250u);
  EXPECT_EQ(detail::max_length({}), 0u);
}

TEST(SystemHelpers, PrewarmDeduplicatesStreams) {
  // The same stream listed twice warms its regions once; two distinct
  // streams warm both regions. Verified through L2 line counts.
  workload::SyntheticStream a(workload::profile("gzip"), 1, 100);
  workload::SyntheticStream b(workload::profile("mcf"), 9, 100);

  mem::MemoryHierarchy dup(mem::MemConfig{}, 2);
  detail::prewarm_from(dup, {&a, &a});
  mem::MemoryHierarchy two(mem::MemConfig{}, 2);
  detail::prewarm_from(two, {&a, &b});
  // Distinct (profile, seed) pairs live in distinct address slots, so two
  // streams install roughly twice the data-warm lines.
  EXPECT_GT(two.l2().lines_valid(), dup.l2().lines_valid() * 3 / 2);
}

TEST(SystemHelpers, ThreadIpcUsesLongestThread) {
  RunResult r;
  r.cycles = 1000;
  r.instructions = 2000;
  EXPECT_DOUBLE_EQ(r.thread_ipc(), 2.0);
  r.cycles = 0;
  EXPECT_DOUBLE_EQ(r.thread_ipc(), 0.0);
}

TEST(SystemHelpers, ErrorEventDefaults) {
  const ErrorEvent e{};
  EXPECT_EQ(e.cycle, 0u);
  EXPECT_FALSE(e.rollback);
}

}  // namespace
}  // namespace unsync::core
