#include "mem/cache.hpp"

#include <gtest/gtest.h>

namespace unsync::mem {
namespace {

CacheConfig small_cache(WritePolicy policy = WritePolicy::kWriteBack) {
  // 4 sets x 2 ways x 64B lines = 512 B.
  return {.size_bytes = 512, .line_bytes = 64, .assoc = 2, .hit_latency = 2,
          .mshrs = 4, .write_policy = policy};
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access_read(0x100).hit);
  EXPECT_TRUE(c.access_read(0x100).hit);
  EXPECT_TRUE(c.access_read(0x13f).hit);   // same line
  EXPECT_FALSE(c.access_read(0x140).hit);  // next line
}

TEST(Cache, ContainsIsSideEffectFree) {
  Cache c(small_cache());
  EXPECT_FALSE(c.contains(0x100));
  c.access_read(0x100);
  EXPECT_TRUE(c.contains(0x100));
  EXPECT_EQ(c.hits() + c.misses(), 1u);  // contains didn't count
}

TEST(Cache, LruEviction) {
  Cache c(small_cache());
  // Three lines mapping to the same set (set stride = 4 sets * 64 B = 256).
  c.access_read(0x000);
  c.access_read(0x100);
  c.access_read(0x000);            // touch: 0x100 becomes LRU
  c.access_read(0x200);            // evicts 0x100
  EXPECT_TRUE(c.contains(0x000));
  EXPECT_FALSE(c.contains(0x100));
  EXPECT_TRUE(c.contains(0x200));
}

TEST(Cache, WriteBackDirtyVictimReported) {
  Cache c(small_cache(WritePolicy::kWriteBack));
  c.access_write(0x000);  // allocate + dirty
  c.access_read(0x100);
  const auto r = c.access_read(0x200);  // evicts dirty 0x000
  ASSERT_TRUE(r.dirty_victim.has_value());
  EXPECT_EQ(*r.dirty_victim, 0x000u);
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanVictimNotReported) {
  Cache c(small_cache());
  c.access_read(0x000);
  c.access_read(0x100);
  const auto r = c.access_read(0x200);
  EXPECT_FALSE(r.dirty_victim.has_value());
}

TEST(Cache, WriteThroughNeverDirties) {
  Cache c(small_cache(WritePolicy::kWriteThrough));
  c.access_read(0x000);   // bring the line in
  c.access_write(0x000);  // hit, but stays clean
  EXPECT_TRUE(c.contains(0x000));
  EXPECT_FALSE(c.line_dirty(0x000));
  EXPECT_EQ(c.lines_dirty(), 0u);
}

TEST(Cache, WriteThroughMissDoesNotAllocate) {
  Cache c(small_cache(WritePolicy::kWriteThrough));
  EXPECT_FALSE(c.access_write(0x300).hit);
  EXPECT_FALSE(c.contains(0x300));  // no-write-allocate
}

TEST(Cache, WriteBackMissAllocates) {
  Cache c(small_cache(WritePolicy::kWriteBack));
  EXPECT_FALSE(c.access_write(0x300).hit);
  EXPECT_TRUE(c.contains(0x300));
  EXPECT_TRUE(c.line_dirty(0x300));
}

TEST(Cache, InvalidateSingleLine) {
  Cache c(small_cache());
  c.access_read(0x100);
  EXPECT_TRUE(c.invalidate(0x100));
  EXPECT_FALSE(c.contains(0x100));
  EXPECT_FALSE(c.invalidate(0x100));  // already gone
}

TEST(Cache, InvalidateAllClearsEverything) {
  Cache c(small_cache());
  c.access_write(0x000);
  c.access_read(0x040);
  c.access_read(0x080);
  EXPECT_GT(c.lines_valid(), 0u);
  c.invalidate_all();
  EXPECT_EQ(c.lines_valid(), 0u);
  EXPECT_EQ(c.lines_dirty(), 0u);
}

TEST(Cache, MissRateAccounting) {
  Cache c(small_cache());
  c.access_read(0x000);  // miss
  c.access_read(0x000);  // hit
  c.access_read(0x000);  // hit
  c.access_read(0x040);  // miss
  EXPECT_DOUBLE_EQ(c.miss_rate(), 0.5);
}

TEST(Cache, LineAddrMasksOffset) {
  Cache c(small_cache());
  EXPECT_EQ(c.line_addr(0x1234), 0x1200u);
  EXPECT_EQ(c.line_addr(0x1240), 0x1240u);
}

TEST(Mshr, SecondaryMissMerges) {
  MshrFile m(2);
  m.allocate(0x100, 0, 50);
  const auto inflight = m.in_flight(0x100, 10);
  ASSERT_TRUE(inflight.has_value());
  EXPECT_EQ(*inflight, 50u);
  EXPECT_FALSE(m.in_flight(0x200, 10).has_value());
}

TEST(Mshr, EntriesExpire) {
  MshrFile m(2);
  m.allocate(0x100, 0, 50);
  EXPECT_FALSE(m.in_flight(0x100, 50).has_value());
  EXPECT_EQ(m.occupancy(50), 0u);
}

TEST(Mshr, FirstFreeBlocksWhenFull) {
  MshrFile m(2);
  m.allocate(0x100, 0, 50);
  m.allocate(0x200, 0, 70);
  EXPECT_EQ(m.first_free(10), 50u);  // earliest completion
  EXPECT_EQ(m.first_free(60), 60u);  // one expired already
}

TEST(Mshr, StallAccounting) {
  MshrFile m(1);
  m.add_stall(40);
  m.add_stall(2);
  EXPECT_EQ(m.stall_cycles(), 42u);
}

// Property sweep: with a cache of N lines, touching exactly N distinct lines
// then re-touching them all yields zero additional misses (LRU retains the
// working set when it fits).
class CacheWorkingSet : public ::testing::TestWithParam<int> {};

TEST_P(CacheWorkingSet, FittingWorkingSetFullyRetained) {
  const int lines = GetParam();
  const std::uint32_t size = static_cast<std::uint32_t>(lines) * 64;
  Cache c({.size_bytes = size, .line_bytes = 64, .assoc = 2, .hit_latency = 2,
           .mshrs = 4, .write_policy = WritePolicy::kWriteBack});
  for (int i = 0; i < lines; ++i) c.access_read(static_cast<Addr>(i) * 64);
  const auto misses_before = c.misses();
  for (int i = 0; i < lines; ++i) c.access_read(static_cast<Addr>(i) * 64);
  EXPECT_EQ(c.misses(), misses_before);
  EXPECT_EQ(c.lines_valid(), static_cast<std::uint64_t>(lines));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheWorkingSet,
                         ::testing::Values(8, 16, 64, 256));

// Property: a dirty victim's reconstructed address maps back to the same
// set it was evicted from.
TEST(Cache, VictimAddressReconstruction) {
  Cache c(small_cache(WritePolicy::kWriteBack));
  c.access_write(0x1000);
  c.access_write(0x1100);
  const auto r = c.access_write(0x1200);  // same set as the others
  ASSERT_TRUE(r.dirty_victim.has_value());
  EXPECT_EQ(c.line_addr(*r.dirty_victim) % (4 * 64), 0x1000u % (4 * 64));
}

}  // namespace
}  // namespace unsync::mem
