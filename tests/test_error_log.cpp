// Tests for the per-event soft-error log and interval IPC sampling.
#include <gtest/gtest.h>

#include "core/baseline.hpp"

#include "core/related_work.hpp"
#include "core/report.hpp"
#include "core/reunion_system.hpp"
#include "core/unsync_system.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace unsync::core {
namespace {

SystemConfig cfg1(double ser) {
  SystemConfig cfg;
  cfg.num_threads = 1;
  cfg.ser_per_inst = ser;
  return cfg;
}

TEST(ErrorLog, UnsyncLogsForwardRecoveries) {
  workload::SyntheticStream s(workload::profile("gzip"), 1, 25000);
  UnSyncParams p;
  p.cb_entries = 256;
  UnSyncSystem sys(cfg1(2e-4), p, s);
  const RunResult r = sys.run();
  ASSERT_GT(r.errors_injected, 0u);
  ASSERT_EQ(r.error_log.size(), r.errors_injected);
  Cycle prev = 0;
  for (const auto& e : r.error_log) {
    EXPECT_FALSE(e.rollback);
    EXPECT_GT(e.cost, 0u);
    EXPECT_LT(e.struck_core, 2u);
    EXPECT_EQ(e.thread, 0u);
    EXPECT_GE(e.cycle, prev);  // chronological
    prev = e.cycle;
    EXPECT_LT(e.position, 25000u);
  }
  // Logged costs must sum to the aggregate counter.
  Cycle total = 0;
  for (const auto& e : r.error_log) total += e.cost;
  EXPECT_EQ(total, r.recovery_cycles_total);
}

TEST(ErrorLog, ReunionLogsRollbacks) {
  workload::SyntheticStream s(workload::profile("gzip"), 2, 25000);
  ReunionSystem sys(cfg1(2e-4), ReunionParams{}, s);
  const RunResult r = sys.run();
  ASSERT_EQ(r.error_log.size(), r.rollbacks);
  for (const auto& e : r.error_log) EXPECT_TRUE(e.rollback);
}

TEST(ErrorLog, RelatedWorkSystemsLogToo) {
  workload::SyntheticStream s(workload::profile("gzip"), 3, 20000);
  LockstepSystem lock(cfg1(2e-4), LockstepParams{}, s);
  const auto rl = lock.run();
  EXPECT_EQ(rl.error_log.size(), rl.recoveries);
  DmrCheckpointSystem check(cfg1(2e-4), CheckpointParams{}, s);
  const auto rc = check.run();
  EXPECT_EQ(rc.error_log.size(), rc.rollbacks);
  for (const auto& e : rc.error_log) EXPECT_TRUE(e.rollback);
}

TEST(ErrorLog, EmptyWhenErrorFree) {
  workload::SyntheticStream s(workload::profile("gzip"), 4, 5000);
  UnSyncParams p;
  p.cb_entries = 128;
  UnSyncSystem sys(cfg1(0.0), p, s);
  EXPECT_TRUE(sys.run().error_log.empty());
}

TEST(ErrorLog, ReportRendersEvents) {
  workload::SyntheticStream s(workload::profile("gzip"), 5, 25000);
  UnSyncParams p;
  p.cb_entries = 256;
  UnSyncSystem sys(cfg1(2e-4), p, s);
  const RunResult r = sys.run();
  ASSERT_FALSE(r.error_log.empty());
  const std::string text = RunReport(r).str();
  EXPECT_NE(text.find("Soft-error events"), std::string::npos);
  EXPECT_NE(text.find("forward recovery"), std::string::npos);
}

TEST(IntervalSampling, DisabledByDefault) {
  workload::SyntheticStream s(workload::profile("gzip"), 6, 5000);
  BaselineSystem sys(cfg1(0.0), s);
  EXPECT_TRUE(sys.run().core_stats[0].interval_committed.empty());
}

TEST(IntervalSampling, SamplesMonotoneCommitCounts) {
  workload::SyntheticStream s(workload::profile("gzip"), 7, 20000);
  SystemConfig cfg = cfg1(0.0);
  cfg.core.sample_interval = 1000;
  BaselineSystem sys(cfg, s);
  const RunResult r = sys.run();
  const auto& samples = r.core_stats[0].interval_committed;
  ASSERT_GT(samples.size(), 5u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i], samples[i - 1]);
  }
  EXPECT_LE(samples.back(), 20000u);
  // Roughly one sample per 1000 cycles.
  EXPECT_NEAR(static_cast<double>(samples.size()),
              static_cast<double>(r.cycles) / 1000.0, 2.0);
}

TEST(IntervalSampling, SparklineRendered) {
  workload::SyntheticStream s(workload::profile("gzip"), 8, 20000);
  SystemConfig cfg = cfg1(0.0);
  cfg.core.sample_interval = 1000;
  BaselineSystem sys(cfg, s);
  const RunResult r = sys.run();
  const std::string text = RunReport(r).str();
  EXPECT_NE(text.find("IPC over time"), std::string::npos);
}

TEST(IntervalSampling, RecoveryShowsAsThroughputDip) {
  // With heavy errors, some intervals must commit far fewer instructions
  // than the busiest interval (the recovery stalls are visible in time).
  workload::SyntheticStream s(workload::profile("gzip"), 9, 40000);
  SystemConfig cfg = cfg1(3e-4);
  cfg.core.sample_interval = 1000;
  UnSyncParams p;
  p.cb_entries = 256;
  UnSyncSystem sys(cfg, p, s);
  const RunResult r = sys.run();
  ASSERT_GT(r.recoveries, 2u);
  const auto& samples = r.core_stats[0].interval_committed;
  ASSERT_GT(samples.size(), 10u);
  std::uint64_t min_delta = ~0ull, max_delta = 0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const auto d = samples[i] - samples[i - 1];
    min_delta = std::min(min_delta, d);
    max_delta = std::max(max_delta, d);
  }
  EXPECT_LT(min_delta * 2, max_delta);  // clear dips
}

}  // namespace
}  // namespace unsync::core
