// Tests for the §VIII future-work extensions: the hardened protection plan
// (TMR pipeline / SECDED register file / multi-bit cache protection), its
// hardware pricing, and multi-bit fault injection.
#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "fault/protection.hpp"
#include "hwmodel/core_model.hpp"
#include "isa/assembler.hpp"

namespace unsync {
namespace {

using namespace unsync::fault;

isa::Program workload_program() {
  return isa::Assembler::assemble(R"(
  buf:
    .space 512
    addi r10, r0, 40
    addi r2, r0, 1
    la   r20, buf
  loop:
    add  r2, r2, r10
    mul  r3, r2, r2
    st   r3, 0(r20)
    ld   r4, 0(r20)
    xor  r2, r2, r4
    addi r20, r20, 8
    addi r10, r10, -1
    bne  r10, r0, loop
    addi r1, r0, 1
    syscall
    halt
  )");
}

TEST(HardenedPlan, MechanismsUpgraded) {
  const auto plan = unsync_hardened_plan();
  EXPECT_EQ(plan.of(Structure::kProgramCounter), Mechanism::kTmr);
  EXPECT_EQ(plan.of(Structure::kPipelineRegisters), Mechanism::kTmr);
  EXPECT_EQ(plan.of(Structure::kRegisterFile), Mechanism::kSecded);
  EXPECT_EQ(plan.of(Structure::kL1Data), Mechanism::kSecded);
  // Untouched structures keep their base-plan parity.
  EXPECT_EQ(plan.of(Structure::kReorderBuffer), Mechanism::kParity1);
}

TEST(HardenedPlan, FullRoecRetained) {
  EXPECT_DOUBLE_EQ(unsync_hardened_plan().roec(), 1.0);
}

TEST(MultiBitCoverage, ParityBlindToDoubleFlips) {
  const auto base = unsync_plan();
  EXPECT_DOUBLE_EQ(base.detection_coverage(Structure::kL1Data, 1), 1.0);
  EXPECT_DOUBLE_EQ(base.detection_coverage(Structure::kL1Data, 2), 0.0);
  EXPECT_DOUBLE_EQ(base.detection_coverage(Structure::kL1Data, 3), 1.0);
}

TEST(MultiBitCoverage, SecdedSeesDoubleFlips) {
  const auto hard = unsync_hardened_plan();
  EXPECT_DOUBLE_EQ(hard.detection_coverage(Structure::kL1Data, 2), 1.0);
  EXPECT_DOUBLE_EQ(hard.detection_coverage(Structure::kRegisterFile, 2), 1.0);
}

TEST(MultiBitCoverage, CorrectionSemantics) {
  const auto hard = unsync_hardened_plan();
  EXPECT_TRUE(hard.corrects_in_place(Structure::kRegisterFile, 1));   // SECDED
  EXPECT_FALSE(hard.corrects_in_place(Structure::kRegisterFile, 2));  // detect only
  EXPECT_TRUE(hard.corrects_in_place(Structure::kProgramCounter, 1)); // TMR
  EXPECT_TRUE(hard.corrects_in_place(Structure::kProgramCounter, 2));
  const auto base = unsync_plan();
  EXPECT_FALSE(base.corrects_in_place(Structure::kRegisterFile, 1));  // parity
  EXPECT_FALSE(base.corrects_in_place(Structure::kProgramCounter, 1));  // DMR
}

TEST(MultiBitInjection, DoubleFlipsDefeatBaseUnsyncCache) {
  // This is the motivation for §VIII: double-bit upsets slip past 1-bit
  // parity and become silent corruption even under the base UnSync plan.
  InjectionConfig cfg;
  cfg.trials = 300;
  cfg.seed = 5;
  cfg.flips_per_fault = 2;
  cfg.sites = {FaultSite::kMemoryData};
  const auto base = run_campaign(workload_program(), unsync_plan(), cfg);
  EXPECT_GT(base.sdc, 0u);
  EXPECT_EQ(base.recovered, 0u);  // parity never even fires
}

TEST(MultiBitInjection, HardenedPlanDetectsDoubleFlips) {
  InjectionConfig cfg;
  cfg.trials = 300;
  cfg.seed = 5;
  cfg.flips_per_fault = 2;
  cfg.sites = {FaultSite::kMemoryData};
  const auto hard =
      run_campaign(workload_program(), unsync_hardened_plan(), cfg);
  EXPECT_EQ(hard.sdc, 0u);
  EXPECT_GT(hard.recovered, 0u);  // SECDED detects; clean L2 copy restores
  EXPECT_EQ(hard.recovery_failures, 0u);
}

TEST(MultiBitInjection, SingleFlipsCorrectedInPlaceUnderHardenedPlan) {
  InjectionConfig cfg;
  cfg.trials = 200;
  cfg.seed = 9;
  cfg.flips_per_fault = 1;
  cfg.sites = {FaultSite::kRegisterFile, FaultSite::kProgramCounter};
  const auto hard =
      run_campaign(workload_program(), unsync_hardened_plan(), cfg);
  EXPECT_EQ(hard.corrected_in_place, 200u);  // SECDED RF + TMR PC fix all
  EXPECT_EQ(hard.sdc, 0u);
  EXPECT_EQ(hard.recovery_failures, 0u);
}

TEST(MultiBitInjection, TmrSurvivesDoubleFlipsInPc) {
  InjectionConfig cfg;
  cfg.trials = 150;
  cfg.seed = 13;
  cfg.flips_per_fault = 2;
  cfg.sites = {FaultSite::kProgramCounter};
  const auto hard =
      run_campaign(workload_program(), unsync_hardened_plan(), cfg);
  EXPECT_EQ(hard.corrected_in_place, 150u);
  EXPECT_EQ(hard.recovery_failures, 0u);
}

// ---- Hardware pricing ----------------------------------------------------------

TEST(HardenedHw, CostsMoreThanBaseUnsync) {
  const auto base = hwmodel::unsync_core(10);
  const auto hard = hwmodel::unsync_hardened_core(10);
  EXPECT_GT(hard.core_area_um2, base.core_area_um2);
  EXPECT_GT(hard.core_power_w, base.core_power_w);
  EXPECT_GT(hard.l1_area_um2, base.l1_area_um2);  // SECDED L1
}

TEST(HardenedHw, AreaStillBelowReunionPowerIsNot) {
  // The hardened variant still undercuts Reunion's CHECK-stage *area*, but
  // TMR switching makes it the most power-hungry option — the §VIII
  // trade-off the design_explorer example visualises.
  const auto hard = hwmodel::unsync_hardened_core(10);
  const auto reunion = hwmodel::reunion_core(10);
  EXPECT_LT(hard.total_area_um2(), reunion.total_area_um2());
  EXPECT_GT(hard.total_power_w(), reunion.total_power_w() * 0.9);
}

TEST(HardenedHw, PlanPricingMatchesDirectComposition) {
  // core_for_plan() with the standard plan must equal unsync_core().
  const auto via_plan = hwmodel::core_for_plan(
      unsync_plan(), hwmodel::CacheProtection::kParityPerLine, 10);
  const auto direct = hwmodel::unsync_core(10);
  EXPECT_NEAR(via_plan.core_area_um2, direct.core_area_um2, 1.0);
  EXPECT_NEAR(via_plan.l1_area_um2, direct.l1_area_um2, 1.0);
  EXPECT_NEAR(via_plan.core_power_w, direct.core_power_w, 1e-6);
}

TEST(HardenedHw, TmrCostsMoreThanDmr) {
  const auto dmr = hwmodel::dmr_detection();
  const auto tmr = hwmodel::tmr_detection();
  EXPECT_NEAR(tmr.area_um2, dmr.area_um2 * 2.2, 1e-6);
  EXPECT_NEAR(tmr.power_w, dmr.power_w * 2.2, 1e-9);
}

TEST(HardenedHw, SecdedStructureScalesWithBits) {
  const auto small = hwmodel::secded_structure(1024);
  const auto big = hwmodel::secded_structure(8192);
  EXPECT_LT(small.area_um2, big.area_um2);
  EXPECT_LT(small.power_w, big.power_w);
}

}  // namespace
}  // namespace unsync
