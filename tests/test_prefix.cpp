// Prefix-sharing fault-injection campaigns (runtime/prefix.hpp): the
// out-of-band fault channel matches what construction actually draws, the
// golden cache key shares exactly the cells it should, and — the
// acceptance gate — prefix-shared campaigns are byte-identical to naive
// full-run campaigns across checkpoint intervals, worker counts, cache
// budgets (eviction + thinning), screening, journal resume and the
// distributed fabric.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/serializer.hpp"
#include "core/factory.hpp"
#include "runtime/campaign.hpp"
#include "runtime/campaign_journal.hpp"
#include "runtime/distributed.hpp"
#include "runtime/prefix.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace unsync;
using runtime::CampaignRunner;
using runtime::SimJob;

std::shared_ptr<const std::vector<workload::DynOp>> shared_trace(
    std::uint64_t insts) {
  workload::SyntheticStream stream(workload::profile("gzip"), 7, insts);
  std::vector<workload::DynOp> ops;
  ops.reserve(insts);
  for (workload::DynOp op; stream.next(&op);) ops.push_back(op);
  return std::make_shared<const std::vector<workload::DynOp>>(std::move(ops));
}

/// A grid built to exercise every engine path: trace cells (which share one
/// golden across SER points AND trial seeds) for all five architectures,
/// SER points from zero-arrival (splice) to frequent-arrival (restore +
/// natural finish), plus profile cells (goldens shared only within a seed).
std::vector<SimJob> mixed_grid() {
  static const auto trace = shared_trace(2500);
  std::vector<SimJob> jobs;
  for (const auto kind :
       {runtime::SystemKind::kBaseline, runtime::SystemKind::kUnSync,
        runtime::SystemKind::kReunion, runtime::SystemKind::kLockstep,
        runtime::SystemKind::kCheckpoint}) {
    for (const double ser : {0.0, 1e-7, 2e-4}) {
      SimJob job;
      job.label = "trace";
      job.trace = trace;
      job.system = kind;
      job.ser_per_inst = ser;
      jobs.push_back(std::move(job));
    }
  }
  for (const char* bench : {"gzip", "susan"}) {
    SimJob job;
    job.label = bench;
    job.profile = bench;
    job.insts = 2500;
    job.system = runtime::SystemKind::kUnSync;
    job.ser_per_inst = 1e-4;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::string naive_json(const std::vector<SimJob>& jobs) {
  CampaignRunner::Options opts;
  opts.threads = 1;
  return CampaignRunner(opts).run(jobs).to_json();
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_all(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

TEST(PrefixFaultChannel, MatchesFreshlyConstructedSystems) {
  const auto trace = shared_trace(1200);
  for (const auto kind :
       {runtime::SystemKind::kBaseline, runtime::SystemKind::kUnSync,
        runtime::SystemKind::kReunion, runtime::SystemKind::kLockstep,
        runtime::SystemKind::kCheckpoint}) {
    SimJob job;
    job.label = "chan";
    job.trace = trace;
    job.system = kind;
    job.ser_per_inst = 4e-4;
    job.app_threads = 2;
    const std::uint64_t seed = 99;
    const auto channel = runtime::compute_fault_channel(job, seed);

    const auto stream = runtime::make_job_stream(job, seed);
    const auto model =
        core::make_model(kind, runtime::job_system_config(job, seed), *stream,
                         job.params);
    auto* sys = dynamic_cast<core::System*>(model.get());
    ASSERT_NE(sys, nullptr) << name_of(kind);
    ckpt::Serializer s;
    sys->save_fault_channel(s);
    EXPECT_EQ(s.take(), channel.encoded) << name_of(kind);
    if (kind == runtime::SystemKind::kBaseline) {
      EXPECT_TRUE(channel.empty());
      EXPECT_FALSE(channel.has_rng);
    } else {
      EXPECT_TRUE(channel.has_rng);
      EXPECT_FALSE(channel.empty());  // 4e-4 over 1200 insts x 2 threads
    }
  }
}

TEST(PrefixFaultChannel, InstallingTheChannelReproducesTheFaultyRun) {
  // A golden-configured system + load_fault_channel must equal a system
  // constructed with the fault process on — the core restore identity.
  const auto trace = shared_trace(1500);
  SimJob job;
  job.label = "install";
  job.trace = trace;
  job.system = runtime::SystemKind::kUnSync;
  job.ser_per_inst = 3e-4;
  const std::uint64_t seed = 4242;
  const auto direct = CampaignRunner::run_job(job, seed);

  SimJob gjob = job;
  gjob.ser_per_inst = 0.0;
  const auto stream = runtime::make_job_stream(gjob, seed);
  const auto model = core::make_model(gjob.system,
                                      runtime::job_system_config(gjob, seed),
                                      *stream, gjob.params);
  auto* sys = dynamic_cast<core::System*>(model.get());
  ASSERT_NE(sys, nullptr);
  const auto channel = runtime::compute_fault_channel(job, seed);
  ckpt::Deserializer d(channel.encoded);
  sys->load_fault_channel(d);
  EXPECT_TRUE(d.at_end());
  EXPECT_EQ(sys->run().to_json(), direct.to_json());
}

TEST(PrefixGoldenKey, SharesTrialsAndSerPointsOfATraceCell) {
  const auto trace = shared_trace(500);
  SimJob a;
  a.trace = trace;
  a.system = runtime::SystemKind::kUnSync;
  a.ser_per_inst = 1e-5;

  SimJob b = a;
  b.ser_per_inst = 9e-4;  // different error rate
  b.label = "other";      // label is presentation, not identity
  EXPECT_EQ(runtime::golden_job_key(a, 1), runtime::golden_job_key(b, 2));

  SimJob c = a;
  c.system = runtime::SystemKind::kReunion;
  EXPECT_NE(runtime::golden_job_key(a, 1), runtime::golden_job_key(c, 1));

  SimJob d = a;
  d.params.unsync.cb_entries = a.params.unsync.cb_entries * 2;
  EXPECT_NE(runtime::golden_job_key(a, 1), runtime::golden_job_key(d, 1));

  // Profile streams are generated from the seed: trials never share.
  SimJob p;
  p.profile = "gzip";
  p.system = runtime::SystemKind::kUnSync;
  EXPECT_NE(runtime::golden_job_key(p, 1), runtime::golden_job_key(p, 2));
  EXPECT_EQ(runtime::golden_job_key(p, 1), runtime::golden_job_key(p, 1));
}

TEST(PrefixStats, CodecRoundTripsAndRejectsCorruption) {
  runtime::PrefixStats s;
  s.goldens_built = 3;
  s.hits = 14;
  s.misses = 3;
  s.evictions = 1;
  s.bytes = 1 << 20;
  s.restore_ns = 123456;
  s.cycles_skipped = 777777;
  s.jobs_restored = 9;
  s.jobs_spliced = 5;
  s.jobs_bypassed = 2;
  const std::string blob = s.encode();
  const auto back = runtime::PrefixStats::decode(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->encode(), blob);

  for (std::size_t cut = 0; cut < blob.size(); cut += 7) {
    EXPECT_FALSE(runtime::PrefixStats::decode(blob.substr(0, cut)))
        << "truncated to " << cut;
  }
  EXPECT_FALSE(runtime::PrefixStats::decode(blob + "x"));
}

TEST(PrefixCampaign, ByteIdenticalAcrossIntervalsAndWorkerCounts) {
  const auto jobs = mixed_grid();
  const std::string want = naive_json(jobs);
  for (const Cycle interval : {Cycle{700}, Cycle{4096}}) {
    for (const unsigned threads : {1u, 4u}) {
      CampaignRunner::Options opts;
      opts.threads = threads;
      opts.prefix.enabled = true;
      opts.prefix.interval = interval;
      const auto out = CampaignRunner(opts).run(jobs);
      EXPECT_EQ(out.to_json(), want)
          << "interval=" << interval << " threads=" << threads;
      // The engine must actually have shared work, not silently bypassed:
      // 3 SER points x 5 systems share 5 goldens, so at least the trace
      // cells produce cache hits and early exits.
      const auto& c = out.scheduler_metrics.counters;
      EXPECT_GT(c.at("campaign.prefix_cache.hits"), 0u);
      EXPECT_GT(c.at("campaign.prefix_cache.jobs_early_terminated"), 0u);
      EXPECT_GT(c.at("campaign.prefix_cache.cycles_skipped"), 0u);
    }
  }
}

TEST(PrefixCampaign, TinyCacheBudgetEvictsButStaysIdentical) {
  const auto jobs = mixed_grid();
  CampaignRunner::Options opts;
  opts.threads = 2;
  opts.prefix.enabled = true;
  opts.prefix.interval = 600;
  opts.prefix.cache_mb = 0;  // every insertion is over budget
  const auto out = CampaignRunner(opts).run(jobs);
  EXPECT_EQ(out.to_json(), naive_json(jobs));
  EXPECT_GT(out.scheduler_metrics.counters.at("campaign.prefix_cache.evictions"),
            0u);
}

TEST(PrefixCampaign, ScreeningCampaignsIgnoreThePrefixEngine) {
  const auto jobs = mixed_grid();
  CampaignRunner::Options screen_only;
  screen_only.threads = 1;
  screen_only.screen = true;
  screen_only.screen_threshold = 1.0;
  const std::string want = CampaignRunner(screen_only).run(jobs).to_json();

  CampaignRunner::Options both = screen_only;
  both.threads = 3;
  both.prefix.enabled = true;
  const auto out = CampaignRunner(both).run(jobs);
  EXPECT_EQ(out.to_json(), want);
  // Screening never constructs the engine at all.
  EXPECT_EQ(out.scheduler_metrics.counters.count("campaign.prefix_cache.hits"),
            0u);
}

TEST(PrefixCampaign, MetricsCollectionRoutesEveryJobAroundTheEngine) {
  const auto jobs = mixed_grid();
  CampaignRunner::Options naive;
  naive.threads = 1;
  naive.collect_metrics = true;
  const std::string want = CampaignRunner(naive).run(jobs).to_json();

  CampaignRunner::Options opts = naive;
  opts.threads = 2;
  opts.prefix.enabled = true;
  const auto out = CampaignRunner(opts).run(jobs);
  EXPECT_EQ(out.to_json(), want);
  EXPECT_EQ(
      out.scheduler_metrics.counters.at("campaign.prefix_cache.jobs_bypassed"),
      jobs.size());
}

TEST(PrefixCampaign, JournalResumeAfterAnyTruncationIsByteIdentical) {
  const auto jobs = mixed_grid();
  const std::string want = naive_json(jobs);
  const std::string path = ::testing::TempDir() + "prefix_resume.jsonl";

  CampaignRunner::Options opts;
  opts.threads = 2;
  opts.journal = path;
  opts.prefix.enabled = true;
  opts.prefix.interval = 900;
  (void)CampaignRunner(opts).run(jobs);
  const std::string full_journal = read_all(path);

  // Kill -9 at any byte offset — including mid-line and before anything
  // was written — then resume with various worker counts: the merged
  // output must stay byte-identical to the naive serial run.
  for (const std::size_t keep :
       {std::size_t{0}, full_journal.size() / 3, full_journal.size() / 2,
        full_journal.size() - 5}) {
    write_all(path, full_journal.substr(0, keep));
    CampaignRunner::Options ropts = opts;
    ropts.threads = keep % 2 == 0 ? 1 : 3;
    ropts.resume = true;
    EXPECT_EQ(CampaignRunner(ropts).run(jobs).to_json(), want)
        << "resume after keeping " << keep << " journal bytes";
  }

  // The trailing stats line parses and carries the engine totals.
  write_all(path, full_journal);
  const auto status = runtime::journal_status(path);
  EXPECT_EQ(status.corrupt, 0u);
  ASSERT_TRUE(status.prefix.has_value());
  EXPECT_GE(status.prefix->goldens_built, 1u);
  std::remove(path.c_str());
}

TEST(PrefixCampaign, PrefixPolicyIsPartOfJournalIdentity) {
  const auto jobs = mixed_grid();
  const std::string path = ::testing::TempDir() + "prefix_identity.jsonl";

  CampaignRunner::Options opts;
  opts.threads = 1;
  opts.journal = path;
  opts.prefix.enabled = true;
  (void)CampaignRunner(opts).run(jobs);

  // A prefix-sharing journal cannot be resumed by a naive campaign...
  CampaignRunner::Options naive = opts;
  naive.prefix.enabled = false;
  naive.resume = true;
  EXPECT_THROW((void)CampaignRunner(naive).run(jobs), ckpt::CkptError);

  // ...nor under a different golden-checkpoint interval...
  CampaignRunner::Options other = opts;
  other.prefix.interval = opts.prefix.interval + 1;
  other.resume = true;
  EXPECT_THROW((void)CampaignRunner(other).run(jobs), ckpt::CkptError);

  // ...but the cache budget is a pure performance knob.
  CampaignRunner::Options budget = opts;
  budget.prefix.cache_mb = 1;
  budget.resume = true;
  EXPECT_EQ(CampaignRunner(budget).run(jobs).to_json(), naive_json(jobs));
  std::remove(path.c_str());
}

TEST(PrefixDistributed, ShardedWorkersMergeByteIdentical) {
  namespace fs = std::filesystem;
  const auto jobs = mixed_grid();
  const std::string dir = ::testing::TempDir() + "prefix_dist";
  fs::remove_all(dir);

  runtime::DistributedOptions opts;
  opts.dir = dir;
  opts.workers = 2;
  opts.threads = 2;
  opts.steal = false;
  opts.timeout_seconds = 0;
  opts.prefix.enabled = true;
  opts.prefix.interval = 800;
  for (unsigned w = 0; w < opts.workers; ++w) {
    runtime::DistributedOptions worker = opts;
    worker.shard = w;
    (void)runtime::run_worker(jobs, worker);
  }
  EXPECT_EQ(runtime::merge_shards(jobs, opts).to_json(), naive_json(jobs));

  // Shard journals carry per-process engine stats.
  const auto status =
      runtime::journal_status(runtime::shard_journal_path(dir, 0));
  ASSERT_TRUE(status.prefix.has_value());
  EXPECT_GE(status.prefix->goldens_built, 1u);

  // Kill -9 one worker mid-campaign (simulated by truncating its journal
  // mid-line), resume it, and merge again: still byte-identical.
  const std::string shard0 = runtime::shard_journal_path(dir, 0);
  const std::string journal = read_all(shard0);
  write_all(shard0, journal.substr(0, journal.size() / 2));
  runtime::DistributedOptions resumed = opts;
  resumed.shard = 0;
  (void)runtime::run_worker(jobs, resumed);
  EXPECT_EQ(runtime::merge_shards(jobs, opts).to_json(), naive_json(jobs));

  // Every participant must agree on the prefix policy — a naive worker
  // joining a prefix-sharing campaign dir is rejected by the manifest.
  runtime::DistributedOptions naive = opts;
  naive.shard = 1;
  naive.prefix.enabled = false;
  EXPECT_THROW((void)runtime::run_worker(jobs, naive), ckpt::CkptError);
  fs::remove_all(dir);
}

}  // namespace
