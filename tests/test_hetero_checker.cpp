// Heterogeneous checker subsystem tests, bottom-up: the CheckLog coupling
// structure, the InOrderCore timing model, and HeteroCheckerSystem
// end-to-end (shadowing, log back-pressure, detection + rollback,
// published metrics). The ckpt wire format and engine parity for the
// system are pinned separately (test_ckpt, test_engine_parity).
#include "core/hetero_checker_system.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ckpt/serializer.hpp"
#include "core/baseline.hpp"
#include "cpu/check_log.hpp"
#include "cpu/in_order_core.hpp"
#include "fault/avf.hpp"
#include "obs/metrics.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace unsync {
namespace {

// ---- CheckLog ---------------------------------------------------------------

cpu::CheckLogEntry entry(SeqNum seq, cpu::CheckKind kind, Addr addr = kNoAddr,
                         bool taken = false) {
  return {.seq = seq, .addr = addr, .kind = kind, .taken = taken};
}

TEST(CheckLog, BoundedFifoSemantics) {
  cpu::CheckLog log(2);
  EXPECT_TRUE(log.empty());
  EXPECT_FALSE(log.full());
  EXPECT_TRUE(log.push(entry(1, cpu::CheckKind::kLoadValue, 0x100)));
  EXPECT_TRUE(log.push(entry(2, cpu::CheckKind::kBranchOutcome)));
  EXPECT_TRUE(log.full());
  // A full log refuses the append — the leader's commit stage stalls.
  EXPECT_FALSE(log.push(entry(3, cpu::CheckKind::kStoreData, 0x200)));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.total_pushed(), 2u);

  // Strict FIFO order on the checker side.
  EXPECT_EQ(log.front().seq, 1u);
  log.pop();
  EXPECT_EQ(log.front().seq, 2u);
  EXPECT_TRUE(log.push(entry(3, cpu::CheckKind::kStoreData, 0x200)));
  EXPECT_EQ(log.peak_occupancy(), 2u);
  log.clear();  // rollback discards the unverified tail wholesale
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.total_pushed(), 3u);  // counters survive the clear
}

TEST(CheckLog, SaveLoadRoundTripsBitExactly) {
  cpu::CheckLog log(8);
  log.push(entry(10, cpu::CheckKind::kLoadValue, 0x40));
  log.push(entry(11, cpu::CheckKind::kBranchOutcome, kNoAddr, true));
  log.push(entry(12, cpu::CheckKind::kStoreData, 0x80));
  log.pop();

  ckpt::Serializer s;
  log.save_state(s);
  const std::string bytes = s.take();

  cpu::CheckLog restored(8);
  ckpt::Deserializer d(bytes);
  restored.load_state(d);
  EXPECT_TRUE(d.at_end());
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.front().seq, 11u);
  EXPECT_EQ(restored.front().kind, cpu::CheckKind::kBranchOutcome);
  EXPECT_TRUE(restored.front().taken);
  EXPECT_EQ(restored.peak_occupancy(), log.peak_occupancy());
  EXPECT_EQ(restored.total_pushed(), log.total_pushed());

  ckpt::Serializer s2;
  restored.save_state(s2);
  EXPECT_EQ(s2.data(), bytes);
}

TEST(CheckLog, ResidencyTrackerIntegratesOccupancy) {
  // ACE accounting: every resident entry is architecturally critical, so
  // entry·cycles must integrate the live occupancy between hook sites.
  fault::ResidencyTracker avf;
  cpu::CheckLog log(4);
  log.set_avf(&avf);
  log.push(entry(1, cpu::CheckKind::kLoadValue, 0x10));
  log.push(entry(2, cpu::CheckKind::kLoadValue, 0x18));
  log.avf_update(100);  // 2 live from cycle 100
  log.pop();
  log.avf_update(150);  // 2 * 50 integrated, 1 live from 150
  avf.finish(200);      // + 1 * 50
  EXPECT_EQ(avf.entry_cycles(), 2u * 50u + 1u * 50u);
}

// ---- InOrderCore ------------------------------------------------------------

workload::DynOp alu_op(SeqNum seq) {
  workload::DynOp op;
  op.seq = seq;
  op.cls = isa::InstClass::kIntAlu;
  op.pc = 0x1000 + seq * 4;
  op.writes_reg = true;
  return op;
}

workload::DynOp load_op(SeqNum seq, Addr addr) {
  workload::DynOp op = alu_op(seq);
  op.cls = isa::InstClass::kLoad;
  op.mem_addr = addr;
  return op;
}

workload::DynOp div_op(SeqNum seq) {
  workload::DynOp op = alu_op(seq);
  op.cls = isa::InstClass::kIntDiv;
  return op;
}

std::vector<workload::DynOp> independent_alus(std::uint64_t n) {
  std::vector<workload::DynOp> ops;
  for (SeqNum i = 0; i < n; ++i) ops.push_back(alu_op(i));
  return ops;
}

/// Checker-mode rig: no memory hierarchy, loads at fixed latency.
struct InOrderRig {
  explicit InOrderRig(std::vector<workload::DynOp> ops,
                      cpu::InOrderConfig cfg = {},
                      cpu::CommitEnv* env = nullptr)
      : core(0, cfg, /*memory=*/nullptr,
             std::make_unique<workload::TraceStream>(std::move(ops)), env) {}

  Cycle run(Cycle limit = 1000000) {
    Cycle now = 0;
    while (!core.done() && now < limit) {
      core.tick(now);
      ++now;
    }
    return now;
  }

  cpu::InOrderCore core;
};

TEST(InOrderCore, RunsToCompletion) {
  InOrderRig rig(independent_alus(100));
  rig.run();
  EXPECT_TRUE(rig.core.done());
  EXPECT_EQ(rig.core.retired(), 100u);
}

TEST(InOrderCore, RetiresUpToWidthPerCycle) {
  cpu::InOrderConfig cfg;
  cfg.width = 2;
  InOrderRig rig(independent_alus(2000), cfg);
  const Cycle cycles = rig.run();
  const double ipc = 2000.0 / static_cast<double>(cycles);
  EXPECT_GT(ipc, 1.5);   // single-cycle alus sustain close to the width
  EXPECT_LE(ipc, 2.01);  // and never exceed it (scalar-class in-order)
}

TEST(InOrderCore, BlockingExecutionSerialisesLongOps) {
  // The head instruction executes to completion before the next may start:
  // a stream of divides costs ~div_latency cycles each even though the ops
  // are data-independent (the out-of-order leader would overlap them).
  cpu::InOrderConfig cfg;
  std::vector<workload::DynOp> ops;
  for (SeqNum i = 0; i < 200; ++i) ops.push_back(div_op(i));
  InOrderRig rig(std::move(ops), cfg);
  const Cycle cycles = rig.run();
  // Commit overlaps the successor's first execute cycle, so the steady
  // state is latency-1 cycles per divide.
  EXPECT_GE(cycles, 200 * (cfg.int_div_latency - 1));
}

TEST(InOrderCore, CheckerModeLoadsUseTheFixedLatency) {
  std::vector<workload::DynOp> loads;
  for (SeqNum i = 0; i < 300; ++i) loads.push_back(load_op(i, 0x1000 + 8 * i));
  cpu::InOrderConfig fast;
  fast.load_latency = 1;
  cpu::InOrderConfig slow;
  slow.load_latency = 6;
  InOrderRig a(loads, fast);
  InOrderRig b(loads, slow);
  const Cycle fast_cycles = a.run();
  const Cycle slow_cycles = b.run();
  EXPECT_GE(slow_cycles, fast_cycles + 300 * 4);  // ~5 extra cycles per load
  EXPECT_EQ(a.core.stats().loads, 300u);
}

TEST(InOrderCore, CommitGateStallsAreCountedAndReleased) {
  // A CommitEnv that holds every commit until cycle 50 — the core must
  // charge commit_stall_gate for the held window and still finish.
  class Gate final : public cpu::CommitEnv {
   public:
    bool can_commit(CoreId, const workload::DynOp&, Cycle now) override {
      return now >= 50;
    }
  };
  Gate gate;
  InOrderRig rig(independent_alus(20), {}, &gate);
  rig.run();
  EXPECT_TRUE(rig.core.done());
  EXPECT_EQ(rig.core.retired(), 20u);
  EXPECT_GT(rig.core.stats().commit_stall_gate, 0u);
}

TEST(InOrderCore, SetPositionReplaysFromTheRequestedSeq) {
  InOrderRig rig(independent_alus(40));
  rig.run();
  EXPECT_EQ(rig.core.retired(), 40u);
  rig.core.set_position(10);  // rollback: re-execute [10, 40)
  EXPECT_EQ(rig.core.retired(), 10u);
  EXPECT_FALSE(rig.core.done());
  rig.run();
  EXPECT_TRUE(rig.core.done());
  EXPECT_EQ(rig.core.retired(), 40u);
}

// ---- HeteroCheckerSystem ----------------------------------------------------

core::SystemConfig hetero_config(double ser = 0.0, unsigned threads = 1) {
  core::SystemConfig cfg;
  cfg.num_threads = threads;
  cfg.ser_per_inst = ser;
  cfg.seed = 7;
  return cfg;
}

TEST(HeteroCheckerSystem, CheckerShadowsTheLeaderExactly) {
  workload::SyntheticStream stream(workload::profile("gzip"), 1, 20000);
  core::HeteroCheckerSystem sys(hetero_config(), {}, stream);
  const core::RunResult r = sys.run();
  EXPECT_EQ(r.system, "hetero");
  ASSERT_EQ(r.core_stats.size(), 2u);  // leader + checker
  EXPECT_EQ(r.core_stats[0].committed, 20000u);
  EXPECT_EQ(r.core_stats[1].committed, 20000u);
  // Every logged-class commit crossed the log exactly once.
  EXPECT_EQ(r.core_stats[1].loads, r.core_stats[0].loads);
  EXPECT_EQ(r.core_stats[1].stores, r.core_stats[0].stores);
  EXPECT_EQ(r.core_stats[1].branches, r.core_stats[0].branches);
}

TEST(HeteroCheckerSystem, TinyLogBackPressuresTheLeader) {
  workload::SyntheticStream stream(workload::profile("susan"), 2, 20000);
  core::HeteroParams tiny;
  tiny.log_entries = 2;
  core::HeteroParams roomy;
  roomy.log_entries = 256;
  core::HeteroCheckerSystem small(hetero_config(), tiny, stream);
  core::HeteroCheckerSystem large(hetero_config(), roomy, stream);
  const core::RunResult rs = small.run();
  const core::RunResult rl = large.run();
  EXPECT_GT(rs.cb_full_stalls, rl.cb_full_stalls);
  EXPECT_GE(rs.cycles, rl.cycles);
}

TEST(HeteroCheckerSystem, DetectionRollsBackBothCoresAndFinishes) {
  workload::SyntheticStream stream(workload::profile("gzip"), 3, 30000);
  core::HeteroParams p;
  core::HeteroCheckerSystem sys(hetero_config(/*ser=*/1e-4), p, stream);
  const core::RunResult r = sys.run();
  ASSERT_GT(r.errors_injected, 0u);
  // Every strike is detected at log verification and recovered by rollback
  // (never in place — the checker has no copy to correct from).
  EXPECT_EQ(r.rollbacks, r.errors_injected);
  EXPECT_EQ(r.recoveries, 0u);
  for (const auto& e : r.error_log) {
    EXPECT_TRUE(e.rollback);
    EXPECT_EQ(e.cost, p.rollback_penalty);
  }
  // Recovery re-executes the unverified window; the final work is intact.
  EXPECT_EQ(r.core_stats[0].committed, 30000u);
  EXPECT_EQ(r.core_stats[1].committed, 30000u);
  EXPECT_GT(r.cycles, 0u);
}

TEST(HeteroCheckerSystem, PublishesLogAndDetectionMetrics) {
  workload::SyntheticStream stream(workload::profile("gzip"), 4, 8000);
  obs::MetricsRegistry reg;
  core::HeteroParams p;
  core::HeteroCheckerSystem sys(hetero_config(/*ser=*/2e-4), p, stream);
  sys.set_observability(&reg, nullptr);
  const core::RunResult r = sys.run();
  EXPECT_EQ(reg.counter("hetero.group0.log.capacity").value(), p.log_entries);
  EXPECT_GT(reg.counter("hetero.group0.log.total_pushed").value(), 0u);
  EXPECT_EQ(reg.counter("hetero.group0.detections").value(),
            r.errors_injected);
  if (r.errors_injected > 0) {
    // Detection latency is log residency: bounded, and nonzero on average.
    EXPECT_GT(reg.counter("hetero.group0.detection_latency_cycles").value(),
              0u);
  }
}

TEST(HeteroCheckerSystem, MultiprogrammedGroupsStayIndependent) {
  workload::SyntheticStream stream(workload::profile("gzip"), 5, 6000);
  core::HeteroCheckerSystem sys(hetero_config(0.0, /*threads=*/2), {}, stream);
  const core::RunResult r = sys.run();
  ASSERT_EQ(r.core_stats.size(), 4u);  // two leaders then two checkers
  EXPECT_EQ(r.core_stats[0].committed, 6000u);
  EXPECT_EQ(r.core_stats[1].committed, 6000u);
  EXPECT_EQ(r.core_stats[2].committed, 6000u);
  EXPECT_EQ(r.core_stats[3].committed, 6000u);
}

TEST(HeteroCheckerSystem, ErrorFreeOverheadIsBoundedVsBaseline) {
  // The checker is the sustainable-throughput bound, so hetero costs more
  // cycles than a lone big core — but with a roomy log the slowdown stays
  // within the checker's width bound (not a sync-protocol collapse).
  workload::SyntheticStream stream(workload::profile("gzip"), 6, 30000);
  core::BaselineSystem base(hetero_config(), stream);
  core::HeteroParams p;
  p.log_entries = 256;
  core::HeteroCheckerSystem sys(hetero_config(), p, stream);
  const Cycle base_cycles = base.run().cycles;
  const Cycle hetero_cycles = sys.run().cycles;
  EXPECT_GE(hetero_cycles, base_cycles);
  EXPECT_LT(hetero_cycles, base_cycles * 4);
}

}  // namespace
}  // namespace unsync
