# Empty compiler generated dependencies file for unsync_sim.
# This may be replaced when dependencies are built.
