file(REMOVE_RECURSE
  "../tools/unsync_sim"
  "../tools/unsync_sim.pdb"
  "CMakeFiles/unsync_sim.dir/unsync_sim.cpp.o"
  "CMakeFiles/unsync_sim.dir/unsync_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsync_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
