# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools_cmake
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/unsync_sim" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_hw "/root/repo/build/tools/unsync_sim" "hw")
set_tests_properties(cli_hw PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_unsync "/root/repo/build/tools/unsync_sim" "run" "system=unsync" "bench=gzip" "insts=3000")
set_tests_properties(cli_run_unsync PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_reunion_kernel "/root/repo/build/tools/unsync_sim" "run" "system=reunion" "kernel=matmul_8" "report=1")
set_tests_properties(cli_run_reunion_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_csv "/root/repo/build/tools/unsync_sim" "run" "system=baseline" "bench=mcf" "insts=2000" "csv=1")
set_tests_properties(cli_run_csv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_characterize "/root/repo/build/tools/unsync_sim" "characterize" "bench=susan" "insts=5000")
set_tests_properties(cli_characterize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep_cb "/root/repo/build/tools/unsync_sim" "sweep" "param=cb" "values=8,64" "system=unsync" "bench=susan" "insts=4000")
set_tests_properties(cli_sweep_cb PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep_fi "/root/repo/build/tools/unsync_sim" "sweep" "param=fi" "values=1,30" "system=reunion" "bench=galgel" "insts=4000")
set_tests_properties(cli_sweep_fi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_system "/root/repo/build/tools/unsync_sim" "run" "system=bogus" "bench=gzip")
set_tests_properties(cli_bad_system PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_workload "/root/repo/build/tools/unsync_sim" "run" "system=unsync")
set_tests_properties(cli_bad_workload PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_prog_dot_product "/root/repo/build/tools/unsync_sim" "asm" "program=/root/repo/examples/programs/dot_product.s")
set_tests_properties(cli_prog_dot_product PROPERTIES  PASS_REGULAR_EXPRESSION "output\\[0\\] = 176800" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_prog_string_hash "/root/repo/build/tools/unsync_sim" "asm" "program=/root/repo/examples/programs/string_hash.s")
set_tests_properties(cli_prog_string_hash PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;33;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_prog_collatz "/root/repo/build/tools/unsync_sim" "run" "system=reunion" "program=/root/repo/examples/programs/collatz.s")
set_tests_properties(cli_prog_collatz PROPERTIES  PASS_REGULAR_EXPRESSION "cycles" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;35;add_test;/root/repo/tools/CMakeLists.txt;0;")
