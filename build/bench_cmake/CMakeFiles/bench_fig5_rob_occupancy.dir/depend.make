# Empty dependencies file for bench_fig5_rob_occupancy.
# This may be replaced when dependencies are built.
