file(REMOVE_RECURSE
  "../bench/bench_fig5_rob_occupancy"
  "../bench/bench_fig5_rob_occupancy.pdb"
  "CMakeFiles/bench_fig5_rob_occupancy.dir/bench_fig5_rob_occupancy.cpp.o"
  "CMakeFiles/bench_fig5_rob_occupancy.dir/bench_fig5_rob_occupancy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_rob_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
