file(REMOVE_RECURSE
  "../bench/bench_ablation_writepolicy"
  "../bench/bench_ablation_writepolicy.pdb"
  "CMakeFiles/bench_ablation_writepolicy.dir/bench_ablation_writepolicy.cpp.o"
  "CMakeFiles/bench_ablation_writepolicy.dir/bench_ablation_writepolicy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_writepolicy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
