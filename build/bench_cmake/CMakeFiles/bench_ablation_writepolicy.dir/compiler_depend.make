# Empty compiler generated dependencies file for bench_ablation_writepolicy.
# This may be replaced when dependencies are built.
