file(REMOVE_RECURSE
  "../bench/bench_ser_sweep"
  "../bench/bench_ser_sweep.pdb"
  "CMakeFiles/bench_ser_sweep.dir/bench_ser_sweep.cpp.o"
  "CMakeFiles/bench_ser_sweep.dir/bench_ser_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ser_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
