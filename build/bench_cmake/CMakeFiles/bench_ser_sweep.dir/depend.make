# Empty dependencies file for bench_ser_sweep.
# This may be replaced when dependencies are built.
