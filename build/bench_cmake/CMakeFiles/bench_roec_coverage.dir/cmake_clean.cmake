file(REMOVE_RECURSE
  "../bench/bench_roec_coverage"
  "../bench/bench_roec_coverage.pdb"
  "CMakeFiles/bench_roec_coverage.dir/bench_roec_coverage.cpp.o"
  "CMakeFiles/bench_roec_coverage.dir/bench_roec_coverage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_roec_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
