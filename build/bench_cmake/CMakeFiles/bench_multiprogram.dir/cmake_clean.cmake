file(REMOVE_RECURSE
  "../bench/bench_multiprogram"
  "../bench/bench_multiprogram.pdb"
  "CMakeFiles/bench_multiprogram.dir/bench_multiprogram.cpp.o"
  "CMakeFiles/bench_multiprogram.dir/bench_multiprogram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiprogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
