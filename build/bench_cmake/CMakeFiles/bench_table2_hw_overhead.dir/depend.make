# Empty dependencies file for bench_table2_hw_overhead.
# This may be replaced when dependencies are built.
