file(REMOVE_RECURSE
  "../bench/bench_fig4_serializing"
  "../bench/bench_fig4_serializing.pdb"
  "CMakeFiles/bench_fig4_serializing.dir/bench_fig4_serializing.cpp.o"
  "CMakeFiles/bench_fig4_serializing.dir/bench_fig4_serializing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_serializing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
