file(REMOVE_RECURSE
  "../bench/bench_table3_die_projection"
  "../bench/bench_table3_die_projection.pdb"
  "CMakeFiles/bench_table3_die_projection.dir/bench_table3_die_projection.cpp.o"
  "CMakeFiles/bench_table3_die_projection.dir/bench_table3_die_projection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_die_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
