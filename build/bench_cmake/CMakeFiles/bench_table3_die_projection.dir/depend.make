# Empty dependencies file for bench_table3_die_projection.
# This may be replaced when dependencies are built.
