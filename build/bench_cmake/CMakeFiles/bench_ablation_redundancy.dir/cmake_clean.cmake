file(REMOVE_RECURSE
  "../bench/bench_ablation_redundancy"
  "../bench/bench_ablation_redundancy.pdb"
  "CMakeFiles/bench_ablation_redundancy.dir/bench_ablation_redundancy.cpp.o"
  "CMakeFiles/bench_ablation_redundancy.dir/bench_ablation_redundancy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
