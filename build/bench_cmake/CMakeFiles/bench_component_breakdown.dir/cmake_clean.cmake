file(REMOVE_RECURSE
  "../bench/bench_component_breakdown"
  "../bench/bench_component_breakdown.pdb"
  "CMakeFiles/bench_component_breakdown.dir/bench_component_breakdown.cpp.o"
  "CMakeFiles/bench_component_breakdown.dir/bench_component_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_component_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
