# Empty dependencies file for bench_component_breakdown.
# This may be replaced when dependencies are built.
