file(REMOVE_RECURSE
  "CMakeFiles/test_mem_details.dir/test_mem_details.cpp.o"
  "CMakeFiles/test_mem_details.dir/test_mem_details.cpp.o.d"
  "test_mem_details"
  "test_mem_details.pdb"
  "test_mem_details[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
