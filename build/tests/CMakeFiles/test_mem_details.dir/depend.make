# Empty dependencies file for test_mem_details.
# This may be replaced when dependencies are built.
