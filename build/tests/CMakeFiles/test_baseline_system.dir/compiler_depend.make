# Empty compiler generated dependencies file for test_baseline_system.
# This may be replaced when dependencies are built.
