file(REMOVE_RECURSE
  "CMakeFiles/test_functional_sim.dir/test_functional_sim.cpp.o"
  "CMakeFiles/test_functional_sim.dir/test_functional_sim.cpp.o.d"
  "test_functional_sim"
  "test_functional_sim.pdb"
  "test_functional_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_functional_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
