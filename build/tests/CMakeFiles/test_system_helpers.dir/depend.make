# Empty dependencies file for test_system_helpers.
# This may be replaced when dependencies are built.
