file(REMOVE_RECURSE
  "CMakeFiles/test_system_helpers.dir/test_system_helpers.cpp.o"
  "CMakeFiles/test_system_helpers.dir/test_system_helpers.cpp.o.d"
  "test_system_helpers"
  "test_system_helpers.pdb"
  "test_system_helpers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_helpers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
