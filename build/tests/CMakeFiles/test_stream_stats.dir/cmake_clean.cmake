file(REMOVE_RECURSE
  "CMakeFiles/test_stream_stats.dir/test_stream_stats.cpp.o"
  "CMakeFiles/test_stream_stats.dir/test_stream_stats.cpp.o.d"
  "test_stream_stats"
  "test_stream_stats.pdb"
  "test_stream_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
