file(REMOVE_RECURSE
  "CMakeFiles/test_reunion_details.dir/test_reunion_details.cpp.o"
  "CMakeFiles/test_reunion_details.dir/test_reunion_details.cpp.o.d"
  "test_reunion_details"
  "test_reunion_details.pdb"
  "test_reunion_details[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reunion_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
