# Empty dependencies file for test_reunion_details.
# This may be replaced when dependencies are built.
