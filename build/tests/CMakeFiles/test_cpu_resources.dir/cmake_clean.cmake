file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_resources.dir/test_cpu_resources.cpp.o"
  "CMakeFiles/test_cpu_resources.dir/test_cpu_resources.cpp.o.d"
  "test_cpu_resources"
  "test_cpu_resources.pdb"
  "test_cpu_resources[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
