# Empty dependencies file for test_cpu_resources.
# This may be replaced when dependencies are built.
