# Empty dependencies file for test_phased.
# This may be replaced when dependencies are built.
