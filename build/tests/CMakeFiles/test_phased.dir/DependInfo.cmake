
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_phased.cpp" "tests/CMakeFiles/test_phased.dir/test_phased.cpp.o" "gcc" "tests/CMakeFiles/test_phased.dir/test_phased.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/unsync_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/unsync_hwmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/unsync_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/unsync_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/unsync_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/unsync_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/unsync_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/unsync_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
