file(REMOVE_RECURSE
  "CMakeFiles/test_related_work.dir/test_related_work.cpp.o"
  "CMakeFiles/test_related_work.dir/test_related_work.cpp.o.d"
  "test_related_work"
  "test_related_work.pdb"
  "test_related_work[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_related_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
