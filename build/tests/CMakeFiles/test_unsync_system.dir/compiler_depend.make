# Empty compiler generated dependencies file for test_unsync_system.
# This may be replaced when dependencies are built.
