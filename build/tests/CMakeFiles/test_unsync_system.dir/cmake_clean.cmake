file(REMOVE_RECURSE
  "CMakeFiles/test_unsync_system.dir/test_unsync_system.cpp.o"
  "CMakeFiles/test_unsync_system.dir/test_unsync_system.cpp.o.d"
  "test_unsync_system"
  "test_unsync_system.pdb"
  "test_unsync_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unsync_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
