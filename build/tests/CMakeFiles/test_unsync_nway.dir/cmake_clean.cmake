file(REMOVE_RECURSE
  "CMakeFiles/test_unsync_nway.dir/test_unsync_nway.cpp.o"
  "CMakeFiles/test_unsync_nway.dir/test_unsync_nway.cpp.o.d"
  "test_unsync_nway"
  "test_unsync_nway.pdb"
  "test_unsync_nway[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unsync_nway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
