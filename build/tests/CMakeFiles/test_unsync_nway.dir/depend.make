# Empty dependencies file for test_unsync_nway.
# This may be replaced when dependencies are built.
