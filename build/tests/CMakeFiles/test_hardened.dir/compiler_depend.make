# Empty compiler generated dependencies file for test_hardened.
# This may be replaced when dependencies are built.
