# Empty dependencies file for test_error_log.
# This may be replaced when dependencies are built.
