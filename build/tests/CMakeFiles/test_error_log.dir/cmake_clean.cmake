file(REMOVE_RECURSE
  "CMakeFiles/test_error_log.dir/test_error_log.cpp.o"
  "CMakeFiles/test_error_log.dir/test_error_log.cpp.o.d"
  "test_error_log"
  "test_error_log.pdb"
  "test_error_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
