file(REMOVE_RECURSE
  "CMakeFiles/test_profiles_property.dir/test_profiles_property.cpp.o"
  "CMakeFiles/test_profiles_property.dir/test_profiles_property.cpp.o.d"
  "test_profiles_property"
  "test_profiles_property.pdb"
  "test_profiles_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profiles_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
