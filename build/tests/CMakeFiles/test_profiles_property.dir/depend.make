# Empty dependencies file for test_profiles_property.
# This may be replaced when dependencies are built.
