file(REMOVE_RECURSE
  "CMakeFiles/test_reunion_system.dir/test_reunion_system.cpp.o"
  "CMakeFiles/test_reunion_system.dir/test_reunion_system.cpp.o.d"
  "test_reunion_system"
  "test_reunion_system.pdb"
  "test_reunion_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reunion_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
