# Empty dependencies file for test_reunion_system.
# This may be replaced when dependencies are built.
