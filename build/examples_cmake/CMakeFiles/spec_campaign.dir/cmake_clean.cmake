file(REMOVE_RECURSE
  "../examples/spec_campaign"
  "../examples/spec_campaign.pdb"
  "CMakeFiles/spec_campaign.dir/spec_campaign.cpp.o"
  "CMakeFiles/spec_campaign.dir/spec_campaign.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
