file(REMOVE_RECURSE
  "../examples/design_explorer"
  "../examples/design_explorer.pdb"
  "CMakeFiles/design_explorer.dir/design_explorer.cpp.o"
  "CMakeFiles/design_explorer.dir/design_explorer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
