file(REMOVE_RECURSE
  "../examples/kernel_campaign"
  "../examples/kernel_campaign.pdb"
  "CMakeFiles/kernel_campaign.dir/kernel_campaign.cpp.o"
  "CMakeFiles/kernel_campaign.dir/kernel_campaign.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
