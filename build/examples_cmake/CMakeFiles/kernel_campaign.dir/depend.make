# Empty dependencies file for kernel_campaign.
# This may be replaced when dependencies are built.
