# Empty compiler generated dependencies file for unsync_core.
# This may be replaced when dependencies are built.
