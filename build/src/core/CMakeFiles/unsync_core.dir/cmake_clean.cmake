file(REMOVE_RECURSE
  "CMakeFiles/unsync_core.dir/baseline.cpp.o"
  "CMakeFiles/unsync_core.dir/baseline.cpp.o.d"
  "CMakeFiles/unsync_core.dir/fingerprint.cpp.o"
  "CMakeFiles/unsync_core.dir/fingerprint.cpp.o.d"
  "CMakeFiles/unsync_core.dir/related_work.cpp.o"
  "CMakeFiles/unsync_core.dir/related_work.cpp.o.d"
  "CMakeFiles/unsync_core.dir/report.cpp.o"
  "CMakeFiles/unsync_core.dir/report.cpp.o.d"
  "CMakeFiles/unsync_core.dir/reunion_system.cpp.o"
  "CMakeFiles/unsync_core.dir/reunion_system.cpp.o.d"
  "CMakeFiles/unsync_core.dir/unsync_system.cpp.o"
  "CMakeFiles/unsync_core.dir/unsync_system.cpp.o.d"
  "libunsync_core.a"
  "libunsync_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsync_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
