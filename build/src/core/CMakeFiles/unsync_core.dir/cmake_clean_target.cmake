file(REMOVE_RECURSE
  "libunsync_core.a"
)
