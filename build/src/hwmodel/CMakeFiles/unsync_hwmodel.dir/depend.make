# Empty dependencies file for unsync_hwmodel.
# This may be replaced when dependencies are built.
