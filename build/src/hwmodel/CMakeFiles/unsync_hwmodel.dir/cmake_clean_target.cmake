file(REMOVE_RECURSE
  "libunsync_hwmodel.a"
)
