file(REMOVE_RECURSE
  "CMakeFiles/unsync_hwmodel.dir/cache_model.cpp.o"
  "CMakeFiles/unsync_hwmodel.dir/cache_model.cpp.o.d"
  "CMakeFiles/unsync_hwmodel.dir/components.cpp.o"
  "CMakeFiles/unsync_hwmodel.dir/components.cpp.o.d"
  "CMakeFiles/unsync_hwmodel.dir/core_model.cpp.o"
  "CMakeFiles/unsync_hwmodel.dir/core_model.cpp.o.d"
  "CMakeFiles/unsync_hwmodel.dir/die_projection.cpp.o"
  "CMakeFiles/unsync_hwmodel.dir/die_projection.cpp.o.d"
  "CMakeFiles/unsync_hwmodel.dir/energy.cpp.o"
  "CMakeFiles/unsync_hwmodel.dir/energy.cpp.o.d"
  "libunsync_hwmodel.a"
  "libunsync_hwmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsync_hwmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
