# Empty dependencies file for unsync_isa.
# This may be replaced when dependencies are built.
