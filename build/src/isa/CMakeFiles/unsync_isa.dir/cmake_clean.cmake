file(REMOVE_RECURSE
  "CMakeFiles/unsync_isa.dir/assembler.cpp.o"
  "CMakeFiles/unsync_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/unsync_isa.dir/functional_sim.cpp.o"
  "CMakeFiles/unsync_isa.dir/functional_sim.cpp.o.d"
  "CMakeFiles/unsync_isa.dir/isa.cpp.o"
  "CMakeFiles/unsync_isa.dir/isa.cpp.o.d"
  "libunsync_isa.a"
  "libunsync_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsync_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
