file(REMOVE_RECURSE
  "libunsync_isa.a"
)
