file(REMOVE_RECURSE
  "libunsync_fault.a"
)
