file(REMOVE_RECURSE
  "CMakeFiles/unsync_fault.dir/ecc.cpp.o"
  "CMakeFiles/unsync_fault.dir/ecc.cpp.o.d"
  "CMakeFiles/unsync_fault.dir/injector.cpp.o"
  "CMakeFiles/unsync_fault.dir/injector.cpp.o.d"
  "CMakeFiles/unsync_fault.dir/protection.cpp.o"
  "CMakeFiles/unsync_fault.dir/protection.cpp.o.d"
  "CMakeFiles/unsync_fault.dir/ser.cpp.o"
  "CMakeFiles/unsync_fault.dir/ser.cpp.o.d"
  "CMakeFiles/unsync_fault.dir/vulnerability.cpp.o"
  "CMakeFiles/unsync_fault.dir/vulnerability.cpp.o.d"
  "libunsync_fault.a"
  "libunsync_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsync_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
