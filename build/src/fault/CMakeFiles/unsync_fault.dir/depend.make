# Empty dependencies file for unsync_fault.
# This may be replaced when dependencies are built.
