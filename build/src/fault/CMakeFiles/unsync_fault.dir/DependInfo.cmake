
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/ecc.cpp" "src/fault/CMakeFiles/unsync_fault.dir/ecc.cpp.o" "gcc" "src/fault/CMakeFiles/unsync_fault.dir/ecc.cpp.o.d"
  "/root/repo/src/fault/injector.cpp" "src/fault/CMakeFiles/unsync_fault.dir/injector.cpp.o" "gcc" "src/fault/CMakeFiles/unsync_fault.dir/injector.cpp.o.d"
  "/root/repo/src/fault/protection.cpp" "src/fault/CMakeFiles/unsync_fault.dir/protection.cpp.o" "gcc" "src/fault/CMakeFiles/unsync_fault.dir/protection.cpp.o.d"
  "/root/repo/src/fault/ser.cpp" "src/fault/CMakeFiles/unsync_fault.dir/ser.cpp.o" "gcc" "src/fault/CMakeFiles/unsync_fault.dir/ser.cpp.o.d"
  "/root/repo/src/fault/vulnerability.cpp" "src/fault/CMakeFiles/unsync_fault.dir/vulnerability.cpp.o" "gcc" "src/fault/CMakeFiles/unsync_fault.dir/vulnerability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/unsync_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/unsync_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/unsync_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/unsync_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/unsync_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
