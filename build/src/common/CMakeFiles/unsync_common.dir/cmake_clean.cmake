file(REMOVE_RECURSE
  "CMakeFiles/unsync_common.dir/config.cpp.o"
  "CMakeFiles/unsync_common.dir/config.cpp.o.d"
  "CMakeFiles/unsync_common.dir/log.cpp.o"
  "CMakeFiles/unsync_common.dir/log.cpp.o.d"
  "CMakeFiles/unsync_common.dir/rng.cpp.o"
  "CMakeFiles/unsync_common.dir/rng.cpp.o.d"
  "CMakeFiles/unsync_common.dir/stats.cpp.o"
  "CMakeFiles/unsync_common.dir/stats.cpp.o.d"
  "CMakeFiles/unsync_common.dir/table.cpp.o"
  "CMakeFiles/unsync_common.dir/table.cpp.o.d"
  "libunsync_common.a"
  "libunsync_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsync_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
