# Empty dependencies file for unsync_common.
# This may be replaced when dependencies are built.
