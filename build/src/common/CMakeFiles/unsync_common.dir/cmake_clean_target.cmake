file(REMOVE_RECURSE
  "libunsync_common.a"
)
