# Empty compiler generated dependencies file for unsync_mem.
# This may be replaced when dependencies are built.
