file(REMOVE_RECURSE
  "CMakeFiles/unsync_mem.dir/bus.cpp.o"
  "CMakeFiles/unsync_mem.dir/bus.cpp.o.d"
  "CMakeFiles/unsync_mem.dir/cache.cpp.o"
  "CMakeFiles/unsync_mem.dir/cache.cpp.o.d"
  "CMakeFiles/unsync_mem.dir/hierarchy.cpp.o"
  "CMakeFiles/unsync_mem.dir/hierarchy.cpp.o.d"
  "CMakeFiles/unsync_mem.dir/tlb.cpp.o"
  "CMakeFiles/unsync_mem.dir/tlb.cpp.o.d"
  "libunsync_mem.a"
  "libunsync_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsync_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
