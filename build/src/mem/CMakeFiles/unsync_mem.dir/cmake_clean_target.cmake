file(REMOVE_RECURSE
  "libunsync_mem.a"
)
