# Empty compiler generated dependencies file for unsync_cpu.
# This may be replaced when dependencies are built.
