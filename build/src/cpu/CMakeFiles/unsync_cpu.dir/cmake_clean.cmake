file(REMOVE_RECURSE
  "CMakeFiles/unsync_cpu.dir/bpred.cpp.o"
  "CMakeFiles/unsync_cpu.dir/bpred.cpp.o.d"
  "CMakeFiles/unsync_cpu.dir/ooo_core.cpp.o"
  "CMakeFiles/unsync_cpu.dir/ooo_core.cpp.o.d"
  "libunsync_cpu.a"
  "libunsync_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsync_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
