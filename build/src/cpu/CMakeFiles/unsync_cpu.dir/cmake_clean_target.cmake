file(REMOVE_RECURSE
  "libunsync_cpu.a"
)
