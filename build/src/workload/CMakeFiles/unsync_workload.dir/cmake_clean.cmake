file(REMOVE_RECURSE
  "CMakeFiles/unsync_workload.dir/kernels.cpp.o"
  "CMakeFiles/unsync_workload.dir/kernels.cpp.o.d"
  "CMakeFiles/unsync_workload.dir/phased.cpp.o"
  "CMakeFiles/unsync_workload.dir/phased.cpp.o.d"
  "CMakeFiles/unsync_workload.dir/profile.cpp.o"
  "CMakeFiles/unsync_workload.dir/profile.cpp.o.d"
  "CMakeFiles/unsync_workload.dir/stream_stats.cpp.o"
  "CMakeFiles/unsync_workload.dir/stream_stats.cpp.o.d"
  "CMakeFiles/unsync_workload.dir/synthetic.cpp.o"
  "CMakeFiles/unsync_workload.dir/synthetic.cpp.o.d"
  "CMakeFiles/unsync_workload.dir/trace.cpp.o"
  "CMakeFiles/unsync_workload.dir/trace.cpp.o.d"
  "libunsync_workload.a"
  "libunsync_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsync_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
