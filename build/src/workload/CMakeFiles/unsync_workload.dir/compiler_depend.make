# Empty compiler generated dependencies file for unsync_workload.
# This may be replaced when dependencies are built.
