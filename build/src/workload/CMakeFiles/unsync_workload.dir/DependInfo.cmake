
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/kernels.cpp" "src/workload/CMakeFiles/unsync_workload.dir/kernels.cpp.o" "gcc" "src/workload/CMakeFiles/unsync_workload.dir/kernels.cpp.o.d"
  "/root/repo/src/workload/phased.cpp" "src/workload/CMakeFiles/unsync_workload.dir/phased.cpp.o" "gcc" "src/workload/CMakeFiles/unsync_workload.dir/phased.cpp.o.d"
  "/root/repo/src/workload/profile.cpp" "src/workload/CMakeFiles/unsync_workload.dir/profile.cpp.o" "gcc" "src/workload/CMakeFiles/unsync_workload.dir/profile.cpp.o.d"
  "/root/repo/src/workload/stream_stats.cpp" "src/workload/CMakeFiles/unsync_workload.dir/stream_stats.cpp.o" "gcc" "src/workload/CMakeFiles/unsync_workload.dir/stream_stats.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/workload/CMakeFiles/unsync_workload.dir/synthetic.cpp.o" "gcc" "src/workload/CMakeFiles/unsync_workload.dir/synthetic.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/unsync_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/unsync_workload.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/unsync_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/unsync_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
