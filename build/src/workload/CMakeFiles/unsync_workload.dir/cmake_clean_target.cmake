file(REMOVE_RECURSE
  "libunsync_workload.a"
)
