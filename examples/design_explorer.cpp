// Design-space exploration: the trade study a chip architect would run
// before committing to a redundancy scheme.
//
// Sweeps UnSync CB sizes and Reunion fingerprint intervals on a chosen
// workload, combining the performance simulator with the hardware cost
// model into a single efficiency metric (throughput per watt of the full
// redundant pair), then prints the Pareto view.
//
//   ./build/examples/design_explorer [bench=susan] [insts=40000]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/factory.hpp"
#include "hwmodel/core_model.hpp"
#include "hwmodel/energy.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const Config cfg = Config::from_args(argc, argv);
  const std::string bench = cfg.get_string("bench", "susan");
  const auto insts = static_cast<std::uint64_t>(cfg.get_int("insts", 40000));
  const std::uint64_t seed = 11;

  // Every design point is built through core::make_system (the factory the
  // CLI and campaigns use) — only SystemParams varies between points.
  core::SystemConfig sys_cfg;
  sys_cfg.num_threads = 1;
  workload::SyntheticStream stream(workload::profile(bench), seed, insts);

  const double base_ipc =
      core::make_system(core::SystemKind::kBaseline, sys_cfg, stream)
          ->run()
          .thread_ipc();
  std::cout << "Workload: " << bench << " (" << insts
            << " insts), baseline IPC " << base_ipc << "\n\n";

  TextTable ut("UnSync design points (CB size sweep)");
  ut.set_header({"CB entries", "CB bytes", "IPC", "rel. perf",
                 "pair power W", "pair area mm^2", "IPC/W"});
  double best_unsync_eff = 0;
  std::string best_unsync;
  for (const std::size_t entries : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    core::SystemParams p;
    p.unsync.cb_entries = entries;
    const double ipc =
        core::make_system(core::SystemKind::kUnSync, sys_cfg, stream, p)
            ->run()
            .thread_ipc();
    const auto hw = hwmodel::unsync_core(static_cast<int>(entries));
    const double pair_power = 2 * hw.total_power_w();
    const double pair_area = 2 * hw.total_area_um2() / 1e6;
    const double eff = ipc / pair_power;
    if (eff > best_unsync_eff) {
      best_unsync_eff = eff;
      best_unsync = std::to_string(entries) + " entries";
    }
    ut.add_row({std::to_string(entries),
                std::to_string(entries * core::UnSyncParams::kCbEntryBytes),
                TextTable::num(ipc, 3), TextTable::pct(ipc / base_ipc),
                TextTable::num(pair_power, 3), TextTable::num(pair_area, 3),
                TextTable::num(eff, 4)});
  }
  ut.print(std::cout);
  std::cout << "\n";

  TextTable rt("Reunion design points (FI sweep, latency = FI + 10)");
  rt.set_header({"FI", "CSB entries", "IPC", "rel. perf", "pair power W",
                 "pair area mm^2", "IPC/W"});
  double best_reunion_eff = 0;
  for (const unsigned fi : {1u, 5u, 10u, 20u, 30u, 50u}) {
    core::SystemParams p;
    p.reunion.fingerprint_interval = fi;
    p.reunion.compare_latency = fi + 10;
    const double ipc =
        core::make_system(core::SystemKind::kReunion, sys_cfg, stream, p)
            ->run()
            .thread_ipc();
    const auto hw = hwmodel::reunion_core(static_cast<int>(fi));
    const double pair_power = 2 * hw.total_power_w();
    const double pair_area = 2 * hw.total_area_um2() / 1e6;
    const double eff = ipc / pair_power;
    best_reunion_eff = std::max(best_reunion_eff, eff);
    rt.add_row({std::to_string(fi),
                std::to_string(hwmodel::csb_entries_for_fi(
                    static_cast<int>(fi))),
                TextTable::num(ipc, 3), TextTable::pct(ipc / base_ipc),
                TextTable::num(pair_power, 3), TextTable::num(pair_area, 3),
                TextTable::num(eff, 4)});
  }
  rt.print(std::cout);

  // Whole-run energy comparison at the default points.
  {
    core::SystemParams p;
    p.unsync.cb_entries = 128;
    const auto ru =
        core::make_system(core::SystemKind::kUnSync, sys_cfg, stream, p)
            ->run();
    const auto rr =
        core::make_system(core::SystemKind::kReunion, sys_cfg, stream)->run();
    const auto eu = hwmodel::energy_for_run(hwmodel::unsync_core(128), 2,
                                            ru.cycles, insts);
    const auto er = hwmodel::energy_for_run(hwmodel::reunion_core(10), 2,
                                            rr.cycles, insts);
    TextTable et("Whole-run energy (redundant pair @300MHz)");
    et.set_header({"design", "runtime ms", "energy mJ", "nJ/inst",
                   "EDP (uJ*s)"});
    et.add_row({"unsync", TextTable::num(eu.runtime_s * 1e3, 3),
                TextTable::num(eu.energy_j * 1e3, 3),
                TextTable::num(eu.energy_per_inst_nj, 2),
                TextTable::num(eu.edp * 1e9, 3)});
    et.add_row({"reunion", TextTable::num(er.runtime_s * 1e3, 3),
                TextTable::num(er.energy_j * 1e3, 3),
                TextTable::num(er.energy_per_inst_nj, 2),
                TextTable::num(er.edp * 1e9, 3)});
    et.print(std::cout);
    std::cout << "UnSync EDP advantage: "
              << TextTable::num(er.edp / eu.edp, 2) << "x\n";
  }

  std::cout << "\nBest UnSync point: " << best_unsync << " at "
            << TextTable::num(best_unsync_eff, 4)
            << " IPC/W — vs best Reunion "
            << TextTable::num(best_reunion_eff, 4) << " IPC/W ("
            << TextTable::num(best_unsync_eff / best_reunion_eff, 2)
            << "x).\n"
            << "This is the design decision Table III supports: for "
               "many-core parts, the per-core overhead gap compounds.\n";
  return 0;
}
