// SPEC2000/MiBench-style campaign: run every built-in benchmark profile
// through all three architectures and print a publication-style summary —
// the workload the paper's evaluation section is built on.
//
// The (benchmark x architecture) grid fans out across host threads via
// runtime::CampaignRunner; rows aggregate in submission order, so the
// table is byte-identical whatever threads= says.
//
//   ./build/examples/spec_campaign [insts=50000] [seed=7] [fi=10] [cb=256]
//                                  [threads=<host workers, default cores>]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "runtime/campaign.hpp"
#include "workload/profile.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const Config cfg = Config::from_args(argc, argv);
  const auto insts = static_cast<std::uint64_t>(cfg.get_int("insts", 50000));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));

  runtime::SimJob base;
  base.insts = insts;
  base.seed = seed;  // every profile/system cell runs the same-seed stream
  base.params.unsync.cb_entries = static_cast<std::size_t>(cfg.get_int("cb", 256));
  base.params.reunion.fingerprint_interval =
      static_cast<unsigned>(cfg.get_int("fi", 10));

  constexpr runtime::SystemKind kSystems[] = {runtime::SystemKind::kBaseline,
                                              runtime::SystemKind::kUnSync,
                                              runtime::SystemKind::kReunion};
  const auto& profiles = workload::all_profiles();
  std::vector<runtime::SimJob> jobs;
  jobs.reserve(profiles.size() * 3);
  for (const auto& prof : profiles) {
    for (const auto kind : kSystems) {
      runtime::SimJob job = base;
      job.label = prof.name;
      job.profile = prof.name;
      job.system = kind;
      jobs.push_back(std::move(job));
    }
  }

  runtime::CampaignRunner::Options opts;
  opts.threads = static_cast<unsigned>(cfg.get_int("threads", 0));
  opts.campaign_seed = seed;
  const auto out = runtime::CampaignRunner(opts).run(jobs);
  cfg.report_unused("spec_campaign");  // warn on misspelled knobs

  TextTable t("Per-benchmark IPC across architectures (" +
              std::to_string(insts) + " insts)");
  t.set_header({"benchmark", "suite", "baseline", "unsync", "reunion",
                "unsync ovh%", "reunion ovh%", "unsync/reunion"});

  double gain_best = 0;
  std::string gain_bench;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& prof = profiles[i];
    const double b = out.results[i * 3 + 0].thread_ipc();
    const double u = out.results[i * 3 + 1].thread_ipc();
    const double r = out.results[i * 3 + 2].thread_ipc();

    if (u / r > gain_best) {
      gain_best = u / r;
      gain_bench = prof.name;
    }
    t.add_row({prof.name, prof.suite, TextTable::num(b, 3),
               TextTable::num(u, 3), TextTable::num(r, 3),
               TextTable::num((b - u) / b * 100, 1),
               TextTable::num((b - r) / b * 100, 1),
               TextTable::num(u / r, 3)});
  }
  t.print(std::cout);
  std::cout << "\nLargest UnSync advantage: " << gain_bench << " ("
            << TextTable::num((gain_best - 1) * 100, 1)
            << "% faster than Reunion). The paper reports up to 20%.\n";
  std::cerr << "[campaign] " << jobs.size() << " jobs, "
            << out.total_instructions() << " simulated instructions in "
            << TextTable::num(out.wall_seconds, 2) << "s\n";
  return 0;
}
