// SPEC2000/MiBench-style campaign: run every built-in benchmark profile
// through all three architectures and print a publication-style summary —
// the workload the paper's evaluation section is built on.
//
//   ./build/examples/spec_campaign [insts=50000] [seed=7] [fi=10] [cb=256]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/baseline.hpp"
#include "core/reunion_system.hpp"
#include "core/unsync_system.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const Config cfg = Config::from_args(argc, argv);
  const auto insts = static_cast<std::uint64_t>(cfg.get_int("insts", 50000));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));

  core::SystemConfig sys_cfg;
  sys_cfg.num_threads = 1;
  core::UnSyncParams up;
  up.cb_entries = static_cast<std::size_t>(cfg.get_int("cb", 256));
  core::ReunionParams rp;
  rp.fingerprint_interval =
      static_cast<unsigned>(cfg.get_int("fi", 10));

  TextTable t("Per-benchmark IPC across architectures (" +
              std::to_string(insts) + " insts)");
  t.set_header({"benchmark", "suite", "baseline", "unsync", "reunion",
                "unsync ovh%", "reunion ovh%", "unsync/reunion"});

  double gain_best = 0;
  std::string gain_bench;
  for (const auto& prof : workload::all_profiles()) {
    workload::SyntheticStream stream(prof, seed, insts);

    core::BaselineSystem base(sys_cfg, stream);
    const double b = base.run().thread_ipc();
    core::UnSyncSystem us(sys_cfg, up, stream);
    const double u = us.run().thread_ipc();
    core::ReunionSystem re(sys_cfg, rp, stream);
    const double r = re.run().thread_ipc();

    if (u / r > gain_best) {
      gain_best = u / r;
      gain_bench = prof.name;
    }
    t.add_row({prof.name, prof.suite, TextTable::num(b, 3),
               TextTable::num(u, 3), TextTable::num(r, 3),
               TextTable::num((b - u) / b * 100, 1),
               TextTable::num((b - r) / b * 100, 1),
               TextTable::num(u / r, 3)});
  }
  t.print(std::cout);
  std::cout << "\nLargest UnSync advantage: " << gain_bench << " ("
            << TextTable::num((gain_best - 1) * 100, 1)
            << "% faster than Reunion). The paper reports up to 20%.\n";
  return 0;
}
