# FNV-style hash over an embedded string; demonstrates .ascii, lb, and the
# pseudo-instructions. Emits the 64-bit hash.
  msg:
    .ascii "the quick brown fox jumps over the lazy dog"
  msg_end:
    .align 8
    la   r10, msg
    la   r11, msg_end
    la   r12, 0x1000193       # FNV-32 prime (fits la's 27-bit reach)
    la   r4, 0x23456          # offset basis
  loop:
    bge  r10, r11, done
    lb   r20, 0(r10)
    xor  r4, r4, r20
    mul  r4, r4, r12
    addi r10, r10, 1
    j    loop
  done:
    li   r1, 1
    mv   r2, r4
    syscall
    halt
