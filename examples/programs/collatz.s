# Longest Collatz chain for seeds 1..200: emits (best_seed, best_length).
    li   r10, 200           # max seed
    li   r15, 0             # best length
    li   r16, 0             # best seed
    li   r11, 1             # seed
  seeds:
    mv   r20, r11           # x = seed
    li   r21, 0             # len
  chain:
    li   r22, 1
    beq  r20, r22, chain_done
    andi r23, r20, 1
    bne  r23, r0, odd
    li   r24, 2
    div  r20, r20, r24      # x /= 2
    j    next
  odd:
    li   r24, 3
    mul  r20, r20, r24
    addi r20, r20, 1        # x = 3x + 1
  next:
    addi r21, r21, 1
    j    chain
  chain_done:
    bge  r15, r21, not_best
    mv   r15, r21
    mv   r16, r11
  not_best:
    addi r11, r11, 1
    bge  r10, r11, seeds
    li   r1, 1
    mv   r2, r16
    syscall
    mv   r2, r15
    syscall
    halt
