# Dot product of two 64-element vectors, emitted via the syscall channel.
# Run:  unsync_sim asm program=examples/programs/dot_product.s
#       unsync_sim run system=unsync program=examples/programs/dot_product.s
  a:
    .space 512
  b:
    .space 512
    li   r10, 64          # n
    # init: a[i] = i + 1, b[i] = 2*i + 1
    li   r11, 0
  init:
    slli r20, r11, 3
    la   r21, a
    add  r21, r21, r20
    addi r22, r11, 1
    st   r22, 0(r21)
    la   r21, b
    add  r21, r21, r20
    slli r22, r11, 1
    addi r22, r22, 1
    st   r22, 0(r21)
    addi r11, r11, 1
    blt  r11, r10, init
    # dot = sum a[i]*b[i]
    li   r11, 0
    li   r4, 0
  dot:
    slli r20, r11, 3
    la   r21, a
    add  r21, r21, r20
    ld   r22, 0(r21)
    la   r21, b
    add  r21, r21, r20
    ld   r23, 0(r21)
    mul  r24, r22, r23
    add  r4, r4, r24
    addi r11, r11, 1
    blt  r11, r10, dot
    li   r1, 1
    mv   r2, r4
    syscall
    halt
