// Quickstart: the whole pipeline in one file.
//
//   1. Assemble a URISC program (checksum over an array).
//   2. Execute it on the golden-model functional simulator.
//   3. Record its dynamic trace and replay it through the baseline CMP and
//      the UnSync redundant architecture, with soft errors injected into
//      the UnSync run.
//
// Build & run:  ./build/examples/quickstart [insts=...] [ser=1e-4]
#include <iostream>

#include "common/config.hpp"
#include "core/factory.hpp"
#include "core/report.hpp"
#include "isa/assembler.hpp"
#include "isa/functional_sim.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const Config cfg = Config::from_args(argc, argv);
  const double ser = cfg.get_double("ser", 1e-4);

  // 1. Assemble. The program fills an array with i*i and folds it into a
  //    checksum that it emits through the syscall channel.
  const char* source = R"(
  data:
    .space 2048
    addi r10, r0, 256       # n
    addi r11, r0, 0         # i
    la   r20, data
  fill:
    mul  r1, r11, r11
    slli r2, r11, 3
    add  r3, r20, r2
    st   r1, 0(r3)
    addi r11, r11, 1
    blt  r11, r10, fill
    addi r11, r0, 0
    addi r4, r0, 0          # checksum
  sum:
    slli r2, r11, 3
    add  r3, r20, r2
    ld   r1, 0(r3)
    xor  r4, r4, r1
    add  r4, r4, r11
    addi r11, r11, 1
    blt  r11, r10, sum
    addi r1, r0, 1          # emit checksum
    add  r2, r0, r4
    syscall
    halt
  )";
  const isa::Program program = isa::Assembler::assemble(source);
  std::cout << "Assembled " << program.code.size() << " instructions, "
            << program.data.size() << " data bytes.\n";

  // 2. Golden-model run.
  isa::FunctionalSim golden(program);
  golden.run(1'000'000);
  std::cout << "Functional simulation retired " << golden.retired()
            << " instructions; checksum = " << golden.output().at(0) << "\n";

  // 3. Timing runs over the recorded trace.
  workload::TraceStream trace(workload::record_trace(program, 1'000'000));

  // Systems are built through core::make_system — the same factory the CLI
  // and campaign runner use — so this example stays in lockstep with them.
  core::SystemConfig sys_cfg;
  sys_cfg.num_threads = 1;
  const auto baseline =
      core::make_system(core::SystemKind::kBaseline, sys_cfg, trace);
  const core::RunResult rb = baseline->run();
  std::cout << "\nBaseline CMP:   " << rb.cycles << " cycles, IPC "
            << rb.thread_ipc() << "\n";

  sys_cfg.ser_per_inst = ser;
  core::SystemParams params;
  params.unsync.cb_entries = 128;  // 2 KiB CB
  const auto unsync =
      core::make_system(core::SystemKind::kUnSync, sys_cfg, trace, params);
  const core::RunResult ru = unsync->run();
  std::cout << "UnSync (pair):  " << ru.cycles << " cycles, IPC "
            << ru.thread_ipc() << " at SER " << ser << "/inst\n"
            << "                errors injected: " << ru.errors_injected
            << ", forward recoveries: " << ru.recoveries
            << ", recovery cycles: " << ru.recovery_cycles_total << "\n";

  const double overhead =
      (rb.thread_ipc() - ru.thread_ipc()) / rb.thread_ipc() * 100.0;
  std::cout << "\nUnSync redundancy overhead vs baseline: " << overhead
            << "% (errors are survived; the baseline would silently "
               "corrupt).\n";

  if (cfg.get_bool("verbose", false)) {
    std::cout << "\n";
    core::RunReport(ru, &unsync->memory()).print(std::cout);
  } else {
    std::cout << "(run with verbose=1 for the full per-core and memory "
                 "report)\n";
  }
  return 0;
}
