// Checkpoint / resume walkthrough (docs/CHECKPOINTS.md in one file):
//
//   1. Run an UnSync system to completion — the ground truth.
//   2. Run an identical system partway, snapshot it to a file, and drop it
//      (simulating a crash or a preempted batch slot).
//   3. Construct a fresh system, restore the snapshot, finish the run, and
//      verify the result is bit-identical to the uninterrupted one.
//   4. Run a small campaign with a crash-safe job journal, "kill" it by
//      abandoning it halfway, then resume — again byte-identical output.
//
// Build & run:  ./build/examples/checkpoint_resume [insts=...] [ser=1e-5]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/factory.hpp"
#include "core/system.hpp"
#include "runtime/campaign.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const Config cfg = Config::from_args(argc, argv);
  const auto insts = static_cast<std::uint64_t>(cfg.get_int("insts", 20000));
  const double ser = cfg.get_double("ser", 1e-5);

  core::SystemConfig sys_cfg;
  sys_cfg.num_threads = 2;
  sys_cfg.ser_per_inst = ser;
  sys_cfg.seed = 42;
  const auto make = [&] {
    workload::SyntheticStream stream(workload::profile("gzip"), sys_cfg.seed,
                                     insts);
    return core::make_system(core::SystemKind::kUnSync, sys_cfg, stream);
  };

  // 1. Ground truth: one uninterrupted run.
  const core::RunResult full = make()->run();
  std::cout << "uninterrupted run: " << full.cycles << " cycles, "
            << full.errors_injected << " errors injected\n";

  // 2. Interrupted twin: simulate to 50%, save, "crash".
  const std::string ckpt_path = "checkpoint_resume_example.ckpt";
  {
    auto sys = make();
    sys->run(full.cycles / 2);
    sys->save_checkpoint_file(ckpt_path);
    std::cout << "snapshotted at cycle " << full.cycles / 2 << " -> "
              << ckpt_path << "\n";
  }  // the half-finished system is destroyed here

  // 3. A fresh process would do exactly this: rebuild the identical system,
  //    restore, finish.
  auto resumed = make();
  resumed->load_checkpoint_file(ckpt_path);
  const core::RunResult after = resumed->run();
  std::cout << "resumed run:       " << after.cycles << " cycles, "
            << after.errors_injected << " errors injected\n";
  std::cout << (after.to_json() == full.to_json()
                    ? "OK: resumed result is bit-identical\n"
                    : "MISMATCH: resumed result differs!\n");
  std::remove(ckpt_path.c_str());

  // 4. Crash-safe campaign: journal every job, abandon the first attempt
  //    after a partial journal, resume the rest.
  std::vector<runtime::SimJob> jobs;
  for (const char* bench : {"gzip", "mcf", "susan"}) {
    for (const auto kind :
         {runtime::SystemKind::kBaseline, runtime::SystemKind::kUnSync}) {
      runtime::SimJob job;
      job.label = bench;
      job.profile = bench;
      job.system = kind;
      job.insts = insts / 4;
      job.ser_per_inst = ser;
      jobs.push_back(std::move(job));
    }
  }
  const std::string journal = "checkpoint_resume_example.jsonl";
  runtime::CampaignRunner::Options opts;
  opts.threads = 2;
  opts.journal = journal;
  const auto reference = runtime::CampaignRunner(opts).run(jobs);

  // Truncate the journal to its first four lines — what a SIGKILL after
  // three completed jobs would leave behind (the header plus three entries).
  {
    std::string partial;
    std::size_t newlines = 0;
    std::ifstream in(journal);
    for (std::string line; std::getline(in, line) && newlines < 4;) {
      partial += line;
      partial += '\n';
      ++newlines;
    }
    std::ofstream out(journal, std::ios::trunc);
    out << partial;
  }

  runtime::CampaignRunner::Options resume_opts = opts;
  resume_opts.threads = 4;  // a different worker count on purpose
  resume_opts.resume = true;
  const auto resumed_out = runtime::CampaignRunner(resume_opts).run(jobs);
  std::cout << "campaign resumed from a 3-job journal: "
            << (resumed_out.to_json() == reference.to_json()
                    ? "OK: byte-identical output\n"
                    : "MISMATCH: campaign output differs!\n");
  std::remove(journal.c_str());

  return 0;
}
