// Execution-driven campaign: records every kernel of the standard URISC
// suite from the golden model, optionally caches the traces on disk (the
// UTRC format), and replays them through all five architectures — the
// complete §II landscape on real programs rather than statistical streams.
//
//   ./build/examples/kernel_campaign [save_traces=0] [verbose=0]
#include <filesystem>
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/baseline.hpp"
#include "core/related_work.hpp"
#include "core/report.hpp"
#include "core/reunion_system.hpp"
#include "core/unsync_system.hpp"
#include "workload/kernels.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const Config cfg = Config::from_args(argc, argv);
  const bool save = cfg.get_bool("save_traces", false);
  const bool verbose = cfg.get_bool("verbose", false);

  core::SystemConfig sys_cfg;
  sys_cfg.num_threads = 1;
  core::UnSyncParams up;
  up.cb_entries = 128;

  TextTable t("URISC kernel suite across architectures (per-thread IPC)");
  t.set_header({"kernel", "insts", "baseline", "lockstep", "checkpoint",
                "reunion", "unsync"});

  for (const auto& kernel : workload::standard_kernel_suite()) {
    auto ops = workload::record_trace(workload::assemble(kernel), 3'000'000);
    if (save) {
      const auto path =
          std::filesystem::temp_directory_path() / (kernel.name + ".utrc");
      workload::save_trace(path.string(), ops);
      std::cout << "saved " << path.string() << " (" << ops.size()
                << " ops)\n";
    }
    workload::TraceStream trace(std::move(ops));

    core::BaselineSystem base(sys_cfg, trace);
    core::LockstepSystem lock(sys_cfg, core::LockstepParams{}, trace);
    core::DmrCheckpointSystem check(sys_cfg, core::CheckpointParams{}, trace);
    core::ReunionSystem reunion(sys_cfg, core::ReunionParams{}, trace);
    core::UnSyncSystem unsync_sys(sys_cfg, up, trace);

    const auto rb = base.run();
    const auto rl = lock.run();
    const auto rc = check.run();
    const auto rr = reunion.run();
    const auto ru = unsync_sys.run();

    t.add_row({kernel.name, std::to_string(trace.length()),
               TextTable::num(rb.thread_ipc(), 3),
               TextTable::num(rl.thread_ipc(), 3),
               TextTable::num(rc.thread_ipc(), 3),
               TextTable::num(rr.thread_ipc(), 3),
               TextTable::num(ru.thread_ipc(), 3)});
    if (verbose) {
      core::RunReport(ru, &unsync_sys.memory()).print(std::cout);
      std::cout << "\n";
    }
  }
  t.print(std::cout);

  std::cout << "\nNote the membar_ping row: a barrier-bound loop is the "
               "worst case for Reunion's\nserializing synchronisation and "
               "leaves UnSync (which never synchronises) untouched.\n";
  return 0;
}
