// Execution-driven campaign: records every kernel of the standard URISC
// suite from the golden model, optionally caches the traces on disk (the
// UTRC format), and replays them through all five architectures — the
// complete §II landscape on real programs rather than statistical streams.
//
// The (kernel x architecture) grid runs across host threads; each kernel's
// trace is recorded once and shared (immutable) by its five jobs.
//
//   ./build/examples/kernel_campaign [save_traces=0] [verbose=0]
//                                    [threads=<host workers>]
#include <filesystem>
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/report.hpp"
#include "runtime/campaign.hpp"
#include "runtime/thread_pool.hpp"
#include "workload/kernels.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const Config cfg = Config::from_args(argc, argv);
  const bool save = cfg.get_bool("save_traces", false);
  const bool verbose = cfg.get_bool("verbose", false);
  const auto threads = static_cast<unsigned>(cfg.get_int("threads", 0));

  runtime::SimJob base;
  base.params.unsync.cb_entries = 128;
  base.seed = 42;  // traces carry their own determinism; systems see ser=0

  constexpr runtime::SystemKind kSystems[] = {
      runtime::SystemKind::kBaseline, runtime::SystemKind::kLockstep,
      runtime::SystemKind::kCheckpoint, runtime::SystemKind::kReunion,
      runtime::SystemKind::kUnSync};
  const auto suite = workload::standard_kernel_suite();

  // Record every kernel's trace concurrently (the golden-model runs are
  // independent), then share each trace across that kernel's five jobs.
  std::vector<std::shared_ptr<const std::vector<workload::DynOp>>> traces(
      suite.size());
  {
    runtime::ThreadPool pool(threads);
    pool.parallel_for(suite.size(), [&](std::size_t i) {
      traces[i] = std::make_shared<const std::vector<workload::DynOp>>(
          workload::record_trace(workload::assemble(suite[i]), 3'000'000));
    });
  }
  if (save) {
    for (std::size_t i = 0; i < suite.size(); ++i) {
      const auto path = std::filesystem::temp_directory_path() /
                        (suite[i].name + ".utrc");
      workload::save_trace(path.string(), *traces[i]);
      std::cout << "saved " << path.string() << " (" << traces[i]->size()
                << " ops)\n";
    }
  }

  std::vector<runtime::SimJob> jobs;
  jobs.reserve(suite.size() * 5);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (const auto kind : kSystems) {
      runtime::SimJob job = base;
      job.label = suite[i].name;
      job.trace = traces[i];
      job.system = kind;
      jobs.push_back(std::move(job));
    }
  }

  runtime::CampaignRunner::Options opts;
  opts.threads = threads;
  opts.campaign_seed = 42;
  const auto out = runtime::CampaignRunner(opts).run(jobs);
  cfg.report_unused("kernel_campaign");

  TextTable t("URISC kernel suite across architectures (per-thread IPC)");
  t.set_header({"kernel", "insts", "baseline", "lockstep", "checkpoint",
                "reunion", "unsync"});
  for (std::size_t i = 0; i < suite.size(); ++i) {
    std::vector<std::string> row = {suite[i].name,
                                    std::to_string(traces[i]->size())};
    for (std::size_t s = 0; s < 5; ++s) {
      row.push_back(TextTable::num(out.results[i * 5 + s].thread_ipc(), 3));
    }
    t.add_row(row);
    if (verbose) {
      core::RunReport(out.results[i * 5 + 4]).print(std::cout);
      std::cout << "\n";
    }
  }
  t.print(std::cout);

  std::cout << "\nNote the membar_ping row: a barrier-bound loop is the "
               "worst case for Reunion's\nserializing synchronisation and "
               "leaves UnSync (which never synchronises) untouched.\n";
  std::cerr << "[campaign] " << jobs.size() << " jobs, "
            << out.total_instructions() << " simulated instructions in "
            << TextTable::num(out.wall_seconds, 2) << "s\n";
  return 0;
}
