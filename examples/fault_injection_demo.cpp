// Fault-injection walkthrough on a real program.
//
// Runs a matrix-multiply kernel on the golden model, then injects single-bit
// faults under three protection plans and both L1 write policies, printing
// what each architecture would have done with the strike — including the
// paper's Figure-2 write-back hazard.
//
//   ./build/examples/fault_injection_demo [trials=300] [seed=1]
//                                         [threads=<host workers>]
//                                         [metrics=1]  (dump the metric tree)
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "fault/injector.hpp"
#include "isa/assembler.hpp"
#include "isa/functional_sim.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace {

const char* kMatMulSource = R"(
  # 8x8 integer matrix multiply: C = A * B, then emit the trace of C.
  a:
    .space 512
  b:
    .space 512
  c:
    .space 512
    addi r10, r0, 8        # n
    # initialise A[i][j] = i + j, B[i][j] = i - j
    addi r11, r0, 0        # i
  init_i:
    addi r12, r0, 0        # j
  init_j:
    mul  r1, r11, r10
    add  r1, r1, r12
    slli r1, r1, 3         # offset
    la   r2, a
    add  r2, r2, r1
    add  r3, r11, r12
    st   r3, 0(r2)
    la   r2, b
    add  r2, r2, r1
    sub  r3, r11, r12
    st   r3, 0(r2)
    addi r12, r12, 1
    blt  r12, r10, init_j
    addi r11, r11, 1
    blt  r11, r10, init_i
    # multiply
    addi r11, r0, 0        # i
  mul_i:
    addi r12, r0, 0        # j
  mul_j:
    addi r13, r0, 0        # k
    addi r14, r0, 0        # acc
  mul_k:
    mul  r1, r11, r10
    add  r1, r1, r13
    slli r1, r1, 3
    la   r2, a
    add  r2, r2, r1
    ld   r3, 0(r2)         # A[i][k]
    mul  r1, r13, r10
    add  r1, r1, r12
    slli r1, r1, 3
    la   r2, b
    add  r2, r2, r1
    ld   r4, 0(r2)         # B[k][j]
    mul  r5, r3, r4
    add  r14, r14, r5
    addi r13, r13, 1
    blt  r13, r10, mul_k
    mul  r1, r11, r10
    add  r1, r1, r12
    slli r1, r1, 3
    la   r2, c
    add  r2, r2, r1
    st   r14, 0(r2)
    addi r12, r12, 1
    blt  r12, r10, mul_j
    addi r11, r11, 1
    blt  r11, r10, mul_i
    # emit trace(C) = sum of diagonal
    addi r11, r0, 0
    addi r4, r0, 0
  trace:
    mul  r1, r11, r10
    add  r1, r1, r11
    slli r1, r1, 3
    la   r2, c
    add  r2, r2, r1
    ld   r3, 0(r2)
    add  r4, r4, r3
    addi r11, r11, 1
    blt  r11, r10, trace
    addi r1, r0, 1
    add  r2, r0, r4
    syscall
    halt
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace unsync;
  using namespace unsync::fault;
  const Config cfg = Config::from_args(argc, argv);

  const isa::Program prog = isa::Assembler::assemble(kMatMulSource);
  isa::FunctionalSim golden(prog);
  golden.run(1'000'000);
  std::cout << "Golden run: " << golden.retired()
            << " instructions, trace(C) = " << golden.output().at(0)
            << "\n\n";

  InjectionConfig icfg;
  icfg.trials = static_cast<std::uint64_t>(cfg.get_int("trials", 300));
  icfg.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

  TextTable t("Single-bit fault outcomes (" + std::to_string(icfg.trials) +
              " trials per row)");
  t.set_header({"plan", "L1 policy", "masked", "corrected", "recovered",
                "unrecoverable", "SDC"});

  // The four campaigns are independent Monte-Carlo runs: execute them
  // concurrently, then add the rows in declaration order.
  struct RowSpec {
    ProtectionPlan plan;
    bool write_through;
    const char* policy;
  };
  const RowSpec specs[] = {
      {unsync_plan(), true, "write-through"},
      {unsync_plan(), false, "write-back (Fig.2)"},
      {reunion_plan(), true, "write-through"},
      {baseline_plan(), true, "write-through"},
  };
  // metrics=1 demonstrates the injector's observability hook: one registry
  // per campaign (single-owner during the run), snapshots merged after.
  const bool want_metrics = cfg.get_bool("metrics", false);
  std::vector<CampaignResult> results(std::size(specs));
  std::vector<obs::MetricsSnapshot> row_metrics(std::size(specs));
  runtime::ThreadPool pool(
      static_cast<unsigned>(cfg.get_int("threads", 0)));
  pool.parallel_for(std::size(specs), [&](std::size_t i) {
    InjectionConfig row_cfg = icfg;
    row_cfg.l1_write_through = specs[i].write_through;
    if (want_metrics) {
      obs::MetricsRegistry reg;
      results[i] = run_campaign(prog, specs[i].plan, row_cfg, &reg);
      row_metrics[i] = reg.snapshot();
    } else {
      results[i] = run_campaign(prog, specs[i].plan, row_cfg);
    }
  });
  cfg.report_unused("fault_injection_demo");

  for (std::size_t i = 0; i < std::size(specs); ++i) {
    const auto& r = results[i];
    t.add_row({specs[i].plan.name, specs[i].policy, std::to_string(r.masked),
               std::to_string(r.corrected_in_place),
               std::to_string(r.recovered), std::to_string(r.unrecoverable),
               std::to_string(r.sdc)});
    if (r.recovery_failures != 0) {
      std::cerr << "MODEL BUG: " << r.recovery_failures
                << " recoveries diverged from golden\n";
    }
  }
  t.print(std::cout);

  if (want_metrics) {
    obs::MetricsSnapshot merged;
    for (const auto& snap : row_metrics) merged.merge(snap);
    std::cout << "\nMerged campaign metrics (unsync.metrics.v1):\n"
              << merged.to_json(2) << "\n";
  }

  std::cout << "\nReading the table:\n"
            << "  * unsync + write-through: every strike is masked or "
               "recovered — zero SDC.\n"
            << "  * unsync + write-back: detected strikes on dirty lines "
               "have no clean copy -> unrecoverable (the paper's Fig. 2 "
               "argument for write-through L1s).\n"
            << "  * reunion: strikes on post-commit state (register file) "
               "escape the fingerprint -> SDC.\n"
            << "  * baseline: whatever is not masked is silent data "
               "corruption.\n";
  return 0;
}
