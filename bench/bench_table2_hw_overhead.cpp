// Table II: hardware overhead comparison (area / power per core) between
// the baseline MIPS, Reunion and UnSync configurations at 65 nm / 300 MHz.
#include <iostream>

#include "bench_util.hpp"
#include "hwmodel/core_model.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  using namespace unsync::hwmodel;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Table II: hardware overhead comparison", args);

  const CoreHw mips = mips_baseline();
  const CoreHw reunion = reunion_core(10);
  const CoreHw unsync = unsync_core(10);

  auto um2 = [](double v) { return TextTable::num(v, 0); };
  auto mm2 = [](double v) { return TextTable::num(v / 1e6, 4); };
  auto watts = [](double v) { return TextTable::num(v, 3); };
  auto mw = [](double v) { return TextTable::num(v * 1e3, 2); };

  TextTable t("Chip-area overhead");
  t.set_header({"Parameter", "Basic MIPS", "Reunion", "UnSync"});
  t.add_row({"Core (um^2)", um2(mips.core_area_um2), um2(reunion.core_area_um2),
             um2(unsync.core_area_um2)});
  t.add_row({"L1 cache (mm^2)", mm2(mips.l1_area_um2),
             mm2(reunion.l1_area_um2), mm2(unsync.l1_area_um2)});
  t.add_row({"CB (mm^2)", "N/A", "N/A", mm2(unsync.cb_area_um2)});
  t.add_row({"Total area (um^2)", um2(mips.total_area_um2()),
             um2(reunion.total_area_um2()), um2(unsync.total_area_um2())});
  t.add_row({"Overhead (%)", "N/A",
             TextTable::num(reunion.area_overhead_vs(mips) * 100, 2),
             TextTable::num(unsync.area_overhead_vs(mips) * 100, 2)});
  t.print(std::cout);
  std::cout << "\n";

  TextTable p("Power overhead");
  p.set_header({"Parameter", "Basic MIPS", "Reunion", "UnSync"});
  p.add_row({"Core (W)", watts(mips.core_power_w), watts(reunion.core_power_w),
             watts(unsync.core_power_w)});
  p.add_row({"L1 cache (mW)", mw(mips.l1_power_w), mw(reunion.l1_power_w),
             mw(unsync.l1_power_w)});
  p.add_row({"CB (mW)", "N/A", "N/A", mw(unsync.cb_power_w)});
  p.add_row({"Total power (W)", watts(mips.total_power_w()),
             watts(reunion.total_power_w()), watts(unsync.total_power_w())});
  p.add_row({"Overhead (%)", "N/A",
             TextTable::num(reunion.power_overhead_vs(mips) * 100, 2),
             TextTable::num(unsync.power_overhead_vs(mips) * 100, 2)});
  p.print(std::cout);

  bench::print_shape_note(
      "paper Table II: Reunion +20.77% area / +74.79% power; UnSync +7.45% "
      "area / +40.34% power; i.e. UnSync costs 13.32 area points and 34.5 "
      "power points less than Reunion at the same reliability.");
  return 0;
}
