// Figure 4: performance overhead from serializing instructions.
//
// For every benchmark: per-thread IPC of the baseline CMP, Reunion (FI=10)
// and UnSync, plus each redundant scheme's overhead relative to baseline.
// The paper reports Reunion averaging ~8% (bzip2/ammp/galgel above 10%,
// galgel worst due to ROB pressure) while UnSync stays around 2%.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 4: serializing-instruction overhead", args);

  core::UnSyncParams up;
  up.cb_entries = 256;  // 4 KiB CB: isolate the serializing effect
  core::ReunionParams rp;
  rp.fingerprint_interval = 10;  // "smaller the better for Reunion"
  rp.compare_latency = 10;

  TextTable t;
  t.set_header({"Benchmark", "serializing%", "base IPC", "Reunion IPC",
                "UnSync IPC", "Reunion ovh%", "UnSync ovh%"});

  // Grid: (benchmark x {baseline, reunion, unsync}) across host workers.
  const auto& profiles = workload::all_profiles();
  std::vector<runtime::SimJob> jobs;
  jobs.reserve(profiles.size() * 3);
  for (const auto& prof : profiles) {
    auto b = bench::sim_job(args, prof.name, runtime::SystemKind::kBaseline);
    auto r = bench::sim_job(args, prof.name, runtime::SystemKind::kReunion);
    r.params.reunion = rp;
    auto u = bench::sim_job(args, prof.name, runtime::SystemKind::kUnSync);
    u.params.unsync = up;
    jobs.push_back(std::move(b));
    jobs.push_back(std::move(r));
    jobs.push_back(std::move(u));
  }
  const auto grid = bench::run_grid(args, jobs);
  bench::maybe_dump_json(args, grid);

  double reunion_sum = 0, unsync_sum = 0;
  int n = 0;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& prof = profiles[i];
    const double base = grid.results[i * 3 + 0].thread_ipc();
    const double reunion = grid.results[i * 3 + 1].thread_ipc();
    const double unsync = grid.results[i * 3 + 2].thread_ipc();
    const double r_ovh = (base - reunion) / base * 100.0;
    const double u_ovh = (base - unsync) / base * 100.0;
    reunion_sum += r_ovh;
    unsync_sum += u_ovh;
    ++n;
    t.add_row({prof.name, TextTable::num(prof.mix.serializing * 100, 1),
               TextTable::num(base, 3), TextTable::num(reunion, 3),
               TextTable::num(unsync, 3), TextTable::num(r_ovh, 1),
               TextTable::num(u_ovh, 1)});
  }
  t.add_row({"AVERAGE", "", "", "", "", TextTable::num(reunion_sum / n, 1),
             TextTable::num(unsync_sum / n, 1)});
  t.print(std::cout);

  bench::print_shape_note(
      "paper Fig. 4: Reunion averages ~8% overhead, exceeding 10% on the "
      "serializing-heavy bzip2 (2%), ammp (1.7%) and galgel (1%, worst via "
      "ROB occupancy); UnSync stays ~2% everywhere.");
  return 0;
}
