// Shared plumbing for the table/figure harnesses.
//
// Every bench binary regenerates one table or figure of the paper. Output
// is a TextTable whose rows mirror the paper's rows/series, plus a short
// PAPER-SHAPE note stating what to compare against the publication.
// Common knobs (overridable as key=value argv):
//   insts=<N>    dynamic instructions per benchmark run   (default 30000)
//   seed=<N>     workload seed                             (default 42)
//   threads=<N>  application threads (pairs for redundant) (default 1)
//   workers=<N>  host threads for grid fan-out             (default cores)
//   jobs=<N>     grid size for benches that scale job count (default per
//                bench; only bench_campaign_scaling reads it today)
//   json=<path>  also dump the raw campaign grid as JSON ("-" = stdout)
#pragma once

#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/baseline.hpp"
#include "core/reunion_system.hpp"
#include "core/unsync_system.hpp"
#include "runtime/campaign.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace unsync::bench {

struct BenchArgs {
  std::uint64_t insts = 30000;
  bool insts_set = false;  ///< insts= given explicitly on the command line
  std::uint64_t seed = 42;
  unsigned threads = 1;
  unsigned workers = 0;  // 0 = hardware concurrency
  std::uint64_t jobs = 0;  // 0 = the bench's own default grid size
  std::string json;      // empty = no JSON dump; "-" = stdout

  static BenchArgs parse(int argc, char** argv) {
    const Config cfg = Config::from_args(argc, argv);
    BenchArgs a;
    a.insts_set = cfg.has("insts");
    a.insts = static_cast<std::uint64_t>(cfg.get_int("insts", 30000));
    a.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
    a.threads = static_cast<unsigned>(cfg.get_int("threads", 1));
    a.workers = static_cast<unsigned>(cfg.get_int("workers", 0));
    a.jobs = static_cast<std::uint64_t>(cfg.get_int("jobs", 0));
    a.json = cfg.get_string("json", "");
    cfg.report_unused("bench");
    return a;
  }

  core::SystemConfig system_config(double ser = 0.0) const {
    core::SystemConfig cfg;
    cfg.num_threads = threads;
    cfg.ser_per_inst = ser;
    cfg.seed = seed;
    return cfg;
  }

  workload::SyntheticStream stream(const std::string& benchmark) const {
    return workload::SyntheticStream(workload::profile(benchmark), seed,
                                     insts);
  }
};

inline double baseline_ipc(const BenchArgs& a, const std::string& bench) {
  workload::SyntheticStream s = a.stream(bench);
  core::BaselineSystem sys(a.system_config(), s);
  return sys.run().thread_ipc();
}

inline core::RunResult unsync_run(const BenchArgs& a, const std::string& bench,
                                  const core::UnSyncParams& p,
                                  double ser = 0.0) {
  workload::SyntheticStream s = a.stream(bench);
  core::UnSyncSystem sys(a.system_config(ser), p, s);
  return sys.run();
}

inline core::RunResult reunion_run(const BenchArgs& a, const std::string& bench,
                                   const core::ReunionParams& p,
                                   double ser = 0.0) {
  workload::SyntheticStream s = a.stream(bench);
  core::ReunionSystem sys(a.system_config(ser), p, s);
  return sys.run();
}

/// One grid cell with the bench harness's fixed-seed semantics (every cell
/// runs the identical same-seed workload stream, as the serial helpers
/// above always did).
inline runtime::SimJob sim_job(const BenchArgs& a, const std::string& bench,
                               runtime::SystemKind system, double ser = 0.0) {
  runtime::SimJob job;
  job.label = bench;
  job.profile = bench;
  job.insts = a.insts;
  job.seed = a.seed;
  job.app_threads = a.threads;
  job.ser_per_inst = ser;
  job.system = system;
  return job;
}

/// Fans a grid out across workers= host threads; results come back in
/// submission order, so table rows are independent of the worker count.
inline runtime::CampaignOutput run_grid(const BenchArgs& a,
                                        const std::vector<runtime::SimJob>& jobs) {
  runtime::CampaignRunner::Options opts;
  opts.threads = a.workers;
  opts.campaign_seed = a.seed;
  return runtime::CampaignRunner(opts).run(jobs);
}

/// Honors the json= knob: writes the raw campaign grid ("unsync.campaign.v2")
/// so a plotting script can consume exactly what the table was built from.
inline void maybe_dump_json(const BenchArgs& a,
                            const runtime::CampaignOutput& out) {
  if (a.json.empty()) return;
  if (a.json == "-") {
    std::cout << out.to_json(2) << "\n";
    return;
  }
  std::ofstream f(a.json);
  if (!f) throw std::runtime_error("cannot write json file " + a.json);
  f << out.to_json(2) << "\n";
  std::cout << "(raw grid JSON written to " << a.json << ")\n";
}

inline void print_header(const std::string& what, const BenchArgs& a) {
  std::cout << "\n=== " << what << " ===\n"
            << "(insts=" << a.insts << " seed=" << a.seed
            << " threads=" << a.threads << ")\n\n";
}

inline void print_shape_note(const std::string& note) {
  std::cout << "\nPAPER SHAPE: " << note << "\n";
}

}  // namespace unsync::bench
