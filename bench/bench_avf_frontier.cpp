// Uncore protection frontier: measured ACE/AVF exposure x hwmodel cost.
//
// For each uniform uncore protection plan (none / parity / secded) this
// harness joins three independent measurements into one frontier row:
//
//   1. Exposure — an avf=1 UnSync campaign measures each uncore structure's
//      ACE bit-cycles (src/fault/avf); the plan's detection coverage turns
//      that into a residual (undetected) AVF. The integer bit-cycle
//      counters are a pure function of the grid: they must be byte-equal
//      across worker counts AND across plans (protection joins at report
//      time only — it never perturbs the measurement).
//   2. Outcome — a Monte-Carlo injection campaign over the six uncore
//      fault sites classifies strikes under the plan (silent / detected /
//      corrected in place / unrecoverable), with the UnSync redundant CB
//      recovering detected write-buffer strikes.
//   3. Cost — hwmodel prices each structure's check-bit storage and codec
//      (area/power), and the campaign-wide energy delta at the synthesis
//      model's 300 MHz.
//
// json=<path> writes "unsync.bench_avf.v1", gated in CI by
//     tools/check_bench_regression.py --avf
//         --avf-baseline bench/BENCH_avf_baseline.json
// which enforces: identical == true (worker-count + cross-plan bit-cycle
// determinism), frontier monotonicity (residual AVF and SDC never increase,
// area/power never decrease, along none -> parity -> secded), zero SDC
// under full single-bit coverage, and exact per-structure bit-cycle
// equality with the committed baseline. Refresh after a deliberate model
// change with --write-avf-baseline.
#include <array>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/avf.hpp"
#include "fault/injector.hpp"
#include "hwmodel/components.hpp"
#include "isa/assembler.hpp"

namespace {

using namespace unsync;

/// Store-heavy loop so every uncore site has resident written words.
isa::Program campaign_program() {
  return isa::Assembler::assemble(R"(
  buf:
    .space 512
    addi r10, r0, 60
    addi r2, r0, 1
    la   r20, buf
  loop:
    add  r2, r2, r10
    mul  r3, r2, r10
    st   r3, 0(r20)
    ld   r4, 0(r20)
    xor  r2, r2, r4
    addi r20, r20, 8
    addi r10, r10, -1
    bne  r10, r0, loop
    addi r1, r0, 1
    syscall
    halt
  )");
}

constexpr double kClockHz = 300e6;

struct PlanRow {
  fault::UncorePlan plan;
  fault::AvfReport report;
  fault::CampaignResult injection;
  double energy_delta_j = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Uncore protection frontier: AVF x cost x outcome",
                      args);

  const char* benches[] = {"gzip", "qsort"};
  const std::array<fault::Mechanism, 3> mechanisms = {
      fault::Mechanism::kNone, fault::Mechanism::kParity1,
      fault::Mechanism::kSecded};

  const auto prog = campaign_program();
  std::vector<PlanRow> rows;
  bool identical = true;
  std::string first_metrics_json;  // plan 0, parallel run

  for (const auto mech : mechanisms) {
    PlanRow row;
    row.plan = fault::uniform_uncore_plan(mech);

    std::vector<runtime::SimJob> jobs;
    for (const char* b : benches) {
      runtime::SimJob job =
          bench::sim_job(args, b, runtime::SystemKind::kUnSync);
      job.avf = true;
      job.protect = row.plan;
      jobs.push_back(std::move(job));
    }

    runtime::CampaignRunner::Options opts;
    opts.threads = args.workers;
    opts.campaign_seed = args.seed;
    opts.collect_metrics = true;
    const auto out = runtime::CampaignRunner(opts).run(jobs);

    // Worker-count determinism: the merged counters from a serial run of
    // the same grid must be byte-identical (checked once, on the first
    // plan — the grid is the measurement; the plan only labels it).
    if (rows.empty()) {
      first_metrics_json = out.metrics.to_json();
      runtime::CampaignRunner::Options serial = opts;
      serial.threads = 1;
      const auto serial_out = runtime::CampaignRunner(serial).run(jobs);
      identical &= serial_out.metrics.to_json() == first_metrics_json;
    } else {
      // Cross-plan determinism: protection must not perturb measurement.
      obs::MetricsSnapshot probe = out.metrics;
      identical &= probe.to_json() == first_metrics_json;
    }

    row.report = fault::build_avf_report(out.metrics, row.plan);
    for (auto& s : row.report.structures) {
      const auto hw = hwmodel::uncore_protection_hardware(
          s.mechanism, s.capacity_bits / jobs.size());
      s.area_delta_um2 = hw.area_um2;
      s.power_delta_w = hw.power_w;
    }
    // Campaign-wide energy delta of the added protection hardware.
    row.energy_delta_j = row.report.power_delta_w() *
                         (static_cast<double>(row.report.cycles) / kClockHz);

    fault::InjectionConfig icfg;
    icfg.trials = 300;
    icfg.seed = args.seed;
    icfg.sites = fault::uncore_fault_sites();
    icfg.uncore = row.plan;
    icfg.redundant_write_buffer = true;  // the UnSync CB is per-core
    row.injection = fault::run_campaign(prog, fault::unsync_plan(), icfg);

    rows.push_back(std::move(row));
  }

  TextTable t("Protection frontier (unsync, " + std::to_string(args.insts) +
              " insts x " + std::to_string(std::size(benches)) + " benches)");
  t.set_header({"plan", "total AVF", "residual AVF", "area um^2", "power W",
                "energy J", "SDC", "detected", "corrected", "unrec"});
  for (const auto& row : rows) {
    const auto& r = row.injection;
    t.add_row({row.plan.name, TextTable::num(row.report.total_avf(), 4),
               TextTable::num(row.report.total_residual_avf(), 4),
               TextTable::num(row.report.area_delta_um2(), 0),
               TextTable::num(row.report.power_delta_w(), 3),
               TextTable::num(row.energy_delta_j, 6),
               std::to_string(r.sdc),
               std::to_string(r.recovered + r.unrecoverable),
               std::to_string(r.corrected_in_place),
               std::to_string(r.unrecoverable)});
  }
  t.print(std::cout);
  std::cout << "\nbit-cycle counters identical across worker counts and "
               "plans: "
            << (identical ? "yes" : "NO") << "\n";

  if (!identical) {
    std::cout << "\nERROR: the AVF measurement depended on the worker count "
                 "or the protection plan — the observation-only contract is "
                 "broken.\n";
    return 1;
  }

  if (!args.json.empty()) {
    std::ostringstream js;
    js << "{\n  \"schema\": \"unsync.bench_avf.v1\",\n"
       << "  \"insts\": " << args.insts << ",\n"
       << "  \"seed\": " << args.seed << ",\n"
       << "  \"identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"plans\": [\n";
    for (std::size_t p = 0; p < rows.size(); ++p) {
      const auto& row = rows[p];
      const auto& r = row.injection;
      js << "    {\"plan\": \"" << row.plan.name << "\""
         << ", \"total_avf\": " << row.report.total_avf()
         << ", \"total_residual_avf\": " << row.report.total_residual_avf()
         << ", \"area_delta_um2\": " << row.report.area_delta_um2()
         << ", \"power_delta_w\": " << row.report.power_delta_w()
         << ", \"energy_delta_j\": " << row.energy_delta_j
         << ", \"trials\": " << r.total() << ", \"sdc\": " << r.sdc
         << ", \"detected\": " << (r.recovered + r.unrecoverable)
         << ", \"corrected_in_place\": " << r.corrected_in_place
         << ", \"unrecoverable\": " << r.unrecoverable
         << ", \"masked\": " << r.masked << ",\n      \"structures\": [\n";
      for (std::size_t i = 0; i < row.report.structures.size(); ++i) {
        const auto& s = row.report.structures[i];
        js << "        {\"structure\": \"" << fault::name_of(s.structure)
           << "\", \"bit_cycles\": " << s.bit_cycles
           << ", \"capacity_bit_cycles\": " << s.capacity_bit_cycles
           << ", \"avf\": " << s.avf
           << ", \"residual_avf\": " << s.residual_avf
           << ", \"area_delta_um2\": " << s.area_delta_um2 << "}"
           << (i + 1 < row.report.structures.size() ? "," : "") << "\n";
      }
      js << "      ]}" << (p + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    if (args.json == "-") {
      std::cout << js.str();
    } else {
      std::ofstream f(args.json);
      if (!f) throw std::runtime_error("cannot write json file " + args.json);
      f << js.str();
      std::cout << "(frontier JSON written to " << args.json << ")\n";
    }
  }

  bench::print_shape_note(
      "the frontier orders none -> parity -> secded: residual AVF and SDC "
      "fall (to zero under full single-bit coverage) while area/power/energy "
      "rise; per-structure bit-cycles are exact integers, identical across "
      "plans and worker counts (the measurement is observation-only).");
  return 0;
}
