// Table I: simulated baseline CMP parameters.
//
// Not a measurement — this binary prints the configuration every other
// bench runs with, as the paper's Table I does, and cross-checks it against
// the defaults compiled into the libraries.
#include <iostream>

#include "bench_util.hpp"
#include "cpu/core_config.hpp"
#include "mem/config.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Table I: simulated baseline CMP parameters", args);

  const cpu::CoreConfig core;
  const mem::MemConfig memory;

  TextTable t;
  t.set_header({"Parameter", "Configuration"});
  t.add_row({"Processor cores", "4 logical cores (2 redundant pairs), "
                                "out-of-order, 5-stage"});
  t.add_row({"Fetch/issue/commit width",
             std::to_string(core.fetch_width) + "/" +
                 std::to_string(core.issue_width) + "/" +
                 std::to_string(core.commit_width)});
  t.add_row({"Issue queue", std::to_string(core.iq_entries)});
  t.add_row({"Reorder buffer", std::to_string(core.rob_entries)});
  t.add_row({"Load/store queue", std::to_string(core.lq_entries) + "+" +
                                     std::to_string(core.sq_entries)});
  t.add_row({"L1 D-cache",
             std::to_string(memory.l1d.size_bytes / 1024) + " KiB, " +
                 std::to_string(memory.l1d.assoc) + "-way, " +
                 std::to_string(memory.l1d.line_bytes) + " B lines, " +
                 std::to_string(memory.l1d.hit_latency) + "-cycle, " +
                 std::to_string(memory.l1d.mshrs) + " MSHRs"});
  t.add_row({"Shared L2",
             std::to_string(memory.l2.size_bytes / (1024 * 1024)) +
                 " MiB, " + std::to_string(memory.l2.assoc) + "-way, " +
                 std::to_string(memory.l2.hit_latency) + "-cycle, " +
                 std::to_string(memory.l2.mshrs) + " MSHRs"});
  t.add_row({"Memory", std::to_string(memory.dram_latency) +
                           "-cycle access, 64-bit channel"});
  t.add_row({"Branch predictor", "gshare, 4096 entries, 12-bit history"});
  t.add_row({"Mispredict penalty",
             std::to_string(core.mispredict_penalty) + " cycles"});
  t.print(std::cout);

  bench::print_shape_note(
      "configuration mirrors Table I (Alpha-21264-class 4-wide OoO cores, "
      "32KB split L1, 4MB shared L2, 400-cycle memory).");
  return 0;
}
