// §VI-D: region of error coverage (ROEC), plus the write-through ablation
// of §III-C.1 (Figure 2) verified by fault injection on the golden model.
#include <iostream>
#include <iterator>
#include <vector>

#include "bench_util.hpp"
#include "fault/injector.hpp"
#include "runtime/thread_pool.hpp"
#include "fault/protection.hpp"
#include "fault/ser.hpp"
#include "fault/vulnerability.hpp"
#include "isa/assembler.hpp"

namespace {

unsync::isa::Program campaign_program() {
  return unsync::isa::Assembler::assemble(R"(
  buf:
    .space 512
    addi r10, r0, 60
    addi r2, r0, 1
    la   r20, buf
  loop:
    add  r2, r2, r10
    mul  r3, r2, r10
    st   r3, 0(r20)
    ld   r4, 0(r20)
    xor  r2, r2, r4
    fmovi f1, r4
    fadd f2, f2, f1
    addi r20, r20, 8
    addi r10, r10, -1
    bne  r10, r0, loop
    addi r1, r0, 1
    syscall
    halt
  )");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace unsync;
  using namespace unsync::fault;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("ROEC: region of error coverage + recovery validation",
                      args);

  // --- Part 1: structural coverage of each protection plan. ---------------
  TextTable cov("Per-structure protection (mechanism per plan)");
  cov.set_header({"Structure", "bits", "residency", "UnSync", "Reunion"});
  const auto up = unsync_plan();
  const auto rp = reunion_plan();
  for (const auto& s : structure_inventory()) {
    cov.add_row({name_of(s.id), std::to_string(s.bits),
                 s.residency == Residency::kEveryCycle ? "every-cycle"
                                                       : "storage",
                 name_of(up.of(s.id)), name_of(rp.of(s.id))});
  }
  cov.print(std::cout);

  std::cout << "\nROEC (bit-weighted detection coverage):\n"
            << "  UnSync:   " << TextTable::pct(up.roec()) << "\n"
            << "  Reunion:  " << TextTable::pct(rp.roec()) << "\n"
            << "  Baseline: " << TextTable::pct(baseline_plan().roec())
            << "\n\n";

  // --- Part 2: Monte-Carlo injection campaigns on the golden model. -------
  // The four campaigns are independent; run them across host workers and
  // print the tables in declaration order.
  const auto prog = campaign_program();
  struct CampaignSpec {
    ProtectionPlan plan;
    bool write_through;
    const char* label;
  };
  const CampaignSpec specs[] = {
      {unsync_plan(), true, "UnSync plan, write-through L1"},
      {unsync_plan(), false, "UnSync plan, write-back L1 (Fig. 2 ablation)"},
      {reunion_plan(), true, "Reunion plan"},
      {baseline_plan(), true, "unprotected baseline"},
  };
  std::vector<CampaignResult> campaign_results(std::size(specs));
  {
    runtime::ThreadPool pool(args.workers);
    pool.parallel_for(std::size(specs), [&](std::size_t i) {
      InjectionConfig cfg;
      cfg.trials = 400;
      cfg.seed = args.seed;
      cfg.l1_write_through = specs[i].write_through;
      campaign_results[i] = run_campaign(prog, specs[i].plan, cfg);
    });
  }
  auto print_campaign = [&](const CampaignResult& r, const char* label) {
    TextTable t(std::string("Campaign: ") + label);
    t.set_header({"outcome", "count", "fraction"});
    t.add_row({"masked", std::to_string(r.masked),
               TextTable::pct(static_cast<double>(r.masked) / r.total())});
    t.add_row({"corrected in place", std::to_string(r.corrected_in_place),
               TextTable::pct(static_cast<double>(r.corrected_in_place) /
                              r.total())});
    t.add_row({"detected+recovered", std::to_string(r.recovered),
               TextTable::pct(static_cast<double>(r.recovered) / r.total())});
    t.add_row({"detected, unrecoverable", std::to_string(r.unrecoverable),
               TextTable::pct(static_cast<double>(r.unrecoverable) /
                              r.total())});
    t.add_row({"silent corruption (SDC)", std::to_string(r.sdc),
               TextTable::pct(static_cast<double>(r.sdc) / r.total())});
    t.add_row({"recovery failures (must be 0)",
               std::to_string(r.recovery_failures), ""});
    t.print(std::cout);
    std::cout << "\n";
  };

  for (std::size_t i = 0; i < std::size(specs); ++i) {
    print_campaign(campaign_results[i], specs[i].label);
  }

  // --- Part 3: AVF-style exposure weighting (a timing-sim run drives the
  // residency model; the paper's [25] argument made quantitative). --------
  {
    const auto stats_run = bench::unsync_run(args, "gzip",
                                             core::UnSyncParams{});
    const double rate = per_bit_cycle_rate(/*FIT/Mbit=*/1000.0, 2e9);
    const auto unsync_rep =
        analyze_vulnerability(stats_run.core_stats[0], unsync_plan(), rate);
    const auto reunion_rep =
        analyze_vulnerability(stats_run.core_stats[0], reunion_plan(), rate);
    std::cout << unsync_rep.table(
                     "Exposure-weighted vulnerability (gzip run, UnSync plan)")
              << "\nExposure-weighted coverage: UnSync "
              << TextTable::pct(unsync_rep.weighted_coverage()) << ", Reunion "
              << TextTable::pct(reunion_rep.weighted_coverage()) << "\n\n";
  }

  unsync::bench::print_shape_note(
      "paper §VI-D: UnSync covers every sequential block plus the L1 "
      "(larger ROEC than Reunion's pre-commit pipeline) with zero SDC; the "
      "write-back ablation reproduces Fig. 2's unrecoverable dirty-line "
      "hazard; the unprotected baseline shows the SDC rate redundancy "
      "removes.");
  return 0;
}
