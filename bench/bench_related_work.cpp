// Extension beyond the paper's figures: the full §II landscape on one
// table — baseline CMP, mainframe lock-step, DMR + checkpointing
// (Fingerprinting-style), Reunion, and UnSync — error-free and at an
// elevated error rate. Reproduces the paper's qualitative argument for why
// each predecessor loses: coupling (lock-step), capture cost and detection
// latency (checkpointing), CHECK-stage pressure (Reunion).
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "core/related_work.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Related-work landscape (§II comparison points)",
                      args);

  core::UnSyncParams up;
  up.cb_entries = 256;
  core::ReunionParams rp;
  core::LockstepParams lp;
  core::CheckpointParams cp;

  for (const double ser : {0.0, 1e-4}) {
    TextTable t(ser == 0.0 ? "Error-free execution"
                           : "SER = 1e-4 per instruction (stress)");
    t.set_header({"benchmark", "baseline", "lockstep", "dmr-checkpoint",
                  "reunion", "unsync", "unsync wins by"});
    const char* benches[] = {"gzip", "bzip2", "mcf", "ammp", "galgel",
                             "susan"};
    for (const auto* name : benches) {
      workload::SyntheticStream s = args.stream(name);
      core::BaselineSystem base(args.system_config(), s);
      core::LockstepSystem lock(args.system_config(ser), lp, s);
      core::DmrCheckpointSystem check(args.system_config(ser), cp, s);
      const double b = base.run().thread_ipc();
      const double l = lock.run().thread_ipc();
      const double c = check.run().thread_ipc();
      const double r = bench::reunion_run(args, name, rp, ser).thread_ipc();
      const double u = bench::unsync_run(args, name, up, ser).thread_ipc();
      const double best_rival = std::max({l, c, r});
      t.add_row({name, TextTable::num(b, 3), TextTable::num(l, 3),
                 TextTable::num(c, 3), TextTable::num(r, 3),
                 TextTable::num(u, 3),
                 TextTable::pct(u / best_rival - 1.0)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  bench::print_shape_note(
      "extension table (not in the paper): UnSync should lead every "
      "redundant rival in error-free execution — lock-step pays coupling on "
      "every cycle, checkpointing pays capture costs, Reunion pays "
      "CHECK-stage pressure — while staying close to the unprotected "
      "baseline.");
  return 0;
}
