// Table III: projected die sizes of existing many-core processors under the
// two error-resilient implementations.
#include <iostream>

#include "bench_util.hpp"
#include "hwmodel/core_model.hpp"
#include "hwmodel/die_projection.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  using namespace unsync::hwmodel;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Table III: projected die sizes", args);

  const CoreHw base = mips_baseline();
  std::cout << "Core-area overhead factors from Table II: Reunion "
            << TextTable::num(reunion_core().area_overhead_vs(base), 4)
            << ", UnSync "
            << TextTable::num(unsync_core().area_overhead_vs(base), 4)
            << "\n\n";

  TextTable t;
  t.set_header({"Chip", "Node", "Cores", "Core mm^2", "Die mm^2",
                "Reunion mm^2", "UnSync mm^2", "Difference mm^2"});
  for (const auto& row : project_table3()) {
    t.add_row({row.chip.name, std::to_string(row.chip.technology_nm) + "nm",
               std::to_string(row.chip.cores),
               TextTable::num(row.chip.per_core_area_mm2, 1),
               TextTable::num(row.chip.die_area_mm2, 0),
               TextTable::num(row.reunion_die_mm2, 2),
               TextTable::num(row.unsync_die_mm2, 2),
               TextTable::num(row.difference_mm2, 2)});
  }
  t.print(std::cout);

  bench::print_shape_note(
      "paper Table III: 316.54/289.9 (Polaris), 377.85/347.16 (Tile64), "
      "549.76/498.61 (GeForce); the difference grows non-linearly with core "
      "count — ~2x from 80 to 128 cores.");
  return 0;
}
