// Extension: multiprogrammed interference on the shared L2/bus — the
// "4 logical cores" deployment of Table I with *different* programs per
// core pair. Shows that UnSync's decoupling also holds under co-runner
// pressure, and quantifies the noisy-neighbour cost each victim pays.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Multiprogrammed interference (extension)", args);

  struct Mix {
    const char* victim;
    const char* aggressor;
  };
  const Mix mixes[] = {
      {"gzip", "mcf"},     // cache-friendly victim, miss-storm aggressor
      {"bzip2", "equake"}, // serializing victim, streaming-fp aggressor
      {"susan", "galgel"}, // store-heavy victim, MLP-heavy aggressor
      {"qsort", "mcf"},
  };

  core::UnSyncParams up;
  up.cb_entries = 256;

  TextTable t;
  t.set_header({"victim + aggressor", "victim alone (base)",
                "victim shared (base)", "slowdown", "victim shared (unsync)",
                "unsync ovh vs shared base"});
  for (const auto& mix : mixes) {
    workload::SyntheticStream victim(workload::profile(mix.victim),
                                     args.seed, args.insts);
    workload::SyntheticStream aggressor(workload::profile(mix.aggressor),
                                        args.seed + 1, args.insts);

    core::SystemConfig solo_cfg = args.system_config();
    solo_cfg.num_threads = 1;
    core::BaselineSystem solo(solo_cfg, victim);
    const double alone = solo.run().core_stats[0].ipc();

    core::SystemConfig duo_cfg = args.system_config();
    duo_cfg.num_threads = 2;
    core::BaselineSystem duo(duo_cfg, {&victim, &aggressor});
    const double shared_base = duo.run().core_stats[0].ipc();

    core::UnSyncSystem duo_unsync(duo_cfg, up, {&victim, &aggressor});
    const double shared_unsync = duo_unsync.run().core_stats[0].ipc();

    t.add_row({std::string(mix.victim) + " + " + mix.aggressor,
               TextTable::num(alone, 3), TextTable::num(shared_base, 3),
               TextTable::pct(1.0 - shared_base / alone),
               TextTable::num(shared_unsync, 3),
               TextTable::pct(1.0 - shared_unsync / shared_base)});
  }
  t.print(std::cout);

  bench::print_shape_note(
      "extension (not a paper figure): the aggressor's L2/bus traffic slows "
      "the victim; running the victim redundantly under UnSync adds only "
      "its usual small overhead on top — decoupling is robust to co-runner "
      "interference.");
  return 0;
}
