// Google-benchmark microbenchmarks of the simulator substrate itself:
// simulation throughput (simulated instructions per wall-clock second) for
// each system, plus hot substrate primitives.
#include <benchmark/benchmark.h>

#include "core/baseline.hpp"
#include "core/factory.hpp"
#include "core/reunion_system.hpp"
#include "core/unsync_system.hpp"
#include "cpu/bpred.hpp"
#include "mem/cache.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace unsync;

void BM_SyntheticStream(benchmark::State& state) {
  workload::SyntheticStream s(workload::profile("gzip"), 1, 1u << 30);
  workload::DynOp op;
  for (auto _ : state) {
    s.next(&op);
    benchmark::DoNotOptimize(op);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyntheticStream);

void BM_CacheAccess(benchmark::State& state) {
  mem::Cache cache(mem::CacheConfig{});
  Addr addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access_read(addr));
    addr += 64;
    addr &= 0xFFFFF;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_GsharePredict(benchmark::State& state) {
  cpu::GsharePredictor pred;
  Addr pc = 0x1000;
  bool taken = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.mispredicted(pc, taken));
    pc += 4;
    taken = !taken;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GsharePredict);

void BM_BaselineSystem(benchmark::State& state) {
  const auto insts = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    workload::SyntheticStream s(workload::profile("gzip"), 1, insts);
    core::SystemConfig cfg;
    cfg.num_threads = 1;
    core::BaselineSystem sys(cfg, s);
    benchmark::DoNotOptimize(sys.run().cycles);
  }
  state.SetItemsProcessed(state.iterations() * insts);
}
BENCHMARK(BM_BaselineSystem)->Arg(5000)->Arg(20000);

void BM_UnSyncSystem(benchmark::State& state) {
  const auto insts = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    workload::SyntheticStream s(workload::profile("gzip"), 1, insts);
    core::SystemConfig cfg;
    cfg.num_threads = 1;
    core::UnSyncParams p;
    p.cb_entries = 256;
    core::UnSyncSystem sys(cfg, p, s);
    benchmark::DoNotOptimize(sys.run().cycles);
  }
  state.SetItemsProcessed(state.iterations() * insts);
}
BENCHMARK(BM_UnSyncSystem)->Arg(5000)->Arg(20000);

// Shared cycle-engine throughput (simulated cycles per wall-clock second),
// naive loop vs quiescence fast-forwarding, on the stall-heavy galgel
// profile — long ROB-full and fence windows are exactly what fast-forwarding
// elides, so this pair is the regression gate for both the kernel hot path
// and the ff speedup (tools/check_bench_regression.py; docs/ENGINE.md).
// Items processed = simulated cycles, so items_per_second is cycles/sec.
void BM_CycleEngine(benchmark::State& state, core::SystemKind kind,
                    bool fast_forward) {
  std::uint64_t simulated_cycles = 0;
  for (auto _ : state) {
    workload::SyntheticStream s(workload::profile("galgel"), 7, 30000);
    core::SystemConfig cfg;
    cfg.num_threads = 2;
    cfg.ser_per_inst = 5e-4;
    cfg.seed = 7;
    cfg.fast_forward = fast_forward;
    const auto sys = core::make_system(kind, cfg, s);
    simulated_cycles += sys->run().cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(simulated_cycles));
}
BENCHMARK_CAPTURE(BM_CycleEngine, baseline_naive,
                  core::SystemKind::kBaseline, false);
BENCHMARK_CAPTURE(BM_CycleEngine, baseline_ff,
                  core::SystemKind::kBaseline, true);
BENCHMARK_CAPTURE(BM_CycleEngine, unsync_naive,
                  core::SystemKind::kUnSync, false);
BENCHMARK_CAPTURE(BM_CycleEngine, unsync_ff,
                  core::SystemKind::kUnSync, true);
BENCHMARK_CAPTURE(BM_CycleEngine, reunion_naive,
                  core::SystemKind::kReunion, false);
BENCHMARK_CAPTURE(BM_CycleEngine, reunion_ff,
                  core::SystemKind::kReunion, true);

void BM_ReunionSystem(benchmark::State& state) {
  const auto insts = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    workload::SyntheticStream s(workload::profile("gzip"), 1, insts);
    core::SystemConfig cfg;
    cfg.num_threads = 1;
    core::ReunionSystem sys(cfg, core::ReunionParams{}, s);
    benchmark::DoNotOptimize(sys.run().cycles);
  }
  state.SetItemsProcessed(state.iterations() * insts);
}
BENCHMARK(BM_ReunionSystem)->Arg(5000)->Arg(20000);

}  // namespace
