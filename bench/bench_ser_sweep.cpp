// §VI-C: performance across soft-error rates.
//
// IPC of UnSync and Reunion (averaged over benchmarks) as the
// per-instruction SER sweeps from realistic (1e-17, the paper's 90 nm
// operating point) to hypothetical extremes. The paper finds both curves
// flat until far beyond realistic rates, with UnSync ahead throughout, and
// a hypothetical break-even near SER = 1.29e-3 where Reunion's cheap
// rollback finally beats UnSync's expensive state copy.
#include <cmath>
#include <iostream>
#include <iterator>

#include "bench_util.hpp"
#include "fault/ser.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("SER sweep: IPC vs per-instruction soft-error rate",
                      args);

  core::UnSyncParams up;
  up.cb_entries = 256;
  core::ReunionParams rp;

  const double rates[] = {0.0,  1e-17, 1e-12, 1e-7, 1e-5, 1e-4,
                          3e-4, 1e-3,  2e-3,  3e-3, 1e-2};
  const char* benches[] = {"gzip", "bzip2", "ammp", "galgel", "mcf", "susan"};

  TextTable t;
  t.set_header({"SER/inst", "UnSync IPC", "Reunion IPC", "UnSync/Reunion",
                "recoveries", "rollbacks"});

  // Grid: (rate x benchmark x {unsync, reunion}) across host workers.
  constexpr std::size_t kNumBenches = std::size(benches);
  std::vector<runtime::SimJob> jobs;
  jobs.reserve(std::size(rates) * kNumBenches * 2);
  for (const double ser : rates) {
    for (const auto* name : benches) {
      auto u = bench::sim_job(args, name, runtime::SystemKind::kUnSync, ser);
      u.params.unsync = up;
      auto r = bench::sim_job(args, name, runtime::SystemKind::kReunion, ser);
      r.params.reunion = rp;
      jobs.push_back(std::move(u));
      jobs.push_back(std::move(r));
    }
  }
  const auto grid = bench::run_grid(args, jobs);
  bench::maybe_dump_json(args, grid);

  double crossover = -1.0;
  double prev_ratio = 2.0;
  std::size_t job_i = 0;
  for (const double ser : rates) {
    double u_sum = 0, r_sum = 0;
    std::uint64_t recov = 0, rolls = 0;
    for (std::size_t b = 0; b < kNumBenches; ++b) {
      const auto& u = grid.results[job_i++];
      const auto& r = grid.results[job_i++];
      u_sum += u.thread_ipc();
      r_sum += r.thread_ipc();
      recov += u.recoveries;
      rolls += r.rollbacks;
    }
    const double ratio = u_sum / r_sum;
    char label[32];
    std::snprintf(label, sizeof label, "%.0e", ser);
    t.add_row({ser == 0.0 ? "0" : label, TextTable::num(u_sum / 6, 3),
               TextTable::num(r_sum / 6, 3), TextTable::num(ratio, 3),
               std::to_string(recov), std::to_string(rolls)});
    if (crossover < 0 && prev_ratio >= 1.0 && ratio < 1.0) crossover = ser;
    prev_ratio = ratio;
  }
  t.print(std::cout);

  if (crossover > 0) {
    std::cout << "\nMeasured break-even SER (UnSync/Reunion ratio crosses "
                 "1.0) near "
              << crossover << " per instruction.\n";
  } else {
    std::cout << "\nNo break-even inside the swept range.\n";
  }
  std::cout << "Paper operating point (90nm): "
            << fault::kPaperSerPerInst90nm
            << "/inst; paper break-even: " << fault::kPaperBreakEvenSer
            << "/inst.\n";

  bench::print_shape_note(
      "paper §VI-C: IPC is flat from 1e-7 down to 1e-17 (errors too rare to "
      "matter); UnSync leads Reunion by roughly its error-free margin, and "
      "only near SER ~1e-3 does UnSync's heavier recovery erase the lead.");
  return 0;
}
