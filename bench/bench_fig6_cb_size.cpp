// Figure 6: UnSync performance across Communication Buffer sizes.
//
// A full CB stalls commit until the partner core catches up and the bus
// drains an entry, so store-heavy applications suffer with small CBs;
// 2 KiB / 4 KiB buffers eliminate the bottleneck and match baseline.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 6: UnSync vs Communication Buffer size", args);

  const std::size_t sizes_bytes[] = {64, 128, 256, 512, 1024, 2048, 4096};

  TextTable t;
  std::vector<std::string> header = {"Benchmark", "base IPC"};
  for (const auto b : sizes_bytes) {
    header.push_back(b >= 1024 ? std::to_string(b / 1024) + "KB"
                               : std::to_string(b) + "B");
  }
  header.push_back("stalls@64B");
  t.set_header(header);

  const char* benches[] = {"susan", "gzip", "bzip2", "qsort", "gcc",
                           "equake", "mcf", "galgel"};
  for (const auto* name : benches) {
    const double base = bench::baseline_ipc(args, name);
    std::vector<std::string> row = {name, TextTable::num(base, 3)};
    std::uint64_t small_stalls = 0;
    for (const auto bytes : sizes_bytes) {
      core::UnSyncParams p;
      p.cb_entries = std::max<std::size_t>(
          1, core::UnSyncParams::entries_for_bytes(bytes));
      const auto r = bench::unsync_run(args, name, p);
      row.push_back(TextTable::num(r.thread_ipc() / base, 3));
      if (bytes == 64) small_stalls = r.cb_full_stalls;
    }
    row.push_back(std::to_string(small_stalls));
    t.add_row(row);
  }
  t.print(std::cout);

  bench::print_shape_note(
      "paper Fig. 6: small CBs cost performance on write-intensive "
      "applications (commit stalls on a full CB); 2KB and 4KB CBs remove "
      "the bottleneck and UnSync runs at baseline speed.");
  return 0;
}
