// Figure 6: UnSync performance across Communication Buffer sizes.
//
// A full CB stalls commit until the partner core catches up and the bus
// drains an entry, so store-heavy applications suffer with small CBs;
// 2 KiB / 4 KiB buffers eliminate the bottleneck and match baseline.
#include <algorithm>
#include <iostream>
#include <iterator>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 6: UnSync vs Communication Buffer size", args);

  const std::size_t sizes_bytes[] = {64, 128, 256, 512, 1024, 2048, 4096};

  TextTable t;
  std::vector<std::string> header = {"Benchmark", "base IPC"};
  for (const auto b : sizes_bytes) {
    header.push_back(b >= 1024 ? std::to_string(b / 1024) + "KB"
                               : std::to_string(b) + "B");
  }
  header.push_back("stalls@64B");
  t.set_header(header);

  const char* benches[] = {"susan", "gzip", "bzip2", "qsort", "gcc",
                           "equake", "mcf", "galgel"};

  // Grid: (benchmark x (baseline + every CB size)) across host workers.
  constexpr std::size_t kCells = 1 + std::size(sizes_bytes);
  std::vector<runtime::SimJob> jobs;
  jobs.reserve(std::size(benches) * kCells);
  for (const auto* name : benches) {
    jobs.push_back(
        bench::sim_job(args, name, runtime::SystemKind::kBaseline));
    for (const auto bytes : sizes_bytes) {
      auto job = bench::sim_job(args, name, runtime::SystemKind::kUnSync);
      job.params.unsync.cb_entries = std::max<std::size_t>(
          1, core::UnSyncParams::entries_for_bytes(bytes));
      jobs.push_back(std::move(job));
    }
  }
  const auto grid = bench::run_grid(args, jobs);
  bench::maybe_dump_json(args, grid);

  for (std::size_t b = 0; b < std::size(benches); ++b) {
    const double base = grid.results[b * kCells].thread_ipc();
    std::vector<std::string> row = {benches[b], TextTable::num(base, 3)};
    std::uint64_t small_stalls = 0;
    for (std::size_t s = 0; s < std::size(sizes_bytes); ++s) {
      const auto& r = grid.results[b * kCells + 1 + s];
      row.push_back(TextTable::num(r.thread_ipc() / base, 3));
      if (sizes_bytes[s] == 64) small_stalls = r.cb_full_stalls;
    }
    row.push_back(std::to_string(small_stalls));
    t.add_row(row);
  }
  t.print(std::cout);

  bench::print_shape_note(
      "paper Fig. 6: small CBs cost performance on write-intensive "
      "applications (commit stalls on a full CB); 2KB and 4KB CBs remove "
      "the bottleneck and UnSync runs at baseline speed.");
  return 0;
}
