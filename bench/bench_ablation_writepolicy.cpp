// Ablation: the write-through L1 requirement (§III-C.1 / Figure 2).
//
// Two sides of the design decision:
//   * reliability — with a write-back L1, a detected fault on a dirty line
//     has no clean copy anywhere (unrecoverable); write-through always has
//     the L2 copy. Measured by fault injection.
//   * performance — write-through pays a store-traffic tax on the shared
//     bus. Measured as UnSync (write-through + CB) versus the write-back
//     baseline store path, per benchmark.
#include <iostream>

#include "bench_util.hpp"
#include "fault/injector.hpp"
#include "isa/assembler.hpp"

namespace {

unsync::isa::Program campaign_program() {
  return unsync::isa::Assembler::assemble(R"(
  buf:
    .space 1024
    addi r10, r0, 100
    addi r2, r0, 7
    la   r20, buf
  loop:
    mul  r3, r2, r10
    st   r3, 0(r20)
    ld   r4, 0(r20)
    add  r2, r2, r4
    addi r20, r20, 8
    addi r10, r10, -1
    bne  r10, r0, loop
    addi r1, r0, 1
    syscall
    halt
  )");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace unsync;
  using namespace unsync::fault;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation: write-through vs write-back L1 (Fig. 2)",
                      args);

  // --- Reliability side -----------------------------------------------------
  const auto prog = campaign_program();
  TextTable rel("Memory-data strikes under the UnSync plan (600 trials)");
  rel.set_header({"L1 policy", "masked", "recovered", "unrecoverable", "SDC"});
  for (const bool wt : {true, false}) {
    InjectionConfig cfg;
    cfg.trials = 600;
    cfg.seed = args.seed;
    cfg.sites = {FaultSite::kMemoryData};
    cfg.l1_write_through = wt;
    const auto r = run_campaign(prog, unsync_plan(), cfg);
    rel.add_row({wt ? "write-through" : "write-back",
                 std::to_string(r.masked), std::to_string(r.recovered),
                 std::to_string(r.unrecoverable), std::to_string(r.sdc)});
  }
  rel.print(std::cout);

  // --- Performance side -------------------------------------------------------
  std::cout << "\n";
  TextTable perf("Store-path cost: write-through+CB (UnSync) vs write-back "
                 "(baseline), per thread");
  perf.set_header({"benchmark", "store%", "baseline IPC", "UnSync IPC",
                   "write-through tax"});
  core::UnSyncParams up;
  up.cb_entries = 256;
  for (const char* name : {"susan", "gzip", "bzip2", "mcf", "galgel"}) {
    const auto& profmix = workload::profile(name).mix;
    const double b = bench::baseline_ipc(args, name);
    const double u = bench::unsync_run(args, name, up).thread_ipc();
    perf.add_row({name, TextTable::pct(profmix.store, 1), TextTable::num(b, 3),
                  TextTable::num(u, 3), TextTable::pct((b - u) / b)});
  }
  perf.print(std::cout);

  bench::print_shape_note(
      "paper §III-C.1: write-back leaves detected faults on dirty lines "
      "unrecoverable (Fig. 2), so UnSync requires write-through; the "
      "performance table shows the write-through tax the CB + drain "
      "protocol keeps negligible.");
  return 0;
}
