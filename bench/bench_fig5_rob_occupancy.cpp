// Figure 5: Reunion performance across fingerprint interval (FI) and
// comparison latency, versus the FI-independent UnSync.
//
// The paper sweeps from (FI=1, latency=10) upward; ammp and galgel are the
// most affected because the committed-but-unverified instructions occupy
// the ROB and choke their memory-level parallelism. At (FI=30, latency=40)
// the paper reports average slowdowns of 27% (ammp) and 41% (galgel).
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 5: Reunion vs fingerprint interval & latency",
                      args);

  struct Point {
    unsigned fi;
    Cycle latency;
  };
  const Point sweep[] = {{1, 10}, {10, 20}, {20, 30}, {30, 40}, {50, 60}};

  core::UnSyncParams up;
  up.cb_entries = 256;

  TextTable t;
  std::vector<std::string> header = {"Benchmark", "base IPC"};
  for (const auto& pt : sweep) {
    header.push_back("FI=" + std::to_string(pt.fi) + "/L=" +
                     std::to_string(pt.latency));
  }
  header.push_back("UnSync");
  header.push_back("avgROB(FI=30)");
  t.set_header(header);

  for (const auto& name : workload::fig5_benchmarks()) {
    const double base = bench::baseline_ipc(args, name);
    std::vector<std::string> row = {name, TextTable::num(base, 3)};
    double rob_occupancy = 0;
    for (const auto& pt : sweep) {
      core::ReunionParams rp;
      rp.fingerprint_interval = pt.fi;
      rp.compare_latency = pt.latency;
      const auto r = bench::reunion_run(args, name, rp);
      // Normalised performance relative to baseline (paper's y-axis).
      row.push_back(TextTable::num(r.thread_ipc() / base, 3));
      if (pt.fi == 30) rob_occupancy = r.core_stats[0].avg_rob_occupancy();
    }
    const auto u = bench::unsync_run(args, name, up);
    row.push_back(TextTable::num(u.thread_ipc() / base, 3));
    row.push_back(TextTable::num(rob_occupancy, 1));
    t.add_row(row);
  }
  t.print(std::cout);

  // Second axis: latency alone at the paper's base FI=10 (the paper varies
  // the two parameters independently before walking them together).
  std::cout << "\n";
  TextTable lt;
  std::vector<std::string> lheader = {"Benchmark"};
  const Cycle lat_sweep[] = {10, 20, 40, 60};
  for (const Cycle lat : lat_sweep) {
    lheader.push_back("FI=10/L=" + std::to_string(lat));
  }
  lt.set_header(lheader);
  for (const auto& name : workload::fig5_benchmarks()) {
    const double base = bench::baseline_ipc(args, name);
    std::vector<std::string> row = {name};
    for (const Cycle lat : lat_sweep) {
      core::ReunionParams rp;
      rp.fingerprint_interval = 10;
      rp.compare_latency = lat;
      const auto r = bench::reunion_run(args, name, rp);
      row.push_back(TextTable::num(r.thread_ipc() / base, 3));
    }
    lt.add_row(row);
  }
  lt.print(std::cout);

  bench::print_shape_note(
      "paper Fig. 5: performance falls monotonically as FI and comparison "
      "latency grow; ammp and galgel fall hardest (-27% / -41% at "
      "FI=30/L=40) because unverified instructions saturate the ROB; "
      "UnSync (no fingerprints) is flat and unaffected.");
  return 0;
}
