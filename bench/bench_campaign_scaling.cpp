// Campaign-engine scaling: scheduler mode x worker count on a short-job grid.
//
// The stress shape for the in-process scheduler is MANY SHORT JOBS: per-job
// work is small enough that claim overhead and queue contention show up in
// the wall clock. This bench runs a jobs= grid (default 10000 jobs of a few
// hundred instructions each) under both scheduling modes — the legacy
// shared-counter queue and the sharded work-stealing scheduler — at 1, 2, 4
// and 8 host workers, and reports throughput, speedup over the serial run
// and parallel efficiency. Efficiency is speedup / min(workers, physical
// cores): oversubscribed points (workers > cores) are reported but can
// never reach 1.0 by construction, so the efficiency column normalises by
// what the host can actually parallelise.
//
// Every run is cross-checked byte-identical to the serial reference — the
// scheduler must never leak into results.
//
// json=<path> writes a machine-readable report
// ("unsync.bench_campaign_scaling.v1") that tools/check_bench_regression.py
// --campaign gates in CI: identical must hold, and work-stealing efficiency
// at the largest non-oversubscribed point must clear the bar.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace unsync;

// A schedule-independent digest of a campaign's results.
std::string digest(const runtime::CampaignOutput& out) {
  std::ostringstream os;
  for (const auto& r : out.results) {
    os << r.cycles << ':' << r.instructions << ':' << r.errors_injected << ':'
       << r.recoveries << ':' << r.rollbacks << ';';
  }
  return os.str();
}

struct Point {
  std::string mode;
  unsigned workers = 0;
  double wall_seconds = 0.0;
  double jobs_per_sec = 0.0;
  double speedup = 0.0;
  double efficiency = 0.0;
  std::uint64_t steals = 0;
  std::uint64_t steal_failures = 0;
};

std::uint64_t counter_of(const obs::MetricsSnapshot& snap,
                         const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  const std::uint64_t n_jobs = args.jobs ? args.jobs : 10000;
  // Short jobs by default; an explicit insts= overrides (e.g. to check the
  // long-job regime where any scheduler looks good).
  const std::uint64_t per_job_insts = args.insts_set ? args.insts : 300;
  args.insts = per_job_insts;  // the banner should show the effective value
  bench::print_header("Campaign scheduler scaling: mode x workers", args);

  const char* profiles[] = {"gzip", "susan", "mcf", "equake"};
  const runtime::SystemKind systems[] = {runtime::SystemKind::kBaseline,
                                         runtime::SystemKind::kUnSync};
  std::vector<runtime::SimJob> jobs;
  jobs.reserve(n_jobs);
  for (std::uint64_t i = 0; i < n_jobs; ++i) {
    runtime::SimJob job;
    job.profile = profiles[i % std::size(profiles)];
    job.label = job.profile;
    job.system = systems[(i / std::size(profiles)) % std::size(systems)];
    job.insts = per_job_insts;
    jobs.push_back(std::move(job));
  }
  const unsigned cores = runtime::ThreadPool::default_threads();
  std::cout << "grid: " << n_jobs << " jobs x " << per_job_insts
            << " insts, host cores: " << cores << "\n\n";

  // Serial reference: mode-independent (threads=1 runs inline either way).
  runtime::CampaignRunner::Options serial;
  serial.threads = 1;
  serial.campaign_seed = args.seed;
  const auto ref = runtime::CampaignRunner(serial).run(jobs);
  const std::string reference = digest(ref);
  const double serial_wall = ref.wall_seconds;

  TextTable t;
  t.set_header({"mode", "workers", "wall s", "jobs/s", "speedup",
                "efficiency", "steals", "identical"});

  const unsigned worker_counts[] = {1, 2, 4, 8};
  std::vector<Point> points;
  bool all_identical = true;
  for (const auto mode : {runtime::ScheduleMode::kSharedQueue,
                          runtime::ScheduleMode::kWorkStealing}) {
    const std::string mode_name =
        mode == runtime::ScheduleMode::kWorkStealing ? "stealing" : "shared";
    for (const unsigned w : worker_counts) {
      runtime::CampaignRunner::Options opts;
      opts.threads = w;
      opts.campaign_seed = args.seed;
      opts.schedule.mode = mode;
      const auto out = runtime::CampaignRunner(opts).run(jobs);
      const bool same = digest(out) == reference;
      all_identical = all_identical && same;

      Point p;
      p.mode = mode_name;
      p.workers = w;
      p.wall_seconds = out.wall_seconds;
      p.jobs_per_sec = static_cast<double>(n_jobs) / out.wall_seconds;
      p.speedup = serial_wall / out.wall_seconds;
      p.efficiency = p.speedup / std::min(w, cores);
      p.steals = counter_of(out.scheduler_metrics,
                            "campaign.scheduler.steals");
      p.steal_failures = counter_of(out.scheduler_metrics,
                                    "campaign.scheduler.steal_failures");
      t.add_row({p.mode, std::to_string(w),
                 TextTable::num(p.wall_seconds, 3),
                 TextTable::num(p.jobs_per_sec, 0),
                 TextTable::num(p.speedup, 2),
                 TextTable::num(p.efficiency, 2),
                 std::to_string(p.steals), same ? "yes" : "NO"});
      points.push_back(p);
    }
  }
  t.print(std::cout);

  if (!all_identical) {
    std::cout << "\nERROR: results differ across schedules — the campaign "
                 "engine's determinism contract is broken.\n";
    return 1;
  }

  if (!args.json.empty()) {
    std::ostringstream js;
    js << "{\n  \"schema\": \"unsync.bench_campaign_scaling.v1\",\n"
       << "  \"jobs\": " << n_jobs << ",\n"
       << "  \"insts_per_job\": " << per_job_insts << ",\n"
       << "  \"hardware_concurrency\": " << cores << ",\n"
       << "  \"serial_wall_seconds\": " << serial_wall << ",\n"
       << "  \"identical\": " << (all_identical ? "true" : "false") << ",\n"
       << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      js << "    {\"mode\": \"" << p.mode << "\", \"workers\": " << p.workers
         << ", \"wall_seconds\": " << p.wall_seconds
         << ", \"jobs_per_sec\": " << p.jobs_per_sec
         << ", \"speedup\": " << p.speedup
         << ", \"efficiency\": " << p.efficiency
         << ", \"steals\": " << p.steals
         << ", \"steal_failures\": " << p.steal_failures << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    if (args.json == "-") {
      std::cout << js.str();
    } else {
      std::ofstream f(args.json);
      if (!f) throw std::runtime_error("cannot write json file " + args.json);
      f << js.str();
      std::cout << "(scaling JSON written to " << args.json << ")\n";
    }
  }

  bench::print_shape_note(
      "work-stealing should match or beat the shared queue at every worker "
      "count (the gap grows with worker count on short-job grids); "
      "efficiency at workers <= cores should stay near 1.0, and the "
      "identical column must read 'yes' everywhere — results depend only "
      "on the job grid and campaign seed, never on the schedule.");
  return 0;
}
