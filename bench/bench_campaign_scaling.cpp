// Campaign-engine scaling: simulated instructions/second vs host workers.
//
// Runs the same (benchmark x system) grid under the CampaignRunner at
// 1, 2, 4 and 8 host threads, reports throughput and speedup over the
// serial run, and cross-checks that every thread count produces identical
// per-job results (the engine's determinism contract).
#include <iostream>
#include <iterator>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "core/report.hpp"

namespace {

// A schedule-independent digest of a campaign's results.
std::string digest(const unsync::runtime::CampaignOutput& out) {
  std::ostringstream os;
  for (const auto& r : out.results) {
    os << r.cycles << ':' << r.instructions << ':' << r.errors_injected << ':'
       << r.recoveries << ':' << r.rollbacks << ';';
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace unsync;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Campaign engine scaling: workers vs throughput", args);

  const char* benches[] = {"gzip", "bzip2", "ammp", "galgel",
                           "mcf",  "susan", "gcc",  "equake"};
  const runtime::SystemKind systems[] = {runtime::SystemKind::kBaseline,
                                         runtime::SystemKind::kUnSync,
                                         runtime::SystemKind::kReunion};

  std::vector<runtime::SimJob> jobs;
  jobs.reserve(std::size(benches) * std::size(systems));
  for (const auto* name : benches) {
    for (const auto sys : systems) {
      jobs.push_back(bench::sim_job(args, name, sys));
    }
  }

  TextTable t;
  t.set_header({"workers", "wall s", "sim Minst/s", "speedup", "identical"});

  const unsigned worker_counts[] = {1, 2, 4, 8};
  double serial_rate = 0.0;
  std::string reference;
  bool all_identical = true;
  for (const unsigned w : worker_counts) {
    runtime::CampaignRunner::Options opts;
    opts.threads = w;
    opts.campaign_seed = args.seed;
    const auto out = runtime::CampaignRunner(opts).run(jobs);
    const double rate =
        static_cast<double>(out.total_instructions()) / out.wall_seconds;
    if (w == 1) {
      serial_rate = rate;
      reference = digest(out);
    }
    const bool same = digest(out) == reference;
    all_identical = all_identical && same;
    t.add_row({std::to_string(w), TextTable::num(out.wall_seconds, 3),
               TextTable::num(rate / 1e6, 2),
               TextTable::num(rate / serial_rate, 2), same ? "yes" : "NO"});
  }
  t.print(std::cout);

  if (!all_identical) {
    std::cout << "\nERROR: results differ across worker counts — the "
                 "campaign engine's determinism contract is broken.\n";
    return 1;
  }

  bench::print_shape_note(
      "speedup should track physical cores (near-linear until the job "
      "count or memory bandwidth saturates); the identical column must "
      "read 'yes' for every worker count — results depend only on the "
      "job grid and campaign seed, never on the schedule.");
  return 0;
}
