// Ablation: degree of redundancy (§I / §VIII — "the number and pairs of
// redundant cores in the multi-core system can be configured by the user,
// based on reliability and performance requirements").
//
// Sweeps UnSync group sizes: per-thread performance, hardware cost of the
// group, and the analytic probability of an unrecoverable double fault
// (a second strike on the group during a recovery window, which a pair
// cannot survive but a triple can).
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "fault/ser.hpp"
#include "hwmodel/core_model.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation: redundancy degree (group size)", args);

  const double base = bench::baseline_ipc(args, "gzip");
  const auto core_hw = hwmodel::unsync_core(10);

  TextTable t;
  t.set_header({"group size", "IPC", "rel. perf", "group area mm^2",
                "group power W", "recoveries", "unrecoverable window"});

  // Double-fault window: an error arriving while a recovery (~R cycles) is
  // in progress. With per-cycle rate lambda and error rate ser/inst at
  // IPC~1, P(second strike in window) ~= 1 - exp(-ser * R * (n-1 cores)).
  const double ser = 1e-4;
  for (const unsigned n : {2u, 3u, 4u}) {
    core::UnSyncParams p;
    p.group_size = n;
    p.cb_entries = 256;
    const auto r = bench::unsync_run(args, "gzip", p, ser);
    const double recovery_window =
        r.recoveries ? static_cast<double>(r.recovery_cycles_total) /
                           static_cast<double>(r.recoveries)
                     : 600.0;
    const double p_double = 1.0 - std::exp(-ser * recovery_window);
    // A pair dies on a double fault; larger groups still have a clean copy.
    const std::string exposure =
        n == 2 ? TextTable::num(p_double * 100, 3) + "% of recoveries"
               : "survivable (spare copy)";
    t.add_row({std::to_string(n), TextTable::num(r.thread_ipc(), 3),
               TextTable::pct(r.thread_ipc() / base),
               TextTable::num(n * core_hw.total_area_um2() / 1e6, 3),
               TextTable::num(n * core_hw.total_power_w(), 2),
               std::to_string(r.recoveries), exposure});
  }
  t.print(std::cout);

  bench::print_shape_note(
      "paper §I/§VIII: redundancy degree is a user knob trading "
      "area/power (linear in N) against tolerance of faults during "
      "recovery; performance is nearly flat because the cores stay "
      "unsynchronised regardless of N.");
  return 0;
}
