// Two-tier screening: fast-tier validation + speedup on a mixed grid.
//
// Runs a (benchmark x system) grid twice — once on the detailed
// cycle-accurate tier, once on the approximate interval model — and
// reports, per cell, the fast tier's CPI relative error and error-count
// deviation against the detailed truth, plus the whole-grid wall-clock
// speedup. The speedup is a same-host ratio (both tiers run in this
// process on the same grid), so it is stable across machines the same way
// the engine fast-forward gate is.
//
// It also re-runs the grid under the tier=screen policy at threshold 0 and
// cross-checks that the merged output is byte-identical to the pure
// detailed campaign — the end-to-end determinism contract of screening.
//
// json=<path> writes "unsync.bench_tier.v1", which
//     tools/check_bench_regression.py --tier
//         --tier-baseline bench/BENCH_tier_baseline.json
// gates in CI: identical must hold, the speedup must clear
// --min-tier-speedup (default 10x), and every cell's cpi_rel_err /
// err_dev must stay within the committed per-cell bound (the validated-
// fast-model methodology: the fast tier is only trustworthy while its
// error stays inside the published envelope). Refresh the envelope after
// a deliberate model change with --write-tier-baseline.
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/factory.hpp"

namespace {

using namespace unsync;

struct Cell {
  std::string bench;
  std::string system;
  double cpi_detailed = 0.0;
  double cpi_fast = 0.0;
  double cpi_rel_err = 0.0;
  std::uint64_t errors_detailed = 0;
  std::uint64_t errors_fast = 0;
  std::uint64_t err_dev = 0;
};

double cpi_of(const core::RunResult& r) {
  const double ipc = r.thread_ipc();
  return ipc > 0 ? 1.0 / ipc : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Tier screening: fast-model validation + speedup",
                      args);

  const double ser = 2e-4;  // enough strikes that error paths exercise
  const char* benches[] = {"gzip", "galgel", "mcf", "susan", "equake",
                           "bzip2"};
  const runtime::SystemKind systems[] = {
      runtime::SystemKind::kBaseline, runtime::SystemKind::kUnSync,
      runtime::SystemKind::kReunion,  runtime::SystemKind::kLockstep,
      runtime::SystemKind::kCheckpoint, runtime::SystemKind::kHetero};

  std::vector<runtime::SimJob> detailed_jobs;
  for (const char* b : benches) {
    for (const auto s : systems) {
      detailed_jobs.push_back(bench::sim_job(args, b, s, ser));
    }
  }
  std::vector<runtime::SimJob> fast_jobs = detailed_jobs;
  for (auto& j : fast_jobs) j.params.tier = engine::Tier::kFast;

  runtime::CampaignRunner::Options opts;
  opts.threads = args.workers;
  opts.campaign_seed = args.seed;
  const auto detailed = runtime::CampaignRunner(opts).run(detailed_jobs);
  const auto fast = runtime::CampaignRunner(opts).run(fast_jobs);
  const double speedup = fast.wall_seconds > 0
                             ? detailed.wall_seconds / fast.wall_seconds
                             : 0.0;

  // The end-to-end screening contract: threshold 0 == pure detailed,
  // byte for byte.
  runtime::CampaignRunner::Options screen = opts;
  screen.screen = true;
  screen.screen_threshold = 0.0;
  const bool identical =
      runtime::CampaignRunner(screen).run(detailed_jobs).to_json() ==
      detailed.to_json();

  TextTable t("Fast-tier error bounds (vs detailed, ser=2e-4)");
  t.set_header({"benchmark", "system", "CPI det", "CPI fast", "rel err",
                "errors det/fast"});
  std::vector<Cell> cells;
  for (std::size_t i = 0; i < detailed_jobs.size(); ++i) {
    Cell c;
    c.bench = detailed_jobs[i].label;
    c.system = core::name_of(detailed_jobs[i].system);
    c.cpi_detailed = cpi_of(detailed.results[i]);
    c.cpi_fast = cpi_of(fast.results[i]);
    c.cpi_rel_err = c.cpi_detailed > 0
                        ? std::abs(c.cpi_fast - c.cpi_detailed) /
                              c.cpi_detailed
                        : 0.0;
    c.errors_detailed = detailed.results[i].errors_injected;
    c.errors_fast = fast.results[i].errors_injected;
    c.err_dev = c.errors_detailed > c.errors_fast
                    ? c.errors_detailed - c.errors_fast
                    : c.errors_fast - c.errors_detailed;
    t.add_row({c.bench, c.system, TextTable::num(c.cpi_detailed, 3),
               TextTable::num(c.cpi_fast, 3),
               TextTable::pct(c.cpi_rel_err),
               std::to_string(c.errors_detailed) + "/" +
                   std::to_string(c.errors_fast)});
    cells.push_back(c);
  }
  t.print(std::cout);
  std::cout << "\ndetailed wall: " << TextTable::num(detailed.wall_seconds, 3)
            << "s, fast wall: " << TextTable::num(fast.wall_seconds, 3)
            << "s, speedup: " << TextTable::num(speedup, 1) << "x\n"
            << "screen threshold=0 byte-identical to pure detailed: "
            << (identical ? "yes" : "NO") << "\n";

  if (!identical) {
    std::cout << "\nERROR: screened campaign diverged from the pure "
                 "detailed run — the screening contract is broken.\n";
    return 1;
  }

  if (!args.json.empty()) {
    std::ostringstream js;
    js << "{\n  \"schema\": \"unsync.bench_tier.v1\",\n"
       << "  \"insts\": " << args.insts << ",\n"
       << "  \"seed\": " << args.seed << ",\n"
       << "  \"ser\": " << ser << ",\n"
       << "  \"detailed_wall_seconds\": " << detailed.wall_seconds << ",\n"
       << "  \"fast_wall_seconds\": " << fast.wall_seconds << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto& c = cells[i];
      js << "    {\"bench\": \"" << c.bench << "\", \"system\": \""
         << c.system << "\", \"cpi_detailed\": " << c.cpi_detailed
         << ", \"cpi_fast\": " << c.cpi_fast
         << ", \"cpi_rel_err\": " << c.cpi_rel_err
         << ", \"errors_detailed\": " << c.errors_detailed
         << ", \"errors_fast\": " << c.errors_fast
         << ", \"err_dev\": " << c.err_dev << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    if (args.json == "-") {
      std::cout << js.str();
    } else {
      std::ofstream f(args.json);
      if (!f) throw std::runtime_error("cannot write json file " + args.json);
      f << js.str();
      std::cout << "(tier JSON written to " << args.json << ")\n";
    }
  }

  bench::print_shape_note(
      "the fast tier trades per-structure fidelity for throughput: expect "
      ">=10x wall-clock speedup on this grid, CPI within the committed "
      "per-cell envelope (bench/BENCH_tier_baseline.json), and err_dev 0 "
      "everywhere — both tiers draw the identical fault-arrival schedule.");
  return 0;
}
