// Prefix-sharing speedup on a Monte-Carlo injection grid.
//
// Runs the same detailed-tier injection campaign twice — once naively
// (every trial simulates its full run) and once through the prefix-sharing
// engine (one golden run per unique fault-free configuration, trials
// restore from its in-memory checkpoints and finish early on convergence)
// — and reports the wall-clock speedup plus the engine's counters. Both
// campaigns run in this process on the same grid, so the speedup is a
// same-host ratio, stable across machines the way the tier and
// fast-forward gates are.
//
// The grid is the shape prefix sharing exists for: trace-workload cells
// (whose golden is shared across every SER point AND trial seed of the
// cell) with many Monte-Carlo trials per point, at soft-error rates low
// enough that most trials see few or no arrivals.
//
// json=<path> writes "unsync.bench_prefix.v1", which
//     tools/check_bench_regression.py --prefix
//         --prefix-baseline bench/BENCH_prefix_baseline.json
// gates in CI: identical must hold, the speedup must clear
// --min-prefix-speedup (default 3x), and the deterministic engine counters
// (goldens built, jobs restored/spliced/bypassed, cycles skipped) must
// exactly match the committed baseline — they are a pure function of the
// grid, independent of worker count and host. Refresh after a deliberate
// engine change with --write-prefix-baseline.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "workload/dyn_op.hpp"

namespace {

using namespace unsync;

/// Records a trace workload: trials replay identical ops, so the whole
/// cell shares one golden run (golden_job_key drops the seed for traces).
std::shared_ptr<const std::vector<workload::DynOp>> record_trace(
    const std::string& profile, std::uint64_t seed, std::uint64_t insts) {
  workload::SyntheticStream stream(workload::profile(profile), seed, insts);
  std::vector<workload::DynOp> ops;
  ops.reserve(insts);
  for (workload::DynOp op; stream.next(&op);) ops.push_back(op);
  return std::make_shared<const std::vector<workload::DynOp>>(std::move(ops));
}

std::uint64_t counter(const runtime::CampaignOutput& out,
                      const std::string& name) {
  const auto it = out.scheduler_metrics.counters.find(
      "campaign.prefix_cache." + name);
  return it == out.scheduler_metrics.counters.end() ? 0 : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Prefix-sharing injection campaign speedup", args);

  // jobs= scales the Monte-Carlo depth; the committed baseline pins the
  // default. 2 traces x 2 systems x 2 SER points x trials.
  const std::uint64_t trials = args.jobs ? args.jobs : 12;
  const double sers[] = {1e-6, 1e-5};

  struct Cellbase {
    const char* name;
    std::shared_ptr<const std::vector<workload::DynOp>> trace;
    runtime::SystemKind system;
  };
  const auto gzip = record_trace("gzip", 7, args.insts);
  const auto susan = record_trace("susan", 11, args.insts);
  const Cellbase cells[] = {
      {"gzip/unsync", gzip, runtime::SystemKind::kUnSync},
      {"gzip/reunion", gzip, runtime::SystemKind::kReunion},
      {"susan/unsync", susan, runtime::SystemKind::kUnSync},
      {"susan/reunion", susan, runtime::SystemKind::kReunion},
  };

  std::vector<runtime::SimJob> jobs;
  for (const auto& c : cells) {
    for (const double ser : sers) {
      for (std::uint64_t t = 0; t < trials; ++t) {
        runtime::SimJob job;
        job.label = c.name;
        job.trace = c.trace;
        job.system = c.system;
        job.ser_per_inst = ser;
        jobs.push_back(std::move(job));  // seed unset: one draw per trial
      }
    }
  }

  runtime::CampaignRunner::Options naive_opts;
  naive_opts.threads = args.workers;
  naive_opts.campaign_seed = args.seed;
  const auto naive = runtime::CampaignRunner(naive_opts).run(jobs);

  runtime::CampaignRunner::Options prefix_opts = naive_opts;
  prefix_opts.prefix.enabled = true;
  // Checkpoint + fingerprint cadence: each boundary costs a full-state
  // serialisation (in the golden build AND in every faulty job's
  // convergence scan), so a coarse cadence wins on runs this short — the
  // re-execution a coarser restore point adds is cheaper than the hashes
  // a finer one spends. ~4-5 boundaries per run is the sweet spot here.
  prefix_opts.prefix.interval = 15000;
  const auto prefix = runtime::CampaignRunner(prefix_opts).run(jobs);

  const double speedup = prefix.wall_seconds > 0
                             ? naive.wall_seconds / prefix.wall_seconds
                             : 0.0;
  const bool identical = prefix.to_json() == naive.to_json();

  TextTable t("Engine counters (" + std::to_string(jobs.size()) +
              " jobs, " + std::to_string(trials) + " trials per SER point)");
  t.set_header({"counter", "value"});
  const char* names[] = {"goldens_built", "hits",          "misses",
                         "evictions",     "jobs_restored",
                         "jobs_early_terminated", "jobs_bypassed",
                         "cycles_skipped", "bytes"};
  for (const char* n : names) {
    t.add_row({n, std::to_string(counter(prefix, n))});
  }
  t.print(std::cout);

  std::cout << "\nnaive wall: " << TextTable::num(naive.wall_seconds, 3)
            << "s, prefix wall: " << TextTable::num(prefix.wall_seconds, 3)
            << "s, speedup: " << TextTable::num(speedup, 1) << "x\n"
            << "prefix campaign byte-identical to naive: "
            << (identical ? "yes" : "NO") << "\n";

  if (!identical) {
    std::cout << "\nERROR: prefix-shared campaign diverged from the naive "
                 "run — the execution-strategy contract is broken.\n";
    return 1;
  }

  if (!args.json.empty()) {
    std::ostringstream js;
    js << "{\n  \"schema\": \"unsync.bench_prefix.v1\",\n"
       << "  \"insts\": " << args.insts << ",\n"
       << "  \"seed\": " << args.seed << ",\n"
       << "  \"trials\": " << trials << ",\n"
       << "  \"prefix_interval\": " << prefix_opts.prefix.interval << ",\n"
       << "  \"jobs\": " << jobs.size() << ",\n"
       << "  \"naive_wall_seconds\": " << naive.wall_seconds << ",\n"
       << "  \"prefix_wall_seconds\": " << prefix.wall_seconds << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"counters\": {\n";
    for (std::size_t i = 0; i < std::size(names); ++i) {
      js << "    \"" << names[i] << "\": " << counter(prefix, names[i])
         << (i + 1 < std::size(names) ? "," : "") << "\n";
    }
    js << "  }\n}\n";
    if (args.json == "-") {
      std::cout << js.str();
    } else {
      std::ofstream f(args.json);
      if (!f) throw std::runtime_error("cannot write json file " + args.json);
      f << js.str();
      std::cout << "(prefix JSON written to " << args.json << ")\n";
    }
  }

  bench::print_shape_note(
      "most Monte-Carlo trials at realistic soft-error rates share their "
      "entire fault-free prefix with the golden run: expect >=3x wall-clock "
      "speedup on this grid, identical=yes, and engine counters exactly "
      "matching bench/BENCH_prefix_baseline.json — the engine is an "
      "execution strategy, never a result change.");
  return 0;
}
