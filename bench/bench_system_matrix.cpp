// Six-architecture comparison matrix: overhead x detection coverage.
//
// One grid over every modelled system (baseline / unsync / reunion /
// lockstep / checkpoint / hetero) x benchmark x soft-error rate:
//
//   * ser=0 rows measure the error-free steady-state overhead of each
//     redundancy discipline against the unprotected baseline CMP;
//   * ser>0 rows measure detection coverage (detected strikes / injected
//     strikes) and the recovery cost each discipline pays.
//
// The matrix is the repo's cross-architecture acceptance surface: the
// heterogeneous leader/checker system must detect every injected strike
// (>= Lockstep's coverage) while keeping a lower error-free overhead than
// the fingerprint-synchronised DMR (reunion) — the MEEK-style argument
// that a small in-order checker is cheaper than synchronising two big
// cores.
//
// json=<path> writes "unsync.bench_systems.v1", gated in CI by
//     tools/check_bench_regression.py --systems
//         --systems-baseline bench/BENCH_systems_baseline.json
// which enforces: identical == true (worker-count determinism), full
// hetero/lockstep coverage with hetero >= lockstep, hetero error-free
// cycles < reunion's, and exact per-cell integer equality with the
// committed baseline. Refresh after a deliberate model change with
// --write-systems-baseline.
#include <array>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/factory.hpp"

namespace {

using namespace unsync;

constexpr std::array<core::SystemKind, 6> kSystems = {
    core::SystemKind::kBaseline,   core::SystemKind::kUnSync,
    core::SystemKind::kReunion,    core::SystemKind::kLockstep,
    core::SystemKind::kCheckpoint, core::SystemKind::kHetero};

constexpr const char* kBenches[] = {"gzip", "susan"};
constexpr double kSerPoints[] = {0.0, 5e-4};

struct Cell {
  std::string bench;
  std::string system;
  double ser = 0.0;
  core::RunResult r;

  std::uint64_t detected() const { return r.recoveries + r.rollbacks; }
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("System matrix: overhead x detection coverage", args);

  std::vector<runtime::SimJob> jobs;
  for (const double ser : kSerPoints) {
    for (const char* b : kBenches) {
      for (const auto kind : kSystems) {
        jobs.push_back(bench::sim_job(args, b, kind, ser));
      }
    }
  }

  const auto out = bench::run_grid(args, jobs);

  // Worker-count determinism: a serial run of the same grid must be
  // byte-identical — the scheduler may never leak into results.
  runtime::CampaignRunner::Options serial;
  serial.threads = 1;
  serial.campaign_seed = args.seed;
  const auto serial_out = runtime::CampaignRunner(serial).run(jobs);
  const bool identical = serial_out.to_json() == out.to_json();

  std::vector<Cell> cells;
  std::size_t at = 0;
  for (const double ser : kSerPoints) {
    for (const char* b : kBenches) {
      for (const auto kind : kSystems) {
        cells.push_back(
            {b, std::string(core::name_of(kind)), ser, out.results[at]});
        ++at;
      }
    }
  }

  const auto baseline_cycles = [&](const std::string& bench) {
    for (const auto& c : cells) {
      if (c.bench == bench && c.system == "baseline" && c.ser == 0.0) {
        return static_cast<double>(c.r.cycles);
      }
    }
    return 1.0;
  };

  TextTable t("System matrix (" + std::to_string(args.insts) + " insts x " +
              std::to_string(std::size(kBenches)) + " benches)");
  t.set_header({"bench", "system", "ser", "cycles", "slowdown", "injected",
                "detected", "cb stalls", "fp syncs"});
  for (const auto& c : cells) {
    t.add_row({c.bench, c.system, TextTable::num(c.ser, 4),
               std::to_string(c.r.cycles),
               TextTable::num(static_cast<double>(c.r.cycles) /
                                  baseline_cycles(c.bench),
                              3),
               std::to_string(c.r.errors_injected),
               std::to_string(c.detected()),
               std::to_string(c.r.cb_full_stalls),
               std::to_string(c.r.fingerprint_syncs)});
  }
  t.print(std::cout);
  std::cout << "\nresults identical across worker counts: "
            << (identical ? "yes" : "NO") << "\n";

  if (!identical) {
    std::cout << "\nERROR: the campaign scheduler leaked into the matrix — "
                 "the determinism contract is broken.\n";
    return 1;
  }

  if (!args.json.empty()) {
    std::ostringstream js;
    js << "{\n  \"schema\": \"unsync.bench_systems.v1\",\n"
       << "  \"insts\": " << args.insts << ",\n"
       << "  \"seed\": " << args.seed << ",\n"
       << "  \"identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto& c = cells[i];
      js << "    {\"bench\": \"" << c.bench << "\", \"system\": \""
         << c.system << "\", \"ser\": " << c.ser
         << ", \"cycles\": " << c.r.cycles
         << ", \"instructions\": " << c.r.instructions
         << ", \"injected\": " << c.r.errors_injected
         << ", \"detected\": " << c.detected()
         << ", \"rollbacks\": " << c.r.rollbacks
         << ", \"recoveries\": " << c.r.recoveries
         << ", \"cb_full_stalls\": " << c.r.cb_full_stalls
         << ", \"fingerprint_syncs\": " << c.r.fingerprint_syncs << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    if (args.json == "-") {
      std::cout << js.str();
    } else {
      std::ofstream f(args.json);
      if (!f) throw std::runtime_error("cannot write json file " + args.json);
      f << js.str();
      std::cout << "(matrix JSON written to " << args.json << ")\n";
    }
  }

  bench::print_shape_note(
      "redundancy is never free: every protected system costs cycles over "
      "the baseline at ser=0, with unsync cheapest (the paper's headline) "
      "and reunion's fingerprint synchronisation the most expensive DMR; "
      "hetero's small in-order checker undercuts reunion while detecting "
      "every injected strike, matching lockstep's full coverage at a "
      "fraction of a second big core.");
  return 0;
}
