// Checkpoint subsystem overhead: what does snapshotting cost, and what does
// journaling cost a campaign?
//
// Four questions, one table each:
//   1. Snapshot size and save/load wall time per architecture (the state a
//      mid-run "unsync.ckpt.v1" file carries).
//   2. In-memory container round trip (save_checkpoint_bytes /
//      load_checkpoint_bytes — the buffer-backed path the prefix-sharing
//      engine caches and restores from): blob size plus save and restore
//      latency into a fresh system.
//   3. Simulation throughput with periodic snapshots vs. none (save_state
//      is called from a paused simulation, so the only cost is the
//      serialization itself).
//   4. Campaign wall time with and without a job journal (the per-job blob
//      encode + append + flush).
//
// Run with default knobs for CI-scale numbers; raise insts= for stable
// timings.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "ckpt/serializer.hpp"
#include "core/factory.hpp"
#include "core/system.hpp"

namespace {

using namespace unsync;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::unique_ptr<core::System> make(const bench::BenchArgs& a,
                                   core::SystemKind kind) {
  workload::SyntheticStream s = a.stream("gzip");
  core::SystemConfig cfg = a.system_config(1e-5);
  return core::make_system(kind, cfg, s);
}

}  // namespace

int main(int argc, char** argv) {
  const auto a = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Checkpoint overhead (src/ckpt)", a);

  const core::SystemKind kinds[] = {
      core::SystemKind::kBaseline, core::SystemKind::kUnSync,
      core::SystemKind::kReunion, core::SystemKind::kLockstep,
      core::SystemKind::kCheckpoint};

  // 1) Snapshot size + save/load time, taken mid-run.
  TextTable t1("Mid-run snapshot: size and (de)serialization time");
  t1.set_header({"system", "ckpt bytes", "save ms", "load ms"});
  for (const auto kind : kinds) {
    auto sys = make(a, kind);
    sys->run(static_cast<Cycle>(a.insts / 2));

    auto t0 = std::chrono::steady_clock::now();
    ckpt::Serializer s;
    sys->save_checkpoint(s);
    const double save_s = seconds_since(t0);
    const std::string payload = s.take();

    auto fresh = make(a, kind);
    t0 = std::chrono::steady_clock::now();
    ckpt::Deserializer d(payload);
    fresh->load_checkpoint(d);
    const double load_s = seconds_since(t0);

    t1.add_row({core::name_of(kind), std::to_string(payload.size()),
                TextTable::num(save_s * 1e3, 3),
                TextTable::num(load_s * 1e3, 3)});
  }
  t1.print(std::cout);

  // 2) In-memory container round trip — the prefix engine's hot path: one
  //    save per golden interval, one restore per shared injection job.
  TextTable t1b("In-memory container: blob size and save/restore latency");
  t1b.set_header({"system", "blob bytes", "save ms", "restore ms"});
  for (const auto kind : kinds) {
    auto sys = make(a, kind);
    sys->run(static_cast<Cycle>(a.insts / 2));

    auto t0 = std::chrono::steady_clock::now();
    const std::string blob = sys->save_checkpoint_bytes();
    const double save_s = seconds_since(t0);

    auto fresh = make(a, kind);
    t0 = std::chrono::steady_clock::now();
    fresh->load_checkpoint_bytes(blob);
    const double restore_s = seconds_since(t0);

    t1b.add_row({core::name_of(kind), std::to_string(blob.size()),
                 TextTable::num(save_s * 1e3, 3),
                 TextTable::num(restore_s * 1e3, 3)});
  }
  t1b.print(std::cout);

  // 3) Run-to-completion wall time, plain vs. snapshot-every-quarter.
  TextTable t2("Simulation wall time: none vs. 4 snapshots per run");
  t2.set_header({"system", "plain ms", "snapshotting ms", "overhead"});
  for (const auto kind : kinds) {
    auto t0 = std::chrono::steady_clock::now();
    const auto full = make(a, kind)->run();
    const double plain_s = seconds_since(t0);

    auto sys = make(a, kind);
    t0 = std::chrono::steady_clock::now();
    for (int q = 1; q <= 4; ++q) {
      sys->run(full.cycles * static_cast<Cycle>(q) / 4);
      ckpt::Serializer s;
      sys->save_checkpoint(s);
    }
    sys->run();
    const double snap_s = seconds_since(t0);
    t2.add_row({core::name_of(kind), TextTable::num(plain_s * 1e3, 1),
                TextTable::num(snap_s * 1e3, 1),
                TextTable::pct(plain_s > 0 ? snap_s / plain_s - 1.0 : 0.0)});
  }
  t2.print(std::cout);

  // 4) Campaign with vs. without a job journal.
  std::vector<runtime::SimJob> jobs;
  for (const char* b : {"gzip", "mcf", "susan", "bzip2"}) {
    for (const auto kind : {runtime::SystemKind::kBaseline,
                            runtime::SystemKind::kUnSync,
                            runtime::SystemKind::kReunion}) {
      jobs.push_back(bench::sim_job(a, b, kind, 1e-5));
    }
  }
  runtime::CampaignRunner::Options plain_opts;
  plain_opts.threads = a.workers;
  plain_opts.campaign_seed = a.seed;
  const auto plain_out = runtime::CampaignRunner(plain_opts).run(jobs);

  runtime::CampaignRunner::Options j_opts = plain_opts;
  j_opts.journal = "bench_ckpt_overhead_journal.jsonl";
  const auto j_out = runtime::CampaignRunner(j_opts).run(jobs);
  std::remove(j_opts.journal.c_str());

  TextTable t3("Campaign journaling overhead (" + std::to_string(jobs.size()) +
               " jobs)");
  t3.set_header({"mode", "wall s", "overhead"});
  t3.add_row({"no journal", TextTable::num(plain_out.wall_seconds, 3), "-"});
  t3.add_row({"journal, flush per job",
              TextTable::num(j_out.wall_seconds, 3),
              TextTable::pct(plain_out.wall_seconds > 0
                                 ? j_out.wall_seconds /
                                       plain_out.wall_seconds - 1.0
                                 : 0.0)});
  t3.print(std::cout);

  bench::print_shape_note(
      "snapshot cost is a few ms and journaling adds low single-digit "
      "percent to a campaign — checkpointing is cheap enough to leave on "
      "for any long evaluation run.");
  return 0;
}
