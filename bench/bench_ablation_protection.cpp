// Ablation: protection-plan choices (§III-B.1's parity/DMR rule and the
// §VIII hardened alternatives), priced in hardware and measured by fault
// injection under single- and double-bit strikes.
#include <iostream>

#include "bench_util.hpp"
#include "fault/injector.hpp"
#include "hwmodel/core_model.hpp"
#include "isa/assembler.hpp"

namespace {

unsync::isa::Program campaign_program() {
  return unsync::isa::Assembler::assemble(R"(
  buf:
    .space 512
    addi r10, r0, 50
    addi r2, r0, 1
    la   r20, buf
  loop:
    add  r2, r2, r10
    mul  r3, r2, r10
    st   r3, 0(r20)
    ld   r4, 0(r20)
    xor  r2, r2, r4
    addi r20, r20, 8
    addi r10, r10, -1
    bne  r10, r0, loop
    addi r1, r0, 1
    syscall
    halt
  )");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace unsync;
  using namespace unsync::fault;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation: protection plans x fault multiplicity",
                      args);

  struct Variant {
    ProtectionPlan plan;
    hwmodel::CoreHw hw;
  };
  const Variant variants[] = {
      {baseline_plan(), hwmodel::mips_baseline()},
      {unsync_plan(), hwmodel::unsync_core(10)},
      {unsync_hardened_plan(), hwmodel::unsync_hardened_core(10)},
      {reunion_plan(), hwmodel::reunion_core(10)},
  };

  const auto prog = campaign_program();
  const auto mips = hwmodel::mips_baseline();

  for (const int flips : {1, 2}) {
    TextTable t(std::string(flips == 1 ? "Single-bit" : "Double-bit") +
                " strikes (500 trials per plan)");
    t.set_header({"plan", "area ovh", "power ovh", "masked", "corrected",
                  "recovered", "unrecoverable", "SDC"});
    for (const auto& v : variants) {
      InjectionConfig cfg;
      cfg.trials = 500;
      cfg.seed = args.seed;
      cfg.flips_per_fault = flips;
      const auto r = run_campaign(prog, v.plan, cfg);
      t.add_row({v.plan.name, TextTable::pct(v.hw.area_overhead_vs(mips)),
                 TextTable::pct(v.hw.power_overhead_vs(mips)),
                 std::to_string(r.masked),
                 std::to_string(r.corrected_in_place),
                 std::to_string(r.recovered),
                 std::to_string(r.unrecoverable), std::to_string(r.sdc)});
      if (r.recovery_failures != 0) {
        std::cerr << "MODEL BUG: recovery failures in plan " << v.plan.name
                  << "\n";
      }
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  bench::print_shape_note(
      "single-bit strikes: the base UnSync plan already yields zero SDC at "
      "+7.45% area; double-bit strikes slip past 1-bit parity (SDC "
      "reappears) and motivate the paper's §VIII hardened variant (SECDED / "
      "TMR), which restores zero SDC at higher cost.");
  return 0;
}
