// §IV / §VI-A component analysis: where each architecture's overhead lives,
// and how Reunion's CHECK stage scales with the fingerprint interval.
#include <iostream>

#include "bench_util.hpp"
#include "hwmodel/cell_library.hpp"
#include "hwmodel/components.hpp"
#include "hwmodel/core_model.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  using namespace unsync::hwmodel;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Component breakdown (hardware model)", args);

  // --- Reunion CHECK stage vs fingerprint interval -------------------------
  TextTable t("Reunion CHECK stage vs fingerprint interval");
  t.set_header({"FI", "CSB entries", "CSB bits", "CSB um^2", "CRC um^2",
                "datapath um^2", "CHECK um^2", "CHECK W",
                "CSB / MIPS-core-sans-cache"});
  for (const int fi : {1, 10, 20, 30, 50, 100}) {
    const BlockHw csb = check_stage_buffer(fi);
    const BlockHw crc = fingerprint_generator();
    const BlockHw dp = forwarding_datapath(fi);
    const BlockHw total = check_stage(fi);
    t.add_row({std::to_string(fi), std::to_string(csb_entries_for_fi(fi)),
               std::to_string(csb_bits_for_fi(fi)),
               TextTable::num(csb.area_um2, 0), TextTable::num(crc.area_um2, 0),
               TextTable::num(dp.area_um2, 0),
               TextTable::num(total.area_um2, 0),
               TextTable::num(total.power_w, 3),
               TextTable::pct(csb.area_um2 / kPaperMipsCellAreaNoCache)});
  }
  t.print(std::cout);

  std::cout << "\nReference points from the paper: CSB cell 10.40 um^2 vs RF "
               "cell 7.80 um^2 (1.33x);\n17x66-bit CSB = "
            << TextTable::num(check_stage_buffer(10).area_um2 /
                                  register_file_area_32x32(),
                              2)
            << "x a 32x32 register file (paper: 1.46x); CRC block = "
            << kPaperCrcGateCount << " gates.\n\n";

  // --- UnSync detection blocks ---------------------------------------------
  const BlockHw dmr = dmr_detection();
  const BlockHw parity = parity_detection();
  const BlockHw cb = communication_buffer(10);
  const BlockHw eih = error_interrupt_handler();
  TextTable u("UnSync detection hardware (per core)");
  u.set_header({"Block", "area um^2", "power W", "share of core overhead"});
  const double total_area = dmr.area_um2 + parity.area_um2;
  u.add_row({"DMR (PC + pipeline registers)", TextTable::num(dmr.area_um2, 0),
             TextTable::num(dmr.power_w, 4),
             TextTable::pct(dmr.area_um2 / total_area)});
  u.add_row({"Parity trees (RF/ROB/IQ/LSQ/TLB)",
             TextTable::num(parity.area_um2, 0),
             TextTable::num(parity.power_w, 4),
             TextTable::pct(parity.area_um2 / total_area)});
  u.add_row({"Communication Buffer (10 entries)",
             TextTable::num(cb.area_um2, 0), TextTable::num(cb.power_w, 6),
             "separate"});
  u.add_row({"EIH (per core pair)", TextTable::num(eih.area_um2, 0),
             TextTable::num(eih.power_w, 6), "separate"});
  u.print(std::cout);

  // --- Where the core overheads come from ----------------------------------
  const CoreHw mips = mips_baseline();
  const CoreHw reunion = reunion_core(10);
  const CoreHw unsync = unsync_core(10);
  std::cout << "\nCHECK stage = "
            << TextTable::pct((reunion.core_area_um2 - mips.core_area_um2) /
                              mips.core_area_um2)
            << " extra core area (paper: ~46%); UnSync detection = "
            << TextTable::pct((unsync.core_area_um2 - mips.core_area_um2) /
                              mips.core_area_um2)
            << " (paper: 17.6%).\n";

  bench::print_shape_note(
      "paper §IV-A: CSB at FI=50 is 39125 um^2 = 91% of the 42818 um^2 "
      "MIPS core excluding cache; the CHECK stage dominates Reunion's "
      "overhead while UnSync's detection blocks are mostly cheap "
      "combinational logic.");
  return 0;
}
