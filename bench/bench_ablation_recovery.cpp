// Ablation: the cost structure of "always forward execution" recovery
// (UnSync) versus checkpoint rollback (Reunion).
//
// UnSync's recovery is expensive per event (architectural state + L1 +
// CB copy through the L2) but happens without re-executing anything;
// Reunion's rollback is cheap per event but re-executes the window since
// the last verified fingerprint. This bench measures both costs per error
// empirically and shows where each wins — the trade the paper's §III-B.2
// argues and §VI-C quantifies via the break-even SER.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace unsync;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation: forward recovery vs rollback cost", args);

  core::UnSyncParams up;
  up.cb_entries = 256;
  core::ReunionParams rp;

  // Per-error cost: run each system error-free and at a rate that yields a
  // healthy error count; the marginal cycles per error are the cost.
  TextTable t;
  t.set_header({"benchmark", "UnSync cyc/err", "(state+L1 copy)",
                "Reunion cyc/err", "(re-execution)", "cheaper per error"});
  const char* benches[] = {"gzip", "bzip2", "mcf", "galgel", "susan"};
  const double rate = 5e-4;
  for (const auto* name : benches) {
    const auto u_clean = bench::unsync_run(args, name, up, 0.0);
    const auto u_err = bench::unsync_run(args, name, up, rate);
    const auto r_clean = bench::reunion_run(args, name, rp, 0.0);
    const auto r_err = bench::reunion_run(args, name, rp, rate);
    const double u_per =
        u_err.recoveries
            ? static_cast<double>(u_err.cycles - u_clean.cycles) /
                  static_cast<double>(u_err.recoveries)
            : 0.0;
    const double r_per =
        r_err.rollbacks
            ? static_cast<double>(r_err.cycles - r_clean.cycles) /
                  static_cast<double>(r_err.rollbacks)
            : 0.0;
    const double u_charged =
        u_err.recoveries ? static_cast<double>(u_err.recovery_cycles_total) /
                               static_cast<double>(u_err.recoveries)
                         : 0.0;
    t.add_row({name, TextTable::num(u_per, 0), TextTable::num(u_charged, 0),
               TextTable::num(r_per, 0),
               TextTable::num(r_per - 20.0, 0),  // minus the flush penalty
               u_per < r_per ? "unsync" : "reunion"});
  }
  t.print(std::cout);

  std::cout
      << "\nInterpretation: UnSync pays a large fixed copy cost per error "
         "(dominated by the L1 content copy)\nbut zero re-execution; Reunion "
         "pays a small flush penalty plus the re-executed window.\nBecause "
         "errors are rare at real SER rates (2.89e-17/inst at 90 nm), the "
         "error-free advantage of\nUnSync dominates total runtime — the "
         "per-error cost only matters near the 1.29e-3 break-even.\n";

  bench::print_shape_note(
      "paper §III-B.2: 'Our recovery mechanism has a higher overhead... "
      "However, by reducing the performance overheads during error free "
      "execution, and given the fact that errors are infrequent, UnSync "
      "achieves better performance.'");
  return 0;
}
