#include "hwmodel/die_projection.hpp"

#include "hwmodel/core_model.hpp"

namespace unsync::hwmodel {

const std::vector<ManyCoreChip>& table3_chips() {
  static const std::vector<ManyCoreChip> chips = {
      {"Intel Polaris", 65, 80, 2.5, 275.0},
      {"Tilera Tile64", 90, 64, 3.6, 330.0},
      {"NVIDIA GeForce", 90, 128, 3.0, 470.0},
  };
  return chips;
}

DieProjection project(const ManyCoreChip& chip, double reunion_cao,
                      double unsync_cao) {
  DieProjection p;
  p.chip = chip;
  const double core_area_total = chip.cores * chip.per_core_area_mm2;
  p.reunion_die_mm2 = chip.die_area_mm2 + core_area_total * reunion_cao;
  p.unsync_die_mm2 = chip.die_area_mm2 + core_area_total * unsync_cao;
  p.difference_mm2 = p.reunion_die_mm2 - p.unsync_die_mm2;
  return p;
}

std::vector<DieProjection> project_table3() {
  const CoreHw base = mips_baseline();
  const double reunion_cao = reunion_core().area_overhead_vs(base);
  const double unsync_cao = unsync_core().area_overhead_vs(base);
  std::vector<DieProjection> out;
  for (const auto& chip : table3_chips()) {
    out.push_back(project(chip, reunion_cao, unsync_cao));
  }
  return out;
}

}  // namespace unsync::hwmodel
