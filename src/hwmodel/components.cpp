#include "hwmodel/components.hpp"

#include "hwmodel/cell_library.hpp"

namespace unsync::hwmodel {

int csb_entries_for_fi(int fingerprint_interval) {
  return fingerprint_interval + kCsbEntryMargin;
}

std::uint64_t csb_bits_for_fi(int fingerprint_interval) {
  return static_cast<std::uint64_t>(csb_entries_for_fi(fingerprint_interval)) *
         kCsbEntryBits;
}

BlockHw check_stage_buffer(int fi) {
  const auto bits = static_cast<double>(csb_bits_for_fi(fi));
  return {.area_um2 = bits * kPaperCsbCellArea,
          .power_w = bits * kCsbPowerPerBit};
}

BlockHw fingerprint_generator() {
  return {.area_um2 = kPaperCrcGateCount * kGateArea, .power_w = kCrcPower};
}

BlockHw forwarding_datapath(int fi) {
  const auto bits = static_cast<double>(csb_bits_for_fi(fi));
  return {.area_um2 = bits * kDatapathAreaPerCsbBit + kCheckFixedArea,
          .power_w = bits * kDatapathPowerPerCsbBit};
}

BlockHw check_stage(int fi) {
  return check_stage_buffer(fi) + fingerprint_generator() +
         forwarding_datapath(fi);
}

namespace {

/// Bits of every-cycle sequential state (PC + pipeline registers) from the
/// shared structure inventory.
double every_cycle_bits() {
  double bits = 0;
  for (const auto& s : fault::structure_inventory()) {
    if (s.residency == fault::Residency::kEveryCycle) {
      bits += static_cast<double>(s.bits);
    }
  }
  return bits;
}

/// Number of parity-protected in-core storage structures (L1 and CB are
/// priced in their own models).
int parity_structure_count() {
  int n = 0;
  for (const auto& s : fault::structure_inventory()) {
    if (s.residency == fault::Residency::kStorage &&
        s.id != fault::Structure::kL1Data &&
        s.id != fault::Structure::kCommunicationBuffer) {
      ++n;
    }
  }
  return n;
}

}  // namespace

BlockHw dmr_detection() {
  const double bits = every_cycle_bits();
  return {.area_um2 = bits * kDmrAreaPerBit, .power_w = bits * kDmrPowerPerBit};
}

BlockHw parity_detection() {
  return {.area_um2 = parity_structure_count() * kParityTreeAreaPerStructure,
          .power_w = kParityCorePower};
}

BlockHw unsync_detection() { return dmr_detection() + parity_detection(); }

BlockHw tmr_detection() {
  // Two extra storage copies plus a majority voter versus DMR's single
  // duplicate and comparator: ~2.2x the DMR per-bit cost.
  const double bits = every_cycle_bits();
  return {.area_um2 = bits * kDmrAreaPerBit * 2.2,
          .power_w = bits * kDmrPowerPerBit * 2.2};
}

BlockHw secded_structure(std::uint64_t bits) {
  const double check_bits = static_cast<double>(bits) / 8.0;  // (72,64)
  constexpr double kL1DataBits = 32.0 * 1024 * 8;
  const double scale = static_cast<double>(bits) / kL1DataBits;
  return {.area_um2 = check_bits * kPaperRfCellArea + kSecdedLogicArea,
          .power_w = (kSecdedLogicPower + kSecdedStoragePower) * scale +
                     // structure codecs run at core speed; keep a floor so
                     // tiny structures still pay for their XOR trees
                     0.2e-3};
}

BlockHw detection_hardware(const fault::ProtectionPlan& plan) {
  using fault::Mechanism;
  using fault::Structure;
  BlockHw total;
  int parity_structures = 0;
  double dmr_bits = 0;
  double tmr_bits = 0;
  for (const auto& s : fault::structure_inventory()) {
    // L1 and CB carry their own cost models.
    if (s.id == Structure::kL1Data ||
        s.id == Structure::kCommunicationBuffer) {
      continue;
    }
    switch (plan.of(s.id)) {
      case Mechanism::kParity1:
        ++parity_structures;
        break;
      case Mechanism::kDmr:
        dmr_bits += static_cast<double>(s.bits);
        break;
      case Mechanism::kTmr:
        tmr_bits += static_cast<double>(s.bits);
        break;
      case Mechanism::kSecded:
        total += secded_structure(s.bits);
        break;
      case Mechanism::kNone:
      case Mechanism::kFingerprint:
        break;  // priced elsewhere (CHECK stage) or free
    }
  }
  total += {parity_structures * kParityTreeAreaPerStructure,
            parity_structures > 0
                ? kParityCorePower * parity_structures / 5.0
                : 0.0};
  total += {dmr_bits * kDmrAreaPerBit, dmr_bits * kDmrPowerPerBit};
  total += {tmr_bits * kDmrAreaPerBit * 2.2, tmr_bits * kDmrPowerPerBit * 2.2};
  return total;
}

BlockHw uncore_protection_hardware(fault::Mechanism m,
                                   std::uint64_t capacity_bits) {
  using fault::Mechanism;
  switch (m) {
    case Mechanism::kParity1: {
      // Byte parity: 1 check bit per 8 data bits in RF cells plus one
      // generate/verify tree, drawing the same per-structure share of the
      // calibrated parity power as detection_hardware().
      const double check_bits = static_cast<double>(capacity_bits) / 8.0;
      return {.area_um2 = check_bits * kPaperRfCellArea +
                          kParityTreeAreaPerStructure,
              .power_w = kParityCorePower / 5.0};
    }
    case Mechanism::kSecded:
      return secded_structure(capacity_bits);
    case Mechanism::kDmr: {
      const auto bits = static_cast<double>(capacity_bits);
      return {.area_um2 = bits * kDmrAreaPerBit,
              .power_w = bits * kDmrPowerPerBit};
    }
    case Mechanism::kTmr: {
      const auto bits = static_cast<double>(capacity_bits);
      return {.area_um2 = bits * kDmrAreaPerBit * 2.2,
              .power_w = bits * kDmrPowerPerBit * 2.2};
    }
    case Mechanism::kNone:
    case Mechanism::kFingerprint:
      break;  // free here; fingerprinting is priced by check_stage()
  }
  return {};
}

BlockHw communication_buffer(int entries) {
  return {.area_um2 = entries * kCbAreaPerEntry,
          .power_w = entries * kCbPowerPerEntry};
}

BlockHw error_interrupt_handler() {
  return {.area_um2 = kEihArea, .power_w = kEihPower};
}

double register_file_area_32x32() {
  return 32.0 * 32.0 * kPaperRfCellArea;
}

}  // namespace unsync::hwmodel
