// Area/power models of the individual hardware blocks each architecture
// adds to the baseline core.
#pragma once

#include <cstdint>

#include "fault/protection.hpp"

namespace unsync::hwmodel {

struct BlockHw {
  double area_um2 = 0;
  double power_w = 0;

  BlockHw& operator+=(const BlockHw& other) {
    area_um2 += other.area_um2;
    power_w += other.power_w;
    return *this;
  }
};

inline BlockHw operator+(BlockHw a, const BlockHw& b) { return a += b; }

// ---- Reunion CHECK-stage blocks (§IV-A) -----------------------------------

/// CSB entries required for a fingerprint interval (entries = FI + margin;
/// FI=10 -> 17 entries, matching §IV-A.3).
int csb_entries_for_fi(int fingerprint_interval);
std::uint64_t csb_bits_for_fi(int fingerprint_interval);

/// CHECK Stage Buffer: multi-ported array of 66-bit entries.
BlockHw check_stage_buffer(int fingerprint_interval);

/// Two-stage parallel CRC-16 fingerprint generator (238 gates).
BlockHw fingerprint_generator();

/// Register-forwarding logic + routed datapaths between CSB and pipeline;
/// grows with the buffer width (the paper measures +34% metal wiring).
BlockHw forwarding_datapath(int fingerprint_interval);

/// The complete CHECK stage for a given FI.
BlockHw check_stage(int fingerprint_interval);

// ---- UnSync detection blocks (§III-B.1) ------------------------------------

/// DMR detection on every-cycle sequential elements (PC, pipeline regs).
BlockHw dmr_detection();

/// Parity generate/verify trees on the storage structures (RF, ROB, IQ,
/// LSQ, TLB) — the L1's own parity lives in the cache model.
BlockHw parity_detection();

/// All in-core UnSync detection hardware.
BlockHw unsync_detection();

/// TMR hardening of every-cycle elements (paper §VIII): three copies plus
/// a voter — priced at 3x the DMR duplicate-and-compare cost per bit (two
/// extra copies and a majority voter versus one copy and a comparator).
BlockHw tmr_detection();

/// SECDED protection of an in-core storage structure of `bits` data bits
/// (e.g. the register file, §VIII): (72,64) check-bit storage in RF cells
/// plus encode/verify logic, with access power scaled from the L1's
/// calibrated SECDED adders by relative capacity.
BlockHw secded_structure(std::uint64_t bits);

/// Prices the in-core detection hardware an arbitrary protection plan
/// implies (the L1 and the CB are priced by their own models; fingerprint
/// mechanisms are priced by check_stage()).
BlockHw detection_hardware(const fault::ProtectionPlan& plan);

/// Prices protecting one uncore structure of `capacity_bits` data bits with
/// `m`: byte parity adds 1 check bit per 8 data bits plus a generate/verify
/// tree; SECDED reuses the (72,64) structure model. kNone is free; the
/// join of these costs with measured AVF is the protection frontier
/// (docs/FAULTS.md).
BlockHw uncore_protection_hardware(fault::Mechanism m,
                                   std::uint64_t capacity_bits);

/// Communication Buffer (per core).
BlockHw communication_buffer(int entries);

/// Error Interrupt Handler (per core-pair; halved when charged per core).
BlockHw error_interrupt_handler();

/// Reference: a 32-entry x 32-bit register file in RF cells — the yardstick
/// the paper compares the CSB against (CSB = 1.46x this).
double register_file_area_32x32();

}  // namespace unsync::hwmodel
