#include "hwmodel/core_model.hpp"

#include "hwmodel/cell_library.hpp"

namespace unsync::hwmodel {

namespace {
CacheGeometry l1_geometry() { return CacheGeometry{}; }  // 32 KiB / 2-way / 64 B
}  // namespace

CoreHw mips_baseline() {
  const CacheHw l1 = cache_hw(l1_geometry(), CacheProtection::kNone);
  return {.name = "mips",
          .core_area_um2 = kPaperMipsCoreArea,
          .l1_area_um2 = l1.area_um2,
          .cb_area_um2 = 0,
          .core_power_w = kPaperMipsCorePower,
          .l1_power_w = l1.power_w,
          .cb_power_w = 0};
}

CoreHw reunion_core(int fingerprint_interval) {
  const BlockHw check = check_stage(fingerprint_interval);
  const CacheHw l1 = cache_hw(l1_geometry(), CacheProtection::kSecded);
  return {.name = "reunion",
          .core_area_um2 = kPaperMipsCoreArea + check.area_um2,
          .l1_area_um2 = l1.area_um2,
          .cb_area_um2 = 0,
          .core_power_w = kPaperMipsCorePower + check.power_w,
          .l1_power_w = l1.power_w,
          .cb_power_w = 0};
}

CoreHw core_for_plan(const fault::ProtectionPlan& plan,
                     CacheProtection l1_protection, int cb_entries) {
  const BlockHw detect = detection_hardware(plan);
  const BlockHw cb = communication_buffer(cb_entries);
  const CacheHw l1 = cache_hw(l1_geometry(), l1_protection);
  return {.name = plan.name,
          .core_area_um2 = kPaperMipsCoreArea + detect.area_um2,
          .l1_area_um2 = l1.area_um2,
          .cb_area_um2 = cb.area_um2,
          .core_power_w = kPaperMipsCorePower + detect.power_w,
          .l1_power_w = l1.power_w,
          .cb_power_w = cb.power_w};
}

CoreHw unsync_hardened_core(int cb_entries) {
  return core_for_plan(fault::unsync_hardened_plan(),
                       CacheProtection::kSecded, cb_entries);
}

CoreHw unsync_core(int cb_entries) {
  const BlockHw detect = unsync_detection();
  const BlockHw cb = communication_buffer(cb_entries);
  const CacheHw l1 = cache_hw(l1_geometry(), CacheProtection::kParityPerLine);
  // The per-pair EIH (error_interrupt_handler()) is below the table's
  // resolution and is reported separately by the component-breakdown bench,
  // matching the paper's Table II which does not itemise it.
  return {.name = "unsync",
          .core_area_um2 = kPaperMipsCoreArea + detect.area_um2,
          .l1_area_um2 = l1.area_um2,
          .cb_area_um2 = cb.area_um2,
          .core_power_w = kPaperMipsCorePower + detect.power_w,
          .l1_power_w = l1.power_w,
          .cb_power_w = cb.power_w};
}

}  // namespace unsync::hwmodel
