#include "hwmodel/cache_model.hpp"

#include <cmath>

#include "hwmodel/cell_library.hpp"

namespace unsync::hwmodel {

namespace {
std::uint64_t lines_of(const CacheGeometry& g) {
  return g.size_bytes / g.line_bytes;
}
}  // namespace

std::uint64_t protection_check_bits(const CacheGeometry& g,
                                    CacheProtection protection) {
  switch (protection) {
    case CacheProtection::kNone:
      return 0;
    case CacheProtection::kParityPerLine:
      return lines_of(g);  // 1 bit per line
    case CacheProtection::kSecded:
      // (72,64): 8 check bits per 64 data bits.
      return g.size_bytes * 8 / 8;  // = data_bits / 8
  }
  return 0;
}

CacheHw cache_hw(const CacheGeometry& g, CacheProtection protection) {
  CacheHw hw;
  hw.data_bits = g.size_bytes * 8;
  hw.tag_bits = lines_of(g) * g.tag_bits_per_line;
  hw.check_bits = protection_check_bits(g, protection);

  const double stored_bits =
      static_cast<double>(hw.data_bits + hw.tag_bits + hw.check_bits);

  // Periphery scales with sqrt(capacity) relative to the 32 KiB anchor
  // (decoder depth and wordline length grow with array dimensions).
  constexpr double kAnchorBits = 32.0 * 1024 * 8 + 512 * 21;
  const double periphery_scale =
      std::sqrt(static_cast<double>(hw.data_bits + hw.tag_bits) / kAnchorBits);

  hw.area_um2 = stored_bits * kCacheAreaPerBit +
                kCachePeripheryArea * periphery_scale;
  double power = kPaperL1Power * periphery_scale;

  switch (protection) {
    case CacheProtection::kNone:
      break;
    case CacheProtection::kParityPerLine:
      hw.area_um2 += kParityLogicArea;
      power += kParityPowerAdder * periphery_scale;
      break;
    case CacheProtection::kSecded:
      hw.area_um2 += kSecdedLogicArea;
      power += (kSecdedLogicPower + kSecdedStoragePower) * periphery_scale;
      break;
  }
  hw.power_w = power;
  return hw;
}

}  // namespace unsync::hwmodel
