// Composition of the three per-core hardware configurations of Table II:
// baseline MIPS, Reunion (CHECK stage + SECDED L1), and UnSync (in-core
// detection + parity L1 + Communication Buffer).
#pragma once

#include <string>

#include "hwmodel/cache_model.hpp"
#include "hwmodel/components.hpp"

namespace unsync::hwmodel {

/// Per-core hardware summary in the units of Table II.
struct CoreHw {
  std::string name;
  double core_area_um2 = 0;
  double l1_area_um2 = 0;
  double cb_area_um2 = 0;  ///< CB (UnSync) — 0 elsewhere
  double core_power_w = 0;
  double l1_power_w = 0;
  double cb_power_w = 0;

  double total_area_um2() const {
    return core_area_um2 + l1_area_um2 + cb_area_um2;
  }
  double total_power_w() const {
    return core_power_w + l1_power_w + cb_power_w;
  }

  /// Fractional overheads versus a reference configuration.
  double area_overhead_vs(const CoreHw& base) const {
    return total_area_um2() / base.total_area_um2() - 1.0;
  }
  double power_overhead_vs(const CoreHw& base) const {
    return total_power_w() / base.total_power_w() - 1.0;
  }
};

/// Baseline MIPS core + unprotected 32 KiB L1.
CoreHw mips_baseline();

/// Reunion configuration for a fingerprint interval (Table II uses FI=10).
CoreHw reunion_core(int fingerprint_interval = 10);

/// UnSync configuration (Table II uses a 10-entry CB).
CoreHw unsync_core(int cb_entries = 10);

/// The §VIII hardened UnSync variant: TMR pipeline/PC, SECDED register
/// file, SECDED (multi-bit) L1 — the cost side of unsync_hardened_plan().
CoreHw unsync_hardened_core(int cb_entries = 10);

/// Generic composition: price an arbitrary in-core protection plan with a
/// chosen L1 scheme (the exploration API behind the ablation bench).
CoreHw core_for_plan(const fault::ProtectionPlan& plan,
                     CacheProtection l1_protection, int cb_entries);

}  // namespace unsync::hwmodel
