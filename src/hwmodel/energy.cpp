#include "hwmodel/energy.hpp"

namespace unsync::hwmodel {

EnergyReport energy_for_run(const CoreHw& per_core_hw, unsigned cores,
                            Cycle cycles, std::uint64_t instructions,
                            double hz) {
  EnergyReport r;
  r.runtime_s = static_cast<double>(cycles) / hz;
  r.energy_j = per_core_hw.total_power_w() * cores * r.runtime_s;
  r.energy_per_inst_nj =
      instructions ? r.energy_j / static_cast<double>(instructions) * 1e9
                   : 0.0;
  r.edp = r.energy_j * r.runtime_s;
  return r;
}

}  // namespace unsync::hwmodel
