// Energy metrics: joins the power model (src/hwmodel) with timing results
// (src/core) into run energy and energy-delay product — the figures of
// merit a design-space exploration ranks by (examples/design_explorer).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "hwmodel/core_model.hpp"

namespace unsync::hwmodel {

struct EnergyReport {
  double runtime_s = 0;
  double energy_j = 0;
  double energy_per_inst_nj = 0;
  /// Energy-delay product (J*s): lower is better; rewards designs that are
  /// both fast and frugal.
  double edp = 0;
};

/// Energy of a run: `cores` copies of `per_core_hw` running for `cycles`
/// at `hz` (the synthesis model's 300 MHz by default). Power is treated as
/// the synthesis model's average active power.
EnergyReport energy_for_run(const CoreHw& per_core_hw, unsigned cores,
                            Cycle cycles, std::uint64_t instructions,
                            double hz = 300e6);

}  // namespace unsync::hwmodel
