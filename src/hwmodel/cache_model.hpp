// CACTI-style analytic SRAM cache area/power model.
//
// Substitutes for the CACTI 6.0 runs of the paper's §V: area is an array
// term (per-bit, covering data + tag + protection check bits) plus a
// periphery term (decoders, sense amplifiers, drivers) that scales
// sub-linearly with capacity; power follows the same decomposition. The
// model is anchored at the paper's 32 KiB L1 point and reproduces the three
// protection variants of Table II: unprotected, +1-bit-parity-per-line, and
// +SECDED (8 check bits per 64-bit chunk).
#pragma once

#include <cstdint>

namespace unsync::hwmodel {

enum class CacheProtection : std::uint8_t {
  kNone,
  kParityPerLine,  ///< 1 parity bit per cache line (UnSync L1)
  kSecded,         ///< (72,64) SECDED on every 64-bit chunk (Reunion L1)
};

struct CacheGeometry {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t assoc = 2;
  std::uint32_t tag_bits_per_line = 21;  // tag + valid/dirty/LRU state
};

struct CacheHw {
  double area_um2 = 0;
  double power_w = 0;
  std::uint64_t data_bits = 0;
  std::uint64_t tag_bits = 0;
  std::uint64_t check_bits = 0;
};

/// Evaluates the model for a geometry + protection scheme at 300 MHz, 65 nm.
CacheHw cache_hw(const CacheGeometry& geometry, CacheProtection protection);

/// Protection check bits for a geometry (exposed for tests and the
/// component-breakdown bench).
std::uint64_t protection_check_bits(const CacheGeometry& geometry,
                                    CacheProtection protection);

}  // namespace unsync::hwmodel
