// Die-size projection to existing many-core processors (Table III).
//
// The paper scales each architecture's per-core area overhead (CAO, from
// Table II) onto published many-core die parameters:
//   CA_inc = n * CA * CAO
//   DA     = CA_inc + DA_orig
#pragma once

#include <string>
#include <vector>

namespace unsync::hwmodel {

struct ManyCoreChip {
  std::string name;
  int technology_nm;
  int cores;
  double per_core_area_mm2;
  double die_area_mm2;
};

/// The three chips of Table III: Intel Polaris, Tilera Tile64, NVIDIA
/// GeForce 8800.
const std::vector<ManyCoreChip>& table3_chips();

struct DieProjection {
  ManyCoreChip chip;
  double reunion_die_mm2 = 0;
  double unsync_die_mm2 = 0;
  double difference_mm2 = 0;  ///< DA_reunion - DA_unsync
};

/// Projects a chip's die area under both error-resilient implementations
/// given the per-core area-overhead factors (fractions, e.g. 0.2077).
DieProjection project(const ManyCoreChip& chip, double reunion_cao,
                      double unsync_cao);

/// Full Table III using the CAO factors computed from the core model.
std::vector<DieProjection> project_table3();

}  // namespace unsync::hwmodel
