// 65 nm cell-library and calibration constants for the analytic synthesis
// model.
//
// The paper synthesised RTL with Cadence Encounter at 65 nm / 300 MHz and
// reported several measured constants directly; those are taken verbatim
// (kPaper*). The remaining constants are calibration parameters chosen so
// the composed model regenerates Table II — they are documented as such and
// exercised by tests/test_hwmodel.cpp, which asserts the reproduction.
//
// All areas are in square micrometres (um^2); powers in watts at 300 MHz.
#pragma once

namespace unsync::hwmodel {

// ---- Measured constants quoted by the paper -------------------------------

/// Baseline MIPS core area after place-and-route (Table II).
inline constexpr double kPaperMipsCoreArea = 98558.0;
/// Baseline MIPS core power (Table II).
inline constexpr double kPaperMipsCorePower = 1.153;
/// Baseline 32 KiB L1 cache: area (um^2) and power (W) (Table II).
inline constexpr double kPaperL1Area = 193400.0;
inline constexpr double kPaperL1Power = 0.03835;

/// Register-file bit cell and CHECK-stage-buffer bit cell (the CSB cell is
/// 1.3x larger because of its extra read port) — §IV-A.3.
inline constexpr double kPaperRfCellArea = 7.80;
inline constexpr double kPaperCsbCellArea = 10.40;

/// The parallel CRC-16 fingerprint generator is 238 gates (§IV-A.2).
inline constexpr int kPaperCrcGateCount = 238;

/// CSB entry width: 66 bits; FI=10 requires 17 entries (§IV-A.3), i.e.
/// entries = FI + 7 (the +7 covers the in-flight fingerprint worth of
/// instructions accumulated during the 6-cycle comparison round trip).
inline constexpr int kCsbEntryBits = 66;
inline constexpr int kCsbEntryMargin = 7;

/// Synthesised MIPS core cell area excluding cache, pre-PNR (§IV-A.3; the
/// paper compares the FI=50 CSB's 39125 um^2 against this figure).
inline constexpr double kPaperMipsCellAreaNoCache = 42818.0;

/// Nominal placement density used for PNR (§V).
inline constexpr double kPaperPnrDensity = 0.49;

/// Reunion fingerprint parameters used in Table II (§V).
inline constexpr int kPaperReunionFi = 10;
inline constexpr int kPaperFingerprintBits = 16;
/// Minimum cycles to communicate + compare a fingerprint between cores (§IV-A.3).
inline constexpr int kPaperCompareLatency = 6;

/// UnSync CB configuration used in Table II (§V): 10 entries per core.
inline constexpr int kPaperCbEntries = 10;

// ---- Calibration constants (chosen to regenerate Table II) ----------------

/// Post-PNR area of one combinational gate (NAND2-equivalent) at 65 nm.
inline constexpr double kGateArea = 3.0;

/// Cache array: effective area per bit including array overheads, and the
/// fixed periphery (decoders, sense amps, drivers) for a 32 KiB / 2-way /
/// 64 B-line L1. Calibrated so base, +parity and +SECDED configurations
/// land on Table II (193400 / 193900 / 208600 um^2).
inline constexpr double kCacheAreaPerBit = 0.418;
inline constexpr double kCachePeripheryArea = 79329.472;
/// SECDED encode/verify XOR-tree logic area; parity tree logic area.
inline constexpr double kSecdedLogicArea = 1503.0;
inline constexpr double kParityLogicArea = 286.0;

/// Cache power split: array power scales with protected bit count; logic
/// adders calibrated to +9.9% (SECDED) and +0.26% (parity) of L1 power.
inline constexpr double kSecdedLogicPower = 3.3e-3;
inline constexpr double kSecdedStoragePower = 0.5e-3;
inline constexpr double kParityPowerAdder = 0.1e-3;

/// CHECK stage (Reunion): per-CSB-bit datapath/forwarding area (the paper
/// measures +34% metal wiring; routed datapath area grows with buffer
/// width) and fixed allied circuitry. Calibrated so the FI=10 CHECK stage
/// totals 45447 um^2 (the Reunion-minus-MIPS core delta in Table II).
inline constexpr double kDatapathAreaPerCsbBit = 29.1125;
inline constexpr double kCheckFixedArea = 400.0;

/// CHECK stage power: CSB array, CRC hashing, and datapath capacitance per
/// CSB bit. Calibrated to the +76.8% core-power delta at FI=10.
inline constexpr double kCsbPowerPerBit = 0.35e-3;
inline constexpr double kCrcPower = 0.05;
inline constexpr double kDatapathPowerPerCsbBit = 0.3942e-3;

/// UnSync in-core detection: DMR per duplicated-and-compared bit
/// (every-cycle elements) and parity tree area per protected storage
/// structure. Calibrated to the +17.6% core-area delta.
inline constexpr double kDmrAreaPerBit = 3.5;
inline constexpr double kParityTreeAreaPerStructure = 632.6;

/// UnSync in-core detection power: DMR duplicate+compare switching per bit
/// and the (negligible, 0.2%) parity share. Calibrated to +41.8% core power.
inline constexpr double kDmrPowerPerBit = 118e-6;
inline constexpr double kParityCorePower = 0.0023;

/// UnSync Communication Buffer (Table II: 10 entries = 3870 um^2,
/// 0.77258 mW): per-entry area and power.
inline constexpr double kCbAreaPerEntry = 387.0;
inline constexpr double kCbPowerPerEntry = 77.258e-6;

/// Error Interrupt Handler: small FSM + interconnect per core-pair.
inline constexpr double kEihArea = 520.0;
inline constexpr double kEihPower = 45e-6;

}  // namespace unsync::hwmodel
