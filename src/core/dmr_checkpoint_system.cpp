#include "core/dmr_checkpoint_system.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "ckpt/serializer.hpp"
#include "core/baseline.hpp"
#include "fault/ser.hpp"

namespace unsync::core {

namespace {

/// Shared write-back store-buffer behaviour (same as the baseline CMP).
bool store_buffer_commit(mem::MemoryHierarchy& memory,
                         std::vector<Cycle>& buffer, CoreId core, Addr addr,
                         Cycle now) {
  std::erase_if(buffer, [now](Cycle done) { return done <= now; });
  if (buffer.size() >= kStoreBufferEntries) return false;
  buffer.push_back(memory.store_writeback(core, addr, now).done);
  return true;
}

}  // namespace

bool DmrCheckpointSystem::CheckpointEnv::can_commit(CoreId core,
                                                    const workload::DynOp& op,
                                                    Cycle now) {
  (void)core;
  Pair& p = *pair_;
  if (op.seq < p.next_boundary) return true;

  // This core reached the checkpoint boundary: wait for the partner, then
  // the (heavyweight) capture + hash comparison.
  if (!p.reached[side_]) {
    p.reached[side_] = true;
    p.reached_at[side_] = now;
  }
  if (!(p.reached[0] && p.reached[1])) return false;
  if (p.checkpoint_done == 0) {
    p.checkpoint_done = std::max(p.reached_at[0], p.reached_at[1]) +
                        sys_->params_.checkpoint_cost +
                        sys_->params_.compare_latency;
    ++sys_->checkpoints_taken_;
    if (sys_->tracer_.enabled()) {
      sys_->tracer_.emit({.kind = obs::TraceKind::kCheckpoint,
                          .cycle = now,
                          .thread = static_cast<std::uint32_t>(core / 2),
                          .core = static_cast<std::uint32_t>(core),
                          .seq = p.next_boundary,
                          .addr = 0,
                          .value = p.checkpoint_done - now});
    }
  }
  if (now < p.checkpoint_done) return false;

  // Checkpoint committed: open the next epoch.
  p.last_committed_boundary = p.next_boundary;
  p.next_boundary += sys_->params_.checkpoint_interval;
  p.reached[0] = p.reached[1] = false;
  p.checkpoint_done = 0;
  return true;
}

bool DmrCheckpointSystem::CheckpointEnv::on_store_commit(
    CoreId core, const workload::DynOp& op, Cycle now) {
  return store_buffer_commit(sys_->memory_, pair_->store_buffer[side_], core,
                             op.mem_addr, now);
}

DmrCheckpointSystem::DmrCheckpointSystem(const SystemConfig& config,
                                         const CheckpointParams& params,
                                         const workload::InstStream& stream)
    : DmrCheckpointSystem(config, params,
                          detail::replicate(stream, config.num_threads)) {}

DmrCheckpointSystem::DmrCheckpointSystem(
    const SystemConfig& config, const CheckpointParams& params,
    const std::vector<const workload::InstStream*>& streams)
    : System(config.num_threads, config.fast_forward, config.avf),
      config_(config),
      params_(params),
      thread_lengths_(detail::lengths_of(streams)),
      memory_(config.mem, config.num_threads * 2),
      rng_(config.seed) {
  assert(params_.checkpoint_interval > 0);
  if (streams.size() != config_.num_threads) {
    throw std::invalid_argument(
        "DmrCheckpointSystem: need one stream per thread");
  }
  detail::prewarm_from(memory_, streams);
  for (unsigned t = 0; t < config_.num_threads; ++t) {
    auto pair = std::make_unique<Pair>();
    pair->store_buffer.resize(2);
    pair->next_boundary = params_.checkpoint_interval;
    for (unsigned side = 0; side < 2; ++side) {
      pair->env[side] =
          std::make_unique<CheckpointEnv>(this, pair.get(), side);
      pair->core[side] = std::make_unique<cpu::OooCore>(
          t * 2 + side, config_.core, &memory_, streams[t]->clone(),
          pair->env[side].get());
      register_core(*pair->core[side]);
    }
    pair->arrivals.positions = fault::schedule_arrivals(
        config_.ser_per_inst, thread_lengths_[t], rng_);
    pairs_.push_back(std::move(pair));
  }
  RunResult& acc = kernel_.result();
  acc.system = name_;
  acc.thread_instructions = thread_lengths_;
  acc.instructions = detail::max_length(thread_lengths_);
}

void DmrCheckpointSystem::member_tick(std::size_t g, std::size_t m,
                                      Cycle now) {
  auto& core = *pairs_[g]->core[m];
  if (!core.done()) core.tick(now);
}

Cycle DmrCheckpointSystem::member_next_event(std::size_t g, std::size_t m,
                                             Cycle now) const {
  return pairs_[g]->core[m]->next_event(now);
}

void DmrCheckpointSystem::member_skip_cycles(std::size_t g, std::size_t m,
                                             Cycle from, Cycle to) {
  auto& core = *pairs_[g]->core[m];
  if (!core.done()) core.skip_cycles(from, to);
}

void DmrCheckpointSystem::on_error(std::size_t g, Cycle now, RunResult& acc) {
  Pair& pair = *pairs_[g];
  const SeqNum progress =
      std::max(pair.core[0]->retired(), pair.core[1]->retired());
  if (!pair.arrivals.pending(progress)) return;
  const SeqNum position = pair.arrivals.take();
  // The mismatch surfaces at the next checkpoint hash; both cores restore
  // the previous checkpoint (heavyweight) and re-execute the whole epoch.
  const Cycle resume_at = now + params_.restore_cost;
  const auto struck = static_cast<unsigned>(rng_.below(2));
  engine::record_error(acc, tracer_,
                       {.cycle = now, .position = position,
                        .thread = static_cast<unsigned>(g),
                        .struck_core = struck, .cost = params_.restore_cost,
                        .rollback = true},
                       pair.last_committed_boundary);
  for (unsigned side = 0; side < 2; ++side) {
    pair.core[side]->set_position(pair.last_committed_boundary);
    pair.core[side]->stall_until(resume_at);
  }
  pair.next_boundary =
      pair.last_committed_boundary + params_.checkpoint_interval;
  pair.reached[0] = pair.reached[1] = false;
  pair.checkpoint_done = 0;
}

Cycle DmrCheckpointSystem::next_event(std::size_t g, Cycle now) const {
  const Pair& pair = *pairs_[g];
  const Cycle cand = members_next_event(g, now);
  if (cand <= now) return now;
  const SeqNum progress =
      std::max(pair.core[0]->retired(), pair.core[1]->retired());
  if (pair.arrivals.pending(progress)) return now;
  return cand;
}

void DmrCheckpointSystem::finish(RunResult& r) const {
  for (const auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      r.core_stats.push_back(pair->core[side]->stats());
    }
  }
}

void DmrCheckpointSystem::publish_extra_metrics() {
  if (!metrics_) return;
  metrics_->set_counter(name_ + ".checkpoints_taken", checkpoints_taken_);
}

void DmrCheckpointSystem::save_policy_state(ckpt::Serializer& s) const {
  for (const std::uint64_t word : rng_.state()) s.u64(word);
  memory_.save_state(s);
  s.u64(checkpoints_taken_);
  s.u64(pairs_.size());
  for (const auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      pair->core[side]->save_state(s);
      ckpt::save_u64_vec(s, pair->store_buffer[side]);
    }
    s.u64(pair->next_boundary);
    s.b(pair->reached[0]);
    s.b(pair->reached[1]);
    s.u64(pair->reached_at[0]);
    s.u64(pair->reached_at[1]);
    s.u64(pair->checkpoint_done);
    s.u64(pair->last_committed_boundary);
    pair->arrivals.save_state(s);
  }
}

void DmrCheckpointSystem::save_fault_channel(ckpt::Serializer& s) const {
  for (const std::uint64_t word : rng_.state()) s.u64(word);
  s.u64(pairs_.size());
  for (const auto& pair : pairs_) {
    engine::save_arrival_schedule(s, pair->arrivals);
  }
}

void DmrCheckpointSystem::load_fault_channel(ckpt::Deserializer& d) {
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = d.u64();
  rng_.set_state(rng_state);
  if (d.u64() != pairs_.size()) {
    throw ckpt::CkptError("dmr-checkpoint fault-channel pair-count mismatch");
  }
  for (const auto& pair : pairs_) {
    engine::load_arrival_schedule(d, pair->arrivals);
  }
}

std::vector<SeqNum> DmrCheckpointSystem::group_progress() const {
  std::vector<SeqNum> p;
  p.reserve(pairs_.size());
  for (const auto& pair : pairs_) {
    p.push_back(std::max(pair->core[0]->retired(), pair->core[1]->retired()));
  }
  return p;
}

void DmrCheckpointSystem::save_fingerprint_state(ckpt::Serializer& s) const {
  memory_.save_state(s);
  s.u64(checkpoints_taken_);
  s.u64(pairs_.size());
  for (const auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      pair->core[side]->save_state(s);
      ckpt::save_u64_vec(s, pair->store_buffer[side]);
    }
    s.u64(pair->next_boundary);
    s.b(pair->reached[0]);
    s.b(pair->reached[1]);
    s.u64(pair->reached_at[0]);
    s.u64(pair->reached_at[1]);
    s.u64(pair->checkpoint_done);
    s.u64(pair->last_committed_boundary);
  }
}

void DmrCheckpointSystem::load_policy_state(ckpt::Deserializer& d) {
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = d.u64();
  rng_.set_state(rng_state);
  memory_.load_state(d);
  checkpoints_taken_ = d.u64();
  if (d.u64() != pairs_.size()) {
    throw ckpt::CkptError("dmr-checkpoint pair-count mismatch");
  }
  for (const auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      pair->core[side]->load_state(d);
      ckpt::load_u64_vec(d, pair->store_buffer[side]);
    }
    pair->next_boundary = d.u64();
    pair->reached[0] = d.b();
    pair->reached[1] = d.b();
    pair->reached_at[0] = d.u64();
    pair->reached_at[1] = d.u64();
    pair->checkpoint_done = d.u64();
    pair->last_committed_boundary = d.u64();
    pair->arrivals.load_state(d, "dmr-checkpoint");
  }
}

}  // namespace unsync::core
