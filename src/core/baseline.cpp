#include "core/baseline.hpp"

#include <algorithm>
#include <stdexcept>

namespace unsync::core {

bool BaselineSystem::StoreBufferEnv::on_store_commit(CoreId core,
                                                     const workload::DynOp& op,
                                                     Cycle now) {
  if (in_flight_.size() <= core) in_flight_.resize(core + 1);
  auto& buf = in_flight_[core];
  std::erase_if(buf, [now](Cycle done) { return done <= now; });
  if (buf.size() >= entries_) return false;
  buf.push_back(memory_->store_writeback(core, op.mem_addr, now).done);
  return true;
}

BaselineSystem::BaselineSystem(const SystemConfig& config,
                               const workload::InstStream& stream)
    : BaselineSystem(config, detail::replicate(stream, config.num_threads)) {}

BaselineSystem::BaselineSystem(
    const SystemConfig& config,
    const std::vector<const workload::InstStream*>& streams)
    : System(config.num_threads),
      config_(config),
      thread_lengths_(detail::lengths_of(streams)),
      memory_(config.mem, config.num_threads),
      env_(&memory_, kStoreBufferEntries) {
  if (streams.size() != config.num_threads) {
    throw std::invalid_argument("BaselineSystem: need one stream per thread");
  }
  detail::prewarm_from(memory_, streams);
  for (unsigned t = 0; t < config.num_threads; ++t) {
    cores_.push_back(std::make_unique<cpu::OooCore>(
        t, config.core, &memory_, streams[t]->clone(), &env_));
    register_core(*cores_.back());
  }
}

RunResult BaselineSystem::run(Cycle max_cycles) {
  Cycle now = 0;
  auto all_done = [&] {
    return std::all_of(cores_.begin(), cores_.end(),
                       [](const auto& c) { return c->done(); });
  };
  while (!all_done() && now < max_cycles) {
    for (auto& core : cores_) {
      if (!core->done()) core->tick(now);
    }
    ++now;
  }

  RunResult r;
  r.system = name_;
  r.cycles = now;
  r.thread_instructions = thread_lengths_;
  r.instructions = detail::max_length(thread_lengths_);
  for (const auto& core : cores_) r.core_stats.push_back(core->stats());
  publish_metrics(r);
  return r;
}

}  // namespace unsync::core
