#include "core/baseline.hpp"

#include <stdexcept>

#include "ckpt/serializer.hpp"

namespace unsync::core {

bool BaselineSystem::StoreBufferEnv::on_store_commit(CoreId core,
                                                     const workload::DynOp& op,
                                                     Cycle now) {
  if (in_flight_.size() <= core) in_flight_.resize(core + 1);
  auto& buf = in_flight_[core];
  std::erase_if(buf, [now](Cycle done) { return done <= now; });
  if (buf.size() >= entries_) return false;
  buf.push_back(memory_->store_writeback(core, op.mem_addr, now).done);
  return true;
}

BaselineSystem::BaselineSystem(const SystemConfig& config,
                               const workload::InstStream& stream)
    : BaselineSystem(config, detail::replicate(stream, config.num_threads)) {}

BaselineSystem::BaselineSystem(
    const SystemConfig& config,
    const std::vector<const workload::InstStream*>& streams)
    : System(config.num_threads, config.fast_forward, config.avf),
      config_(config),
      thread_lengths_(detail::lengths_of(streams)),
      memory_(config.mem, config.num_threads),
      env_(&memory_, kStoreBufferEntries) {
  if (streams.size() != config.num_threads) {
    throw std::invalid_argument("BaselineSystem: need one stream per thread");
  }
  detail::prewarm_from(memory_, streams);
  for (unsigned t = 0; t < config.num_threads; ++t) {
    cores_.push_back(std::make_unique<cpu::OooCore>(
        t, config.core, &memory_, streams[t]->clone(), &env_));
    register_core(*cores_.back());
  }
  RunResult& acc = kernel_.result();
  acc.system = name_;
  acc.thread_instructions = thread_lengths_;
  acc.instructions = detail::max_length(thread_lengths_);
}

void BaselineSystem::finish(RunResult& r) const {
  for (const auto& core : cores_) r.core_stats.push_back(core->stats());
}

void BaselineSystem::StoreBufferEnv::save_state(ckpt::Serializer& s) const {
  s.begin_chunk("SBUF");
  s.u64(in_flight_.size());
  for (const auto& buf : in_flight_) ckpt::save_u64_vec(s, buf);
  s.end_chunk();
}

void BaselineSystem::StoreBufferEnv::load_state(ckpt::Deserializer& d) {
  d.begin_chunk("SBUF");
  in_flight_.resize(d.u64());
  for (auto& buf : in_flight_) ckpt::load_u64_vec(d, buf);
  d.end_chunk();
}

void BaselineSystem::save_policy_state(ckpt::Serializer& s) const {
  memory_.save_state(s);
  env_.save_state(s);
  s.u64(cores_.size());
  for (const auto& core : cores_) core->save_state(s);
}

std::vector<SeqNum> BaselineSystem::group_progress() const {
  std::vector<SeqNum> p;
  p.reserve(cores_.size());
  for (const auto& core : cores_) p.push_back(core->retired());
  return p;
}

void BaselineSystem::load_policy_state(ckpt::Deserializer& d) {
  memory_.load_state(d);
  env_.load_state(d);
  if (d.u64() != cores_.size()) {
    throw ckpt::CkptError("baseline core-count mismatch");
  }
  for (const auto& core : cores_) core->load_state(d);
}

}  // namespace unsync::core
