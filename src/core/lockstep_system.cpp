#include "core/lockstep_system.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "ckpt/serializer.hpp"
#include "core/baseline.hpp"
#include "fault/ser.hpp"

namespace unsync::core {

namespace {

/// Shared write-back store-buffer behaviour (same as the baseline CMP).
bool store_buffer_commit(mem::MemoryHierarchy& memory,
                         std::vector<Cycle>& buffer, CoreId core, Addr addr,
                         Cycle now) {
  std::erase_if(buffer, [now](Cycle done) { return done <= now; });
  if (buffer.size() >= kStoreBufferEntries) return false;
  buffer.push_back(memory.store_writeback(core, addr, now).done);
  return true;
}

}  // namespace

bool LockstepSystem::LockstepEnv::can_commit(CoreId core,
                                             const workload::DynOp& op,
                                             Cycle now) {
  (void)core;
  (void)now;
  // Tight coupling: neither core may retire past its partner by more than
  // one commit group.
  const auto& other = *pair_->core[1 - side_];
  if (op.seq >= other.retired() + sys_->params_.max_skew) {
    ++pair_->lockstep_stalls;
    return false;
  }
  return true;
}

bool LockstepSystem::LockstepEnv::on_store_commit(CoreId core,
                                                  const workload::DynOp& op,
                                                  Cycle now) {
  return store_buffer_commit(sys_->memory_, pair_->store_buffer[side_], core,
                             op.mem_addr, now);
}

LockstepSystem::LockstepSystem(const SystemConfig& config,
                               const LockstepParams& params,
                               const workload::InstStream& stream)
    : LockstepSystem(config, params,
                     detail::replicate(stream, config.num_threads)) {}

LockstepSystem::LockstepSystem(
    const SystemConfig& config, const LockstepParams& params,
    const std::vector<const workload::InstStream*>& streams)
    : System(config.num_threads, config.fast_forward, config.avf),
      config_(config),
      params_(params),
      thread_lengths_(detail::lengths_of(streams)),
      memory_(config.mem, config.num_threads * 2),
      rng_(config.seed) {
  if (streams.size() != config_.num_threads) {
    throw std::invalid_argument("LockstepSystem: need one stream per thread");
  }
  detail::prewarm_from(memory_, streams);
  cpu::CoreConfig core_cfg = config_.core;
  core_cfg.extra_load_latency = params_.load_check_latency;
  for (unsigned t = 0; t < config_.num_threads; ++t) {
    auto pair = std::make_unique<Pair>();
    pair->store_buffer.resize(2);
    for (unsigned side = 0; side < 2; ++side) {
      pair->env[side] = std::make_unique<LockstepEnv>(this, pair.get(), side);
      pair->core[side] = std::make_unique<cpu::OooCore>(
          t * 2 + side, core_cfg, &memory_, streams[t]->clone(),
          pair->env[side].get());
      register_core(*pair->core[side]);
    }
    pair->arrivals.positions = fault::schedule_arrivals(
        config_.ser_per_inst, thread_lengths_[t], rng_);
    pairs_.push_back(std::move(pair));
  }
  RunResult& acc = kernel_.result();
  acc.system = name_;
  acc.thread_instructions = thread_lengths_;
  acc.instructions = detail::max_length(thread_lengths_);
}

void LockstepSystem::member_tick(std::size_t g, std::size_t m, Cycle now) {
  auto& core = *pairs_[g]->core[m];
  if (!core.done()) core.tick(now);
}

Cycle LockstepSystem::member_next_event(std::size_t g, std::size_t m,
                                        Cycle now) const {
  return pairs_[g]->core[m]->next_event(now);
}

void LockstepSystem::member_skip_cycles(std::size_t g, std::size_t m,
                                        Cycle from, Cycle to) {
  auto& core = *pairs_[g]->core[m];
  if (!core.done()) core.skip_cycles(from, to);
}

void LockstepSystem::on_error(std::size_t g, Cycle now, RunResult& acc) {
  Pair& pair = *pairs_[g];
  const SeqNum progress =
      std::max(pair.core[0]->retired(), pair.core[1]->retired());
  if (!pair.arrivals.pending(progress)) return;
  const SeqNum position = pair.arrivals.take();
  // Lock-step sees the divergence the cycle it occurs; recovery is a
  // flush + instruction retry on both cores.
  const Cycle resume_at = now + params_.resync_penalty;
  const auto struck = static_cast<unsigned>(rng_.below(2));
  engine::record_error(acc, tracer_,
                       {.cycle = now, .position = position,
                        .thread = static_cast<unsigned>(g),
                        .struck_core = struck, .cost = params_.resync_penalty,
                        .rollback = false},
                       position);
  for (unsigned side = 0; side < 2; ++side) {
    pair.core[side]->stall_until(resume_at);
  }
}

Cycle LockstepSystem::next_event(std::size_t g, Cycle now) const {
  const Pair& pair = *pairs_[g];
  const Cycle cand = members_next_event(g, now);
  if (cand <= now) return now;
  const SeqNum progress =
      std::max(pair.core[0]->retired(), pair.core[1]->retired());
  if (pair.arrivals.pending(progress)) return now;
  return cand;
}

void LockstepSystem::finish(RunResult& r) const {
  for (const auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      r.core_stats.push_back(pair->core[side]->stats());
    }
    r.fingerprint_syncs += pair->lockstep_stalls;  // repurposed: sync stalls
  }
}

void LockstepSystem::save_policy_state(ckpt::Serializer& s) const {
  for (const std::uint64_t word : rng_.state()) s.u64(word);
  memory_.save_state(s);
  s.u64(pairs_.size());
  for (const auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      pair->core[side]->save_state(s);
      ckpt::save_u64_vec(s, pair->store_buffer[side]);
    }
    pair->arrivals.save_state(s);
    s.u64(pair->lockstep_stalls);
  }
}

void LockstepSystem::save_fault_channel(ckpt::Serializer& s) const {
  for (const std::uint64_t word : rng_.state()) s.u64(word);
  s.u64(pairs_.size());
  for (const auto& pair : pairs_) {
    engine::save_arrival_schedule(s, pair->arrivals);
  }
}

void LockstepSystem::load_fault_channel(ckpt::Deserializer& d) {
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = d.u64();
  rng_.set_state(rng_state);
  if (d.u64() != pairs_.size()) {
    throw ckpt::CkptError("lockstep fault-channel pair-count mismatch");
  }
  for (const auto& pair : pairs_) {
    engine::load_arrival_schedule(d, pair->arrivals);
  }
}

std::vector<SeqNum> LockstepSystem::group_progress() const {
  std::vector<SeqNum> p;
  p.reserve(pairs_.size());
  for (const auto& pair : pairs_) {
    p.push_back(std::max(pair->core[0]->retired(), pair->core[1]->retired()));
  }
  return p;
}

void LockstepSystem::save_fingerprint_state(ckpt::Serializer& s) const {
  memory_.save_state(s);
  s.u64(pairs_.size());
  for (const auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      pair->core[side]->save_state(s);
      ckpt::save_u64_vec(s, pair->store_buffer[side]);
    }
    s.u64(pair->lockstep_stalls);
  }
}

void LockstepSystem::load_policy_state(ckpt::Deserializer& d) {
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = d.u64();
  rng_.set_state(rng_state);
  memory_.load_state(d);
  if (d.u64() != pairs_.size()) {
    throw ckpt::CkptError("lockstep pair-count mismatch");
  }
  for (const auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      pair->core[side]->load_state(d);
      ckpt::load_u64_vec(d, pair->store_buffer[side]);
    }
    pair->arrivals.load_state(d, "lockstep");
    pair->lockstep_stalls = d.u64();
  }
}

}  // namespace unsync::core
