#include "core/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/table.hpp"

namespace unsync::core {

void RunReport::print(std::ostream& os) const {
  TextTable head("Run: " + result_.system);
  head.set_header({"metric", "value"});
  head.add_row({"cycles", std::to_string(result_.cycles)});
  head.add_row({"instructions/thread", std::to_string(result_.instructions)});
  head.add_row({"thread IPC", TextTable::num(result_.thread_ipc(), 4)});
  head.add_row({"errors injected", std::to_string(result_.errors_injected)});
  head.add_row({"forward recoveries", std::to_string(result_.recoveries)});
  head.add_row({"rollbacks", std::to_string(result_.rollbacks)});
  head.add_row({"recovery cycles", std::to_string(result_.recovery_cycles_total)});
  head.add_row({"CB-full commit stalls", std::to_string(result_.cb_full_stalls)});
  head.add_row({"serializing syncs", std::to_string(result_.fingerprint_syncs)});
  head.print(os);
  os << "\n";

  TextTable cores("Per-core pipeline");
  cores.set_header({"core", "committed", "IPC", "avgROB", "mispredict%",
                    "robFull", "iqFull", "lsqFull", "storeStall", "gateStall",
                    "fetchBr", "fetchSer", "fetchIc", "dtlbMiss", "itlbMiss"});
  for (std::size_t i = 0; i < result_.core_stats.size(); ++i) {
    const auto& cs = result_.core_stats[i];
    const double mp =
        cs.branches ? 100.0 * static_cast<double>(cs.mispredicts) /
                          static_cast<double>(cs.branches)
                    : 0.0;
    cores.add_row({std::to_string(i), std::to_string(cs.committed),
                   TextTable::num(cs.ipc(), 3),
                   TextTable::num(cs.avg_rob_occupancy(), 1),
                   TextTable::num(mp, 1), std::to_string(cs.dispatch_stall_rob),
                   std::to_string(cs.dispatch_stall_iq),
                   std::to_string(cs.dispatch_stall_lsq),
                   std::to_string(cs.commit_stall_store),
                   std::to_string(cs.commit_stall_gate),
                   std::to_string(cs.fetch_blocked_branch),
                   std::to_string(cs.fetch_blocked_serialize),
                   std::to_string(cs.fetch_blocked_icache),
                   std::to_string(cs.dtlb_misses),
                   std::to_string(cs.itlb_misses)});
  }
  cores.print(os);

  if (!result_.error_log.empty()) {
    os << "\n";
    TextTable err("Soft-error events (" +
                  std::to_string(result_.error_log.size()) + ")");
    err.set_header({"#", "cycle", "position", "thread", "struck core",
                    "cost (cycles)", "handling"});
    // Cap the listing; a stress run can have thousands of events.
    const std::size_t shown = std::min<std::size_t>(result_.error_log.size(),
                                                    20);
    for (std::size_t i = 0; i < shown; ++i) {
      const auto& e = result_.error_log[i];
      err.add_row({std::to_string(i), std::to_string(e.cycle),
                   std::to_string(e.position), std::to_string(e.thread),
                   std::to_string(e.struck_core), std::to_string(e.cost),
                   e.rollback ? "rollback" : "forward recovery"});
    }
    if (shown < result_.error_log.size()) {
      err.add_row({"...", "", "", "", "", "", ""});
    }
    err.print(os);
  }

  // IPC-over-time sparkline when the cores sampled intervals.
  if (!result_.core_stats.empty() &&
      result_.core_stats[0].interval_committed.size() > 1) {
    const auto& samples = result_.core_stats[0].interval_committed;
    os << "\nIPC over time (core 0, " << samples.size() << " samples): ";
    static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
    std::uint64_t max_delta = 1;
    for (std::size_t i = 1; i < samples.size(); ++i) {
      max_delta = std::max(max_delta, samples[i] - samples[i - 1]);
    }
    for (std::size_t i = 1; i < samples.size(); ++i) {
      const auto delta = samples[i] - samples[i - 1];
      os << kLevels[delta * 7 / max_delta];
    }
    os << "\n";
  }

  if (memory_ != nullptr) {
    os << "\n";
    TextTable mem("Memory system");
    mem.set_header({"component", "hits", "misses", "miss rate", "extra"});
    for (unsigned c = 0; c < memory_->num_cores(); ++c) {
      const auto& l1 = memory_->l1(c);
      mem.add_row({"L1D core " + std::to_string(c), std::to_string(l1.hits()),
                   std::to_string(l1.misses()), TextTable::pct(l1.miss_rate()),
                   "wb=" + std::to_string(l1.writebacks())});
      const auto& l1i = memory_->icache(c);
      mem.add_row({"L1I core " + std::to_string(c), std::to_string(l1i.hits()),
                   std::to_string(l1i.misses()),
                   TextTable::pct(l1i.miss_rate()), ""});
    }
    const auto& l2 = memory_->l2();
    mem.add_row({"L2 shared", std::to_string(l2.hits()),
                 std::to_string(l2.misses()), TextTable::pct(l2.miss_rate()),
                 "wb=" + std::to_string(l2.writebacks())});
    mem.add_row({"bus", "", "", "",
                 "busy=" + std::to_string(memory_->bus().busy_cycles()) +
                     " txn=" + std::to_string(memory_->bus().transactions())});
    mem.print(os);
  }
}

std::string RunReport::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string RunReport::csv_header() {
  return "system,core,cycles,committed,ipc,avg_rob,branches,mispredicts,"
         "loads,stores,serializing,dispatch_stall_rob,dispatch_stall_iq,"
         "commit_stall_store,commit_stall_gate,recovery_stall_cycles,"
         "dtlb_misses,itlb_misses\n";
}

std::string RunReport::csv_rows() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < result_.core_stats.size(); ++i) {
    const auto& cs = result_.core_stats[i];
    os << result_.system << ',' << i << ',' << result_.cycles << ','
       << cs.committed << ',' << TextTable::num(cs.ipc(), 4) << ','
       << TextTable::num(cs.avg_rob_occupancy(), 1) << ',' << cs.branches
       << ',' << cs.mispredicts << ',' << cs.loads << ',' << cs.stores << ','
       << cs.serializing << ',' << cs.dispatch_stall_rob << ','
       << cs.dispatch_stall_iq << ',' << cs.commit_stall_store << ','
       << cs.commit_stall_gate << ',' << cs.recovery_stall_cycles << ','
       << cs.dtlb_misses << ',' << cs.itlb_misses << '\n';
  }
  return os.str();
}

}  // namespace unsync::core
