#include "core/system.hpp"

namespace unsync::core {

void System::save_state(ckpt::Serializer& s) const {
  kernel_.save_state(*this, s);
}

void System::load_state(ckpt::Deserializer& d) { kernel_.load_state(*this, d); }

void System::register_core(cpu::OooCore& core) {
  core.set_tracer(&tracer_);
  registered_cores_.push_back(&core);
}

std::string System::core_prefix(std::size_t i) const {
  const std::size_t per =
      num_threads_ ? registered_cores_.size() / num_threads_ : 1;
  if (per <= 1) return name() + ".core" + std::to_string(i);
  return name() + ".group" + std::to_string(i / per) + ".core" +
         std::to_string(i % per);
}

void System::set_observability(obs::MetricsRegistry* metrics,
                               obs::TraceSink* trace) {
  metrics_ = metrics;
  tracer_.set_sink(trace);
  memory().set_tracer(&tracer_);
  for (std::size_t i = 0; i < registered_cores_.size(); ++i) {
    cpu::OooCore& core = *registered_cores_[i];
    if (metrics_) {
      // One bucket per integer occupancy in [0, rob_entries].
      const auto cap = core.config().rob_entries;
      core.set_rob_histogram(&metrics_->histogram(
          core_prefix(i) + ".rob.occupancy", 0.0,
          static_cast<double>(cap + 1), cap + 1));
    } else {
      core.set_rob_histogram(nullptr);
    }
  }
}

void System::publish_metrics(const RunResult& r) {
  if (!metrics_) return;
  obs::MetricsRegistry& reg = *metrics_;
  for (std::size_t i = 0;
       i < registered_cores_.size() && i < r.core_stats.size(); ++i) {
    cpu::publish_core_stats(reg, core_prefix(i), r.core_stats[i]);
  }
  memory().publish_metrics(reg, name() + ".mem");
  reg.set_counter(name() + ".cycles", r.cycles);
  reg.set_counter(name() + ".instructions", r.instructions);
  reg.set_counter(name() + ".errors.injected", r.errors_injected);
  reg.set_counter(name() + ".errors.recoveries", r.recoveries);
  reg.set_counter(name() + ".errors.rollbacks", r.rollbacks);
  reg.set_counter(name() + ".errors.recovery_cycles_total",
                  r.recovery_cycles_total);
  reg.set_counter(name() + ".stall.cb_full", r.cb_full_stalls);
  reg.set_counter(name() + ".fingerprint_syncs", r.fingerprint_syncs);
  reg.gauge(name() + ".thread_ipc").add(r.thread_ipc());
}

}  // namespace unsync::core
