#include "core/system.hpp"

namespace unsync::core {

void System::save_state(ckpt::Serializer& s) const {
  kernel_.save_state(*this, s);
}

void System::load_state(ckpt::Deserializer& d) { kernel_.load_state(*this, d); }

void System::register_core(cpu::OooCore& core) {
  core.set_tracer(&tracer_);
  registered_cores_.push_back(&core);
}

std::string System::core_prefix(std::size_t i) const {
  const std::size_t per =
      num_threads_ ? registered_cores_.size() / num_threads_ : 1;
  if (per <= 1) return name() + ".core" + std::to_string(i);
  return name() + ".group" + std::to_string(i / per) + ".core" +
         std::to_string(i % per);
}

void System::set_observability(obs::MetricsRegistry* metrics,
                               obs::TraceSink* trace) {
  metrics_ = metrics;
  tracer_.set_sink(trace);
  memory().set_tracer(&tracer_);
  for (std::size_t i = 0; i < registered_cores_.size(); ++i) {
    cpu::OooCore& core = *registered_cores_[i];
    if (metrics_) {
      // One bucket per integer occupancy in [0, rob_entries].
      const auto cap = core.config().rob_entries;
      core.set_rob_histogram(&metrics_->histogram(
          core_prefix(i) + ".rob.occupancy", 0.0,
          static_cast<double>(cap + 1), cap + 1));
    } else {
      core.set_rob_histogram(nullptr);
    }
  }
  if (avf_enabled_ && metrics_ && !avf_collector_) wire_avf();
}

void System::wire_avf() {
  avf_collector_ = std::make_unique<fault::AvfCollector>();
  fault::AvfCollector& c = *avf_collector_;
  mem::MemoryHierarchy& m = memory();

  m.bus().set_avf(c.make_tracker(fault::UncoreStructure::kBusQueue,
                                 fault::kBusQueueEntries,
                                 fault::kBusQueueEntryBits));
  m.dram_channel().set_avf(c.make_tracker(fault::UncoreStructure::kDramQueue,
                                          fault::kDramQueueEntries,
                                          fault::kDramQueueEntryBits));

  const auto wire_cache = [&c](mem::Cache& cache) {
    const auto lines = static_cast<std::uint64_t>(cache.config().num_sets()) *
                       cache.config().assoc;
    cache.set_avf(c.make_tracker(fault::UncoreStructure::kCacheTag, lines,
                                 cache.tag_entry_bits()));
    cache.mshrs().set_avf(c.make_tracker(fault::UncoreStructure::kMshr,
                                         cache.mshrs().capacity(),
                                         fault::kMshrEntryBits));
  };
  for (unsigned i = 0; i < m.num_cores(); ++i) {
    wire_cache(m.l1(i));
    wire_cache(m.icache(i));
  }
  wire_cache(m.l2());
  // The shared L2's data array dominates uncore SRAM capacity; per the ACE
  // model every valid line's payload is live state (line_bytes*8 bits).
  {
    mem::Cache& l2 = m.l2();
    const auto lines = static_cast<std::uint64_t>(l2.config().num_sets()) *
                       l2.config().assoc;
    l2.set_data_avf(c.make_tracker(fault::UncoreStructure::kCacheData, lines,
                                   l2.config().line_bytes * 8));
  }

  for (cpu::OooCore* core : registered_cores_) {
    core->set_tlb_avf(
        c.make_tracker(fault::UncoreStructure::kTlb,
                       core->itlb().config().entries, fault::kTlbEntryBits),
        c.make_tracker(fault::UncoreStructure::kTlb,
                       core->dtlb().config().entries, fault::kTlbEntryBits));
  }

  register_avf(c);
  // Capture prewarmed tag occupancy from cycle 0.
  m.avf_update_all(0);
}

void System::publish_metrics(const RunResult& r) {
  if (!metrics_) return;
  obs::MetricsRegistry& reg = *metrics_;
  for (std::size_t i = 0;
       i < registered_cores_.size() && i < r.core_stats.size(); ++i) {
    cpu::publish_core_stats(reg, core_prefix(i), r.core_stats[i]);
  }
  memory().publish_metrics(reg, name() + ".mem");
  reg.set_counter(name() + ".cycles", r.cycles);
  reg.set_counter(name() + ".instructions", r.instructions);
  reg.set_counter(name() + ".errors.injected", r.errors_injected);
  reg.set_counter(name() + ".errors.recoveries", r.recoveries);
  reg.set_counter(name() + ".errors.rollbacks", r.rollbacks);
  reg.set_counter(name() + ".errors.recovery_cycles_total",
                  r.recovery_cycles_total);
  reg.set_counter(name() + ".stall.cb_full", r.cb_full_stalls);
  reg.set_counter(name() + ".fingerprint_syncs", r.fingerprint_syncs);
  reg.gauge(name() + ".thread_ipc").add(r.thread_ipc());
  if (avf_collector_) {
    avf_collector_->finish(r.cycles);
    avf_collector_->publish(reg, r.cycles);
  }
}

}  // namespace unsync::core
