// Heterogeneous leader/checker redundancy (MEEK / DIVA-style, cf. paper
// §II's partial-redundancy discussion).
//
// Each application thread runs on an ASYMMETRIC group: a big out-of-order
// leader core (member 0) and a small in-order checker core (member 1)
// executing the same stream. The only coupling is a bounded CheckLog: the
// leader appends one entry per committed load / branch / store, and the
// checker consumes entries strictly in order at its own commit stage,
// comparing outcomes. Sync discipline is log-structured:
//
//   * a full log stalls the leader's commit stage (back-pressure — the
//     checker sets the group's sustainable throughput);
//   * an empty log stalls the checker (it may never run ahead of verified
//     leader results);
//   * stores are held in the log and reach the memory hierarchy only when
//     the checker verifies them — unverified state never escapes the group.
//
// Error handling: a soft-error strike on the leader at instruction P is
// DETECTED when the checker verifies P (mismatching entry), so detection
// latency is the log residency — bounded by the log capacity, far shorter
// than DMR-checkpoint epochs. Recovery rolls both cores back to the last
// verified commit (= P, everything older is checker-verified), discards the
// unverified log tail, and stalls both for `rollback_penalty` cycles.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "cpu/check_log.hpp"
#include "cpu/in_order_core.hpp"
#include "engine/error_injection.hpp"
#include "mem/hierarchy.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::core {

struct HeteroParams {
  /// CheckLog capacity in entries — the detection-latency bound and the
  /// leader's commit slack over the checker.
  std::size_t log_entries = 64;
  /// Checker retire width (single-cycle instructions per cycle).
  std::uint32_t checker_width = 2;
  /// Checker fixed load-to-use latency (values arrive from the log).
  Cycle checker_load_latency = 1;
  /// Pipeline squash + restore penalty on a detected mismatch (both cores).
  Cycle rollback_penalty = 60;
};

class HeteroCheckerSystem final : public System {
 public:
  HeteroCheckerSystem(const SystemConfig& config, const HeteroParams& params,
                      const workload::InstStream& stream);

  /// Heterogeneous multiprogramming: one stream per thread.
  HeteroCheckerSystem(const SystemConfig& config, const HeteroParams& params,
                      const std::vector<const workload::InstStream*>& streams);

  const std::string& name() const override { return name_; }
  mem::MemoryHierarchy& memory() override { return memory_; }

  // SystemPolicy phases: one asymmetric leader+checker group per thread.
  std::size_t group_count() const override { return groups_.size(); }
  std::size_t member_count(std::size_t) const override { return 2; }
  bool member_finished(std::size_t g, std::size_t m) const override;
  void member_tick(std::size_t g, std::size_t m, Cycle now) override;
  Cycle member_next_event(std::size_t g, std::size_t m,
                          Cycle now) const override;
  void member_skip_cycles(std::size_t g, std::size_t m, Cycle from,
                          Cycle to) override;
  void on_error(std::size_t g, Cycle now, RunResult& acc) override;
  Cycle next_event(std::size_t g, Cycle now) const override;
  void finish(RunResult& r) const override;

  const char* ckpt_tag() const override { return "HTRO"; }
  void save_policy_state(ckpt::Serializer& s) const override;
  void load_policy_state(ckpt::Deserializer& d) override;

  // Prefix-sharing hooks (see core/system.hpp).
  bool supports_prefix() const override { return true; }
  void save_fault_channel(ckpt::Serializer& s) const override;
  void load_fault_channel(ckpt::Deserializer& d) override;
  std::vector<SeqNum> group_progress() const override;
  void save_fingerprint_state(ckpt::Serializer& s) const override;

 protected:
  void publish_extra_metrics() override;
  void register_avf(fault::AvfCollector& collector) override;

 private:
  struct Group;

  /// Leader commit hooks: every logged-class instruction needs a log slot
  /// at commit; stores enter the log instead of the memory hierarchy.
  class LeaderEnv final : public cpu::CommitEnv {
   public:
    LeaderEnv(HeteroCheckerSystem* sys, Group* group)
        : sys_(sys), group_(group) {}
    bool can_commit(CoreId core, const workload::DynOp& op,
                    Cycle now) override;
    bool on_store_commit(CoreId core, const workload::DynOp& op,
                         Cycle now) override;
    void on_commit(CoreId core, const workload::DynOp& op, Cycle now) override;

   private:
    HeteroCheckerSystem* sys_;
    Group* group_;
  };

  /// Checker commit hooks: a logged-class instruction may commit only once
  /// the leader's matching entry is in the log; consuming it advances the
  /// verified watermark and releases verified stores to memory.
  class CheckerEnv final : public cpu::CommitEnv {
   public:
    CheckerEnv(HeteroCheckerSystem* sys, Group* group)
        : sys_(sys), group_(group) {}
    bool can_commit(CoreId core, const workload::DynOp& op,
                    Cycle now) override;
    void on_commit(CoreId core, const workload::DynOp& op, Cycle now) override;

   private:
    HeteroCheckerSystem* sys_;
    Group* group_;
  };

  struct Group {
    std::unique_ptr<cpu::OooCore> leader;
    std::unique_ptr<cpu::InOrderCore> checker;
    std::unique_ptr<cpu::CheckLog> log;
    std::unique_ptr<LeaderEnv> leader_env;
    std::unique_ptr<CheckerEnv> checker_env;
    engine::ArrivalCursor arrivals;
    /// A strike on the leader, latent until the checker verifies past it.
    bool fault_pending = false;
    SeqNum fault_position = 0;
    Cycle fault_cycle = 0;
    // Counters.
    std::uint64_t log_full_stalls = 0;
    std::uint64_t detections = 0;
    std::uint64_t detection_latency_total = 0;
  };

  static bool logged_class(const workload::DynOp& op) {
    return op.is_load() || op.is_store() || op.is_branch();
  }

  std::string name_ = "hetero";
  SystemConfig config_;
  HeteroParams params_;
  std::vector<std::uint64_t> thread_lengths_;
  mem::MemoryHierarchy memory_;
  Rng rng_;
  std::vector<std::unique_ptr<Group>> groups_;
};

}  // namespace unsync::core
