// Baseline CMP: one core per thread, write-back L1, no redundancy.
//
// This is the reference every figure normalises against ("baseline CMP
// architecture", Table I) — and it is also the performance a soft error
// silently corrupts.
#pragma once

#include <memory>
#include <vector>

#include "core/system.hpp"
#include "mem/hierarchy.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::core {

class BaselineSystem final : public System {
 public:
  /// Homogeneous: `stream` is cloned once per thread.
  BaselineSystem(const SystemConfig& config,
                 const workload::InstStream& stream);

  /// Heterogeneous multiprogramming: one stream per thread
  /// (`streams.size()` must equal `config.num_threads`).
  BaselineSystem(const SystemConfig& config,
                 const std::vector<const workload::InstStream*>& streams);

  const std::string& name() const override { return name_; }
  mem::MemoryHierarchy& memory() override { return memory_; }

  // SystemPolicy phases: one group per thread, one core per group.
  std::size_t group_count() const override { return cores_.size(); }
  std::size_t member_count(std::size_t) const override { return 1; }
  bool member_finished(std::size_t g, std::size_t) const override {
    return cores_[g]->done();
  }
  void member_tick(std::size_t g, std::size_t, Cycle now) override {
    cores_[g]->tick(now);
  }
  Cycle member_next_event(std::size_t g, std::size_t,
                          Cycle now) const override {
    return cores_[g]->next_event(now);
  }
  void member_skip_cycles(std::size_t g, std::size_t, Cycle from,
                          Cycle to) override {
    cores_[g]->skip_cycles(from, to);
  }
  Cycle next_event(std::size_t g, Cycle now) const override {
    return members_next_event(g, now);
  }
  void finish(RunResult& r) const override;

  const char* ckpt_tag() const override { return "BASE"; }
  void save_policy_state(ckpt::Serializer& s) const override;
  void load_policy_state(ckpt::Deserializer& d) override;

  // Prefix-sharing hooks: the baseline has no error process at all, so its
  // fault channel is empty and its fingerprint is the full policy state.
  bool supports_prefix() const override { return true; }
  std::vector<SeqNum> group_progress() const override;
  void save_fingerprint_state(ckpt::Serializer& s) const override {
    save_policy_state(s);
  }

 private:
  /// Commit environment: a small post-commit store buffer in front of the
  /// write-back L1; commit stalls when it fills.
  class StoreBufferEnv final : public cpu::CommitEnv {
   public:
    StoreBufferEnv(mem::MemoryHierarchy* memory, std::size_t entries)
        : memory_(memory), entries_(entries) {}

    bool on_store_commit(CoreId core, const workload::DynOp& op,
                         Cycle now) override;

    void save_state(ckpt::Serializer& s) const;
    void load_state(ckpt::Deserializer& d);

   private:
    mem::MemoryHierarchy* memory_;
    std::size_t entries_;
    std::vector<std::vector<Cycle>> in_flight_;  // per core: completion times
  };

  std::string name_ = "baseline";
  SystemConfig config_;
  std::vector<std::uint64_t> thread_lengths_;
  mem::MemoryHierarchy memory_;
  StoreBufferEnv env_;
  std::vector<std::unique_ptr<cpu::OooCore>> cores_;
};

/// Size of the post-commit store buffer used by write-back configurations.
inline constexpr std::size_t kStoreBufferEntries = 8;

}  // namespace unsync::core
