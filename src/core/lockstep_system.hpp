// Mainframe-style tight lock-step (IBM S/390 G5 [15]), one of the
// related-work redundancy schemes of paper §II: the two cores stay
// cycle-coupled (neither may retire past the other by more than a commit
// group), and every load value passes through the input-replication checker
// before use. Divergence is detected the cycle it happens, so recovery is a
// cheap pipeline flush — but the coupling and load-path checker tax every
// error-free cycle, which is exactly why "lock-step becomes an increasing
// burden as device scaling continues".
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "engine/error_injection.hpp"
#include "mem/hierarchy.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::core {

struct LockstepParams {
  /// Maximum retirement skew between the coupled cores, in instructions
  /// (one commit group).
  std::uint32_t max_skew = 4;
  /// Checker delay added to every load (input replication).
  Cycle load_check_latency = 2;
  /// Pipeline flush + resynchronisation penalty on a detected divergence.
  Cycle resync_penalty = 30;
};

class LockstepSystem final : public System {
 public:
  LockstepSystem(const SystemConfig& config, const LockstepParams& params,
                 const workload::InstStream& stream);
  LockstepSystem(const SystemConfig& config, const LockstepParams& params,
                 const std::vector<const workload::InstStream*>& streams);

  const std::string& name() const override { return name_; }
  mem::MemoryHierarchy& memory() override { return memory_; }

  // SystemPolicy phases: one coupled pair per thread.
  std::size_t group_count() const override { return pairs_.size(); }
  std::size_t member_count(std::size_t) const override { return 2; }
  bool member_finished(std::size_t g, std::size_t m) const override {
    return pairs_[g]->core[m]->done();
  }
  void member_tick(std::size_t g, std::size_t m, Cycle now) override;
  Cycle member_next_event(std::size_t g, std::size_t m,
                          Cycle now) const override;
  void member_skip_cycles(std::size_t g, std::size_t m, Cycle from,
                          Cycle to) override;
  void on_error(std::size_t g, Cycle now, RunResult& acc) override;
  Cycle next_event(std::size_t g, Cycle now) const override;
  void finish(RunResult& r) const override;

  const char* ckpt_tag() const override { return "LOCK"; }
  void save_policy_state(ckpt::Serializer& s) const override;
  void load_policy_state(ckpt::Deserializer& d) override;

  // Prefix-sharing hooks (see core/system.hpp).
  bool supports_prefix() const override { return true; }
  void save_fault_channel(ckpt::Serializer& s) const override;
  void load_fault_channel(ckpt::Deserializer& d) override;
  std::vector<SeqNum> group_progress() const override;
  void save_fingerprint_state(ckpt::Serializer& s) const override;

 private:
  struct Pair;

  class LockstepEnv final : public cpu::CommitEnv {
   public:
    LockstepEnv(LockstepSystem* sys, Pair* pair, unsigned side)
        : sys_(sys), pair_(pair), side_(side) {}
    bool can_commit(CoreId core, const workload::DynOp& op,
                    Cycle now) override;
    bool on_store_commit(CoreId core, const workload::DynOp& op,
                         Cycle now) override;

   private:
    LockstepSystem* sys_;
    Pair* pair_;
    unsigned side_;
  };

  struct Pair {
    std::unique_ptr<cpu::OooCore> core[2];
    std::unique_ptr<LockstepEnv> env[2];
    std::vector<std::vector<Cycle>> store_buffer;
    engine::ArrivalCursor arrivals;
    std::uint64_t lockstep_stalls = 0;
  };

  std::string name_ = "lockstep";
  SystemConfig config_;
  LockstepParams params_;
  std::vector<std::uint64_t> thread_lengths_;
  mem::MemoryHierarchy memory_;
  Rng rng_;
  std::vector<std::unique_ptr<Pair>> pairs_;
};

}  // namespace unsync::core
