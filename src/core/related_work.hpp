// Compatibility shim: the related-work redundancy schemes (paper §II) used
// to live together in this header. They now have one file per system —
// include those directly in new code.
#pragma once

#include "core/dmr_checkpoint_system.hpp"  // IWYU pragma: export
#include "core/lockstep_system.hpp"        // IWYU pragma: export
