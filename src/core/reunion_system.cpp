#include "core/reunion_system.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "ckpt/serializer.hpp"
#include "core/baseline.hpp"
#include "fault/ser.hpp"

namespace unsync::core {

namespace {
constexpr Cycle kNever = ~Cycle{0};
}  // namespace

// ---- Fingerprint bookkeeping ------------------------------------------------

void ReunionSystem::prune_verified(Pair& pair, Cycle now) {
  while (!pair.fingerprints.empty()) {
    const Fingerprint& front = pair.fingerprints.front();
    if (!(front.closed[0] && front.closed[1]) || front.verify_done > now) {
      break;
    }
    assert(front.count[0] == front.count[1] &&
           "redundant cores must close identical intervals");
    pair.verified_watermark[0] += front.count[0];
    pair.verified_watermark[1] += front.count[1];
    pair.fingerprints.pop_front();
  }
}

void ReunionSystem::close_side(Pair& pair, Fingerprint& fp, unsigned side,
                               Cycle now) {
  fp.closed[side] = true;
  fp.closed_at[side] = now;
  if (fp.closed[0] && fp.closed[1]) {
    fp.verify_done =
        std::max(fp.closed_at[0], fp.closed_at[1]) + params_.compare_latency;
  }
  (void)pair;
}

std::uint64_t ReunionSystem::unverified_insts(const Pair& pair, unsigned side,
                                              Cycle now) const {
  (void)now;
  std::uint64_t n = 0;
  for (const auto& fp : pair.fingerprints) n += fp.count[side];
  return n;
}

// ---- Commit environment -----------------------------------------------------

bool ReunionSystem::ReunionEnv::can_commit(CoreId core,
                                           const workload::DynOp& op,
                                           Cycle now) {
  (void)core;
  Pair& pair = *pair_;
  sys_->prune_verified(pair, now);

  if (op.is_serializing()) {
    // Find (or open) the synchronisation record for this instruction.
    SerializeSync* found = nullptr;
    for (auto& s : pair.serialize_queue) {
      if (s.seq == op.seq) {
        found = &s;
        break;
      }
    }
    if (found == nullptr) {
      pair.serialize_queue.emplace_back();
      found = &pair.serialize_queue.back();
      found->seq = op.seq;
    }
    SerializeSync& sync = *found;
    if (!sync.requested[side_]) {
      sync.requested[side_] = true;
      sync.request_at[side_] = now;
      // Force-close this side's forming interval so everything older can
      // verify (the pipeline "stalls till the fingerprint including the
      // serializing instruction is verified").
      for (auto& fp : pair.fingerprints) {
        if (!fp.closed[side_] && fp.count[side_] > 0) {
          sys_->close_side(pair, fp, side_, now);
        }
      }
    }
    if (!(sync.requested[0] && sync.requested[1])) return false;
    if (sync.ready_at == kNever) {
      // Both cores arrived: everything outstanding must verify, then one
      // extra comparison round covers the serializing instruction itself.
      Cycle last = std::max(sync.request_at[0], sync.request_at[1]);
      for (const auto& fp : pair.fingerprints) {
        if (!(fp.closed[0] && fp.closed[1])) return false;  // still filling
        last = std::max(last, fp.verify_done);
      }
      sync.ready_at = last + sys_->params_.compare_latency;
      ++pair.serializing_syncs;
      if (sys_->tracer_.enabled()) {
        sys_->tracer_.emit({.kind = obs::TraceKind::kFingerprintSync,
                            .cycle = now,
                            .thread = static_cast<std::uint32_t>(core / 2),
                            .core = static_cast<std::uint32_t>(core),
                            .seq = op.seq,
                            .addr = 0,
                            .value = sync.ready_at - now});
      }
    }
    return now >= sync.ready_at;
  }

  // Regular instruction: the CHECK-stage buffer must have room for one
  // more committed-but-unverified instruction (§IV-A.3).
  return sys_->unverified_insts(pair, side_, now) <
         sys_->params_.effective_csb_entries();
}

bool ReunionSystem::ReunionEnv::on_store_commit(CoreId core,
                                                const workload::DynOp& op,
                                                Cycle now) {
  Pair& pair = *pair_;
  auto& buf = pair.store_buffer[side_];
  std::erase_if(buf, [now](Cycle done) { return done <= now; });
  if (buf.size() >= kStoreBufferEntries) return false;
  buf.push_back(sys_->memory_.store_writeback(core, op.mem_addr, now).done);
  return true;
}

void ReunionSystem::ReunionEnv::on_commit(CoreId core,
                                          const workload::DynOp& op,
                                          Cycle now) {
  (void)core;
  Pair& pair = *pair_;

  // Find (or open) this side's forming interval.
  Fingerprint* forming = nullptr;
  for (auto& fp : pair.fingerprints) {
    if (!fp.closed[side_]) {
      forming = &fp;
      break;
    }
  }
  if (forming == nullptr) {
    pair.fingerprints.emplace_back();
    forming = &pair.fingerprints.back();
  }

  ++forming->count[side_];
  if (op.is_serializing()) {
    // The serializing instruction closes its own (verified) interval.
    sys_->close_side(pair, *forming, side_, now);
    // Its synchronisation round already completed in can_commit; the
    // closing comparison is accounted there. Mark it pre-verified.
    if (forming->closed[0] && forming->closed[1]) {
      forming->verify_done = std::min(forming->verify_done, now);
    }
    for (auto it = pair.serialize_queue.begin();
         it != pair.serialize_queue.end(); ++it) {
      if (it->seq == op.seq) {
        it->committed[side_] = true;
        if (it->committed[0] && it->committed[1]) {
          pair.serialize_queue.erase(it);
        }
        break;
      }
    }
  } else if (forming->count[side_] >= sys_->effective_fi()) {
    sys_->close_side(pair, *forming, side_, now);
  }
}

std::uint32_t ReunionSystem::ReunionEnv::reserved_rob_slots(CoreId core,
                                                            Cycle now) {
  (void)core;
  sys_->prune_verified(*pair_, now);
  // Committed-but-unverified instructions keep their ROB slots (§IV-A.5).
  const std::uint64_t held = sys_->unverified_insts(*pair_, side_, now);
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(held, sys_->config_.core.rob_entries));
}

std::uint32_t ReunionSystem::ReunionEnv::reserved_rob_slots_at(
    CoreId core, Cycle now) const {
  (void)core;
  // What reserved_rob_slots(now) would return: skip the front prefix
  // prune_verified would pop (both-closed, verified by now), count the rest.
  std::uint64_t held = 0;
  bool pruning = true;
  for (const auto& fp : pair_->fingerprints) {
    if (pruning && fp.closed[0] && fp.closed[1] && fp.verify_done <= now) {
      continue;
    }
    pruning = false;
    held += fp.count[side_];
  }
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(held, sys_->config_.core.rob_entries));
}

Cycle ReunionSystem::ReunionEnv::next_state_change(CoreId core,
                                                   Cycle now) const {
  (void)core;
  // Reserved slots shrink (without any core acting) exactly when a pending
  // verification completes. Both-closed fingerprints form a front prefix
  // with nondecreasing verify_done, so the earliest future change is the
  // first one still pending. A not-yet-closed front fingerprint can only
  // close through a partner-core commit — a core event the kernel already
  // bounds the window by.
  for (const auto& fp : pair_->fingerprints) {
    if (!(fp.closed[0] && fp.closed[1])) break;
    if (fp.verify_done > now) return fp.verify_done;
  }
  return kNever;
}

// ---- System -----------------------------------------------------------------

ReunionSystem::ReunionSystem(const SystemConfig& config,
                             const ReunionParams& params,
                             const workload::InstStream& stream)
    : ReunionSystem(config, params,
                    detail::replicate(stream, config.num_threads)) {}

ReunionSystem::ReunionSystem(
    const SystemConfig& config, const ReunionParams& params,
    const std::vector<const workload::InstStream*>& streams)
    : System(config.num_threads, config.fast_forward, config.avf),
      config_(config),
      params_(params),
      plan_(fault::reunion_plan()),
      thread_lengths_(detail::lengths_of(streams)),
      memory_(config.mem, config.num_threads * 2),
      rng_(config.seed) {
  effective_fi_ = std::min(
      params_.fingerprint_interval,
      std::max(1u, config_.core.rob_entries - config_.core.commit_width));
  if (streams.size() != config_.num_threads) {
    throw std::invalid_argument("ReunionSystem: need one stream per thread");
  }
  detail::prewarm_from(memory_, streams);
  for (unsigned t = 0; t < config_.num_threads; ++t) {
    auto pair = std::make_unique<Pair>();
    pair->store_buffer.resize(2);
    for (unsigned side = 0; side < 2; ++side) {
      const CoreId core_id = t * 2 + side;
      pair->env[side] = std::make_unique<ReunionEnv>(this, pair.get(), side);
      pair->core[side] = std::make_unique<cpu::OooCore>(
          core_id, config_.core, &memory_, streams[t]->clone(),
          pair->env[side].get());
      register_core(*pair->core[side]);
    }
    pair->arrivals.positions = fault::schedule_arrivals(
        config_.ser_per_inst, thread_lengths_[t], rng_);
    pairs_.push_back(std::move(pair));
  }
  RunResult& acc = kernel_.result();
  acc.system = name_;
  acc.thread_instructions = thread_lengths_;
  acc.instructions = detail::max_length(thread_lengths_);
}

void ReunionSystem::member_tick(std::size_t g, std::size_t m, Cycle now) {
  auto& core = *pairs_[g]->core[m];
  if (!core.done()) core.tick(now);
}

Cycle ReunionSystem::member_next_event(std::size_t g, std::size_t m,
                                       Cycle now) const {
  return pairs_[g]->core[m]->next_event(now);
}

void ReunionSystem::member_skip_cycles(std::size_t g, std::size_t m, Cycle from,
                                       Cycle to) {
  auto& core = *pairs_[g]->core[m];
  if (!core.done()) core.skip_cycles(from, to);
}

void ReunionSystem::on_error(std::size_t g, Cycle now, RunResult& acc) {
  Pair& pair = *pairs_[g];
  const SeqNum progress =
      std::max(pair.core[0]->retired(), pair.core[1]->retired());
  if (!pair.arrivals.pending(progress)) return;
  const SeqNum position = pair.arrivals.take();
  const auto thread = static_cast<unsigned>(g);

  // The corrupted fingerprint mismatches at the next comparison; both cores
  // squash and resume from the last verified fingerprint boundary,
  // re-executing everything since (checkpoint rollback).
  const SeqNum target =
      std::min(pair.verified_watermark[0], pair.verified_watermark[1]);
  const Cycle resume_at = now + params_.rollback_penalty;
  const auto struck = static_cast<unsigned>(rng_.below(2));
  engine::record_error(acc, tracer_,
                       {.cycle = now, .position = position, .thread = thread,
                        .struck_core = struck, .cost = params_.rollback_penalty,
                        .rollback = true},
                       target);
  for (unsigned side = 0; side < 2; ++side) {
    pair.core[side]->set_position(target);
    pair.core[side]->stall_until(resume_at);
  }
  pair.fingerprints.clear();
  pair.serialize_queue.clear();
}

Cycle ReunionSystem::next_event(std::size_t g, Cycle now) const {
  const Pair& pair = *pairs_[g];
  const Cycle cand = members_next_event(g, now);
  if (cand <= now) return now;
  // Error injection fires when progress has crossed the next arrival;
  // progress only advances through (vetoed) commits.
  const SeqNum progress =
      std::max(pair.core[0]->retired(), pair.core[1]->retired());
  if (pair.arrivals.pending(progress)) return now;
  return cand;
}

void ReunionSystem::finish(RunResult& r) const {
  for (const auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      r.core_stats.push_back(pair->core[side]->stats());
    }
    r.fingerprint_syncs += pair->serializing_syncs;
  }
}

void ReunionSystem::save_policy_state(ckpt::Serializer& s) const {
  for (const std::uint64_t word : rng_.state()) s.u64(word);
  memory_.save_state(s);
  s.u64(pairs_.size());
  for (const auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      pair->core[side]->save_state(s);
    }
    s.u64(pair->fingerprints.size());
    for (const Fingerprint& fp : pair->fingerprints) {
      for (unsigned side = 0; side < 2; ++side) {
        s.u64(fp.count[side]);
        s.b(fp.closed[side]);
        s.u64(fp.closed_at[side]);
      }
      s.u64(fp.verify_done);
    }
    s.u64(pair->serialize_queue.size());
    for (const SerializeSync& sync : pair->serialize_queue) {
      s.u64(sync.seq);
      for (unsigned side = 0; side < 2; ++side) {
        s.b(sync.requested[side]);
        s.b(sync.committed[side]);
        s.u64(sync.request_at[side]);
      }
      s.u64(sync.ready_at);
    }
    for (const auto& buf : pair->store_buffer) ckpt::save_u64_vec(s, buf);
    pair->arrivals.save_state(s);
    s.u64(pair->serializing_syncs);
    s.u64(pair->verified_watermark[0]);
    s.u64(pair->verified_watermark[1]);
  }
}

void ReunionSystem::save_fault_channel(ckpt::Serializer& s) const {
  for (const std::uint64_t word : rng_.state()) s.u64(word);
  s.u64(pairs_.size());
  for (const auto& pair : pairs_) {
    engine::save_arrival_schedule(s, pair->arrivals);
  }
}

void ReunionSystem::load_fault_channel(ckpt::Deserializer& d) {
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = d.u64();
  rng_.set_state(rng_state);
  if (d.u64() != pairs_.size()) {
    throw ckpt::CkptError("reunion fault-channel pair-count mismatch");
  }
  for (const auto& pair : pairs_) {
    engine::load_arrival_schedule(d, pair->arrivals);
  }
}

std::vector<SeqNum> ReunionSystem::group_progress() const {
  std::vector<SeqNum> p;
  p.reserve(pairs_.size());
  for (const auto& pair : pairs_) {
    p.push_back(std::max(pair->core[0]->retired(), pair->core[1]->retired()));
  }
  return p;
}

void ReunionSystem::save_fingerprint_state(ckpt::Serializer& s) const {
  memory_.save_state(s);
  s.u64(pairs_.size());
  for (const auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      pair->core[side]->save_state(s);
    }
    s.u64(pair->fingerprints.size());
    for (const Fingerprint& fp : pair->fingerprints) {
      for (unsigned side = 0; side < 2; ++side) {
        s.u64(fp.count[side]);
        s.b(fp.closed[side]);
        s.u64(fp.closed_at[side]);
      }
      s.u64(fp.verify_done);
    }
    s.u64(pair->serialize_queue.size());
    for (const SerializeSync& sync : pair->serialize_queue) {
      s.u64(sync.seq);
      for (unsigned side = 0; side < 2; ++side) {
        s.b(sync.requested[side]);
        s.b(sync.committed[side]);
        s.u64(sync.request_at[side]);
      }
      s.u64(sync.ready_at);
    }
    for (const auto& buf : pair->store_buffer) ckpt::save_u64_vec(s, buf);
    s.u64(pair->serializing_syncs);
    s.u64(pair->verified_watermark[0]);
    s.u64(pair->verified_watermark[1]);
  }
}

void ReunionSystem::load_policy_state(ckpt::Deserializer& d) {
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = d.u64();
  rng_.set_state(rng_state);
  memory_.load_state(d);
  if (d.u64() != pairs_.size()) {
    throw ckpt::CkptError("reunion pair-count mismatch");
  }
  for (const auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      pair->core[side]->load_state(d);
    }
    pair->fingerprints.resize(d.u64());
    for (Fingerprint& fp : pair->fingerprints) {
      for (unsigned side = 0; side < 2; ++side) {
        fp.count[side] = d.u64();
        fp.closed[side] = d.b();
        fp.closed_at[side] = d.u64();
      }
      fp.verify_done = d.u64();
    }
    pair->serialize_queue.resize(d.u64());
    for (SerializeSync& sync : pair->serialize_queue) {
      sync.seq = d.u64();
      for (unsigned side = 0; side < 2; ++side) {
        sync.requested[side] = d.b();
        sync.committed[side] = d.b();
        sync.request_at[side] = d.u64();
      }
      sync.ready_at = d.u64();
    }
    for (auto& buf : pair->store_buffer) ckpt::load_u64_vec(d, buf);
    pair->arrivals.load_state(d, "reunion");
    pair->serializing_syncs = d.u64();
    pair->verified_watermark[0] = d.u64();
    pair->verified_watermark[1] = d.u64();
  }
}

}  // namespace unsync::core
