#include "core/fingerprint.hpp"

namespace unsync::core {

void Crc16::add_byte(std::uint8_t byte) {
  crc_ ^= static_cast<std::uint16_t>(byte) << 8;
  for (int i = 0; i < 8; ++i) {
    if (crc_ & 0x8000) {
      crc_ = static_cast<std::uint16_t>((crc_ << 1) ^ kPoly);
    } else {
      crc_ = static_cast<std::uint16_t>(crc_ << 1);
    }
  }
}

void Crc16::add_word(std::uint64_t word) {
  for (int b = 0; b < 8; ++b) {
    add_byte(static_cast<std::uint8_t>(word >> (8 * b)));
  }
}

void Crc16::add_op(const workload::DynOp& op) {
  add_word(op.pc);
  if (op.mem_addr != kNoAddr) add_word(op.mem_addr);
  // Destination value is represented by the op's sequence number in the
  // timing-level model (the functional value lives in the golden model);
  // any divergence in retirement order or addresses perturbs the hash.
  add_word(op.seq);
}

std::uint16_t fingerprint_of(const workload::DynOp* ops, std::size_t n) {
  Crc16 crc;
  for (std::size_t i = 0; i < n; ++i) crc.add_op(ops[i]);
  return crc.value();
}

ParallelCrc16::ParallelCrc16() {
  // Precompute the 8-bit transition table; two table steps per halfword
  // realise the two-stage parallel structure of the paper's generator.
  for (unsigned byte = 0; byte < 256; ++byte) {
    std::uint16_t crc = static_cast<std::uint16_t>(byte << 8);
    for (int i = 0; i < 8; ++i) {
      if (crc & 0x8000) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ Crc16::kPoly);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
    table_[byte] = crc;
  }
}

void ParallelCrc16::add_halfword(std::uint16_t bits) {
  // Stage 1: high byte; stage 2: low byte — both in "one cycle".
  const auto hi = static_cast<std::uint8_t>(bits >> 8);
  const auto lo = static_cast<std::uint8_t>(bits);
  crc_ = static_cast<std::uint16_t>((crc_ << 8) ^ table_[(crc_ >> 8) ^ hi]);
  crc_ = static_cast<std::uint16_t>((crc_ << 8) ^ table_[(crc_ >> 8) ^ lo]);
}

void ParallelCrc16::add_word(std::uint64_t word) {
  // Same byte order as Crc16::add_word (little-endian byte emission),
  // grouped two bytes per halfword step.
  for (int b = 0; b < 8; b += 2) {
    const auto first = static_cast<std::uint8_t>(word >> (8 * b));
    const auto second = static_cast<std::uint8_t>(word >> (8 * (b + 1)));
    add_halfword(static_cast<std::uint16_t>((first << 8) | second));
  }
}

}  // namespace unsync::core
