// Fingerprinting-style checkpointing (Smolens et al. [19]), one of the
// related-work redundancy schemes of paper §II: cores run decoupled between
// checkpoints; every `checkpoint_interval` instructions both cores
// synchronise, capture a heavyweight checkpoint (architectural + memory
// state), and exchange a hash. Errors surface at the *next* checkpoint and
// roll back to the previous one — long detection latency and a
// per-checkpoint capture cost, traded against zero coupling in between.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "engine/error_injection.hpp"
#include "mem/hierarchy.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::core {

struct CheckpointParams {
  /// Instructions between checkpoints.
  std::uint64_t checkpoint_interval = 1000;
  /// Cycles both cores stall to capture a checkpoint (architectural state
  /// plus the memory-state capture the paper calls "heavy-weight").
  Cycle checkpoint_cost = 120;
  /// Hash exchange + compare latency at each checkpoint.
  Cycle compare_latency = 10;
  /// Checkpoint-restore cost on rollback (before re-execution begins).
  Cycle restore_cost = 200;
};

class DmrCheckpointSystem final : public System {
 public:
  DmrCheckpointSystem(const SystemConfig& config,
                      const CheckpointParams& params,
                      const workload::InstStream& stream);
  DmrCheckpointSystem(const SystemConfig& config,
                      const CheckpointParams& params,
                      const std::vector<const workload::InstStream*>& streams);

  const std::string& name() const override { return name_; }
  mem::MemoryHierarchy& memory() override { return memory_; }

  std::uint64_t checkpoints_taken() const { return checkpoints_taken_; }

  // SystemPolicy phases: one decoupled pair per thread.
  std::size_t group_count() const override { return pairs_.size(); }
  std::size_t member_count(std::size_t) const override { return 2; }
  bool member_finished(std::size_t g, std::size_t m) const override {
    return pairs_[g]->core[m]->done();
  }
  void member_tick(std::size_t g, std::size_t m, Cycle now) override;
  Cycle member_next_event(std::size_t g, std::size_t m,
                          Cycle now) const override;
  void member_skip_cycles(std::size_t g, std::size_t m, Cycle from,
                          Cycle to) override;
  void on_error(std::size_t g, Cycle now, RunResult& acc) override;
  Cycle next_event(std::size_t g, Cycle now) const override;
  void finish(RunResult& r) const override;

  const char* ckpt_tag() const override { return "DMRC"; }
  void save_policy_state(ckpt::Serializer& s) const override;
  void load_policy_state(ckpt::Deserializer& d) override;

  // Prefix-sharing hooks (see core/system.hpp).
  bool supports_prefix() const override { return true; }
  void save_fault_channel(ckpt::Serializer& s) const override;
  void load_fault_channel(ckpt::Deserializer& d) override;
  std::vector<SeqNum> group_progress() const override;
  void save_fingerprint_state(ckpt::Serializer& s) const override;

 protected:
  void publish_extra_metrics() override;

 private:
  struct Pair;

  class CheckpointEnv final : public cpu::CommitEnv {
   public:
    CheckpointEnv(DmrCheckpointSystem* sys, Pair* pair, unsigned side)
        : sys_(sys), pair_(pair), side_(side) {}
    bool can_commit(CoreId core, const workload::DynOp& op,
                    Cycle now) override;
    bool on_store_commit(CoreId core, const workload::DynOp& op,
                         Cycle now) override;

   private:
    DmrCheckpointSystem* sys_;
    Pair* pair_;
    unsigned side_;
  };

  struct Pair {
    std::unique_ptr<cpu::OooCore> core[2];
    std::unique_ptr<CheckpointEnv> env[2];
    std::vector<std::vector<Cycle>> store_buffer;
    /// Next checkpoint boundary (instruction count) and sync state.
    SeqNum next_boundary = 0;
    bool reached[2] = {false, false};
    Cycle reached_at[2] = {0, 0};
    Cycle checkpoint_done = 0;  ///< when the in-progress capture finishes
    SeqNum last_committed_boundary = 0;  ///< rollback target
    engine::ArrivalCursor arrivals;
  };

  std::string name_ = "dmr-checkpoint";
  SystemConfig config_;
  CheckpointParams params_;
  std::vector<std::uint64_t> thread_lengths_;
  mem::MemoryHierarchy memory_;
  Rng rng_;
  std::vector<std::unique_ptr<Pair>> pairs_;
  std::uint64_t checkpoints_taken_ = 0;
};

}  // namespace unsync::core
