// Human-readable and CSV reporting for simulation runs: per-core pipeline
// stall breakdowns, memory-system behaviour, and redundancy events — the
// "stats dump" a simulator user reads after every run.
#pragma once

#include <iosfwd>
#include <string>

#include "core/system.hpp"
#include "mem/hierarchy.hpp"

namespace unsync::core {

/// Formats the result of a run as aligned tables:
///   - headline (cycles, per-thread IPC, redundancy events),
///   - per-core commit/stall breakdown,
///   - memory-system summary when a hierarchy is supplied.
class RunReport {
 public:
  explicit RunReport(const RunResult& result,
                     const mem::MemoryHierarchy* memory = nullptr)
      : result_(result), memory_(memory) {}

  void print(std::ostream& os) const;
  std::string str() const;

  /// One CSV row per core with a fixed header — machine-readable logs for
  /// sweep scripts.
  static std::string csv_header();
  std::string csv_rows() const;

 private:
  const RunResult& result_;
  const mem::MemoryHierarchy* memory_;
};

}  // namespace unsync::core
