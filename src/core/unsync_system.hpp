// The UnSync architecture (paper §III).
//
// Each application thread runs on a *group* of identical cores (the paper
// evaluates pairs; §I and §VIII note the degree of redundancy is a user
// choice, so the group size is configurable) with write-through L1s. The
// cores are NOT synchronised during error-free execution: the only coupling
// is the Communication Buffer (CB) per core — every committed store enters
// the committing core's CB, and an entry drains to the ECC-protected shared
// L2 only once EVERY core of the group has committed that store (the
// "latest entry that has completed execution on both" rule, §III-A(a)
// generalised), at which point a single copy is written over the shared bus.
//
// Error handling is hardware detection (parity / DMR, per the protection
// plan) plus "always forward execution" recovery (§III-A(c)): on a detected
// error the EIH stalls the group, the erroneous core's pipeline is flushed,
// the architectural state and L1 content of an error-free core are copied
// across through the shared L2, the erroneous CB is overwritten from the
// error-free CB, and every core resumes from the error-free core's
// position — the slower cores are forwarded, never re-executed.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "engine/error_injection.hpp"
#include "fault/protection.hpp"
#include "mem/hierarchy.hpp"
#include "mem/write_buffer.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::core {

struct UnSyncParams {
  /// Redundant cores per thread. 2 = the paper's evaluated configuration;
  /// 3 tolerates a second strike during recovery (§VIII trade-off).
  unsigned group_size = 2;

  /// CB capacity per core, in entries (Table II uses 10; Figure 6 sweeps
  /// the size — with 16-byte entries, 2 KiB = 128 entries).
  std::size_t cb_entries = 128;
  /// Bytes one CB entry occupies (address + data + tag), used to express
  /// Figure 6's x-axis in bytes.
  static constexpr std::size_t kCbEntryBytes = 16;

  /// CB->L2 words drained per cycle when the bus is free.
  unsigned drain_per_cycle = 1;

  /// Recovery cost model (§III-A(c)). EIH signalling round trip:
  Cycle eih_signal_cycles = 20;
  /// Cycles per architectural-state word copied core-to-core via the L2.
  Cycle state_copy_word_cycles = 4;
  /// Architectural words to copy: 32 int + 32 fp registers + PC + misc.
  unsigned arch_state_words = 68;
  /// Cycles per valid L1 line copied via the L2.
  Cycle l1_copy_line_cycles = 8;

  static std::size_t entries_for_bytes(std::size_t bytes) {
    return bytes / kCbEntryBytes;
  }
};

class UnSyncSystem final : public System {
 public:
  UnSyncSystem(const SystemConfig& config, const UnSyncParams& params,
               const workload::InstStream& stream);

  /// Heterogeneous multiprogramming: one stream per thread (each thread's
  /// redundancy group clones its stream group_size times).
  UnSyncSystem(const SystemConfig& config, const UnSyncParams& params,
               const std::vector<const workload::InstStream*>& streams);

  const std::string& name() const override { return name_; }

  mem::MemoryHierarchy& memory() override { return memory_; }
  const fault::ProtectionPlan& plan() const { return plan_; }
  unsigned group_size() const { return params_.group_size; }

  // SystemPolicy phases: one group of redundant cores per thread; each
  // member is one core plus its Communication Buffer.
  std::size_t group_count() const override { return groups_.size(); }
  std::size_t member_count(std::size_t g) const override {
    return groups_[g]->cores.size();
  }
  bool member_finished(std::size_t g, std::size_t m) const override;
  void member_tick(std::size_t g, std::size_t m, Cycle now) override;
  Cycle member_next_event(std::size_t g, std::size_t m,
                          Cycle now) const override;
  void member_skip_cycles(std::size_t g, std::size_t m, Cycle from,
                          Cycle to) override;
  void sync_phase(std::size_t g, Cycle now) override;
  void on_error(std::size_t g, Cycle now, RunResult& acc) override;
  Cycle next_event(std::size_t g, Cycle now) const override;
  void finish(RunResult& r) const override;

  const char* ckpt_tag() const override { return "UNSY"; }
  void save_policy_state(ckpt::Serializer& s) const override;
  void load_policy_state(ckpt::Deserializer& d) override;

  // Prefix-sharing hooks: RNG + per-group arrival schedules are the fault
  // channel; the fingerprint is the policy state with that channel removed.
  bool supports_prefix() const override { return true; }
  void save_fault_channel(ckpt::Serializer& s) const override;
  void load_fault_channel(ckpt::Deserializer& d) override;
  std::vector<SeqNum> group_progress() const override;
  void save_fingerprint_state(ckpt::Serializer& s) const override;

 protected:
  void publish_extra_metrics() override;
  void register_avf(fault::AvfCollector& collector) override;

 private:
  struct Group;

  /// Commit environment for one core of a group: write-through L1 store +
  /// CB insertion; rejects (stalling commit) when the CB is full.
  class CbEnv final : public cpu::CommitEnv {
   public:
    CbEnv(UnSyncSystem* sys, Group* group, unsigned side)
        : sys_(sys), group_(group), side_(side) {}

    bool on_store_commit(CoreId core, const workload::DynOp& op,
                         Cycle now) override;

   private:
    UnSyncSystem* sys_;
    Group* group_;
    unsigned side_;
  };

  struct Group {
    std::vector<std::unique_ptr<cpu::OooCore>> cores;
    std::vector<std::unique_ptr<CbEnv>> envs;
    std::vector<std::unique_ptr<mem::WriteBuffer>> cbs;
    engine::ArrivalCursor arrivals;
    std::uint64_t cb_full_stalls = 0;
  };

  Cycle recovery_cost(const Group& group, unsigned error_free_side) const;

  std::string name_ = "unsync";
  SystemConfig config_;
  UnSyncParams params_;
  fault::ProtectionPlan plan_;
  std::vector<std::uint64_t> thread_lengths_;
  mem::MemoryHierarchy memory_;
  Rng rng_;
  std::vector<std::unique_ptr<Group>> groups_;
};

}  // namespace unsync::core
