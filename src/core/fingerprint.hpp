// Fingerprint generation — the Reunion comparison primitive.
//
// A CRC-16 (CCITT polynomial 0x1021) hash over the architectural updates of
// a fingerprint interval's worth of instructions, computed the way the
// paper's two-stage parallel generator would observe them: per retired
// instruction, the (pc, destination value / store address) words are folded
// into the running CRC. Two redundant cores executing identically produce
// equal fingerprints; any single-bit divergence flips the CRC with
// probability 1 - 2^-16.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::core {

class Crc16 {
 public:
  /// CCITT polynomial, init 0xFFFF.
  static constexpr std::uint16_t kPoly = 0x1021;

  void reset() { crc_ = 0xFFFF; }
  std::uint16_t value() const { return crc_; }

  void add_byte(std::uint8_t byte);
  void add_word(std::uint64_t word);

  /// Folds one retired instruction's architectural update into the hash.
  void add_op(const workload::DynOp& op);

 private:
  std::uint16_t crc_ = 0xFFFF;
};

/// Convenience: fingerprint of a whole op sequence (tests, examples).
std::uint16_t fingerprint_of(const workload::DynOp* ops, std::size_t n);

/// The paper's generator is a two-stage *parallel* CRC (Albertengo & Sisto
/// [28]): it folds 16 input bits per clock instead of one. This class
/// computes the identical CRC-16/CCITT-FALSE value via a precomputed
/// 16-bit-parallel transition table; tests prove bit-exact equivalence with
/// the serial Crc16. The table models what the 238-gate XOR network does in
/// one cycle.
class ParallelCrc16 {
 public:
  ParallelCrc16();

  void reset() { crc_ = 0xFFFF; }
  std::uint16_t value() const { return crc_; }

  /// Absorbs 16 message bits (two bytes, MSB-first like the serial CRC).
  void add_halfword(std::uint16_t bits);

  /// Absorbs a 64-bit word in the same byte order as Crc16::add_word.
  void add_word(std::uint64_t word);

 private:
  std::uint16_t table_[256];  // byte-parallel transition table
  std::uint16_t crc_ = 0xFFFF;
};

}  // namespace unsync::core
