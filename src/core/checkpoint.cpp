// The System-level checkpoint envelope: name validation and container file
// I/O around the kernel-level chunk (SimKernel::save_state). The RunResult /
// ErrorEvent wire layout lives in engine/result_ckpt.cpp; per-system
// payloads live next to the system they serialise (save_policy_state).
#include "ckpt/serializer.hpp"
#include "core/system.hpp"

namespace unsync::core {

void System::save_checkpoint(ckpt::Serializer& s) const {
  s.begin_chunk("SYS0");
  s.str(name());
  save_state(s);
  s.end_chunk();
}

void System::load_checkpoint(ckpt::Deserializer& d) {
  d.begin_chunk("SYS0");
  const std::string saved = d.str();
  if (saved != name()) {
    throw ckpt::CkptError("checkpoint is for system '" + saved +
                          "', cannot restore into '" + name() + "'");
  }
  load_state(d);
  d.end_chunk();
}

void System::save_checkpoint_file(const std::string& path) const {
  ckpt::Serializer s;
  save_checkpoint(s);
  ckpt::write_file(path, s.data());
}

void System::load_checkpoint_file(const std::string& path) {
  ckpt::Deserializer d(ckpt::read_file(path));
  load_checkpoint(d);
  if (!d.at_end()) {
    throw ckpt::CkptError("trailing bytes after system checkpoint");
  }
}

std::string System::save_checkpoint_bytes() const {
  ckpt::Serializer s;
  save_checkpoint(s);
  return ckpt::wrap_container(s.data());
}

void System::load_checkpoint_bytes(std::string_view blob) {
  ckpt::Deserializer d(ckpt::unwrap_container(blob));
  load_checkpoint(d);
  if (!d.at_end()) {
    throw ckpt::CkptError("trailing bytes after system checkpoint");
  }
}

std::uint64_t System::state_fingerprint() const {
  ckpt::Serializer s;
  save_fingerprint_state(s);
  return ckpt::hash64(s.data());
}

}  // namespace unsync::core
