// Checkpoint plumbing shared by every system: the RunResult / ErrorEvent
// wire layout and the System-level checkpoint envelope (name validation,
// container file I/O). Per-system save_state/load_state live next to the
// system they serialise.
#include "ckpt/serializer.hpp"
#include "core/system.hpp"

namespace unsync::core {

void save_error_event(ckpt::Serializer& s, const ErrorEvent& e) {
  s.u64(e.cycle);
  s.u64(e.position);
  s.u32(e.thread);
  s.u32(e.struck_core);
  s.u64(e.cost);
  s.b(e.rollback);
}

void load_error_event(ckpt::Deserializer& d, ErrorEvent& e) {
  e.cycle = d.u64();
  e.position = d.u64();
  e.thread = d.u32();
  e.struck_core = d.u32();
  e.cost = d.u64();
  e.rollback = d.b();
}

void save_result(ckpt::Serializer& s, const RunResult& r) {
  s.begin_chunk("RRES");
  s.str(r.system);
  s.u64(r.cycles);
  s.u64(r.instructions);
  ckpt::save_u64_vec(s, r.thread_instructions);
  s.u64(r.core_stats.size());
  for (const cpu::CoreStats& cs : r.core_stats) cpu::save_stats(s, cs);
  s.u64(r.errors_injected);
  s.u64(r.recoveries);
  s.u64(r.rollbacks);
  s.u64(r.recovery_cycles_total);
  s.u64(r.cb_full_stalls);
  s.u64(r.fingerprint_syncs);
  s.u64(r.error_log.size());
  for (const ErrorEvent& e : r.error_log) save_error_event(s, e);
  s.end_chunk();
}

void load_result(ckpt::Deserializer& d, RunResult& r) {
  d.begin_chunk("RRES");
  r.system = d.str();
  r.cycles = d.u64();
  r.instructions = d.u64();
  ckpt::load_u64_vec(d, r.thread_instructions);
  r.core_stats.resize(d.u64());
  for (cpu::CoreStats& cs : r.core_stats) cpu::load_stats(d, cs);
  r.errors_injected = d.u64();
  r.recoveries = d.u64();
  r.rollbacks = d.u64();
  r.recovery_cycles_total = d.u64();
  r.cb_full_stalls = d.u64();
  r.fingerprint_syncs = d.u64();
  r.error_log.resize(d.u64());
  for (ErrorEvent& e : r.error_log) load_error_event(d, e);
  d.end_chunk();
}

void System::save_checkpoint(ckpt::Serializer& s) const {
  s.begin_chunk("SYS0");
  s.str(name());
  save_state(s);
  s.end_chunk();
}

void System::load_checkpoint(ckpt::Deserializer& d) {
  d.begin_chunk("SYS0");
  const std::string saved = d.str();
  if (saved != name()) {
    throw ckpt::CkptError("checkpoint is for system '" + saved +
                          "', cannot restore into '" + name() + "'");
  }
  load_state(d);
  d.end_chunk();
}

void System::save_checkpoint_file(const std::string& path) const {
  ckpt::Serializer s;
  save_checkpoint(s);
  ckpt::write_file(path, s.data());
}

void System::load_checkpoint_file(const std::string& path) {
  ckpt::Deserializer d(ckpt::read_file(path));
  load_checkpoint(d);
  if (!d.at_end()) {
    throw ckpt::CkptError("trailing bytes after system checkpoint");
  }
}

}  // namespace unsync::core
