#include "core/factory.hpp"

#include "core/baseline.hpp"

namespace unsync::core {

const char* name_of(SystemKind kind) {
  switch (kind) {
    case SystemKind::kBaseline: return "baseline";
    case SystemKind::kUnSync: return "unsync";
    case SystemKind::kReunion: return "reunion";
    case SystemKind::kLockstep: return "lockstep";
    case SystemKind::kCheckpoint: return "checkpoint";
    case SystemKind::kHetero: return "hetero";
  }
  return "?";
}

std::optional<SystemKind> parse_system(const std::string& name) {
  if (name == "baseline") return SystemKind::kBaseline;
  if (name == "unsync") return SystemKind::kUnSync;
  if (name == "reunion") return SystemKind::kReunion;
  if (name == "lockstep") return SystemKind::kLockstep;
  if (name == "checkpoint") return SystemKind::kCheckpoint;
  if (name == "hetero") return SystemKind::kHetero;
  return std::nullopt;
}

namespace {

// Both overloads share this one switch — the only construction site.
template <typename Workload>
std::unique_ptr<System> construct(SystemKind kind, const SystemConfig& config,
                                  const Workload& workload,
                                  const SystemParams& params) {
  switch (kind) {
    case SystemKind::kBaseline:
      return std::make_unique<BaselineSystem>(config, workload);
    case SystemKind::kUnSync:
      return std::make_unique<UnSyncSystem>(config, params.unsync, workload);
    case SystemKind::kReunion:
      return std::make_unique<ReunionSystem>(config, params.reunion, workload);
    case SystemKind::kLockstep:
      return std::make_unique<LockstepSystem>(config, params.lockstep,
                                              workload);
    case SystemKind::kCheckpoint:
      return std::make_unique<DmrCheckpointSystem>(config, params.checkpoint,
                                                   workload);
    case SystemKind::kHetero:
      return std::make_unique<HeteroCheckerSystem>(config, params.hetero,
                                                   workload);
  }
  return nullptr;  // unreachable: the switch covers every kind
}

// Fast-tier construction shared by both make_model overloads.
template <typename Workload>
std::unique_ptr<engine::SimModel> construct_model(SystemKind kind,
                                                  const SystemConfig& config,
                                                  const Workload& workload,
                                                  const SystemParams& params) {
  if (params.tier == engine::Tier::kDetailed) {
    return construct(kind, config, workload, params);
  }
  return std::make_unique<engine::IntervalModel>(
      interval_spec_for(kind, params), config.core, config.mem,
      config.num_threads, config.ser_per_inst, config.seed, workload);
}

}  // namespace

engine::IntervalSpec interval_spec_for(SystemKind kind,
                                       const SystemParams& params) {
  engine::IntervalSpec spec;
  spec.system = name_of(kind);
  switch (kind) {
    case SystemKind::kBaseline:
      // Unprotected single cores: no arrival schedule, no overheads.
      break;
    case SystemKind::kUnSync: {
      const UnSyncParams& p = params.unsync;
      spec.group_size = p.group_size;
      spec.inject_errors = true;
      spec.error_rollback = false;  // always-forward recovery (§III-A(c))
      spec.error_penalty =
          p.eih_signal_cycles + p.arch_state_words * p.state_copy_word_cycles;
      spec.l1_copy_line_cycles = p.l1_copy_line_cycles;
      break;
    }
    case SystemKind::kReunion: {
      const ReunionParams& p = params.reunion;
      spec.group_size = 2;
      spec.inject_errors = true;
      spec.error_rollback = true;  // squash to the last verified fingerprint
      spec.error_penalty = p.rollback_penalty;
      spec.rollback_window = p.fingerprint_interval;
      spec.serialize_sync_cycles = p.compare_latency;
      break;
    }
    case SystemKind::kLockstep: {
      const LockstepParams& p = params.lockstep;
      spec.group_size = 2;
      spec.inject_errors = true;
      spec.error_rollback = false;  // flush + retry, no re-execution window
      spec.error_penalty = p.resync_penalty;
      spec.load_check_latency = p.load_check_latency;
      break;
    }
    case SystemKind::kCheckpoint: {
      const CheckpointParams& p = params.checkpoint;
      spec.group_size = 2;
      spec.inject_errors = true;
      spec.error_rollback = true;  // restore previous epoch, re-execute
      spec.error_penalty = p.restore_cost;
      spec.rollback_window = p.checkpoint_interval;
      spec.checkpoint_interval = p.checkpoint_interval;
      spec.checkpoint_cycles = p.checkpoint_cost + p.compare_latency;
      break;
    }
    case SystemKind::kHetero: {
      const HeteroParams& p = params.hetero;
      spec.group_size = 2;
      spec.inject_errors = true;
      spec.error_rollback = true;  // roll back to the last verified commit
      spec.error_penalty = p.rollback_penalty;
      spec.rollback_window = p.log_entries;
      break;
    }
  }
  return spec;
}

std::unique_ptr<System> make_system(SystemKind kind,
                                    const SystemConfig& config,
                                    const workload::InstStream& stream,
                                    const SystemParams& params) {
  return construct(kind, config, stream, params);
}

std::unique_ptr<System> make_system(
    SystemKind kind, const SystemConfig& config,
    const std::vector<const workload::InstStream*>& streams,
    const SystemParams& params) {
  return construct(kind, config, streams, params);
}

std::unique_ptr<engine::SimModel> make_model(SystemKind kind,
                                             const SystemConfig& config,
                                             const workload::InstStream& stream,
                                             const SystemParams& params) {
  return construct_model(kind, config, stream, params);
}

std::unique_ptr<engine::SimModel> make_model(
    SystemKind kind, const SystemConfig& config,
    const std::vector<const workload::InstStream*>& streams,
    const SystemParams& params) {
  return construct_model(kind, config, streams, params);
}

}  // namespace unsync::core
