#include "core/factory.hpp"

#include "core/baseline.hpp"

namespace unsync::core {

const char* name_of(SystemKind kind) {
  switch (kind) {
    case SystemKind::kBaseline: return "baseline";
    case SystemKind::kUnSync: return "unsync";
    case SystemKind::kReunion: return "reunion";
    case SystemKind::kLockstep: return "lockstep";
    case SystemKind::kCheckpoint: return "checkpoint";
  }
  return "?";
}

std::optional<SystemKind> parse_system(const std::string& name) {
  if (name == "baseline") return SystemKind::kBaseline;
  if (name == "unsync") return SystemKind::kUnSync;
  if (name == "reunion") return SystemKind::kReunion;
  if (name == "lockstep") return SystemKind::kLockstep;
  if (name == "checkpoint") return SystemKind::kCheckpoint;
  return std::nullopt;
}

namespace {

// Both overloads share this one switch — the only construction site.
template <typename Workload>
std::unique_ptr<System> construct(SystemKind kind, const SystemConfig& config,
                                  const Workload& workload,
                                  const SystemParams& params) {
  switch (kind) {
    case SystemKind::kBaseline:
      return std::make_unique<BaselineSystem>(config, workload);
    case SystemKind::kUnSync:
      return std::make_unique<UnSyncSystem>(config, params.unsync, workload);
    case SystemKind::kReunion:
      return std::make_unique<ReunionSystem>(config, params.reunion, workload);
    case SystemKind::kLockstep:
      return std::make_unique<LockstepSystem>(config, params.lockstep,
                                              workload);
    case SystemKind::kCheckpoint:
      return std::make_unique<DmrCheckpointSystem>(config, params.checkpoint,
                                                   workload);
  }
  return nullptr;  // unreachable: the switch covers every kind
}

}  // namespace

std::unique_ptr<System> make_system(SystemKind kind,
                                    const SystemConfig& config,
                                    const workload::InstStream& stream,
                                    const SystemParams& params) {
  return construct(kind, config, stream, params);
}

std::unique_ptr<System> make_system(
    SystemKind kind, const SystemConfig& config,
    const std::vector<const workload::InstStream*>& streams,
    const SystemParams& params) {
  return construct(kind, config, streams, params);
}

}  // namespace unsync::core
