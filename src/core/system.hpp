// Common interface of the simulated CMP systems (baseline / UnSync /
// Reunion): configuration, the run contract, and the result record every
// bench consumes.
//
// Since the engine refactor (docs/ENGINE.md) the cycle loop itself lives in
// engine::SimKernel; a System is an engine::SystemPolicy plus the shared
// core/observability/checkpoint plumbing. The result and helper spellings
// core::RunResult, core::ErrorEvent, core::save_result, core::detail::*
// remain valid aliases of their engine:: homes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "cpu/core_config.hpp"
#include "cpu/ooo_core.hpp"
#include "engine/policy.hpp"
#include "fault/avf.hpp"
#include "engine/run_result.hpp"
#include "engine/sim_kernel.hpp"
#include "engine/sim_model.hpp"
#include "engine/stream_utils.hpp"
#include "mem/config.hpp"
#include "mem/hierarchy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::ckpt {
class Serializer;
class Deserializer;
}  // namespace unsync::ckpt

namespace unsync::core {

/// Shared configuration (Table I defaults).
struct SystemConfig {
  cpu::CoreConfig core;
  mem::MemConfig mem;
  /// Number of application threads. Baseline runs one core per thread;
  /// the redundant systems run one *core pair* per thread.
  unsigned num_threads = 2;
  /// Per-instruction soft-error probability (0 = error-free run).
  double ser_per_inst = 0.0;
  std::uint64_t seed = 42;
  /// Quiescence fast-forwarding (CLI: engine.fast_forward=1): the kernel
  /// jumps over provably-static stall windows. Results are bit-identical
  /// to the naive loop; only wall-clock time changes. See docs/ENGINE.md.
  bool fast_forward = false;
  /// ACE/AVF residency accounting for the uncore (CLI: avf=1; see
  /// docs/FAULTS.md). Observation-only: enabling it never changes simulated
  /// results, and with the default 0 every hook is a null-pointer branch.
  bool avf = false;
  /// Per-uncore-structure protection choice (CLI: protect.<structure>=).
  /// Joined with the measured exposure at report time; does not alter
  /// simulation timing.
  fault::UncorePlan uncore_protect;
};

// The result record and its serialisations live in the engine layer (the
// kernel accumulates them across run() segments); these aliases keep every
// existing core:: spelling valid.
using engine::ErrorEvent;
using engine::RunResult;
using engine::load_error_event;
using engine::load_result;
using engine::save_error_event;
using engine::save_result;

/// A simulated CMP. run() executes every thread's stream to completion (or
/// max_cycles) and reports the aggregate result.
///
/// Resumable-run contract (enforced by the kernel): `max_cycles` is an
/// ABSOLUTE simulated-cycle bound, and run() is continuable — run(N)
/// followed by run() yields the same final result, bit for bit, as a single
/// run(). That, combined with save_checkpoint()/load_checkpoint(), is what
/// lets a mid-run snapshot be restored into a freshly-constructed identical
/// system and resumed to a byte-identical RunResult (docs/CHECKPOINTS.md).
///
/// Observability contract: every system owns a Tracer (wired into its cores
/// and memory hierarchy at construction; free while no sink is attached) and
/// optionally publishes into a MetricsRegistry at the end of run(). Both are
/// attached post-construction via set_observability(). Observability
/// attachments are NOT part of checkpoint state.
class System : public engine::SystemPolicy, public engine::SimModel {
 public:
  ~System() override = default;

  /// Drives this system's policy phases through the shared kernel.
  RunResult run(Cycle max_cycles = ~Cycle{0}) override {
    return kernel_.run(*this, max_cycles, fast_forward_);
  }

  /// Every System is the cycle-accurate implementation of SimModel.
  engine::Tier tier() const override { return engine::Tier::kDetailed; }

  const std::string& name() const override = 0;

  /// Serialises / restores the complete mutable simulation state (cycle
  /// cursor, accumulated result, RNG, memory hierarchy, every core) as one
  /// kernel-level chunk tagged ckpt_tag(). load_state() must be called on a
  /// system constructed with the identical configuration, streams and
  /// parameters as the saved one; mismatches throw ckpt::CkptError.
  void save_state(ckpt::Serializer& s) const;
  void load_state(ckpt::Deserializer& d);

  /// Name-tagged checkpoint envelope around save_state()/load_state();
  /// load_checkpoint() rejects a checkpoint taken from a different system
  /// kind (ckpt::CkptError).
  void save_checkpoint(ckpt::Serializer& s) const;
  void load_checkpoint(ckpt::Deserializer& d);

  /// Whole-file convenience: the "unsync.ckpt.v1" container (magic, schema,
  /// CRC-32) written via write-to-temp + atomic rename.
  void save_checkpoint_file(const std::string& path) const;
  void load_checkpoint_file(const std::string& path);

  /// In-memory convenience: the exact bytes save_checkpoint_file() would
  /// write, returned as a "unsync.ckpt.v1" container blob with no
  /// filesystem round trip. load_checkpoint_bytes() verifies magic /
  /// schema / CRC and rejects trailing bytes (ckpt::CkptError), just like
  /// the file path. This is what the campaign prefix-sharing cache holds.
  std::string save_checkpoint_bytes() const;
  void load_checkpoint_bytes(std::string_view blob);

  // ---- Prefix-sharing hooks (docs/CAMPAIGNS.md, "Prefix-sharing") -------
  //
  // A faulty run differs from the ser=0 golden run of the same
  // configuration ONLY in its fault channel — the RNG words and the
  // per-group arrival schedules — until the first arrival fires. Systems
  // that expose that channel let the campaign layer build the golden run
  // once, restore its checkpoints into per-job systems, and install each
  // job's own channel on top.

  /// Whether this system implements the fault-channel / fingerprint hooks
  /// below (i.e. whether golden-run checkpoints can seed faulty runs).
  virtual bool supports_prefix() const { return false; }

  /// Serialises / installs the fault channel: RNG words plus the FULL
  /// per-group arrival schedules (positions, not just the cursor —
  /// save_state pins only the length because construction re-derives the
  /// positions, which a golden-configured system cannot).
  virtual void save_fault_channel(ckpt::Serializer& s) const { (void)s; }
  virtual void load_fault_channel(ckpt::Deserializer& d) { (void)d; }

  /// Per-group commit progress: the same watermark arrival consumption is
  /// keyed on (max retired over the group's cores). Used to pick the
  /// latest golden checkpoint that provably precedes a job's first strike.
  virtual std::vector<SeqNum> group_progress() const { return {}; }

  /// Fingerprintable architectural state: save_policy_state minus the
  /// fault channel. Two runs with equal fingerprints at the same cycle
  /// boundary — and no arrivals left to fire — evolve identically from
  /// there, which is what makes convergence splicing exact.
  virtual void save_fingerprint_state(ckpt::Serializer& s) const {
    (void)s;
  }

  /// ckpt::hash64 over save_fingerprint_state().
  std::uint64_t state_fingerprint() const;

  /// The system's memory hierarchy (every concrete system owns exactly one).
  virtual mem::MemoryHierarchy& memory() = 0;

  /// Toggles quiescence fast-forwarding for subsequent run() calls.
  void set_fast_forward(bool on) { fast_forward_ = on; }
  bool fast_forward() const { return fast_forward_; }

  /// Attaches (or detaches, with nullptr) a metrics registry and a trace
  /// sink. With a registry attached, per-cycle ROB-occupancy histograms are
  /// sampled under "<name>.<core>.rob.occupancy" and the full metric tree is
  /// published when run() finishes. Call before run().
  void set_observability(obs::MetricsRegistry* metrics,
                         obs::TraceSink* trace) override;

  const obs::Tracer& tracer() const { return tracer_; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Kernel hook: publishes the standard metric tree plus the system's
  /// extras once the run loop exits.
  void on_run_complete(const RunResult& r) override {
    publish_metrics(r);
    publish_extra_metrics();
  }

 protected:
  explicit System(unsigned num_threads = 1, bool fast_forward = false,
                  bool avf = false)
      : fast_forward_(fast_forward), avf_enabled_(avf),
        num_threads_(num_threads) {}

  /// Derived constructors register every core in group-major order (group 0
  /// side 0, group 0 side 1, ..., matching RunResult::core_stats). Wires the
  /// core to the system tracer and enables uniform metric naming: with one
  /// core per thread the prefix is "<name>.core<i>", otherwise
  /// "<name>.group<g>.core<s>".
  void register_core(cpu::OooCore& core);

  /// Metric path prefix of registered core `i` (see register_core).
  std::string core_prefix(std::size_t i) const;

  /// Publishes the standard metric tree for a finished run: per-core
  /// counters/gauges, the memory hierarchy, and the system-level error /
  /// stall counters. No-op without an attached registry.
  void publish_metrics(const RunResult& r);

  /// System-specific metrics published after the standard tree (UnSync CB
  /// occupancy, DMR-checkpoint counts, ...). No-op by default; only called
  /// with a registry attached is NOT guaranteed — implementations must
  /// check metrics() themselves.
  virtual void publish_extra_metrics() {}

  /// System-specific AVF wiring beyond the shared uncore (UnSync registers
  /// its Communication Buffers as write_buffer instances). Called from
  /// set_observability() when avf=1 and a registry is attached.
  virtual void register_avf(fault::AvfCollector& collector) {
    (void)collector;
  }

  /// True when avf=1 was requested at construction.
  bool avf_enabled() const { return avf_enabled_; }

  /// The shared cycle engine: owns the cycle cursor and the accumulated
  /// result. Derived constructors seed kernel_.result() with the identity
  /// fields (system name, instruction counts).
  engine::SimKernel kernel_;

  /// Event-trace gate shared by the system, its cores and its memory.
  obs::Tracer tracer_;
  obs::MetricsRegistry* metrics_ = nullptr;

 private:
  /// Builds the collector and attaches residency trackers to the memory
  /// hierarchy (bus, DRAM queue, cache tags, MSHRs) and every registered
  /// core's TLBs, then gives the concrete system its register_avf() turn.
  void wire_avf();

  bool fast_forward_ = false;
  bool avf_enabled_ = false;
  unsigned num_threads_ = 1;
  std::vector<cpu::OooCore*> registered_cores_;
  std::unique_ptr<fault::AvfCollector> avf_collector_;
};

namespace detail {

// Hoisted into engine/stream_utils.hpp; the core::detail:: spellings stay.
using engine::lengths_of;
using engine::max_length;
using engine::prewarm_from;
using engine::replicate;

}  // namespace detail

}  // namespace unsync::core
