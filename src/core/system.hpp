// Common interface of the simulated CMP systems (baseline / UnSync /
// Reunion): configuration, the run loop contract, and the result record
// every bench consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "cpu/core_config.hpp"
#include "cpu/ooo_core.hpp"
#include "mem/config.hpp"
#include "mem/hierarchy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::ckpt {
class Serializer;
class Deserializer;
}  // namespace unsync::ckpt

namespace unsync::core {

/// Shared configuration (Table I defaults).
struct SystemConfig {
  cpu::CoreConfig core;
  mem::MemConfig mem;
  /// Number of application threads. Baseline runs one core per thread;
  /// the redundant systems run one *core pair* per thread.
  unsigned num_threads = 2;
  /// Per-instruction soft-error probability (0 = error-free run).
  double ser_per_inst = 0.0;
  std::uint64_t seed = 42;
};

/// One injected soft-error event as the timing system handled it.
struct ErrorEvent {
  Cycle cycle = 0;          ///< when the strike was handled
  SeqNum position = 0;      ///< commit position it was attached to
  unsigned thread = 0;      ///< which thread / redundancy group
  unsigned struck_core = 0; ///< side within the group (bad core)
  Cycle cost = 0;           ///< stall / penalty cycles charged
  bool rollback = false;    ///< true = re-execution; false = forward recovery
};

struct RunResult {
  std::string system;
  Cycle cycles = 0;                 ///< cycles until every thread finished
  /// Program instructions of the longest thread (for homogeneous runs this
  /// is simply "the" program length).
  std::uint64_t instructions = 0;
  /// Per-thread program lengths (heterogeneous multiprogramming).
  std::vector<std::uint64_t> thread_instructions;
  std::vector<cpu::CoreStats> core_stats;

  std::uint64_t errors_injected = 0;
  std::uint64_t recoveries = 0;       ///< UnSync forward recoveries
  std::uint64_t rollbacks = 0;        ///< Reunion checkpoint rollbacks
  Cycle recovery_cycles_total = 0;

  std::uint64_t cb_full_stalls = 0;   ///< UnSync commit stalls on full CB
  std::uint64_t fingerprint_syncs = 0;///< Reunion serializing synchronisations

  /// Chronological log of every injected error (all systems fill this).
  std::vector<ErrorEvent> error_log;

  /// Per-thread IPC: program instructions over total cycles (a redundant
  /// pair retires the program once even though two cores execute it).
  double thread_ipc() const {
    return cycles ? static_cast<double>(instructions) /
                        static_cast<double>(cycles)
                  : 0.0;
  }

  /// Serialises the result under the stable "unsync.run_result.v1" schema
  /// (see docs/OBSERVABILITY.md). `indent` = 0 emits the canonical compact
  /// form; > 0 pretty-prints. Byte-identical for identical results.
  std::string to_json(int indent = 0) const;
};

/// Checkpoint helpers: serialise / restore an ErrorEvent and a full
/// RunResult (used by system checkpoints and the campaign journal).
void save_error_event(ckpt::Serializer& s, const ErrorEvent& e);
void load_error_event(ckpt::Deserializer& d, ErrorEvent& e);
void save_result(ckpt::Serializer& s, const RunResult& r);
void load_result(ckpt::Deserializer& d, RunResult& r);

/// A simulated CMP. run() executes every thread's stream to completion (or
/// max_cycles) and reports the aggregate result.
///
/// Resumable-run contract: `max_cycles` is an ABSOLUTE simulated-cycle
/// bound, and run() is continuable — run(N) followed by run() yields the
/// same final result, bit for bit, as a single run(). That, combined with
/// save_checkpoint()/load_checkpoint(), is what lets a mid-run snapshot be
/// restored into a freshly-constructed identical system and resumed to a
/// byte-identical RunResult (see docs/CHECKPOINTS.md).
///
/// Observability contract: every system owns a Tracer (wired into its cores
/// and memory hierarchy at construction; free while no sink is attached) and
/// optionally publishes into a MetricsRegistry at the end of run(). Both are
/// attached post-construction via set_observability(). Observability
/// attachments are NOT part of checkpoint state.
class System {
 public:
  virtual ~System() = default;
  virtual RunResult run(Cycle max_cycles = ~Cycle{0}) = 0;
  virtual const std::string& name() const = 0;

  /// Serialises / restores the complete mutable simulation state (cycle
  /// cursor, accumulated result, RNG, memory hierarchy, every core).
  /// load_state() must be called on a system constructed with the identical
  /// configuration, streams and parameters as the saved one; mismatches
  /// throw ckpt::CkptError.
  virtual void save_state(ckpt::Serializer& s) const = 0;
  virtual void load_state(ckpt::Deserializer& d) = 0;

  /// Name-tagged checkpoint envelope around save_state()/load_state();
  /// load_checkpoint() rejects a checkpoint taken from a different system
  /// kind (ckpt::CkptError).
  void save_checkpoint(ckpt::Serializer& s) const;
  void load_checkpoint(ckpt::Deserializer& d);

  /// Whole-file convenience: the "unsync.ckpt.v1" container (magic, schema,
  /// CRC-32) written via write-to-temp + atomic rename.
  void save_checkpoint_file(const std::string& path) const;
  void load_checkpoint_file(const std::string& path);

  /// The system's memory hierarchy (every concrete system owns exactly one).
  virtual mem::MemoryHierarchy& memory() = 0;

  /// Attaches (or detaches, with nullptr) a metrics registry and a trace
  /// sink. With a registry attached, per-cycle ROB-occupancy histograms are
  /// sampled under "<name>.<core>.rob.occupancy" and the full metric tree is
  /// published when run() finishes. Call before run().
  void set_observability(obs::MetricsRegistry* metrics, obs::TraceSink* trace);

  const obs::Tracer& tracer() const { return tracer_; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

 protected:
  explicit System(unsigned num_threads = 1) : num_threads_(num_threads) {}

  /// Derived constructors register every core in group-major order (group 0
  /// side 0, group 0 side 1, ..., matching RunResult::core_stats). Wires the
  /// core to the system tracer and enables uniform metric naming: with one
  /// core per thread the prefix is "<name>.core<i>", otherwise
  /// "<name>.group<g>.core<s>".
  void register_core(cpu::OooCore& core);

  /// Metric path prefix of registered core `i` (see register_core).
  std::string core_prefix(std::size_t i) const;

  /// Publishes the standard metric tree for a finished run: per-core
  /// counters/gauges, the memory hierarchy, and the system-level error /
  /// stall counters. No-op without an attached registry. Derived run()
  /// implementations call this just before returning (and may add
  /// system-specific extras afterwards).
  void publish_metrics(const RunResult& r);

  /// Event-trace gate shared by the system, its cores and its memory.
  obs::Tracer tracer_;
  obs::MetricsRegistry* metrics_ = nullptr;

 private:
  unsigned num_threads_ = 1;
  std::vector<cpu::OooCore*> registered_cores_;
};

namespace detail {

/// Homogeneous convenience: the same stream for every thread (the paper's
/// setup — every core pair runs the benchmark under test).
inline std::vector<const workload::InstStream*> replicate(
    const workload::InstStream& stream, unsigned threads) {
  return std::vector<const workload::InstStream*>(threads, &stream);
}

/// Pre-warms the L2 / I-caches from every distinct stream's advertised
/// regions (standard warm-up methodology; see docs/SIMULATOR.md).
inline void prewarm_from(mem::MemoryHierarchy& memory,
                         const std::vector<const workload::InstStream*>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) seen |= v[j] == v[i];
    if (seen) continue;
    if (const auto warm = v[i]->warm_region()) {
      memory.prewarm_l2(warm->base, warm->bytes);
    }
    if (const auto code = v[i]->code_region()) {
      memory.prewarm_icaches(code->base, code->bytes);
    }
  }
}

inline std::vector<std::uint64_t> lengths_of(
    const std::vector<const workload::InstStream*>& v) {
  std::vector<std::uint64_t> out;
  out.reserve(v.size());
  for (const auto* s : v) out.push_back(s->length());
  return out;
}

inline std::uint64_t max_length(const std::vector<std::uint64_t>& lengths) {
  std::uint64_t m = 0;
  for (const auto l : lengths) m = l > m ? l : m;
  return m;
}

}  // namespace detail

}  // namespace unsync::core
