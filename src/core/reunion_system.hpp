// The Reunion architecture (Smolens et al., MICRO'06), as analysed by the
// paper's §IV — the comparison baseline for every UnSync experiment.
//
// Each thread runs on a vocal/mute core pair with write-back, SECDED-
// protected L1s. Every `fingerprint_interval` committed instructions the
// core closes a CRC-16 fingerprint over its architectural updates; the pair
// exchanges and compares fingerprints, which takes `compare_latency` cycles
// after BOTH cores have closed the interval. Until a fingerprint verifies:
//   * its instructions stay in the CHECK-stage buffer and keep their ROB
//     slots occupied (§IV-A.5 — this is the Figure 5 pressure), and
//   * at most two fingerprints may be outstanding (one comparing, one
//     forming), so commit stalls when a third would be needed.
// Serializing instructions force the pair to synchronise: the open interval
// closes early, all outstanding fingerprints must verify, and one extra
// comparison round covering the serializing instruction completes before it
// may commit (§IV-A.5 — the Figure 4 overhead).
//
// A detected mismatch (soft error) triggers rollback: both cores squash and
// re-execute from the last verified fingerprint boundary.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "engine/error_injection.hpp"
#include "fault/protection.hpp"
#include "mem/hierarchy.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::core {

struct ReunionParams {
  /// Fingerprint interval in instructions (paper Table II / Fig. 4 use 10).
  unsigned fingerprint_interval = 10;
  /// Cycles to exchange + compare a closed fingerprint between the cores.
  Cycle compare_latency = 10;
  /// CHECK-stage buffer capacity in instructions: 0 = provision for the
  /// configuration, FI + latency + 1 — which yields exactly the paper's 17
  /// entries at FI=10 with the 6-cycle minimum comparison latency. Commit
  /// stalls when this many committed instructions are still unverified.
  unsigned csb_entries = 0;
  /// Pipeline squash + refill penalty on rollback.
  Cycle rollback_penalty = 20;

  unsigned effective_csb_entries() const {
    const unsigned provisioned =
        csb_entries != 0 ? csb_entries
                         : fingerprint_interval +
                               static_cast<unsigned>(compare_latency) + 1;
    // The CSB must hold at least one full interval plus the instruction
    // that closes it, or a fingerprint could never complete (a deadlock no
    // real design would ship).
    return provisioned > fingerprint_interval + 1 ? provisioned
                                                  : fingerprint_interval + 1;
  }
};

class ReunionSystem final : public System {
 public:
  ReunionSystem(const SystemConfig& config, const ReunionParams& params,
                const workload::InstStream& stream);

  /// Heterogeneous multiprogramming: one stream per thread.
  ReunionSystem(const SystemConfig& config, const ReunionParams& params,
                const std::vector<const workload::InstStream*>& streams);

  const std::string& name() const override { return name_; }

  mem::MemoryHierarchy& memory() override { return memory_; }
  const fault::ProtectionPlan& plan() const { return plan_; }

  // SystemPolicy phases: one vocal/mute pair per thread.
  std::size_t group_count() const override { return pairs_.size(); }
  std::size_t member_count(std::size_t) const override { return 2; }
  bool member_finished(std::size_t g, std::size_t m) const override {
    return pairs_[g]->core[m]->done();
  }
  void member_tick(std::size_t g, std::size_t m, Cycle now) override;
  Cycle member_next_event(std::size_t g, std::size_t m,
                          Cycle now) const override;
  void member_skip_cycles(std::size_t g, std::size_t m, Cycle from,
                          Cycle to) override;
  void on_error(std::size_t g, Cycle now, RunResult& acc) override;
  Cycle next_event(std::size_t g, Cycle now) const override;
  void finish(RunResult& r) const override;

  const char* ckpt_tag() const override { return "REUN"; }
  void save_policy_state(ckpt::Serializer& s) const override;
  void load_policy_state(ckpt::Deserializer& d) override;

  // Prefix-sharing hooks (see core/system.hpp).
  bool supports_prefix() const override { return true; }
  void save_fault_channel(ckpt::Serializer& s) const override;
  void load_fault_channel(ckpt::Deserializer& d) override;
  std::vector<SeqNum> group_progress() const override;
  void save_fingerprint_state(ckpt::Serializer& s) const override;

 private:
  struct Pair;

  /// One closed-or-forming fingerprint of a pair.
  struct Fingerprint {
    std::uint64_t count[2] = {0, 0};  ///< instructions folded in, per side
    bool closed[2] = {false, false};
    Cycle closed_at[2] = {0, 0};
    Cycle verify_done = ~Cycle{0};    ///< set once both sides closed
  };

  /// Cross-core synchronisation state for one serializing instruction.
  /// A queue is required: the core that commits a serializing instruction
  /// first can reach the *next* one while its partner is still completing
  /// the previous sync.
  struct SerializeSync {
    SeqNum seq = kNoSeq;
    bool requested[2] = {false, false};
    bool committed[2] = {false, false};
    Cycle request_at[2] = {0, 0};
    Cycle ready_at = ~Cycle{0};
  };

  class ReunionEnv final : public cpu::CommitEnv {
   public:
    ReunionEnv(ReunionSystem* sys, Pair* pair, unsigned side)
        : sys_(sys), pair_(pair), side_(side) {}

    bool can_commit(CoreId core, const workload::DynOp& op,
                    Cycle now) override;
    bool on_store_commit(CoreId core, const workload::DynOp& op,
                         Cycle now) override;
    void on_commit(CoreId core, const workload::DynOp& op, Cycle now) override;
    std::uint32_t reserved_rob_slots(CoreId core, Cycle now) override;

    // Fast-forward planning views (const): emulate the front-gated
    // prune_verified catch-up without mutating it.
    std::uint32_t reserved_rob_slots_at(CoreId core, Cycle now) const override;
    Cycle next_state_change(CoreId core, Cycle now) const override;

   private:
    ReunionSystem* sys_;
    Pair* pair_;
    unsigned side_;
  };

  struct Pair {
    std::unique_ptr<cpu::OooCore> core[2];
    std::unique_ptr<ReunionEnv> env[2];
    std::deque<Fingerprint> fingerprints;  // oldest first; back may be open
    std::deque<SerializeSync> serialize_queue;
    std::vector<std::vector<Cycle>> store_buffer;  // per side
    engine::ArrivalCursor arrivals;
    std::uint64_t serializing_syncs = 0;
    /// Commit watermark of the last fully verified fingerprint, per side
    /// (rollback target).
    SeqNum verified_watermark[2] = {0, 0};
  };

  void prune_verified(Pair& pair, Cycle now);
  void close_side(Pair& pair, Fingerprint& fp, unsigned side, Cycle now);

  /// Fingerprint interval actually applied: committed-but-unverified
  /// instructions hold ROB slots, so an interval longer than the window
  /// would wedge the pipeline — hardware must close the fingerprint before
  /// the ROB jams. Clamped once at construction so both cores close at
  /// identical instruction positions.
  unsigned effective_fi() const { return effective_fi_; }
  std::uint64_t unverified_insts(const Pair& pair, unsigned side,
                                 Cycle now) const;

  std::string name_ = "reunion";
  SystemConfig config_;
  ReunionParams params_;
  fault::ProtectionPlan plan_;
  std::vector<std::uint64_t> thread_lengths_;
  mem::MemoryHierarchy memory_;
  Rng rng_;
  std::vector<std::unique_ptr<Pair>> pairs_;
  unsigned effective_fi_ = 10;
};

}  // namespace unsync::core
