#include "core/hetero_checker_system.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "ckpt/serializer.hpp"
#include "fault/ser.hpp"

namespace unsync::core {

namespace {
constexpr Cycle kNever = ~Cycle{0};
}  // namespace

// ---- LeaderEnv ------------------------------------------------------------

bool HeteroCheckerSystem::LeaderEnv::can_commit(CoreId core,
                                                const workload::DynOp& op,
                                                Cycle now) {
  (void)core;
  (void)now;
  // Back-pressure: every logged-class instruction needs a free log entry at
  // commit; a full log means the checker has fallen a full window behind.
  if (logged_class(op) && group_->log->full()) {
    ++group_->log_full_stalls;
    return false;
  }
  return true;
}

bool HeteroCheckerSystem::LeaderEnv::on_store_commit(CoreId core,
                                                     const workload::DynOp& op,
                                                     Cycle now) {
  (void)core;
  // can_commit reserved the slot this cycle; the store is HELD here — it
  // reaches the memory hierarchy only when the checker verifies it.
  const bool ok = group_->log->push(
      {.seq = op.seq, .addr = op.mem_addr,
       .kind = cpu::CheckKind::kStoreData, .taken = false});
  assert(ok && "leader store committed past a full check log");
  (void)ok;
  group_->log->avf_update(now);
  return true;
}

void HeteroCheckerSystem::LeaderEnv::on_commit(CoreId core,
                                               const workload::DynOp& op,
                                               Cycle now) {
  (void)core;
  if (op.is_store()) return;  // logged in on_store_commit
  if (!logged_class(op)) return;
  const bool ok = group_->log->push(
      {.seq = op.seq,
       .addr = op.is_load() ? op.mem_addr : kNoAddr,
       .kind = op.is_load() ? cpu::CheckKind::kLoadValue
                            : cpu::CheckKind::kBranchOutcome,
       .taken = op.taken});
  assert(ok && "leader committed past a full check log");
  (void)ok;
  group_->log->avf_update(now);
}

// ---- CheckerEnv -----------------------------------------------------------

bool HeteroCheckerSystem::CheckerEnv::can_commit(CoreId core,
                                                 const workload::DynOp& op,
                                                 Cycle now) {
  (void)core;
  (void)now;
  // In-order consumption: the checker may not outrun the leader's log. This
  // predicate is pure — the skip_cycles gate probe relies on that.
  if (logged_class(op)) return !group_->log->empty();
  return true;
}

void HeteroCheckerSystem::CheckerEnv::on_commit(CoreId core,
                                                const workload::DynOp& op,
                                                Cycle now) {
  (void)core;
  if (!logged_class(op)) return;
  const cpu::CheckLogEntry& e = group_->log->front();
  assert(e.seq == op.seq && "check log out of step with the checker");
  if (e.kind == cpu::CheckKind::kStoreData) {
    // Verified: the store may finally leave the group.
    sys_->memory_.store_writeback(group_->leader->id(), e.addr, now);
  }
  group_->log->pop();
  group_->log->avf_update(now);
}

// ---- HeteroCheckerSystem --------------------------------------------------

HeteroCheckerSystem::HeteroCheckerSystem(const SystemConfig& config,
                                         const HeteroParams& params,
                                         const workload::InstStream& stream)
    : HeteroCheckerSystem(config, params,
                          detail::replicate(stream, config.num_threads)) {}

HeteroCheckerSystem::HeteroCheckerSystem(
    const SystemConfig& config, const HeteroParams& params,
    const std::vector<const workload::InstStream*>& streams)
    : System(config.num_threads, config.fast_forward, config.avf),
      config_(config),
      params_(params),
      thread_lengths_(detail::lengths_of(streams)),
      // Only the leaders own caches: the checker runs log-fed, touching the
      // hierarchy solely through verified-store writebacks on the leader's
      // L1.
      memory_(config.mem, config.num_threads),
      rng_(config.seed) {
  if (streams.size() != config_.num_threads) {
    throw std::invalid_argument(
        "HeteroCheckerSystem: need one stream per thread");
  }
  detail::prewarm_from(memory_, streams);
  cpu::InOrderConfig checker_cfg;
  checker_cfg.width = params_.checker_width;
  checker_cfg.load_latency = params_.checker_load_latency;
  checker_cfg.sample_interval = config_.core.sample_interval;
  for (unsigned t = 0; t < config_.num_threads; ++t) {
    auto group = std::make_unique<Group>();
    group->log = std::make_unique<cpu::CheckLog>(params_.log_entries);
    group->leader_env = std::make_unique<LeaderEnv>(this, group.get());
    group->checker_env = std::make_unique<CheckerEnv>(this, group.get());
    group->leader = std::make_unique<cpu::OooCore>(
        t, config_.core, &memory_, streams[t]->clone(),
        group->leader_env.get());
    register_core(*group->leader);
    group->checker = std::make_unique<cpu::InOrderCore>(
        config_.num_threads + t, checker_cfg, nullptr, streams[t]->clone(),
        group->checker_env.get());
    group->checker->set_tracer(&tracer_);
    group->arrivals.positions = fault::schedule_arrivals(
        config_.ser_per_inst, thread_lengths_[t], rng_);
    groups_.push_back(std::move(group));
  }
  RunResult& acc = kernel_.result();
  acc.system = name_;
  acc.thread_instructions = thread_lengths_;
  acc.instructions = detail::max_length(thread_lengths_);
}

bool HeteroCheckerSystem::member_finished(std::size_t g,
                                          std::size_t m) const {
  const Group& group = *groups_[g];
  return m == 0 ? group.leader->done() : group.checker->done();
}

void HeteroCheckerSystem::member_tick(std::size_t g, std::size_t m,
                                      Cycle now) {
  Group& group = *groups_[g];
  if (m == 0) {
    if (!group.leader->done()) group.leader->tick(now);
  } else {
    if (!group.checker->done()) group.checker->tick(now);
  }
}

Cycle HeteroCheckerSystem::member_next_event(std::size_t g, std::size_t m,
                                             Cycle now) const {
  const Group& group = *groups_[g];
  return m == 0 ? group.leader->next_event(now)
                : group.checker->next_event(now);
}

void HeteroCheckerSystem::member_skip_cycles(std::size_t g, std::size_t m,
                                             Cycle from, Cycle to) {
  Group& group = *groups_[g];
  if (m == 0) {
    if (!group.leader->done()) group.leader->skip_cycles(from, to);
  } else {
    if (!group.checker->done()) group.checker->skip_cycles(from, to);
  }
}

void HeteroCheckerSystem::on_error(std::size_t g, Cycle now, RunResult& acc) {
  Group& group = *groups_[g];
  // A strike becomes latent when the leader's progress crosses it — the
  // leader keeps running on corrupted state until verification catches it.
  if (!group.fault_pending &&
      group.arrivals.pending(group.leader->retired())) {
    group.fault_position = group.arrivals.take();
    group.fault_cycle = now;
    group.fault_pending = true;
  }
  // Detection: the checker verifies the struck instruction and the compare
  // mismatches. Detection latency is the log residency of that entry.
  if (group.fault_pending &&
      group.checker->retired() > group.fault_position) {
    const Cycle resume_at = now + params_.rollback_penalty;
    engine::record_error(acc, tracer_,
                         {.cycle = now, .position = group.fault_position,
                          .thread = static_cast<unsigned>(g),
                          .struck_core = 0, .cost = params_.rollback_penalty,
                          .rollback = true},
                         group.fault_position);
    ++group.detections;
    group.detection_latency_total += now - group.fault_cycle;
    // Everything older than the struck instruction is checker-verified, so
    // the last verified commit IS the strike position: both cores roll back
    // there and the unverified log tail is discarded.
    group.leader->set_position(group.fault_position);
    group.leader->stall_until(resume_at);
    group.checker->set_position(group.fault_position);
    group.checker->stall_until(resume_at);
    group.log->clear();
    group.log->avf_update(now);
    group.fault_pending = false;
  }
}

Cycle HeteroCheckerSystem::next_event(std::size_t g, Cycle now) const {
  const Group& group = *groups_[g];
  const Cycle lead =
      group.leader->done() ? kNever : group.leader->next_event(now);
  if (lead <= now) return now;
  if (group.arrivals.pending(group.leader->retired())) return now;
  if (group.fault_pending &&
      group.checker->retired() > group.fault_position) {
    return now;
  }
  Cycle chk = group.checker->done() ? kNever : group.checker->next_event(now);
  if (chk <= now) {
    // The checker's one cross-member wait: its head instruction is executed
    // and needs a verified input, but the log is empty. The log cannot gain
    // an entry before the leader's own next event, so the leader's bound
    // covers the checker too.
    const workload::DynOp* head = group.checker->head_op();
    if (head != nullptr && logged_class(*head) &&
        group.checker->head_exec_done(now) && group.log->empty()) {
      chk = lead;
    } else {
      return now;
    }
  }
  return std::min(lead, chk);
}

void HeteroCheckerSystem::finish(RunResult& r) const {
  // Leaders first (aligning core_stats[i] with registered core i and the
  // "<name>.core<i>" metric prefixes), then the checkers.
  for (const auto& group : groups_) {
    r.core_stats.push_back(group->leader->stats());
  }
  for (const auto& group : groups_) {
    r.core_stats.push_back(group->checker->stats());
    r.cb_full_stalls += group->log_full_stalls;
  }
}

void HeteroCheckerSystem::publish_extra_metrics() {
  if (!metrics_) return;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const Group& group = *groups_[g];
    const std::string prefix = name_ + ".group" + std::to_string(g);
    cpu::publish_check_log(*metrics_, prefix + ".log", *group.log);
    cpu::publish_core_stats(*metrics_, prefix + ".checker",
                            group.checker->stats());
    metrics_->set_counter(prefix + ".log_full_stalls",
                          group.log_full_stalls);
    metrics_->set_counter(prefix + ".detections", group.detections);
    metrics_->set_counter(prefix + ".detection_latency_cycles",
                          group.detection_latency_total);
  }
}

void HeteroCheckerSystem::register_avf(fault::AvfCollector& collector) {
  for (auto& group : groups_) {
    group->log->set_avf(collector.make_tracker(
        fault::UncoreStructure::kCheckLog, params_.log_entries,
        static_cast<std::uint32_t>(cpu::kCheckLogEntryBits)));
  }
}

void HeteroCheckerSystem::save_policy_state(ckpt::Serializer& s) const {
  for (const std::uint64_t word : rng_.state()) s.u64(word);
  memory_.save_state(s);
  s.u64(groups_.size());
  for (const auto& group : groups_) {
    group->leader->save_state(s);
    group->checker->save_state(s);
    group->log->save_state(s);
    s.b(group->fault_pending);
    s.u64(group->fault_position);
    s.u64(group->fault_cycle);
    group->arrivals.save_state(s);
    s.u64(group->log_full_stalls);
    s.u64(group->detections);
    s.u64(group->detection_latency_total);
  }
}

void HeteroCheckerSystem::load_policy_state(ckpt::Deserializer& d) {
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = d.u64();
  rng_.set_state(rng_state);
  memory_.load_state(d);
  if (d.u64() != groups_.size()) {
    throw ckpt::CkptError("hetero group-count mismatch");
  }
  for (const auto& group : groups_) {
    group->leader->load_state(d);
    group->checker->load_state(d);
    group->log->load_state(d);
    group->fault_pending = d.b();
    group->fault_position = d.u64();
    group->fault_cycle = d.u64();
    group->arrivals.load_state(d, "hetero");
    group->log_full_stalls = d.u64();
    group->detections = d.u64();
    group->detection_latency_total = d.u64();
  }
}

void HeteroCheckerSystem::save_fault_channel(ckpt::Serializer& s) const {
  for (const std::uint64_t word : rng_.state()) s.u64(word);
  s.u64(groups_.size());
  for (const auto& group : groups_) {
    engine::save_arrival_schedule(s, group->arrivals);
  }
}

void HeteroCheckerSystem::load_fault_channel(ckpt::Deserializer& d) {
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = d.u64();
  rng_.set_state(rng_state);
  if (d.u64() != groups_.size()) {
    throw ckpt::CkptError("hetero fault-channel group-count mismatch");
  }
  for (const auto& group : groups_) {
    engine::load_arrival_schedule(d, group->arrivals);
  }
}

std::vector<SeqNum> HeteroCheckerSystem::group_progress() const {
  std::vector<SeqNum> p;
  p.reserve(groups_.size());
  for (const auto& group : groups_) {
    p.push_back(group->leader->retired());
  }
  return p;
}

void HeteroCheckerSystem::save_fingerprint_state(ckpt::Serializer& s) const {
  memory_.save_state(s);
  s.u64(groups_.size());
  for (const auto& group : groups_) {
    group->leader->save_state(s);
    group->checker->save_state(s);
    group->log->save_state(s);
    s.b(group->fault_pending);
    s.u64(group->fault_position);
    s.u64(group->fault_cycle);
    s.u64(group->log_full_stalls);
    s.u64(group->detections);
    s.u64(group->detection_latency_total);
  }
}

}  // namespace unsync::core
