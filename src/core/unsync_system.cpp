#include "core/unsync_system.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "ckpt/serializer.hpp"
#include "fault/ser.hpp"

namespace unsync::core {

namespace {
/// Program progress of a redundancy group: the leading core's watermark.
SeqNum progress_of(const std::vector<std::unique_ptr<cpu::OooCore>>& cores) {
  SeqNum progress = 0;
  for (const auto& core : cores) {
    progress = std::max(progress, core->retired());
  }
  return progress;
}
}  // namespace

bool UnSyncSystem::CbEnv::on_store_commit(CoreId core,
                                          const workload::DynOp& op,
                                          Cycle now) {
  mem::WriteBuffer& cb = *group_->cbs[side_];
  if (cb.full()) {
    ++group_->cb_full_stalls;
    return false;
  }
  // Write-through: the word updates the local L1 (no dirty state) and a
  // copy enters this core's CB for the group drain to L2.
  sys_->memory_.store_writethrough_local(core, op.mem_addr, now);
  cb.push(op.mem_addr, op.seq, now);
  cb.avf_update(now);
  return true;
}

UnSyncSystem::UnSyncSystem(const SystemConfig& config,
                           const UnSyncParams& params,
                           const workload::InstStream& stream)
    : UnSyncSystem(config, params,
                   detail::replicate(stream, config.num_threads)) {}

UnSyncSystem::UnSyncSystem(
    const SystemConfig& config, const UnSyncParams& params,
    const std::vector<const workload::InstStream*>& streams)
    : System(config.num_threads, config.fast_forward, config.avf),
      config_(config),
      params_(params),
      plan_(fault::unsync_plan()),
      thread_lengths_(detail::lengths_of(streams)),
      memory_([&] {
        // UnSync requires write-through L1s (§III-C.1).
        mem::MemConfig m = config.mem;
        m.l1d.write_policy = mem::WritePolicy::kWriteThrough;
        return m;
      }(), config.num_threads * params.group_size),
      rng_(config.seed) {
  assert(params_.group_size >= 2 && "redundancy needs at least two cores");
  if (streams.size() != config_.num_threads) {
    throw std::invalid_argument("UnSyncSystem: need one stream per thread");
  }
  detail::prewarm_from(memory_, streams);
  for (unsigned t = 0; t < config_.num_threads; ++t) {
    auto group = std::make_unique<Group>();
    for (unsigned side = 0; side < params_.group_size; ++side) {
      const CoreId core_id = t * params_.group_size + side;
      group->cbs.push_back(
          std::make_unique<mem::WriteBuffer>(params_.cb_entries));
      group->envs.push_back(
          std::make_unique<CbEnv>(this, group.get(), side));
      group->cores.push_back(std::make_unique<cpu::OooCore>(
          core_id, config_.core, &memory_, streams[t]->clone(),
          group->envs.back().get()));
      register_core(*group->cores.back());
    }
    group->arrivals.positions = fault::schedule_arrivals(
        config_.ser_per_inst, thread_lengths_[t], rng_);
    groups_.push_back(std::move(group));
  }
  RunResult& acc = kernel_.result();
  acc.system = name_;
  acc.thread_instructions = thread_lengths_;
  acc.instructions = detail::max_length(thread_lengths_);
}

bool UnSyncSystem::member_finished(std::size_t g, std::size_t m) const {
  const Group& group = *groups_[g];
  return group.cores[m]->done() && group.cbs[m]->empty();
}

void UnSyncSystem::member_tick(std::size_t g, std::size_t m, Cycle now) {
  auto& core = *groups_[g]->cores[m];
  if (!core.done()) core.tick(now);
}

Cycle UnSyncSystem::member_next_event(std::size_t g, std::size_t m,
                                      Cycle now) const {
  return groups_[g]->cores[m]->next_event(now);
}

void UnSyncSystem::member_skip_cycles(std::size_t g, std::size_t m, Cycle from,
                                      Cycle to) {
  auto& core = *groups_[g]->cores[m];
  if (!core.done()) core.skip_cycles(from, to);
}

void UnSyncSystem::sync_phase(std::size_t g, Cycle now) {
  Group& group = *groups_[g];
  const auto thread = static_cast<unsigned>(g);
  // The drain frontier is the newest store committed on EVERY core of the
  // group; since all cores commit the identical store sequence, the CBs
  // agree on their common prefix and drain head-to-head, one L2 copy per
  // entry.
  for (unsigned n = 0; n < params_.drain_per_cycle; ++n) {
    for (const auto& cb : group.cbs) {
      if (cb->empty()) return;
    }
    // "As and when the L1-L2 data bus is free" (§III-A(a)).
    if (!memory_.bus().free_at(now)) return;
#ifndef NDEBUG
    const SeqNum front_seq = group.cbs.front()->front().seq;
    for (const auto& cb : group.cbs) {
      assert(cb->front().seq == front_seq &&
             "redundant CBs must agree on their drain frontier");
    }
#endif
    const mem::WriteBufferEntry& head = group.cbs.front()->front();
    if (tracer_.enabled()) {
      tracer_.emit({.kind = obs::TraceKind::kCbDrain,
                    .cycle = now,
                    .thread = thread,
                    .core = 0,
                    .seq = head.seq,
                    .addr = head.addr,
                    .value = 0});
    }
    memory_.push_word_to_l2(head.addr, now);
    for (const auto& cb : group.cbs) {
      cb->pop();
      cb->avf_update(now);
    }
  }
}

Cycle UnSyncSystem::recovery_cost(const Group& group,
                                  unsigned error_free_side) const {
  // §III-A(c): EIH signalling, architectural-state copy, and the L1 content
  // copy from the error-free core, all through the shared L2.
  const auto& good_core = *group.cores[error_free_side];
  const std::uint64_t l1_lines = memory_.l1(good_core.id()).lines_valid();
  return params_.eih_signal_cycles +
         params_.arch_state_words * params_.state_copy_word_cycles +
         l1_lines * params_.l1_copy_line_cycles;
}

void UnSyncSystem::on_error(std::size_t g, Cycle now, RunResult& acc) {
  Group& group = *groups_[g];
  // An error strikes when program progress (the leading core's commit
  // watermark) crosses the arrival position.
  if (!group.arrivals.pending(progress_of(group.cores))) return;
  const SeqNum position = group.arrivals.take();
  const auto thread = static_cast<unsigned>(g);

  // Any core of the group is equally likely to be struck. Detection is
  // certain under the UnSync plan (parity/DMR cover every sequential
  // element), so recovery always engages. The state source is the leading
  // error-free core ("always forward": laggards are forwarded, a faster
  // erroneous core re-traces).
  const auto n = static_cast<unsigned>(group.cores.size());
  const unsigned bad = static_cast<unsigned>(rng_.below(n));
  unsigned good = bad == 0 ? 1 : 0;
  for (unsigned side = 0; side < n; ++side) {
    if (side == bad) continue;
    if (group.cores[side]->retired() > group.cores[good]->retired()) {
      good = side;
    }
  }

  const Cycle cost = recovery_cost(group, good);
  const Cycle resume_at = now + cost;
  engine::record_error(acc, tracer_,
                       {.cycle = now, .position = position, .thread = thread,
                        .struck_core = bad, .cost = cost, .rollback = false},
                       position);

  // 1-2) Stop every core; flush the erroneous pipeline.
  group.cores[bad]->flush_pipeline();
  // 3+6) Copy architectural state: the erroneous core resumes from the
  // error-free core's position.
  group.cores[bad]->set_position(group.cores[good]->retired());
  for (auto& core : group.cores) core->stall_until(resume_at);
  // 4-5) In-flight CB transfers complete (drain continues naturally); the
  // erroneous CB is overwritten from the error-free CB.
  group.cbs[bad]->copy_from(*group.cbs[good]);
  group.cbs[bad]->avf_update(now);
}

Cycle UnSyncSystem::next_event(std::size_t g, Cycle now) const {
  const Group& group = *groups_[g];
  Cycle cand = members_next_event(g, now);
  if (cand <= now) return now;
  // CB drain is ready exactly when every CB is non-empty and the bus is
  // free; a CB only becomes non-empty through a store commit, which is a
  // vetoed core event.
  bool drainable = true;
  for (const auto& cb : group.cbs) drainable &= !cb->empty();
  if (drainable) {
    if (memory_.bus().free_at(now)) return now;
    cand = std::min(cand, memory_.bus().next_free());
  }
  // Error injection fires when progress has crossed the next arrival;
  // progress only advances through (vetoed) commits.
  if (group.arrivals.pending(progress_of(group.cores))) return now;
  return cand;
}

void UnSyncSystem::finish(RunResult& r) const {
  for (const auto& group : groups_) {
    for (const auto& core : group->cores) {
      r.core_stats.push_back(core->stats());
    }
    r.cb_full_stalls += group->cb_full_stalls;
  }
}

void UnSyncSystem::publish_extra_metrics() {
  if (!metrics_) return;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const auto& cbs = groups_[g]->cbs;
    for (std::size_t s = 0; s < cbs.size(); ++s) {
      mem::publish_write_buffer(
          *metrics_,
          name_ + ".group" + std::to_string(g) + ".cb" + std::to_string(s),
          *cbs[s]);
    }
  }
}

void UnSyncSystem::register_avf(fault::AvfCollector& collector) {
  // Each CB is a write-buffer instance: 16-byte entries = 128 bits.
  for (auto& group : groups_) {
    for (auto& cb : group->cbs) {
      cb->set_avf(collector.make_tracker(
          fault::UncoreStructure::kWriteBuffer, cb->capacity(),
          fault::kWriteBufferEntryBits));
    }
  }
}

void UnSyncSystem::save_policy_state(ckpt::Serializer& s) const {
  for (const std::uint64_t word : rng_.state()) s.u64(word);
  memory_.save_state(s);
  s.u64(groups_.size());
  for (const auto& group : groups_) {
    s.u64(group->cores.size());
    for (const auto& core : group->cores) core->save_state(s);
    for (const auto& cb : group->cbs) cb->save_state(s);
    // Arrivals are re-derived deterministically at construction from
    // (seed, ser_per_inst, lengths); only the consumption cursor is state.
    group->arrivals.save_state(s);
    s.u64(group->cb_full_stalls);
  }
}

void UnSyncSystem::save_fault_channel(ckpt::Serializer& s) const {
  for (const std::uint64_t word : rng_.state()) s.u64(word);
  s.u64(groups_.size());
  for (const auto& group : groups_) {
    engine::save_arrival_schedule(s, group->arrivals);
  }
}

void UnSyncSystem::load_fault_channel(ckpt::Deserializer& d) {
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = d.u64();
  rng_.set_state(rng_state);
  if (d.u64() != groups_.size()) {
    throw ckpt::CkptError("unsync fault-channel group-count mismatch");
  }
  for (const auto& group : groups_) {
    engine::load_arrival_schedule(d, group->arrivals);
  }
}

std::vector<SeqNum> UnSyncSystem::group_progress() const {
  std::vector<SeqNum> p;
  p.reserve(groups_.size());
  for (const auto& group : groups_) p.push_back(progress_of(group->cores));
  return p;
}

void UnSyncSystem::save_fingerprint_state(ckpt::Serializer& s) const {
  memory_.save_state(s);
  s.u64(groups_.size());
  for (const auto& group : groups_) {
    s.u64(group->cores.size());
    for (const auto& core : group->cores) core->save_state(s);
    for (const auto& cb : group->cbs) cb->save_state(s);
    s.u64(group->cb_full_stalls);
  }
}

void UnSyncSystem::load_policy_state(ckpt::Deserializer& d) {
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = d.u64();
  rng_.set_state(rng_state);
  memory_.load_state(d);
  if (d.u64() != groups_.size()) {
    throw ckpt::CkptError("unsync group-count mismatch");
  }
  for (const auto& group : groups_) {
    if (d.u64() != group->cores.size()) {
      throw ckpt::CkptError("unsync group-size mismatch");
    }
    for (const auto& core : group->cores) core->load_state(d);
    for (const auto& cb : group->cbs) cb->load_state(d);
    group->arrivals.load_state(d, "unsync");
    group->cb_full_stalls = d.u64();
  }
}

}  // namespace unsync::core
