// The single place a SystemKind becomes a concrete System.
//
// Every consumer (CampaignRunner, unsync_sim, examples, benches) used to
// carry its own construction switch; they now all route through
// make_system(), so adding an architecture is a one-file change.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/related_work.hpp"
#include "core/reunion_system.hpp"
#include "core/system.hpp"
#include "core/unsync_system.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::core {

enum class SystemKind : std::uint8_t {
  kBaseline,
  kUnSync,
  kReunion,
  kLockstep,
  kCheckpoint,
};

const char* name_of(SystemKind kind);
/// Parses the CLI spelling ("baseline", "unsync", ...); nullopt if unknown.
std::optional<SystemKind> parse_system(const std::string& name);

/// Architecture-specific knobs, bundled so call sites can configure any
/// system through one object (only the member matching the kind is read).
struct SystemParams {
  UnSyncParams unsync;
  ReunionParams reunion;
  LockstepParams lockstep;
  CheckpointParams checkpoint;
};

/// Homogeneous: `stream` is cloned once per thread (or per redundant core).
std::unique_ptr<System> make_system(SystemKind kind,
                                    const SystemConfig& config,
                                    const workload::InstStream& stream,
                                    const SystemParams& params = {});

/// Heterogeneous multiprogramming: one stream per thread.
std::unique_ptr<System> make_system(
    SystemKind kind, const SystemConfig& config,
    const std::vector<const workload::InstStream*>& streams,
    const SystemParams& params = {});

}  // namespace unsync::core
