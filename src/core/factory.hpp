// The single place a SystemKind becomes a concrete simulation model.
//
// Every consumer (CampaignRunner, unsync_sim, examples, benches) used to
// carry its own construction switch; they now all route through
// make_system() / make_model(), so adding an architecture — or a model
// tier — is a one-file change. make_system() always builds the detailed
// (cycle-accurate) System; make_model() additionally honours
// SystemParams::tier and can return the fast interval model instead
// (docs/TIERS.md).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/hetero_checker_system.hpp"
#include "core/related_work.hpp"
#include "core/reunion_system.hpp"
#include "core/system.hpp"
#include "core/unsync_system.hpp"
#include "engine/interval_model.hpp"
#include "engine/sim_model.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::core {

enum class SystemKind : std::uint8_t {
  kBaseline,
  kUnSync,
  kReunion,
  kLockstep,
  kCheckpoint,
  kHetero,
};

const char* name_of(SystemKind kind);
/// Parses the CLI spelling ("baseline", "unsync", ...); nullopt if unknown.
std::optional<SystemKind> parse_system(const std::string& name);

/// Architecture-specific knobs, bundled so call sites can configure any
/// system through one object (only the member matching the kind is read).
/// Also the single source of the model-tier choice: make_model() reads
/// `tier`; make_system() ignores it (it always builds the detailed tier).
struct SystemParams {
  UnSyncParams unsync;
  ReunionParams reunion;
  LockstepParams lockstep;
  CheckpointParams checkpoint;
  HeteroParams hetero;
  engine::Tier tier = engine::Tier::kDetailed;
};

/// Homogeneous: `stream` is cloned once per thread (or per redundant core).
std::unique_ptr<System> make_system(SystemKind kind,
                                    const SystemConfig& config,
                                    const workload::InstStream& stream,
                                    const SystemParams& params = {});

/// Heterogeneous multiprogramming: one stream per thread.
std::unique_ptr<System> make_system(
    SystemKind kind, const SystemConfig& config,
    const std::vector<const workload::InstStream*>& streams,
    const SystemParams& params = {});

/// Translates a system kind + its detailed-tier knobs into the analytical
/// abstract the interval model consumes (exposed for validation tooling).
engine::IntervalSpec interval_spec_for(SystemKind kind,
                                       const SystemParams& params);

/// Tier-dispatching construction: params.tier == kDetailed returns the
/// cycle-accurate System (every System IS-A SimModel); kFast returns an
/// engine::IntervalModel configured for the same cell. Both consume the
/// same streams, seed and SER, so fault-arrival schedules are identical
/// across tiers.
std::unique_ptr<engine::SimModel> make_model(SystemKind kind,
                                             const SystemConfig& config,
                                             const workload::InstStream& stream,
                                             const SystemParams& params = {});

/// Heterogeneous multiprogramming: one stream per thread.
std::unique_ptr<engine::SimModel> make_model(
    SystemKind kind, const SystemConfig& config,
    const std::vector<const workload::InstStream*>& streams,
    const SystemParams& params = {});

}  // namespace unsync::core
