#include "core/related_work.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "ckpt/serializer.hpp"
#include "core/baseline.hpp"
#include "fault/ser.hpp"

namespace unsync::core {

namespace {

/// Shared write-back store-buffer behaviour (same as the baseline CMP).
bool store_buffer_commit(mem::MemoryHierarchy& memory,
                         std::vector<Cycle>& buffer, CoreId core, Addr addr,
                         Cycle now) {
  std::erase_if(buffer, [now](Cycle done) { return done <= now; });
  if (buffer.size() >= kStoreBufferEntries) return false;
  buffer.push_back(memory.store_writeback(core, addr, now).done);
  return true;
}

}  // namespace

// ---- LockstepSystem -----------------------------------------------------------

bool LockstepSystem::LockstepEnv::can_commit(CoreId core,
                                             const workload::DynOp& op,
                                             Cycle now) {
  (void)core;
  (void)now;
  // Tight coupling: neither core may retire past its partner by more than
  // one commit group.
  const auto& other = *pair_->core[1 - side_];
  if (op.seq >= other.retired() + sys_->params_.max_skew) {
    ++pair_->lockstep_stalls;
    return false;
  }
  return true;
}

bool LockstepSystem::LockstepEnv::on_store_commit(CoreId core,
                                                  const workload::DynOp& op,
                                                  Cycle now) {
  return store_buffer_commit(sys_->memory_, pair_->store_buffer[side_], core,
                             op.mem_addr, now);
}

LockstepSystem::LockstepSystem(const SystemConfig& config,
                               const LockstepParams& params,
                               const workload::InstStream& stream)
    : LockstepSystem(config, params,
                     detail::replicate(stream, config.num_threads)) {}

LockstepSystem::LockstepSystem(
    const SystemConfig& config, const LockstepParams& params,
    const std::vector<const workload::InstStream*>& streams)
    : System(config.num_threads),
      config_(config),
      params_(params),
      thread_lengths_(detail::lengths_of(streams)),
      memory_(config.mem, config.num_threads * 2),
      rng_(config.seed) {
  if (streams.size() != config_.num_threads) {
    throw std::invalid_argument("LockstepSystem: need one stream per thread");
  }
  detail::prewarm_from(memory_, streams);
  cpu::CoreConfig core_cfg = config_.core;
  core_cfg.extra_load_latency = params_.load_check_latency;
  for (unsigned t = 0; t < config_.num_threads; ++t) {
    auto pair = std::make_unique<Pair>();
    pair->store_buffer.resize(2);
    for (unsigned side = 0; side < 2; ++side) {
      pair->env[side] = std::make_unique<LockstepEnv>(this, pair.get(), side);
      pair->core[side] = std::make_unique<cpu::OooCore>(
          t * 2 + side, core_cfg, &memory_, streams[t]->clone(),
          pair->env[side].get());
      register_core(*pair->core[side]);
    }
    if (config_.ser_per_inst > 0 && thread_lengths_[t] > 0) {
      pair->error_arrivals = fault::sample_error_arrivals(
          config_.ser_per_inst, thread_lengths_[t], rng_);
    }
    pairs_.push_back(std::move(pair));
  }
  acc_.system = name_;
  acc_.thread_instructions = thread_lengths_;
  acc_.instructions = detail::max_length(thread_lengths_);
}

void LockstepSystem::maybe_inject_error(Pair& pair, unsigned thread,
                                        Cycle now, RunResult* result) {
  if (pair.next_error >= pair.error_arrivals.size()) return;
  const SeqNum progress =
      std::max(pair.core[0]->retired(), pair.core[1]->retired());
  if (progress < pair.error_arrivals[pair.next_error]) return;
  const SeqNum position = pair.error_arrivals[pair.next_error];
  ++pair.next_error;
  ++result->errors_injected;
  ++result->recoveries;
  // Lock-step sees the divergence the cycle it occurs; recovery is a
  // flush + instruction retry on both cores.
  const Cycle resume_at = now + params_.resync_penalty;
  result->recovery_cycles_total += params_.resync_penalty;
  const auto struck = static_cast<unsigned>(rng_.below(2));
  result->error_log.push_back(
      {.cycle = now, .position = position, .thread = thread,
       .struck_core = struck,
       .cost = params_.resync_penalty, .rollback = false});
  if (tracer_.enabled()) {
    tracer_.emit({.kind = obs::TraceKind::kErrorInjection, .cycle = now,
                  .thread = thread, .core = struck, .seq = position, .addr = 0,
                  .value = 0});
    tracer_.emit({.kind = obs::TraceKind::kRecovery, .cycle = now,
                  .thread = thread, .core = struck, .seq = position, .addr = 0,
                  .value = params_.resync_penalty});
  }
  for (unsigned side = 0; side < 2; ++side) {
    pair.core[side]->stall_until(resume_at);
  }
}

RunResult LockstepSystem::run(Cycle max_cycles) {
  auto pair_done = [](const Pair& p) {
    return p.core[0]->done() && p.core[1]->done();
  };
  auto all_done = [&] {
    return std::all_of(pairs_.begin(), pairs_.end(),
                       [&](const auto& p) { return pair_done(*p); });
  };
  while (!all_done() && now_ < max_cycles) {
    for (auto& pair : pairs_) {
      if (pair_done(*pair)) continue;
      for (unsigned side = 0; side < 2; ++side) {
        if (!pair->core[side]->done()) pair->core[side]->tick(now_);
      }
      maybe_inject_error(*pair,
                         static_cast<unsigned>(&pair - pairs_.data()), now_,
                         &acc_);
    }
    ++now_;
  }
  RunResult r = acc_;
  r.cycles = now_;
  for (auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      r.core_stats.push_back(pair->core[side]->stats());
    }
    r.fingerprint_syncs += pair->lockstep_stalls;  // repurposed: sync stalls
  }
  publish_metrics(r);
  return r;
}

void LockstepSystem::save_state(ckpt::Serializer& s) const {
  s.begin_chunk("LOCK");
  s.u64(now_);
  save_result(s, acc_);
  for (const std::uint64_t word : rng_.state()) s.u64(word);
  memory_.save_state(s);
  s.u64(pairs_.size());
  for (const auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      pair->core[side]->save_state(s);
      ckpt::save_u64_vec(s, pair->store_buffer[side]);
    }
    s.u64(pair->error_arrivals.size());
    s.u64(pair->next_error);
    s.u64(pair->lockstep_stalls);
  }
  s.end_chunk();
}

void LockstepSystem::load_state(ckpt::Deserializer& d) {
  d.begin_chunk("LOCK");
  now_ = d.u64();
  load_result(d, acc_);
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = d.u64();
  rng_.set_state(rng_state);
  memory_.load_state(d);
  if (d.u64() != pairs_.size()) {
    throw ckpt::CkptError("lockstep pair-count mismatch");
  }
  for (const auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      pair->core[side]->load_state(d);
      ckpt::load_u64_vec(d, pair->store_buffer[side]);
    }
    if (d.u64() != pair->error_arrivals.size()) {
      throw ckpt::CkptError("lockstep error-arrival schedule mismatch");
    }
    pair->next_error = d.u64();
    pair->lockstep_stalls = d.u64();
  }
  d.end_chunk();
}

// ---- DmrCheckpointSystem --------------------------------------------------------

bool DmrCheckpointSystem::CheckpointEnv::can_commit(CoreId core,
                                                    const workload::DynOp& op,
                                                    Cycle now) {
  (void)core;
  Pair& p = *pair_;
  if (op.seq < p.next_boundary) return true;

  // This core reached the checkpoint boundary: wait for the partner, then
  // the (heavyweight) capture + hash comparison.
  if (!p.reached[side_]) {
    p.reached[side_] = true;
    p.reached_at[side_] = now;
  }
  if (!(p.reached[0] && p.reached[1])) return false;
  if (p.checkpoint_done == 0) {
    p.checkpoint_done = std::max(p.reached_at[0], p.reached_at[1]) +
                        sys_->params_.checkpoint_cost +
                        sys_->params_.compare_latency;
    ++sys_->checkpoints_taken_;
    if (sys_->tracer_.enabled()) {
      sys_->tracer_.emit({.kind = obs::TraceKind::kCheckpoint,
                          .cycle = now,
                          .thread = static_cast<std::uint32_t>(core / 2),
                          .core = static_cast<std::uint32_t>(core),
                          .seq = p.next_boundary,
                          .addr = 0,
                          .value = p.checkpoint_done - now});
    }
  }
  if (now < p.checkpoint_done) return false;

  // Checkpoint committed: open the next epoch.
  p.last_committed_boundary = p.next_boundary;
  p.next_boundary += sys_->params_.checkpoint_interval;
  p.reached[0] = p.reached[1] = false;
  p.checkpoint_done = 0;
  return true;
}

bool DmrCheckpointSystem::CheckpointEnv::on_store_commit(
    CoreId core, const workload::DynOp& op, Cycle now) {
  return store_buffer_commit(sys_->memory_, pair_->store_buffer[side_], core,
                             op.mem_addr, now);
}

DmrCheckpointSystem::DmrCheckpointSystem(const SystemConfig& config,
                                         const CheckpointParams& params,
                                         const workload::InstStream& stream)
    : DmrCheckpointSystem(config, params,
                          detail::replicate(stream, config.num_threads)) {}

DmrCheckpointSystem::DmrCheckpointSystem(
    const SystemConfig& config, const CheckpointParams& params,
    const std::vector<const workload::InstStream*>& streams)
    : System(config.num_threads),
      config_(config),
      params_(params),
      thread_lengths_(detail::lengths_of(streams)),
      memory_(config.mem, config.num_threads * 2),
      rng_(config.seed) {
  assert(params_.checkpoint_interval > 0);
  if (streams.size() != config_.num_threads) {
    throw std::invalid_argument(
        "DmrCheckpointSystem: need one stream per thread");
  }
  detail::prewarm_from(memory_, streams);
  for (unsigned t = 0; t < config_.num_threads; ++t) {
    auto pair = std::make_unique<Pair>();
    pair->store_buffer.resize(2);
    pair->next_boundary = params_.checkpoint_interval;
    for (unsigned side = 0; side < 2; ++side) {
      pair->env[side] =
          std::make_unique<CheckpointEnv>(this, pair.get(), side);
      pair->core[side] = std::make_unique<cpu::OooCore>(
          t * 2 + side, config_.core, &memory_, streams[t]->clone(),
          pair->env[side].get());
      register_core(*pair->core[side]);
    }
    if (config_.ser_per_inst > 0 && thread_lengths_[t] > 0) {
      pair->error_arrivals = fault::sample_error_arrivals(
          config_.ser_per_inst, thread_lengths_[t], rng_);
    }
    pairs_.push_back(std::move(pair));
  }
  acc_.system = name_;
  acc_.thread_instructions = thread_lengths_;
  acc_.instructions = detail::max_length(thread_lengths_);
}

void DmrCheckpointSystem::maybe_inject_error(Pair& pair, unsigned thread,
                                             Cycle now, RunResult* result) {
  if (pair.next_error >= pair.error_arrivals.size()) return;
  const SeqNum progress =
      std::max(pair.core[0]->retired(), pair.core[1]->retired());
  if (progress < pair.error_arrivals[pair.next_error]) return;
  const SeqNum position = pair.error_arrivals[pair.next_error];
  ++pair.next_error;
  ++result->errors_injected;
  ++result->rollbacks;
  // The mismatch surfaces at the next checkpoint hash; both cores restore
  // the previous checkpoint (heavyweight) and re-execute the whole epoch.
  const Cycle resume_at = now + params_.restore_cost;
  result->recovery_cycles_total += params_.restore_cost;
  const auto struck = static_cast<unsigned>(rng_.below(2));
  result->error_log.push_back(
      {.cycle = now, .position = position, .thread = thread,
       .struck_core = struck,
       .cost = params_.restore_cost, .rollback = true});
  if (tracer_.enabled()) {
    tracer_.emit({.kind = obs::TraceKind::kErrorInjection, .cycle = now,
                  .thread = thread, .core = struck, .seq = position, .addr = 0,
                  .value = 0});
    tracer_.emit({.kind = obs::TraceKind::kRollback, .cycle = now,
                  .thread = thread, .core = struck,
                  .seq = pair.last_committed_boundary, .addr = 0,
                  .value = params_.restore_cost});
  }
  for (unsigned side = 0; side < 2; ++side) {
    pair.core[side]->set_position(pair.last_committed_boundary);
    pair.core[side]->stall_until(resume_at);
  }
  pair.next_boundary =
      pair.last_committed_boundary + params_.checkpoint_interval;
  pair.reached[0] = pair.reached[1] = false;
  pair.checkpoint_done = 0;
}

RunResult DmrCheckpointSystem::run(Cycle max_cycles) {
  auto pair_done = [](const Pair& p) {
    return p.core[0]->done() && p.core[1]->done();
  };
  auto all_done = [&] {
    return std::all_of(pairs_.begin(), pairs_.end(),
                       [&](const auto& p) { return pair_done(*p); });
  };
  while (!all_done() && now_ < max_cycles) {
    for (auto& pair : pairs_) {
      if (pair_done(*pair)) continue;
      for (unsigned side = 0; side < 2; ++side) {
        if (!pair->core[side]->done()) pair->core[side]->tick(now_);
      }
      maybe_inject_error(*pair,
                         static_cast<unsigned>(&pair - pairs_.data()), now_,
                         &acc_);
    }
    ++now_;
  }
  RunResult r = acc_;
  r.cycles = now_;
  for (auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      r.core_stats.push_back(pair->core[side]->stats());
    }
  }
  publish_metrics(r);
  if (metrics_) {
    metrics_->set_counter(name_ + ".checkpoints_taken", checkpoints_taken_);
  }
  return r;
}

void DmrCheckpointSystem::save_state(ckpt::Serializer& s) const {
  s.begin_chunk("DMRC");
  s.u64(now_);
  save_result(s, acc_);
  for (const std::uint64_t word : rng_.state()) s.u64(word);
  memory_.save_state(s);
  s.u64(checkpoints_taken_);
  s.u64(pairs_.size());
  for (const auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      pair->core[side]->save_state(s);
      ckpt::save_u64_vec(s, pair->store_buffer[side]);
    }
    s.u64(pair->next_boundary);
    s.b(pair->reached[0]);
    s.b(pair->reached[1]);
    s.u64(pair->reached_at[0]);
    s.u64(pair->reached_at[1]);
    s.u64(pair->checkpoint_done);
    s.u64(pair->last_committed_boundary);
    s.u64(pair->error_arrivals.size());
    s.u64(pair->next_error);
  }
  s.end_chunk();
}

void DmrCheckpointSystem::load_state(ckpt::Deserializer& d) {
  d.begin_chunk("DMRC");
  now_ = d.u64();
  load_result(d, acc_);
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = d.u64();
  rng_.set_state(rng_state);
  memory_.load_state(d);
  checkpoints_taken_ = d.u64();
  if (d.u64() != pairs_.size()) {
    throw ckpt::CkptError("dmr-checkpoint pair-count mismatch");
  }
  for (const auto& pair : pairs_) {
    for (unsigned side = 0; side < 2; ++side) {
      pair->core[side]->load_state(d);
      ckpt::load_u64_vec(d, pair->store_buffer[side]);
    }
    pair->next_boundary = d.u64();
    pair->reached[0] = d.b();
    pair->reached[1] = d.b();
    pair->reached_at[0] = d.u64();
    pair->reached_at[1] = d.u64();
    pair->checkpoint_done = d.u64();
    pair->last_committed_boundary = d.u64();
    if (d.u64() != pair->error_arrivals.size()) {
      throw ckpt::CkptError(
          "dmr-checkpoint error-arrival schedule mismatch");
    }
    pair->next_error = d.u64();
  }
  d.end_chunk();
}

}  // namespace unsync::core
