#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace unsync {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x, std::uint64_t weight) {
  auto idx = static_cast<std::int64_t>((x - lo_) / bucket_width_);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bucket_low(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i);
}

void Histogram::restore_counts(const std::vector<std::uint64_t>& counts) {
  if (counts.size() != counts_.size()) {
    throw std::invalid_argument("Histogram::restore_counts: shape mismatch");
  }
  counts_ = counts;
  total_ = 0;
  for (const std::uint64_t c : counts_) total_ += c;
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("Histogram::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (cum + c >= target && c > 0) {
      const double frac = (target - cum) / c;
      return bucket_low(i) + frac * bucket_width_;
    }
    cum += c;
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::ostringstream os;
  const std::uint64_t peak =
      *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak ? static_cast<std::size_t>(counts_[i] * width / peak) : 0;
    os << bucket_low(i) << "\t" << counts_[i] << "\t"
       << std::string(bar, '#') << "\n";
  }
  return os.str();
}

void CounterSet::inc(const std::string& name, std::uint64_t by) {
  for (auto& [k, v] : counters_) {
    if (k == name) {
      v += by;
      return;
    }
  }
  counters_.emplace_back(name, by);
}

std::uint64_t CounterSet::get(const std::string& name) const {
  for (const auto& [k, v] : counters_) {
    if (k == name) return v;
  }
  return 0;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterSet::sorted() const {
  auto out = counters_;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace unsync
