#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace unsync {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    os << "\n";
  };

  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  if (!title_.empty()) {
    os << title_ << "\n" << std::string(total, '=') << "\n";
  }
  if (!header_.empty()) {
    emit(header_);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
}

std::string TextTable::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string TextTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ",";
      // Quote cells containing separators; cells here never contain quotes.
      if (row[i].find_first_of(",\n") != std::string::npos) {
        os << '"' << row[i] << '"';
      } else {
        os << row[i];
      }
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace unsync
