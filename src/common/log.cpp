#include "common/log.hpp"

#include <atomic>
#include <iostream>

namespace unsync {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo:  return "[info ] ";
    case LogLevel::kWarn:  return "[warn ] ";
    case LogLevel::kError: return "[error] ";
    case LogLevel::kOff:   return "";
  }
  return "";
}
}  // namespace

void Log::set_level(LogLevel level) { g_level.store(level); }
LogLevel Log::level() { return g_level.load(); }

void Log::write(LogLevel level, const std::string& msg) {
  if (!enabled(level)) return;
  std::cerr << prefix(level) << msg << "\n";
}

}  // namespace unsync
