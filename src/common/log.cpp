#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace unsync {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Guards the stderr sink so lines from concurrent campaign jobs never
// interleave mid-line. The level check stays lock-free; only emitting
// writers serialize.
std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo:  return "[info ] ";
    case LogLevel::kWarn:  return "[warn ] ";
    case LogLevel::kError: return "[error] ";
    case LogLevel::kOff:   return "";
  }
  return "";
}
}  // namespace

void Log::set_level(LogLevel level) { g_level.store(level); }
LogLevel Log::level() { return g_level.load(); }

void Log::write(LogLevel level, const std::string& msg) {
  if (!enabled(level)) return;
  std::string line;
  line.reserve(msg.size() + 9);
  line += prefix(level);
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::cerr << line;
}

}  // namespace unsync
