// Minimal leveled logger. The simulator is hot-loop code, so logging is
// macro-free and compiled in always, but level checks are a single branch.
#pragma once

#include <sstream>
#include <string>

namespace unsync {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-global log configuration. The level is an atomic (set once at
/// startup; tests set kOff by default) and the stderr sink is mutex-guarded,
/// so concurrent campaign jobs emit line-atomic output.
class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();
  static bool enabled(LogLevel level) { return level >= Log::level(); }

  /// Writes one line with a level prefix to stderr.
  static void write(LogLevel level, const std::string& msg);

  static void debug(const std::string& msg) { write(LogLevel::kDebug, msg); }
  static void info(const std::string& msg) { write(LogLevel::kInfo, msg); }
  static void warn(const std::string& msg) { write(LogLevel::kWarn, msg); }
  static void error(const std::string& msg) { write(LogLevel::kError, msg); }
};

}  // namespace unsync
