#include "common/config.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/log.hpp"

namespace unsync {

Config Config::from_args(int argc, const char* const* argv,
                         std::vector<std::string>* positional) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (eq == 0) {
        Log::warn("malformed argument '" + arg + "' (empty key before '=')");
      }
      if (positional) positional->push_back(arg);
      continue;
    }
    cfg.set(arg.substr(0, eq), arg.substr(eq + 1));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  for (auto& e : entries_) {
    if (e.key == key) {
      e.value = value;
      return;
    }
  }
  entries_.push_back({key, value, false});
}

bool Config::has(const std::string& key) const { return find(key).has_value(); }

std::optional<std::string> Config::find(const std::string& key) const {
  if (std::find(consulted_.begin(), consulted_.end(), key) ==
      consulted_.end()) {
    consulted_.push_back(key);
  }
  for (const auto& e : entries_) {
    if (e.key == key) {
      e.accessed = true;
      return e.value;
    }
  }
  return std::nullopt;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return find(key).value_or(fallback);
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto v = find(key);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key +
                                "' is not an integer: " + *v);
  }
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto v = find(key);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key +
                                "' is not a number: " + *v);
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto v = find(key);
  if (!v) return fallback;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(), ::tolower);
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  throw std::invalid_argument("config key '" + key +
                              "' is not a boolean: " + *v);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.key);
  return out;
}

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& e : entries_) {
    if (!e.accessed) out.push_back(e.key);
  }
  return out;
}

std::vector<std::string> Config::known_keys() const { return consulted_; }

namespace {

/// Plain Levenshtein distance — the key vocabulary is tiny, so the O(n*m)
/// table is irrelevant.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
    }
  }
  return row[b.size()];
}

}  // namespace

bool Config::report_unused(const std::string& context) const {
  const auto unused = unused_keys();
  if (unused.empty()) return false;
  std::ostringstream msg;
  msg << context << ": unrecognized option";
  if (unused.size() > 1) msg << 's';
  for (const auto& k : unused) {
    msg << " '" << k << "'";
    // Suggest the closest key the command actually consulted, but only
    // when the typo is plausibly a typo (distance <= 2 and strictly
    // shorter than the key — "x" must never suggest "ser").
    std::size_t best = k.size();
    const std::string* hit = nullptr;
    for (const auto& known : consulted_) {
      const std::size_t d = edit_distance(k, known);
      if (d < best && d <= 2) {
        best = d;
        hit = &known;
      }
    }
    if (hit) msg << " (did you mean '" << *hit << "'?)";
  }
  msg << " (options are key=value; see usage)";
  Log::error(msg.str());
  return true;
}

}  // namespace unsync
