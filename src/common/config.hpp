// Tiny key=value configuration store with typed getters.
//
// Used by the examples and benches so that simulator parameters (Table I and
// the architecture knobs) can be overridden from the command line without a
// heavyweight flags library:  ./quickstart cb_entries=64 fi=30
//
// Misconfiguration safety: from_args reports malformed tokens (e.g. "=8")
// to stderr, and every getter marks its key as consumed, so a front end can
// call unused_keys() after dispatch and fail loudly on a typo like
// `thread=8` instead of silently running with defaults.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace unsync {

class Config {
 public:
  Config() = default;

  /// Parses "key=value" tokens (e.g. argv). Unrecognised tokens without '='
  /// are returned as positional arguments. Malformed tokens with an empty
  /// key ("=value") are reported on stderr and treated as positional.
  static Config from_args(int argc, const char* const* argv,
                          std::vector<std::string>* positional = nullptr);

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// All keys in insertion order (for help / echo output).
  std::vector<std::string> keys() const;

  /// Keys that were set but never consulted by any getter (including
  /// has()), in insertion order — the misspelled-knob detector.
  std::vector<std::string> unused_keys() const;

  /// Every key any getter (or has()) asked about, in first-consulted order
  /// — the vocabulary the command actually understands, whether or not the
  /// key was supplied. report_unused() matches unused keys against it to
  /// suggest the intended spelling.
  std::vector<std::string> known_keys() const;

  /// If any key went unused, prints one stderr line naming them (prefixed
  /// with `context`) and returns true. Keys within a small edit distance of
  /// a known key get a "did you mean" suggestion. Front ends treat the
  /// return as an error; long-form demos may choose to warn only.
  bool report_unused(const std::string& context) const;

 private:
  struct Entry {
    std::string key;
    std::string value;
    mutable bool accessed = false;
  };

  std::optional<std::string> find(const std::string& key) const;
  std::vector<Entry> entries_;
  /// Keys consulted through find(), deduplicated, in first-asked order.
  mutable std::vector<std::string> consulted_;
};

}  // namespace unsync
