// Tiny key=value configuration store with typed getters.
//
// Used by the examples and benches so that simulator parameters (Table I and
// the architecture knobs) can be overridden from the command line without a
// heavyweight flags library:  ./quickstart cb_entries=64 fi=30
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace unsync {

class Config {
 public:
  Config() = default;

  /// Parses "key=value" tokens (e.g. argv). Unrecognised tokens without '='
  /// are returned as positional arguments.
  static Config from_args(int argc, const char* const* argv,
                          std::vector<std::string>* positional = nullptr);

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// All keys in insertion order (for help / echo output).
  std::vector<std::string> keys() const;

 private:
  std::optional<std::string> find(const std::string& key) const;
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace unsync
