#include "common/rng.hpp"

#include <cassert>
#include <cmath>

namespace unsync {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // A theoretically possible all-zero state would lock the generator at 0.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded draw.
  unsigned __int128 m =
      static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<unsigned __int128>(next()) *
          static_cast<unsigned __int128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  // -log(1-u) avoids log(0) since uniform() < 1.
  return -std::log1p(-uniform()) / rate;
}

std::uint64_t Rng::geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  return static_cast<std::uint64_t>(std::floor(std::log1p(-uniform()) /
                                               std::log1p(-p)));
}

std::uint64_t derive_seed(std::uint64_t campaign_seed, std::uint64_t index) {
  // Two SplitMix64 steps over a mix of both inputs: consecutive indices
  // under the same campaign seed land in well-separated streams.
  std::uint64_t x = campaign_seed ^ (index * 0xd1342543de82ef95ULL + 1);
  (void)splitmix64(x);
  return splitmix64(x);
}

std::size_t Rng::pick_cumulative(const double* cumulative, std::size_t n) {
  assert(n > 0);
  const double total = cumulative[n - 1];
  const double draw = uniform() * total;
  // Linear scan: distributions in this codebase have < 16 buckets, where a
  // scan beats binary search on branch prediction.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (draw < cumulative[i]) return i;
  }
  return n - 1;
}

}  // namespace unsync
