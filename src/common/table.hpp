// ASCII table / CSV emitters used by the bench harness to print the paper's
// tables and figure series in a uniform, diff-friendly format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace unsync {

/// Column-aligned ASCII table with an optional title, printed to any ostream.
/// Cells are strings; numeric helpers format with fixed precision so bench
/// output is stable across runs.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Formats a double with `precision` fractional digits.
  static std::string num(double v, int precision = 2);
  /// Formats a percentage (value 0.20 -> "20.00%").
  static std::string pct(double fraction, int precision = 2);

  void print(std::ostream& os) const;
  std::string str() const;

  /// Emits the same data as CSV (header row first).
  std::string csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace unsync
