// Core scalar types shared across all UnSync libraries.
#pragma once

#include <cstdint>

namespace unsync {

/// Simulated clock cycle count. All timing models advance in units of Cycle.
using Cycle = std::uint64_t;

/// Physical / simulated byte address.
using Addr = std::uint64_t;

/// Dynamic-instruction sequence number (monotonic per thread).
using SeqNum = std::uint64_t;

/// Architectural register index for the mini ISA (32 integer + 32 fp).
using RegIndex = std::uint8_t;

/// Identifies a core inside the simulated CMP.
using CoreId = std::uint32_t;

/// An invalid / "no value" sentinel for sequence numbers.
inline constexpr SeqNum kNoSeq = ~SeqNum{0};

/// An invalid address sentinel.
inline constexpr Addr kNoAddr = ~Addr{0};

}  // namespace unsync
