// Lightweight online statistics used by the simulator and the bench harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace unsync {

/// Welford online mean / variance accumulator.
class RunningStat {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStat& other);

  /// Raw Welford m2 term — exposed (with restore()) so checkpoint/restore
  /// reproduces the accumulator bit-exactly; derived stats would not.
  double m2() const { return m2_; }

  /// Restores the exact internal state captured by the accessors above.
  void restore(std::uint64_t n, double mean, double m2, double min,
               double max, double sum) {
    n_ = n;
    mean_ = mean;
    m2_ = m2;
    min_ = min;
    max_ = max;
    sum_ = sum;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range samples are
/// clamped into the first / last bucket so totals always balance.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, std::uint64_t weight = 1);

  std::uint64_t total() const { return total_; }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::size_t buckets() const { return counts_.size(); }
  double low() const { return lo_; }
  double high() const { return hi_; }
  double bucket_low(std::size_t i) const;

  /// Adds another histogram's counts bucket-by-bucket (parallel reduction).
  /// Throws std::invalid_argument if the shapes (lo/hi/bucket count) differ.
  void merge(const Histogram& other);

  /// Value below which `q` (in [0,1]) of the mass lies, interpolated
  /// linearly within the containing bucket.
  double quantile(double q) const;

  /// Replaces the bucket counts wholesale (checkpoint/restore; `counts`
  /// must match buckets()). total() becomes the sum of the counts.
  void restore_counts(const std::vector<std::uint64_t>& counts);

  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Simple named counter set used for per-component simulator statistics.
class CounterSet {
 public:
  void inc(const std::string& name, std::uint64_t by = 1);
  std::uint64_t get(const std::string& name) const;
  std::vector<std::pair<std::string, std::uint64_t>> sorted() const;

 private:
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
};

}  // namespace unsync
