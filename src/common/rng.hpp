// Deterministic pseudo-random number generation for reproducible simulation.
//
// We use xoshiro256** (Blackman & Vigna) rather than std::mt19937 because it
// is faster, has a tiny state (32 bytes) that can be embedded per-component,
// and gives identical sequences across standard libraries — important for a
// simulator whose results must be reproducible bit-for-bit across platforms.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace unsync {

class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from a single 64-bit value via SplitMix64, which
  /// guarantees a well-mixed state even for small consecutive seeds.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Raw 64-bit draw (xoshiro256** scrambler).
  std::uint64_t next();

  std::uint64_t operator()() { return next(); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Geometric-like draw: number of failures before first success with
  /// success probability p (p in (0,1]).
  std::uint64_t geometric(double p);

  /// Draws an index from a discrete distribution given cumulative weights
  /// (cumulative[i] = sum of weights[0..i], last element = total weight).
  std::size_t pick_cumulative(const double* cumulative, std::size_t n);

  /// Raw generator state, for checkpoint/restore: set_state(state()) on a
  /// second instance makes it produce the identical draw sequence.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (std::size_t i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  std::uint64_t s_[4];
};

/// Derives the RNG seed of campaign job `index` from the campaign master
/// seed via a SplitMix64-style finalizer over the pair. Every parallel
/// harness MUST seed jobs through this (never from thread identity or
/// scheduling order) so a campaign is a pure function of
/// (campaign_seed, job_index) regardless of worker count.
std::uint64_t derive_seed(std::uint64_t campaign_seed, std::uint64_t index);

}  // namespace unsync
