#include "runtime/campaign.hpp"

#include <chrono>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "ckpt/journal.hpp"
#include "ckpt/serializer.hpp"
#include "common/rng.hpp"
#include "obs/json.hpp"
#include "runtime/campaign_journal.hpp"
#include "runtime/prefix.hpp"
#include "runtime/thread_pool.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace unsync::runtime {

std::uint64_t CampaignOutput::total_instructions() const {
  std::uint64_t total = 0;
  for (const auto& r : results) {
    for (const auto n : r.thread_instructions) total += n;
  }
  return total;
}

std::string CampaignOutput::to_json(int indent, bool include_timing) const {
  obs::JsonWriter w(indent);
  w.begin_object();
  w.key("schema").value("unsync.campaign.v2");
  w.key("campaign_seed").value(campaign_seed);
  w.key("total_instructions").value(total_instructions());
  w.key("jobs").begin_array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    w.begin_object();
    w.key("label").value(i < labels.size() ? labels[i] : std::string());
    w.key("seed").value(i < seeds.size() ? seeds[i] : std::uint64_t{0});
    w.key("result").raw(results[i].to_json());
    if (include_timing && i < job_wall_seconds.size()) {
      w.key("wall_seconds").value(job_wall_seconds[i]);
    }
    w.end_object();
  }
  w.end_array();
  if (metrics.empty()) {
    w.key("metrics").null();
  } else {
    w.key("metrics").raw(metrics.to_json());
  }
  if (include_timing) {
    w.key("wall_seconds").value(wall_seconds);
    if (!scheduler_metrics.empty()) {
      w.key("scheduler_metrics").raw(scheduler_metrics.to_json());
    }
  }
  w.end_object();
  return w.take();
}

std::unique_ptr<workload::InstStream> make_job_stream(const SimJob& job,
                                                      std::uint64_t seed) {
  if (!job.profile.empty()) {
    return std::make_unique<workload::SyntheticStream>(
        workload::profile(job.profile), seed, job.insts);
  }
  if (job.trace) return std::make_unique<workload::TraceStream>(job.trace);
  throw std::invalid_argument("job '" + job.label +
                              "' selects no workload (profile or trace)");
}

core::SystemConfig job_system_config(const SimJob& job, std::uint64_t seed) {
  core::SystemConfig sys_cfg;
  sys_cfg.num_threads = job.app_threads;
  sys_cfg.ser_per_inst = job.ser_per_inst;
  sys_cfg.seed = seed;
  sys_cfg.fast_forward = job.fast_forward;
  sys_cfg.avf = job.avf;
  sys_cfg.uncore_protect = job.protect;
  return sys_cfg;
}

namespace {

/// Renders SchedulerStats + per-job wall times into the campaign.scheduler.*
/// subtree. Measurement only: excluded from the default to_json() exactly
/// like wall_seconds.
obs::MetricsSnapshot scheduler_snapshot(
    const SchedulerStats& stats, const std::vector<double>& job_wall_seconds) {
  obs::MetricsRegistry reg;
  const WorkerStats total = stats.total();
  reg.set_counter("campaign.scheduler.workers", stats.workers.size());
  reg.set_counter("campaign.scheduler.local_claims", total.local_claims);
  reg.set_counter("campaign.scheduler.steals", total.steals);
  reg.set_counter("campaign.scheduler.steal_failures", total.steal_failures);
  reg.set_counter("campaign.scheduler.idle_ns", total.idle_ns);
  for (std::size_t w = 0; w < stats.workers.size(); ++w) {
    const std::string base =
        "campaign.scheduler.worker" + std::to_string(w) + ".";
    const auto& ws = stats.workers[w];
    reg.set_counter(base + "indices", ws.indices);
    reg.set_counter(base + "local_claims", ws.local_claims);
    reg.set_counter(base + "steals", ws.steals);
    reg.set_counter(base + "steal_failures", ws.steal_failures);
    reg.set_counter(base + "idle_ns", ws.idle_ns);
  }
  // Per-job wall-time distribution: 100 x 25ms buckets (clamped above
  // 2.5s into the last bucket) plus an exact-moment gauge.
  auto& hist =
      reg.histogram("campaign.scheduler.job_wall_seconds", 0.0, 2.5, 100);
  auto& gauge = reg.gauge("campaign.scheduler.job_wall_seconds_stat");
  for (const double s : job_wall_seconds) {
    hist.add(s);
    gauge.add(s);
  }
  return reg.snapshot();
}

}  // namespace

double screening_score(const core::RunResult& result) {
  double score = static_cast<double>(result.errors_injected) +
                 static_cast<double>(result.recoveries) +
                 static_cast<double>(result.rollbacks);
  if (result.cycles != 0) {
    score += static_cast<double>(result.recovery_cycles_total) /
             static_cast<double>(result.cycles);
  }
  return score;
}

core::RunResult CampaignRunner::run_job(const SimJob& job, std::uint64_t seed,
                                        obs::MetricsRegistry* metrics,
                                        obs::TraceSink* trace) {
  const auto stream = make_job_stream(job, seed);
  const auto model = core::make_model(job.system, job_system_config(job, seed),
                                      *stream, job.params);
  if (metrics || trace) model->set_observability(metrics, trace);
  return model->run();
}

core::RunResult CampaignRunner::run_job_screened(const SimJob& job,
                                                 std::uint64_t seed,
                                                 double threshold,
                                                 obs::MetricsSnapshot* metrics) {
  SimJob screened = job;
  // The reported snapshot must come from exactly the tier that produced the
  // reported result: run_tier REPLACES `snap` wholesale (never merges), and
  // `*metrics` is assigned once, at the end — so a detailed re-run cannot
  // leak fast-tier counters into the cell, structurally.
  obs::MetricsSnapshot snap;
  const auto run_tier = [&](engine::Tier tier) {
    screened.params.tier = tier;
    if (!metrics) return run_job(screened, seed);
    obs::MetricsRegistry reg;
    core::RunResult r = run_job(screened, seed, &reg);
    snap = reg.snapshot();
    return r;
  };
  core::RunResult result = run_tier(engine::Tier::kFast);
  if (screening_score(result) >= threshold) {
    result = run_tier(engine::Tier::kDetailed);
  }
  if (metrics) *metrics = std::move(snap);
  return result;
}

CampaignOutput CampaignRunner::run(const std::vector<SimJob>& jobs) const {
  CampaignOutput out;
  out.results.resize(jobs.size());
  out.seeds.resize(jobs.size());
  out.job_wall_seconds.resize(jobs.size(), 0.0);
  out.campaign_seed = options_.campaign_seed;
  out.labels.reserve(jobs.size());
  for (const auto& job : jobs) out.labels.push_back(job.label);

  // Per-job registries; merged in submission order after the grid so the
  // aggregate is independent of the worker count.
  std::vector<obs::MetricsSnapshot> job_metrics(
      options_.collect_metrics ? jobs.size() : 0);

  // Prefix-sharing engine. Screening campaigns never construct one (the
  // fast tier already is the shortcut); metrics-collecting campaigns keep
  // the engine but route every job around it (per-cycle histograms depend
  // on the cycles a shared prefix would skip), so `campaign status` still
  // reports why nothing was shared.
  const bool prefix_on = options_.prefix.enabled && !options_.screen;
  std::unique_ptr<PrefixEngine> engine;
  if (prefix_on) engine = std::make_unique<PrefixEngine>(options_.prefix);
  const bool prefix_jobs = prefix_on && !options_.collect_metrics;

  // Journal setup. On resume the surviving entries are re-encoded into a
  // fresh journal via atomic rewrite (dropping torn/corrupt lines), then
  // the stream continues in append mode — so after any number of
  // kill/resume cycles the journal holds exactly one valid line per
  // completed job.
  std::vector<char> restored(jobs.size(), 0);
  std::ofstream journal;
  if (!options_.journal.empty()) {
    const ckpt::JournalHeader header = make_journal_header(
        jobs, options_.campaign_seed, options_.collect_metrics,
        options_.screen, options_.screen_threshold, prefix_on,
        options_.prefix.interval);
    std::string rewrite = header.to_line();
    rewrite.push_back('\n');
    if (options_.resume) {
      auto loaded = load_journal(options_.journal, header);
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!loaded[i] ||
            !entry_acceptable(jobs[i], loaded[i]->result, options_.screen,
                              options_.screen_threshold)) {
          continue;
        }
        restored[i] = 1;
        const std::uint64_t seed = job_seed(jobs, options_.campaign_seed, i);
        const std::string blob = encode_entry_blob(
            loaded[i]->result,
            loaded[i]->has_metrics ? &loaded[i]->metrics : nullptr);
        rewrite += ckpt::journal_entry_line(i, jobs[i].label, seed, blob);
        rewrite.push_back('\n');
        out.results[i] = std::move(loaded[i]->result);
        if (options_.collect_metrics) {
          job_metrics[i] = std::move(loaded[i]->metrics);
        }
      }
    }
    ckpt::atomic_write_text(options_.journal, rewrite);
    journal.open(options_.journal, std::ios::binary | std::ios::app);
    if (!journal) {
      throw std::runtime_error("cannot open campaign journal '" +
                               options_.journal + "' for append");
    }
  }

  std::mutex progress_mu;
  std::size_t completed = 0;
  std::size_t unflushed = 0;

  // Execution-order permutation: jobs that share a golden configuration
  // are claimed together (and ordered by first arrival), so each golden is
  // built once and stays hot in the LRU. Results are still stored by the
  // true submission index — output bytes never depend on this.
  std::vector<std::size_t> order;
  if (prefix_jobs) order = engine->schedule_order(jobs, options_.campaign_seed);

  const auto start = std::chrono::steady_clock::now();
  ThreadPool pool(options_.threads);
  SchedulerStats sched_stats;
  pool.parallel_for(
      jobs.size(),
      [&](std::size_t idx) {
        const std::size_t i = order.empty() ? idx : order[idx];
        const std::uint64_t seed = job_seed(jobs, options_.campaign_seed, i);
        out.seeds[i] = seed;
        if (!restored[i]) {
          const auto job_start = std::chrono::steady_clock::now();
          if (options_.screen) {
            out.results[i] = run_job_screened(
                jobs[i], seed, options_.screen_threshold,
                options_.collect_metrics ? &job_metrics[i] : nullptr);
          } else if (options_.collect_metrics) {
            if (engine) engine->note_bypass();
            obs::MetricsRegistry reg;
            out.results[i] = run_job(jobs[i], seed, &reg);
            job_metrics[i] = reg.snapshot();
          } else if (engine) {
            out.results[i] = engine->run_job(jobs[i], seed);
          } else {
            out.results[i] = run_job(jobs[i], seed);
          }
          out.job_wall_seconds[i] =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            job_start)
                  .count();
        }
        std::string entry;
        if (journal.is_open() && !restored[i]) {
          const std::string blob = encode_entry_blob(
              out.results[i],
              options_.collect_metrics ? &job_metrics[i] : nullptr);
          entry = ckpt::journal_entry_line(i, jobs[i].label, seed, blob);
          entry.push_back('\n');
        }
        if (options_.progress || !entry.empty()) {
          const std::lock_guard<std::mutex> lock(progress_mu);
          if (!entry.empty()) {
            journal << entry;
            if (++unflushed >= options_.checkpoint_every) {
              journal.flush();
              unflushed = 0;
            }
          }
          if (options_.progress) options_.progress(++completed, jobs.size());
        }
      },
      options_.schedule, &sched_stats);
  if (journal.is_open()) {
    // Completed prefix-sharing campaigns record the engine totals as a
    // trailing "stats" line. Entry readers skip it; `campaign status`
    // decodes it. Resume's atomic rewrite above drops any earlier one, so
    // a finished journal carries exactly one.
    if (engine) {
      journal << ckpt::journal_stats_line(engine->stats().encode()) << '\n';
    }
    journal.flush();
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.scheduler_metrics = scheduler_snapshot(sched_stats, out.job_wall_seconds);
  if (engine) out.scheduler_metrics.merge(engine->stats().snapshot());

  // Submission-order merge keeps out.metrics a pure function of the grid.
  // Wall-clock lives only in wall_seconds / job_wall_seconds (and whatever
  // a caller explicitly derives from them) — never in this snapshot.
  for (auto& snap : job_metrics) out.metrics.merge(snap);
  return out;
}

}  // namespace unsync::runtime
