#include "runtime/campaign.hpp"

#include <chrono>
#include <fstream>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "ckpt/serializer.hpp"
#include "common/rng.hpp"
#include "obs/json.hpp"
#include "runtime/thread_pool.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace unsync::runtime {

std::uint64_t CampaignOutput::total_instructions() const {
  std::uint64_t total = 0;
  for (const auto& r : results) {
    for (const auto n : r.thread_instructions) total += n;
  }
  return total;
}

std::string CampaignOutput::to_json(int indent, bool include_timing) const {
  obs::JsonWriter w(indent);
  w.begin_object();
  w.key("schema").value("unsync.campaign.v1");
  w.key("campaign_seed").value(campaign_seed);
  w.key("total_instructions").value(total_instructions());
  w.key("jobs").begin_array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    w.begin_object();
    w.key("label").value(i < labels.size() ? labels[i] : std::string());
    w.key("seed").value(i < seeds.size() ? seeds[i] : std::uint64_t{0});
    w.key("result").raw(results[i].to_json());
    if (include_timing && i < job_wall_seconds.size()) {
      w.key("wall_seconds").value(job_wall_seconds[i]);
    }
    w.end_object();
  }
  w.end_array();
  if (metrics.empty()) {
    w.key("metrics").null();
  } else {
    w.key("metrics").raw(metrics.to_json());
  }
  if (include_timing) {
    w.key("wall_seconds").value(wall_seconds);
  }
  w.end_object();
  return w.take();
}

namespace {

std::unique_ptr<workload::InstStream> make_stream(const SimJob& job,
                                                  std::uint64_t seed) {
  if (!job.profile.empty()) {
    return std::make_unique<workload::SyntheticStream>(
        workload::profile(job.profile), seed, job.insts);
  }
  if (job.trace) return std::make_unique<workload::TraceStream>(job.trace);
  throw std::invalid_argument("job '" + job.label +
                              "' selects no workload (profile or trace)");
}

// ---- Campaign journal ("unsync.campaign_journal.v1") ------------------------
//
// Line 0 is a header pinning the campaign identity; every later line is one
// completed job: {"index":i,"label":...,"seed":s,"crc":c,"blob":"<hex>"}.
// The blob is the ckpt-serialized RunResult (+ metric snapshot when metrics
// were collected); `crc` covers the decoded blob bytes, so a torn tail line
// or flipped bit is detected and that job silently re-runs. Only `index`,
// `crc` and `blob` are load-bearing on resume — label and seed are
// informational (both are pure functions of the grid the header validates).

constexpr std::string_view kJournalSchema = "unsync.campaign_journal.v1";

/// CRC-32 fingerprint of the whole job grid: any change to a label,
/// workload, architecture, knob or seed yields a different fingerprint, so
/// a journal can never be resumed against a grid it was not written for.
std::uint32_t grid_fingerprint(const std::vector<SimJob>& jobs) {
  ckpt::Serializer s;
  for (const auto& job : jobs) {
    s.str(job.label);
    s.str(job.profile);
    s.b(static_cast<bool>(job.trace));
    s.u64(job.trace ? job.trace->size() : 0);
    s.u8(static_cast<std::uint8_t>(job.system));
    s.u64(job.insts);
    s.f64(job.ser_per_inst);
    s.u32(job.app_threads);
    s.b(job.fast_forward);
    s.b(job.seed.has_value());
    s.u64(job.seed.value_or(0));
    const auto& p = job.params;
    s.u32(p.unsync.group_size);
    s.u64(p.unsync.cb_entries);
    s.u32(p.unsync.drain_per_cycle);
    s.u64(p.unsync.eih_signal_cycles);
    s.u64(p.unsync.state_copy_word_cycles);
    s.u32(p.unsync.arch_state_words);
    s.u64(p.unsync.l1_copy_line_cycles);
    s.u32(p.reunion.fingerprint_interval);
    s.u64(p.reunion.compare_latency);
    s.u32(p.reunion.csb_entries);
    s.u64(p.reunion.rollback_penalty);
    s.u32(p.lockstep.max_skew);
    s.u64(p.lockstep.load_check_latency);
    s.u64(p.lockstep.resync_penalty);
    s.u64(p.checkpoint.checkpoint_interval);
    s.u64(p.checkpoint.checkpoint_cost);
    s.u64(p.checkpoint.compare_latency);
    s.u64(p.checkpoint.restore_cost);
  }
  return ckpt::crc32(s.data());
}

std::string hex_encode(std::string_view bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xF]);
  }
  return out;
}

std::optional<std::string> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

/// Finds `"key":` in a journal line and parses the decimal integer after
/// it. Returns nullopt if absent/malformed — callers drop such lines.
std::optional<std::uint64_t> find_u64(const std::string& line,
                                      std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return std::nullopt;
  std::uint64_t v = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
    ++i;
  }
  return v;
}

/// Finds `"key":"<value>"` where value contains no escapes (hex / schema
/// strings only).
std::optional<std::string> find_plain_str(const std::string& line,
                                          std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const auto at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const auto start = at + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(start, end - start);
}

struct RestoredJob {
  core::RunResult result;
  bool has_metrics = false;
  obs::MetricsSnapshot metrics;
};

std::string encode_entry_blob(const core::RunResult& result,
                              const obs::MetricsSnapshot* metrics) {
  ckpt::Serializer s;
  core::save_result(s, result);
  s.b(metrics != nullptr);
  if (metrics) metrics->save(s);
  return s.take();
}

std::optional<RestoredJob> decode_entry_blob(std::string blob) {
  try {
    ckpt::Deserializer d(std::move(blob));
    RestoredJob r;
    core::load_result(d, r.result);
    r.has_metrics = d.b();
    if (r.has_metrics) r.metrics.load(d);
    if (!d.at_end()) return std::nullopt;
    return r;
  } catch (const ckpt::CkptError&) {
    return std::nullopt;
  }
}

std::string journal_header(std::uint64_t campaign_seed, std::size_t jobs,
                           std::uint32_t grid_crc, bool collect_metrics) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value(kJournalSchema);
  w.key("campaign_seed").value(campaign_seed);
  w.key("jobs").value(static_cast<std::uint64_t>(jobs));
  w.key("grid_crc").value(static_cast<std::uint64_t>(grid_crc));
  w.key("collect_metrics").value(collect_metrics);
  w.end_object();
  return w.take();
}

std::string journal_entry(std::size_t index, const std::string& label,
                          std::uint64_t seed, std::string_view blob) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("index").value(static_cast<std::uint64_t>(index));
  w.key("label").value(label);
  w.key("seed").value(seed);
  w.key("crc").value(static_cast<std::uint64_t>(ckpt::crc32(blob)));
  w.key("blob").value(hex_encode(blob));
  w.end_object();
  return w.take();
}

/// Loads a journal for resumption. Header mismatch throws ckpt::CkptError
/// (the journal belongs to a different campaign — resuming would silently
/// produce wrong output); corrupt entry lines are dropped (the job
/// re-runs). Returns one restored job per validated entry, by index.
std::vector<std::optional<RestoredJob>> load_journal(
    const std::string& path, std::uint64_t campaign_seed, std::size_t jobs,
    std::uint32_t grid_crc, bool collect_metrics) {
  std::vector<std::optional<RestoredJob>> restored(jobs);
  std::ifstream in(path, std::ios::binary);
  if (!in) return restored;  // missing journal = fresh campaign

  std::string line;
  if (!std::getline(in, line) || line.empty()) return restored;  // empty file

  const auto schema = find_plain_str(line, "schema");
  if (!schema || *schema != kJournalSchema) {
    throw ckpt::CkptError("campaign journal '" + path +
                          "': missing or unknown schema header");
  }
  auto check = [&](std::string_view key, std::uint64_t want) {
    const auto got = find_u64(line, key);
    if (!got || *got != want) {
      throw ckpt::CkptError("campaign journal '" + path + "': " +
                            std::string(key) +
                            " does not match this campaign");
    }
  };
  check("campaign_seed", campaign_seed);
  check("jobs", jobs);
  check("grid_crc", grid_crc);
  const bool journal_metrics =
      line.find("\"collect_metrics\":true") != std::string::npos;
  if (journal_metrics != collect_metrics) {
    throw ckpt::CkptError("campaign journal '" + path +
                          "': collect_metrics does not match this campaign");
  }

  while (std::getline(in, line)) {
    const auto index = find_u64(line, "index");
    const auto crc = find_u64(line, "crc");
    const auto hex = find_plain_str(line, "blob");
    if (!index || !crc || !hex || *index >= jobs) continue;
    const auto blob = hex_decode(*hex);
    if (!blob || ckpt::crc32(*blob) != *crc) continue;
    auto entry = decode_entry_blob(*blob);
    if (!entry || entry->has_metrics != collect_metrics) continue;
    restored[*index] = std::move(*entry);  // duplicate index: last wins
  }
  return restored;
}

}  // namespace

core::RunResult CampaignRunner::run_job(const SimJob& job, std::uint64_t seed,
                                        obs::MetricsRegistry* metrics,
                                        obs::TraceSink* trace) {
  const auto stream = make_stream(job, seed);

  core::SystemConfig sys_cfg;
  sys_cfg.num_threads = job.app_threads;
  sys_cfg.ser_per_inst = job.ser_per_inst;
  sys_cfg.seed = seed;
  sys_cfg.fast_forward = job.fast_forward;

  const auto sys = core::make_system(job.system, sys_cfg, *stream, job.params);
  if (metrics || trace) sys->set_observability(metrics, trace);
  return sys->run();
}

CampaignOutput CampaignRunner::run(const std::vector<SimJob>& jobs) const {
  CampaignOutput out;
  out.results.resize(jobs.size());
  out.seeds.resize(jobs.size());
  out.job_wall_seconds.resize(jobs.size(), 0.0);
  out.campaign_seed = options_.campaign_seed;
  out.labels.reserve(jobs.size());
  for (const auto& job : jobs) out.labels.push_back(job.label);

  // Per-job registries; merged in submission order after the grid so the
  // aggregate is independent of the worker count.
  std::vector<obs::MetricsSnapshot> job_metrics(
      options_.collect_metrics ? jobs.size() : 0);

  // Journal setup. On resume the surviving entries are re-encoded into a
  // fresh journal via atomic rewrite (dropping torn/corrupt lines), then
  // the stream continues in append mode — so after any number of
  // kill/resume cycles the journal holds exactly one valid line per
  // completed job.
  std::vector<char> restored(jobs.size(), 0);
  std::ofstream journal;
  if (!options_.journal.empty()) {
    const std::uint32_t grid_crc = grid_fingerprint(jobs);
    std::string rewrite = journal_header(options_.campaign_seed, jobs.size(),
                                         grid_crc, options_.collect_metrics);
    rewrite.push_back('\n');
    if (options_.resume) {
      auto loaded =
          load_journal(options_.journal, options_.campaign_seed, jobs.size(),
                       grid_crc, options_.collect_metrics);
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!loaded[i]) continue;
        restored[i] = 1;
        const std::uint64_t seed =
            jobs[i].seed ? *jobs[i].seed
                         : derive_seed(options_.campaign_seed,
                                       static_cast<std::uint64_t>(i));
        const std::string blob = encode_entry_blob(
            loaded[i]->result,
            loaded[i]->has_metrics ? &loaded[i]->metrics : nullptr);
        rewrite += journal_entry(i, jobs[i].label, seed, blob);
        rewrite.push_back('\n');
        out.results[i] = std::move(loaded[i]->result);
        if (options_.collect_metrics) {
          job_metrics[i] = std::move(loaded[i]->metrics);
        }
      }
    }
    ckpt::atomic_write_text(options_.journal, rewrite);
    journal.open(options_.journal, std::ios::binary | std::ios::app);
    if (!journal) {
      throw std::runtime_error("cannot open campaign journal '" +
                               options_.journal + "' for append");
    }
  }

  std::mutex progress_mu;
  std::size_t completed = 0;
  std::size_t unflushed = 0;

  const auto start = std::chrono::steady_clock::now();
  ThreadPool pool(options_.threads);
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    const std::uint64_t seed =
        jobs[i].seed ? *jobs[i].seed
                     : derive_seed(options_.campaign_seed,
                                   static_cast<std::uint64_t>(i));
    out.seeds[i] = seed;
    if (!restored[i]) {
      const auto job_start = std::chrono::steady_clock::now();
      if (options_.collect_metrics) {
        obs::MetricsRegistry reg;
        out.results[i] = run_job(jobs[i], seed, &reg);
        job_metrics[i] = reg.snapshot();
      } else {
        out.results[i] = run_job(jobs[i], seed);
      }
      out.job_wall_seconds[i] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        job_start)
              .count();
    }
    std::string entry;
    if (journal.is_open() && !restored[i]) {
      const std::string blob = encode_entry_blob(
          out.results[i],
          options_.collect_metrics ? &job_metrics[i] : nullptr);
      entry = journal_entry(i, jobs[i].label, seed, blob);
      entry.push_back('\n');
    }
    if (options_.progress || !entry.empty()) {
      const std::lock_guard<std::mutex> lock(progress_mu);
      if (!entry.empty()) {
        journal << entry;
        if (++unflushed >= options_.checkpoint_every) {
          journal.flush();
          unflushed = 0;
        }
      }
      if (options_.progress) options_.progress(++completed, jobs.size());
    }
  });
  if (journal.is_open()) journal.flush();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Submission-order merge keeps out.metrics a pure function of the grid.
  // Wall-clock lives only in wall_seconds / job_wall_seconds (and whatever
  // a caller explicitly derives from them) — never in this snapshot.
  for (auto& snap : job_metrics) out.metrics.merge(snap);
  return out;
}

}  // namespace unsync::runtime
