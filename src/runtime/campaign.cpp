#include "runtime/campaign.hpp"

#include <chrono>
#include <stdexcept>

#include "common/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace unsync::runtime {

const char* name_of(SystemKind kind) {
  switch (kind) {
    case SystemKind::kBaseline: return "baseline";
    case SystemKind::kUnSync: return "unsync";
    case SystemKind::kReunion: return "reunion";
    case SystemKind::kLockstep: return "lockstep";
    case SystemKind::kCheckpoint: return "checkpoint";
  }
  return "?";
}

std::optional<SystemKind> parse_system(const std::string& name) {
  if (name == "baseline") return SystemKind::kBaseline;
  if (name == "unsync") return SystemKind::kUnSync;
  if (name == "reunion") return SystemKind::kReunion;
  if (name == "lockstep") return SystemKind::kLockstep;
  if (name == "checkpoint") return SystemKind::kCheckpoint;
  return std::nullopt;
}

std::uint64_t CampaignOutput::total_instructions() const {
  std::uint64_t total = 0;
  for (const auto& r : results) {
    for (const auto n : r.thread_instructions) total += n;
  }
  return total;
}

namespace {

std::unique_ptr<workload::InstStream> make_stream(const SimJob& job,
                                                  std::uint64_t seed) {
  if (!job.profile.empty()) {
    return std::make_unique<workload::SyntheticStream>(
        workload::profile(job.profile), seed, job.insts);
  }
  if (job.trace) return std::make_unique<workload::TraceStream>(job.trace);
  throw std::invalid_argument("job '" + job.label +
                              "' selects no workload (profile or trace)");
}

}  // namespace

core::RunResult CampaignRunner::run_job(const SimJob& job,
                                        std::uint64_t seed) {
  const auto stream = make_stream(job, seed);

  core::SystemConfig sys_cfg;
  sys_cfg.num_threads = job.app_threads;
  sys_cfg.ser_per_inst = job.ser_per_inst;
  sys_cfg.seed = seed;

  std::unique_ptr<core::System> sys;
  switch (job.system) {
    case SystemKind::kBaseline:
      sys = std::make_unique<core::BaselineSystem>(sys_cfg, *stream);
      break;
    case SystemKind::kUnSync:
      sys = std::make_unique<core::UnSyncSystem>(sys_cfg, job.unsync, *stream);
      break;
    case SystemKind::kReunion:
      sys = std::make_unique<core::ReunionSystem>(sys_cfg, job.reunion,
                                                  *stream);
      break;
    case SystemKind::kLockstep:
      sys = std::make_unique<core::LockstepSystem>(sys_cfg, job.lockstep,
                                                   *stream);
      break;
    case SystemKind::kCheckpoint:
      sys = std::make_unique<core::DmrCheckpointSystem>(sys_cfg,
                                                        job.checkpoint,
                                                        *stream);
      break;
  }
  return sys->run();
}

CampaignOutput CampaignRunner::run(const std::vector<SimJob>& jobs) const {
  CampaignOutput out;
  out.results.resize(jobs.size());

  const auto start = std::chrono::steady_clock::now();
  ThreadPool pool(options_.threads);
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    const std::uint64_t seed =
        jobs[i].seed ? *jobs[i].seed
                     : derive_seed(options_.campaign_seed,
                                   static_cast<std::uint64_t>(i));
    out.results[i] = run_job(jobs[i], seed);
  });
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

}  // namespace unsync::runtime
