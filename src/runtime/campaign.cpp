#include "runtime/campaign.hpp"

#include <chrono>
#include <mutex>
#include <stdexcept>

#include "common/rng.hpp"
#include "obs/json.hpp"
#include "runtime/thread_pool.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace unsync::runtime {

std::uint64_t CampaignOutput::total_instructions() const {
  std::uint64_t total = 0;
  for (const auto& r : results) {
    for (const auto n : r.thread_instructions) total += n;
  }
  return total;
}

std::string CampaignOutput::to_json(int indent, bool include_timing) const {
  obs::JsonWriter w(indent);
  w.begin_object();
  w.key("schema").value("unsync.campaign.v1");
  w.key("campaign_seed").value(campaign_seed);
  w.key("total_instructions").value(total_instructions());
  w.key("jobs").begin_array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    w.begin_object();
    w.key("label").value(i < labels.size() ? labels[i] : std::string());
    w.key("seed").value(i < seeds.size() ? seeds[i] : std::uint64_t{0});
    w.key("result").raw(results[i].to_json());
    if (include_timing && i < job_wall_seconds.size()) {
      w.key("wall_seconds").value(job_wall_seconds[i]);
    }
    w.end_object();
  }
  w.end_array();
  if (metrics.empty()) {
    w.key("metrics").null();
  } else {
    w.key("metrics").raw(metrics.to_json());
  }
  if (include_timing) {
    w.key("wall_seconds").value(wall_seconds);
  }
  w.end_object();
  return w.take();
}

namespace {

std::unique_ptr<workload::InstStream> make_stream(const SimJob& job,
                                                  std::uint64_t seed) {
  if (!job.profile.empty()) {
    return std::make_unique<workload::SyntheticStream>(
        workload::profile(job.profile), seed, job.insts);
  }
  if (job.trace) return std::make_unique<workload::TraceStream>(job.trace);
  throw std::invalid_argument("job '" + job.label +
                              "' selects no workload (profile or trace)");
}

}  // namespace

core::RunResult CampaignRunner::run_job(const SimJob& job, std::uint64_t seed,
                                        obs::MetricsRegistry* metrics,
                                        obs::TraceSink* trace) {
  const auto stream = make_stream(job, seed);

  core::SystemConfig sys_cfg;
  sys_cfg.num_threads = job.app_threads;
  sys_cfg.ser_per_inst = job.ser_per_inst;
  sys_cfg.seed = seed;

  const auto sys = core::make_system(job.system, sys_cfg, *stream, job.params);
  if (metrics || trace) sys->set_observability(metrics, trace);
  return sys->run();
}

CampaignOutput CampaignRunner::run(const std::vector<SimJob>& jobs) const {
  CampaignOutput out;
  out.results.resize(jobs.size());
  out.seeds.resize(jobs.size());
  out.job_wall_seconds.resize(jobs.size(), 0.0);
  out.campaign_seed = options_.campaign_seed;
  out.labels.reserve(jobs.size());
  for (const auto& job : jobs) out.labels.push_back(job.label);

  // Per-job registries; merged in submission order after the grid so the
  // aggregate is independent of the worker count.
  std::vector<obs::MetricsSnapshot> job_metrics(
      options_.collect_metrics ? jobs.size() : 0);

  std::mutex progress_mu;
  std::size_t completed = 0;

  const auto start = std::chrono::steady_clock::now();
  ThreadPool pool(options_.threads);
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    const std::uint64_t seed =
        jobs[i].seed ? *jobs[i].seed
                     : derive_seed(options_.campaign_seed,
                                   static_cast<std::uint64_t>(i));
    out.seeds[i] = seed;
    const auto job_start = std::chrono::steady_clock::now();
    if (options_.collect_metrics) {
      obs::MetricsRegistry reg;
      out.results[i] = run_job(jobs[i], seed, &reg);
      job_metrics[i] = reg.snapshot();
    } else {
      out.results[i] = run_job(jobs[i], seed);
    }
    out.job_wall_seconds[i] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      job_start)
            .count();
    if (options_.progress) {
      const std::lock_guard<std::mutex> lock(progress_mu);
      options_.progress(++completed, jobs.size());
    }
  });
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Submission-order merge keeps out.metrics a pure function of the grid.
  // Wall-clock lives only in wall_seconds / job_wall_seconds (and whatever
  // a caller explicitly derives from them) — never in this snapshot.
  for (auto& snap : job_metrics) out.metrics.merge(snap);
  return out;
}

}  // namespace unsync::runtime
