#include "runtime/distributed.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "ckpt/serializer.hpp"
#include "runtime/campaign_journal.hpp"
#include "runtime/thread_pool.hpp"

namespace unsync::runtime {

namespace {

namespace fs = std::filesystem;

/// Reads the first line of a file; empty string if missing/empty.
std::string read_first_line(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string line;
  if (!in || !std::getline(in, line)) return std::string();
  return line;
}

/// Whether this topology runs the prefix engine (screening wins: the fast
/// tier already is the shortcut, so the engine stays out of the identity).
bool prefix_on(const DistributedOptions& opts) {
  return opts.prefix.enabled && !opts.screen;
}

ckpt::JournalHeader shard_header(const std::vector<SimJob>& jobs,
                                 const DistributedOptions& opts,
                                 unsigned shard) {
  ckpt::JournalHeader h = make_journal_header(
      jobs, opts.campaign_seed, opts.collect_metrics, opts.screen,
      opts.screen_threshold, prefix_on(opts), opts.prefix.interval);
  h.shard = shard;
  h.workers = opts.workers;
  return h;
}

/// Done mask of one shard journal; all-false if the journal does not exist
/// yet (the sibling has not started). Header mismatches still throw — a
/// foreign journal in the campaign dir is corruption, not absence.
std::vector<char> shard_done_mask(const std::vector<SimJob>& jobs,
                                  const DistributedOptions& opts,
                                  unsigned shard) {
  return journal_done_mask(shard_journal_path(opts.dir, shard),
                           shard_header(jobs, opts, shard));
}

}  // namespace

std::string manifest_path(const std::string& dir) {
  return (fs::path(dir) / "MANIFEST.json").string();
}

std::string shard_journal_path(const std::string& dir, unsigned shard) {
  return (fs::path(dir) / ("shard_" + std::to_string(shard) + ".jsonl"))
      .string();
}

ckpt::JournalHeader manifest_header(const std::vector<SimJob>& jobs,
                                    const DistributedOptions& opts) {
  ckpt::JournalHeader h = make_journal_header(
      jobs, opts.campaign_seed, opts.collect_metrics, opts.screen,
      opts.screen_threshold, prefix_on(opts), opts.prefix.interval);
  h.workers = opts.workers;
  return h;
}

void ensure_manifest(const std::vector<SimJob>& jobs,
                     const DistributedOptions& opts) {
  if (opts.workers == 0) {
    throw std::invalid_argument("distributed campaign needs workers >= 1");
  }
  fs::create_directories(opts.dir);
  const std::string path = manifest_path(opts.dir);
  const ckpt::JournalHeader expect = manifest_header(jobs, opts);
  const std::string line = read_first_line(path);
  if (line.empty()) {
    // First participant (or a torn manifest — identical rewrite fixes it).
    // Every participant computes identical bytes, so concurrent writers are
    // benign: atomic_write_text makes whoever lands last a no-op.
    ckpt::atomic_write_text(path, expect.to_line() + "\n");
    return;
  }
  const auto found = ckpt::JournalHeader::parse(line);
  if (!found) {
    throw ckpt::CkptError("campaign manifest '" + path +
                          "': not a campaign-journal header");
  }
  found->require_match(expect, path);
}

std::size_t run_worker(const std::vector<SimJob>& jobs,
                       const DistributedOptions& opts) {
  if (opts.shard >= opts.workers) {
    throw std::invalid_argument("worker shard " + std::to_string(opts.shard) +
                                " out of range for " +
                                std::to_string(opts.workers) + " workers");
  }
  ensure_manifest(jobs, opts);

  const ckpt::JournalHeader header = shard_header(jobs, opts, opts.shard);
  const std::string path = shard_journal_path(opts.dir, opts.shard);

  // Resume our own journal: valid entries survive (rewritten atomically so
  // torn tail lines from a previous kill -9 disappear), then the stream
  // continues in append mode.
  std::vector<char> done(jobs.size(), 0);
  {
    auto loaded = load_journal(path, header);
    std::string rewrite = header.to_line();
    rewrite.push_back('\n');
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (!loaded[i] ||
          !entry_acceptable(jobs[i], loaded[i]->result, opts.screen,
                            opts.screen_threshold)) {
        continue;
      }
      done[i] = 1;
      const std::string blob = encode_entry_blob(
          loaded[i]->result,
          loaded[i]->has_metrics ? &loaded[i]->metrics : nullptr);
      rewrite += ckpt::journal_entry_line(
          i, jobs[i].label, job_seed(jobs, opts.campaign_seed, i), blob);
      rewrite.push_back('\n');
    }
    ckpt::atomic_write_text(path, rewrite);
  }
  std::ofstream journal(path, std::ios::binary | std::ios::app);
  if (!journal) {
    throw std::runtime_error("cannot open shard journal '" + path +
                             "' for append");
  }

  // Per-process prefix engine: the golden-trace cache is shared by this
  // worker's threads (own shard AND stolen jobs — a thief re-derives the
  // same golden bytes a sibling would, so stolen results stay identical).
  std::unique_ptr<PrefixEngine> engine;
  if (prefix_on(opts)) engine = std::make_unique<PrefixEngine>(opts.prefix);
  const bool prefix_jobs = engine && !opts.collect_metrics;

  std::mutex journal_mu;
  std::size_t executed = 0;
  std::size_t unflushed = 0;
  const auto run_and_record = [&](std::size_t i) {
    const std::uint64_t seed = job_seed(jobs, opts.campaign_seed, i);
    core::RunResult result;
    obs::MetricsSnapshot metrics;
    if (opts.screen) {
      result = CampaignRunner::run_job_screened(
          jobs[i], seed, opts.screen_threshold,
          opts.collect_metrics ? &metrics : nullptr);
    } else if (opts.collect_metrics) {
      if (engine) engine->note_bypass();
      obs::MetricsRegistry reg;
      result = CampaignRunner::run_job(jobs[i], seed, &reg);
      metrics = reg.snapshot();
    } else if (engine) {
      result = engine->run_job(jobs[i], seed);
    } else {
      result = CampaignRunner::run_job(jobs[i], seed);
    }
    const std::string blob =
        encode_entry_blob(result, opts.collect_metrics ? &metrics : nullptr);
    std::string entry = ckpt::journal_entry_line(i, jobs[i].label, seed, blob);
    entry.push_back('\n');
    const std::lock_guard<std::mutex> lock(journal_mu);
    journal << entry;
    if (++unflushed >= opts.checkpoint_every) {
      journal.flush();
      unflushed = 0;
    }
    ++executed;
    if (opts.progress) opts.progress(executed, jobs.size());
  };

  // Phase 1: the own shard — every pending job with index % workers == us.
  std::vector<std::size_t> own;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i % opts.workers == opts.shard && !done[i]) own.push_back(i);
  }
  if (prefix_jobs && !own.empty()) {
    // Claim golden-sharing jobs together (schedule_order semantics),
    // filtered to this shard. Journal entries stay keyed by global index,
    // so ordering never changes any bytes.
    std::vector<char> mine(jobs.size(), 0);
    for (const std::size_t i : own) mine[i] = 1;
    std::vector<std::size_t> reordered;
    reordered.reserve(own.size());
    for (const std::size_t i :
         engine->schedule_order(jobs, opts.campaign_seed)) {
      if (mine[i]) reordered.push_back(i);
    }
    own = std::move(reordered);
  }
  ThreadPool pool(opts.threads);
  pool.parallel_for(
      own.size(), [&](std::size_t k) { run_and_record(own[k]); },
      opts.schedule, nullptr);
  journal.flush();

  // Phase 2: steal. Walk sibling shards' pending jobs highest-index-first —
  // siblings drain their own shards in ascending order, so the tail is the
  // work least likely to be in flight. Before running each candidate,
  // rescan its owner's journal: the owner (or another thief) may have
  // finished it since our last look. Stolen results land in OUR journal;
  // duplicates are harmless because entry bytes for an index are identical
  // no matter who produced them.
  if (opts.steal && opts.workers > 1) {
    for (;;) {
      std::vector<std::size_t> pending;
      for (unsigned w = 0; w < opts.workers; ++w) {
        if (w == opts.shard) continue;
        const auto theirs = shard_done_mask(jobs, opts, w);
        for (std::size_t i = w; i < jobs.size(); i += opts.workers) {
          if (!theirs[i] && !done[i]) pending.push_back(i);
        }
      }
      if (pending.empty()) break;
      std::sort(pending.begin(), pending.end(),
                [](std::size_t a, std::size_t b) { return a > b; });
      bool ran_any = false;
      for (const std::size_t i : pending) {
        const auto owner_now =
            shard_done_mask(jobs, opts, static_cast<unsigned>(i % opts.workers));
        if (owner_now[i]) {
          done[i] = 1;
          continue;
        }
        run_and_record(i);
        done[i] = 1;
        ran_any = true;
      }
      // A sweep that only skipped already-covered jobs means everything
      // pending at sweep start is now done; rescan once more to be sure no
      // new gap appeared (it cannot — shards never refill), then stop.
      if (!ran_any) break;
    }
    journal.flush();
  }
  if (engine) {
    // Per-shard engine totals; `campaign status` on a shard journal reads
    // the last one back. The resume rewrite above drops stale stats lines.
    journal << ckpt::journal_stats_line(engine->stats().encode()) << '\n';
    journal.flush();
  }
  return executed;
}

CampaignOutput merge_shards(const std::vector<SimJob>& jobs,
                            const DistributedOptions& opts) {
  ensure_manifest(jobs, opts);

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              opts.timeout_seconds > 0 ? opts.timeout_seconds : 0));

  // Poll cheaply (done masks only) until every global index is covered.
  std::size_t pending = jobs.size();
  for (;;) {
    std::vector<char> covered(jobs.size(), 0);
    for (unsigned w = 0; w < opts.workers; ++w) {
      const auto mask = shard_done_mask(jobs, opts, w);
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (mask[i]) covered[i] = 1;
      }
    }
    pending = 0;
    for (const char c : covered) {
      if (!c) ++pending;
    }
    if (pending == 0) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      throw ckpt::CkptError(
          "distributed campaign '" + opts.dir + "': timed out with " +
          std::to_string(pending) + " of " + std::to_string(jobs.size()) +
          " jobs still pending");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(opts.poll_ms));
  }

  // Full merge, ascending shard order; the first journal providing an
  // index wins (all providers hold identical bytes by construction).
  std::vector<std::optional<RestoredJob>> restored(jobs.size());
  for (unsigned w = 0; w < opts.workers; ++w) {
    auto loaded =
        load_journal(shard_journal_path(opts.dir, w), shard_header(jobs, opts, w));
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (!restored[i] && loaded[i] &&
          entry_acceptable(jobs[i], loaded[i]->result, opts.screen,
                           opts.screen_threshold)) {
        restored[i] = std::move(loaded[i]);
      }
    }
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!restored[i]) {
      // A journal shrank between the poll and the merge — only possible if
      // something outside the protocol rewrote it.
      throw ckpt::CkptError("distributed campaign '" + opts.dir +
                            "': job " + std::to_string(i) +
                            " vanished between poll and merge");
    }
  }

  CampaignOutput out;
  out.campaign_seed = opts.campaign_seed;
  out.results.resize(jobs.size());
  out.seeds.resize(jobs.size());
  out.job_wall_seconds.assign(jobs.size(), 0.0);
  out.labels.reserve(jobs.size());
  for (const auto& job : jobs) out.labels.push_back(job.label);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out.seeds[i] = job_seed(jobs, opts.campaign_seed, i);
    out.results[i] = std::move(restored[i]->result);
    if (opts.collect_metrics && restored[i]->has_metrics) {
      out.metrics.merge(restored[i]->metrics);  // ascending index == serial
    }
  }
  return out;
}

}  // namespace unsync::runtime
