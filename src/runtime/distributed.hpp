// Multi-process campaign fabric: sharded journals + a merging coordinator.
//
// Topology: a campaign directory holds a MANIFEST.json (one campaign-journal
// header line pinning seed / job count / grid CRC / metrics mode / worker
// count) plus one "unsync.campaign_journal.v1" journal per worker
// (shard_<w>.jsonl). Ownership is static — job i belongs to shard
// i % workers — so workers need no sockets, locks or shared state: each
// process streams its completed jobs into its own journal, and the
// coordinator polls the journals until every global index is covered, then
// merges them into a CampaignOutput byte-identical to a serial run.
//
// Work stealing across processes rides on the same journals: a worker that
// finishes its own shard scans the sibling journals for jobs with no valid
// entry yet and runs them too, appending the results to *its* journal.
// Because every result is a pure function of (campaign_seed, job index) and
// entries are keyed by global index, duplicated work is harmless — any
// journal providing index i provides the same bytes — which is also what
// makes kill -9 recovery trivial: a dead worker's jobs get covered either
// by its own resume (torn tail lines are dropped and re-run) or by a
// sibling's steal phase, whichever comes first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ckpt/journal.hpp"
#include "runtime/campaign.hpp"

namespace unsync::runtime {

struct DistributedOptions {
  std::string dir;      ///< campaign directory (created if missing)
  unsigned workers = 1; ///< number of shards in the topology
  unsigned shard = 0;   ///< which shard this process runs (worker mode)
  /// In-process threads per worker (ThreadPool semantics: 0 = hardware).
  unsigned threads = 1;
  ScheduleOptions schedule;
  std::uint64_t campaign_seed = 42;
  bool collect_metrics = false;
  /// Run the cross-process steal phase after the own shard completes.
  /// Off = strict static sharding (a dead sibling's jobs stay pending
  /// until that worker resumes).
  bool steal = true;
  /// Two-phase tier screening (CampaignRunner::Options semantics): fast
  /// sweep, detailed re-run of cells whose screening_score reaches the
  /// threshold. The screening policy is folded into the manifest/journal
  /// grid CRC, so every participant must agree on it.
  bool screen = false;
  double screen_threshold = 0.0;
  /// Prefix-sharing (CampaignRunner::Options semantics): each worker
  /// process owns one golden-trace cache shared by its in-process threads.
  /// The activation + interval are folded into the manifest/journal grid
  /// CRC (like the screening policy), so every participant must agree on
  /// them; the cache budget stays per-process and free to differ.
  PrefixOptions prefix;
  /// Flush the shard journal every N completed jobs.
  std::size_t checkpoint_every = 1;
  unsigned poll_ms = 100;        ///< coordinator poll interval
  double timeout_seconds = 600;  ///< coordinator wait budget (<=0: no wait —
                                 ///< a single completeness check, then fail)
  /// Worker progress: (jobs this process completed, jobs it may run).
  std::function<void(std::size_t completed, std::size_t total)> progress;
};

std::string manifest_path(const std::string& dir);
std::string shard_journal_path(const std::string& dir, unsigned shard);

/// Header pinning this campaign + topology (workers set, shard unset).
ckpt::JournalHeader manifest_header(const std::vector<SimJob>& jobs,
                                    const DistributedOptions& opts);

/// Creates opts.dir (if needed) and atomically writes MANIFEST.json. Safe
/// to call from every participant: all of them write identical bytes. If a
/// manifest already exists it is validated instead — a manifest for a
/// different campaign or topology throws ckpt::CkptError.
void ensure_manifest(const std::vector<SimJob>& jobs,
                     const DistributedOptions& opts);

/// Runs shard opts.shard of the campaign: validates/creates the manifest,
/// resumes its own journal (atomic rewrite dropping torn lines), runs its
/// pending jobs across opts.threads, then — with opts.steal — covers
/// sibling jobs that still have no valid entry anywhere. Returns the number
/// of jobs this process executed (restored or stolen-by-others excluded).
std::size_t run_worker(const std::vector<SimJob>& jobs,
                       const DistributedOptions& opts);

/// Coordinator: polls the shard journals until every global index has a
/// valid entry (ckpt::CkptError on timeout, naming the pending count), then
/// merges ascending by index — first shard providing an index wins, though
/// by the determinism contract every provider holds the same bytes — into a
/// CampaignOutput whose default to_json() is byte-identical to a serial
/// CampaignRunner run of the same grid.
CampaignOutput merge_shards(const std::vector<SimJob>& jobs,
                            const DistributedOptions& opts);

}  // namespace unsync::runtime
