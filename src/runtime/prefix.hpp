// Prefix-sharing for fault-injection campaigns.
//
// Every injection job of a grid cell simulates the same fault-free prefix
// before its first error arrival — at realistic soft-error rates, most
// Monte-Carlo trials have NO arrival at all and re-simulate the entire
// golden run for an outcome that is provably identical to it. The prefix
// engine removes that redundancy:
//
//  * For each unique fault-free configuration it simulates the GOLDEN
//    (ser=0) run once, dropping periodic in-memory checkpoints
//    (System::save_checkpoint_bytes — the buffer-backed container path, no
//    temp-file round trip) plus a per-interval architectural-state
//    fingerprint stream (System::state_fingerprint).
//  * Each injection job computes its fault channel out of band (the same
//    fault::schedule_arrivals draw sequence construction performs),
//    restores from the latest golden checkpoint that provably precedes its
//    first arrival, installs its own channel (System::load_fault_channel),
//    and runs forward.
//  * Convergence-based early termination: once a job's arrivals are
//    exhausted, its per-interval fingerprint is compared against the golden
//    stream — on match the outcome is provably masked, and the job finishes
//    immediately with the golden run's remaining counters spliced in,
//    byte-identical to the full run (a job with an empty schedule converges
//    at cycle 0 and returns the golden result outright).
//
// Golden traces live in a bounded LRU cache shared by all workers of a
// process. Everything here is an execution strategy, never a result change:
// prefix-shared campaign output is byte-identical to the naive full-run
// campaign (enforced by parity tests and the bench_injection_prefix gate).
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "runtime/campaign.hpp"

namespace unsync::runtime {

// PrefixOptions lives in runtime/campaign.hpp (CampaignRunner::Options
// embeds it); everything else about prefix sharing lives here.

/// Aggregate prefix-engine counters, published as campaign.prefix_cache.*
/// on the timing-only metrics tree (they depend on worker interleaving the
/// way steal counters do) and surfaced by `campaign status`.
struct PrefixStats {
  std::uint64_t goldens_built = 0;   ///< golden runs simulated
  std::uint64_t hits = 0;            ///< cache hits (golden already present)
  std::uint64_t misses = 0;          ///< cache misses (build required)
  std::uint64_t evictions = 0;       ///< golden traces evicted by the LRU
  std::uint64_t bytes = 0;           ///< checkpoint bytes currently cached
  std::uint64_t restore_ns = 0;      ///< time spent in load_checkpoint_bytes
  std::uint64_t cycles_skipped = 0;  ///< simulated cycles not re-executed
  std::uint64_t jobs_restored = 0;   ///< jobs seeded from a golden checkpoint
  std::uint64_t jobs_spliced = 0;    ///< jobs finished early by convergence
  std::uint64_t jobs_bypassed = 0;   ///< jobs that ran the naive path

  void merge(const PrefixStats& o);
  /// Renders the campaign.prefix_cache.* subtree.
  obs::MetricsSnapshot snapshot() const;

  /// Binary codec for the journal "stats" line (campaign status reads it
  /// back without re-running anything). decode() returns nullopt on any
  /// truncation / trailing-bytes / corruption.
  std::string encode() const;
  static std::optional<PrefixStats> decode(std::string blob);
};

/// One job's fault channel, computed without constructing a system: the
/// per-group arrival schedules plus the RNG state construction leaves
/// behind. Bit-identical to what System::save_fault_channel serialises for
/// a freshly built system of the same cell (pinned by test_prefix).
struct FaultChannel {
  std::vector<std::vector<SeqNum>> schedules;  ///< per group, ascending
  std::array<std::uint64_t, 4> rng_words{};
  bool has_rng = false;  ///< false for systems without an error process
  std::string encoded;   ///< load_fault_channel wire bytes

  /// True when no group has any arrival — the job is provably identical
  /// to the golden run, end to end.
  bool empty() const {
    for (const auto& s : schedules) {
      if (!s.empty()) return false;
    }
    return true;
  }
};

/// The per-interval record of one golden (fault-free) run.
struct GoldenTrace {
  struct Snap {
    Cycle boundary = 0;           ///< cycle count at the snapshot
    std::string state;            ///< "unsync.ckpt.v1" container blob
    std::vector<SeqNum> progress; ///< per-group commit watermark
  };

  Cycle interval = 0;
  /// Fingerprint at boundary k*interval lives at [k-1]. Never thinned —
  /// 8 bytes per boundary.
  std::vector<std::uint64_t> fingerprints;
  /// Checkpoints, ascending by boundary; may be thinned under cache
  /// pressure (restores then fall back to an earlier boundary).
  std::vector<Snap> snaps;
  core::RunResult final_result;
  std::size_t bytes = 0;  ///< total checkpoint-blob bytes

  /// Golden fingerprint at `boundary`, or nullptr when the golden run
  /// ended before it.
  const std::uint64_t* fingerprint_at(Cycle boundary) const;
};

/// Computes a job's fault channel out of band (see FaultChannel).
FaultChannel compute_fault_channel(const SimJob& job, std::uint64_t seed);

/// Cache key of the golden run `job` shares: the job identity minus the
/// fault channel (ser zeroed, label dropped, and — for trace workloads,
/// whose streams are seed-independent — the seed dropped too, so every
/// Monte-Carlo trial of a trace cell shares one golden).
std::string golden_job_key(const SimJob& job, std::uint64_t seed);

/// Campaign-level prefix-sharing engine: a golden-trace LRU cache plus the
/// restore / convergence-splice job path. Thread-safe; one engine is shared
/// by all workers of a campaign (per process in the distributed fabric).
class PrefixEngine {
 public:
  explicit PrefixEngine(PrefixOptions options) : options_(options) {}
  PrefixEngine(const PrefixEngine&) = delete;
  PrefixEngine& operator=(const PrefixEngine&) = delete;

  /// Runs one job through the prefix-sharing path. Byte-identical to
  /// CampaignRunner::run_job(job, seed) — jobs the engine cannot share
  /// (non-detailed tier, models without the prefix hooks) fall back to it.
  core::RunResult run_job(const SimJob& job, std::uint64_t seed);

  /// Execution-order permutation for a grid: jobs grouped by golden
  /// configuration (so each golden is built once and stays hot), ordered
  /// by first arrival within a group. Results are still reported by the
  /// true submission index — this only reorders the claim sequence.
  std::vector<std::size_t> schedule_order(const std::vector<SimJob>& jobs,
                                          std::uint64_t campaign_seed) const;

  /// Counts a job the campaign layer routed around the engine entirely
  /// (screening / metrics-collection paths).
  void note_bypass();

  const PrefixOptions& options() const { return options_; }
  PrefixStats stats() const;

 private:
  struct CacheEntry {
    bool ready = false;
    std::shared_ptr<const GoldenTrace> trace;  ///< null = unsupported cell
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru;
  };

  std::shared_ptr<const GoldenTrace> acquire_golden(const SimJob& job,
                                                    std::uint64_t seed);
  std::shared_ptr<const GoldenTrace> build_golden(const SimJob& job,
                                                  std::uint64_t seed) const;
  void insert_golden(const std::string& key,
                     std::shared_ptr<const GoldenTrace> trace);
  void evict_over_budget_locked(const std::string& keep);

  PrefixOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, CacheEntry> cache_;
  std::list<std::string> lru_;  ///< most recently used first
  PrefixStats stats_;
};

}  // namespace unsync::runtime
