// Work-queue thread pool for campaign-level parallelism.
//
// The simulator itself is single-threaded by design (a cycle-level model
// has a serial dependence chain); what *is* embarrassingly parallel is the
// evaluation layer: (benchmark x architecture x config-point x seed) grids
// where every job is an independent simulation. This pool runs such grids
// across std::thread workers.
//
// Two scheduling modes, selected per parallel_for:
//
//   * kWorkStealing (default): the index space is split into one
//     contiguous shard per worker; each worker claims chunks of K indices
//     from its own shard with a fetch_add on a cache-line-private counter
//     (the lock-free fast path — no two workers touch the same line while
//     their shards last), and only when its shard drains does it probe the
//     other shards in a per-worker pseudo-random order and steal chunks
//     from whichever still has work. Load imbalance never leaves a core
//     idle while work remains, and short-job grids stop ping-ponging one
//     shared cache line.
//
//   * kSharedQueue (legacy): all workers claim from a single shared atomic
//     counter — still chunked (runs of K indices per fetch_add) so the
//     line bounces once per chunk, not once per index.
//
// Determinism contract: the pool never influences simulation results. Work
// is identified by dense indices [0, n); every index runs exactly once;
// callers must derive any randomness from the job *index*, never from
// thread identity, claim order or steal schedule. With threads == 1 no
// worker threads exist at all and the body runs inline on the caller,
// byte-for-byte reproducing a serial loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace unsync::runtime {

enum class ScheduleMode {
  kWorkStealing,  ///< sharded per-worker ranges + randomized stealing
  kSharedQueue,   ///< one shared counter (legacy), chunked claims
};

/// Per-parallel_for scheduling knobs. The defaults are right for job grids;
/// tests force degenerate shapes (chunk=1) to exercise steal schedules.
struct ScheduleOptions {
  ScheduleMode mode = ScheduleMode::kWorkStealing;
  /// Indices claimed per fetch_add. 0 = auto: max(1, min(64, n/(8*threads)))
  /// — large enough to amortize the atomic, small enough that stealing can
  /// still rebalance a skewed tail.
  std::size_t chunk = 0;
};

/// What one worker did during a parallel_for (measurement only — never
/// part of any deterministic result surface).
struct WorkerStats {
  std::uint64_t indices = 0;       ///< body invocations on this worker
  std::uint64_t local_claims = 0;  ///< chunks claimed from the own shard
  std::uint64_t steals = 0;        ///< chunks claimed from another shard
  std::uint64_t steal_failures = 0;  ///< probes that found a drained shard
  std::uint64_t idle_ns = 0;  ///< time spent hunting for work after the
                              ///< local shard drained
};

/// Scheduler counters for one parallel_for, per worker slot (slot 0 is the
/// calling thread). kSharedQueue reports every claim as local.
struct SchedulerStats {
  std::vector<WorkerStats> workers;

  WorkerStats total() const {
    WorkerStats t;
    for (const auto& w : workers) {
      t.indices += w.indices;
      t.local_claims += w.local_claims;
      t.steals += w.steals;
      t.steal_failures += w.steal_failures;
      t.idle_ns += w.idle_ns;
    }
    return t;
  }
};

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller participates in every
  /// parallel_for, so `threads` is the total concurrency). 0 means
  /// hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the calling thread).
  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs body(i) for every i in [0, n), distributing indices across the
  /// workers and the calling thread; returns when all n calls finished.
  /// If any body throws, every remaining index still runs, and afterwards
  /// the exception of the *lowest* failed index is rethrown — so error
  /// reporting is independent of scheduling order.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body) {
    parallel_for(n, body, ScheduleOptions{}, nullptr);
  }

  /// As above with explicit scheduling; fills `*stats` (when non-null)
  /// with per-worker scheduler counters for this batch.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body,
                    const ScheduleOptions& options, SchedulerStats* stats);

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned default_threads();

 private:
  /// One worker's claim state, padded so the owner's fetch_add fast path
  /// never shares a cache line with a neighbour.
  struct alignas(64) Shard {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };
  struct alignas(64) PaddedWorkerStats {
    WorkerStats s;
  };

  struct Batch {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::size_t chunk = 1;
    ScheduleMode mode = ScheduleMode::kWorkStealing;
    unsigned width = 1;  // worker slots (pool size)
    std::atomic<std::size_t> shared_next{0};
    std::unique_ptr<Shard[]> shards;           // width entries (stealing)
    std::unique_ptr<PaddedWorkerStats[]> ws;   // width entries
    std::mutex error_mu;
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
  };

  void worker_loop(unsigned slot);
  /// Claims and runs indices of `batch` as worker `slot` until none remain.
  static void drain(Batch& batch, unsigned slot);
  static void run_range(Batch& batch, std::size_t begin, std::size_t end,
                        WorkerStats& ws);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Batch* batch_ = nullptr;        // guarded by mu_
  std::uint64_t generation_ = 0;  // guarded by mu_; bumped per batch
  unsigned active_ = 0;           // guarded by mu_; workers inside drain()
  bool stop_ = false;             // guarded by mu_
};

}  // namespace unsync::runtime
