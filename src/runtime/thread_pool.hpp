// Work-queue thread pool for campaign-level parallelism.
//
// The simulator itself is single-threaded by design (a cycle-level model
// has a serial dependence chain); what *is* embarrassingly parallel is the
// evaluation layer: (benchmark x architecture x config-point x seed) grids
// where every job is an independent simulation. This pool runs such grids
// across std::thread workers.
//
// Determinism contract: the pool never influences simulation results. Work
// is identified by dense indices [0, n); workers claim indices with a
// single atomic fetch_add (a shared work queue — an idle worker simply
// claims the next undone index, so load imbalance never leaves a core idle
// while work remains). Callers must derive any randomness from the job
// *index*, never from thread identity or claim order. With threads == 1 no
// worker threads exist at all and the body runs inline on the caller,
// byte-for-byte reproducing a serial loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace unsync::runtime {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller participates in every
  /// parallel_for, so `threads` is the total concurrency). 0 means
  /// hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the calling thread).
  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs body(i) for every i in [0, n), distributing indices across the
  /// workers and the calling thread; returns when all n calls finished.
  /// If any body throws, every remaining index still runs, and afterwards
  /// the exception of the *lowest* failed index is rethrown — so error
  /// reporting is independent of scheduling order.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned default_threads();

 private:
  struct Batch {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::mutex error_mu;
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
  };

  void worker_loop();
  /// Claims and runs indices of `batch` until none remain.
  static void drain(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Batch* batch_ = nullptr;        // guarded by mu_
  std::uint64_t generation_ = 0;  // guarded by mu_; bumped per batch
  unsigned active_ = 0;           // guarded by mu_; workers inside drain()
  bool stop_ = false;             // guarded by mu_
};

}  // namespace unsync::runtime
