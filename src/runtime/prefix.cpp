#include "runtime/prefix.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "ckpt/serializer.hpp"
#include "common/rng.hpp"
#include "core/factory.hpp"
#include "fault/ser.hpp"
#include "runtime/campaign_journal.hpp"

namespace unsync::runtime {

namespace {

/// Serialised u64 fields of a PrefixStats, in encode() order.
constexpr std::size_t kStatsFields = 10;

std::uint64_t* stats_fields(PrefixStats& s, std::size_t i) {
  std::uint64_t* fields[kStatsFields] = {
      &s.goldens_built, &s.hits,           &s.misses,        &s.evictions,
      &s.bytes,         &s.restore_ns,     &s.cycles_skipped,
      &s.jobs_restored, &s.jobs_spliced,   &s.jobs_bypassed};
  return fields[i];
}

/// Per-thread stream length of a job — what construction hands to
/// fault::schedule_arrivals. Every thread replays a clone of the same
/// stream, so all groups share one length.
std::uint64_t job_stream_length(const SimJob& job) {
  if (!job.profile.empty()) return job.insts;
  return job.trace ? job.trace->size() : 0;
}

/// The golden twin of a job: identical cell, error process off.
SimJob golden_job(const SimJob& job) {
  SimJob g = job;
  g.ser_per_inst = 0.0;
  return g;
}

/// Whether the engine can even try to share this job: only the detailed
/// tier runs on a System exposing the prefix hooks (the interval model is
/// already the fast path and keeps its own contract).
bool eligible(const SimJob& job) {
  return job.params.tier == engine::Tier::kDetailed;
}

/// True once every group's arrival cursor is exhausted, read back through
/// the system's own fault-channel serialisation (the cursor is not
/// otherwise observable from outside).
bool channel_exhausted(const core::System& sys) {
  ckpt::Serializer s;
  sys.save_fault_channel(s);
  ckpt::Deserializer d(s.take());
  if (d.at_end()) return true;  // no error process at all
  for (int i = 0; i < 4; ++i) d.u64();
  const std::uint64_t groups = d.u64();
  for (std::uint64_t g = 0; g < groups; ++g) {
    const std::uint64_t npos = d.u64();
    for (std::uint64_t p = 0; p < npos; ++p) d.u64();
    if (d.u64() != npos) return false;
  }
  return true;
}

/// Latest golden checkpoint that provably precedes every group's first
/// arrival: safe iff no group's commit watermark has reached its first
/// strike position (arrivals fire when progress >= position, so equality
/// already means "fired"). nullptr when even the first boundary is too
/// late.
const GoldenTrace::Snap* latest_safe_snap(const GoldenTrace& golden,
                                          const FaultChannel& channel) {
  for (auto it = golden.snaps.rbegin(); it != golden.snaps.rend(); ++it) {
    const GoldenTrace::Snap& snap = *it;
    if (snap.progress.size() != channel.schedules.size()) return nullptr;
    bool safe = true;
    for (std::size_t g = 0; g < channel.schedules.size() && safe; ++g) {
      safe = channel.schedules[g].empty() ||
             snap.progress[g] < channel.schedules[g].front();
    }
    if (safe) return &snap;
  }
  return nullptr;
}

/// Splices a converged (or arrival-free) job's error channel into the
/// golden run's final result. Exact because the fingerprinted state fully
/// determines the post-convergence evolution and the error counters can no
/// longer change once every arrival has fired.
core::RunResult splice_result(const GoldenTrace& golden,
                              const core::RunResult& faulty_segment) {
  core::RunResult out = golden.final_result;
  out.errors_injected = faulty_segment.errors_injected;
  out.recoveries = faulty_segment.recoveries;
  out.rollbacks = faulty_segment.rollbacks;
  out.recovery_cycles_total = faulty_segment.recovery_cycles_total;
  out.error_log = faulty_segment.error_log;
  return out;
}

}  // namespace

void PrefixStats::merge(const PrefixStats& o) {
  PrefixStats copy = o;  // const-friendly field access
  for (std::size_t i = 0; i < kStatsFields; ++i) {
    *stats_fields(*this, i) += *stats_fields(copy, i);
  }
}

obs::MetricsSnapshot PrefixStats::snapshot() const {
  obs::MetricsRegistry reg;
  reg.set_counter("campaign.prefix_cache.goldens_built", goldens_built);
  reg.set_counter("campaign.prefix_cache.hits", hits);
  reg.set_counter("campaign.prefix_cache.misses", misses);
  reg.set_counter("campaign.prefix_cache.evictions", evictions);
  reg.set_counter("campaign.prefix_cache.bytes", bytes);
  reg.set_counter("campaign.prefix_cache.restore_ns", restore_ns);
  reg.set_counter("campaign.prefix_cache.cycles_skipped", cycles_skipped);
  reg.set_counter("campaign.prefix_cache.jobs_restored", jobs_restored);
  reg.set_counter("campaign.prefix_cache.jobs_early_terminated",
                  jobs_spliced);
  reg.set_counter("campaign.prefix_cache.jobs_bypassed", jobs_bypassed);
  return reg.snapshot();
}

std::string PrefixStats::encode() const {
  ckpt::Serializer s;
  PrefixStats copy = *this;
  for (std::size_t i = 0; i < kStatsFields; ++i) {
    s.u64(*stats_fields(copy, i));
  }
  return s.take();
}

std::optional<PrefixStats> PrefixStats::decode(std::string blob) {
  try {
    ckpt::Deserializer d(std::move(blob));
    PrefixStats out;
    for (std::size_t i = 0; i < kStatsFields; ++i) {
      *stats_fields(out, i) = d.u64();
    }
    if (!d.at_end()) return std::nullopt;
    return out;
  } catch (const ckpt::CkptError&) {
    return std::nullopt;
  }
}

const std::uint64_t* GoldenTrace::fingerprint_at(Cycle boundary) const {
  if (interval == 0 || boundary % interval != 0) return nullptr;
  const Cycle k = boundary / interval;
  if (k == 0 || k > fingerprints.size()) return nullptr;
  return &fingerprints[static_cast<std::size_t>(k - 1)];
}

FaultChannel compute_fault_channel(const SimJob& job, std::uint64_t seed) {
  FaultChannel ch;
  if (job.system == core::SystemKind::kBaseline) {
    // The baseline has no error process: empty channel, empty wire bytes
    // (its load_fault_channel is a no-op).
    ch.schedules.assign(job.app_threads, {});
    return ch;
  }
  // Exactly the construction-time draw sequence of every redundant system:
  // one RNG seeded with the job seed, one schedule_arrivals call per
  // thread, in thread order.
  Rng rng(seed);
  const std::uint64_t len = job_stream_length(job);
  ch.schedules.reserve(job.app_threads);
  for (unsigned t = 0; t < job.app_threads; ++t) {
    ch.schedules.push_back(
        fault::schedule_arrivals(job.ser_per_inst, len, rng));
  }
  ch.rng_words = rng.state();
  ch.has_rng = true;

  ckpt::Serializer s;
  for (const std::uint64_t word : ch.rng_words) s.u64(word);
  s.u64(ch.schedules.size());
  for (const auto& sched : ch.schedules) {
    s.u64(sched.size());
    for (const SeqNum p : sched) s.u64(p);
    s.u64(0);  // cursor: nothing fired yet
  }
  ch.encoded = s.take();
  return ch;
}

std::string golden_job_key(const SimJob& job, std::uint64_t seed) {
  ckpt::Serializer s;
  s.u8(static_cast<std::uint8_t>(job.system));
  s.str(job.profile);
  s.u64(reinterpret_cast<std::uintptr_t>(job.trace.get()));
  s.u64(job.trace ? job.trace->size() : 0);
  s.u64(job.insts);
  s.u32(job.app_threads);
  s.b(job.fast_forward);
  s.b(job.avf);
  for (const auto m : job.protect.mechanism) {
    s.u8(static_cast<std::uint8_t>(m));
  }
  // Synthetic streams are generated from the seed, so profile cells only
  // share a golden within one seed; trace replays are seed-independent, so
  // every Monte-Carlo trial of a trace cell shares one golden run.
  s.b(!job.profile.empty());
  s.u64(job.profile.empty() ? 0 : seed);
  const auto& p = job.params;
  s.u32(p.unsync.group_size);
  s.u64(p.unsync.cb_entries);
  s.u32(p.unsync.drain_per_cycle);
  s.u64(p.unsync.eih_signal_cycles);
  s.u64(p.unsync.state_copy_word_cycles);
  s.u32(p.unsync.arch_state_words);
  s.u64(p.unsync.l1_copy_line_cycles);
  s.u32(p.reunion.fingerprint_interval);
  s.u64(p.reunion.compare_latency);
  s.u32(p.reunion.csb_entries);
  s.u64(p.reunion.rollback_penalty);
  s.u32(p.lockstep.max_skew);
  s.u64(p.lockstep.load_check_latency);
  s.u64(p.lockstep.resync_penalty);
  s.u64(p.checkpoint.checkpoint_interval);
  s.u64(p.checkpoint.checkpoint_cost);
  s.u64(p.checkpoint.compare_latency);
  s.u64(p.checkpoint.restore_cost);
  s.u64(p.hetero.log_entries);
  s.u32(p.hetero.checker_width);
  s.u64(p.hetero.checker_load_latency);
  s.u64(p.hetero.rollback_penalty);
  s.u8(static_cast<std::uint8_t>(p.tier));
  return s.take();
}

PrefixStats PrefixEngine::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PrefixEngine::note_bypass() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.jobs_bypassed;
}

std::vector<std::size_t> PrefixEngine::schedule_order(
    const std::vector<SimJob>& jobs, std::uint64_t campaign_seed) const {
  struct Key {
    std::string golden;
    SeqNum first_arrival = 0;
    std::size_t index = 0;
  };
  std::vector<Key> keys;
  keys.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    Key k;
    k.index = i;
    const std::uint64_t seed = job_seed(jobs, campaign_seed, i);
    k.golden = golden_job_key(jobs[i], seed);
    if (eligible(jobs[i])) {
      const FaultChannel ch = compute_fault_channel(jobs[i], seed);
      SeqNum first = kNoSeq;
      for (const auto& sched : ch.schedules) {
        if (!sched.empty()) first = std::min(first, sched.front());
      }
      // Arrival-free jobs sort first within their group: they splice off
      // the golden result directly, so running one early builds the golden
      // every sibling needs.
      k.first_arrival = first == kNoSeq ? 0 : first;
    }
    keys.push_back(std::move(k));
  }
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const Key& ka = keys[a];
                     const Key& kb = keys[b];
                     if (ka.golden != kb.golden) return ka.golden < kb.golden;
                     if (ka.first_arrival != kb.first_arrival) {
                       return ka.first_arrival < kb.first_arrival;
                     }
                     return ka.index < kb.index;
                   });
  return order;
}

std::shared_ptr<const GoldenTrace> PrefixEngine::build_golden(
    const SimJob& job, std::uint64_t seed) const {
  const SimJob gjob = golden_job(job);
  const auto stream = make_job_stream(gjob, seed);
  const auto model = core::make_model(
      gjob.system, job_system_config(gjob, seed), *stream, gjob.params);
  auto* sys = dynamic_cast<core::System*>(model.get());
  if (!sys || !sys->supports_prefix()) return nullptr;

  auto trace = std::make_shared<GoldenTrace>();
  trace->interval = options_.interval;
  for (Cycle k = 1;; ++k) {
    const Cycle boundary = k * options_.interval;
    core::RunResult r = sys->run(boundary);
    if (r.cycles < boundary) {
      trace->final_result = std::move(r);
      break;
    }
    trace->fingerprints.push_back(sys->state_fingerprint());
    GoldenTrace::Snap snap;
    snap.boundary = boundary;
    snap.state = sys->save_checkpoint_bytes();
    snap.progress = sys->group_progress();
    trace->bytes += snap.state.size();
    trace->snaps.push_back(std::move(snap));
  }
  return trace;
}

void PrefixEngine::evict_over_budget_locked(const std::string& keep) {
  const std::size_t budget = options_.cache_mb * std::size_t{1024} * 1024;
  while (stats_.bytes > budget && !lru_.empty()) {
    // Least-recently-used ready entry other than the one being kept.
    auto victim = lru_.end();
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (*it == keep) continue;
      const auto found = cache_.find(*it);
      if (found != cache_.end() && found->second.ready) {
        victim = std::prev(it.base());
        break;
      }
    }
    if (victim == lru_.end()) break;
    const auto found = cache_.find(*victim);
    stats_.bytes -= found->second.bytes;
    ++stats_.evictions;
    cache_.erase(found);
    lru_.erase(victim);
  }
}

void PrefixEngine::insert_golden(const std::string& key,
                                 std::shared_ptr<const GoldenTrace> trace) {
  const std::size_t budget = options_.cache_mb * std::size_t{1024} * 1024;
  // A single golden larger than the whole budget is thinned before
  // publication (dropping every other checkpoint halves the bytes while
  // keeping restore coverage; the fingerprint stream is never thinned).
  if (trace && trace->bytes > budget) {
    auto thinned = std::make_shared<GoldenTrace>(*trace);
    while (thinned->bytes > budget && thinned->snaps.size() > 1) {
      std::vector<GoldenTrace::Snap> kept;
      kept.reserve(thinned->snaps.size() / 2 + 1);
      thinned->bytes = 0;
      for (std::size_t i = 0; i < thinned->snaps.size(); ++i) {
        if (i % 2 == 0) continue;  // keep the later of each pair
        thinned->bytes += thinned->snaps[i].state.size();
        kept.push_back(std::move(thinned->snaps[i]));
      }
      thinned->snaps = std::move(kept);
    }
    trace = std::move(thinned);
  }
  const std::lock_guard<std::mutex> lock(mu_);
  CacheEntry& entry = cache_[key];
  entry.ready = true;
  entry.trace = trace;
  entry.bytes = trace ? trace->bytes : 0;
  stats_.bytes += entry.bytes;
  ++stats_.goldens_built;
  evict_over_budget_locked(key);
  cv_.notify_all();
}

std::shared_ptr<const GoldenTrace> PrefixEngine::acquire_golden(
    const SimJob& job, std::uint64_t seed) {
  const std::string key = golden_job_key(job, seed);
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      ++stats_.misses;
      CacheEntry entry;
      lru_.push_front(key);
      entry.lru = lru_.begin();
      cache_.emplace(key, std::move(entry));
    } else {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      it->second.lru = lru_.begin();
      cv_.wait(lock, [&] {
        const auto found = cache_.find(key);
        return found == cache_.end() || found->second.ready;
      });
      const auto found = cache_.find(key);
      if (found != cache_.end()) return found->second.trace;
      // The builder failed (exception) or the entry was evicted while we
      // waited: become the builder ourselves.
      CacheEntry entry;
      lru_.push_front(key);
      entry.lru = lru_.begin();
      cache_.emplace(key, std::move(entry));
    }
  }
  std::shared_ptr<const GoldenTrace> trace;
  try {
    trace = build_golden(job, seed);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      lru_.erase(it->second.lru);
      cache_.erase(it);
    }
    cv_.notify_all();
    throw;
  }
  insert_golden(key, trace);
  return trace;
}

core::RunResult PrefixEngine::run_job(const SimJob& job, std::uint64_t seed) {
  if (!options_.enabled || !eligible(job)) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.jobs_bypassed;
    }
    return CampaignRunner::run_job(job, seed);
  }
  const FaultChannel channel = compute_fault_channel(job, seed);
  const std::shared_ptr<const GoldenTrace> golden = acquire_golden(job, seed);
  if (!golden) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.jobs_bypassed;
    }
    return CampaignRunner::run_job(job, seed);
  }

  if (channel.empty()) {
    // No arrival anywhere: the job IS the golden run (the only state that
    // differs — RNG words — is never consumed and never reported).
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.jobs_spliced;
    stats_.cycles_skipped += golden->final_result.cycles;
    return golden->final_result;
  }

  // Construct the golden twin and overlay the job's fault channel: before
  // the first arrival the two runs are state-identical except for that
  // channel, so a golden checkpoint plus the channel reproduces the faulty
  // run exactly.
  const SimJob gjob = golden_job(job);
  const auto stream = make_job_stream(gjob, seed);
  const auto model = core::make_model(
      gjob.system, job_system_config(gjob, seed), *stream, gjob.params);
  auto* sys = dynamic_cast<core::System*>(model.get());

  Cycle resumed_from = 0;
  if (const GoldenTrace::Snap* snap = latest_safe_snap(*golden, channel)) {
    const auto t0 = std::chrono::steady_clock::now();
    sys->load_checkpoint_bytes(snap->state);
    const auto dt = std::chrono::steady_clock::now() - t0;
    resumed_from = snap->boundary;
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.jobs_restored;
    stats_.cycles_skipped += snap->boundary;
    stats_.restore_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
  }
  {
    ckpt::Deserializer d(channel.encoded);
    sys->load_fault_channel(d);
    if (!d.at_end()) {
      throw ckpt::CkptError("trailing bytes after fault channel");
    }
  }

  const Cycle last_golden_boundary =
      static_cast<Cycle>(golden->fingerprints.size()) * options_.interval;
  for (Cycle k = resumed_from / options_.interval + 1;; ++k) {
    const Cycle boundary = k * options_.interval;
    const core::RunResult r = sys->run(boundary);
    if (r.cycles < boundary) return r;  // finished naturally
    if (boundary > last_golden_boundary) {
      // Ran past the golden fingerprint stream (recovery pushed the run
      // beyond the golden finish): no splice possible any more.
      return sys->run();
    }
    if (!channel_exhausted(*sys)) continue;
    const std::uint64_t* gfp = golden->fingerprint_at(boundary);
    if (gfp != nullptr && *gfp == sys->state_fingerprint()) {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.jobs_spliced;
      stats_.cycles_skipped += golden->final_result.cycles - boundary;
      return splice_result(*golden, r);
    }
  }
}

}  // namespace unsync::runtime
