#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <chrono>

namespace unsync::runtime {

namespace {

/// Splitmix-style mixer: a cheap per-worker PRNG for victim selection.
/// Seeded from the worker slot only — never from time — so runs are
/// repeatable, which matters for debugging scheduler issues (results never
/// depend on the steal order either way).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::size_t auto_chunk(std::size_t n, unsigned width) {
  const std::size_t per = n / (8 * static_cast<std::size_t>(width));
  return std::max<std::size_t>(1, std::min<std::size_t>(64, per));
}

}  // namespace

unsigned ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_threads();
  if (threads > 1) workers_.reserve(threads - 1);
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_range(Batch& batch, std::size_t begin, std::size_t end,
                           WorkerStats& ws) {
  for (std::size_t i = begin; i < end; ++i) {
    ++ws.indices;
    try {
      (*batch.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.error_mu);
      batch.errors.emplace_back(i, std::current_exception());
    }
  }
}

void ThreadPool::drain(Batch& batch, unsigned slot) {
  WorkerStats& ws = batch.ws[slot].s;

  if (batch.mode == ScheduleMode::kSharedQueue) {
    // Legacy path: one shared counter, but chunked — the contended line
    // bounces once per chunk instead of once per index.
    for (;;) {
      const std::size_t i =
          batch.shared_next.fetch_add(batch.chunk, std::memory_order_relaxed);
      if (i >= batch.n) return;
      ++ws.local_claims;
      run_range(batch, i, std::min(i + batch.chunk, batch.n), ws);
    }
  }

  // Work stealing. Fast path: chunked claims off the worker's own shard —
  // the only line this fetch_add touches is slot-private until the shard
  // drains, so short-job grids scale without a shared hot spot.
  Shard& own = batch.shards[slot];
  for (;;) {
    const std::size_t i = own.next.fetch_add(batch.chunk,
                                             std::memory_order_relaxed);
    if (i >= own.end) break;
    ++ws.local_claims;
    run_range(batch, i, std::min(i + batch.chunk, own.end), ws);
  }

  // Slow path: the local shard is dry. Probe the other shards in a
  // per-worker pseudo-random order and steal chunks from whichever still
  // has work; stop only when a full sweep finds every shard drained (no
  // shard ever refills, so that state is terminal).
  const unsigned width = batch.width;
  if (width <= 1) return;
  std::uint64_t rng = mix64(slot + 1);
  // idle_since marks when this worker last ran out of claimed work; the
  // gap to the next successful claim (or to giving up) is idle time.
  auto idle_since = std::chrono::steady_clock::now();
  auto account_idle = [&ws, &idle_since] {
    ws.idle_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - idle_since)
            .count());
  };
  for (;;) {
    bool any_claimed = false;
    rng = mix64(rng);
    const unsigned offset = static_cast<unsigned>(rng % width);
    for (unsigned probe = 0; probe < width; ++probe) {
      const unsigned victim = (offset + probe) % width;
      if (victim == slot) continue;
      Shard& shard = batch.shards[victim];
      // Relaxed pre-check keeps drained shards read-only (no dirtying a
      // line another thief is also probing).
      if (shard.next.load(std::memory_order_relaxed) >= shard.end) {
        ++ws.steal_failures;
        continue;
      }
      const std::size_t i =
          shard.next.fetch_add(batch.chunk, std::memory_order_relaxed);
      if (i >= shard.end) {
        ++ws.steal_failures;
        continue;
      }
      ++ws.steals;
      any_claimed = true;
      account_idle();
      run_range(batch, i, std::min(i + batch.chunk, shard.end), ws);
      idle_since = std::chrono::steady_clock::now();
    }
    if (!any_claimed) {
      account_idle();
      return;
    }
  }
}

void ThreadPool::worker_loop(unsigned slot) {
  std::uint64_t seen = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      batch = batch_;
      // Registration happens in the same critical section that reads
      // batch_: once the submitter observes active_ == 0 with batch_
      // cleared, no worker can still reach this batch.
      if (batch) ++active_;
    }
    if (!batch) continue;
    drain(*batch, slot);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    cv_done_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              const ScheduleOptions& options,
                              SchedulerStats* stats) {
  if (stats) {
    stats->workers.assign(workers_.empty() ? 1 : size(), WorkerStats{});
  }
  if (n == 0) return;
  if (workers_.empty()) {
    // Serial fallback: the exact loop a single-threaded harness would run
    // (exceptions propagate from the first failing index directly).
    for (std::size_t i = 0; i < n; ++i) body(i);
    if (stats) {
      stats->workers[0].indices = n;
      stats->workers[0].local_claims = 1;
    }
    return;
  }

  const unsigned width = size();
  Batch batch;
  batch.body = &body;
  batch.n = n;
  batch.mode = options.mode;
  batch.chunk = options.chunk ? options.chunk : auto_chunk(n, width);
  batch.width = width;
  batch.ws = std::make_unique<PaddedWorkerStats[]>(width);
  if (batch.mode == ScheduleMode::kWorkStealing) {
    // Balanced contiguous shards: shard w owns [w*n/W, (w+1)*n/W).
    batch.shards = std::make_unique<Shard[]>(width);
    for (unsigned w = 0; w < width; ++w) {
      batch.shards[w].next.store(n * w / width, std::memory_order_relaxed);
      batch.shards[w].end = n * (w + 1) / width;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &batch;
    ++generation_;
  }
  cv_work_.notify_all();
  drain(batch, 0);  // the submitting thread works too (slot 0)

  // drain() returning here means every index was claimed; registered
  // workers may still be finishing their last claims. Clearing batch_
  // first keeps late-waking workers from joining a finished batch.
  {
    std::unique_lock<std::mutex> lock(mu_);
    batch_ = nullptr;
    cv_done_.wait(lock, [&] { return active_ == 0; });
  }

  if (stats) {
    for (unsigned w = 0; w < width; ++w) stats->workers[w] = batch.ws[w].s;
  }

  if (!batch.errors.empty()) {
    const auto first = std::min_element(
        batch.errors.begin(), batch.errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(first->second);
  }
}

}  // namespace unsync::runtime
