#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace unsync::runtime {

unsigned ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_threads();
  if (threads > 1) workers_.reserve(threads - 1);
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) return;
    try {
      (*batch.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.error_mu);
      batch.errors.emplace_back(i, std::current_exception());
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      batch = batch_;
      // Registration happens in the same critical section that reads
      // batch_: once the submitter observes active_ == 0 with batch_
      // cleared, no worker can still reach this batch.
      if (batch) ++active_;
    }
    if (!batch) continue;
    drain(*batch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    cv_done_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty()) {
    // Serial fallback: the exact loop a single-threaded harness would run
    // (exceptions propagate from the first failing index directly).
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  Batch batch;
  batch.body = &body;
  batch.n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &batch;
    ++generation_;
  }
  cv_work_.notify_all();
  drain(batch);  // the submitting thread works too

  // drain() returning here means every index was claimed; registered
  // workers may still be finishing their last claims. Clearing batch_
  // first keeps late-waking workers from joining a finished batch.
  {
    std::unique_lock<std::mutex> lock(mu_);
    batch_ = nullptr;
    cv_done_.wait(lock, [&] { return active_ == 0; });
  }

  if (!batch.errors.empty()) {
    const auto first = std::min_element(
        batch.errors.begin(), batch.errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(first->second);
  }
}

}  // namespace unsync::runtime
