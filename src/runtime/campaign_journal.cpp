#include "runtime/campaign_journal.hpp"

#include <fstream>

#include "ckpt/serializer.hpp"
#include "common/rng.hpp"

namespace unsync::runtime {

std::uint32_t grid_fingerprint(const std::vector<SimJob>& jobs) {
  ckpt::Serializer s;
  for (const auto& job : jobs) {
    s.str(job.label);
    s.str(job.profile);
    s.b(static_cast<bool>(job.trace));
    s.u64(job.trace ? job.trace->size() : 0);
    s.u8(static_cast<std::uint8_t>(job.system));
    s.u64(job.insts);
    s.f64(job.ser_per_inst);
    s.u32(job.app_threads);
    s.b(job.fast_forward);
    s.b(job.seed.has_value());
    s.u64(job.seed.value_or(0));
    s.b(job.avf);
    for (const auto m : job.protect.mechanism) {
      s.u8(static_cast<std::uint8_t>(m));
    }
    const auto& p = job.params;
    s.u32(p.unsync.group_size);
    s.u64(p.unsync.cb_entries);
    s.u32(p.unsync.drain_per_cycle);
    s.u64(p.unsync.eih_signal_cycles);
    s.u64(p.unsync.state_copy_word_cycles);
    s.u32(p.unsync.arch_state_words);
    s.u64(p.unsync.l1_copy_line_cycles);
    s.u32(p.reunion.fingerprint_interval);
    s.u64(p.reunion.compare_latency);
    s.u32(p.reunion.csb_entries);
    s.u64(p.reunion.rollback_penalty);
    s.u32(p.lockstep.max_skew);
    s.u64(p.lockstep.load_check_latency);
    s.u64(p.lockstep.resync_penalty);
    s.u64(p.checkpoint.checkpoint_interval);
    s.u64(p.checkpoint.checkpoint_cost);
    s.u64(p.checkpoint.compare_latency);
    s.u64(p.checkpoint.restore_cost);
    s.u64(p.hetero.log_entries);
    s.u32(p.hetero.checker_width);
    s.u64(p.hetero.checker_load_latency);
    s.u64(p.hetero.rollback_penalty);
    s.u8(static_cast<std::uint8_t>(p.tier));
  }
  return ckpt::crc32(s.data());
}

ckpt::JournalHeader make_journal_header(const std::vector<SimJob>& jobs,
                                        std::uint64_t campaign_seed,
                                        bool collect_metrics, bool screen,
                                        double screen_threshold, bool prefix,
                                        Cycle prefix_interval) {
  ckpt::JournalHeader h;
  h.campaign_seed = campaign_seed;
  h.jobs = jobs.size();
  h.grid_crc = grid_fingerprint(jobs);
  if (screen) {
    // Fold the screening policy into the grid CRC (the header line format
    // itself is unchanged): a plain campaign and screening campaigns at
    // different thresholds all pin distinct identities.
    ckpt::Serializer s;
    s.u32(h.grid_crc);
    s.b(true);
    s.f64(screen_threshold);
    h.grid_crc = ckpt::crc32(s.data());
  }
  if (prefix) {
    // Same trick for an active prefix engine: fold the policy only when it
    // is on, so prefix_share=0 journals stay byte-identical to builds that
    // predate the engine.
    ckpt::Serializer s;
    s.u32(h.grid_crc);
    s.b(true);
    s.u64(prefix_interval);
    h.grid_crc = ckpt::crc32(s.data());
  }
  h.collect_metrics = collect_metrics;
  return h;
}

bool entry_acceptable(const SimJob& job, const core::RunResult& result,
                      bool screen, double screen_threshold) {
  if (screen) {
    return !result.approximate ||
           screening_score(result) < screen_threshold;
  }
  return result.approximate == (job.params.tier == engine::Tier::kFast);
}

std::string encode_entry_blob(const core::RunResult& result,
                              const obs::MetricsSnapshot* metrics) {
  ckpt::Serializer s;
  core::save_result(s, result);
  s.b(metrics != nullptr);
  if (metrics) metrics->save(s);
  return s.take();
}

std::optional<RestoredJob> decode_entry_blob(std::string blob) {
  try {
    ckpt::Deserializer d(std::move(blob));
    RestoredJob r;
    core::load_result(d, r.result);
    r.has_metrics = d.b();
    if (r.has_metrics) r.metrics.load(d);
    if (!d.at_end()) return std::nullopt;
    return r;
  } catch (const ckpt::CkptError&) {
    return std::nullopt;
  }
}

std::uint64_t job_seed(const std::vector<SimJob>& jobs,
                       std::uint64_t campaign_seed, std::size_t index) {
  return jobs[index].seed
             ? *jobs[index].seed
             : derive_seed(campaign_seed, static_cast<std::uint64_t>(index));
}

namespace {

/// Shared walk over a journal file: validates the header against `expect`
/// and invokes `on_entry` for every CRC-valid entry line. Returns false if
/// the file is missing or empty (fresh campaign).
template <typename Fn>
bool for_each_valid_entry(const std::string& path,
                          const ckpt::JournalHeader& expect, Fn&& on_entry) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;

  std::string line;
  if (!std::getline(in, line) || line.empty()) return false;

  const auto header = ckpt::JournalHeader::parse(line);
  if (!header) {
    throw ckpt::CkptError("campaign journal '" + path +
                          "': missing or unknown schema header");
  }
  header->require_match(expect, path);

  while (std::getline(in, line)) {
    auto entry = ckpt::parse_entry_line(line, expect.jobs);
    if (!entry) continue;
    on_entry(std::move(*entry));
  }
  return true;
}

}  // namespace

std::vector<std::optional<RestoredJob>> load_journal(
    const std::string& path, const ckpt::JournalHeader& expect) {
  std::vector<std::optional<RestoredJob>> restored(
      static_cast<std::size_t>(expect.jobs));
  for_each_valid_entry(path, expect, [&](ckpt::ParsedEntry entry) {
    auto job = decode_entry_blob(std::move(entry.blob));
    if (!job || job->has_metrics != expect.collect_metrics) return;
    restored[static_cast<std::size_t>(entry.index)] =
        std::move(*job);  // duplicate index: last wins
  });
  return restored;
}

std::vector<char> journal_done_mask(const std::string& path,
                                    const ckpt::JournalHeader& expect) {
  std::vector<char> done(static_cast<std::size_t>(expect.jobs), 0);
  for_each_valid_entry(path, expect, [&](ckpt::ParsedEntry entry) {
    // The CRC already guards the payload; decode anyway so a torn line
    // whose fields happen to parse can never mark a job as done.
    auto job = decode_entry_blob(std::move(entry.blob));
    if (!job || job->has_metrics != expect.collect_metrics) return;
    done[static_cast<std::size_t>(entry.index)] = 1;
  });
  return done;
}

JournalStatus journal_status(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ckpt::CkptError("campaign journal '" + path + "': cannot open");
  }
  std::string line;
  if (!std::getline(in, line) || line.empty()) {
    throw ckpt::CkptError("campaign journal '" + path + "': empty file");
  }
  const auto header = ckpt::JournalHeader::parse(line);
  if (!header) {
    throw ckpt::CkptError("campaign journal '" + path +
                          "': missing or unknown schema header");
  }

  JournalStatus status;
  status.header = *header;
  std::vector<char> seen(static_cast<std::size_t>(header->jobs), 0);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto stats_blob = ckpt::parse_stats_line(line)) {
      // Prefix-engine totals appended at campaign end. Last valid line
      // wins (resume rewrites the journal, then appends a fresh one).
      if (auto stats = PrefixStats::decode(std::move(*stats_blob))) {
        status.prefix = *stats;
      } else {
        ++status.corrupt;
      }
      continue;
    }
    auto entry = ckpt::parse_entry_line(line, header->jobs);
    const std::optional<RestoredJob> job =
        entry ? decode_entry_blob(std::move(entry->blob))
              : std::optional<RestoredJob>();
    if (!entry || !job || job->has_metrics != header->collect_metrics) {
      ++status.corrupt;
      continue;
    }
    char& mark = seen[static_cast<std::size_t>(entry->index)];
    if (mark) {
      ++status.duplicates;
    } else {
      mark = 1;
      ++status.done;
    }
  }
  return status;
}

}  // namespace unsync::runtime
