// Campaign-level journal contents: what goes inside the CRC'd blobs of an
// "unsync.campaign_journal.v1" file, and how whole journals are loaded.
//
// The byte-level line format (header/entry rendering, hex codec, CRC
// checks) lives in ckpt/journal.hpp; this layer binds it to the campaign
// domain: a blob is a ckpt-serialized RunResult plus (when the campaign
// collects metrics) the job's metric snapshot, and a grid of SimJobs is
// fingerprinted so a journal can never be resumed — or merged — against a
// grid it was not written for.
//
// Shared by CampaignRunner (single-process resumable campaigns) and the
// distributed fabric in runtime/distributed.hpp (per-shard journals merged
// by a coordinator).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/journal.hpp"
#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "runtime/campaign.hpp"
#include "runtime/prefix.hpp"

namespace unsync::runtime {

/// CRC-32 fingerprint of the whole job grid: any change to a label,
/// workload, architecture, knob, model tier or seed yields a different
/// fingerprint.
std::uint32_t grid_fingerprint(const std::vector<SimJob>& jobs);

/// The header that pins `jobs` for a given campaign configuration; shard /
/// workers are filled by the distributed layer when journaling one shard.
/// Screening campaigns (fast sweep + thresholded detailed re-run) fold the
/// screen flag and threshold into the grid CRC, so a journal written under
/// one screening policy can never be resumed — or merged — under another.
/// Prefix-sharing campaigns fold their activation and golden-checkpoint
/// interval the same way when (and only when) the engine is actually
/// active, so prefix_share=0 journals keep the historical bytes while an
/// active engine pins how its campaign ran. The cache budget is a pure
/// performance knob and is never part of identity.
ckpt::JournalHeader make_journal_header(const std::vector<SimJob>& jobs,
                                        std::uint64_t campaign_seed,
                                        bool collect_metrics,
                                        bool screen = false,
                                        double screen_threshold = 0.0,
                                        bool prefix = false,
                                        Cycle prefix_interval = 0);

/// Belt-and-braces restore filter: whether a journaled result could have
/// been produced by `job` under the given screening policy. Non-screen
/// campaigns require the entry's tier to match the job's params.tier;
/// screen campaigns accept detailed entries always and fast entries only
/// when their screening_score stayed below the threshold (an entry at or
/// above it would have been re-run detailed before journaling). Entries
/// failing this simply re-run.
bool entry_acceptable(const SimJob& job, const core::RunResult& result,
                      bool screen, double screen_threshold);

/// One journaled job, decoded.
struct RestoredJob {
  core::RunResult result;
  bool has_metrics = false;
  obs::MetricsSnapshot metrics;
};

/// Serializes a completed job into journal-blob bytes.
std::string encode_entry_blob(const core::RunResult& result,
                              const obs::MetricsSnapshot* metrics);

/// Decodes journal-blob bytes; nullopt if truncated/corrupt/trailing.
std::optional<RestoredJob> decode_entry_blob(std::string blob);

/// The seed job `index` of `jobs` runs with (pinned seed, else derived).
std::uint64_t job_seed(const std::vector<SimJob>& jobs,
                       std::uint64_t campaign_seed, std::size_t index);

/// Loads a journal for resumption or merging. A missing or empty file
/// yields no entries (fresh campaign). A header that parses but pins a
/// different campaign than `expect` throws ckpt::CkptError; an
/// unparseable header on a non-empty file throws too (the file is not a
/// campaign journal). Corrupt or torn entry lines are dropped — those
/// jobs simply re-run. Returns one restored job per validated entry, by
/// global job index (duplicate index: last wins).
std::vector<std::optional<RestoredJob>> load_journal(
    const std::string& path, const ckpt::JournalHeader& expect);

/// Cheap pass over a journal: which global indices have a valid entry.
/// Same validation as load_journal (CRC + blob decode) without keeping the
/// decoded payloads. Used for steal decisions and completeness polling.
std::vector<char> journal_done_mask(const std::string& path,
                                    const ckpt::JournalHeader& expect);

/// What `unsync_sim campaign status` prints: journal health without the
/// grid (everything needed is pinned in the header).
struct JournalStatus {
  ckpt::JournalHeader header;
  std::size_t done = 0;       ///< unique job indices with a valid entry
  std::size_t duplicates = 0; ///< extra valid lines for an already-done job
  std::size_t corrupt = 0;    ///< torn / CRC-mismatched / malformed lines
  /// Prefix-engine totals from the journal's last valid "stats" line
  /// (appended when a prefix-sharing campaign completes); absent on
  /// journals of prefix_share=0 campaigns or ones killed before the end.
  std::optional<PrefixStats> prefix;
  std::size_t pending() const {
    return static_cast<std::size_t>(header.jobs) - done;
  }
};

/// Inspects a journal file without running anything. Throws
/// ckpt::CkptError if the file is missing, empty, or has no valid header.
JournalStatus journal_status(const std::string& path);

}  // namespace unsync::runtime
