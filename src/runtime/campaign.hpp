// Declarative simulation campaigns executed across a ThreadPool.
//
// A campaign is a grid of independent simulation jobs — (workload x
// architecture x config-point x seed) — exactly the shape of every
// evaluation artifact in this reproduction (Figures 4-6, Tables II/III,
// spec_campaign, SER sweeps, Monte-Carlo injection). CampaignRunner fans
// the grid out across workers and hands results back *in submission
// order*, so tables, CSVs and JSON built from a parallel run are
// byte-identical to the serial run.
//
// Determinism: a job with no explicit seed draws derive_seed(campaign_seed,
// job_index) — a pure function of the grid, independent of worker count,
// thread identity and claim order. threads=1 runs the same code inline on
// the caller and reproduces today's serial results exactly. Per-job metric
// registries merge in submission order, so the aggregate snapshot is
// worker-count independent too; only wall-time observations (excluded from
// the default to_json()) vary between runs.
//
// Crash safety: with Options::journal set, every completed job is appended
// to a JSONL journal (CRC-checked binary blobs, atomic rewrite on resume);
// Options::resume restores journaled jobs and re-runs only the rest, with
// byte-identical CampaignOutput. See docs/CHECKPOINTS.md.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "core/system.hpp"
#include "fault/avf.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::runtime {

// The system taxonomy lives in core::factory (the single construction
// switch); these aliases keep existing runtime:: spellings working.
using SystemKind = core::SystemKind;
using core::name_of;
using core::parse_system;

/// One cell of the campaign grid. Workload selection: `profile` names a
/// built-in statistical benchmark (generated per job from the job seed);
/// otherwise `trace` replays shared immutable recorded ops (kernel /
/// program / trace-file workloads — the storage is shared across jobs,
/// never copied).
struct SimJob {
  std::string label;    ///< row label, e.g. the benchmark name
  std::string profile;  ///< synthetic workload when non-empty
  std::shared_ptr<const std::vector<workload::DynOp>> trace;

  SystemKind system = SystemKind::kUnSync;
  std::uint64_t insts = 50000;  ///< synthetic stream length
  double ser_per_inst = 0.0;
  unsigned app_threads = 1;  ///< simulated application threads
  /// Enable the kernel's quiescence fast-forwarding (engine.fast_forward=1
  /// on the CLI). Bit-invisible in results — see docs/ENGINE.md — but part
  /// of the grid fingerprint so a journal records how it was produced.
  bool fast_forward = false;
  /// Fixed workload/system seed; unset = derive_seed(campaign_seed, index).
  std::optional<std::uint64_t> seed;
  /// ACE/AVF residency accounting (CLI: avf=1). Observation-only and
  /// bit-invisible in results; part of the grid fingerprint because it
  /// changes which metrics a journaled campaign carries.
  bool avf = false;
  /// Per-uncore-structure protection plan joined with the measured AVF at
  /// report time (CLI: protect.<structure>=none|parity|secded).
  fault::UncorePlan protect;

  /// Architecture knobs (only the member matching `system` is read) plus
  /// the model tier: params.tier == kFast runs the job on the approximate
  /// interval model instead of the cycle-accurate system (docs/TIERS.md).
  core::SystemParams params;
};

/// Prefix-sharing policy (docs/CAMPAIGNS.md, "Prefix-sharing"; the engine
/// itself lives in runtime/prefix.hpp). Execution strategy only: results
/// are byte-identical whether it is on or off.
struct PrefixOptions {
  /// CLI: prefix_share=1. Off by default; prefix_share=0 campaigns are
  /// byte-identical to builds that predate the engine.
  bool enabled = false;
  /// Checkpoint + fingerprint cadence of the golden run, in cycles
  /// (CLI: prefix_interval=). Folded into journal identity when the
  /// engine is active, so a journal records how its campaign ran.
  Cycle interval = 5000;
  /// LRU budget for cached golden checkpoints, in MiB (CLI:
  /// prefix_cache_mb=). Purely a performance knob: never part of campaign
  /// identity.
  std::size_t cache_mb = 256;
};

/// Builds the workload stream one job consumes: `profile` yields a
/// synthetic stream generated from the job seed, `trace` a shared replay
/// of the recorded ops. Exposed for the prefix engine, which must build
/// streams for golden (fault-free) twins of a job.
std::unique_ptr<workload::InstStream> make_job_stream(const SimJob& job,
                                                      std::uint64_t seed);

/// The core::SystemConfig run_job constructs for a job (exposed likewise).
core::SystemConfig job_system_config(const SimJob& job, std::uint64_t seed);

/// How "interesting" a cell's result is for tier screening: the detected
/// error / recovery activity plus the fraction of cycles spent recovering.
/// Always >= 0, so a screen threshold of 0 re-runs EVERY cell detailed
/// (byte-identical to a pure detailed campaign) and +infinity re-runs none.
double screening_score(const core::RunResult& result);

struct CampaignOutput {
  /// One result per job, in submission order.
  std::vector<core::RunResult> results;
  /// Job labels and the seeds actually used, parallel to `results`.
  std::vector<std::string> labels;
  std::vector<std::uint64_t> seeds;
  std::uint64_t campaign_seed = 0;

  double wall_seconds = 0.0;
  /// Per-job wall seconds (measurement only — never part of to_json()'s
  /// default output, which must be worker-count independent).
  std::vector<double> job_wall_seconds;

  /// Merged per-job metric snapshots (submission order); empty unless
  /// Options::collect_metrics was set.
  obs::MetricsSnapshot metrics;

  /// Host-side scheduler observability (campaign.scheduler.*): steal /
  /// local-claim / idle counters per worker slot plus a per-job wall-time
  /// histogram. Pure measurement — like wall_seconds it varies run to run,
  /// so it is excluded from the default to_json() and only emitted with
  /// `include_timing`.
  obs::MetricsSnapshot scheduler_metrics;

  /// Total simulated program instructions across the grid (throughput
  /// numerator for scaling studies).
  std::uint64_t total_instructions() const;

  /// Stable "unsync.campaign.v2" schema (v2: embedded results are
  /// "unsync.run_result.v2", which records the tier that produced each
  /// cell). The default output is a pure function of the grid
  /// (byte-identical across worker counts); `include_timing` adds
  /// wall-clock fields (and scheduler_metrics) for humans and profilers.
  std::string to_json(int indent = 0, bool include_timing = false) const;
};

class CampaignRunner {
 public:
  struct Options {
    /// Worker threads (including the caller). 0 = hardware concurrency;
    /// 1 = serial execution on the caller.
    unsigned threads = 0;
    /// In-process scheduling: sharded work stealing by default; the legacy
    /// shared-counter queue (chunked) stays selectable for comparison.
    /// Never affects results — only how fast the grid drains.
    ScheduleOptions schedule;
    std::uint64_t campaign_seed = 42;
    /// Collect each job's metrics into CampaignOutput::metrics (one
    /// registry per job, merged in submission order).
    bool collect_metrics = false;
    /// Crash-safe job journal ("unsync.campaign_journal.v1"): a JSONL file
    /// whose header pins the campaign identity (seed, job count, a CRC-32
    /// fingerprint of the whole grid, collect_metrics) and to which every
    /// completed job is appended as one line carrying a CRC-checked binary
    /// blob of its RunResult (plus its metric snapshot when
    /// collect_metrics is on). A killed campaign loses at most the jobs
    /// that were in flight. Empty = no journal.
    std::string journal;
    /// Flush the journal stream every N completed jobs (1 = every job;
    /// larger values trade crash-window for fewer flushes).
    std::size_t checkpoint_every = 1;
    /// Resume from `journal`: journaled jobs are restored instead of
    /// re-run, and CampaignOutput (including to_json()) is byte-identical
    /// to an uninterrupted campaign regardless of kill point or worker
    /// count. The journal header must match this campaign or
    /// ckpt::CkptError is thrown; corrupt or torn entry lines are dropped
    /// (those jobs simply re-run). A missing or empty journal file starts
    /// a fresh campaign.
    bool resume = false;
    /// Two-phase tier screening (CLI: tier=screen): every job first runs on
    /// the fast interval model; cells whose screening_score() reaches
    /// screen_threshold are re-run on the detailed tier and only the final
    /// result is kept (and journaled). The merged CampaignOutput records
    /// which tier produced each cell via RunResult::approximate. Jobs'
    /// params.tier is ignored while screening (the screen policy owns the
    /// tier choice). threshold 0 == pure detailed, +infinity == pure fast.
    bool screen = false;
    double screen_threshold = 0.0;
    /// Prefix-sharing (CLI: prefix_share= / prefix_interval= /
    /// prefix_cache_mb=): golden runs are simulated once per unique
    /// fault-free configuration and injection jobs restore from their
    /// in-memory checkpoints, finishing early when they provably converge
    /// back onto the golden trajectory. Results stay byte-identical at any
    /// worker count; inert while screening (the fast tier already is the
    /// shortcut) or while collect_metrics is on (per-cycle histograms
    /// depend on the cycles a shared prefix would skip).
    PrefixOptions prefix;
    /// Invoked after each job completes with (jobs done so far, total).
    /// Called under an internal mutex: thread-safe, but keep it cheap.
    std::function<void(std::size_t completed, std::size_t total)> progress;
  };

  explicit CampaignRunner(Options options) : options_(std::move(options)) {}

  /// Runs the whole grid; results come back in submission order. The
  /// first failing job's exception (by job index) is rethrown after the
  /// grid finishes.
  CampaignOutput run(const std::vector<SimJob>& jobs) const;

  /// Builds and runs one job with an already-derived seed (also the
  /// single-job path unsync_sim's `run` subcommand uses), honouring
  /// job.params.tier via core::make_model. Optional observability: metrics
  /// are published into `metrics`, events into `trace`.
  static core::RunResult run_job(const SimJob& job, std::uint64_t seed,
                                 obs::MetricsRegistry* metrics = nullptr,
                                 obs::TraceSink* trace = nullptr);

  /// One job under the two-phase screening policy: fast tier first, then a
  /// detailed re-run iff screening_score(fast result) >= threshold. When
  /// `metrics` is non-null it receives the snapshot of whichever tier
  /// produced the returned result. Shared by the in-process runner and the
  /// distributed fabric so both merge identical bytes.
  static core::RunResult run_job_screened(const SimJob& job,
                                          std::uint64_t seed, double threshold,
                                          obs::MetricsSnapshot* metrics =
                                              nullptr);

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace unsync::runtime
