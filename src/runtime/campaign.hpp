// Declarative simulation campaigns executed across a ThreadPool.
//
// A campaign is a grid of independent simulation jobs — (workload x
// architecture x config-point x seed) — exactly the shape of every
// evaluation artifact in this reproduction (Figures 4-6, Tables II/III,
// spec_campaign, SER sweeps, Monte-Carlo injection). CampaignRunner fans
// the grid out across workers and hands results back *in submission
// order*, so tables and CSVs built from a parallel run are byte-identical
// to the serial run.
//
// Determinism: a job with no explicit seed draws derive_seed(campaign_seed,
// job_index) — a pure function of the grid, independent of worker count,
// thread identity and claim order. threads=1 runs the same code inline on
// the caller and reproduces today's serial results exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/baseline.hpp"
#include "core/related_work.hpp"
#include "core/reunion_system.hpp"
#include "core/system.hpp"
#include "core/unsync_system.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::runtime {

enum class SystemKind : std::uint8_t {
  kBaseline,
  kUnSync,
  kReunion,
  kLockstep,
  kCheckpoint,
};

const char* name_of(SystemKind kind);
/// Parses the CLI spelling ("baseline", "unsync", ...); nullopt if unknown.
std::optional<SystemKind> parse_system(const std::string& name);

/// One cell of the campaign grid. Workload selection: `profile` names a
/// built-in statistical benchmark (generated per job from the job seed);
/// otherwise `trace` replays shared immutable recorded ops (kernel /
/// program / trace-file workloads — the storage is shared across jobs,
/// never copied).
struct SimJob {
  std::string label;    ///< row label, e.g. the benchmark name
  std::string profile;  ///< synthetic workload when non-empty
  std::shared_ptr<const std::vector<workload::DynOp>> trace;

  SystemKind system = SystemKind::kUnSync;
  std::uint64_t insts = 50000;  ///< synthetic stream length
  double ser_per_inst = 0.0;
  unsigned app_threads = 1;  ///< simulated application threads
  /// Fixed workload/system seed; unset = derive_seed(campaign_seed, index).
  std::optional<std::uint64_t> seed;

  core::UnSyncParams unsync;
  core::ReunionParams reunion;
  core::LockstepParams lockstep;
  core::CheckpointParams checkpoint;
};

struct CampaignOutput {
  /// One result per job, in submission order.
  std::vector<core::RunResult> results;
  double wall_seconds = 0.0;

  /// Total simulated program instructions across the grid (throughput
  /// numerator for scaling studies).
  std::uint64_t total_instructions() const;
};

class CampaignRunner {
 public:
  struct Options {
    /// Worker threads (including the caller). 0 = hardware concurrency;
    /// 1 = serial execution on the caller.
    unsigned threads = 0;
    std::uint64_t campaign_seed = 42;
  };

  explicit CampaignRunner(Options options) : options_(options) {}

  /// Runs the whole grid; results come back in submission order. The
  /// first failing job's exception (by job index) is rethrown after the
  /// grid finishes.
  CampaignOutput run(const std::vector<SimJob>& jobs) const;

  /// Builds and runs one job with an already-derived seed (also the
  /// single-job path unsync_sim's `run` subcommand uses).
  static core::RunResult run_job(const SimJob& job, std::uint64_t seed);

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace unsync::runtime
