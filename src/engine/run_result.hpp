// The result record every simulated run produces, and its stable
// serialisations (JSON schema + checkpoint wire layout).
//
// RunResult lives in the engine layer because the SimKernel accumulates it
// across run() segments (the resumable-run contract) and every system
// policy only appends its per-core stats and system counters at the end.
// The core:: spellings (core::RunResult, core::save_result, ...) remain
// valid aliases — see core/system.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "cpu/ooo_core.hpp"

namespace unsync::ckpt {
class Serializer;
class Deserializer;
}  // namespace unsync::ckpt

namespace unsync::engine {

/// One injected soft-error event as the timing system handled it.
struct ErrorEvent {
  Cycle cycle = 0;          ///< when the strike was handled
  SeqNum position = 0;      ///< commit position it was attached to
  unsigned thread = 0;      ///< which thread / redundancy group
  unsigned struck_core = 0; ///< side within the group (bad core)
  Cycle cost = 0;           ///< stall / penalty cycles charged
  bool rollback = false;    ///< true = re-execution; false = forward recovery
};

struct RunResult {
  std::string system;
  Cycle cycles = 0;                 ///< cycles until every thread finished
  /// Program instructions of the longest thread (for homogeneous runs this
  /// is simply "the" program length).
  std::uint64_t instructions = 0;
  /// Per-thread program lengths (heterogeneous multiprogramming).
  std::vector<std::uint64_t> thread_instructions;
  std::vector<cpu::CoreStats> core_stats;

  std::uint64_t errors_injected = 0;
  std::uint64_t recoveries = 0;       ///< UnSync forward recoveries
  std::uint64_t rollbacks = 0;        ///< Reunion checkpoint rollbacks
  Cycle recovery_cycles_total = 0;

  std::uint64_t cb_full_stalls = 0;   ///< UnSync commit stalls on full CB
  std::uint64_t fingerprint_syncs = 0;///< Reunion serializing synchronisations

  /// Chronological log of every injected error (all systems fill this).
  std::vector<ErrorEvent> error_log;

  /// True when the result came from an approximate model tier (the interval
  /// model); false for the cycle-accurate path. Serialised as both the
  /// "tier" ("fast"/"detailed") and "approximate" JSON keys.
  bool approximate = false;

  /// Per-thread IPC: program instructions over total cycles (a redundant
  /// pair retires the program once even though two cores execute it).
  double thread_ipc() const {
    return cycles ? static_cast<double>(instructions) /
                        static_cast<double>(cycles)
                  : 0.0;
  }

  /// Serialises the result under the stable "unsync.run_result.v2" schema
  /// (see docs/OBSERVABILITY.md). v2 adds the "tier" and "approximate" keys
  /// directly after "system"; all v1 keys are unchanged, so a v1 reader that
  /// ignores unknown keys still parses v2. `indent` = 0 emits the canonical
  /// compact form; > 0 pretty-prints. Byte-identical for identical results.
  std::string to_json(int indent = 0) const;
};

/// Checkpoint helpers: serialise / restore an ErrorEvent and a full
/// RunResult (used by system checkpoints and the campaign journal).
void save_error_event(ckpt::Serializer& s, const ErrorEvent& e);
void load_error_event(ckpt::Deserializer& d, ErrorEvent& e);
void save_result(ckpt::Serializer& s, const RunResult& r);
void load_result(ckpt::Deserializer& d, RunResult& r);

}  // namespace unsync::engine
