// SimModel: the tier-agnostic simulation-model interface.
//
// Every way of producing a RunResult for a (system, workload, SER) cell is a
// SimModel. Two tiers exist today:
//
//   - kDetailed — the cycle-accurate path: SimKernel driving a SystemPolicy
//     (core::System and its five architectures). Bit-exact, resumable,
//     checkpointable; results carry approximate=false.
//   - kFast — the interval/analytical path (engine::IntervalModel): one
//     linear pass over the same workload streams and the same fault-arrival
//     schedule, computing per-interval CPI from miss/branch/dependence
//     statistics instead of simulating pipeline structures. 10-100x faster;
//     results carry approximate=true and are validated against the detailed
//     tier by tools/validate_fast_tier + bench_tier_screening (error bounds
//     committed in bench/BENCH_tier_baseline.json, CI-gated).
//
// Contract notes:
//   - run() is resumable on the detailed tier (absolute max_cycles; run(N)
//     then run() equals run()). The fast tier recomputes from scratch on
//     every call: run(N) returns a partial estimate clamped at N cycles, and
//     a later run() ignores it and re-estimates the full program.
//   - Results from different tiers for the same cell agree exactly on
//     workload identity (instructions, thread_instructions) and on
//     errors_injected (both draw arrivals from fault::schedule_arrivals with
//     the same seed); cycles/CPI and recovery-cost metrics are approximate
//     on the fast tier, with per-benchmark bounds (docs/TIERS.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "engine/run_result.hpp"

namespace unsync::obs {
class MetricsRegistry;
class TraceSink;
}  // namespace unsync::obs

namespace unsync::engine {

/// Which model produced a result. kDetailed = cycle-accurate SimKernel,
/// kFast = interval/analytical model. (Campaigns additionally accept a
/// "screen" mode — fast sweep + detailed re-run of interesting cells — but
/// that is a campaign policy, not a model tier: every individual run is one
/// of these two.)
enum class Tier : std::uint8_t {
  kDetailed = 0,
  kFast = 1,
};

/// Stable lowercase name ("detailed" / "fast") used in JSON and CLI keys.
const char* name_of(Tier tier);

/// Parses "detailed" / "fast" (exact match); nullopt otherwise.
std::optional<Tier> parse_tier(const std::string& text);

/// A simulation model: anything that turns a configured (system, workload,
/// fault schedule) cell into a RunResult.
class SimModel {
 public:
  virtual ~SimModel() = default;

  /// Runs (or, on the detailed tier, resumes) the simulation up to the
  /// absolute cycle max_cycles and returns the accumulated result.
  virtual RunResult run(Cycle max_cycles = ~Cycle{0}) = 0;

  /// The tier this model implements. Results it returns carry
  /// approximate = (tier() == Tier::kFast).
  virtual Tier tier() const = 0;

  /// Human-readable architecture name ("unsync", "reunion", ...).
  virtual const std::string& name() const = 0;

  /// Attaches (or detaches, with nullptr) observability sinks. Metrics are
  /// published when a run completes; the fast tier publishes under a
  /// "<system>.fast." subtree and ignores the trace sink.
  virtual void set_observability(obs::MetricsRegistry* metrics,
                                 obs::TraceSink* trace) = 0;
};

inline const char* name_of(Tier tier) {
  return tier == Tier::kFast ? "fast" : "detailed";
}

inline std::optional<Tier> parse_tier(const std::string& text) {
  if (text == "detailed") return Tier::kDetailed;
  if (text == "fast") return Tier::kFast;
  return std::nullopt;
}

}  // namespace unsync::engine
