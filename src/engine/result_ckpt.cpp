// Checkpoint wire layout of ErrorEvent and RunResult — shared by the
// kernel-level system checkpoint (SimKernel::save_state) and the campaign
// journal. The "RRES" chunk layout is load-bearing: existing checkpoints
// and journals decode against it.
#include "ckpt/serializer.hpp"
#include "engine/run_result.hpp"

namespace unsync::engine {

void save_error_event(ckpt::Serializer& s, const ErrorEvent& e) {
  s.u64(e.cycle);
  s.u64(e.position);
  s.u32(e.thread);
  s.u32(e.struck_core);
  s.u64(e.cost);
  s.b(e.rollback);
}

void load_error_event(ckpt::Deserializer& d, ErrorEvent& e) {
  e.cycle = d.u64();
  e.position = d.u64();
  e.thread = d.u32();
  e.struck_core = d.u32();
  e.cost = d.u64();
  e.rollback = d.b();
}

void save_result(ckpt::Serializer& s, const RunResult& r) {
  s.begin_chunk("RRES");
  s.str(r.system);
  s.u64(r.cycles);
  s.u64(r.instructions);
  ckpt::save_u64_vec(s, r.thread_instructions);
  s.u64(r.core_stats.size());
  for (const cpu::CoreStats& cs : r.core_stats) cpu::save_stats(s, cs);
  s.u64(r.errors_injected);
  s.u64(r.recoveries);
  s.u64(r.rollbacks);
  s.u64(r.recovery_cycles_total);
  s.u64(r.cb_full_stalls);
  s.u64(r.fingerprint_syncs);
  s.u64(r.error_log.size());
  for (const ErrorEvent& e : r.error_log) save_error_event(s, e);
  s.b(r.approximate);
  s.end_chunk();
}

void load_result(ckpt::Deserializer& d, RunResult& r) {
  d.begin_chunk("RRES");
  r.system = d.str();
  r.cycles = d.u64();
  r.instructions = d.u64();
  ckpt::load_u64_vec(d, r.thread_instructions);
  r.core_stats.resize(d.u64());
  for (cpu::CoreStats& cs : r.core_stats) cpu::load_stats(d, cs);
  r.errors_injected = d.u64();
  r.recoveries = d.u64();
  r.rollbacks = d.u64();
  r.recovery_cycles_total = d.u64();
  r.cb_full_stalls = d.u64();
  r.fingerprint_syncs = d.u64();
  r.error_log.resize(d.u64());
  for (ErrorEvent& e : r.error_log) load_error_event(d, e);
  r.approximate = d.b();
  d.end_chunk();
}

}  // namespace unsync::engine
