// The fast tier: an interval-based analytical core model.
//
// Instead of simulating every pipeline structure cycle by cycle, the
// IntervalModel makes ONE linear pass over each thread's instruction stream
// in fixed-size intervals, classifying ops (loads / stores / branches /
// serializing, register-dependence distances, cache-filter hits) and charging
// each interval an analytical cycle count in the interval-analysis style
// (Eyerman et al.): a base dispatch term bounded by issue width and the
// measured dependence distance, plus miss-event penalties for branch
// mispredictions, serializing drains, L1/L2 misses (the latter overlapped by
// an MLP factor), plus per-architecture steady-state overheads (lockstep
// load checking, Reunion serializing syncs, DMR checkpoint captures).
//
// Fault handling consumes the SAME arrival schedule as the detailed tier —
// fault::schedule_arrivals seeded identically, drawn per thread in
// construction order — so errors_injected and every arrival position match
// the cycle-accurate run EXACTLY; only the error's timing/cost fields are
// approximate. Recovery charges the architecture's penalty (plus, for
// rollback schemes, re-execution of roughly half the rollback window at the
// running CPI; for UnSync forward recovery, the valid-L1-line copy cost from
// the cache filter).
//
// Results carry approximate=true ("unsync.run_result.v2" tier="fast"), are
// NOT resumable or checkpointable, and are validated against the detailed
// tier by tools/validate_fast_tier with CI-gated per-benchmark error bounds
// (bench/BENCH_tier_baseline.json, docs/TIERS.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "cpu/core_config.hpp"
#include "engine/sim_model.hpp"
#include "mem/config.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::engine {

/// Architecture abstract: everything the interval model needs to know about
/// a system kind, reduced to analytical knobs. Built by core::make_model
/// from the same SystemParams the detailed tier consumes.
struct IntervalSpec {
  /// Result identity ("baseline", "unsync", ...); RunResult::system.
  std::string system = "baseline";
  /// Redundant cores per thread (CoreStats is replicated per side).
  unsigned group_size = 1;
  /// Whether the architecture consumes a fault-arrival schedule at all
  /// (false for the unprotected baseline).
  bool inject_errors = false;
  /// Error handling class: rollback (re-execution) vs forward recovery.
  bool error_rollback = false;
  /// Fixed penalty charged per handled error (EIH signal + state copy for
  /// UnSync, resync for lockstep, squash/restore penalty for the rollback
  /// schemes). Becomes ErrorEvent::cost (plus the L1 copy term below).
  Cycle error_penalty = 0;
  /// UnSync forward recovery: cycles per valid L1 line copied via the L2.
  Cycle l1_copy_line_cycles = 0;
  /// Rollback schemes: mean re-execution window in instructions (the
  /// fingerprint interval / checkpoint epoch); the model re-charges half a
  /// window of instructions at the running CPI per rollback.
  std::uint64_t rollback_window = 0;
  /// Reunion: extra fetch-drain cycles per serializing instruction (the
  /// cross-core fingerprint comparison the serializing sync forces).
  Cycle serialize_sync_cycles = 0;
  /// Lockstep: checker delay added to every load.
  Cycle load_check_latency = 0;
  /// DMR checkpointing: instructions per epoch and stall per capture.
  std::uint64_t checkpoint_interval = 0;
  Cycle checkpoint_cycles = 0;
};

/// SimModel implementation of the fast tier. Constructed against the same
/// (core config, mem config, SER, seed, streams) cell as a detailed System.
class IntervalModel final : public SimModel {
 public:
  /// Homogeneous: `stream` is cloned once per thread.
  IntervalModel(const IntervalSpec& spec, const cpu::CoreConfig& core,
                const mem::MemConfig& mem, unsigned num_threads,
                double ser_per_inst, std::uint64_t seed,
                const workload::InstStream& stream);

  /// Heterogeneous multiprogramming: one stream per thread.
  IntervalModel(const IntervalSpec& spec, const cpu::CoreConfig& core,
                const mem::MemConfig& mem, unsigned num_threads,
                double ser_per_inst, std::uint64_t seed,
                const std::vector<const workload::InstStream*>& streams);

  /// Recomputes the estimate from scratch on every call (the fast tier is
  /// not resumable): run(N) returns a partial estimate clamped at N cycles;
  /// a later run() re-estimates the full program.
  RunResult run(Cycle max_cycles = ~Cycle{0}) override;

  Tier tier() const override { return Tier::kFast; }
  const std::string& name() const override { return spec_.system; }

  /// Metrics are published under "<system>.fast.*" when a registry is
  /// attached; the trace sink is accepted but unused (no per-event timing
  /// exists to trace).
  void set_observability(obs::MetricsRegistry* metrics,
                         obs::TraceSink* trace) override;

  /// Ops per analytical interval (exposed for tests).
  static constexpr std::uint64_t kIntervalOps = 1024;

 private:
  RunResult estimate(Cycle max_cycles);

  IntervalSpec spec_;
  cpu::CoreConfig core_;
  mem::MemConfig mem_;
  unsigned num_threads_ = 1;
  double ser_per_inst_ = 0.0;
  std::uint64_t seed_ = 42;
  std::vector<std::unique_ptr<workload::InstStream>> streams_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace unsync::engine
