#include "engine/sim_kernel.hpp"

#include <algorithm>

#include "ckpt/serializer.hpp"

namespace unsync::engine {

namespace {
constexpr Cycle kNever = ~Cycle{0};
}  // namespace

RunResult SimKernel::run(SystemPolicy& policy, Cycle max_cycles,
                         bool fast_forward) {
  const std::size_t groups = policy.group_count();
  auto all_done = [&] {
    for (std::size_t g = 0; g < groups; ++g) {
      if (!policy.finished(g)) return false;
    }
    return true;
  };

  while (!all_done() && now_ < max_cycles) {
    if (fast_forward) {
      // A skip is sound only when EVERY unfinished group is quiescent:
      // shared structures (the bus, the L2) stay untouched for the whole
      // window exactly because no group acts during it.
      Cycle target = kNever;
      for (std::size_t g = 0; g < groups && target > now_; ++g) {
        if (policy.finished(g)) continue;
        target = std::min(target, policy.next_event(g, now_));
      }
      target = std::min(target, max_cycles);
      if (target > now_) {
        for (std::size_t g = 0; g < groups; ++g) {
          if (!policy.finished(g)) policy.skip_cycles(g, now_, target);
        }
        now_ = target;
        continue;
      }
    }

    for (std::size_t g = 0; g < groups; ++g) {
      if (policy.finished(g)) continue;
      // The kernel — not the policy — owns the member walk: every member
      // of an unfinished group gets its tick in index order, whatever the
      // group's shape (one core, an identical pair, a leader + checker).
      const std::size_t members = policy.member_count(g);
      for (std::size_t m = 0; m < members; ++m) {
        policy.member_tick(g, m, now_);
      }
      policy.sync_phase(g, now_);
      policy.on_error(g, now_, acc_);
    }
    ++now_;
  }

  RunResult r = acc_;
  r.cycles = now_;
  policy.finish(r);
  policy.on_run_complete(r);
  return r;
}

void SimKernel::save_state(const SystemPolicy& policy,
                           ckpt::Serializer& s) const {
  s.begin_chunk(policy.ckpt_tag());
  s.u64(now_);
  save_result(s, acc_);
  policy.save_policy_state(s);
  s.end_chunk();
}

void SimKernel::load_state(SystemPolicy& policy, ckpt::Deserializer& d) {
  d.begin_chunk(policy.ckpt_tag());
  now_ = d.u64();
  load_result(d, acc_);
  policy.load_policy_state(d);
  d.end_chunk();
}

}  // namespace unsync::engine
