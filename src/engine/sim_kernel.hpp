// The shared cycle engine: one canonical simulation loop for every system.
//
// SimKernel owns what used to be duplicated across five bespoke run()
// implementations — the absolute-max_cycles resumable-run contract, the
// cycle cursor, the accumulated RunResult, and (new) quiescence
// fast-forwarding on the hot path. Systems plug in as SystemPolicy
// objects; see docs/ENGINE.md.
//
// Fast-forwarding: when every unfinished group reports a next-event cycle
// T > now, the cycles in [now, T) are provably static — no commit, issue,
// dispatch, fetch, drain or error injection can occur — so the kernel
// replays their deterministic per-cycle counters in closed form
// (SystemPolicy::skip_cycles) and jumps the clock. The result is
// bit-identical to the naive loop (tests/test_engine_parity.cpp pins this
// against pre-refactor goldens); only wall-clock time changes.
#pragma once

#include "common/types.hpp"
#include "engine/policy.hpp"
#include "engine/run_result.hpp"

namespace unsync::engine {

class SimKernel {
 public:
  /// Runs `policy` until every group is finished or the ABSOLUTE cycle
  /// bound `max_cycles` is reached. Continuable: run(N) followed by run()
  /// yields the same final result, bit for bit, as one uninterrupted run().
  RunResult run(SystemPolicy& policy, Cycle max_cycles, bool fast_forward);

  Cycle now() const { return now_; }

  /// The result fields accumulated across run() segments. Systems
  /// initialise the identity fields (system name, instruction counts) at
  /// construction and the error path appends to it mid-run.
  RunResult& result() { return acc_; }
  const RunResult& result() const { return acc_; }

  /// Kernel-level checkpoint: one chunk tagged policy.ckpt_tag() holding
  /// the cycle cursor, the accumulated result, then the policy payload.
  /// The wire layout is byte-identical to the pre-engine per-system
  /// save_state implementations (see docs/CHECKPOINTS.md).
  void save_state(const SystemPolicy& policy, ckpt::Serializer& s) const;
  void load_state(SystemPolicy& policy, ckpt::Deserializer& d);

 private:
  Cycle now_ = 0;
  RunResult acc_;
};

}  // namespace unsync::engine
