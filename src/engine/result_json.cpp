// RunResult -> JSON under the stable "unsync.run_result.v2" schema.
//
// This is the machine-readable contract every consumer shares (the CLI's
// --format=json, campaign reduction, the golden-file test): key order is
// fixed, doubles are shortest-round-trip, and interval IPC samples are
// deliberately excluded (unbounded size; they stay available in CoreStats).
#include "engine/run_result.hpp"
#include "obs/json.hpp"

namespace unsync::engine {

namespace {

void write_core_stats(obs::JsonWriter& w, const cpu::CoreStats& s) {
  w.begin_object();
  w.key("cycles").value(s.cycles);
  w.key("committed").value(s.committed);
  w.key("ipc").value(s.ipc());
  w.key("loads").value(s.loads);
  w.key("stores").value(s.stores);
  w.key("branches").value(s.branches);
  w.key("mispredicts").value(s.mispredicts);
  w.key("serializing").value(s.serializing);
  w.key("avg_rob_occupancy").value(s.avg_rob_occupancy());
  w.key("stalls").begin_object();
  w.key("commit_store").value(s.commit_stall_store);
  w.key("commit_gate").value(s.commit_stall_gate);
  w.key("dispatch_rob").value(s.dispatch_stall_rob);
  w.key("dispatch_iq").value(s.dispatch_stall_iq);
  w.key("dispatch_lsq").value(s.dispatch_stall_lsq);
  w.key("fetch_branch").value(s.fetch_blocked_branch);
  w.key("fetch_serialize").value(s.fetch_blocked_serialize);
  w.key("fetch_icache").value(s.fetch_blocked_icache);
  w.key("recovery_cycles").value(s.recovery_stall_cycles);
  w.end_object();
  w.key("tlb").begin_object();
  w.key("itlb_misses").value(s.itlb_misses);
  w.key("dtlb_misses").value(s.dtlb_misses);
  w.end_object();
  w.end_object();
}

void write_error_event(obs::JsonWriter& w, const ErrorEvent& e) {
  w.begin_object();
  w.key("cycle").value(e.cycle);
  w.key("position").value(e.position);
  w.key("thread").value(e.thread);
  w.key("struck_core").value(e.struck_core);
  w.key("cost").value(e.cost);
  w.key("rollback").value(e.rollback);
  w.end_object();
}

}  // namespace

std::string RunResult::to_json(int indent) const {
  obs::JsonWriter w(indent);
  w.begin_object();
  w.key("schema").value("unsync.run_result.v2");
  w.key("system").value(system);
  w.key("tier").value(approximate ? "fast" : "detailed");
  w.key("approximate").value(approximate);
  w.key("cycles").value(cycles);
  w.key("instructions").value(instructions);
  w.key("thread_ipc").value(thread_ipc());
  w.key("thread_instructions").begin_array();
  for (const auto n : thread_instructions) w.value(n);
  w.end_array();
  w.key("errors").begin_object();
  w.key("injected").value(errors_injected);
  w.key("recoveries").value(recoveries);
  w.key("rollbacks").value(rollbacks);
  w.key("recovery_cycles_total").value(recovery_cycles_total);
  w.end_object();
  w.key("cb_full_stalls").value(cb_full_stalls);
  w.key("fingerprint_syncs").value(fingerprint_syncs);
  w.key("cores").begin_array();
  for (const auto& s : core_stats) write_core_stats(w, s);
  w.end_array();
  w.key("error_log").begin_array();
  for (const auto& e : error_log) write_error_event(w, e);
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace unsync::engine
