// The policy interface a simulated system implements to be driven by the
// SimKernel (see docs/ENGINE.md for the full contract).
//
// A system is a set of redundancy *groups* (baseline: one core per group;
// the DMR systems: one core pair per application thread). The kernel owns
// the cycle loop; the policy supplies the per-group phases:
//
//   pre_cycle   — tick every live core of the group
//   sync_phase  — system-specific compare/drain work (UnSync CB drain)
//   on_error    — consume the group's error-arrival schedule
//   finished    — the group's termination predicate
//
// plus the fast-forward hooks (next_event / skip_cycles), the result
// finaliser (finish / on_run_complete) and the checkpoint body
// (ckpt_tag / save_policy_state / load_policy_state).
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "engine/run_result.hpp"

namespace unsync::ckpt {
class Serializer;
class Deserializer;
}  // namespace unsync::ckpt

namespace unsync::engine {

class SystemPolicy {
 public:
  virtual ~SystemPolicy() = default;

  /// Number of redundancy groups. Must stay constant for the lifetime of
  /// the system (the kernel iterates groups in index order every cycle).
  virtual std::size_t group_count() const = 0;

  /// True when group `g` has retired its whole stream and drained every
  /// structure the system tracks for it. A finished group receives no
  /// further phase calls.
  virtual bool finished(std::size_t g) const = 0;

  /// Advance every live core of group `g` by one cycle.
  virtual void pre_cycle(std::size_t g, Cycle now) = 0;

  /// System-specific synchronisation after the cores ticked (UnSync drains
  /// its Communication Buffers here). Default: nothing.
  virtual void sync_phase(std::size_t g, Cycle now) {
    (void)g;
    (void)now;
  }

  /// Error-arrival check for group `g`; fires at most the next scheduled
  /// strike into `acc`. Default: error-free system.
  virtual void on_error(std::size_t g, Cycle now, RunResult& acc) {
    (void)g;
    (void)now;
    (void)acc;
  }

  /// Fast-forward support: a conservative lower bound on the next cycle at
  /// which group `g` can change state. Returning `now` vetoes skipping
  /// (something may act this cycle); returning T > now asserts that every
  /// cycle in [now, T) is static — ticking it would change nothing except
  /// deterministic per-cycle counters, which skip_cycles() replays in
  /// closed form. The default vetoes, so a policy without fast-forward
  /// support is simply never skipped.
  virtual Cycle next_event(std::size_t g, Cycle now) const {
    (void)g;
    return now;
  }

  /// Replay the per-cycle counters of group `g` for the static window
  /// [from, to) that next_event() promised. Only called with to > from.
  virtual void skip_cycles(std::size_t g, Cycle from, Cycle to) {
    (void)g;
    (void)from;
    (void)to;
  }

  /// Fold the per-core stats and system counters into the final result
  /// (called on a copy of the kernel accumulator after the loop exits).
  virtual void finish(RunResult& r) const = 0;

  /// Invoked with the finished result just before run() returns — the
  /// metric-publication hook. Default: nothing.
  virtual void on_run_complete(const RunResult& r) { (void)r; }

  /// Checkpoint body: the 4-character chunk tag identifying this system's
  /// state layout, and the policy payload written inside the kernel's
  /// chunk (after the cycle cursor and accumulated result — see
  /// SimKernel::save_state and docs/CHECKPOINTS.md).
  virtual const char* ckpt_tag() const = 0;
  virtual void save_policy_state(ckpt::Serializer& s) const = 0;
  virtual void load_policy_state(ckpt::Deserializer& d) = 0;
};

}  // namespace unsync::engine
