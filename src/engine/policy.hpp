// The policy interface a simulated system implements to be driven by the
// SimKernel (see docs/ENGINE.md for the full contract).
//
// A system is a set of redundancy *groups*, and a group is an ordered list
// of *members* — one simulated core plus whatever per-core structure the
// system couples to it (an UnSync Communication Buffer, a hetero-checker
// log cursor). Members need not be identical: the heterogeneous checker
// system pairs a big out-of-order leader with a small in-order checker in
// the same group. The kernel owns the cycle loop; the policy supplies the
// per-member and per-group phases:
//
//   member_tick — advance one member by one cycle (self-gating: a member
//                 whose core has drained simply does nothing)
//   sync_phase  — system-specific compare/drain work (UnSync CB drain,
//                 checker-log comparison)
//   on_error    — consume the group's error-arrival schedule
//   member_finished / finished — per-member and group termination
//
// plus the fast-forward hooks (next_event / skip_cycles, with per-member
// defaults), the result finaliser (finish / on_run_complete) and the
// checkpoint body (ckpt_tag / save_policy_state / load_policy_state).
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "engine/run_result.hpp"

namespace unsync::ckpt {
class Serializer;
class Deserializer;
}  // namespace unsync::ckpt

namespace unsync::engine {

class SystemPolicy {
 public:
  virtual ~SystemPolicy() = default;

  /// Number of redundancy groups. Must stay constant for the lifetime of
  /// the system (the kernel iterates groups in index order every cycle).
  virtual std::size_t group_count() const = 0;

  /// Number of members in group `g` (baseline: 1; the DMR systems: 2;
  /// UnSync: the configured group size). Must stay constant per group.
  virtual std::size_t member_count(std::size_t g) const = 0;

  /// True when member `m` of group `g` has retired its stream and drained
  /// every per-member structure the system tracks for it (CB contents,
  /// un-consumed log entries, ...).
  virtual bool member_finished(std::size_t g, std::size_t m) const = 0;

  /// Advance member `m` of group `g` by one cycle. The kernel calls this
  /// for every member of an unfinished group, in member-index order, so
  /// implementations self-gate (a drained core ignores the tick).
  virtual void member_tick(std::size_t g, std::size_t m, Cycle now) = 0;

  /// True when group `g` has retired its whole stream and drained every
  /// structure the system tracks for it. A finished group receives no
  /// further phase calls. Default: every member is finished.
  virtual bool finished(std::size_t g) const {
    const std::size_t members = member_count(g);
    for (std::size_t m = 0; m < members; ++m) {
      if (!member_finished(g, m)) return false;
    }
    return true;
  }

  /// System-specific synchronisation after the members ticked (UnSync
  /// drains its Communication Buffers here). Default: nothing.
  virtual void sync_phase(std::size_t g, Cycle now) {
    (void)g;
    (void)now;
  }

  /// Error-arrival check for group `g`; fires at most the next scheduled
  /// strike into `acc`. Default: error-free system.
  virtual void on_error(std::size_t g, Cycle now, RunResult& acc) {
    (void)g;
    (void)now;
    (void)acc;
  }

  /// Fast-forward support, per member: a conservative lower bound on the
  /// next cycle at which member `m` can change state. Returning `now`
  /// vetoes skipping. The default vetoes, so a member without fast-forward
  /// support is simply never skipped.
  virtual Cycle member_next_event(std::size_t g, std::size_t m,
                                  Cycle now) const {
    (void)g;
    (void)m;
    return now;
  }

  /// Replay member `m`'s per-cycle counters for a static window [from, to)
  /// that member_next_event() promised. Self-gating like member_tick.
  virtual void member_skip_cycles(std::size_t g, std::size_t m, Cycle from,
                                  Cycle to) {
    (void)g;
    (void)m;
    (void)from;
    (void)to;
  }

  /// Fast-forward support, per group: a conservative lower bound on the
  /// next cycle at which group `g` can change state. Returning `now` vetoes
  /// skipping (something may act this cycle); returning T > now asserts
  /// that every cycle in [now, T) is static — ticking it would change
  /// nothing except deterministic per-cycle counters, which skip_cycles()
  /// replays in closed form. The default vetoes; systems with group-level
  /// coupling (arrival schedules, drain buses) fold members_next_event()
  /// into their own bound.
  virtual Cycle next_event(std::size_t g, Cycle now) const {
    (void)g;
    return now;
  }

  /// Replay the per-cycle counters of group `g` for the static window
  /// [from, to) that next_event() promised. Only called with to > from.
  /// Default: replay every member.
  virtual void skip_cycles(std::size_t g, Cycle from, Cycle to) {
    const std::size_t members = member_count(g);
    for (std::size_t m = 0; m < members; ++m) {
      member_skip_cycles(g, m, from, to);
    }
  }

  /// Fold the per-core stats and system counters into the final result
  /// (called on a copy of the kernel accumulator after the loop exits).
  virtual void finish(RunResult& r) const = 0;

  /// Invoked with the finished result just before run() returns — the
  /// metric-publication hook. Default: nothing.
  virtual void on_run_complete(const RunResult& r) { (void)r; }

  /// Checkpoint body: the 4-character chunk tag identifying this system's
  /// state layout, and the policy payload written inside the kernel's
  /// chunk (after the cycle cursor and accumulated result — see
  /// SimKernel::save_state and docs/CHECKPOINTS.md).
  virtual const char* ckpt_tag() const = 0;
  virtual void save_policy_state(ckpt::Serializer& s) const = 0;
  virtual void load_policy_state(ckpt::Deserializer& d) = 0;

 protected:
  /// Minimum of member_next_event over every member of `g`; `now` (veto)
  /// as soon as any member vetoes. The building block group-level
  /// next_event overrides combine with their arrival / drain bounds.
  Cycle members_next_event(std::size_t g, Cycle now) const {
    Cycle cand = ~Cycle{0};
    const std::size_t members = member_count(g);
    for (std::size_t m = 0; m < members; ++m) {
      const Cycle t = member_next_event(g, m, now);
      if (t <= now) return now;
      cand = t < cand ? t : cand;
    }
    return cand;
  }
};

}  // namespace unsync::engine
