#include "engine/interval_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "cpu/bpred.hpp"
#include "fault/ser.hpp"
#include "obs/metrics.hpp"

namespace unsync::engine {

namespace {

/// Direct-mapped line filter: a cheap stand-in for a set-associative cache
/// that answers "would this access roughly hit?" in O(1). Tracks the valid
/// line count (UnSync's forward-recovery copy cost scales with it).
class LineFilter {
 public:
  LineFilter(std::uint64_t cache_bytes, std::uint64_t line_bytes)
      : line_bytes_(line_bytes ? line_bytes : 64),
        tags_(std::max<std::uint64_t>(1, cache_bytes / line_bytes_), kNoAddr) {}

  /// Touches `addr`; returns true on a (modelled) hit.
  bool access(Addr addr) {
    const Addr line = addr / line_bytes_;
    Addr& slot = tags_[line % tags_.size()];
    if (slot == line) return true;
    if (slot == kNoAddr) ++valid_;
    slot = line;
    return false;
  }

  /// Marks every line of [base, base+bytes) present (cache pre-warming).
  void warm(Addr base, std::uint64_t bytes) {
    const std::uint64_t lines =
        std::min<std::uint64_t>(bytes / line_bytes_ + 1, tags_.size());
    for (std::uint64_t i = 0; i < lines; ++i) {
      const Addr line = base / line_bytes_ + i;
      Addr& slot = tags_[line % tags_.size()];
      if (slot == kNoAddr) ++valid_;
      slot = line;
    }
  }

  std::uint64_t valid_lines() const { return valid_; }

 private:
  std::uint64_t line_bytes_;
  std::vector<Addr> tags_;
  std::uint64_t valid_ = 0;
};

/// Per-interval op classification counters.
struct IntervalCounts {
  std::uint64_t ops = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t serializing = 0;
  std::uint64_t l1_load_misses = 0;
  std::uint64_t l2_misses = 0;
  double dep_sum = 0.0;
  std::uint64_t dep_count = 0;

  void reset() { *this = IntervalCounts{}; }
};

/// Cycle-component accumulators (for the "<system>.fast.*" metric subtree).
struct CycleBreakdown {
  double base = 0.0;
  double mispredict = 0.0;
  double serialize = 0.0;
  double l1_miss = 0.0;
  double l2_miss = 0.0;
  double overhead = 0.0;  ///< load checking + checkpoint captures
  double error = 0.0;
  std::uint64_t intervals = 0;
};

}  // namespace

IntervalModel::IntervalModel(const IntervalSpec& spec,
                             const cpu::CoreConfig& core,
                             const mem::MemConfig& mem, unsigned num_threads,
                             double ser_per_inst, std::uint64_t seed,
                             const workload::InstStream& stream)
    : spec_(spec), core_(core), mem_(mem),
      num_threads_(num_threads ? num_threads : 1), ser_per_inst_(ser_per_inst),
      seed_(seed) {
  streams_.reserve(num_threads_);
  for (unsigned t = 0; t < num_threads_; ++t) streams_.push_back(stream.clone());
}

IntervalModel::IntervalModel(
    const IntervalSpec& spec, const cpu::CoreConfig& core,
    const mem::MemConfig& mem, unsigned num_threads, double ser_per_inst,
    std::uint64_t seed, const std::vector<const workload::InstStream*>& streams)
    : spec_(spec), core_(core), mem_(mem),
      num_threads_(num_threads ? num_threads : 1), ser_per_inst_(ser_per_inst),
      seed_(seed) {
  if (streams.size() != num_threads_) {
    throw std::invalid_argument(
        "IntervalModel: streams.size() must equal num_threads");
  }
  streams_.reserve(streams.size());
  for (const auto* s : streams) streams_.push_back(s->clone());
}

void IntervalModel::set_observability(obs::MetricsRegistry* metrics,
                                      obs::TraceSink* /*trace*/) {
  metrics_ = metrics;
}

RunResult IntervalModel::run(Cycle max_cycles) { return estimate(max_cycles); }

RunResult IntervalModel::estimate(Cycle max_cycles) {
  RunResult r;
  r.system = spec_.system;
  r.approximate = true;

  std::vector<std::uint64_t> lengths;
  lengths.reserve(streams_.size());
  for (const auto& s : streams_) lengths.push_back(s->length());
  r.thread_instructions = lengths;
  r.instructions = *std::max_element(lengths.begin(), lengths.end());

  // Arrival schedules: drawn per thread in construction order from an RNG
  // seeded exactly like the detailed tier's, so positions (and therefore
  // errors_injected) match the cycle-accurate run bit for bit. Struck-core
  // draws follow afterwards and are NOT order-identical to the detailed
  // tier (it interleaves them in cycle order) — documented approximate.
  Rng rng(seed_);
  std::vector<std::vector<SeqNum>> arrivals(streams_.size());
  if (spec_.inject_errors) {
    for (std::size_t t = 0; t < streams_.size(); ++t) {
      arrivals[t] = fault::schedule_arrivals(ser_per_inst_, lengths[t], rng);
    }
  }

  // The shared L2 filter sees every thread's misses; pre-warmed with each
  // workload's declared working set, matching the detailed tier's warm-up.
  LineFilter l2(mem_.l2.size_bytes, mem_.l2.line_bytes);
  for (const auto& s : streams_) {
    if (const auto region = s->warm_region()) l2.warm(region->base, region->bytes);
  }

  const double issue_width = std::max<double>(1.0, core_.issue_width);
  const double rob = std::max<double>(1.0, core_.rob_entries);
  const double mshrs = std::max<double>(1.0, mem_.l1d.mshrs);

  CycleBreakdown breakdown;
  std::vector<double> thread_cycles(streams_.size(), 0.0);

  for (std::size_t t = 0; t < streams_.size(); ++t) {
    workload::InstStream& stream = *streams_[t];
    stream.reset();
    LineFilter l1d(mem_.l1d.size_bytes, mem_.l1d.line_bytes);
    cpu::GsharePredictor bpred;

    IntervalCounts iv;
    cpu::CoreStats stats;
    double cycles = 0.0;
    std::uint64_t ops_done = 0;
    std::size_t next_arrival = 0;

    const auto close_interval = [&] {
      if (iv.ops == 0) return;
      // Effective dispatch width: the measured dependence distance bounds
      // how many independent ops the window exposes per cycle.
      const double avg_dep =
          iv.dep_count ? iv.dep_sum / static_cast<double>(iv.dep_count)
                       : issue_width;
      const double eff_width = std::clamp(avg_dep, 1.0, issue_width);
      const double base = static_cast<double>(iv.ops) / eff_width;
      const double mispredict =
          static_cast<double>(iv.mispredicts) *
          static_cast<double>(core_.mispredict_penalty);
      const double serialize =
          static_cast<double>(iv.serializing) *
          static_cast<double>(core_.serialize_fetch_penalty +
                              spec_.serialize_sync_cycles);
      const double l1_miss = static_cast<double>(iv.l1_load_misses) *
                             static_cast<double>(mem_.l2.hit_latency);
      // Memory-level parallelism: a window of `rob` ops with dependence
      // distance `avg_dep` overlaps roughly rob / (2 * avg_dep) misses,
      // bounded by the MSHR count.
      const double mlp =
          std::clamp(rob / (2.0 * std::max(avg_dep, 1.0)), 1.0, mshrs);
      const double l2_miss = static_cast<double>(iv.l2_misses) *
                             static_cast<double>(mem_.dram_latency) / mlp;
      // Steady per-op overheads: lockstep's load checker delays issue but
      // overlaps across the width.
      const double overhead =
          static_cast<double>(iv.loads) *
          static_cast<double>(spec_.load_check_latency) / issue_width;

      cycles += base + mispredict + serialize + l1_miss + l2_miss + overhead;
      breakdown.base += base;
      breakdown.mispredict += mispredict;
      breakdown.serialize += serialize;
      breakdown.l1_miss += l1_miss;
      breakdown.l2_miss += l2_miss;
      breakdown.overhead += overhead;
      ++breakdown.intervals;
      iv.reset();
    };

    workload::DynOp op;
    std::uint64_t next_checkpoint = spec_.checkpoint_interval;
    while (stream.next(&op)) {
      ++iv.ops;
      SeqNum dep = kNoSeq;
      for (const SeqNum src : op.src) {
        if (src != kNoSeq && op.seq > src) {
          dep = std::min(dep, op.seq - src);
        }
      }
      if (dep != kNoSeq) {
        iv.dep_sum += static_cast<double>(dep);
        ++iv.dep_count;
      }
      if (op.is_load()) {
        ++iv.loads;
        ++stats.loads;
        if (op.mem_addr != kNoAddr && !l1d.access(op.mem_addr)) {
          ++iv.l1_load_misses;
          if (!l2.access(op.mem_addr)) ++iv.l2_misses;
        }
      } else if (op.is_store()) {
        ++iv.stores;
        ++stats.stores;
        // Stores allocate in the filters but are buffered off the commit
        // path in every architecture — no direct latency charge.
        if (op.mem_addr != kNoAddr && !l1d.access(op.mem_addr)) {
          l2.access(op.mem_addr);
        }
      } else if (op.is_branch()) {
        ++iv.branches;
        ++stats.branches;
        const bool wrong = op.has_mispredict_hint
                               ? op.mispredict_hint
                               : bpred.mispredicted(op.pc, op.taken);
        if (wrong) {
          ++iv.mispredicts;
          ++stats.mispredicts;
        }
      } else if (op.is_serializing()) {
        ++iv.serializing;
        ++stats.serializing;
      }

      ++ops_done;
      if (iv.ops >= kIntervalOps) close_interval();

      // DMR checkpointing: both cores stall to capture at every epoch
      // boundary.
      if (spec_.checkpoint_interval != 0 && ops_done >= next_checkpoint) {
        close_interval();
        cycles += static_cast<double>(spec_.checkpoint_cycles);
        breakdown.overhead += static_cast<double>(spec_.checkpoint_cycles);
        next_checkpoint += spec_.checkpoint_interval;
      }

      // Error arrivals strike when committed progress crosses the next
      // scheduled position — the same consumption rule as ArrivalCursor.
      while (next_arrival < arrivals[t].size() &&
             ops_done >= arrivals[t][next_arrival]) {
        close_interval();
        const SeqNum position = arrivals[t][next_arrival++];
        const auto struck = static_cast<unsigned>(
            spec_.group_size > 1 ? rng.below(spec_.group_size) : 0);
        Cycle cost = spec_.error_penalty;
        double charged = 0.0;
        if (spec_.error_rollback) {
          // Squash/restore penalty plus re-execution of (on average) half
          // the rollback window at the running CPI.
          const double cpi =
              ops_done ? cycles / static_cast<double>(ops_done) : 1.0;
          charged = static_cast<double>(cost) +
                    static_cast<double>(spec_.rollback_window) / 2.0 * cpi;
        } else {
          cost += l1d.valid_lines() * spec_.l1_copy_line_cycles;
          charged = static_cast<double>(cost);
        }
        cycles += charged;
        breakdown.error += charged;
        r.error_log.push_back({.cycle = static_cast<Cycle>(cycles),
                               .position = position,
                               .thread = static_cast<unsigned>(t),
                               .struck_core = struck,
                               .cost = cost,
                               .rollback = spec_.error_rollback});
        ++r.errors_injected;
        if (spec_.error_rollback) {
          ++r.rollbacks;
        } else {
          ++r.recoveries;
        }
        r.recovery_cycles_total += cost;
      }

      if (cycles >= static_cast<double>(max_cycles)) break;
    }
    close_interval();
    cycles = std::min(cycles, static_cast<double>(max_cycles));

    stats.cycles = static_cast<Cycle>(cycles);
    stats.committed = ops_done;
    thread_cycles[t] = cycles;

    // Every core of the redundancy group retires the whole stream; the
    // group-major CoreStats layout matches the detailed tier's.
    for (unsigned side = 0; side < spec_.group_size; ++side) {
      r.core_stats.push_back(stats);
    }
    // Reunion: every serializing instruction forces one cross-core
    // fingerprint sync (the counter the detailed tier reports).
    if (spec_.serialize_sync_cycles != 0) {
      r.fingerprint_syncs += stats.serializing;
    }
  }

  r.cycles = static_cast<Cycle>(
      *std::max_element(thread_cycles.begin(), thread_cycles.end()));

  // Chronological error log (the detailed tier interleaves threads by
  // cycle; the fast tier walks threads sequentially, so re-sort).
  std::stable_sort(r.error_log.begin(), r.error_log.end(),
                   [](const ErrorEvent& a, const ErrorEvent& b) {
                     if (a.cycle != b.cycle) return a.cycle < b.cycle;
                     return a.thread < b.thread;
                   });

  if (metrics_ != nullptr) {
    const std::string p = spec_.system + ".fast.";
    const auto put = [&](const char* key, double v) {
      metrics_->set_counter(p + key,
                            static_cast<std::uint64_t>(std::llround(v)));
    };
    metrics_->set_counter(p + "intervals", breakdown.intervals);
    put("cycles.base", breakdown.base);
    put("cycles.mispredict", breakdown.mispredict);
    put("cycles.serialize", breakdown.serialize);
    put("cycles.l1_miss", breakdown.l1_miss);
    put("cycles.l2_miss", breakdown.l2_miss);
    put("cycles.overhead", breakdown.overhead);
    put("cycles.error", breakdown.error);
    metrics_->set_counter(p + "errors", r.errors_injected);
  }

  return r;
}

}  // namespace unsync::engine
