// Shared error-injection plumbing for system policies.
//
// Every redundant system consumes a per-group Poisson arrival schedule the
// same way: an error "strikes" when program progress (the leading core's
// commit watermark) crosses the next scheduled position, and handling it
// bumps the same RunResult counters and emits the same trace pair
// (kErrorInjection + kRecovery/kRollback). ArrivalCursor and record_error
// hoist that pattern out of the per-system duplicates; the systems keep
// only what genuinely differs — recovery-cost models and core
// forward/rollback mechanics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/serializer.hpp"
#include "common/types.hpp"
#include "engine/run_result.hpp"
#include "obs/trace.hpp"

namespace unsync::engine {

/// One group's ordered error-arrival schedule plus its consumption cursor.
/// The schedule itself is re-derived deterministically at construction from
/// (seed, ser_per_inst, stream length); only the cursor is checkpoint state.
struct ArrivalCursor {
  std::vector<SeqNum> positions;  ///< ascending commit positions
  std::size_t next = 0;

  /// True when the next scheduled strike has been reached by `progress`.
  bool pending(SeqNum progress) const {
    return next < positions.size() && progress >= positions[next];
  }

  /// Consumes and returns the next arrival position.
  SeqNum take() { return positions[next++]; }

  void save_state(ckpt::Serializer& s) const {
    s.u64(positions.size());
    s.u64(next);
  }

  /// `system` names the restoring system in the mismatch error.
  void load_state(ckpt::Deserializer& d, const char* system) {
    if (d.u64() != positions.size()) {
      throw ckpt::CkptError(std::string(system) +
                            " error-arrival schedule mismatch");
    }
    next = d.u64();
  }
};

/// Full-schedule serialisation for the prefix-sharing fault channel. Unlike
/// ArrivalCursor::save_state (which pins only the schedule length plus the
/// cursor, because construction re-derives the positions), this round-trips
/// the positions themselves — so a schedule sampled under one configuration
/// can be installed into a system constructed with a *different* (golden,
/// ser=0) configuration whose own schedule is empty.
inline void save_arrival_schedule(ckpt::Serializer& s,
                                  const ArrivalCursor& c) {
  s.u64(c.positions.size());
  for (const SeqNum p : c.positions) s.u64(p);
  s.u64(c.next);
}

inline void load_arrival_schedule(ckpt::Deserializer& d, ArrivalCursor& c) {
  c.positions.resize(d.u64());
  for (SeqNum& p : c.positions) p = d.u64();
  c.next = d.u64();
  if (c.next > c.positions.size()) {
    throw ckpt::CkptError("arrival-schedule cursor out of range");
  }
}

/// Applies the common accounting for one handled error: result counters
/// (recoveries vs rollbacks keyed on e.rollback), the chronological error
/// log, and the kErrorInjection + kRecovery/kRollback trace pair.
/// `resume_seq` is the position execution resumes from (the strike position
/// for forward recovery, the rollback target for re-execution schemes).
inline void record_error(RunResult& acc, const obs::Tracer& tracer,
                         const ErrorEvent& e, SeqNum resume_seq) {
  ++acc.errors_injected;
  if (e.rollback) {
    ++acc.rollbacks;
  } else {
    ++acc.recoveries;
  }
  acc.recovery_cycles_total += e.cost;
  acc.error_log.push_back(e);
  if (tracer.enabled()) {
    tracer.emit({.kind = obs::TraceKind::kErrorInjection,
                 .cycle = e.cycle,
                 .thread = e.thread,
                 .core = e.struck_core,
                 .seq = e.position,
                 .addr = 0,
                 .value = 0});
    tracer.emit({.kind = e.rollback ? obs::TraceKind::kRollback
                                    : obs::TraceKind::kRecovery,
                 .cycle = e.cycle,
                 .thread = e.thread,
                 .core = e.struck_core,
                 .seq = resume_seq,
                 .addr = 0,
                 .value = e.cost});
  }
}

}  // namespace unsync::engine
