// Workload-stream helpers shared by every system constructor (hoisted from
// per-system duplicates in core/): stream replication, cache pre-warming
// and per-thread length bookkeeping.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/hierarchy.hpp"
#include "workload/dyn_op.hpp"

namespace unsync::engine {

/// Homogeneous convenience: the same stream for every thread (the paper's
/// setup — every core pair runs the benchmark under test).
inline std::vector<const workload::InstStream*> replicate(
    const workload::InstStream& stream, unsigned threads) {
  return std::vector<const workload::InstStream*>(threads, &stream);
}

/// Pre-warms the L2 / I-caches from every distinct stream's advertised
/// regions (standard warm-up methodology; see docs/SIMULATOR.md).
inline void prewarm_from(mem::MemoryHierarchy& memory,
                         const std::vector<const workload::InstStream*>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) seen |= v[j] == v[i];
    if (seen) continue;
    if (const auto warm = v[i]->warm_region()) {
      memory.prewarm_l2(warm->base, warm->bytes);
    }
    if (const auto code = v[i]->code_region()) {
      memory.prewarm_icaches(code->base, code->bytes);
    }
  }
}

inline std::vector<std::uint64_t> lengths_of(
    const std::vector<const workload::InstStream*>& v) {
  std::vector<std::uint64_t> out;
  out.reserve(v.size());
  for (const auto* s : v) out.push_back(s->length());
  return out;
}

inline std::uint64_t max_length(const std::vector<std::uint64_t>& lengths) {
  std::uint64_t m = 0;
  for (const auto l : lengths) m = l > m ? l : m;
  return m;
}

}  // namespace unsync::engine
