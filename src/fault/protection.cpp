#include "fault/protection.hpp"

namespace unsync::fault {

const char* name_of(Structure s) {
  switch (s) {
    case Structure::kProgramCounter: return "program_counter";
    case Structure::kPipelineRegisters: return "pipeline_registers";
    case Structure::kRegisterFile: return "register_file";
    case Structure::kReorderBuffer: return "reorder_buffer";
    case Structure::kIssueQueue: return "issue_queue";
    case Structure::kLoadStoreQueue: return "load_store_queue";
    case Structure::kTlb: return "tlb";
    case Structure::kL1Data: return "l1_data";
    case Structure::kCommunicationBuffer: return "communication_buffer";
    case Structure::kCount: break;
  }
  return "?";
}

const char* name_of(Mechanism m) {
  switch (m) {
    case Mechanism::kNone: return "none";
    case Mechanism::kParity1: return "parity-1";
    case Mechanism::kDmr: return "DMR";
    case Mechanism::kSecded: return "SECDED";
    case Mechanism::kTmr: return "TMR";
    case Mechanism::kFingerprint: return "fingerprint";
  }
  return "?";
}

const std::vector<StructureInfo>& structure_inventory() {
  // Bit counts for an Alpha-21264-class 4-wide core with Table I structure
  // sizes: 64-entry IQ, 128-entry ROB, 32+32 LSQ, 48+64 entry TLBs,
  // 32 KiB L1-D. Pipeline registers: ~5 stages x 4-wide x ~200 bits/slot.
  static const std::vector<StructureInfo> inv = {
      {Structure::kProgramCounter, 64, Residency::kEveryCycle},
      {Structure::kPipelineRegisters, 4000, Residency::kEveryCycle},
      {Structure::kRegisterFile, 2 * 32 * 64, Residency::kStorage},
      {Structure::kReorderBuffer, 128 * 80, Residency::kStorage},
      {Structure::kIssueQueue, 64 * 64, Residency::kStorage},
      {Structure::kLoadStoreQueue, 64 * 96, Residency::kStorage},
      {Structure::kTlb, (48 + 64) * 96, Residency::kStorage},
      {Structure::kL1Data, 32 * 1024 * 8, Residency::kStorage},
      {Structure::kCommunicationBuffer, 17 * 66, Residency::kStorage},
  };
  return inv;
}

double ProtectionPlan::detection_coverage(Structure s) const {
  return detection_coverage(s, 1);
}

double mechanism_detection_coverage(Mechanism m, int flips) {
  if (flips <= 0) return 1.0;
  switch (m) {
    case Mechanism::kNone:
      return 0.0;
    case Mechanism::kParity1:
      // Parity sees the error's weight: blind to even-weight errors.
      return flips % 2 == 1 ? 1.0 : 0.0;
    case Mechanism::kDmr:
    case Mechanism::kTmr:
      // Any divergence between copies is visible regardless of weight.
      return 1.0;
    case Mechanism::kSecded:
      // Corrects 1, detects 2; 3+ flips may alias to a valid or
      // miscorrected codeword.
      return flips <= 2 ? 1.0 : 0.5;
    case Mechanism::kFingerprint:
      // A flip is caught only if it perturbs a value that flows into the
      // fingerprint hash before commit; flips in already-committed or
      // control-only state escape. The 16-bit CRC also aliases 2^-16 of
      // corruptions. Net detection inside the covered window:
      return 1.0 - 1.0 / 65536.0;
  }
  return 0.0;
}

double ProtectionPlan::detection_coverage(Structure s, int flips) const {
  return mechanism_detection_coverage(of(s), flips);
}

bool mechanism_corrects_in_place(Mechanism m, int flips) {
  switch (m) {
    case Mechanism::kSecded:
      return flips == 1;
    case Mechanism::kTmr:
      // All flips land in one copy (a particle strike is spatially local);
      // the other two outvote it.
      return true;
    default:
      return false;
  }
}

bool ProtectionPlan::corrects_in_place(Structure s, int flips) const {
  return mechanism_corrects_in_place(of(s), flips);
}

std::uint64_t ProtectionPlan::covered_bits() const {
  std::uint64_t covered = 0;
  for (const auto& s : structure_inventory()) {
    if (of(s.id) != Mechanism::kNone) covered += s.bits;
  }
  return covered;
}

std::uint64_t ProtectionPlan::total_bits() const {
  std::uint64_t total = 0;
  for (const auto& s : structure_inventory()) total += s.bits;
  return total;
}

double ProtectionPlan::roec() const {
  double covered = 0;
  for (const auto& s : structure_inventory()) {
    covered += static_cast<double>(s.bits) * detection_coverage(s.id);
  }
  return covered / static_cast<double>(total_bits());
}

ProtectionPlan unsync_plan() {
  ProtectionPlan p;
  p.name = "unsync";
  // Rule (§III-B.1): parity where the 1-cycle check lag is tolerable,
  // DMR where the element is touched every cycle.
  for (const auto& s : structure_inventory()) {
    p.set(s.id, s.residency == Residency::kEveryCycle ? Mechanism::kDmr
                                                      : Mechanism::kParity1);
  }
  return p;
}

ProtectionPlan reunion_plan() {
  ProtectionPlan p;
  p.name = "reunion";
  p.set(Structure::kProgramCounter, Mechanism::kFingerprint);
  p.set(Structure::kPipelineRegisters, Mechanism::kFingerprint);
  p.set(Structure::kReorderBuffer, Mechanism::kFingerprint);
  p.set(Structure::kIssueQueue, Mechanism::kFingerprint);
  p.set(Structure::kLoadStoreQueue, Mechanism::kFingerprint);
  // Post-commit architectural state and the TLB are outside the
  // fingerprint's reach (paper §VI-D).
  p.set(Structure::kRegisterFile, Mechanism::kNone);
  p.set(Structure::kTlb, Mechanism::kNone);
  // Reunion assumes an ECC-protected L1 (not part of its own ROEC, but
  // protected — we model the mechanism that is actually present).
  p.set(Structure::kL1Data, Mechanism::kSecded);
  // CHECK-stage buffer holds pre-commit values inside the fingerprint window.
  p.set(Structure::kCommunicationBuffer, Mechanism::kFingerprint);
  return p;
}

ProtectionPlan baseline_plan() {
  ProtectionPlan p;
  p.name = "baseline";
  for (const auto& s : structure_inventory()) p.set(s.id, Mechanism::kNone);
  return p;
}

ProtectionPlan unsync_hardened_plan() {
  ProtectionPlan p = unsync_plan();
  p.name = "unsync-hardened";
  // §VIII: "hardened pipeline registers, efficient register file
  // protection, multi-bit correction for cache blocks".
  p.set(Structure::kProgramCounter, Mechanism::kTmr);
  p.set(Structure::kPipelineRegisters, Mechanism::kTmr);
  p.set(Structure::kRegisterFile, Mechanism::kSecded);
  p.set(Structure::kL1Data, Mechanism::kSecded);
  return p;
}

}  // namespace unsync::fault
