// Soft-error-rate model.
//
// Reproduces the paper's §VI-C methodology: FIT rates at 180 nm (1000 FIT)
// and 130 nm (100,000 FIT) define an exponential per-node ratio which is
// extrapolated to 90 nm; beyond 65 nm the rate saturates (iRoc data, as the
// paper notes). The paper's quoted operating point — 2.89e-17 errors per
// instruction at 90 nm — and its break-even point (1.29e-3) are exposed as
// named constants for the benches.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace unsync::fault {

/// The paper's per-instruction SER at the 90 nm node.
inline constexpr double kPaperSerPerInst90nm = 2.89e-17;

/// The hypothetical break-even SER at which UnSync and Reunion deliver equal
/// performance (paper §VI-C).
inline constexpr double kPaperBreakEvenSer = 1.29e-3;

/// FIT (failures per 10^9 device-hours) for a technology node, using the
/// paper's exponential interpolation anchored at 180 nm / 130 nm and
/// saturating at the 65 nm value for smaller nodes.
double fit_for_node(double nm);

/// Converts a FIT rate into a per-cycle error probability at `hz`.
double fit_to_per_cycle(double fit, double hz);

/// Converts a FIT rate into a per-instruction error probability at `hz` and
/// a given average IPC.
double fit_to_per_inst(double fit, double hz, double ipc);

/// Poisson error-arrival process over an instruction stream: given a
/// per-instruction error probability, draws the ordered sequence numbers at
/// which errors strike within [0, total_insts).
std::vector<SeqNum> sample_error_arrivals(double ser_per_inst,
                                          std::uint64_t total_insts, Rng& rng);

/// The canonical per-thread arrival-schedule setup every redundant system
/// uses (UnSync, Reunion, lockstep, DMR-checkpoint): samples the ordered
/// strike positions for one thread's stream, returning an empty schedule —
/// with the RNG provably untouched, so draw sequences stay reproducible
/// across error-free and error-injecting configurations — when the error
/// process is off (ser_per_inst <= 0) or the stream is empty.
std::vector<SeqNum> schedule_arrivals(double ser_per_inst,
                                      std::uint64_t stream_insts, Rng& rng);

/// Expected number of errors for a run (for tests / sanity output).
inline double expected_errors(double ser_per_inst, std::uint64_t total_insts) {
  return ser_per_inst * static_cast<double>(total_insts);
}

}  // namespace unsync::fault
