// Bit-level models of the detection/correction circuits the architectures
// deploy: even parity, dual- and triple-modular redundancy, and a real
// Hamming SECDED(72,64) codec — the "8 check bits for every 64 bit data
// chunk" the paper prices into Reunion's L1 (§VI-A.1).
//
// These are functional models of the circuits whose *cost* lives in
// src/hwmodel and whose *coverage* the protection plans assert; the tests
// exhaustively verify the detection guarantees the plans rely on
// (parity detects all odd flips, SECDED corrects 1 and detects 2).
#pragma once

#include <cstdint>

namespace unsync::fault {

// ---- 1-bit even parity -------------------------------------------------------

/// Even-parity bit over a 64-bit word (XOR reduction).
bool parity_bit(std::uint64_t word);

/// True when (word, stored_parity) is consistent — i.e. no odd-weight error.
bool parity_check(std::uint64_t word, bool stored_parity);

// ---- Dual modular redundancy -------------------------------------------------

/// DMR detection: a mismatch between the two copies flags an error; which
/// copy is wrong is unknown (detect-only, §III-B.1).
bool dmr_mismatch(std::uint64_t copy_a, std::uint64_t copy_b);

// ---- Triple modular redundancy -----------------------------------------------

struct TmrResult {
  std::uint64_t voted = 0;
  bool corrected = false;     ///< exactly one copy disagreed (outvoted)
  bool uncorrectable = false; ///< all three copies differ pairwise
};

/// Bitwise majority vote across three copies.
TmrResult tmr_vote(std::uint64_t a, std::uint64_t b, std::uint64_t c);

// ---- Hamming SECDED (72,64) ----------------------------------------------------

/// Codeword = 64 data bits + 7 Hamming check bits + 1 overall parity bit.
struct SecdedWord {
  std::uint64_t data = 0;
  std::uint8_t check = 0;  ///< bits 0..6: Hamming checks; bit 7: overall parity
};

enum class SecdedStatus : std::uint8_t {
  kClean,          ///< no error
  kCorrectedData,  ///< single-bit error in the data, corrected
  kCorrectedCheck, ///< single-bit error in a check bit, corrected
  kDoubleError,    ///< two-bit error: detected, not correctable
};

SecdedWord secded_encode(std::uint64_t data);

struct SecdedDecode {
  std::uint64_t data = 0;  ///< corrected data (valid unless kDoubleError)
  SecdedStatus status = SecdedStatus::kClean;
};

SecdedDecode secded_decode(const SecdedWord& word);

/// Test helper: returns `word` with codeword bit `bit` flipped. Bits 0..63
/// address the data; bits 64..71 address the stored check byte.
SecdedWord secded_flip(const SecdedWord& word, unsigned bit);

}  // namespace unsync::fault
