// Monte-Carlo single-bit fault injection on the golden functional model.
//
// This is the *correctness* side of the evaluation (the timing side charges
// recovery cycles in src/core): inject a bit flip at a random dynamic
// instruction into a chosen structure, apply the protection plan's
// detection model, perform the architecture's recovery action, and classify
// the outcome against a golden run.
//
// It also reproduces the paper's Figure-2 argument experimentally: with a
// write-back L1, a detected flip in a dirty line has no clean copy anywhere
// and is unrecoverable; with UnSync's write-through L1 the line is simply
// invalidated and refetched.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fault/avf.hpp"
#include "fault/protection.hpp"
#include "isa/assembler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace unsync::fault {

enum class FaultSite : std::uint8_t {
  kRegisterFile,
  kFpRegisterFile,
  kProgramCounter,
  kMemoryData,  ///< a previously-written (cache-resident) data word

  // Uncore sites: the strike lands in a shared structure while it holds (or
  // indexes) a previously-written word. Detection follows the per-structure
  // UncorePlan rather than the core ProtectionPlan; see docs/FAULTS.md.
  kBusQueue,          ///< request queued at the L1-L2 bus
  kMshrEntry,         ///< in-flight miss tracked by an MSHR
  kWriteBufferEntry,  ///< committed store waiting in a write/communication
                      ///< buffer (UnSync CB) — a *write-path* structure
  kCacheTag,          ///< tag+state array entry of a resident line
  kTlbEntry,          ///< cached translation covering the word's page
  kDramQueue,         ///< request queued at the DRAM channel
  kCheckLogEntry,     ///< leader→checker verification-log entry (hetero);
                      ///< the leader's clean copy makes detection recoverable
};

const char* name_of(FaultSite s);

/// True for the sites whose detection is governed by the UncorePlan.
bool is_uncore(FaultSite s);

/// The UncorePlan structure a given uncore site strikes (callable only for
/// is_uncore() sites).
UncoreStructure uncore_structure_of(FaultSite s);

/// The uncore sites, in enum order — convenience for campaign configs.
std::vector<FaultSite> uncore_fault_sites();

enum class Outcome : std::uint8_t {
  kMasked,                 ///< fault never affected the result
  kCorrectedInPlace,       ///< the mechanism repaired it (SECDED/TMR, §VIII)
  kDetectedRecovered,      ///< detected; recovery restored correct execution
  kDetectedUnrecoverable,  ///< detected but no clean copy existed (Fig. 2)
  kSilentCorruption,       ///< undetected and the result differs (SDC)
};

const char* name_of(Outcome o);

struct InjectionConfig {
  std::uint64_t trials = 200;
  std::uint64_t seed = 1;
  std::uint64_t max_insts = 200000;
  /// UnSync requires write-through (paper §III-C.1); flipping this to
  /// false reproduces the write-back unrecoverability argument.
  bool l1_write_through = true;
  /// Bits flipped per strike, in adjacent positions. 1 models classic SEUs;
  /// 2 models the multi-bit upsets the paper's §VIII futures target (1-bit
  /// parity is blind to them).
  int flips_per_fault = 1;
  std::vector<FaultSite> sites = {FaultSite::kRegisterFile,
                                  FaultSite::kFpRegisterFile,
                                  FaultSite::kProgramCounter,
                                  FaultSite::kMemoryData};
  /// Per-structure protection for the uncore sites (defaults to none — every
  /// uncore strike is undetected). Ignored by the four core sites.
  UncorePlan uncore;
  /// The write buffer is duplicated across redundant cores (UnSync keeps one
  /// CB per core of a group, §III-A): a detected write-buffer strike is then
  /// recovered by overwriting from the error-free copy instead of being
  /// unrecoverable.
  bool redundant_write_buffer = false;
};

struct TrialRecord {
  FaultSite site;
  SeqNum injected_at;
  Outcome outcome;
};

struct CampaignResult {
  std::uint64_t masked = 0;
  std::uint64_t corrected_in_place = 0;
  std::uint64_t recovered = 0;
  std::uint64_t unrecoverable = 0;
  std::uint64_t sdc = 0;
  /// Trials where recovery was attempted but the final state still diverged
  /// from golden — must be zero; a non-zero value is a model bug.
  std::uint64_t recovery_failures = 0;
  std::vector<TrialRecord> trials;

  std::uint64_t total() const {
    return masked + corrected_in_place + recovered + unrecoverable + sdc;
  }
  double sdc_rate() const {
    return total() ? static_cast<double>(sdc) / static_cast<double>(total())
                   : 0.0;
  }
};

/// Runs an injection campaign for `program` under `plan`.
///
/// When `metrics` is non-null, outcome and per-site trial counters are
/// published under "fault.*" after the campaign. When `trace` is non-null,
/// one kErrorInjection record is emitted per trial (cycle = trial index,
/// core = FaultSite value, seq = injection point, value = Outcome value).
CampaignResult run_campaign(const isa::Program& program,
                            const ProtectionPlan& plan,
                            const InjectionConfig& config,
                            obs::MetricsRegistry* metrics = nullptr,
                            obs::TraceSink* trace = nullptr);

}  // namespace unsync::fault
