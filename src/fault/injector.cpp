#include "fault/injector.hpp"

#include <algorithm>
#include <cassert>

#include "isa/functional_sim.hpp"

namespace unsync::fault {

const char* name_of(FaultSite s) {
  switch (s) {
    case FaultSite::kRegisterFile: return "register_file";
    case FaultSite::kFpRegisterFile: return "fp_register_file";
    case FaultSite::kProgramCounter: return "program_counter";
    case FaultSite::kMemoryData: return "memory_data";
    case FaultSite::kBusQueue: return "bus_queue";
    case FaultSite::kMshrEntry: return "mshr";
    case FaultSite::kWriteBufferEntry: return "write_buffer";
    case FaultSite::kCacheTag: return "cache_tag";
    case FaultSite::kTlbEntry: return "tlb";
    case FaultSite::kDramQueue: return "dram_queue";
    case FaultSite::kCheckLogEntry: return "check_log";
  }
  return "?";
}

bool is_uncore(FaultSite s) {
  return static_cast<std::uint8_t>(s) >=
         static_cast<std::uint8_t>(FaultSite::kBusQueue);
}

UncoreStructure uncore_structure_of(FaultSite s) {
  switch (s) {
    case FaultSite::kBusQueue: return UncoreStructure::kBusQueue;
    case FaultSite::kMshrEntry: return UncoreStructure::kMshr;
    case FaultSite::kWriteBufferEntry: return UncoreStructure::kWriteBuffer;
    case FaultSite::kCacheTag: return UncoreStructure::kCacheTag;
    case FaultSite::kTlbEntry: return UncoreStructure::kTlb;
    case FaultSite::kDramQueue: return UncoreStructure::kDramQueue;
    case FaultSite::kCheckLogEntry: return UncoreStructure::kCheckLog;
    default: break;
  }
  assert(false && "not an uncore fault site");
  return UncoreStructure::kBusQueue;
}

std::vector<FaultSite> uncore_fault_sites() {
  return {FaultSite::kBusQueue,       FaultSite::kMshrEntry,
          FaultSite::kWriteBufferEntry, FaultSite::kCacheTag,
          FaultSite::kTlbEntry,       FaultSite::kDramQueue,
          FaultSite::kCheckLogEntry};
}

const char* name_of(Outcome o) {
  switch (o) {
    case Outcome::kMasked: return "masked";
    case Outcome::kCorrectedInPlace: return "corrected_in_place";
    case Outcome::kDetectedRecovered: return "detected_recovered";
    case Outcome::kDetectedUnrecoverable: return "detected_unrecoverable";
    case Outcome::kSilentCorruption: return "silent_corruption";
  }
  return "?";
}

namespace {

struct GoldenRun {
  isa::ArchState final_state;
  isa::SparseMemory final_memory;
  std::vector<std::uint64_t> output;
  std::uint64_t retired = 0;
};

GoldenRun run_golden(const isa::Program& program, std::uint64_t max_insts) {
  isa::FunctionalSim sim(program);
  sim.run(max_insts);
  return {sim.state(), sim.memory(), sim.output(), sim.retired()};
}

Structure structure_of(FaultSite site) {
  switch (site) {
    case FaultSite::kRegisterFile:
    case FaultSite::kFpRegisterFile:
      return Structure::kRegisterFile;
    case FaultSite::kProgramCounter:
      return Structure::kProgramCounter;
    case FaultSite::kMemoryData:
      return Structure::kL1Data;
    default:
      break;  // uncore sites use uncore_structure_of()
  }
  return Structure::kRegisterFile;
}

// Silent corruption is judged on program-visible state: the output channel
// and memory. A flip that only lingers in a dead register is architecturally
// masked (comparing whole register files would over-count SDC).
bool matches_golden(const isa::FunctionalSim& sim, const GoldenRun& golden) {
  return sim.output() == golden.output && sim.memory() == golden.final_memory;
}

}  // namespace

CampaignResult run_campaign(const isa::Program& program,
                            const ProtectionPlan& plan,
                            const InjectionConfig& config,
                            obs::MetricsRegistry* metrics,
                            obs::TraceSink* trace) {
  assert(!config.sites.empty());
  const GoldenRun golden = run_golden(program, config.max_insts);
  assert(golden.retired > 0);

  CampaignResult result;
  Rng rng(config.seed);

  const auto record_trial = [&](std::uint64_t trial, FaultSite site,
                                SeqNum inject_at, Addr addr, Outcome outcome) {
    result.trials.push_back({site, inject_at, outcome});
    if (trace) {
      trace->record({.kind = obs::TraceKind::kErrorInjection,
                     .cycle = trial,
                     .thread = 0,
                     .core = static_cast<std::uint32_t>(site),
                     .seq = inject_at,
                     .addr = addr,
                     .value = static_cast<std::uint64_t>(outcome)});
    }
    if (metrics) {
      metrics->counter(std::string("fault.site.") + name_of(site) +
                       ".trials").inc();
    }
  };

  for (std::uint64_t trial = 0; trial < config.trials; ++trial) {
    const FaultSite site =
        config.sites[rng.below(config.sites.size())];
    const SeqNum inject_at = rng.below(golden.retired);

    isa::FunctionalSim sim(program);
    // Run to the injection point, tracking written data words so the
    // memory-data site can target a genuinely cache-resident line.
    std::vector<Addr> written;
    for (SeqNum i = 0; i < inject_at && !sim.halted(); ++i) {
      const auto step = sim.step();
      if (step.inst.is_store()) written.push_back(step.mem_addr & ~Addr{7});
    }

    // --- Inject a (possibly multi-bit) flip; remember how to undo it. ----
    const int flips = std::max(1, config.flips_per_fault);
    auto flip_mask = [&](unsigned field_bits) {
      const std::uint64_t run =
          flips >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << flips) - 1;
      const auto span = static_cast<unsigned>(flips);
      const unsigned start =
          span >= field_bits ? 0
                             : static_cast<unsigned>(
                                   rng.below(field_bits - span + 1));
      return run << start;
    };
    bool injected = true;
    bool dirty_line = false;
    Addr mem_addr = 0;
    std::uint64_t old_value = 0;
    auto& st = sim.mutable_state();
    switch (site) {
      case FaultSite::kRegisterFile: {
        const auto reg = 1 + rng.below(31);  // r0 is hardwired zero
        old_value = st.regs[reg];
        st.regs[reg] = old_value ^ flip_mask(64);
        break;
      }
      case FaultSite::kFpRegisterFile: {
        const auto reg = rng.below(32);
        old_value = st.fregs[reg];
        st.fregs[reg] = old_value ^ flip_mask(64);
        break;
      }
      case FaultSite::kProgramCounter: {
        old_value = st.pc;
        // Flip within the low 16 bits: wider flips trivially leave the
        // image and add no information.
        st.pc = old_value ^ flip_mask(16);
        break;
      }
      case FaultSite::kMemoryData:
      case FaultSite::kBusQueue:
      case FaultSite::kMshrEntry:
      case FaultSite::kWriteBufferEntry:
      case FaultSite::kCacheTag:
      case FaultSite::kTlbEntry:
      case FaultSite::kDramQueue:
      case FaultSite::kCheckLogEntry: {
        // Every memory-side strike manifests on a previously-written word:
        // the word resident in the line (kMemoryData / kCacheTag), held by
        // the in-flight structure (bus / MSHR / write buffer / DRAM queue /
        // check log), or reached through the struck translation (kTlbEntry).
        // A check-log entry is never the sole copy — the leader's
        // architectural state persists — so it takes no dirty-line hazard.
        if (written.empty()) {
          injected = false;
          break;
        }
        mem_addr = written[rng.below(written.size())];
        old_value = sim.memory().read64(mem_addr);
        // Under write-back, a written-and-resident line is dirty: the only
        // up-to-date copy is the corrupted one (paper Fig. 2). This hazard
        // applies to the line's data word and to its tag entry — a detected
        // tag error on a dirty line has also lost the sole copy.
        dirty_line = !config.l1_write_through &&
                     (site == FaultSite::kMemoryData ||
                      site == FaultSite::kCacheTag);
        sim.mutable_memory().write64(mem_addr, old_value ^ flip_mask(64));
        break;
      }
    }
    if (!injected) {
      // Nothing stored yet at this point of the run: the strike hits an
      // invalid line — architecturally masked.
      ++result.masked;
      record_trial(trial, site, inject_at, 0, Outcome::kMasked);
      continue;
    }

    // --- Detection: core sites follow the ProtectionPlan, uncore sites
    // follow the per-structure UncorePlan. ---------------------------------
    double coverage;
    bool corrects;
    if (is_uncore(site)) {
      const UncoreStructure us = uncore_structure_of(site);
      coverage = config.uncore.detection_coverage(us, flips);
      corrects = config.uncore.corrects_in_place(us, flips);
    } else {
      const Structure structure = structure_of(site);
      coverage = plan.detection_coverage(structure, flips);
      corrects = plan.corrects_in_place(structure, flips);
    }
    const bool detected = rng.chance(coverage);
    const bool in_place = detected && corrects;

    Outcome outcome;
    if (in_place) {
      // The mechanism itself repairs the word (SECDED / TMR): no pair-level
      // recovery engages at all.
      outcome = Outcome::kCorrectedInPlace;
    } else if (detected) {
      if (dirty_line) {
        // Detected on read, but the dirty line has no clean copy in L2:
        // unrecoverable (this is exactly the write-back hazard of Fig. 2).
        outcome = Outcome::kDetectedUnrecoverable;
      } else if (site == FaultSite::kWriteBufferEntry &&
                 !config.redundant_write_buffer) {
        // A write buffer is a *write-path* structure: the committed store it
        // holds exists nowhere upstream, so parity detection alone cannot
        // restore it. Only a redundant copy (UnSync's per-core CB) or an
        // in-place-correcting code saves the entry.
        outcome = Outcome::kDetectedUnrecoverable;
      } else {
        // Recovery: architectural state is re-supplied by the error-free
        // redundant core (UnSync state copy), the clean L2 copy
        // (write-through invalidate+refill), a request retry (bus / MSHR /
        // DRAM queue), a page-table walk (TLB), or the redundant write
        // buffer; performed below.
        outcome = Outcome::kDetectedRecovered;
      }
    } else {
      outcome = Outcome::kMasked;  // refined after the run completes
    }

    // Undo-the-flip recovery for the recovered / corrected paths.
    if (outcome == Outcome::kDetectedRecovered ||
        outcome == Outcome::kCorrectedInPlace) {
      switch (site) {
        case FaultSite::kRegisterFile:
        case FaultSite::kFpRegisterFile:
        case FaultSite::kProgramCounter: {
          // Restore from the redundant core's copy = exact pre-fault value.
          // We re-inject the old value by re-running from scratch to the
          // injection point: simplest exact model.
          sim = isa::FunctionalSim(program);
          for (SeqNum i = 0; i < inject_at && !sim.halted(); ++i) sim.step();
          break;
        }
        case FaultSite::kMemoryData:
        case FaultSite::kBusQueue:
        case FaultSite::kMshrEntry:
        case FaultSite::kWriteBufferEntry:
        case FaultSite::kCacheTag:
        case FaultSite::kTlbEntry:
        case FaultSite::kDramQueue:
        case FaultSite::kCheckLogEntry:
          // The clean upstream copy / redundant buffer entry / refetched
          // translation / leader re-append re-supplies the exact pre-fault
          // word.
          sim.mutable_memory().write64(mem_addr, old_value);
          break;
      }
    }

    sim.run(config.max_insts);
    const bool ok = matches_golden(sim, golden);

    if (outcome == Outcome::kCorrectedInPlace) {
      if (!ok) ++result.recovery_failures;
      ++result.corrected_in_place;
    } else if (outcome == Outcome::kDetectedRecovered) {
      if (!ok) ++result.recovery_failures;
      ++result.recovered;
    } else if (outcome == Outcome::kDetectedUnrecoverable) {
      ++result.unrecoverable;
    } else {
      outcome = ok ? Outcome::kMasked : Outcome::kSilentCorruption;
      if (ok) {
        ++result.masked;
      } else {
        ++result.sdc;
      }
    }
    record_trial(trial, site, inject_at, mem_addr, outcome);
  }

  if (metrics) {
    metrics->set_counter("fault.trials", result.total());
    metrics->set_counter("fault.outcome.masked", result.masked);
    metrics->set_counter("fault.outcome.corrected_in_place",
                         result.corrected_in_place);
    metrics->set_counter("fault.outcome.recovered", result.recovered);
    metrics->set_counter("fault.outcome.unrecoverable", result.unrecoverable);
    metrics->set_counter("fault.outcome.sdc", result.sdc);
    metrics->set_counter("fault.recovery_failures", result.recovery_failures);
    metrics->gauge("fault.sdc_rate").add(result.sdc_rate());
  }
  return result;
}

}  // namespace unsync::fault
