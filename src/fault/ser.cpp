#include "fault/ser.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace unsync::fault {

double fit_for_node(double nm) {
  assert(nm > 0);
  // Anchors from the paper: 1000 FIT @180nm, 100000 FIT @130nm. The rate
  // grows exponentially as feature size shrinks:
  //   FIT(nm) = A * exp(-k * nm),  fitted through both anchors.
  constexpr double kNm180 = 180.0, kFit180 = 1000.0;
  constexpr double kNm130 = 130.0, kFit130 = 100000.0;
  static const double k =
      std::log(kFit130 / kFit180) / (kNm180 - kNm130);  // per-nm growth
  static const double a = kFit180 * std::exp(k * kNm180);
  // Saturation beyond 65 nm (iRoc observation quoted in the paper).
  const double clamped_nm = std::max(nm, 65.0);
  return a * std::exp(-k * clamped_nm);
}

double fit_to_per_cycle(double fit, double hz) {
  // FIT = failures per 1e9 hours; hours per cycle = 1 / (3600 * hz).
  return fit / 1e9 / 3600.0 / hz;
}

double fit_to_per_inst(double fit, double hz, double ipc) {
  assert(ipc > 0);
  return fit_to_per_cycle(fit, hz) / ipc;
}

std::vector<SeqNum> sample_error_arrivals(double ser_per_inst,
                                          std::uint64_t total_insts,
                                          Rng& rng) {
  std::vector<SeqNum> arrivals;
  if (ser_per_inst <= 0.0 || total_insts == 0) return arrivals;
  // Exponential inter-arrival in instruction counts.
  double pos = 0.0;
  const double limit = static_cast<double>(total_insts);
  while (true) {
    pos += rng.exponential(ser_per_inst);
    if (pos >= limit) break;
    arrivals.push_back(static_cast<SeqNum>(pos));
  }
  return arrivals;
}

std::vector<SeqNum> schedule_arrivals(double ser_per_inst,
                                      std::uint64_t stream_insts, Rng& rng) {
  if (ser_per_inst <= 0.0 || stream_insts == 0) return {};
  return sample_error_arrivals(ser_per_inst, stream_insts, rng);
}

}  // namespace unsync::fault
