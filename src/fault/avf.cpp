#include "fault/avf.hpp"

#include <cstdlib>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace unsync::fault {

const char* name_of(UncoreStructure s) {
  switch (s) {
    case UncoreStructure::kBusQueue: return "bus_queue";
    case UncoreStructure::kMshr: return "mshr";
    case UncoreStructure::kWriteBuffer: return "write_buffer";
    case UncoreStructure::kCacheTag: return "cache_tag";
    case UncoreStructure::kTlb: return "tlb";
    case UncoreStructure::kDramQueue: return "dram_queue";
    case UncoreStructure::kCacheData: return "cache_data";
    case UncoreStructure::kCheckLog: return "check_log";
    case UncoreStructure::kCount: break;
  }
  return "?";
}

double UncorePlan::detection_coverage(UncoreStructure s, int flips) const {
  return mechanism_detection_coverage(of(s), flips);
}

bool UncorePlan::corrects_in_place(UncoreStructure s, int flips) const {
  return mechanism_corrects_in_place(of(s), flips);
}

std::string UncorePlan::id() const {
  std::string out;
  for (std::size_t i = 0; i < kUncoreStructureCount; ++i) {
    if (!out.empty()) out += ',';
    out += name_of(static_cast<UncoreStructure>(i));
    out += '=';
    out += name_of(mechanism[i]);
  }
  return out;
}

UncorePlan uniform_uncore_plan(Mechanism m) {
  UncorePlan p;
  p.name = m == Mechanism::kNone     ? "none"
           : m == Mechanism::kParity1 ? "parity"
           : m == Mechanism::kSecded  ? "secded"
                                      : name_of(m);
  p.mechanism.fill(m);
  return p;
}

bool parse_protect_mechanism(std::string_view text, Mechanism* out) {
  if (text == "none") {
    *out = Mechanism::kNone;
  } else if (text == "parity" || text == "parity-1") {
    *out = Mechanism::kParity1;
  } else if (text == "secded" || text == "SECDED" || text == "ecc") {
    *out = Mechanism::kSecded;
  } else {
    return false;
  }
  return true;
}

bool parse_uncore_structure(std::string_view text, UncoreStructure* out) {
  for (std::size_t i = 0; i < kUncoreStructureCount; ++i) {
    const auto s = static_cast<UncoreStructure>(i);
    if (text == name_of(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

ResidencyTracker* AvfCollector::make_tracker(UncoreStructure s,
                                             std::uint64_t capacity_entries,
                                             std::uint32_t bits_per_entry) {
  instances_.push_back({s, capacity_entries, bits_per_entry, {}});
  return &instances_.back().tracker;
}

void AvfCollector::finish(Cycle end) {
  for (auto& inst : instances_) inst.tracker.finish(end);
}

void AvfCollector::publish(obs::MetricsRegistry& reg, Cycle cycles) const {
  // Sum instances per structure first so each published counter is one
  // set(); counters then *add* across campaign-job snapshots.
  struct Totals {
    std::uint64_t entry_cycles = 0, bit_cycles = 0, events = 0,
                  capacity_bits = 0;
  };
  std::array<Totals, kUncoreStructureCount> totals{};
  for (const auto& inst : instances_) {
    auto& t = totals[static_cast<std::size_t>(inst.structure)];
    t.entry_cycles += inst.tracker.entry_cycles();
    t.bit_cycles += inst.tracker.entry_cycles() * inst.bits_per_entry;
    t.events += inst.tracker.events();
    t.capacity_bits += inst.capacity_entries * inst.bits_per_entry;
  }
  reg.set_counter("fault.avf.cycles", cycles);
  for (std::size_t i = 0; i < kUncoreStructureCount; ++i) {
    if (totals[i].capacity_bits == 0) continue;
    const std::string prefix =
        std::string("fault.avf.") + name_of(static_cast<UncoreStructure>(i));
    reg.set_counter(prefix + ".entry_cycles", totals[i].entry_cycles);
    reg.set_counter(prefix + ".bit_cycles", totals[i].bit_cycles);
    reg.set_counter(prefix + ".events", totals[i].events);
    reg.set_counter(prefix + ".capacity_bits", totals[i].capacity_bits);
    reg.set_counter(prefix + ".capacity_bit_cycles",
                    totals[i].capacity_bits * cycles);
  }
}

double AvfReport::total_avf() const {
  std::uint64_t bit_cycles = 0, capacity = 0;
  for (const auto& s : structures) {
    bit_cycles += s.bit_cycles;
    capacity += s.capacity_bit_cycles;
  }
  return capacity ? static_cast<double>(bit_cycles) /
                        static_cast<double>(capacity)
                  : 0.0;
}

double AvfReport::total_residual_avf() const {
  double residual = 0.0;
  std::uint64_t capacity = 0;
  for (const auto& s : structures) {
    residual += (1.0 - s.coverage) * static_cast<double>(s.bit_cycles);
    capacity += s.capacity_bit_cycles;
  }
  return capacity ? residual / static_cast<double>(capacity) : 0.0;
}

double AvfReport::area_delta_um2() const {
  double total = 0.0;
  for (const auto& s : structures) total += s.area_delta_um2;
  return total;
}

double AvfReport::power_delta_w() const {
  double total = 0.0;
  for (const auto& s : structures) total += s.power_delta_w;
  return total;
}

std::string AvfReport::to_json(int indent) const {
  obs::JsonWriter w(indent);
  w.begin_object();
  w.key("schema").value("unsync.avf_report.v1");
  w.key("plan").value(plan);
  w.key("cycles").value(cycles);
  w.key("structures").begin_array();
  for (const auto& s : structures) {
    w.begin_object();
    w.key("structure").value(name_of(s.structure));
    w.key("mechanism").value(name_of(s.mechanism));
    w.key("entry_cycles").value(s.entry_cycles);
    w.key("bit_cycles").value(s.bit_cycles);
    w.key("events").value(s.events);
    w.key("capacity_bits").value(s.capacity_bits);
    w.key("capacity_bit_cycles").value(s.capacity_bit_cycles);
    w.key("avf").value(s.avf);
    w.key("coverage").value(s.coverage);
    w.key("residual_avf").value(s.residual_avf);
    w.key("area_delta_um2").value(s.area_delta_um2);
    w.key("power_delta_w").value(s.power_delta_w);
    w.end_object();
  }
  w.end_array();
  w.key("total_avf").value(total_avf());
  w.key("total_residual_avf").value(total_residual_avf());
  w.key("area_delta_um2").value(area_delta_um2());
  w.key("power_delta_w").value(power_delta_w());
  w.end_object();
  return w.take();
}

AvfReport build_avf_report(const obs::MetricsSnapshot& snap,
                           const UncorePlan& plan) {
  AvfReport report;
  report.plan = plan.name;
  const auto counter = [&](const std::string& path) -> std::uint64_t {
    const auto it = snap.counters.find(path);
    return it == snap.counters.end() ? 0 : it->second;
  };
  report.cycles = counter("fault.avf.cycles");
  for (std::size_t i = 0; i < kUncoreStructureCount; ++i) {
    const auto structure = static_cast<UncoreStructure>(i);
    const std::string prefix = std::string("fault.avf.") + name_of(structure);
    AvfStructureReport s;
    s.structure = structure;
    s.mechanism = plan.of(structure);
    s.entry_cycles = counter(prefix + ".entry_cycles");
    s.bit_cycles = counter(prefix + ".bit_cycles");
    s.events = counter(prefix + ".events");
    s.capacity_bits = counter(prefix + ".capacity_bits");
    s.capacity_bit_cycles = counter(prefix + ".capacity_bit_cycles");
    if (s.capacity_bit_cycles == 0) continue;  // not instrumented this run
    s.avf = static_cast<double>(s.bit_cycles) /
            static_cast<double>(s.capacity_bit_cycles);
    s.coverage = plan.detection_coverage(structure, 1);
    s.residual_avf = s.avf * (1.0 - s.coverage);
    report.structures.push_back(s);
  }
  return report;
}

}  // namespace unsync::fault
