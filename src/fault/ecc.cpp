#include "fault/ecc.hpp"

#include <bit>

namespace unsync::fault {

bool parity_bit(std::uint64_t word) {
  return (std::popcount(word) & 1) != 0;
}

bool parity_check(std::uint64_t word, bool stored_parity) {
  return parity_bit(word) == stored_parity;
}

bool dmr_mismatch(std::uint64_t copy_a, std::uint64_t copy_b) {
  return copy_a != copy_b;
}

TmrResult tmr_vote(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  TmrResult r;
  r.voted = (a & b) | (a & c) | (b & c);  // bitwise majority
  const bool all_equal = a == b && b == c;
  r.corrected = !all_equal;
  // Uncorrectable only when no two copies agree as whole words AND the
  // voted word equals none of them in a way that signals multi-copy
  // corruption. For the bitwise vote, "all three pairwise different" is
  // the observable alarm condition.
  r.uncorrectable = (a != b) && (b != c) && (a != c);
  return r;
}

namespace {

// Codeword positions are numbered 1..72 (classic Hamming convention):
// powers of two hold the 7 check bits, remaining positions hold the data
// bits in ascending order. Position 0 is unused; the overall parity bit is
// kept separately (check bit 7).

constexpr bool is_pow2(unsigned x) { return x != 0 && (x & (x - 1)) == 0; }

/// Maps data-bit index 0..63 to its codeword position 3..72.
constexpr unsigned data_position(unsigned data_bit) {
  unsigned pos = 0;
  unsigned seen = 0;
  for (pos = 1; pos <= 72; ++pos) {
    if (is_pow2(pos)) continue;
    if (seen == data_bit) return pos;
    ++seen;
  }
  return 0;  // unreachable for data_bit < 64
}

/// Inverse map: codeword position -> data-bit index (only for non-pow2).
constexpr unsigned position_data_bit(unsigned pos) {
  unsigned seen = 0;
  for (unsigned p = 1; p < pos; ++p) {
    if (!is_pow2(p)) ++seen;
  }
  return seen;
}

/// Hamming syndrome over data bits only: XOR of codeword positions of all
/// set data bits.
unsigned data_syndrome(std::uint64_t data) {
  unsigned syn = 0;
  while (data != 0) {
    const int bit = std::countr_zero(data);
    data &= data - 1;
    syn ^= data_position(static_cast<unsigned>(bit));
  }
  return syn;
}

}  // namespace

SecdedWord secded_encode(std::uint64_t data) {
  SecdedWord w;
  w.data = data;
  // Choose check bits so that the full-codeword syndrome is zero: each
  // check bit at position 2^i equals syndrome bit i of the data.
  const unsigned syn = data_syndrome(data);
  w.check = static_cast<std::uint8_t>(syn & 0x7f);
  // Overall parity over data + the 7 Hamming checks (even parity).
  const bool overall =
      parity_bit(data) ^ ((std::popcount(static_cast<unsigned>(w.check)) & 1) != 0);
  if (overall) w.check |= 0x80;
  return w;
}

SecdedDecode secded_decode(const SecdedWord& word) {
  SecdedDecode out;
  out.data = word.data;

  const unsigned stored_checks = word.check & 0x7f;
  const bool stored_overall = (word.check & 0x80) != 0;
  const unsigned syn = data_syndrome(word.data) ^ stored_checks;
  const bool overall_now =
      parity_bit(word.data) ^
      ((std::popcount(stored_checks) & 1) != 0);
  const bool overall_error = overall_now != stored_overall;

  if (syn == 0 && !overall_error) {
    out.status = SecdedStatus::kClean;
    return out;
  }
  if (syn == 0 && overall_error) {
    // Only the overall parity bit itself flipped.
    out.status = SecdedStatus::kCorrectedCheck;
    return out;
  }
  if (overall_error) {
    // Odd-weight error with a non-zero syndrome: a single-bit error whose
    // codeword position is the syndrome.
    if (is_pow2(syn)) {
      out.status = SecdedStatus::kCorrectedCheck;  // a Hamming check bit
      return out;
    }
    if (syn <= 72) {
      out.data = word.data ^ (std::uint64_t{1} << position_data_bit(syn));
      out.status = SecdedStatus::kCorrectedData;
      return out;
    }
    // Syndrome points outside the codeword: treat as uncorrectable.
    out.status = SecdedStatus::kDoubleError;
    return out;
  }
  // Even-weight error with a non-zero syndrome: double-bit error.
  out.status = SecdedStatus::kDoubleError;
  return out;
}

SecdedWord secded_flip(const SecdedWord& word, unsigned bit) {
  SecdedWord w = word;
  if (bit < 64) {
    w.data ^= std::uint64_t{1} << bit;
  } else {
    w.check ^= static_cast<std::uint8_t>(1u << (bit - 64));
  }
  return w;
}

}  // namespace unsync::fault
