// ACE/AVF analysis for uncore structures — residency-based exposure.
//
// The paper's protection plan (§III-B.1) covers core-private sequential
// state; "Understanding Soft Errors in Uncore Components" (PAPERS.md) shows
// the unprotected residual of modern designs lives in the uncore: bus
// request queues, MSHRs, write buffers, cache tag arrays, TLBs and the DRAM
// queue. This layer measures that exposure the way AVF studies do — by
// integrating *ACE bit-cycles* (cycles during which a bit holds live,
// architecturally consequential state) and dividing by the structure's
// capacity bit-cycles:
//
//   AVF(s) = sum(live_bits(s, t) dt) / (capacity_bits(s) * cycles)
//
// Two accounting styles cover every hook site:
//   * event-duration  — ResidencyTracker::add(cycles) when an entry's
//     lifetime is known at allocation (bus grants, MSHR fills);
//   * live-occupancy  — ResidencyTracker::set_live(now, n) whenever the
//     number of valid entries changes (cache tags, TLB entries, write
//     buffers), integrated piecewise to the run's end cycle.
//
// Layering: this header is intentionally link-free (all tracker methods are
// inline) so src/mem and src/cpu can hold ResidencyTracker pointers without
// a mem -> fault link edge (fault links cpu links mem). The collector,
// report and JSON live in avf.cpp (unsync_fault). Hooks are observation
// only: with no tracker attached each site costs one null-pointer branch,
// and attaching one never perturbs simulated state — avf=1 is bit-invisible.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "fault/protection.hpp"

namespace unsync::obs {
class MetricsRegistry;
class MetricsSnapshot;
}  // namespace unsync::obs

namespace unsync::fault {

/// The uncore structures instrumented for residency (ROADMAP item 4).
/// Append-only: the ordinal order is baked into fault-site numbering
/// (fault/injector.hpp) and the UncorePlan::id() string.
enum class UncoreStructure : std::uint8_t {
  kBusQueue,     ///< L1<->L2 interconnect request queue
  kMshr,         ///< miss-status holding registers (L1s + L2)
  kWriteBuffer,  ///< post-commit store buffers / UnSync CBs
  kCacheTag,     ///< tag + state arrays of every cache
  kTlb,          ///< I-TLB + D-TLB entries
  kDramQueue,    ///< memory-controller / DRAM channel queue
  kCacheData,    ///< shared-L2 data array (valid-line payload bits)
  kCheckLog,     ///< hetero-checker leader→checker verification log
  kCount,
};

inline constexpr std::size_t kUncoreStructureCount =
    static_cast<std::size_t>(UncoreStructure::kCount);

const char* name_of(UncoreStructure s);

/// Bits held per occupied entry (documented in docs/FAULTS.md). Tag-array
/// bits depend on cache geometry and are computed at wiring time; the rest
/// are fixed micro-architectural constants.
inline constexpr std::uint32_t kBusQueueEntryBits = 72;   // addr+cmd+src tag
inline constexpr std::uint32_t kMshrEntryBits = 64;       // line addr+targets
inline constexpr std::uint32_t kWriteBufferEntryBits = 128;  // 16-B CB entry
inline constexpr std::uint32_t kTlbEntryBits = 106;       // VPN+PPN+flags
inline constexpr std::uint32_t kDramQueueEntryBits = 128; // cmd+addr+burst
// kCacheData bits per entry = line_bytes * 8 and kCheckLog bits per entry
// (cpu/check_log.hpp kCheckLogEntryBits) are computed at wiring time.

/// Modelled queue depths for the serially-granted resources (the Bus class
/// tracks a reservation horizon, not discrete slots; these bound the AVF
/// capacity denominator the way a real request queue would).
inline constexpr std::uint64_t kBusQueueEntries = 16;
inline constexpr std::uint64_t kDramQueueEntries = 32;

/// Integer ACE bit-cycle accumulator for one structure *instance*.
///
/// All state is exact 64-bit integers so per-job published counters add
/// associatively under the campaign snapshot merge — the aggregate (and the
/// AVF ratio computed from it at report time) is byte-identical across
/// worker counts.
class ResidencyTracker {
 public:
  /// Event-duration accounting: one entry was live for `cycles` cycles.
  void add(std::uint64_t cycles) {
    entry_cycles_ += cycles;
    ++events_;
  }

  /// Live-occupancy accounting: integrates the previous occupancy over
  /// (last, now], then records `live` valid entries from `now` on. Calls
  /// with non-monotonic `now` integrate nothing (clamped), keeping the
  /// accumulator exact under replayed or out-of-order hook sites.
  void set_live(Cycle now, std::uint64_t live) {
    integrate(now);
    if (live != live_) {
      live_ = live;
      ++events_;
    }
  }

  /// Closes the integration window at the run's final cycle.
  void finish(Cycle end) { integrate(end); }

  std::uint64_t entry_cycles() const { return entry_cycles_; }
  std::uint64_t events() const { return events_; }
  std::uint64_t live() const { return live_; }

 private:
  void integrate(Cycle now) {
    if (now > last_) {
      entry_cycles_ += live_ * (now - last_);
      last_ = now;
    }
  }

  std::uint64_t entry_cycles_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t live_ = 0;
  Cycle last_ = 0;
};

/// Per-structure uncore protection choice (`protect.<structure>=` knobs).
/// Shares the Mechanism vocabulary — and the detection/correction model —
/// with the core-side ProtectionPlan.
struct UncorePlan {
  std::string name = "none";
  std::array<Mechanism, kUncoreStructureCount> mechanism{};  // all kNone

  Mechanism of(UncoreStructure s) const {
    return mechanism[static_cast<std::size_t>(s)];
  }
  void set(UncoreStructure s, Mechanism m) {
    mechanism[static_cast<std::size_t>(s)] = m;
  }

  double detection_coverage(UncoreStructure s, int flips) const;
  bool corrects_in_place(UncoreStructure s, int flips) const;

  /// Canonical identity string, "bus_queue=none,mshr=parity-1,..." in enum
  /// order — folded into campaign journal fingerprints.
  std::string id() const;
};

/// All-structures-uniform plan ("none", "parity", "secded" presets).
UncorePlan uniform_uncore_plan(Mechanism m);

/// Parses a `protect.*` knob value: none | parity | secded (plus the
/// canonical mechanism names). Returns false on an unknown value.
bool parse_protect_mechanism(std::string_view text, Mechanism* out);

/// Parses a structure key as spelled in `protect.<structure>=` knobs.
bool parse_uncore_structure(std::string_view text, UncoreStructure* out);

/// Owns one ResidencyTracker per instrumented structure instance and folds
/// them into the `fault.avf.*` metrics tree. Created by the System layer
/// when `avf=1`; mem/cpu components only ever see the tracker pointers.
class AvfCollector {
 public:
  /// Registers one instance of `s` holding up to `capacity_entries` entries
  /// of `bits_per_entry` bits. The returned tracker stays valid for the
  /// collector's lifetime.
  ResidencyTracker* make_tracker(UncoreStructure s,
                                 std::uint64_t capacity_entries,
                                 std::uint32_t bits_per_entry);

  /// Closes every live-occupancy integration window at `end`.
  void finish(Cycle end);

  /// Publishes integer exposure counters under `fault.avf.<structure>.*`:
  /// entry_cycles, bit_cycles, events, capacity_bits, capacity_bit_cycles —
  /// plus `fault.avf.cycles`. All uint64, so campaign merges stay
  /// worker-count independent.
  void publish(obs::MetricsRegistry& reg, Cycle cycles) const;

 private:
  struct Instance {
    UncoreStructure structure;
    std::uint64_t capacity_entries;
    std::uint32_t bits_per_entry;
    ResidencyTracker tracker;
  };
  std::deque<Instance> instances_;  // deque: stable tracker addresses
};

/// One row of the AVF report. The hwmodel join (area/power deltas of the
/// chosen mechanism) is filled by the caller layer — fault cannot link
/// hwmodel — via apply_protection_costs().
struct AvfStructureReport {
  UncoreStructure structure = UncoreStructure::kBusQueue;
  Mechanism mechanism = Mechanism::kNone;
  std::uint64_t entry_cycles = 0;
  std::uint64_t bit_cycles = 0;
  std::uint64_t events = 0;
  std::uint64_t capacity_bits = 0;
  std::uint64_t capacity_bit_cycles = 0;
  double avf = 0.0;           ///< bit_cycles / capacity_bit_cycles
  double coverage = 0.0;      ///< single-bit detection coverage of mechanism
  double residual_avf = 0.0;  ///< avf * (1 - coverage): unprotected exposure
  double area_delta_um2 = 0.0;
  double power_delta_w = 0.0;
};

/// The versioned AVF report ("unsync.avf_report.v1").
struct AvfReport {
  std::string plan = "none";
  std::uint64_t cycles = 0;
  std::vector<AvfStructureReport> structures;  // enum order

  double total_avf() const;           ///< capacity-weighted mean AVF
  double total_residual_avf() const;  ///< capacity-weighted residual
  double area_delta_um2() const;
  double power_delta_w() const;

  /// Deterministic JSON; compact when indent == 0. Doubles use the
  /// shortest round-trip form, so the bytes are a pure function of the
  /// integer counters and the plan.
  std::string to_json(int indent = 2) const;
};

/// Builds a report from the merged `fault.avf.*` counters of a campaign (or
/// single-run) snapshot under `plan`. Structures with zero registered
/// capacity are omitted.
AvfReport build_avf_report(const obs::MetricsSnapshot& snap,
                           const UncorePlan& plan);

}  // namespace unsync::fault
