// Protection domains: which error-detection mechanism guards each sequential
// structure of the core.
//
// This is the single source of truth the paper's design rests on (§III-B.1):
//   * storage elements with >= 1 cycle between write and read (register
//     file, LSQ, TLB, L1 data) take 1-bit parity — negligible cost;
//   * elements accessed every cycle (PC, pipeline registers) cannot afford
//     the parity-check cycle and take DMR;
//   * the shared L2 carries SECDED ECC in every configuration;
//   * Reunion instead covers the pre-commit pipeline with fingerprints and
//     assumes an ECC L1 — so its Region Of Error Coverage (ROEC) excludes
//     post-execute state, while UnSync covers every sequential block + L1.
// Both the fault injector (coverage) and the hardware model (cost) consume
// the same plan, keeping the reliability/overhead trade-off consistent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace unsync::fault {

enum class Structure : std::uint8_t {
  kProgramCounter,
  kPipelineRegisters,
  kRegisterFile,
  kReorderBuffer,
  kIssueQueue,
  kLoadStoreQueue,
  kTlb,
  kL1Data,
  kCommunicationBuffer,  // UnSync CB / Reunion CHECK-stage buffer
  kCount,
};

enum class Mechanism : std::uint8_t {
  kNone,
  kParity1,      ///< 1-bit parity: detects all single-bit flips, 1-cycle lag
  kDmr,          ///< dual modular redundancy: detect-only, same-cycle
  kSecded,       ///< ECC: corrects 1, detects 2
  kTmr,          ///< triple modular redundancy: corrects in place (§VIII)
  kFingerprint,  ///< Reunion: detected at the next fingerprint comparison
};

const char* name_of(Structure s);
const char* name_of(Mechanism m);

/// Mechanism-level detection model (shared by the core-side ProtectionPlan
/// and the uncore UncorePlan in fault/avf.hpp): probability an error of
/// `flips` adjacent bits inside one protected word is detected.
double mechanism_detection_coverage(Mechanism m, int flips);

/// True when the mechanism repairs the error locally (SECDED single-bit,
/// TMR) with no recovery action needed.
bool mechanism_corrects_in_place(Mechanism m, int flips);

/// Residency class drives the mechanism choice rule above.
enum class Residency : std::uint8_t {
  kEveryCycle,  ///< read/written every cycle (parity's 1-cycle lag unusable)
  kStorage,     ///< >= 1 cycle between write and read
};

struct StructureInfo {
  Structure id;
  /// Approximate sequential-bit count for an Alpha-21264-class core; used
  /// to weight vulnerability by exposure (bigger structure, more strikes).
  std::uint64_t bits;
  Residency residency;
};

/// Per-core structure inventory (single source for ROEC math and for the
/// vulnerability-weighted fault injector).
const std::vector<StructureInfo>& structure_inventory();

struct ProtectionPlan {
  std::string name;
  Mechanism mechanism[static_cast<std::size_t>(Structure::kCount)] = {};

  Mechanism of(Structure s) const {
    return mechanism[static_cast<std::size_t>(s)];
  }
  void set(Structure s, Mechanism m) {
    mechanism[static_cast<std::size_t>(s)] = m;
  }

  /// Probability that a single-bit flip in `s` is detected before it can
  /// corrupt architectural state.
  double detection_coverage(Structure s) const;

  /// Multi-bit generalisation: probability an error of `flips` bits inside
  /// one protected word of `s` is detected. Parity is blind to even-weight
  /// errors — the limitation the paper's future work (§VIII) addresses with
  /// multi-bit cache protection.
  double detection_coverage(Structure s, int flips) const;

  /// True when the mechanism repairs the error locally (SECDED single-bit,
  /// TMR) — no pair-level recovery is needed at all.
  bool corrects_in_place(Structure s, int flips) const;

  /// Region-of-error-coverage: fraction of the core's sequential bits whose
  /// single-bit flips are detected (bit-weighted across the inventory).
  double roec() const;

  /// Total protected bits / total bits (for the coverage table).
  std::uint64_t covered_bits() const;
  std::uint64_t total_bits() const;
};

/// UnSync: parity on storage structures + L1, DMR on every-cycle elements,
/// parity on the CB.
ProtectionPlan unsync_plan();

/// Reunion: fingerprint comparison covers the pre-commit pipeline
/// (pipeline regs, ROB, IQ, LSQ, PC); SECDED on the L1 (assumed by the
/// paper); the architectural register file is *outside* the ROEC because
/// the fingerprint verifies values only up to commit.
ProtectionPlan reunion_plan();

/// Unprotected baseline core.
ProtectionPlan baseline_plan();

/// Paper §VIII ("Future Work") hardened UnSync variant: TMR-hardened
/// pipeline registers and PC, SECDED register file, and multi-bit (SECDED)
/// cache protection. Costs more (src/hwmodel prices it) but corrects most
/// errors in place and survives double-bit flips that defeat parity.
ProtectionPlan unsync_hardened_plan();

}  // namespace unsync::fault
