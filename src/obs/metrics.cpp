#include "obs/metrics.hpp"

#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace unsync::obs {

Counter& MetricsRegistry::counter(std::string_view path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(path);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(path), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

RunningStat& MetricsRegistry::gauge(std::string_view path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(path);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(path), std::make_unique<RunningStat>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view path, double lo,
                                      double hi, std::size_t buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(path);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(path),
                      std::make_unique<Histogram>(lo, hi, buckets))
             .first;
  }
  return *it->second;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [path, c] : counters_) snap.counters.emplace(path, c->value());
  for (const auto& [path, g] : gauges_) snap.gauges.emplace(path, *g);
  for (const auto& [path, h] : histograms_) snap.histograms.emplace(path, *h);
  return snap;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [path, v] : other.counters) counters[path] += v;
  for (const auto& [path, g] : other.gauges) {
    auto [it, inserted] = gauges.emplace(path, g);
    if (!inserted) it->second.merge(g);
  }
  for (const auto& [path, h] : other.histograms) {
    auto [it, inserted] = histograms.emplace(path, h);
    if (!inserted) it->second.merge(h);  // throws on shape mismatch
  }
}

std::string MetricsSnapshot::to_json(int indent) const {
  JsonWriter w(indent);
  w.begin_object();
  w.key("schema").value("unsync.metrics.v1");
  w.key("counters").begin_object();
  for (const auto& [path, v] : counters) w.key(path).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [path, g] : gauges) {
    w.key(path).begin_object();
    w.key("count").value(g.count());
    w.key("mean").value(g.mean());
    w.key("min").value(g.min());
    w.key("max").value(g.max());
    w.key("stddev").value(g.stddev());
    w.key("sum").value(g.sum());
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [path, h] : histograms) {
    w.key(path).begin_object();
    w.key("lo").value(h.low());
    w.key("hi").value(h.high());
    w.key("total").value(h.total());
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < h.buckets(); ++i) w.value(h.bucket(i));
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream os;
  os << "kind,path,value,count,mean,min,max,stddev,sum\n";
  for (const auto& [path, v] : counters) {
    os << "counter," << path << ',' << v << ",,,,,,\n";
  }
  for (const auto& [path, g] : gauges) {
    os << "gauge," << path << ",," << g.count() << ','
       << json_double(g.mean()) << ',' << json_double(g.min()) << ','
       << json_double(g.max()) << ',' << json_double(g.stddev()) << ','
       << json_double(g.sum()) << '\n';
  }
  for (const auto& [path, h] : histograms) {
    os << "histogram," << path << ',' << h.total() << ",,,,,,\n";
    for (std::size_t i = 0; i < h.buckets(); ++i) {
      os << "histogram_bucket," << path << '[' << json_double(h.bucket_low(i))
         << "]," << h.bucket(i) << ",,,,,,\n";
    }
  }
  return os.str();
}

}  // namespace unsync::obs
