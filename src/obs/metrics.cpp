#include "obs/metrics.hpp"

#include <sstream>
#include <stdexcept>

#include "ckpt/serializer.hpp"
#include "obs/json.hpp"

namespace unsync::obs {

Counter& MetricsRegistry::counter(std::string_view path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(path);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(path), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

RunningStat& MetricsRegistry::gauge(std::string_view path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(path);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(path), std::make_unique<RunningStat>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view path, double lo,
                                      double hi, std::size_t buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(path);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(path),
                      std::make_unique<Histogram>(lo, hi, buckets))
             .first;
  }
  return *it->second;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [path, c] : counters_) snap.counters.emplace(path, c->value());
  for (const auto& [path, g] : gauges_) snap.gauges.emplace(path, *g);
  for (const auto& [path, h] : histograms_) snap.histograms.emplace(path, *h);
  return snap;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [path, v] : other.counters) counters[path] += v;
  for (const auto& [path, g] : other.gauges) {
    auto [it, inserted] = gauges.emplace(path, g);
    if (!inserted) it->second.merge(g);
  }
  for (const auto& [path, h] : other.histograms) {
    auto [it, inserted] = histograms.emplace(path, h);
    if (!inserted) it->second.merge(h);  // throws on shape mismatch
  }
}

std::string MetricsSnapshot::to_json(int indent) const {
  JsonWriter w(indent);
  w.begin_object();
  w.key("schema").value("unsync.metrics.v1");
  w.key("counters").begin_object();
  for (const auto& [path, v] : counters) w.key(path).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [path, g] : gauges) {
    w.key(path).begin_object();
    w.key("count").value(g.count());
    w.key("mean").value(g.mean());
    w.key("min").value(g.min());
    w.key("max").value(g.max());
    w.key("stddev").value(g.stddev());
    w.key("sum").value(g.sum());
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [path, h] : histograms) {
    w.key(path).begin_object();
    w.key("lo").value(h.low());
    w.key("hi").value(h.high());
    w.key("total").value(h.total());
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < h.buckets(); ++i) w.value(h.bucket(i));
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream os;
  os << "kind,path,value,count,mean,min,max,stddev,sum\n";
  for (const auto& [path, v] : counters) {
    os << "counter," << path << ',' << v << ",,,,,,\n";
  }
  for (const auto& [path, g] : gauges) {
    os << "gauge," << path << ",," << g.count() << ','
       << json_double(g.mean()) << ',' << json_double(g.min()) << ','
       << json_double(g.max()) << ',' << json_double(g.stddev()) << ','
       << json_double(g.sum()) << '\n';
  }
  for (const auto& [path, h] : histograms) {
    os << "histogram," << path << ',' << h.total() << ",,,,,,\n";
    for (std::size_t i = 0; i < h.buckets(); ++i) {
      os << "histogram_bucket," << path << '[' << json_double(h.bucket_low(i))
         << "]," << h.bucket(i) << ",,,,,,\n";
    }
  }
  return os.str();
}

void MetricsSnapshot::save(ckpt::Serializer& s) const {
  s.begin_chunk("METR");
  s.u64(counters.size());
  for (const auto& [path, value] : counters) {
    s.str(path);
    s.u64(value);
  }
  s.u64(gauges.size());
  for (const auto& [path, g] : gauges) {
    s.str(path);
    s.u64(g.count());
    s.f64(g.mean());
    s.f64(g.m2());
    s.f64(g.min());
    s.f64(g.max());
    s.f64(g.sum());
  }
  s.u64(histograms.size());
  for (const auto& [path, h] : histograms) {
    s.str(path);
    s.f64(h.low());
    s.f64(h.high());
    s.u64(h.buckets());
    for (std::size_t i = 0; i < h.buckets(); ++i) s.u64(h.bucket(i));
  }
  s.end_chunk();
}

void MetricsSnapshot::load(ckpt::Deserializer& d) {
  counters.clear();
  gauges.clear();
  histograms.clear();
  d.begin_chunk("METR");
  const std::uint64_t n_counters = d.u64();
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    std::string path = d.str();
    counters[std::move(path)] = d.u64();
  }
  const std::uint64_t n_gauges = d.u64();
  for (std::uint64_t i = 0; i < n_gauges; ++i) {
    std::string path = d.str();
    const std::uint64_t n = d.u64();
    const double mean = d.f64();
    const double m2 = d.f64();
    const double min = d.f64();
    const double max = d.f64();
    const double sum = d.f64();
    gauges[std::move(path)].restore(n, mean, m2, min, max, sum);
  }
  const std::uint64_t n_hists = d.u64();
  for (std::uint64_t i = 0; i < n_hists; ++i) {
    std::string path = d.str();
    const double lo = d.f64();
    const double hi = d.f64();
    const std::uint64_t buckets = d.u64();
    Histogram h(lo, hi, buckets);
    std::vector<std::uint64_t> counts(buckets);
    for (std::uint64_t& c : counts) c = d.u64();
    h.restore_counts(counts);
    histograms.emplace(std::move(path), std::move(h));
  }
  d.end_chunk();
}

}  // namespace unsync::obs
