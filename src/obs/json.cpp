#include "obs/json.hpp"

#include <charconv>
#include <cmath>

namespace unsync::obs {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  std::string s(buf, res.ptr);
  // to_chars may emit "1e+20"-style exponents, which is valid JSON, but a
  // bare integer mantissa ("42") is also fine — keep whatever it produced.
  return s;
}

void JsonWriter::comma_and_newline() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_item_.empty() && has_item_.back()) out_ += ',';
  if (!has_item_.empty()) has_item_.back() = true;
  if (depth_ > 0) newline_indent();
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(static_cast<std::size_t>(depth_ * indent_), ' ');
}

JsonWriter& JsonWriter::begin_object() {
  comma_and_newline();
  out_ += '{';
  ++depth_;
  has_item_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had_items = has_item_.back();
  has_item_.pop_back();
  --depth_;
  if (had_items) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_and_newline();
  out_ += '[';
  ++depth_;
  has_item_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had_items = has_item_.back();
  has_item_.pop_back();
  --depth_;
  if (had_items) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma_and_newline();
  out_ += json_quote(name);
  out_ += indent_ > 0 ? ": " : ":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_and_newline();
  out_ += json_quote(s);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma_and_newline();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_and_newline();
  out_ += json_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_and_newline();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_and_newline();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_and_newline();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma_and_newline();
  out_ += json;
  return *this;
}

}  // namespace unsync::obs
