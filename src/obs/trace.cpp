#include "obs/trace.hpp"

#include <stdexcept>

#include "obs/json.hpp"

namespace unsync::obs {

const char* name_of(TraceKind kind) {
  switch (kind) {
    case TraceKind::kFetch: return "fetch";
    case TraceKind::kCommit: return "commit";
    case TraceKind::kErrorInjection: return "error_injection";
    case TraceKind::kRecovery: return "recovery";
    case TraceKind::kRollback: return "rollback";
    case TraceKind::kBusTransaction: return "bus";
    case TraceKind::kCbDrain: return "cb_drain";
    case TraceKind::kFingerprintSync: return "fingerprint_sync";
    case TraceKind::kCheckpoint: return "checkpoint";
    case TraceKind::kJobStart: return "job_start";
    case TraceKind::kJobEnd: return "job_end";
  }
  return "?";
}

std::string to_json(const TraceRecord& r) {
  JsonWriter w;
  w.begin_object();
  w.key("kind").value(name_of(r.kind));
  w.key("cycle").value(static_cast<std::uint64_t>(r.cycle));
  w.key("thread").value(r.thread);
  w.key("core").value(r.core);
  w.key("seq").value(r.seq);
  w.key("addr").value(r.addr);
  w.key("value").value(r.value);
  w.end_object();
  return w.take();
}

JsonlTraceSink::JsonlTraceSink(const std::string& path,
                               std::uint64_t flush_every)
    : out_(path), flush_every_(flush_every == 0 ? 1 : flush_every) {
  if (!out_) throw std::runtime_error("cannot open trace file: " + path);
}

JsonlTraceSink::~JsonlTraceSink() { flush(); }

void JsonlTraceSink::record(const TraceRecord& r) {
  const std::string line = to_json(r);
  std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
  if (++written_ % flush_every_ == 0) out_.flush();
}

void JsonlTraceSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  out_.flush();
}

}  // namespace unsync::obs
