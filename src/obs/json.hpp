// Minimal deterministic JSON writer.
//
// The observability layer serialises metrics snapshots, trace records and
// run results to JSON; every consumer (golden tests, the threads=1 vs
// threads=N byte-identity gate, downstream analysis scripts) relies on the
// output being *deterministic*: keys are emitted in caller order (callers
// iterate sorted containers), and doubles use the shortest round-trip
// form of std::to_chars, which is a pure function of the value.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace unsync::obs {

/// Escapes `s` per RFC 8259 and returns it wrapped in double quotes.
std::string json_quote(std::string_view s);

/// Shortest round-trip decimal form of `v` ("1.5", "0.3333333333333333");
/// non-finite values serialise as null (JSON has no NaN/Inf).
std::string json_double(double v);

/// A streaming JSON builder. Structural methods (begin_object/end_object,
/// begin_array/end_array, key) manage commas; value methods append one
/// JSON value. The writer does not validate nesting — callers pair their
/// begins and ends (tests pin the output byte-for-byte anyway).
class JsonWriter {
 public:
  /// `indent` > 0 pretty-prints with that many spaces per level; 0 emits
  /// the canonical compact single-line form used for byte-identity checks.
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the member key; the next call must append its value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& null();

  /// Appends pre-rendered JSON verbatim as one value (composition).
  JsonWriter& raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma_and_newline();
  void newline_indent();

  std::string out_;
  int indent_ = 0;
  int depth_ = 0;
  /// Whether the current nesting level already holds a member/element.
  std::vector<bool> has_item_{false};
  bool after_key_ = false;
};

}  // namespace unsync::obs
